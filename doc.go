// Package repro is a from-scratch Go reproduction of "The Case for
// Spam-Aware High Performance Mail Server Architecture" (Pathak, Jafri,
// Hu — ICDCS 2009).
//
// The paper redesigns three components of a postfix-class mail server
// around the observation that spam is the common-case workload:
//
//   - a "fork-after-trust" hybrid concurrency architecture that keeps
//     bounce and abandoned connections in a cheap event loop and commits
//     an smtpd worker only after the first valid RCPT TO (§5);
//   - MFS, a single-copy record-oriented mailbox file system that stores
//     a multi-recipient mail once and gives each mailbox a reference-
//     counted pointer record (§6);
//   - prefix-based DNSBL lookups ("DNSBLv6") where one AAAA answer
//     carries the blacklist bitmap of an entire /25 (§7).
//
// The runnable system lives under internal/: an SMTP protocol stack and
// server (both architectures, real TCP), the MFS library and three
// baseline mailbox stores, an RFC 1035 DNS codec with DNSBL servers and
// caching clients, a postfix-style queue pipeline, seeded workload
// generators reproducing the paper's trace statistics, and a
// discrete-event simulation that regenerates every cost-sensitive figure
// deterministically. The experiment registry (internal/core, surfaced by
// cmd/mailbench and the benchmarks in bench_test.go) maps each table and
// figure of the evaluation to a runner.
//
// Start with README.md, DESIGN.md (system inventory and substitutions),
// and EXPERIMENTS.md (paper-vs-measured for every table and figure).
package repro
