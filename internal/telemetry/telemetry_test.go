package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/addr"
	"repro/internal/eventlog"
	"repro/internal/metrics"
)

// conn emits a synthetic smtpd.conn event through an eventlog into t.
func conn(log *eventlog.Log, ip, outcome string, bounce, worker bool) {
	log.Info("smtpd.conn", 0,
		eventlog.Str("ip", ip),
		eventlog.Str("outcome", outcome),
		eventlog.Bool("bounce", bounce),
		eventlog.Bool("worker", worker),
	)
}

func lookup(log *eventlog.Log, ip addr.IPv4, hit bool) {
	log.Debug("dnsbl.lookup", 0, eventlog.IP("ip", ip), eventlog.Bool("hit", hit))
}

func newTracked(opts ...TrackerOption) (*Tracker, *eventlog.Log) {
	tr := New(opts...)
	// Attach as observer and raise the level past everything: the tracker
	// must see the workload regardless of what the operator logs.
	log := eventlog.New(eventlog.WithLevel(eventlog.LevelOff), eventlog.WithObserver(tr))
	return tr, log
}

func TestConnAggregates(t *testing.T) {
	tr, log := newTracked()
	// 6 bounced spam conns handled without a worker, 2 trusted deliveries,
	// 2 rejected conns that did occupy a worker.
	for i := 0; i < 6; i++ {
		conn(log, fmt.Sprintf("10.0.0.%d", i), "dropped", true, false)
	}
	conn(log, "192.0.2.1", "trusted", false, true)
	conn(log, "192.0.2.2", "trusted", false, true)
	conn(log, "10.1.0.1", "rejected", true, true)
	conn(log, "10.1.0.2", "rejected", true, true)

	s := tr.Snapshot()
	if s.Conns != 10 || s.Bounced != 8 || s.WorkerConns != 4 {
		t.Fatalf("counts = %d/%d/%d, want 10/8/4", s.Conns, s.Bounced, s.WorkerConns)
	}
	if got := s.BounceRatio; math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("BounceRatio = %v, want 0.8", got)
	}
	if got := s.HandoffSavings; math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("HandoffSavings = %v, want 0.6", got)
	}
	if s.Outcomes["dropped"] != 6 || s.Outcomes["trusted"] != 2 || s.Outcomes["rejected"] != 2 {
		t.Fatalf("Outcomes = %v", s.Outcomes)
	}
}

func TestEWMATracksShift(t *testing.T) {
	tr, log := newTracked(WithEWMAWindow(8))
	for i := 0; i < 50; i++ {
		conn(log, "10.0.0.1", "dropped", true, false)
	}
	if got := tr.Snapshot().BounceRatioEWMA; math.Abs(got-1.0) > 0.01 {
		t.Fatalf("EWMA after all-bounce run = %v, want ≈1", got)
	}
	// The weather turns: a long clean run drags the EWMA down fast while
	// the cumulative ratio barely moves.
	for i := 0; i < 50; i++ {
		conn(log, "192.0.2.1", "trusted", false, true)
	}
	s := tr.Snapshot()
	if s.BounceRatioEWMA > 0.05 {
		t.Fatalf("EWMA after clean run = %v, want < 0.05", s.BounceRatioEWMA)
	}
	if math.Abs(s.BounceRatio-0.5) > 1e-9 {
		t.Fatalf("cumulative ratio = %v, want 0.5", s.BounceRatio)
	}
}

func TestPrefixLocality(t *testing.T) {
	tr, log := newTracked()
	// 4 distinct /25 blocks, 8 lookups each: 4 unique prefixes, 28 repeats.
	for block := 0; block < 4; block++ {
		for host := 0; host < 8; host++ {
			ip := addr.MakeIPv4(203, 0, byte(block), byte(host+1))
			lookup(log, ip, host > 0)
		}
	}
	s := tr.Snapshot().DNSBL
	if s.Lookups != 32 || s.UniquePrefixes != 4 {
		t.Fatalf("lookups=%d unique=%d, want 32/4", s.Lookups, s.UniquePrefixes)
	}
	if got, want := s.PrefixLocality, 28.0/32; math.Abs(got-want) > 1e-9 {
		t.Fatalf("PrefixLocality = %v, want %v", got, want)
	}
	if got, want := s.CacheSavingsEst, 1-4.0/32; math.Abs(got-want) > 1e-9 {
		t.Fatalf("CacheSavingsEst = %v, want %v", got, want)
	}
	if s.CacheHits != 28 {
		t.Fatalf("CacheHits = %d, want 28", s.CacheHits)
	}
}

func TestPrefixHalvesAreDistinct(t *testing.T) {
	tr, log := newTracked()
	// .1 and .129 sit in different /25 halves of the same /24 — both must
	// count as unique prefixes (the bitmap-cache grain is /25, §7.1).
	lookup(log, addr.MakeIPv4(203, 0, 0, 1), false)
	lookup(log, addr.MakeIPv4(203, 0, 0, 129), false)
	if got := tr.Snapshot().DNSBL.UniquePrefixes; got != 2 {
		t.Fatalf("UniquePrefixes = %d, want 2", got)
	}
}

func TestTopTalkersAndOverflow(t *testing.T) {
	tr, log := newTracked(WithMaxSources(3))
	for i := 0; i < 5; i++ {
		conn(log, "10.0.0.1", "dropped", true, false)
	}
	for i := 0; i < 3; i++ {
		conn(log, "10.0.0.2", "dropped", true, false)
	}
	conn(log, "10.0.0.3", "trusted", false, true)
	// Beyond the cap: these two sources fold into "other".
	conn(log, "10.0.0.4", "dropped", true, false)
	conn(log, "10.0.0.5", "dropped", true, false)

	tt := tr.Snapshot().TopTalkers
	if len(tt) != 4 {
		t.Fatalf("TopTalkers = %v, want 4 entries", tt)
	}
	if tt[0].IP != "10.0.0.1" || tt[0].Conns != 5 {
		t.Fatalf("top talker = %+v, want 10.0.0.1/5", tt[0])
	}
	if tt[1].IP != "10.0.0.2" || tt[1].Conns != 3 {
		t.Fatalf("second talker = %+v, want 10.0.0.2/3", tt[1])
	}
	var other *Talker
	for i := range tt {
		if tt[i].IP == "other" {
			other = &tt[i]
		}
	}
	if other == nil || other.Conns != 2 {
		t.Fatalf("other bucket = %+v, want 2 conns", other)
	}
}

func TestMaxPrefixesCap(t *testing.T) {
	tr, log := newTracked(WithMaxPrefixes(2))
	for block := 0; block < 4; block++ {
		lookup(log, addr.MakeIPv4(203, 0, byte(block), 1), false)
	}
	s := tr.Snapshot().DNSBL
	if s.UniquePrefixes != 2 {
		t.Fatalf("UniquePrefixes = %d, want capped 2", s.UniquePrefixes)
	}
	// Past the cap the estimate is optimistic but still bounded.
	if s.Lookups != 4 || s.PrefixLocality != 0.5 {
		t.Fatalf("lookups=%d locality=%v, want 4/0.5", s.Lookups, s.PrefixLocality)
	}
}

func TestRegisterGauges(t *testing.T) {
	tr, log := newTracked(WithMaxGaugedSources(2))
	reg := metrics.NewRegistry()
	tr.Register(reg)
	for i := 0; i < 4; i++ {
		conn(log, "10.0.0.1", "dropped", true, false)
	}
	conn(log, "192.0.2.1", "trusted", false, true)
	conn(log, "192.0.2.2", "trusted", false, true) // third source: beyond gauge cap

	find := func(name string, labels ...string) float64 {
		t.Helper()
		m, ok := reg.Find(name, labels...)
		if !ok {
			t.Fatalf("metric %s%v not registered", name, labels)
		}
		return m.Value
	}
	if got := find("telemetry_conns"); got != 6 {
		t.Fatalf("telemetry_conns = %v, want 6", got)
	}
	if got := find("telemetry_bounce_ratio"); math.Abs(got-4.0/6) > 1e-9 {
		t.Fatalf("telemetry_bounce_ratio = %v, want 2/3", got)
	}
	if got := find("telemetry_handoff_savings"); math.Abs(got-4.0/6) > 1e-9 {
		t.Fatalf("telemetry_handoff_savings = %v, want 2/3", got)
	}
	if got := find("telemetry_source_conns", "ip", "10.0.0.1"); got != 4 {
		t.Fatalf("source gauge = %v, want 4", got)
	}
	// The third distinct source exceeded the gauge cap and lands in the
	// pre-registered ip="other" series.
	if got := find("telemetry_source_conns", "ip", "other"); got != 1 {
		t.Fatalf("other source gauge = %v, want 1", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	tr, log := newTracked()
	conn(log, "10.0.0.1", "dropped", true, false)
	lookup(log, addr.MakeIPv4(10, 0, 0, 1), false)
	b, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var round Snapshot
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if round.Conns != 1 || round.DNSBL.Lookups != 1 {
		t.Fatalf("roundtrip = %+v", round)
	}
}

func TestConcurrentEmitAndSnapshot(t *testing.T) {
	tr, log := newTracked()
	reg := metrics.NewRegistry()
	tr.Register(reg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				conn(log, fmt.Sprintf("10.%d.0.%d", w, i%4), "dropped", true, false)
				lookup(log, addr.MakeIPv4(10, byte(w), 0, byte(i%4+1)), i%4 != 0)
			}
		}()
	}
	// Snapshot and scrape concurrently with the writers: this is the
	// lock-order test between tracker mutex and registry snapshot.
	for i := 0; i < 50; i++ {
		_ = tr.Snapshot()
		_ = reg.Snapshot()
	}
	wg.Wait()
	s := tr.Snapshot()
	if s.Conns != 1600 || s.DNSBL.Lookups != 1600 {
		t.Fatalf("counts = %d/%d, want 1600/1600", s.Conns, s.DNSBL.Lookups)
	}
}

func TestTrackerCountsGeneratedDSNs(t *testing.T) {
	tr, log := newTracked()
	reg := metrics.NewRegistry()
	tr.Register(reg)
	log.Info("queue.bounce", 0,
		eventlog.Str("id", "Q1"), eventlog.Str("bounce_id", "Q2"))
	log.Info("queue.bounce", 0,
		eventlog.Str("id", "Q3"), eventlog.Str("bounce_id", "Q4"))
	if got := tr.Snapshot().DSNsGenerated; got != 2 {
		t.Fatalf("DSNsGenerated = %d, want 2", got)
	}
	mt, ok := reg.Find("telemetry_dsns_generated")
	if !ok {
		t.Fatal("telemetry_dsns_generated gauge missing")
	}
	if mt.Value != 2 {
		t.Fatalf("gauge = %v, want 2", mt.Value)
	}
}
