package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// Aggregator stitches message traces across a cluster: each node's
// admin endpoint serves only the spans that node recorded (/trace/{id},
// /traces — see internal/admin.WithTrace), and the aggregator fans a
// query out to every peer and merges the answers by trace id. It is the
// cluster-wide read side of the director-tier tracing story: the
// director mints the id, the shards append their spans, and any
// aggregator-equipped observer (mailtop -cluster, the trace experiment)
// can reassemble the whole lifecycle from the per-node fragments.
//
// The aggregator is stateless and safe for concurrent use; every query
// hits the peers live, so it observes exactly what each node's span
// ring still retains.
type Aggregator struct {
	peers  []string
	client *http.Client
}

// NewAggregator returns an aggregator over the peers' admin base URLs
// (e.g. "http://10.0.0.1:8025"). A scheme-less peer is assumed http.
// timeout bounds each per-peer request (default 2s).
func NewAggregator(peers []string, timeout time.Duration) *Aggregator {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	norm := make([]string, 0, len(peers))
	for _, p := range peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		norm = append(norm, p)
	}
	return &Aggregator{peers: norm, client: &http.Client{Timeout: timeout}}
}

// Peers returns the normalized peer base URLs.
func (a *Aggregator) Peers() []string { return append([]string(nil), a.peers...) }

// fetchLines GETs one peer endpoint and returns the response body.
// Unreachable peers are soft errors — a cluster query degrades to the
// nodes that answer rather than failing outright.
func (a *Aggregator) fetchBody(peer, path string) (io.ReadCloser, error) {
	resp, err := a.client.Get(peer + path)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("telemetry: %s%s: status %d", peer, path, resp.StatusCode)
	}
	return resp.Body, nil
}

// FetchTrace fans /trace/{id} out to every peer and returns the
// stitched, time-ordered span set. Peers that are down or do not serve
// the endpoint are skipped; their names are returned in missing so the
// caller can flag a partial view. An error is returned only when the id
// is malformed.
func (a *Aggregator) FetchTrace(id string) (spans []trace.MessageSpan, missing []string, err error) {
	if _, _, ok := trace.ParseTraceID(id); !ok {
		return nil, nil, fmt.Errorf("telemetry: bad trace id %q (want 32 hex digits)", id)
	}
	for _, peer := range a.peers {
		body, ferr := a.fetchBody(peer, "/trace/"+id)
		if ferr != nil {
			missing = append(missing, peer)
			continue
		}
		got, perr := trace.ParseMessageSpans(body)
		body.Close()
		if perr != nil {
			missing = append(missing, peer)
			continue
		}
		spans = append(spans, got...)
	}
	return trace.StitchSpans(spans), missing, nil
}

// RecentTraces merges every peer's /traces listing into one
// deduplicated id list, most-recently-seen first, capped at max (0: no
// cap). Ordering across nodes is approximate — each peer reports
// newest-first and the merge interleaves peers in order — but the
// director's ids lead in practice because every trace starts there.
func (a *Aggregator) RecentTraces(max int) []string {
	seen := make(map[string]bool)
	perPeer := make([][]string, 0, len(a.peers))
	for _, peer := range a.peers {
		body, err := a.fetchBody(peer, "/traces")
		if err != nil {
			continue
		}
		data, rerr := io.ReadAll(io.LimitReader(body, 1<<20))
		body.Close()
		if rerr != nil {
			continue
		}
		var ids []string
		for _, ln := range strings.Split(string(data), "\n") {
			ln = strings.TrimSpace(ln)
			if ln != "" {
				ids = append(ids, ln)
			}
		}
		perPeer = append(perPeer, ids)
	}
	// Round-robin across peers so one chatty node cannot crowd the
	// others out of a capped listing.
	var out []string
	for i := 0; ; i++ {
		advanced := false
		for _, ids := range perPeer {
			if i >= len(ids) {
				continue
			}
			advanced = true
			if !seen[ids[i]] {
				seen[ids[i]] = true
				out = append(out, ids[i])
				if max > 0 && len(out) >= max {
					return out
				}
			}
		}
		if !advanced {
			return out
		}
	}
}

// StageLatency is one node's observed latency for one message stage,
// extracted from its retained spans.
type StageLatency struct {
	Node  string
	Stage string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Mean returns the average span duration.
func (s StageLatency) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// StageLatencies folds a span set into per-(node, stage) latency rows,
// sorted by node then by the canonical stage order — the table mailtop
// -cluster renders.
func StageLatencies(spans []trace.MessageSpan) []StageLatency {
	type key struct{ node, stage string }
	acc := make(map[key]*StageLatency)
	for _, sp := range spans {
		k := key{sp.Node, sp.Stage}
		row, ok := acc[k]
		if !ok {
			row = &StageLatency{Node: sp.Node, Stage: sp.Stage}
			acc[k] = row
		}
		d := sp.Duration()
		row.Count++
		row.Total += d
		if d > row.Max {
			row.Max = d
		}
	}
	stageRank := make(map[string]int, len(trace.MessageStages()))
	for i, st := range trace.MessageStages() {
		stageRank[st] = i
	}
	out := make([]StageLatency, 0, len(acc))
	for _, row := range acc {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		ri, iok := stageRank[out[i].Stage]
		rj, jok := stageRank[out[j].Stage]
		if iok != jok {
			return iok // known stages before ad-hoc ones
		}
		if ri != rj {
			return ri < rj
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// FetchAllSpans fans /trace/{id} out for every id RecentTraces reports,
// returning the union span set — the feed for a cluster-wide stage
// latency table. maxTraces caps how many traces are fetched (0: 32).
func (a *Aggregator) FetchAllSpans(maxTraces int) []trace.MessageSpan {
	if maxTraces <= 0 {
		maxTraces = 32
	}
	var all []trace.MessageSpan
	for _, id := range a.RecentTraces(maxTraces) {
		spans, _, err := a.FetchTrace(id)
		if err != nil {
			continue
		}
		all = append(all, spans...)
	}
	return trace.StitchSpans(all)
}
