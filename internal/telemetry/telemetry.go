// Package telemetry computes live "spam weather" from the structured
// event stream: a rolling view of the workload mix the paper argues a
// mail server must be designed around (§3 — spam is the common case).
//
// A Tracker attaches to an eventlog.Log as an *observer*, so it sees
// every event regardless of the operator's log level or sampling, and
// derives:
//
//   - the bounce ratio, cumulative and as an EWMA — the live analogue of
//     the paper's Figure 3 daily series;
//   - handoff savings: the fraction of connections finished without ever
//     occupying an smtpd worker — the quantity fork-after-trust (§5)
//     exists to maximize (identically 0 under the vanilla architecture);
//   - DNSBL /25-prefix locality: how often a lookup lands in a /25 the
//     server has already seen, and the cache-savings estimate that
//     locality implies — the §7 argument for prefix-grained caching,
//     observed on the live traffic;
//   - top talkers by source IP, with bounded cardinality.
//
// The aggregates are exported as registry gauge-funcs (so they ride the
// existing /metrics scrape) and as a JSON Snapshot served by the admin
// endpoint's /workload route; cmd/mailtop renders both.
package telemetry

import (
	"sort"
	"sync"

	"repro/internal/addr"
	"repro/internal/eventlog"
	"repro/internal/metrics"
)

// The event names and fields the tracker consumes. The producing
// packages (smtpserver, dnsbl) emit them under the event schema
// documented in DESIGN.md; the tracker ignores everything else, so
// attaching it to a log with a richer stream is free.
const (
	evConn   = "smtpd.conn"   // fields: ip (string), outcome, bounce (bool), worker (bool)
	evLookup = "dnsbl.lookup" // fields: ip (IP), hit (bool), stale (bool)
	evBounce = "queue.bounce" // fields: id, bounce_id, to — one DSN generated
)

// Talker is one source in the top-talkers list.
type Talker struct {
	IP    string `json:"ip"`
	Conns uint64 `json:"conns"`
}

// DNSBLWeather is the lookup-locality section of a Snapshot.
type DNSBLWeather struct {
	// Lookups is the number of DNSBL lookups observed.
	Lookups uint64 `json:"lookups"`
	// CacheHits counts lookups answered from the resolver cache.
	CacheHits uint64 `json:"cache_hits"`
	// StaleServed counts lookups answered from expired entries.
	StaleServed uint64 `json:"stale_served"`
	// UniquePrefixes is the number of distinct /25 prefixes seen (capped;
	// see WithMaxPrefixes).
	UniquePrefixes int `json:"unique_prefixes"`
	// PrefixLocality is the fraction of lookups whose /25 prefix had
	// already been seen — the paper's §7 locality, measured live.
	PrefixLocality float64 `json:"prefix_locality"`
	// CacheSavingsEst estimates the fraction of upstream queries a
	// /25-grained cache avoids: 1 − unique-prefixes ⁄ lookups.
	CacheSavingsEst float64 `json:"cache_savings_est"`
}

// Snapshot is a point-in-time JSON view of the spam weather.
type Snapshot struct {
	// Conns is the number of finished connections observed.
	Conns uint64 `json:"conns"`
	// Bounced counts connections flagged as bounces (no mail delivered:
	// §4.1 bounces, unfinished sessions, and policy/DNSBL rejects).
	Bounced uint64 `json:"bounced"`
	// WorkerConns counts connections that occupied an smtpd worker.
	WorkerConns uint64 `json:"worker_conns"`
	// BounceRatio is Bounced / Conns.
	BounceRatio float64 `json:"bounce_ratio"`
	// BounceRatioEWMA is the exponentially weighted bounce ratio — the
	// live weather, responsive to shifts in the mix.
	BounceRatioEWMA float64 `json:"bounce_ratio_ewma"`
	// DSNsGenerated counts outbound DSN bounces the queue synthesized
	// for undeliverable mail — the sending side of the paper's §4.1
	// bounce traffic, as opposed to Bounced which observes it arriving.
	DSNsGenerated uint64 `json:"dsns_generated"`
	// HandoffSavings is 1 − WorkerConns ⁄ Conns: the fraction of
	// connections that never cost a worker.
	HandoffSavings float64 `json:"handoff_savings"`
	// Outcomes counts finished connections by their outcome field.
	Outcomes map[string]uint64 `json:"outcomes"`
	// DNSBL is the lookup-locality weather.
	DNSBL DNSBLWeather `json:"dnsbl"`
	// TopTalkers lists the busiest sources, descending.
	TopTalkers []Talker `json:"top_talkers"`
}

// Tracker derives the spam weather from an event stream. It implements
// eventlog.Sink; attach it with eventlog.WithObserver. Safe for
// concurrent use.
type Tracker struct {
	mu sync.Mutex

	alpha    float64
	ewma     float64
	ewmaInit bool

	conns, bounced, worker uint64
	dsns                   uint64
	outcomes               map[string]uint64

	lookups, repeats, cacheHits, stale uint64
	prefixes                           map[addr.Prefix]struct{}
	maxPrefixes                        int
	prefixesOverflow                   bool

	talkers    map[string]uint64
	otherConns uint64
	maxSources int

	reg       *metrics.Registry
	maxGauged int
	gauged    map[string]bool
}

// TrackerOption configures a Tracker (see New).
type TrackerOption func(*Tracker)

// WithEWMAWindow sets the EWMA window in connections (α = 2⁄(n+1);
// default 256).
func WithEWMAWindow(n int) TrackerOption {
	return func(t *Tracker) {
		if n > 0 {
			t.alpha = 2 / (float64(n) + 1)
		}
	}
}

// WithMaxSources caps the per-source talker map (default 1024); sources
// beyond the cap aggregate into the "other" talker.
func WithMaxSources(n int) TrackerOption {
	return func(t *Tracker) {
		if n > 0 {
			t.maxSources = n
		}
	}
}

// WithMaxPrefixes caps the distinct-/25 set used for the locality figure
// (default 65536). Past the cap, new prefixes count as repeats and the
// locality figure becomes an over-estimate (flagged in DESIGN.md).
func WithMaxPrefixes(n int) TrackerOption {
	return func(t *Tracker) {
		if n > 0 {
			t.maxPrefixes = n
		}
	}
}

// WithMaxGaugedSources caps how many per-source gauge-func series the
// tracker registers (default 32); the remainder aggregate into the
// ip="other" series. The registry's own label-cardinality guard is the
// backstop behind this cap.
func WithMaxGaugedSources(n int) TrackerOption {
	return func(t *Tracker) {
		if n >= 0 {
			t.maxGauged = n
		}
	}
}

// New returns a Tracker.
func New(opts ...TrackerOption) *Tracker {
	t := &Tracker{
		alpha:       2.0 / 257,
		outcomes:    make(map[string]uint64, 8),
		prefixes:    make(map[addr.Prefix]struct{}, 256),
		maxPrefixes: 65536,
		talkers:     make(map[string]uint64, 256),
		maxSources:  1024,
		maxGauged:   32,
		gauged:      make(map[string]bool, 32),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Register exports the weather aggregates into reg as gauge-funcs
// (telemetry_* families) and enables per-source telemetry_source_conns
// gauges for the top talkers as they appear.
func (t *Tracker) Register(reg *metrics.Registry) {
	t.mu.Lock()
	t.reg = reg
	t.mu.Unlock()
	reg.GaugeFunc("telemetry_conns", func() float64 { return float64(t.get(&t.conns)) })
	reg.GaugeFunc("telemetry_bounce_ratio", func() float64 { return t.Snapshot().BounceRatio })
	reg.GaugeFunc("telemetry_bounce_ratio_ewma", func() float64 {
		t.mu.Lock()
		defer t.mu.Unlock()
		return t.ewma
	})
	reg.GaugeFunc("telemetry_dsns_generated", func() float64 { return float64(t.get(&t.dsns)) })
	reg.GaugeFunc("telemetry_handoff_savings", func() float64 { return t.Snapshot().HandoffSavings })
	reg.GaugeFunc("telemetry_dnsbl_prefix_locality", func() float64 { return t.Snapshot().DNSBL.PrefixLocality })
	reg.GaugeFunc("telemetry_dnsbl_cache_savings_est", func() float64 { return t.Snapshot().DNSBL.CacheSavingsEst })
	reg.GaugeFunc("telemetry_source_conns", func() float64 {
		t.mu.Lock()
		defer t.mu.Unlock()
		var sum uint64
		for ip, n := range t.talkers {
			if !t.gauged[ip] {
				sum += n
			}
		}
		return float64(sum + t.otherConns)
	}, "ip", "other")
}

// get reads one counter under the lock (for gauge-func closures).
func (t *Tracker) get(p *uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return *p
}

// Emit implements eventlog.Sink: it consumes the workload events and
// ignores everything else.
func (t *Tracker) Emit(e eventlog.Event) {
	switch e.Name {
	case evConn:
		t.observeConn(&e)
	case evLookup:
		t.observeLookup(&e)
	case evBounce:
		t.mu.Lock()
		t.dsns++
		t.mu.Unlock()
	}
}

// observeConn folds one finished connection into the weather.
func (t *Tracker) observeConn(e *eventlog.Event) {
	bounce := false
	if f, ok := e.Field("bounce"); ok {
		bounce = f.Int() != 0
	}
	worker := false
	if f, ok := e.Field("worker"); ok {
		worker = f.Int() != 0
	}
	outcome := ""
	if f, ok := e.Field("outcome"); ok {
		outcome = f.Str()
	}
	ip := ""
	if f, ok := e.Field("ip"); ok {
		ip = f.Str()
	}

	var gaugeIP string
	t.mu.Lock()
	t.conns++
	if bounce {
		t.bounced++
	}
	if worker {
		t.worker++
	}
	if outcome != "" {
		t.outcomes[outcome]++
	}
	x := 0.0
	if bounce {
		x = 1.0
	}
	if !t.ewmaInit {
		t.ewma, t.ewmaInit = x, true
	} else {
		t.ewma += t.alpha * (x - t.ewma)
	}
	if ip != "" {
		if _, ok := t.talkers[ip]; ok || len(t.talkers) < t.maxSources {
			t.talkers[ip]++
			if t.reg != nil && !t.gauged[ip] && len(t.gauged) < t.maxGauged {
				t.gauged[ip] = true
				gaugeIP = ip
			}
		} else {
			t.otherConns++
		}
	}
	reg := t.reg
	t.mu.Unlock()

	// Gauge-func registration takes the registry's write lock; doing it
	// outside t.mu keeps the lock order one-way (registry snapshots call
	// back into t.mu via the gauge closures).
	if gaugeIP != "" {
		ipKey := gaugeIP
		reg.GaugeFunc("telemetry_source_conns", func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(t.talkers[ipKey])
		}, "ip", ipKey)
	}
}

// observeLookup folds one DNSBL lookup into the locality weather.
func (t *Tracker) observeLookup(e *eventlog.Event) {
	f, ok := e.Field("ip")
	if !ok {
		return
	}
	prefix := addr.IPv4(f.Int()).Prefix25()
	hit := false
	if hf, ok := e.Field("hit"); ok {
		hit = hf.Int() != 0
	}
	stale := false
	if sf, ok := e.Field("stale"); ok {
		stale = sf.Int() != 0
	}
	t.mu.Lock()
	t.lookups++
	if hit {
		t.cacheHits++
	}
	if stale {
		t.stale++
	}
	if _, seen := t.prefixes[prefix]; seen {
		t.repeats++
	} else if len(t.prefixes) < t.maxPrefixes {
		t.prefixes[prefix] = struct{}{}
	} else {
		// Capped: count as a repeat and flag the estimate as optimistic.
		t.prefixesOverflow = true
		t.repeats++
	}
	t.mu.Unlock()
}

// Snapshot returns the current weather.
func (t *Tracker) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{
		Conns:           t.conns,
		Bounced:         t.bounced,
		WorkerConns:     t.worker,
		BounceRatioEWMA: t.ewma,
		DSNsGenerated:   t.dsns,
		Outcomes:        make(map[string]uint64, len(t.outcomes)),
	}
	for k, v := range t.outcomes {
		s.Outcomes[k] = v
	}
	if t.conns > 0 {
		s.BounceRatio = float64(t.bounced) / float64(t.conns)
		s.HandoffSavings = 1 - float64(t.worker)/float64(t.conns)
	}
	s.DNSBL = DNSBLWeather{
		Lookups:        t.lookups,
		CacheHits:      t.cacheHits,
		StaleServed:    t.stale,
		UniquePrefixes: len(t.prefixes),
	}
	if t.lookups > 0 {
		s.DNSBL.PrefixLocality = float64(t.repeats) / float64(t.lookups)
		s.DNSBL.CacheSavingsEst = 1 - float64(len(t.prefixes))/float64(t.lookups)
	}
	s.TopTalkers = t.topTalkersLocked(10)
	return s
}

// topTalkersLocked returns the n busiest sources; t.mu must be held.
func (t *Tracker) topTalkersLocked(n int) []Talker {
	out := make([]Talker, 0, len(t.talkers)+1)
	for ip, c := range t.talkers {
		out = append(out, Talker{IP: ip, Conns: c})
	}
	if t.otherConns > 0 {
		out = append(out, Talker{IP: "other", Conns: t.otherConns})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Conns != out[j].Conns {
			return out[i].Conns > out[j].Conns
		}
		return out[i].IP < out[j].IP
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
