package queue

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bounce"
	"repro/internal/costmodel"
	"repro/internal/fsim"
	"repro/internal/spool"
)

// collector is a Deliverer recording items, with an optional failure
// script keyed by (id, attempt).
type collector struct {
	mu        sync.Mutex
	delivered []*Item
	failUntil map[string]int // id -> fail attempts below this
}

func (c *collector) Deliver(item *Item) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failUntil != nil && item.Attempts < c.failUntil[item.ID] {
		return errors.New("transient failure")
	}
	cp := *item
	c.delivered = append(c.delivered, &cp)
	return nil
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.delivered)
}

func TestEnqueueDeliver(t *testing.T) {
	col := &collector{}
	m, err := NewManager(Config{Deliverer: col})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	id, err := m.Enqueue("s@a.test", []string{"r@b.test"}, []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty queue id")
	}
	if !m.WaitIdle(2 * time.Second) {
		t.Fatal("queue never idle")
	}
	if col.count() != 1 {
		t.Fatalf("delivered = %d", col.count())
	}
	st := m.Stats()
	if st.Enqueued != 1 || st.Delivered != 1 || st.Dead != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueIDsUnique(t *testing.T) {
	col := &collector{}
	m, _ := NewManager(Config{Deliverer: col})
	defer m.Close()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id, err := m.Enqueue("s@a.test", []string{"r@b.test"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
	if id := m.NewID(); seen[id] {
		t.Fatal("NewID collided with Enqueue ids")
	}
}

func TestRetryThenSucceed(t *testing.T) {
	col := &collector{failUntil: map[string]int{}}
	m, _ := NewManager(Config{
		Deliverer:   col,
		RetryDelay:  5 * time.Millisecond,
		MaxAttempts: 5,
	})
	defer m.Close()
	// Every mail fails its first two attempts.
	col.mu.Lock()
	col.failUntil["Q0000000000000001"] = 3
	col.mu.Unlock()
	m.Enqueue("s@a.test", []string{"r@b.test"}, nil)
	if !m.WaitIdle(5 * time.Second) {
		t.Fatal("queue never idle")
	}
	if col.count() != 1 {
		t.Fatalf("delivered = %d", col.count())
	}
	st := m.Stats()
	if st.Deferred != 2 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if col.delivered[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", col.delivered[0].Attempts)
	}
}

func TestDeadAfterMaxAttempts(t *testing.T) {
	failing := DelivererFunc(func(item *Item) error { return errors.New("permanent") })
	m, _ := NewManager(Config{
		Deliverer:   failing,
		RetryDelay:  2 * time.Millisecond,
		MaxAttempts: 3,
	})
	defer m.Close()
	m.Enqueue("s@a.test", []string{"r@b.test"}, nil)
	if !m.WaitIdle(5 * time.Second) {
		t.Fatal("queue never idle")
	}
	st := m.Stats()
	if st.Dead != 1 || st.Delivered != 0 || st.Deferred != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIntakeLimitBackpressure(t *testing.T) {
	block := make(chan struct{})
	slow := DelivererFunc(func(item *Item) error { <-block; return nil })
	m, _ := NewManager(Config{Deliverer: slow, ActiveLimit: 1, IntakeLimit: 2})
	defer func() {
		close(block)
		m.Close()
	}()
	// Fill: 1 in flight + 2 queued; the next must fail fast.
	sawFull := false
	for i := 0; i < 10; i++ {
		_, err := m.Enqueue("s@a.test", []string{"r@b.test"}, nil)
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("intake limit never hit")
	}
}

func TestSpoolLifecycle(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	gate := make(chan struct{})
	col := &collector{}
	gated := DelivererFunc(func(item *Item) error {
		<-gate
		return col.Deliver(item)
	})
	m, _ := NewManager(Config{Deliverer: gated, Store: spool.New(fs, "")})
	defer m.Close()
	id, err := m.Enqueue("s@a.test", []string{"r1@b.test", "r2@b.test"}, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	// While undelivered, the mail sits in the active lane with envelope
	// + body.
	waitFor(t, func() bool { return fs.Exists("queue/active/" + id) })
	sz, _ := fs.Size("queue/active/" + id)
	if sz == 0 {
		t.Fatal("spool file empty")
	}
	close(gate)
	if !m.WaitIdle(2 * time.Second) {
		t.Fatal("queue never idle")
	}
	waitFor(t, func() bool { return !fs.Exists("queue/active/" + id) })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEnqueueValidation(t *testing.T) {
	m, _ := NewManager(Config{Deliverer: &collector{}})
	defer m.Close()
	if _, err := m.Enqueue("s@a.test", nil, nil); err == nil {
		t.Fatal("no recipients accepted")
	}
}

func TestNewManagerRequiresDeliverer(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Fatal("nil deliverer accepted")
	}
}

func TestCloseRejectsEnqueue(t *testing.T) {
	m, _ := NewManager(Config{Deliverer: &collector{}})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Enqueue("s@a.test", []string{"r@b.test"}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close = %v", err)
	}
	if err := m.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close = %v", err)
	}
}

func TestCloseCancelsDeferred(t *testing.T) {
	failing := DelivererFunc(func(item *Item) error { return errors.New("x") })
	m, _ := NewManager(Config{Deliverer: failing, RetryDelay: time.Hour, MaxAttempts: 5})
	m.Enqueue("s@a.test", []string{"r@b.test"}, nil)
	waitFor(t, func() bool { return m.Stats().Waiting == 1 })
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Waiting != 0 {
		t.Fatal("deferred timer survived close")
	}
}

func TestConcurrentEnqueue(t *testing.T) {
	col := &collector{}
	m, _ := NewManager(Config{Deliverer: col, ActiveLimit: 8, IntakeLimit: 4096})
	defer m.Close()
	var wg sync.WaitGroup
	const producers, each = 8, 50
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := m.Enqueue("s@a.test",
					[]string{fmt.Sprintf("r%d-%d@b.test", p, i)}, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if !m.WaitIdle(5 * time.Second) {
		t.Fatal("queue never idle")
	}
	if col.count() != producers*each {
		t.Fatalf("delivered = %d, want %d", col.count(), producers*each)
	}
}

func TestItemDataIsolated(t *testing.T) {
	var got []byte
	col := DelivererFunc(func(item *Item) error {
		got = item.Data
		return nil
	})
	m, _ := NewManager(Config{Deliverer: col})
	defer m.Close()
	buf := []byte("original")
	m.Enqueue("s@a.test", []string{"r@b.test"}, buf)
	m.WaitIdle(2 * time.Second)
	buf[0] = 'X' // caller mutates after enqueue
	if string(got) != "original" {
		t.Fatalf("queued data aliased caller buffer: %q", got)
	}
}

func TestBackoffShape(t *testing.T) {
	m, _ := NewManager(Config{
		Deliverer:     &collector{},
		RetryDelay:    10 * time.Millisecond,
		MaxRetryDelay: 80 * time.Millisecond,
		RetryJitter:   -1, // deterministic
	})
	defer m.Close()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, tc := range []struct {
		streak int
		want   time.Duration
	}{
		{1, 10 * time.Millisecond},
		{2, 20 * time.Millisecond},
		{3, 40 * time.Millisecond},
		{4, 80 * time.Millisecond},
		{10, 80 * time.Millisecond}, // capped
		{60, 80 * time.Millisecond}, // shift-overflow guard
	} {
		if got := m.backoffLocked(tc.streak); got != tc.want {
			t.Errorf("backoff(streak=%d) = %v, want %v", tc.streak, got, tc.want)
		}
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	m, _ := NewManager(Config{
		Deliverer:     &collector{},
		RetryDelay:    100 * time.Millisecond,
		MaxRetryDelay: time.Second,
		RetryJitter:   0.2,
	})
	defer m.Close()
	m.mu.Lock()
	defer m.mu.Unlock()
	varied := false
	for i := 0; i < 64; i++ {
		d := m.backoffLocked(1)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered delay %v outside ±20%% of 100ms", d)
		}
		if d != 100*time.Millisecond {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never varied the delay")
	}
}

func TestDestConcurrencyLimit(t *testing.T) {
	var cur, peak int32
	slow := DelivererFunc(func(item *Item) error {
		n := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		atomic.AddInt32(&cur, -1)
		return nil
	})
	m, _ := NewManager(Config{
		Deliverer:       slow,
		ActiveLimit:     4,
		DestConcurrency: 1,
		RetryDelay:      2 * time.Millisecond,
	})
	defer m.Close()
	for i := 0; i < 4; i++ {
		if _, err := m.Enqueue("s@a.test", []string{fmt.Sprintf("r%d@same.test", i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !m.WaitIdle(5 * time.Second) {
		t.Fatal("queue never idle")
	}
	if st := m.Stats(); st.Delivered != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if p := atomic.LoadInt32(&peak); p != 1 {
		t.Fatalf("peak same-destination concurrency = %d, want 1", p)
	}
}

func TestExhaustedMailBounces(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	var bounces []*Item
	var mu sync.Mutex
	del := DelivererFunc(func(item *Item) error {
		if item.Sender == "" { // the DSN coming back around
			mu.Lock()
			cp := *item
			bounces = append(bounces, &cp)
			mu.Unlock()
			return nil
		}
		return errors.New("remote down")
	})
	m, _ := NewManager(Config{
		Deliverer:   del,
		Store:       spool.New(fs, ""),
		MaxAttempts: 2,
		RetryDelay:  time.Millisecond,
		RetryJitter: -1,
		Bounce:      bounce.New("mx.test").Synthesize,
	})
	defer m.Close()
	id, err := m.Enqueue("alice@origin.test", []string{"bob@remote.test"}, []byte("Subject: hi\r\n\r\nx"))
	if err != nil {
		t.Fatal(err)
	}
	if !m.WaitIdle(5 * time.Second) {
		t.Fatal("queue never idle")
	}
	st := m.Stats()
	if st.Bounced != 1 || st.Dead != 0 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bounces) != 1 {
		t.Fatalf("bounces delivered = %d", len(bounces))
	}
	b := bounces[0]
	if len(b.Rcpts) != 1 || b.Rcpts[0] != "alice@origin.test" {
		t.Fatalf("bounce rcpts = %v", b.Rcpts)
	}
	if !strings.Contains(string(b.Data), "X-Queue-ID: "+id) {
		t.Fatal("DSN does not reference the failed queue id")
	}
	// Everything finished: all lanes empty.
	for _, lane := range spool.Lanes {
		if d := m.LaneDepth(lane); d != 0 {
			t.Fatalf("lane %s depth = %d after drain", lane, d)
		}
	}
}

func TestDoubleBounceGoesToHold(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	failing := DelivererFunc(func(item *Item) error { return errors.New("remote down") })
	m, _ := NewManager(Config{
		Deliverer:   failing,
		Store:       spool.New(fs, ""),
		MaxAttempts: 2,
		RetryDelay:  time.Millisecond,
		RetryJitter: -1,
		Bounce:      bounce.New("mx.test").Synthesize,
	})
	defer m.Close()
	// A mail from the null sender (itself a DSN) that cannot be
	// delivered must park in hold, not generate another bounce.
	id, err := m.Enqueue("", []string{"gone@remote.test"}, []byte("dsn"))
	if err != nil {
		t.Fatal(err)
	}
	if !m.WaitIdle(5 * time.Second) {
		t.Fatal("queue never idle")
	}
	st := m.Stats()
	if st.Held != 1 || st.Bounced != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !fs.Exists("queue/hold/" + id) {
		t.Fatal("held mail missing from the hold lane")
	}
}

// TestKillAndReopenRecoversAll is the acceptance scenario: a manager
// crash-cut (fsim fault) with N accepted-but-undelivered mails must
// recover all N on reopen and deliver each exactly once.
func TestKillAndReopenRecoversAll(t *testing.T) {
	fault := fsim.NewFault()
	gate := make(chan struct{})
	blocked := DelivererFunc(func(item *Item) error {
		<-gate
		return errors.New("power lost")
	})
	m1, err := NewManager(Config{
		Deliverer:   blocked,
		Store:       spool.New(fault, ""),
		ActiveLimit: 1,
		MaxAttempts: 5,
		RetryDelay:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	accepted := map[string]bool{}
	for i := 0; i < n; i++ {
		id, err := m1.Enqueue("s@a.test", []string{fmt.Sprintf("r%d@b.test", i)}, []byte("m"))
		if err != nil {
			t.Fatal(err)
		}
		accepted[id] = true
	}
	waitFor(t, func() bool { return m1.LaneDepth(spool.LaneActive) == n })
	fault.Crash() // the machine dies with all n spooled, none delivered
	close(gate)
	m1.Close()

	fault.Recover()
	col := &collector{}
	m2, err := NewManager(Config{Deliverer: col, Store: spool.New(fault, "")})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.RecoveryStats().Recovered[spool.LaneActive]; got != n {
		t.Fatalf("recovered active = %d, want %d", got, n)
	}
	if !m2.WaitIdle(5 * time.Second) {
		t.Fatal("recovered queue never drained")
	}
	seen := map[string]int{}
	col.mu.Lock()
	for _, it := range col.delivered {
		seen[it.ID]++
	}
	col.mu.Unlock()
	for id := range accepted {
		if seen[id] != 1 {
			t.Errorf("mail %s delivered %d times, want exactly 1", id, seen[id])
		}
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct mails, want %d", len(seen), n)
	}
	// The restarted manager must not reissue recovered ids.
	id, err := m2.Enqueue("s@a.test", []string{"r@b.test"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accepted[id] {
		t.Fatalf("restarted manager reissued id %s", id)
	}
	for _, lane := range spool.Lanes {
		waitFor(t, func() bool { return m2.LaneDepth(lane) == 0 })
	}
}

// TestQueueCrashPointEnumeration drives a full enqueue → defer → retry
// → deliver workload against a fault FS that crashes after every
// possible count of mutating filesystem operations, then reopens and
// checks the invariants: no accepted mail lost, and no mail delivered
// twice by the recovered manager.
func TestQueueCrashPointEnumeration(t *testing.T) {
	for n := 0; n <= 36; n++ {
		fault := fsim.NewFault()
		fault.CrashAfter(n)
		col1 := &collector{failUntil: map[string]int{"Q0000000000000002": 2}}
		m1, err := NewManager(Config{
			Deliverer:   col1,
			Store:       spool.New(fault, ""),
			MaxAttempts: 3,
			RetryDelay:  time.Millisecond,
			RetryJitter: -1,
		})
		if err != nil {
			// The crash landed inside the (empty) recovery scan.
			fault.Recover()
			continue
		}
		accepted := map[string]bool{}
		for i := 0; i < 3; i++ {
			if id, err := m1.Enqueue("s@a.test",
				[]string{fmt.Sprintf("r%d@b.test", i)}, []byte("m")); err == nil {
				accepted[id] = true
			}
		}
		m1.WaitIdle(time.Second)
		m1.Close()

		fault.Recover()
		col2 := &collector{}
		m2, err := NewManager(Config{Deliverer: col2, Store: spool.New(fault, "")})
		if err != nil {
			t.Fatalf("crash@%d: reopen: %v", n, err)
		}
		m2.WaitIdle(2 * time.Second)
		m2.Close()

		got := map[string]int{}
		col1.mu.Lock()
		for _, it := range col1.delivered {
			got[it.ID]++
		}
		col1.mu.Unlock()
		run2 := map[string]int{}
		col2.mu.Lock()
		for _, it := range col2.delivered {
			run2[it.ID]++
			got[it.ID]++
		}
		col2.mu.Unlock()
		for id := range accepted {
			if got[id] == 0 {
				t.Errorf("crash@%d: accepted mail %s lost", n, id)
			}
		}
		for id, c := range run2 {
			if c > 1 {
				t.Errorf("crash@%d: recovered manager delivered %s %d times", n, id, c)
			}
		}
	}
}
