package queue

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/fsim"
)

// collector is a Deliverer recording items, with an optional failure
// script keyed by (id, attempt).
type collector struct {
	mu        sync.Mutex
	delivered []*Item
	failUntil map[string]int // id -> fail attempts below this
}

func (c *collector) Deliver(item *Item) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failUntil != nil && item.Attempts < c.failUntil[item.ID] {
		return errors.New("transient failure")
	}
	cp := *item
	c.delivered = append(c.delivered, &cp)
	return nil
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.delivered)
}

func TestEnqueueDeliver(t *testing.T) {
	col := &collector{}
	m, err := NewManager(Config{Deliverer: col})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	id, err := m.Enqueue("s@a.test", []string{"r@b.test"}, []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty queue id")
	}
	if !m.WaitIdle(2 * time.Second) {
		t.Fatal("queue never idle")
	}
	if col.count() != 1 {
		t.Fatalf("delivered = %d", col.count())
	}
	st := m.Stats()
	if st.Enqueued != 1 || st.Delivered != 1 || st.Dead != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueIDsUnique(t *testing.T) {
	col := &collector{}
	m, _ := NewManager(Config{Deliverer: col})
	defer m.Close()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id, err := m.Enqueue("s@a.test", []string{"r@b.test"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
	if id := m.NewID(); seen[id] {
		t.Fatal("NewID collided with Enqueue ids")
	}
}

func TestRetryThenSucceed(t *testing.T) {
	col := &collector{failUntil: map[string]int{}}
	m, _ := NewManager(Config{
		Deliverer:   col,
		RetryDelay:  5 * time.Millisecond,
		MaxAttempts: 5,
	})
	defer m.Close()
	// Every mail fails its first two attempts.
	col.mu.Lock()
	col.failUntil["Q0000000000000001"] = 3
	col.mu.Unlock()
	m.Enqueue("s@a.test", []string{"r@b.test"}, nil)
	if !m.WaitIdle(5 * time.Second) {
		t.Fatal("queue never idle")
	}
	if col.count() != 1 {
		t.Fatalf("delivered = %d", col.count())
	}
	st := m.Stats()
	if st.Deferred != 2 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if col.delivered[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", col.delivered[0].Attempts)
	}
}

func TestDeadAfterMaxAttempts(t *testing.T) {
	failing := DelivererFunc(func(item *Item) error { return errors.New("permanent") })
	m, _ := NewManager(Config{
		Deliverer:   failing,
		RetryDelay:  2 * time.Millisecond,
		MaxAttempts: 3,
	})
	defer m.Close()
	m.Enqueue("s@a.test", []string{"r@b.test"}, nil)
	if !m.WaitIdle(5 * time.Second) {
		t.Fatal("queue never idle")
	}
	st := m.Stats()
	if st.Dead != 1 || st.Delivered != 0 || st.Deferred != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIntakeLimitBackpressure(t *testing.T) {
	block := make(chan struct{})
	slow := DelivererFunc(func(item *Item) error { <-block; return nil })
	m, _ := NewManager(Config{Deliverer: slow, ActiveLimit: 1, IntakeLimit: 2})
	defer func() {
		close(block)
		m.Close()
	}()
	// Fill: 1 in flight + 2 queued; the next must fail fast.
	sawFull := false
	for i := 0; i < 10; i++ {
		_, err := m.Enqueue("s@a.test", []string{"r@b.test"}, nil)
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("intake limit never hit")
	}
}

func TestSpoolLifecycle(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	gate := make(chan struct{})
	col := &collector{}
	gated := DelivererFunc(func(item *Item) error {
		<-gate
		return col.Deliver(item)
	})
	m, _ := NewManager(Config{Deliverer: gated, Spool: fs})
	defer m.Close()
	id, err := m.Enqueue("s@a.test", []string{"r1@b.test", "r2@b.test"}, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	// While undelivered, the spool file exists with envelope + body.
	waitFor(t, func() bool { return fs.Exists("queue/incoming/" + id) })
	sz, _ := fs.Size("queue/incoming/" + id)
	if sz == 0 {
		t.Fatal("spool file empty")
	}
	close(gate)
	if !m.WaitIdle(2 * time.Second) {
		t.Fatal("queue never idle")
	}
	waitFor(t, func() bool { return !fs.Exists("queue/incoming/" + id) })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEnqueueValidation(t *testing.T) {
	m, _ := NewManager(Config{Deliverer: &collector{}})
	defer m.Close()
	if _, err := m.Enqueue("s@a.test", nil, nil); err == nil {
		t.Fatal("no recipients accepted")
	}
}

func TestNewManagerRequiresDeliverer(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Fatal("nil deliverer accepted")
	}
}

func TestCloseRejectsEnqueue(t *testing.T) {
	m, _ := NewManager(Config{Deliverer: &collector{}})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Enqueue("s@a.test", []string{"r@b.test"}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close = %v", err)
	}
	if err := m.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close = %v", err)
	}
}

func TestCloseCancelsDeferred(t *testing.T) {
	failing := DelivererFunc(func(item *Item) error { return errors.New("x") })
	m, _ := NewManager(Config{Deliverer: failing, RetryDelay: time.Hour, MaxAttempts: 5})
	m.Enqueue("s@a.test", []string{"r@b.test"}, nil)
	waitFor(t, func() bool { return m.Stats().Waiting == 1 })
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Waiting != 0 {
		t.Fatal("deferred timer survived close")
	}
}

func TestConcurrentEnqueue(t *testing.T) {
	col := &collector{}
	m, _ := NewManager(Config{Deliverer: col, ActiveLimit: 8, IntakeLimit: 4096})
	defer m.Close()
	var wg sync.WaitGroup
	const producers, each = 8, 50
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := m.Enqueue("s@a.test",
					[]string{fmt.Sprintf("r%d-%d@b.test", p, i)}, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if !m.WaitIdle(5 * time.Second) {
		t.Fatal("queue never idle")
	}
	if col.count() != producers*each {
		t.Fatalf("delivered = %d, want %d", col.count(), producers*each)
	}
}

func TestItemDataIsolated(t *testing.T) {
	var got []byte
	col := DelivererFunc(func(item *Item) error {
		got = item.Data
		return nil
	})
	m, _ := NewManager(Config{Deliverer: col})
	defer m.Close()
	buf := []byte("original")
	m.Enqueue("s@a.test", []string{"r@b.test"}, buf)
	m.WaitIdle(2 * time.Second)
	buf[0] = 'X' // caller mutates after enqueue
	if string(got) != "original" {
		t.Fatalf("queued data aliased caller buffer: %q", got)
	}
}
