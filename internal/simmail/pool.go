package simmail

import (
	"time"

	"repro/internal/costmodel"
	"repro/internal/sim"
)

// pool models the smtpd process pool: a fixed set of worker process ids
// that serve one connection at a time. Processes are forked lazily (the
// master pays ForkCost once per process, after which postfix recycles
// them — §2) and requests queue FIFO when all are busy, like connections
// waiting for a free smtpd.
type pool struct {
	eng    *sim.Engine
	cpu    *sim.CPU
	limit  int
	free   []int
	next   int // next never-forked process id
	queue  []func(procID int)
	inUse  int
	master int // owner id of the master process

	// busyInt integrates inUse over virtual time (worker-seconds), the
	// numerator of the worker-occupancy metric.
	busyInt float64
	lastAt  time.Duration
}

func newPool(eng *sim.Engine, cpu *sim.CPU, limit int) *pool {
	return &pool{eng: eng, cpu: cpu, limit: limit, next: 1, master: 0}
}

// acquire hands a free process to fn, forking a new one (at the
// master's expense) if the pool has not reached its limit, or queueing
// the request otherwise.
func (p *pool) acquire(fn func(procID int)) {
	p.integrate()
	if len(p.free) > 0 {
		id := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.inUse++
		fn(id)
		return
	}
	if p.next <= p.limit {
		id := p.next
		p.next++
		p.inUse++
		// The master forks the new smtpd; the fork burst belongs to the
		// master's schedule.
		p.cpu.Run(p.master, costmodel.ForkCost, func() { fn(id) })
		return
	}
	p.queue = append(p.queue, fn)
}

// release returns a process to the pool, immediately dispatching the
// oldest queued request if any.
func (p *pool) release(id int) {
	p.integrate()
	p.inUse--
	if len(p.queue) > 0 {
		fn := p.queue[0]
		p.queue = p.queue[1:]
		p.inUse++
		fn(id)
		return
	}
	p.free = append(p.free, id)
}

// busy returns the number of in-use processes.
func (p *pool) busy() int { return p.inUse }

// forked returns the number of processes created so far — the resident
// smtpd population whose footprint scales the context-switch penalty.
func (p *pool) forked() int { return p.next - 1 }

// waiting returns the number of queued acquisitions.
func (p *pool) waiting() int { return len(p.queue) }

// integrate advances the busy-time integral to the current virtual time.
// Called before every inUse mutation.
func (p *pool) integrate() {
	now := p.eng.Now()
	p.busyInt += float64(p.inUse) * (now - p.lastAt).Seconds()
	p.lastAt = now
}

// occupancy returns the fraction of the pool's worker-seconds capacity
// consumed over a run of the given duration.
func (p *pool) occupancy(dur time.Duration) float64 {
	p.integrate()
	if dur <= 0 || p.limit <= 0 {
		return 0
	}
	return p.busyInt / (dur.Seconds() * float64(p.limit))
}
