package simmail

// Calibration report: prints the three cost-sensitive curves (the §3
// tuning sweep, Figure 8, Figure 14) and the Figure 15 cache replay so
// the constants in internal/costmodel can be re-tuned if the model
// changes. Reporting only — the pass/fail assertions live in
// internal/core's shape tests.
//
//	go test ./internal/simmail/ -run TestCalibScan -v -calib

import (
	"flag"
	"fmt"
	"testing"
	"time"

	"repro/internal/dnsbl"
	"repro/internal/sim"
	"repro/internal/trace"
)

var calib = flag.Bool("calib", false, "run the calibration scan")

func TestCalibScan(t *testing.T) {
	if !*calib {
		t.Skip("calibration scan disabled (pass -calib)")
	}
	fmt.Println("== tuning: univ trace, closed 1000 slots ==")
	univ := trace.NewUniv(trace.UnivConfig{Seed: 1, Connections: 15000}).Generate()
	for _, w := range []int{50, 100, 200, 500, 700, 1000} {
		res := RunClosed(Config{Arch: ArchVanilla, Workers: w, Seed: 2}, univ, 1000, 0)
		fmt.Printf("workers=%4d goodput=%6.1f cpu=%.2f disk=%.2f switches=%d lat=%v\n",
			w, res.Goodput, res.CPUUtil, res.DiskUtil, res.Switches, res.MeanLatency)
	}

	fmt.Println("== fig8: bounce sweep, vanilla 500 vs hybrid 700 sockets ==")
	for _, b := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95} {
		conns := trace.BounceSweep(3, 12000, b, "d.test", 400)
		v := RunClosed(Config{Arch: ArchVanilla, Workers: 500, Seed: 2}, conns, 700, 0)
		h := RunClosed(Config{Arch: ArchHybrid, Workers: 500, Sockets: 700, Seed: 2}, conns, 700, 0)
		fmt.Printf("b=%.2f vanilla=%6.1f (sw %7d cpu %.2f disk %.2f) hybrid=%6.1f (sw %7d cpu %.2f)\n",
			b, v.Goodput, v.Switches, v.CPUUtil, v.DiskUtil, h.Goodput, h.Switches, h.CPUUtil)
	}

	fmt.Println("== fig14: sinkhole, open system, ip vs prefix ==")
	sink := trace.NewSinkhole(trace.SinkholeConfig{Seed: 5, Connections: 40000, Prefixes: 3470,
		Duration: trace.SinkholeDuration / trace.SinkholeConnections * 40000})
	conns := sink.Generate()
	for _, rate := range []float64{40, 120, 150, 170, 180, 190, 200} {
		ip := RunOpen(Config{Arch: ArchVanilla, Workers: 256, Seed: 2, DiscardDelivery: true,
			CleanupCPU: time.Millisecond,
			DNSBL:      &DNSBLConfig{Policy: dnsbl.CacheIP}}, conns, rate)
		pf := RunOpen(Config{Arch: ArchVanilla, Workers: 256, Seed: 2, DiscardDelivery: true,
			CleanupCPU: time.Millisecond,
			DNSBL:      &DNSBLConfig{Policy: dnsbl.CachePrefix}}, conns, rate)
		fmt.Printf("rate=%3.0f ip=%6.1f (miss %.3f cpu %.2f) prefix=%6.1f (miss %.3f cpu %.2f) gain=%.1f%%\n",
			rate, ip.Goodput, 1-ip.DNSHitRatio, ip.CPUUtil,
			pf.Goodput, 1-pf.DNSHitRatio, pf.CPUUtil,
			100*(pf.Goodput-ip.Goodput)/ip.Goodput)
	}

	fmt.Println("== fig15: full-scale sinkhole, cache replay with trace timestamps ==")
	full := trace.NewSinkhole(trace.SinkholeConfig{Seed: 7})
	fc := full.Generate()
	for _, pol := range []dnsbl.CachePolicy{dnsbl.CacheIP, dnsbl.CachePrefix} {
		c := dnsbl.NewSimCache(pol, 24*time.Hour, dnsbl.DefaultLatency.Sampler(), sim.NewRNG(99))
		for i := range fc {
			c.Lookup(fc[i].At, fc[i].ClientIP.String(), fc[i].ClientIP.Prefix25().String())
		}
		fmt.Printf("policy=%-6s miss=%.4f hit=%.4f\n", pol, c.MissRatio(), c.HitRatio())
	}
}
