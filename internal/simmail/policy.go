package simmail

import (
	"context"
	"time"

	"repro/internal/policy"
	"repro/internal/trace"
)

// PolicyOptions enables the pre-trust policy engine (internal/policy) in
// the model. The engine runs on virtual time, driven directly; where the
// check executes follows the real servers: inside the already-acquired
// worker for vanilla, inside the master's event loop for hybrid — so
// only the hybrid saves worker time on a policy verdict, the contrast
// the policy-sweep experiment measures.
//
// The DNSBL evidence is modelled by the Listed predicate rather than a
// per-list scan, so policy-on and policy-off runs differ only in
// verdicts (the separately-configured Config.DNSBL cache model keeps
// charging lookup latency either way when enabled).
type PolicyOptions struct {
	// Engine is the verdict pipeline. Required.
	Engine *policy.Engine
	// Listed reports whether a client IP is DNSBL-listed in the modelled
	// world (ground truth from the trace generator).
	Listed func(c *trace.Conn) bool
	// ListedScore is the DNSBL score a listed IP presents to Admit
	// (default 1).
	ListedScore float64
	// RetryAfter, when positive, models standard MTA retry behaviour
	// against greylisting: a non-spam connection whose every valid
	// recipient was greylisted reconnects once after this delay. Spam
	// cannons fire and forget — they never retry — which is the entire
	// mechanism greylisting exploits.
	RetryAfter time.Duration
}

// policyAdmit evaluates connection admission, or Allow when no policy is
// configured.
func (r *runner) policyAdmit(c *connSim) policy.Decision {
	p := r.cfg.Policy
	if p == nil || p.Engine == nil {
		return policy.Decision{}
	}
	var score float64
	if p.Listed != nil && p.Listed(c.tc) {
		score = p.ListedScore
		if score == 0 {
			score = 1
		}
	}
	return p.Engine.Admit(context.Background(), r.eng.Now(), c.tc.ClientIP, score)
}

// policyMail evaluates the MAIL FROM transaction.
func (r *runner) policyMail(c *connSim) policy.Decision {
	p := r.cfg.Policy
	if p == nil || p.Engine == nil {
		return policy.Decision{}
	}
	return p.Engine.Mail(context.Background(), r.eng.Now(), c.tc.ClientIP, c.tc.Sender)
}

// policyRcpt evaluates one valid recipient through the greylist.
func (r *runner) policyRcpt(c *connSim, rcpt string) policy.Decision {
	p := r.cfg.Policy
	if p == nil || p.Engine == nil {
		return policy.Decision{}
	}
	return p.Engine.Rcpt(context.Background(), r.eng.Now(), c.tc.ClientIP, c.tc.Sender, rcpt)
}

// policyRecordReject feeds one 550-rejected recipient to the reputation
// store.
func (r *runner) policyRecordReject(c *connSim) {
	if p := r.cfg.Policy; p != nil && p.Engine != nil {
		p.Engine.RecordRejectedRcpt(r.eng.Now(), c.tc.ClientIP)
	}
}

// policyRecordBounce feeds one completed bounce connection to the
// reputation store.
func (r *runner) policyRecordBounce(c *connSim) {
	if p := r.cfg.Policy; p != nil && p.Engine != nil {
		p.Engine.RecordBounce(r.eng.Now(), c.tc.ClientIP)
	}
}
