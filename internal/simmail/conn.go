package simmail

import (
	"time"

	"repro/internal/costmodel"
	"repro/internal/policy"
	"repro/internal/trace"
)

// connSim walks one trace connection through the modelled server.
type connSim struct {
	r      *runner
	tc     *trace.Conn
	start  time.Duration
	onDone func()

	owner      int // current CPU owner: 0 = master, >0 = smtpd process
	proc       int // assigned smtpd process (0 = none yet)
	rcptIdx    int
	accepted   int
	greylisted int  // valid recipients deferred by the greylist
	retried    bool // this connection is a modelled greylist retry
}

// burst charges one command-processing CPU burst to the connection's
// current owner: a process wakeup for smtpd-owned connections, an event
// dispatch for master-owned ones (the architectural asymmetry of §5).
func (c *connSim) burst(cost time.Duration, then func()) {
	overhead := costmodel.ProcessWakeup
	if c.owner == c.r.pool.master {
		overhead = costmodel.EventLoopDispatch
	}
	c.r.cpu.Run(c.owner, overhead+cost, then)
}

// exchange schedules the next client command one round trip after the
// reply just written, then runs the burst.
func (c *connSim) exchange(cost time.Duration, then func()) {
	c.r.eng.After(c.r.cfg.RTT, func() { c.burst(cost, then) })
}

// startConn is the entry point: the client connects (one RTT of TCP
// handshake) and the connection is admitted per the architecture.
func (r *runner) startConn(tc *trace.Conn, onDone func()) {
	c := &connSim{r: r, tc: tc, start: r.eng.Now(), onDone: onDone}
	r.eng.After(r.cfg.RTT, c.arrive)
}

func (c *connSim) arrive() {
	r := c.r
	switch r.cfg.Arch {
	case ArchHybrid:
		if r.cfg.Sockets > 0 && r.active >= r.cfg.Sockets {
			// The master's socket list is full; the connection waits in
			// the accept backlog.
			r.backlog = append(r.backlog, c.admitHybrid)
			return
		}
		c.admitHybrid()
	default:
		// Vanilla: the whole connection needs an smtpd process first
		// (Figure 6: fork/dispatch happens before the banner).
		r.pool.acquire(func(id int) {
			c.proc, c.owner = id, id
			c.admitted()
		})
	}
}

func (c *connSim) admitHybrid() {
	c.r.active++
	c.owner = c.r.pool.master
	c.admitted()
}

// admitted runs the accept-time work: the DNSBL lookup (when enabled),
// the policy admission verdict, and the banner. The verdict is charged
// to the current owner — an already-acquired worker under vanilla, the
// master under hybrid — which is exactly where the real servers run it.
func (c *connSim) admitted() {
	r := c.r
	banner := func() {
		if d := r.policyAdmit(c); d.Verdict != policy.Allow {
			// 554/421 written instead of the banner; the client is gone
			// one reply later.
			c.burst(costmodel.CommandParse, func() {
				c.finish(policyFinishKind(d))
			})
			return
		}
		c.burst(costmodel.CommandParse, func() {
			// Banner written; HELO arrives a round trip later.
			c.exchange(costmodel.CommandParse, c.afterHelo)
		})
	}
	if r.dns == nil {
		banner()
		return
	}
	ipKey := c.tc.ClientIP.String()
	prefKey := c.tc.ClientIP.Prefix25().String()
	// Cache expiry follows the *trace's* timestamps, not the (possibly
	// rate-accelerated) replay clock — the paper's own emulation method
	// (§7.2 "we emulated DNS caching ... for each mail received").
	lat, miss := r.dns.Lookup(c.tc.At, ipKey, prefKey)
	proceed := func() { r.eng.After(lat, banner) }
	if miss {
		// An upstream query costs server CPU (resolver work, §7.2).
		c.burst(costmodel.DNSQueryCPU, proceed)
		return
	}
	proceed()
}

func (c *connSim) afterHelo() {
	if c.tc.Unfinished {
		// §4.1: the client abandons the session after the handshake.
		c.finish(kindUnfinished)
		return
	}
	// MAIL FROM.
	c.exchange(costmodel.CommandParse, func() {
		if d := c.r.policyMail(c); d.Verdict != policy.Allow {
			// 450 on MAIL; the client QUITs a round trip later.
			c.exchange(costmodel.CommandParse, func() {
				c.finish(policyFinishKind(d))
			})
			return
		}
		c.rcptIdx = 0
		if c.r.cfg.Arch == ArchHybrid && c.r.cfg.Trust == TrustAfterMail && c.proc == 0 {
			// Ablation: delegate before any recipient is validated —
			// bounces occupy workers just like vanilla.
			c.handoff(c.nextRcpt)
			return
		}
		c.nextRcpt()
	})
}

// handoff delegates the connection to an smtpd worker: the master pays
// the task transfer, the connection waits for a free process, and — when
// vector-send batching is disabled — the worker's idle notification costs
// the master one extra event on completion (accounted in finish).
func (c *connSim) handoff(then func()) {
	c.r.handoffs++
	c.burst(costmodel.TaskHandoff, func() {
		c.r.pool.acquire(func(id int) {
			c.proc, c.owner = id, id
			then()
		})
	})
}

func (c *connSim) nextRcpt() {
	if c.rcptIdx >= len(c.tc.Rcpts) {
		c.afterRcpts()
		return
	}
	rcpt := c.tc.Rcpts[c.rcptIdx]
	c.rcptIdx++
	c.exchange(costmodel.CommandParse+costmodel.RcptLookup, func() {
		if !rcpt.Valid {
			// 550 — a bounce signal for the reputation store.
			c.r.policyRecordReject(c)
			c.nextRcpt()
			return
		}
		if d := c.r.policyRcpt(c, rcpt.Addr); d.Verdict != policy.Allow {
			// Greylist 450: the recipient is not recorded, so the
			// connection stays un-trusted (no handoff under hybrid).
			c.greylisted++
			c.nextRcpt()
			return
		}
		c.accepted++
		if c.r.cfg.Arch == ArchHybrid && c.r.cfg.Trust == TrustAfterRcpt && c.proc == 0 {
			// Fork-after-trust: the first valid RCPT triggers
			// delegation (§5.1). The master pays the task handoff and
			// the connection waits for a free smtpd.
			c.handoff(c.nextRcpt)
			return
		}
		c.nextRcpt()
	})
}

func (c *connSim) afterRcpts() {
	if c.accepted == 0 {
		if c.greylisted > 0 {
			// Every valid recipient was deferred; the client QUITs and —
			// if it is a real MTA — retries later (scheduled in finish).
			c.exchange(costmodel.CommandParse, func() { c.finish(kindGreylisted) })
			return
		}
		// Bounce connection: the client gives up and QUITs.
		c.r.policyRecordBounce(c)
		c.exchange(costmodel.CommandParse, func() { c.finish(kindBounce) })
		return
	}
	// DATA command.
	c.exchange(costmodel.CommandParse, func() {
		// 354 written; the body streams in: one round trip plus
		// serialization time.
		size := c.tc.SizeBytes
		transfer := c.r.cfg.RTT + perKB(costmodel.NetPerKB, size)
		c.r.eng.After(transfer, func() { c.receiveBody(size) })
	})
}

func (c *connSim) receiveBody(size int) {
	r := c.r
	if r.cfg.Arch == ArchHybrid && r.cfg.Trust == TrustAfterData && c.proc == 0 {
		// Ablation: the master streams the whole body through its event
		// loop — paying the per-byte event-loop penalty — and only then
		// delegates the heavy processing (§5.2 explains why the paper
		// does not do this: isolation, and the event loop is a poor
		// place for bulk data).
		streamCost := perKB(costmodel.DataPerKB, size) * costmodel.EventLoopDataFactor
		c.burst(streamCost, func() {
			c.handoff(func() { c.processBody(0, size) })
		})
		return
	}
	c.processBody(perKB(costmodel.DataPerKB, size), size)
}

// processBody charges body scanning (when not already paid) plus
// cleanup(8), then the synchronous queue-file write.
func (c *connSim) processBody(dataCost time.Duration, size int) {
	r := c.r
	cpuCost := dataCost + r.cfg.CleanupCPU
	c.burst(cpuCost, func() {
		// The queue file must be durable before the 250 (postfix fsyncs
		// it) — a synchronous disk write.
		r.disk.Submit(QueueFileCost(r.cfg.FSModel, size), func() {
			r.good++
			if !r.cfg.DiscardDelivery {
				c.scheduleDelivery(size)
			}
			// 250 written; client QUITs a round trip later.
			c.exchange(costmodel.CommandParse, func() { c.finish(kindGood) })
		})
	})
}

// deliveryOwner is the CPU owner of the queue-manager/local-delivery
// daemons (one long-lived postfix process pair).
const deliveryOwner = -1

// scheduleDelivery models the asynchronous qmgr→local path: it consumes
// CPU and disk after the SMTP transaction is acknowledged, contending
// with the front end for both.
func (c *connSim) scheduleDelivery(size int) {
	r := c.r
	rcpts := c.accepted
	cpuCost := DeliveryCPU(r.cfg.Store, rcpts)
	r.cpu.Run(deliveryOwner, cpuCost, func() {
		diskCost := DeliveryCost(r.cfg.Store, r.cfg.FSModel, rcpts, size) +
			QueueFileCleanup(r.cfg.FSModel)
		r.disk.Submit(diskCost, nil)
	})
}

// scheduleRetry models a legitimate MTA's response to an all-greylisted
// attempt: the same trace connection reconnects once after RetryAfter.
// Spam sources fire and forget — they never retry — which is the
// asymmetry greylisting exploits.
func (c *connSim) scheduleRetry() {
	r := c.r
	p := r.cfg.Policy
	if p == nil || p.RetryAfter <= 0 || c.retried || c.tc.Spam {
		return
	}
	r.retries++
	r.eng.After(p.RetryAfter, func() {
		rc := &connSim{r: r, tc: c.tc, start: r.eng.Now(), retried: true}
		r.eng.After(r.cfg.RTT, rc.arrive)
	})
}

type finishKind int

const (
	kindGood finishKind = iota + 1
	kindBounce
	kindUnfinished
	kindPolicyRejected
	kindPolicyTempfailed
	kindGreylisted
)

// policyFinishKind maps a refusing policy decision to its finish kind.
func policyFinishKind(d policy.Decision) finishKind {
	if d.Verdict == policy.Reject {
		return kindPolicyRejected
	}
	return kindPolicyTempfailed
}

func (c *connSim) finish(kind finishKind) {
	r := c.r
	switch kind {
	case kindBounce:
		r.bounces++
	case kindUnfinished:
		r.unfinished++
	case kindPolicyRejected:
		r.polRejected++
	case kindPolicyTempfailed:
		r.polTempfail++
	case kindGreylisted:
		r.greylisted++
		c.scheduleRetry()
	}
	r.completed++
	r.latencySum += r.eng.Now() - c.start
	if r.eng.Now() > r.lastFinish {
		r.lastFinish = r.eng.Now()
	}
	if c.proc != 0 {
		if r.cfg.NoVectorSend {
			// Without vector sends the worker must tell the master it is
			// idle before it can receive the next task (§5.3's motivation
			// for batching): one extra master event per delegation.
			r.cpu.Run(r.pool.master, costmodel.EventLoopDispatch+costmodel.TaskHandoff, nil)
		}
		r.pool.release(c.proc)
		c.proc = 0
	}
	if r.cfg.Arch == ArchHybrid {
		r.active--
		if len(r.backlog) > 0 && (r.cfg.Sockets == 0 || r.active < r.cfg.Sockets) {
			next := r.backlog[0]
			r.backlog = r.backlog[1:]
			next()
		}
	}
	if c.onDone != nil {
		c.onDone()
	}
}
