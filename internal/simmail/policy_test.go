package simmail

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/policy"
	"repro/internal/trace"
)

// policyOpts builds a sweep-style policy configuration: listed sources
// rejected, first contacts greylisted, ham retries after 35 s.
func policyOpts(listed map[addr.IPv4]bool) *PolicyOptions {
	eng := policy.New(
		policy.WithGreylist(policy.GreyConfig{MinRetry: 30 * time.Second}),
		policy.WithDNSBLReject(1),
	)
	return &PolicyOptions{
		Engine:      eng,
		Listed:      func(c *trace.Conn) bool { return listed[c.ClientIP] },
		ListedScore: 2,
		RetryAfter:  35 * time.Second,
	}
}

func TestPolicyRejectsListedBeforeHandoff(t *testing.T) {
	conns, listed := trace.PolicySweep(11, 3000, 0.6, "d.test", 100)
	res := RunClosed(Config{
		Arch: ArchHybrid, Workers: 50, Sockets: 100, Seed: 1,
		Policy: policyOpts(listed),
	}, conns, 64, 0)
	if res.PolicyRejected == 0 {
		t.Fatal("no listed connections rejected")
	}
	// Handoffs = delivered mails only: every refused or greylisted
	// connection died in the master.
	if res.Handoffs != res.GoodMails {
		t.Fatalf("handoffs = %d, delivered = %d — refused connections reached workers",
			res.Handoffs, res.GoodMails)
	}
	// Ham all delivers through its single retry; delivered spam is shut
	// out (its sources are listed or greylisted without retry).
	ham := 0
	for i := range conns {
		if !conns[i].Spam {
			ham++
		}
	}
	if res.GoodMails != int64(ham) {
		t.Fatalf("delivered = %d, ham = %d", res.GoodMails, ham)
	}
	if res.Retries == 0 || res.Greylisted < res.Retries {
		t.Fatalf("greylist accounting: greylisted = %d, retries = %d", res.Greylisted, res.Retries)
	}
}

func TestPolicyLowersWorkerOccupancy(t *testing.T) {
	conns, listed := trace.PolicySweep(12, 4000, 0.6, "d.test", 100)
	base := Config{Arch: ArchHybrid, Workers: 50, Sockets: 100, Seed: 1}
	off := RunClosed(base, conns, 64, 0)
	withPolicy := base
	withPolicy.Policy = policyOpts(listed)
	on := RunClosed(withPolicy, conns, 64, 0)
	if off.WorkerOccupancy <= 0 || off.WorkerOccupancy > 1 {
		t.Fatalf("occupancy off out of range: %v", off.WorkerOccupancy)
	}
	if !(on.WorkerOccupancy < off.WorkerOccupancy) {
		t.Fatalf("occupancy on = %v, want strictly below off = %v",
			on.WorkerOccupancy, off.WorkerOccupancy)
	}
}

func TestPolicyRunsDeterministically(t *testing.T) {
	conns, listed := trace.PolicySweep(13, 2000, 0.5, "d.test", 100)
	run := func() Result {
		return RunClosed(Config{
			Arch: ArchHybrid, Workers: 50, Sockets: 100, Seed: 7,
			Policy: policyOpts(listed),
		}, conns, 64, 0)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed policy runs differ:\n%+v\n%+v", a, b)
	}
}

func TestVanillaPolicyStillPaysWorkers(t *testing.T) {
	// Under vanilla the verdict runs inside an already-acquired worker,
	// so refused connections still cycle through the pool — the
	// structural contrast with hybrid.
	conns, listed := trace.PolicySweep(14, 3000, 0.6, "d.test", 100)
	res := RunClosed(Config{
		Arch: ArchVanilla, Workers: 50, Seed: 1,
		Policy: policyOpts(listed),
	}, conns, 64, 0)
	if res.PolicyRejected == 0 {
		t.Fatal("no listed connections rejected")
	}
	if res.Handoffs != 0 {
		t.Fatalf("vanilla handoffs = %d", res.Handoffs)
	}
	// Occupancy still drops versus policy-off (refused dialogs are
	// short) but stays well above the hybrid's, which never pays a
	// worker for them.
	h := RunClosed(Config{
		Arch: ArchHybrid, Workers: 50, Sockets: 100, Seed: 1,
		Policy: policyOpts(listed),
	}, conns, 64, 0)
	if !(h.WorkerOccupancy < res.WorkerOccupancy) {
		t.Fatalf("hybrid occupancy %v not below vanilla %v",
			h.WorkerOccupancy, res.WorkerOccupancy)
	}
}
