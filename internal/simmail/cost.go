package simmail

import (
	"time"

	"repro/internal/costmodel"
)

// StoreKind selects the mailbox format whose disk cost the simulation
// charges — the four variants of Figures 10 and 11.
type StoreKind int

// The four formats.
const (
	StoreMbox StoreKind = iota + 1
	StoreMaildir
	StoreHardlink
	StoreMFS
)

// String names the store for reports.
func (k StoreKind) String() string {
	switch k {
	case StoreMbox:
		return "mbox"
	case StoreMaildir:
		return "maildir"
	case StoreHardlink:
		return "hardlink"
	case StoreMFS:
		return "mfs"
	default:
		return "store?"
	}
}

func perKB(rate time.Duration, bytes int) time.Duration {
	return time.Duration(float64(rate) * float64(bytes) / 1024.0)
}

// mfsKeyRecordBytes is one MFS key-file tuple on disk
// (type + id length + 17-byte queue id + offset + refcount).
const mfsKeyRecordBytes = 32

// mboxFrameBytes is the mbox record framing overhead
// (id length + 17-byte queue id + body length).
const mboxFrameBytes = 2 + 17 + 4

// DeliveryCost returns the disk time to write one mail of the given size
// to rcpts mailboxes under the store format and filesystem personality.
// The op sequences mirror internal/mailstore exactly (steady state:
// mailbox files exist, MFS handles are open); TestDeliveryCostMatchesReal
// asserts the match against the metered in-memory filesystem.
func DeliveryCost(kind StoreKind, fs costmodel.FSModel, rcpts, size int) time.Duration {
	if rcpts < 1 {
		rcpts = 1
	}
	appendBody := fs.AppendFixed + perKB(fs.AppendPerKB, size)
	switch kind {
	case StoreMbox:
		// One open+append of the full framed body per recipient mailbox —
		// the §4.2 duplicated disk I/O.
		framed := fs.AppendFixed + perKB(fs.AppendPerKB, size+mboxFrameBytes)
		return time.Duration(rcpts) * (fs.Open + framed)
	case StoreMaildir:
		// One small-file creation with the body per recipient.
		return time.Duration(rcpts) * (fs.Create + appendBody)
	case StoreHardlink:
		// One created copy plus R−1 hard links.
		return fs.Create + appendBody + time.Duration(rcpts-1)*fs.Link
	case StoreMFS:
		keyAppend := fs.AppendFixed + perKB(fs.AppendPerKB, mfsKeyRecordBytes)
		// MFS frames each record with a 4-byte length header.
		framedBody := fs.AppendFixed + perKB(fs.AppendPerKB, size+4)
		if rcpts == 1 {
			// Body into the mailbox's own data file plus one key tuple.
			return framedBody + keyAppend
		}
		// Single body copy in the shared store, one shared key tuple,
		// and one pointer tuple per recipient mailbox (Figure 9).
		return framedBody + keyAppend + time.Duration(rcpts)*keyAppend
	default:
		return 0
	}
}

// DeliveryCPU returns the local-delivery CPU cost for one mail with the
// given recipient count. Conventional stores run the per-recipient
// delivery path once per mailbox; MFS performs a single NWrite and pays
// only a pointer append for each additional recipient.
func DeliveryCPU(kind StoreKind, rcpts int) time.Duration {
	if rcpts < 1 {
		rcpts = 1
	}
	if kind == StoreMFS {
		return costmodel.DeliverPerRcpt + time.Duration(rcpts-1)*costmodel.MFSPointerCPU
	}
	return time.Duration(rcpts) * costmodel.DeliverPerRcpt
}

// QueueFileCost returns the synchronous disk time of the cleanup stage:
// creating, writing, and fsyncing the queue file that must be durable
// before the server acknowledges DATA with 250.
func QueueFileCost(fs costmodel.FSModel, size int) time.Duration {
	return fs.Create + fs.AppendFixed + perKB(fs.AppendPerKB, size) + fs.Sync
}

// QueueFileCleanup returns the asynchronous cost of removing the queue
// file after successful delivery.
func QueueFileCleanup(fs costmodel.FSModel) time.Duration {
	return fs.Unlink
}
