// Package simmail is the discrete-event model of the whole mail server —
// both architectures, the DNSBL lookup path, and the mailbox store —
// driven by the cost model of internal/costmodel over the kernel of
// internal/sim. It regenerates the paper's cost-sensitive results
// (the §3 tuning curve, Figure 8, Figure 14, and the §8 combined
// numbers) deterministically on any machine.
//
// The model follows one SMTP connection through the same phases the real
// server executes: connect, optional DNSBL lookup, banner, HELO, MAIL,
// RCPTs, DATA, body transfer, cleanup (synchronous queue-file write),
// acknowledgment, asynchronous local delivery, QUIT. Every phase charges
// the modelled CPU (with context-switch accounting keyed by process
// ownership) and the modelled disk, and every client exchange pays the
// emulated network round trip of Table 1.
package simmail

import (
	"time"

	"repro/internal/costmodel"
	"repro/internal/dnsbl"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Architecture selects the concurrency model (mirrors smtpserver's enum
// but stays independent so the simulation has no network dependencies).
type Architecture int

// The two architectures.
const (
	ArchVanilla Architecture = iota + 1
	ArchHybrid
)

// String names the architecture.
func (a Architecture) String() string {
	if a == ArchHybrid {
		return "hybrid"
	}
	return "vanilla"
}

// TrustPoint selects where in the dialog the hybrid master delegates a
// connection to an smtpd worker — the design choice §5.1 makes (after the
// first valid RCPT) and the ablation compares.
type TrustPoint int

// Delegation points.
const (
	// TrustAfterRcpt delegates on the first valid RCPT (the paper).
	TrustAfterRcpt TrustPoint = iota + 1
	// TrustAfterMail delegates right after MAIL FROM — before any
	// recipient is validated, so bounces consume workers again.
	TrustAfterMail
	// TrustAfterData keeps the whole dialog including the body in the
	// master and delegates only the post-receipt processing.
	TrustAfterData
)

// String names the trust point.
func (t TrustPoint) String() string {
	switch t {
	case TrustAfterMail:
		return "after-mail"
	case TrustAfterData:
		return "after-data"
	default:
		return "after-rcpt"
	}
}

// DNSBLConfig enables blacklist lookups in the model.
type DNSBLConfig struct {
	// Policy selects the cache policy (CacheNone / CacheIP /
	// CachePrefix).
	Policy dnsbl.CachePolicy
	// TTL is the cache lifetime (default costmodel.DNSBLCacheTTL).
	TTL time.Duration
	// Latency is the miss-latency distribution (default
	// dnsbl.DefaultLatency).
	Latency dnsbl.LatencyCDF
}

// Config parameterizes one simulation run.
type Config struct {
	// Arch selects the architecture.
	Arch Architecture
	// Workers is the smtpd process limit.
	Workers int
	// Sockets caps concurrent connections in the hybrid master's event
	// loop (§5.4 uses 700); 0 means unlimited.
	Sockets int
	// FSModel is the filesystem personality (default costmodel.Ext3).
	FSModel costmodel.FSModel
	// Store is the mailbox format (default StoreMbox, vanilla postfix).
	Store StoreKind
	// DNSBL, if non-nil, enables blacklist lookups.
	DNSBL *DNSBLConfig
	// Policy, if non-nil, enables the pre-trust policy engine.
	Policy *PolicyOptions
	// RTT is the full client↔server round trip (default 2×NetRTT, the
	// Table 1 emulated delay applied each way).
	RTT time.Duration
	// DiscardDelivery skips mailbox writes after the queue-file ack —
	// the behaviour of a spam sinkhole, which accepts and discards.
	DiscardDelivery bool
	// CleanupCPU overrides the per-mail cleanup(8) CPU cost (default
	// costmodel.CleanupPerMail). A sinkhole runs no content-filter
	// add-ons, so the Figure 14 experiment uses a reduced value.
	CleanupCPU time.Duration
	// Trust selects the hybrid delegation point (default TrustAfterRcpt,
	// the paper's design; see the trust-point ablation).
	Trust TrustPoint
	// NoVectorSend disables §5.3's vector-send batching: every handoff
	// then costs an idle-notification round trip between the worker and
	// the master (an extra master burst per delegated connection).
	NoVectorSend bool
	// Seed drives stochastic elements (think times).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Arch == 0 {
		c.Arch = ArchVanilla
	}
	if c.Workers <= 0 {
		c.Workers = 100
	}
	if c.FSModel.Name == "" {
		c.FSModel = costmodel.Ext3
	}
	if c.Store == 0 {
		c.Store = StoreMbox
	}
	if c.RTT <= 0 {
		c.RTT = 2 * costmodel.NetRTT
	}
	if c.CleanupCPU <= 0 {
		c.CleanupCPU = costmodel.CleanupPerMail
	}
	if c.Trust == 0 {
		c.Trust = TrustAfterRcpt
	}
	return c
}

// Result summarizes one simulation run.
type Result struct {
	// GoodMails is the number of mails acknowledged with 250.
	GoodMails int64
	// Duration is the virtual time from start to the last completion.
	Duration time.Duration
	// Goodput is GoodMails per virtual second.
	Goodput float64
	// Switches is the number of CPU context switches charged.
	Switches int64
	// CPUUtil and DiskUtil are busy-time fractions.
	CPUUtil  float64
	DiskUtil float64
	// BounceConns and UnfinishedConns classify completed connections.
	BounceConns     int64
	UnfinishedConns int64
	// Handoffs counts hybrid delegations.
	Handoffs int64
	// DNSLookups and DNSQueries count blacklist lookups and the subset
	// that went upstream (cache misses).
	DNSLookups  int64
	DNSQueries  int64
	DNSHitRatio float64
	// MeanLatency is the mean completed-connection duration.
	MeanLatency time.Duration
	// PolicyRejected and PolicyTempfailed count connections refused at
	// admission by the policy engine (554 / 421).
	PolicyRejected   int64
	PolicyTempfailed int64
	// Greylisted counts connections whose every valid recipient drew a
	// greylist 450; Retries counts the modelled reconnections that
	// followed.
	Greylisted int64
	Retries    int64
	// WorkerOccupancy is the time-integral of in-use smtpd workers
	// divided by Workers × Duration — the fraction of the pool's
	// capacity actually consumed. The policy-sweep experiment's headline
	// number: pre-trust verdicts must push it down under hybrid.
	WorkerOccupancy float64
}

// runner holds the live simulation state.
type runner struct {
	cfg  Config
	eng  *sim.Engine
	rng  *sim.RNG
	cpu  *sim.CPU
	disk *sim.Resource

	pool    *pool
	dns     *dnsbl.SimCache
	active  int         // hybrid: connections inside the event loop
	backlog []func()    // hybrid: connections waiting for a socket
	done    func(int64) // completion hook set by the drivers

	good        int64
	bounces     int64
	unfinished  int64
	handoffs    int64
	polRejected int64
	polTempfail int64
	greylisted  int64
	retries     int64
	latencySum  time.Duration
	completed   int64
	lastFinish  time.Duration
}

func newRunner(cfg Config) *runner {
	cfg = cfg.withDefaults()
	r := &runner{
		cfg:  cfg,
		eng:  sim.NewEngine(),
		rng:  sim.NewRNG(cfg.Seed),
		disk: nil,
	}
	r.cpu = sim.NewCPU(r.eng, 0)
	r.disk = sim.NewResource(r.eng, 1)
	r.pool = newPool(r.eng, r.cpu, cfg.Workers)
	// Context-switch penalty: a base cost, a component that grows with
	// the resident smtpd population (scheduler/memory footprint — the §3
	// degradation past 500 processes), and a component for the
	// instantaneous runnable load.
	r.cpu.SwitchCost = func(runnable int) time.Duration {
		cost := costmodel.SwitchBase +
			time.Duration(r.pool.forked())*costmodel.SwitchPerProcess +
			time.Duration(runnable)*costmodel.SwitchPerRunnable
		if cost > costmodel.SwitchCeiling {
			cost = costmodel.SwitchCeiling
		}
		return cost
	}
	if cfg.DNSBL != nil {
		ttl := cfg.DNSBL.TTL
		if ttl <= 0 {
			ttl = costmodel.DNSBLCacheTTL
		}
		lat := cfg.DNSBL.Latency
		if lat.Zone == "" {
			lat = dnsbl.DefaultLatency
		}
		r.dns = dnsbl.NewSimCache(cfg.DNSBL.Policy, ttl, lat.Sampler(), r.rng.Fork())
	}
	return r
}

func (r *runner) result() Result {
	res := Result{
		GoodMails:        r.good,
		Duration:         r.lastFinish,
		Switches:         r.cpu.Switches(),
		BounceConns:      r.bounces,
		UnfinishedConns:  r.unfinished,
		Handoffs:         r.handoffs,
		PolicyRejected:   r.polRejected,
		PolicyTempfailed: r.polTempfail,
		Greylisted:       r.greylisted,
		Retries:          r.retries,
	}
	if r.lastFinish > 0 {
		res.Goodput = float64(r.good) / r.lastFinish.Seconds()
		res.CPUUtil = r.cpu.BusyTime().Seconds() / r.lastFinish.Seconds()
		res.DiskUtil = r.disk.BusyTime().Seconds() / r.lastFinish.Seconds()
		res.WorkerOccupancy = r.pool.occupancy(r.lastFinish)
	}
	if r.completed > 0 {
		res.MeanLatency = r.latencySum / time.Duration(r.completed)
	}
	if r.dns != nil {
		res.DNSLookups = r.dns.Hits() + r.dns.Misses()
		res.DNSQueries = r.dns.Misses()
		res.DNSHitRatio = r.dns.HitRatio()
	}
	return res
}

// RunClosed drives the model with the closed-system client (paper's
// Client program 1): slots concurrent connection slots replay the trace
// back-to-back with optional exponential think time between connections.
func RunClosed(cfg Config, conns []trace.Conn, slots int, think time.Duration) Result {
	if slots <= 0 {
		slots = 1
	}
	r := newRunner(cfg)
	next := 0
	var startSlot func()
	startSlot = func() {
		if next >= len(conns) {
			return
		}
		tc := &conns[next]
		next++
		r.startConn(tc, func() {
			if think > 0 {
				r.eng.After(r.rng.Exp(think), startSlot)
			} else {
				startSlot()
			}
		})
	}
	for i := 0; i < slots && i < len(conns); i++ {
		r.eng.After(0, startSlot)
	}
	r.eng.RunUntilIdle()
	return r.result()
}

// RunOpen drives the model with the open-system client (Client
// program 2): connection i starts at i/rate seconds regardless of
// completions. A rate of 0 uses the trace's own timestamps.
func RunOpen(cfg Config, conns []trace.Conn, rate float64) Result {
	r := newRunner(cfg)
	for i := range conns {
		tc := &conns[i]
		at := tc.At
		if rate > 0 {
			at = time.Duration(float64(i) / rate * float64(time.Second))
		}
		r.eng.At(at, func() { r.startConn(tc, nil) })
	}
	r.eng.RunUntilIdle()
	return r.result()
}
