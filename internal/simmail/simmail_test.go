package simmail

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/dnsbl"
	"repro/internal/fsim"
	"repro/internal/mailstore"
	"repro/internal/trace"
)

func TestDeliveryCostMatchesRealStores(t *testing.T) {
	// The closed-form DeliveryCost must equal what the real mailstore
	// implementations charge on the metered in-memory filesystem, for
	// both personalities, across recipient counts and sizes.
	// MFS is excluded here because its real store amortizes opens across
	// deliveries; see TestDeliveryCostMatchesRealMFS.
	for _, model := range []costmodel.FSModel{costmodel.Ext3, costmodel.Reiser} {
		for _, rcpts := range []int{1, 2, 7, 15} {
			for _, size := range []int{500, 4096, 65536} {
				cases := map[StoreKind]func(fs *fsim.Mem) mailstore.Store{
					StoreMbox:     func(fs *fsim.Mem) mailstore.Store { return mailstore.NewMbox(fs) },
					StoreMaildir:  func(fs *fsim.Mem) mailstore.Store { return mailstore.NewMaildir(fs) },
					StoreHardlink: func(fs *fsim.Mem) mailstore.Store { return mailstore.NewHardlink(fs) },
				}
				for kind, mk := range cases {
					fs := fsim.NewMem(model)
					store := mk(fs)
					recipients := make([]string, rcpts)
					for i := range recipients {
						recipients[i] = fmt.Sprintf("u%02d", i)
					}
					// Pre-create mailbox files (steady state) for mbox.
					if kind == StoreMbox {
						if err := store.Deliver("Qwarmup0000000000", recipients, []byte("x")); err != nil {
							t.Fatal(err)
						}
					}
					fs.ResetMeter()
					id := "Q0000000000000001" // 17 bytes like queue ids
					if err := store.Deliver(id, recipients, make([]byte, size)); err != nil {
						t.Fatal(err)
					}
					got := fs.Elapsed()
					want := DeliveryCost(kind, model, rcpts, size)
					if got != want {
						t.Errorf("%s/%s r=%d s=%d: real %v, closed-form %v",
							kind, model.Name, rcpts, size, got, want)
					}
					store.Close()
				}
			}
		}
	}
}

func TestDeliveryCostMatchesRealMFS(t *testing.T) {
	for _, model := range []costmodel.FSModel{costmodel.Ext3, costmodel.Reiser} {
		for _, rcpts := range []int{1, 2, 7, 15} {
			for _, size := range []int{500, 4096} {
				fs := fsim.NewMem(model)
				store, err := mailstore.NewMFS(fs, "mfs")
				if err != nil {
					t.Fatal(err)
				}
				recipients := make([]string, rcpts)
				for i := range recipients {
					recipients[i] = fmt.Sprintf("u%02d", i)
				}
				// Warm up: open every mailbox (handles stay open in the
				// real store; the steady state has no per-delivery opens).
				if err := store.Deliver("Qwarmup0000000000", recipients, []byte("x")); err != nil {
					t.Fatal(err)
				}
				fs.ResetMeter()
				id := "Q0000000000000001"
				if err := store.Deliver(id, recipients, make([]byte, size)); err != nil {
					t.Fatal(err)
				}
				got := fs.Elapsed()
				want := DeliveryCost(StoreMFS, model, rcpts, size)
				if got != want {
					t.Errorf("mfs/%s r=%d s=%d: real %v, closed-form %v",
						model.Name, rcpts, size, got, want)
				}
				store.Close()
			}
		}
	}
}

func TestDeliveryCPU(t *testing.T) {
	if DeliveryCPU(StoreMbox, 7) != 7*costmodel.DeliverPerRcpt {
		t.Error("mbox delivery CPU should scale with recipients")
	}
	mfs7 := DeliveryCPU(StoreMFS, 7)
	if mfs7 >= DeliveryCPU(StoreMbox, 7) {
		t.Error("MFS multi-recipient delivery CPU should undercut mbox")
	}
	if DeliveryCPU(StoreMFS, 1) != costmodel.DeliverPerRcpt {
		t.Error("single-recipient MFS pays one full delivery pass")
	}
	if DeliveryCPU(StoreMbox, 0) != costmodel.DeliverPerRcpt {
		t.Error("rcpts<1 should clamp")
	}
}

func TestQueueFileCostIncludesSync(t *testing.T) {
	with := QueueFileCost(costmodel.Ext3, 1024)
	noSync := costmodel.Ext3
	noSync.Sync = 0
	if with <= QueueFileCost(noSync, 1024) {
		t.Error("queue file cost must include the fsync")
	}
	if QueueFileCleanup(costmodel.Ext3) != costmodel.Ext3.Unlink {
		t.Error("cleanup is the unlink")
	}
}

func TestStoreKindString(t *testing.T) {
	names := map[StoreKind]string{
		StoreMbox: "mbox", StoreMaildir: "maildir",
		StoreHardlink: "hardlink", StoreMFS: "mfs", StoreKind(9): "store?",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestRunClosedDeterminism(t *testing.T) {
	conns := trace.BounceSweep(1, 1500, 0.3, "d.test", 100)
	run := func() Result {
		return RunClosed(Config{Arch: ArchVanilla, Workers: 50, Seed: 9}, conns, 100, 0)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed runs differ:\n%+v\n%+v", a, b)
	}
}

func TestAllTraceConnectionsAccounted(t *testing.T) {
	conns := trace.NewSinkhole(trace.SinkholeConfig{
		Seed: 3, Connections: 2000, Prefixes: 100,
		BounceRatio: 0.2, UnfinishedRatio: 0.1,
	}).Generate()
	for _, arch := range []Architecture{ArchVanilla, ArchHybrid} {
		res := RunClosed(Config{Arch: arch, Workers: 50, Seed: 1}, conns, 64, 0)
		st := trace.Summarize(conns)
		if res.GoodMails != int64(st.Delivering) {
			t.Errorf("%v: good = %d, trace delivering = %d", arch, res.GoodMails, st.Delivering)
		}
		if res.BounceConns != int64(st.Bounces) {
			t.Errorf("%v: bounces = %d, trace = %d", arch, res.BounceConns, st.Bounces)
		}
		if res.UnfinishedConns != int64(st.Unfinished) {
			t.Errorf("%v: unfinished = %d, trace = %d", arch, res.UnfinishedConns, st.Unfinished)
		}
		if res.Duration <= 0 || res.Goodput <= 0 {
			t.Errorf("%v: degenerate result %+v", arch, res)
		}
		if res.CPUUtil < 0 || res.CPUUtil > 1.01 || res.DiskUtil < 0 || res.DiskUtil > 1.01 {
			t.Errorf("%v: utilization out of range: %+v", arch, res)
		}
	}
}

func TestHybridDelegatesOnlyDeliveringConns(t *testing.T) {
	conns := trace.BounceSweep(2, 3000, 0.5, "d.test", 100)
	res := RunClosed(Config{Arch: ArchHybrid, Workers: 50, Sockets: 100, Seed: 1}, conns, 64, 0)
	st := trace.Summarize(conns)
	if res.Handoffs != int64(st.Delivering) {
		t.Fatalf("handoffs = %d, delivering conns = %d", res.Handoffs, st.Delivering)
	}
	// Vanilla performs no handoffs.
	v := RunClosed(Config{Arch: ArchVanilla, Workers: 50, Seed: 1}, conns, 64, 0)
	if v.Handoffs != 0 {
		t.Fatalf("vanilla handoffs = %d", v.Handoffs)
	}
}

func TestHybridBeatsVanillaUnderBounces(t *testing.T) {
	// The Figure 8 effect at reduced scale: with a bounce-heavy workload
	// the hybrid architecture sustains higher goodput and far fewer
	// context switches.
	conns := trace.BounceSweep(4, 6000, 0.75, "d.test", 100)
	v := RunClosed(Config{Arch: ArchVanilla, Workers: 500, Seed: 2}, conns, 700, 0)
	h := RunClosed(Config{Arch: ArchHybrid, Workers: 500, Sockets: 700, Seed: 2}, conns, 700, 0)
	if h.Goodput <= v.Goodput*1.15 {
		t.Fatalf("hybrid %v vs vanilla %v: want ≥15%% gain at bounce 0.75",
			h.Goodput, v.Goodput)
	}
	if h.Switches >= v.Switches/2 {
		t.Fatalf("switches: hybrid %d vs vanilla %d, want <half", h.Switches, v.Switches)
	}
}

func TestWorkerLimitThrottles(t *testing.T) {
	conns := trace.BounceSweep(5, 2500, 0, "d.test", 100)
	small := RunClosed(Config{Arch: ArchVanilla, Workers: 5, Seed: 1}, conns, 200, 0)
	big := RunClosed(Config{Arch: ArchVanilla, Workers: 100, Seed: 1}, conns, 200, 0)
	if small.Goodput >= big.Goodput {
		t.Fatalf("5 workers (%v) should underperform 100 workers (%v)",
			small.Goodput, big.Goodput)
	}
}

func TestOpenSystemTracksOfferedRateBelowCapacity(t *testing.T) {
	conns := trace.BounceSweep(6, 2000, 0, "d.test", 100)
	res := RunOpen(Config{Arch: ArchVanilla, Workers: 200, Seed: 1}, conns, 50)
	if res.Goodput < 45 || res.Goodput > 55 {
		t.Fatalf("goodput = %v, want ≈50 (below capacity)", res.Goodput)
	}
}

func TestOpenSystemUsesTraceTimestampsWhenRateZero(t *testing.T) {
	conns := trace.BounceSweep(6, 500, 0, "d.test", 100)
	// BounceSweep spaces arrivals ~10ms apart → ~100/s offered.
	res := RunOpen(Config{Arch: ArchVanilla, Workers: 200, Seed: 1}, conns, 0)
	if res.Goodput < 80 || res.Goodput > 120 {
		t.Fatalf("goodput = %v, want ≈100 from trace pacing", res.Goodput)
	}
}

func TestDNSBLPolicyQueryCounts(t *testing.T) {
	sink := trace.NewSinkhole(trace.SinkholeConfig{Seed: 7, Connections: 4000, Prefixes: 300})
	conns := sink.Generate()
	results := map[dnsbl.CachePolicy]Result{}
	for _, pol := range []dnsbl.CachePolicy{dnsbl.CacheNone, dnsbl.CacheIP, dnsbl.CachePrefix} {
		results[pol] = RunOpen(Config{
			Arch: ArchVanilla, Workers: 256, Seed: 1, DiscardDelivery: true,
			DNSBL: &DNSBLConfig{Policy: pol},
		}, conns, 50)
	}
	none, ip, pref := results[dnsbl.CacheNone], results[dnsbl.CacheIP], results[dnsbl.CachePrefix]
	if none.DNSQueries != none.DNSLookups || none.DNSQueries != 4000 {
		t.Fatalf("no-cache queries = %d/%d, want 4000", none.DNSQueries, none.DNSLookups)
	}
	if !(pref.DNSQueries < ip.DNSQueries && ip.DNSQueries < none.DNSQueries) {
		t.Fatalf("query ordering wrong: none=%d ip=%d prefix=%d",
			none.DNSQueries, ip.DNSQueries, pref.DNSQueries)
	}
	if pref.DNSHitRatio <= ip.DNSHitRatio {
		t.Fatalf("prefix hit ratio %v should beat ip %v", pref.DNSHitRatio, ip.DNSHitRatio)
	}
}

func TestSocketCapQueuesConnections(t *testing.T) {
	conns := trace.BounceSweep(8, 1000, 0, "d.test", 100)
	capped := RunClosed(Config{Arch: ArchHybrid, Workers: 50, Sockets: 10, Seed: 1}, conns, 200, 0)
	uncapped := RunClosed(Config{Arch: ArchHybrid, Workers: 50, Sockets: 0, Seed: 1}, conns, 200, 0)
	// Both complete the whole trace; the capped one takes longer.
	if capped.GoodMails != uncapped.GoodMails {
		t.Fatalf("good mails differ: %d vs %d", capped.GoodMails, uncapped.GoodMails)
	}
	if capped.Duration <= uncapped.Duration {
		t.Fatalf("socket cap should stretch the run: %v vs %v",
			capped.Duration, uncapped.Duration)
	}
}

func TestThinkTimeSlowsClosedRun(t *testing.T) {
	conns := trace.BounceSweep(9, 500, 0, "d.test", 100)
	fast := RunClosed(Config{Arch: ArchVanilla, Workers: 50, Seed: 1}, conns, 50, 0)
	slow := RunClosed(Config{Arch: ArchVanilla, Workers: 50, Seed: 1}, conns, 50, 500*time.Millisecond)
	if slow.Duration <= fast.Duration {
		t.Fatalf("think time should stretch the run: %v vs %v", slow.Duration, fast.Duration)
	}
}

func TestMFSStoreReducesDiskUtil(t *testing.T) {
	// Multi-recipient spam: MFS's single copy must lower disk busy time
	// versus mbox at identical goodput or better.
	sink := trace.NewSinkhole(trace.SinkholeConfig{Seed: 10, Connections: 3000, Prefixes: 200})
	conns := sink.Generate()
	mbox := RunClosed(Config{Arch: ArchVanilla, Workers: 100, Store: StoreMbox, Seed: 1}, conns, 200, 0)
	mfs := RunClosed(Config{Arch: ArchVanilla, Workers: 100, Store: StoreMFS, Seed: 1}, conns, 200, 0)
	if mfs.Goodput < mbox.Goodput {
		t.Fatalf("MFS goodput %v below mbox %v", mfs.Goodput, mbox.Goodput)
	}
	mboxDisk := mbox.DiskUtil * mbox.Duration.Seconds()
	mfsDisk := mfs.DiskUtil * mfs.Duration.Seconds()
	if mfsDisk >= mboxDisk {
		t.Fatalf("MFS disk time %.2fs should undercut mbox %.2fs", mfsDisk, mboxDisk)
	}
}

func TestArchitectureStringSim(t *testing.T) {
	if ArchVanilla.String() != "vanilla" || ArchHybrid.String() != "hybrid" {
		t.Fatal("architecture names wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Arch != ArchVanilla || c.Workers != 100 || c.FSModel.Name != "ext3" ||
		c.Store != StoreMbox || c.RTT != 2*costmodel.NetRTT ||
		c.CleanupCPU != costmodel.CleanupPerMail {
		t.Fatalf("defaults = %+v", c)
	}
}
