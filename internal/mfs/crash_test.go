package mfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/fsim"
)

// crashScenario drives a fixed mixed workload — local writes, a shared
// multi-recipient write, the dedup path, a shared delete, a local delete,
// and a clean close — against a WAL-mode store, recording which
// operations were acknowledged before the filesystem died.
type crashAck struct {
	id      string
	body    []byte
	boxes   []string
	deleted map[string]bool // boxes the mail was ack-deleted from
	tried   map[string]bool // boxes a delete was attempted in (ack unknown)
}

func runCrashScenario(fs fsim.FS) (acked map[string]*crashAck, err error) {
	acked = make(map[string]*crashAck)
	s, err := New(fs, "m", WithSync(true))
	if err != nil {
		return acked, err
	}
	closed := false
	defer func() {
		if !closed {
			s.Close() //nolint:errcheck // crashed fs: best-effort teardown
		}
	}()
	box := make(map[string]*Mailbox)
	for _, n := range []string{"u1", "u2", "u3", "u4"} {
		if box[n], err = s.Open(n); err != nil {
			return acked, err
		}
	}
	write := func(id string, body []byte, names ...string) error {
		dst := make([]*Mailbox, len(names))
		for i, n := range names {
			dst[i] = box[n]
		}
		if err := s.NWrite(dst, id, body); err != nil {
			return err
		}
		a := acked[id]
		if a == nil {
			a = &crashAck{id: id, body: body, deleted: map[string]bool{}, tried: map[string]bool{}}
			acked[id] = a
		}
		a.boxes = append(a.boxes, names...)
		return nil
	}
	del := func(id, name string) error {
		acked[id].tried[name] = true
		if err := box[name].Delete(id); err != nil {
			return err
		}
		acked[id].deleted[name] = true
		return nil
	}
	if err := write("m1", []byte("local one"), "u1"); err != nil {
		return acked, err
	}
	if err := write("m2", []byte("shared to three"), "u1", "u2", "u3"); err != nil {
		return acked, err
	}
	if err := write("m3", []byte("shared pair"), "u2", "u3"); err != nil {
		return acked, err
	}
	// Dedup (§6.2): same id fanned to two more boxes rides the existing
	// shared copy via a refcount patch.
	if err := write("m3", []byte("shared pair"), "u1", "u4"); err != nil {
		return acked, err
	}
	if err := del("m2", "u1"); err != nil {
		return acked, err
	}
	if err := del("m1", "u1"); err != nil {
		return acked, err
	}
	closed = true
	return acked, s.Close()
}

// checkInvariants reopens the store and asserts the recovery guarantees:
// every acknowledged mail is present (with its exact payload) in every
// destination it was not deleted from, multi-recipient writes are
// all-or-nothing, every live key record's payload is readable (the
// key-without-data window the WAL must close), shared reference counts
// equal the pointer tallies, and the shared store holds at most one live
// copy per id.
func checkInvariants(t *testing.T, fs fsim.FS, acked map[string]*crashAck, label string) {
	t.Helper()
	s, err := New(fs, "m", WithSync(true))
	if err != nil {
		t.Fatalf("%s: reopen after recovery: %v", label, err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatalf("%s: close recovered store: %v", label, err)
		}
	}()
	boxNames := []string{"u1", "u2", "u3", "u4"}
	box := make(map[string]*Mailbox)
	for _, n := range boxNames {
		if box[n], err = s.Open(n); err != nil {
			t.Fatalf("%s: open %s: %v", label, n, err)
		}
	}
	// Acked mail present, acked deletes absent, payloads intact.
	for id, a := range acked {
		for _, n := range a.boxes {
			switch {
			case a.deleted[n]:
				if box[n].Contains(id) {
					t.Fatalf("%s: %s still in %s after acknowledged delete", label, id, n)
				}
			case a.tried[n]:
				// Un-acked delete: either outcome is legal.
			default:
				m, err := box[n].ReadID(id)
				if err != nil {
					t.Fatalf("%s: acked %s lost from %s: %v", label, id, n, err)
				}
				if !bytes.Equal(m.Body, a.body) {
					t.Fatalf("%s: %s in %s: body %q, want %q", label, id, n, m.Body, a.body)
				}
			}
		}
	}
	// Every surviving record — acked or caught mid-flight — must resolve.
	for _, n := range boxNames {
		for _, id := range box[n].IDs() {
			if _, err := box[n].ReadID(id); err != nil {
				t.Fatalf("%s: unreadable record %s in %s: %v", label, id, n, err)
			}
		}
	}
	// Multi-recipient atomicity: each NWrite's destination set is
	// all-or-nothing. (Two NWrites of one id are separate atoms; m3's
	// sets are {u2,u3} then {u1,u4}.)
	atoms := map[string][]string{
		"m2": {"u1", "u2", "u3"},
		"m3": {"u2", "u3"},
	}
	for id, set := range atoms {
		n := 0
		for _, b := range set {
			if acked[id] != nil && (acked[id].deleted[b] || acked[id].tried[b]) {
				n = -1 // deletes make partial presence legal for this atom
				break
			}
			if box[b].Contains(id) {
				n++
			}
		}
		if n > 0 && n < len(set) {
			t.Fatalf("%s: torn multi-recipient write: %s in %d/%d of %v", label, id, n, len(set), set)
		}
	}
	if acked["m3"] != nil && len(acked["m3"].boxes) == 2 {
		if box["u1"].Contains("m3") != box["u4"].Contains("m3") {
			t.Fatalf("%s: torn dedup fan-out of m3 across u1/u4", label)
		}
	}
	// Refcounts must equal pointer tallies, and the shared store must
	// hold exactly one live copy per id.
	tally := make(map[string]int)
	for _, n := range boxNames {
		mb := box[n]
		mb.mu.Lock()
		for _, rec := range mb.entries {
			if rec != nil && rec.Ref == SharedRef {
				tally[rec.ID]++
			}
		}
		mb.mu.Unlock()
	}
	seen := make(map[string]bool)
	for _, rec := range s.shared.snapshot() {
		if seen[rec.ID] {
			t.Fatalf("%s: duplicate live shared copy of %s", label, rec.ID)
		}
		seen[rec.ID] = true
		if int(rec.Ref) != tally[rec.ID] {
			t.Fatalf("%s: shared %s refcount %d, pointer tally %d", label, rec.ID, rec.Ref, tally[rec.ID])
		}
	}
	for id, n := range tally {
		if !seen[id] && n > 0 {
			t.Fatalf("%s: %d pointers to missing shared record %s", label, n, id)
		}
	}
}

// TestMFSCrashPointEnumeration kills the store at every mutating
// filesystem operation of the scenario — every write, sync, truncate,
// create, and remove of every group commit — and asserts the recovery
// invariants after each crash. This sweep is what makes the WAL's
// guarantee checkable: at no step does a crash leave a key record
// without its data, a data record counted twice, or an acknowledged
// mail missing.
func TestMFSCrashPointEnumeration(t *testing.T) {
	dry := fsim.NewFault()
	if _, err := runCrashScenario(dry); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	total := dry.Steps()
	if total < 20 {
		t.Fatalf("scenario too small to be interesting: %d steps", total)
	}
	for k := 0; k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("crash_at_%03d", k), func(t *testing.T) {
			fs := fsim.NewFault()
			fs.CrashAfter(k)
			acked, err := runCrashScenario(fs)
			if k < total && !fs.Crashed() {
				t.Fatalf("CrashAfter(%d) never fired (total %d)", k, total)
			}
			if k == total && err != nil {
				t.Fatalf("full run failed: %v", err)
			}
			fs.Recover()
			checkInvariants(t, fs, acked, fmt.Sprintf("k=%d", k))
			// Second reopen must be clean: recovery itself ended with a
			// clean close, so nothing should need repair twice.
			checkInvariants(t, fs, acked, fmt.Sprintf("k=%d second open", k))
		})
	}
}

// TestMFSKillAndReopenRecoversAll mirrors the queue's kill test: a burst
// of acknowledged deliveries, a hard kill with no shutdown path at all,
// then reopen — every acknowledged mail must be there.
func TestMFSKillAndReopenRecoversAll(t *testing.T) {
	fs := fsim.NewFault()
	s, err := New(fs, "m", WithSync(true))
	if err != nil {
		t.Fatal(err)
	}
	var boxes []*Mailbox
	for i := 0; i < 4; i++ {
		mb, err := s.Open(fmt.Sprintf("user%d", i))
		if err != nil {
			t.Fatal(err)
		}
		boxes = append(boxes, mb)
	}
	type want struct {
		id   string
		dst  []*Mailbox
		body []byte
	}
	var wants []want
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("mail-%03d", i)
		body := []byte(fmt.Sprintf("payload %d", i))
		dst := []*Mailbox{boxes[i%4]}
		if i%3 == 0 {
			dst = []*Mailbox{boxes[i%4], boxes[(i+1)%4], boxes[(i+2)%4]}
		}
		if err := s.NWrite(dst, id, body); err != nil {
			t.Fatalf("NWrite %s: %v", id, err)
		}
		wants = append(wants, want{id: id, dst: dst, body: body})
	}
	fs.Crash()
	s.Close() //nolint:errcheck // dead fs; just reap the committer
	fs.Recover()

	s2, err := New(fs, "m", WithSync(true))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if rs := s2.Recovery(); !rs.Reconciled {
		t.Fatalf("hard kill must trigger reconciliation, got %+v", rs)
	}
	for _, w := range wants {
		for _, d := range w.dst {
			mb, err := s2.Open(d.Name())
			if err != nil {
				t.Fatal(err)
			}
			m, err := mb.ReadID(w.id)
			if err != nil {
				t.Fatalf("acked %s lost from %s: %v", w.id, d.Name(), err)
			}
			if !bytes.Equal(m.Body, w.body) {
				t.Fatalf("%s corrupted in %s", w.id, d.Name())
			}
		}
	}
}

// TestMFSRecoveryWithLyingSyncs runs the scenario on a disk whose write
// cache lies about syncs. Durability is unachievable then — but reopen
// must still succeed and the store must be internally consistent
// (refcounts equal pointer tallies, every surviving record readable).
func TestMFSRecoveryWithLyingSyncs(t *testing.T) {
	fs := fsim.NewFault()
	fs.SetSyncLies(true)
	if _, err := runCrashScenario(fs); err != nil {
		t.Fatalf("scenario: %v", err)
	}
	fs.Crash()
	fs.Recover()
	// Nothing was durable, so nothing is owed: check with an empty ack set.
	checkInvariants(t, fs, map[string]*crashAck{}, "lying syncs")
}

// TestMFSWALModeSingleSyncPerBatch pins the satellite fix: the old
// commit path ended every batch with sync(data)+sync(key); under the WAL
// the only per-batch sync is the log's. One delivery = one batch = one
// Sync, and none on the shared data/key files until rotation.
func TestMFSWALModeSingleSyncPerBatch(t *testing.T) {
	fs := newSyncCountFS()
	s, err := New(fs, "m", WithSync(true))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Open("a")
	b, _ := s.Open("b")
	base := fs.syncs("m/mfs.wal")
	const n = 5
	for i := 0; i < n; i++ {
		if err := s.NWrite([]*Mailbox{a, b}, fmt.Sprintf("id%d", i), []byte("body")); err != nil {
			t.Fatal(err)
		}
	}
	batches := s.CommitStats().Batches
	if got := fs.syncs("m/mfs.wal") - base; got != int(batches) {
		t.Fatalf("wal syncs = %d, want one per batch (%d)", got, batches)
	}
	for _, p := range []string{"m/shmailbox.data", "m/shmailbox.key", "m/boxes/a.key", "m/boxes/b.key"} {
		if got := fs.syncs(p); got != 0 {
			t.Fatalf("%s synced %d times before rotation; WAL should subsume it", p, got)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close rotates: now the files are synced and the log is empty.
	if got := fs.syncs("m/shmailbox.key"); got == 0 {
		t.Fatal("close rotation did not sync the shared key file")
	}
	if size, _ := fs.Size("m/mfs.wal"); size != 0 {
		t.Fatalf("wal not truncated on clean close: %d bytes", size)
	}
}

// syncCountFS counts Sync calls per path.
type syncCountFS struct {
	fsim.FS
	mu sync.Mutex
	n  map[string]int
}

func newSyncCountFS() *syncCountFS {
	return &syncCountFS{FS: fsim.NewMem(costmodel.FSModel{}), n: make(map[string]int)}
}

func (s *syncCountFS) syncs(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n[path]
}

func (s *syncCountFS) Create(name string) (fsim.File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &syncCountFile{File: f, fs: s, path: name}, nil
}

func (s *syncCountFS) OpenAppend(name string) (fsim.File, error) {
	f, err := s.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &syncCountFile{File: f, fs: s, path: name}, nil
}

type syncCountFile struct {
	fsim.File
	fs   *syncCountFS
	path string
}

func (f *syncCountFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.n[f.path]++
	f.fs.mu.Unlock()
	return f.File.Sync()
}

// TestMFSCheckpointUnderLoad checkpoints a store while parallel
// deliveries hammer it, then opens every checkpoint and the survivor and
// asserts consistency. Run under -race this also exercises the
// checkpoint/commit interleaving.
func TestMFSCheckpointUnderLoad(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s, err := New(fs, "m", WithSync(true), WithWALRotateSize(16<<10))
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 40
	boxes := make([]*Mailbox, writers)
	for i := range boxes {
		if boxes[i], err = s.Open(fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-%03d", w, i)
				dst := []*Mailbox{boxes[w]}
				if i%2 == 0 {
					dst = append(dst, boxes[(w+1)%writers])
				}
				if err := s.NWrite(dst, id, []byte("concurrent body")); err != nil {
					errs <- fmt.Errorf("%s: %w", id, err)
					return
				}
			}
		}()
	}
	cps := []string{"cp0", "cp1", "cp2"}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, dir := range cps {
			if _, err := s.Checkpoint(dir); err != nil {
				errs <- fmt.Errorf("checkpoint %s: %w", dir, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	verify := func(dir string, wantAll bool) {
		cs, err := New(fs, dir, WithSync(true))
		if err != nil {
			t.Fatalf("open %s: %v", dir, err)
		}
		defer cs.Close()
		tally := make(map[string]int)
		for i := 0; i < writers; i++ {
			mb, err := cs.Open(fmt.Sprintf("w%d", i))
			if err != nil {
				t.Fatalf("%s: open box: %v", dir, err)
			}
			for _, id := range mb.IDs() {
				if _, err := mb.ReadID(id); err != nil {
					t.Fatalf("%s: unreadable %s: %v", dir, id, err)
				}
			}
			mb.mu.Lock()
			for _, rec := range mb.entries {
				if rec != nil && rec.Ref == SharedRef {
					tally[rec.ID]++
				}
			}
			mb.mu.Unlock()
			if wantAll {
				if got := mb.Len(); got == 0 {
					t.Fatalf("%s: box w%d empty after full run", dir, i)
				}
			}
		}
		for _, rec := range cs.shared.snapshot() {
			if int(rec.Ref) != tally[rec.ID] {
				t.Fatalf("%s: shared %s ref %d, tally %d", dir, rec.ID, rec.Ref, tally[rec.ID])
			}
		}
	}
	for _, dir := range cps {
		verify(dir, false)
	}
	verify("m", true)
	// And the survivor still holds every acknowledged mail.
	s2, err := New(fs, "m", WithSync(true))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for w := 0; w < writers; w++ {
		mb, err := s2.Open(fmt.Sprintf("w%d", w))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perWriter; i++ {
			id := fmt.Sprintf("w%d-%03d", w, i)
			if !mb.Contains(id) {
				t.Fatalf("acked %s missing from w%d after close/reopen", id, w)
			}
		}
	}
}

// TestMFSRecoveryStatsSurfaceTornTail writes a valid batch, crashes with
// the WAL intact plus torn garbage at its tail, and checks the stats
// surface: the complete record replays, the garbage is discarded, and
// the dirty marker forces reconciliation.
func TestMFSRecoveryStatsSurfaceTornTail(t *testing.T) {
	fs := fsim.NewFault()
	s, err := New(fs, "m", WithSync(true), WithWALRotateSize(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Open("a")
	b, _ := s.Open("b")
	if err := s.NWrite([]*Mailbox{a, b}, "id1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Torn record at the log's tail: synced, then crash before the rest
	// of it could be written.
	f, err := fs.OpenAppend("m/mfs.wal")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{walMagic, 1, 2, 3}) //nolint:errcheck
	f.Sync()                           //nolint:errcheck
	f.Close()
	fs.Crash()
	s.Close() //nolint:errcheck // dead fs; reap the committer
	fs.Recover()
	s2, err := New(fs, "m", WithSync(true))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rs := s2.Recovery()
	if rs.Replayed == 0 || rs.DiscardedTail == 0 || !rs.Reconciled {
		t.Fatalf("recovery stats = %+v, want replayed records, a discarded tail, and reconciliation", rs)
	}
	mb, err := s2.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	if !mb.Contains("id1") {
		t.Fatal("replayed mail missing")
	}
}
