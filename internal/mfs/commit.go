package mfs

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fsim"
)

// maxCommitBatch bounds how many commit requests one flush may coalesce,
// keeping the per-flush buffers and caller latency bounded.
const maxCommitBatch = 256

// segment is one prebuilt file mutation riding in a commit request: an
// append ('A', off is the file end at enqueue time — the enqueuer holds
// the lock serializing that file, so the end is stable until the flush)
// or an in-place patch ('P').
type segment struct {
	kind byte
	file fsim.File
	path string
	off  int64
	buf  []byte
}

// pointerTarget names one mailbox key file that should receive an
// (id, offset, SharedRef) pointer record for the request's shared append.
// The offset is assigned at flush time, so the record bytes cannot be
// prebuilt; refPos is filled in by the flush.
type pointerTarget struct {
	file   fsim.File
	path   string
	off    int64 // key-file end at enqueue time
	refPos int64 // out: Ref-field position of the appended pointer record
}

// commitReq is one atomic MFS mutation submitted to the group committer.
// In WAL mode the whole request — shared append, pointer records,
// prebuilt segments — is covered by a single commit record, so it either
// survives a crash in full or not at all.
type commitReq struct {
	// Shared-store append (id != ""): framed payload for shmailbox.data
	// plus an (id, offset, ref) tuple for shmailbox.key. The committer
	// assigns off/refPos at flush time.
	id   string
	body []byte
	ref  int32

	// Pointer records to fan out once the shared offset is known.
	ptrs []pointerTarget

	// Prebuilt appends and patches (box key/data appends, tombstones,
	// in-place refcount patches) with enqueue-time offsets.
	segs []segment

	off    int64
	refPos int64
	err    error
	done   chan struct{}
}

// committer is the group-commit writer. Concurrent NWrite/Delete calls
// enqueue requests; a single committer goroutine coalesces everything
// queued into one batch. In the default volatile mode only shared-store
// appends route through it and a batch is one data write plus one key
// write. In WAL mode (WithSync) every mutation routes through it and a
// batch is: one WAL record carrying every segment, one WAL Sync — the
// sole ordering point — then the segment writes to the real files,
// unsynced (the log makes them recoverable). Callers block only until
// the flush carrying their request completes.
//
// The committer is the sole appender of the shared files, which also
// makes the size-then-write append sequence atomic without a file lock.
// Requests drain in channel FIFO order, and a request's enqueueing
// caller holds the lock that serializes its target files (mailbox lock,
// shard lock for refcount patches), so segment offsets computed at
// enqueue time are valid at flush time and later patches to one position
// are applied last.
type committer struct {
	// mu guards the file handles and WAL state: the compaction, rotation,
	// checkpoint, and close paths swap or quiesce them while holding it.
	// The flush path holds it for the duration of one batch.
	mu   sync.Mutex
	key  fsim.File
	data fsim.File

	// WAL mode state. wal is nil in volatile mode.
	fs         fsim.FS
	wal        fsim.File
	walPath    string
	keyPath    string
	dataPath   string
	walSeq     uint64
	walSize    int64
	rotateSize int64
	dirty      map[string]bool // paths with WAL-covered unsynced writes

	// syncOnCommit makes commits durable at group-commit cost: one WAL
	// Sync amortized over the whole batch instead of one journal commit
	// per mail (and, before the WAL, two Syncs per batch).
	syncOnCommit bool

	ch   chan *commitReq
	done chan struct{}

	batches   atomic.Int64
	mails     atomic.Int64
	rotations atomic.Int64
}

func newCommitter(s *Store) *committer {
	c := &committer{
		key:          s.shKey,
		data:         s.shData,
		fs:           s.fs,
		keyPath:      s.path("shmailbox.key"),
		dataPath:     s.path("shmailbox.data"),
		walPath:      s.path("mfs.wal"),
		rotateSize:   s.opts.walRotate,
		syncOnCommit: s.opts.sync,
		dirty:        make(map[string]bool),
		ch:           make(chan *commitReq, maxCommitBatch),
		done:         make(chan struct{}),
	}
	go c.run()
	return c
}

// openWAL opens the log file handle. Called once from New (WAL mode)
// after any replay truncated the previous log.
func (c *committer) openWAL() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	wal, err := c.fs.OpenAppend(c.walPath)
	if err != nil {
		return err
	}
	size, err := wal.Size()
	if err != nil {
		wal.Close()
		return err
	}
	c.wal, c.walSize = wal, size
	return nil
}

// append submits a plain shared-store append and blocks until its batch
// commits (the volatile-mode writeShared path).
func (c *committer) append(id string, body []byte, ref int32) (off, refPos int64, err error) {
	req := &commitReq{id: id, body: body, ref: ref, done: make(chan struct{})}
	c.ch <- req
	<-req.done
	return req.off, req.refPos, req.err
}

// submit enqueues req and blocks until its batch commits.
func (c *committer) submit(req *commitReq) error {
	req.done = make(chan struct{})
	c.ch <- req
	<-req.done
	return req.err
}

// enqueue sends req without waiting. Callers that must preserve FIFO
// order relative to a lock (refcount patches under a shard lock) enqueue
// while holding it and wait on req.done after releasing it.
func (c *committer) enqueue(req *commitReq) {
	req.done = make(chan struct{})
	c.ch <- req
}

// run drains the queue: each iteration takes one request, then greedily
// collects everything else already queued (the requests that arrived
// while the previous flush was in progress — the group), and flushes them
// as a single batch.
//
// After draining the queue empty once, the committer lingers for a single
// scheduler yield before flushing: deliverers that are runnable but have
// not yet reached their enqueue get one chance to join the batch. Without
// this, a caller that blocks on its done channel immediately wakes the
// committer and every batch degenerates to size 1 when GOMAXPROCS is
// small; with it, N concurrent deliverers coalesce into one flush. The
// yield costs one scheduler pass — nothing is metered against the disk,
// so a lone writer's commit is charged identically to the unbatched path.
func (c *committer) run() {
	defer close(c.done)
	for {
		req, ok := <-c.ch
		if !ok {
			return
		}
		batch := make([]*commitReq, 1, 16)
		batch[0] = req
		lingered := false
	fill:
		for len(batch) < maxCommitBatch {
			select {
			case r, ok := <-c.ch:
				if !ok {
					c.flush(batch)
					return
				}
				batch = append(batch, r)
			default:
				if lingered {
					break fill
				}
				lingered = true
				runtime.Gosched()
			}
		}
		c.flush(batch)
	}
}

// flush writes one batch and wakes its requests.
func (c *committer) flush(batch []*commitReq) {
	c.mu.Lock()
	err := c.flushLocked(batch)
	c.mu.Unlock()
	for _, r := range batch {
		r.err = err
		close(r.done)
	}
}

func (c *committer) flushLocked(batch []*commitReq) error {
	dataBase, err := c.data.Size()
	if err != nil {
		return err
	}
	keyBase, err := c.key.Size()
	if err != nil {
		return err
	}
	// Stage the shared-store appends and fan pointer records out now that
	// offsets are known.
	var dataBuf, keyBuf []byte
	var ptrSegs []segment
	for _, r := range batch {
		if r.id != "" {
			r.off = dataBase + int64(len(dataBuf))
			dataBuf = appendDataFrame(dataBuf, r.body)
			keyBuf, err = appendKeyRecordBuf(keyBuf, keyRecord{
				Type: recEntry, ID: r.id, Offset: r.off, Ref: r.ref,
			})
			if err != nil {
				return err
			}
			r.refPos = keyBase + int64(len(keyBuf)) - 4
		}
		for i := range r.ptrs {
			p := &r.ptrs[i]
			buf, err := appendKeyRecordBuf(nil, keyRecord{
				Type: recEntry, ID: r.id, Offset: r.off, Ref: SharedRef,
			})
			if err != nil {
				return err
			}
			p.refPos = p.off + int64(len(buf)) - 4
			ptrSegs = append(ptrSegs, segment{kind: walSegApp, file: p.file, path: p.path, off: p.off, buf: buf})
		}
	}

	if c.wal != nil {
		// WAL mode: log every byte the batch writes, sync the log — the
		// single ordering point — then apply unsynced.
		segs := make([]walSeg, 0, 2+len(ptrSegs)+len(batch))
		if len(dataBuf) > 0 {
			segs = append(segs, walSeg{kind: walSegApp, path: c.dataPath, off: dataBase, buf: dataBuf})
		}
		if len(keyBuf) > 0 {
			segs = append(segs, walSeg{kind: walSegApp, path: c.keyPath, off: keyBase, buf: keyBuf})
		}
		for _, r := range batch {
			for _, s := range r.segs {
				segs = append(segs, walSeg{kind: s.kind, path: s.path, off: s.off, buf: s.buf})
			}
		}
		for _, s := range ptrSegs {
			segs = append(segs, walSeg{kind: s.kind, path: s.path, off: s.off, buf: s.buf})
		}
		c.walSeq++
		rec := appendWALRecord(make([]byte, 0, 64), c.walSeq, segs)
		if _, err := c.wal.Write(rec); err != nil {
			return err
		}
		if err := c.wal.Sync(); err != nil {
			return err
		}
		c.walSize += int64(len(rec))
	}

	if len(dataBuf) > 0 {
		if _, err := c.data.Write(dataBuf); err != nil {
			return err
		}
		c.dirtyPath(c.dataPath)
	}
	if len(keyBuf) > 0 {
		if _, err := c.key.Write(keyBuf); err != nil {
			return err
		}
		c.dirtyPath(c.keyPath)
	}
	for _, r := range batch {
		if err := applySegs(r.segs); err != nil {
			return err
		}
		for _, s := range r.segs {
			c.dirtyPath(s.path)
		}
	}
	if err := applySegs(ptrSegs); err != nil {
		return err
	}
	for _, s := range ptrSegs {
		c.dirtyPath(s.path)
	}
	// The old protocol ended here with sync(data)+sync(key); the WAL Sync
	// above subsumes both, so WAL mode pays one journal commit per batch
	// and closes the key-without-data window the pair left open.
	c.batches.Add(1)
	c.mails.Add(int64(len(batch)))
	if c.wal != nil && c.walSize >= c.rotateSize {
		return c.rotateLocked()
	}
	return nil
}

// applySegs performs the staged writes through the enqueuers' handles.
func applySegs(segs []segment) error {
	for _, s := range segs {
		var err error
		if s.kind == walSegApp {
			_, err = s.file.Write(s.buf)
		} else {
			_, err = s.file.WriteAt(s.buf, s.off)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *committer) dirtyPath(path string) {
	if c.wal != nil {
		c.dirty[path] = true
	}
}

// markDirty records out-of-band rewrites (compaction) so the next
// rotation syncs them before the log is truncated.
func (c *committer) markDirty(paths ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wal == nil {
		return
	}
	for _, p := range paths {
		c.dirty[p] = true
	}
}

// rotate quiesces the committer and rotates the WAL.
func (c *committer) rotate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rotateLocked()
}

// rotateLocked makes every WAL-covered write durable and truncates the
// log: Sync each dirty path through a fresh handle (Sync covers a file's
// entire content, so handle identity does not matter), then truncate and
// Sync the WAL itself. The order is the recovery invariant — never
// truncate the WAL before syncing every file its records touch.
func (c *committer) rotateLocked() error {
	if c.wal == nil {
		return nil
	}
	for path := range c.dirty {
		f, err := c.fs.OpenAppend(path)
		if err != nil {
			return err
		}
		err = f.Sync()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	c.dirty = make(map[string]bool)
	if err := c.wal.Truncate(0); err != nil {
		return err
	}
	if err := c.wal.Sync(); err != nil {
		return err
	}
	c.walSize = 0
	c.rotations.Add(1)
	return nil
}

// setFiles swaps the shared file handles (CompactShared). The caller must
// have quiesced all writers (it holds the store lock exclusively).
func (c *committer) setFiles(key, data fsim.File) {
	c.mu.Lock()
	c.key, c.data = key, data
	c.mu.Unlock()
}

// close stops the committer goroutine, then (WAL mode) performs a final
// rotation so a clean shutdown leaves every file durable and the log
// empty, and closes the log. The caller must guarantee no further
// append calls (it holds the store lock exclusively).
func (c *committer) close() error {
	close(c.ch)
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wal == nil {
		return nil
	}
	err := c.rotateLocked()
	if cerr := c.wal.Close(); err == nil {
		err = cerr
	}
	c.wal = nil
	return err
}

// CommitStats reports group-commit effectiveness: total flushed batches,
// total requests carried by them (mails/batches is the mean batch size —
// 1.0 when deliveries are serial, >1 when concurrent deliveries
// coalesce), and WAL rotations performed.
type CommitStats struct {
	Batches   int64
	Mails     int64
	Rotations int64
}

// CommitStats returns the store's group-commit counters.
func (s *Store) CommitStats() CommitStats {
	return CommitStats{
		Batches:   s.commit.batches.Load(),
		Mails:     s.commit.mails.Load(),
		Rotations: s.commit.rotations.Load(),
	}
}
