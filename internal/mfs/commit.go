package mfs

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fsim"
)

// maxCommitBatch bounds how many shared-store appends one flush may
// coalesce, keeping the per-flush buffers and caller latency bounded.
const maxCommitBatch = 256

// commitReq is one mail's shared-store append: the framed payload for
// shmailbox.data and an (id, offset, ref) tuple for shmailbox.key. The
// committer fills off/refPos/err and closes done.
type commitReq struct {
	id   string
	body []byte
	ref  int32

	off    int64
	refPos int64
	err    error
	done   chan struct{}
}

// committer is the group-commit writer for the shared store. Concurrent
// NWrite calls enqueue their payload and key records; a single committer
// goroutine coalesces everything queued into one batched data write, one
// batched key write, and (when durable sync is enabled) one Sync per
// flush — the MFS analogue of journal group commit. Callers block only
// until the flush carrying their record completes.
//
// The committer is the sole appender of the shared files, which also
// makes the size-then-write append sequence atomic without a file lock.
type committer struct {
	// mu guards the file handles: the compaction and close paths swap or
	// close them while holding it. The flush path holds it for the
	// duration of one batch.
	mu   sync.Mutex
	key  fsim.File
	data fsim.File

	// syncOnCommit issues one Sync per flushed file per batch, making
	// commits durable at group-commit cost (one journal commit amortized
	// over the whole batch instead of one per mail).
	syncOnCommit bool

	ch   chan *commitReq
	done chan struct{}

	batches atomic.Int64
	mails   atomic.Int64
}

func newCommitter(key, data fsim.File, syncOnCommit bool) *committer {
	c := &committer{
		key:          key,
		data:         data,
		syncOnCommit: syncOnCommit,
		ch:           make(chan *commitReq, maxCommitBatch),
		done:         make(chan struct{}),
	}
	go c.run()
	return c
}

// append submits one record and blocks until its batch commits.
func (c *committer) append(id string, body []byte, ref int32) (off, refPos int64, err error) {
	req := &commitReq{id: id, body: body, ref: ref, done: make(chan struct{})}
	c.ch <- req
	<-req.done
	return req.off, req.refPos, req.err
}

// run drains the queue: each iteration takes one request, then greedily
// collects everything else already queued (the requests that arrived
// while the previous flush was in progress — the group), and flushes them
// as a single batch.
//
// After draining the queue empty once, the committer lingers for a single
// scheduler yield before flushing: deliverers that are runnable but have
// not yet reached their enqueue get one chance to join the batch. Without
// this, a caller that blocks on its done channel immediately wakes the
// committer and every batch degenerates to size 1 when GOMAXPROCS is
// small; with it, N concurrent deliverers coalesce into one flush. The
// yield costs one scheduler pass — nothing is metered against the disk,
// so a lone writer's commit is charged identically to the unbatched path.
func (c *committer) run() {
	defer close(c.done)
	for {
		req, ok := <-c.ch
		if !ok {
			return
		}
		batch := make([]*commitReq, 1, 16)
		batch[0] = req
		lingered := false
	fill:
		for len(batch) < maxCommitBatch {
			select {
			case r, ok := <-c.ch:
				if !ok {
					c.flush(batch)
					return
				}
				batch = append(batch, r)
			default:
				if lingered {
					break fill
				}
				lingered = true
				runtime.Gosched()
			}
		}
		c.flush(batch)
	}
}

// flush writes one batch: all payload frames as one data append, all key
// tuples as one key append, then at most one Sync per file.
func (c *committer) flush(batch []*commitReq) {
	c.mu.Lock()
	err := c.flushLocked(batch)
	c.mu.Unlock()
	for _, r := range batch {
		r.err = err
		close(r.done)
	}
}

func (c *committer) flushLocked(batch []*commitReq) error {
	dataBase, err := c.data.Size()
	if err != nil {
		return err
	}
	keyBase, err := c.key.Size()
	if err != nil {
		return err
	}
	var dataBuf, keyBuf []byte
	for _, r := range batch {
		r.off = dataBase + int64(len(dataBuf))
		dataBuf = appendDataFrame(dataBuf, r.body)
		keyBuf, err = appendKeyRecordBuf(keyBuf, keyRecord{
			Type: recEntry, ID: r.id, Offset: r.off, Ref: r.ref,
		})
		if err != nil {
			return err
		}
		r.refPos = keyBase + int64(len(keyBuf)) - 4
	}
	if _, err := c.data.Write(dataBuf); err != nil {
		return err
	}
	if _, err := c.key.Write(keyBuf); err != nil {
		return err
	}
	if c.syncOnCommit {
		if err := c.data.Sync(); err != nil {
			return err
		}
		if err := c.key.Sync(); err != nil {
			return err
		}
	}
	c.batches.Add(1)
	c.mails.Add(int64(len(batch)))
	return nil
}

// setFiles swaps the shared file handles (CompactShared). The caller must
// have quiesced all writers (it holds the store lock exclusively).
func (c *committer) setFiles(key, data fsim.File) {
	c.mu.Lock()
	c.key, c.data = key, data
	c.mu.Unlock()
}

// close stops the committer goroutine. The caller must guarantee no
// further append calls (it holds the store lock exclusively).
func (c *committer) close() {
	close(c.ch)
	<-c.done
}

// CommitStats reports group-commit effectiveness: total flushed batches
// and total mails carried by them. mails/batches is the mean batch size —
// 1.0 when deliveries are serial, >1 when concurrent deliveries coalesce.
type CommitStats struct {
	Batches int64
	Mails   int64
}

// CommitStats returns the store's group-commit counters.
func (s *Store) CommitStats() CommitStats {
	return CommitStats{Batches: s.commit.batches.Load(), Mails: s.commit.mails.Load()}
}
