package mfs

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/fsim"
)

// Store is an MFS instance rooted at a directory of the underlying
// filesystem. It owns the hidden shared mailbox and hands out Mailbox
// handles. Store is safe for concurrent use: independent mailboxes never
// contend with each other, and concurrent multi-recipient deliveries are
// group-committed into the shared store in batches.
//
// Lock hierarchy (always acquired in this order, never the reverse):
//
//  1. Store.maintMu — serializes whole-store maintenance (Compact,
//     CompactShared, Checkpoint) against each other.
//  2. Store.stateMu — RWMutex for open/close lifecycle. Every operation
//     holds it shared; Close, Compact-shared, and other whole-store
//     maintenance hold it exclusively, which quiesces all activity.
//  3. Store.openMu — the open-mailbox handle map.
//  4. Mailbox.mu — one per mailbox: key/data appends, cursor, in-memory
//     index. NWrite locks its destination set in sorted name order.
//  5. sharedIndex shard locks — 64-way, hash-by-mail-id.
//  6. committer.mu — shared-store file handles and WAL state; held per
//     flush by the committer goroutine, which takes no other lock (so
//     callers may block on a commit while holding any of the above).
type Store struct {
	fs   fsim.FS
	dir  string
	opts options

	// stateMu is the narrow store-level lifecycle lock; see the hierarchy
	// above. closed, shKey, and shData may only change while it is held
	// exclusively.
	stateMu sync.RWMutex
	closed  bool
	shKey   fsim.File
	shData  fsim.File

	// maintMu serializes maintenance passes; see the hierarchy above.
	maintMu sync.Mutex

	openMu sync.RWMutex
	open   map[string]*Mailbox

	// shared index: mail-id -> live shared record, sharded 64 ways.
	shared *sharedIndex

	// commit is the group-commit writer owning all shared-store appends
	// (and, in WAL mode, every mutation).
	commit *committer

	// recovery records what the opening pass replayed and repaired.
	recovery RecoveryStats
}

// options collects New's optional configuration.
type options struct {
	sync      bool
	walRotate int64
}

// Option configures a Store at New time.
type Option func(*options)

// WithSync selects the store's durability mode, mirroring
// spool.WithSync. When on, every mutation routes through the group
// committer and each batch is stamped into a checksummed write-ahead-log
// record whose single Sync is the commit point: a batch of concurrent
// deliveries pays one journal commit instead of one per mail, and New
// replays the log after a crash so no acknowledged mail is lost. Off by
// default: the seed's durability story (and the cost calibration) treats
// the queue spool as the durable copy until delivery completes.
func WithSync(on bool) Option {
	return func(o *options) { o.sync = on }
}

// WithWALRotateSize sets the write-ahead-log size (bytes) that triggers
// rotation — syncing every file the log touches and truncating it. Only
// meaningful with WithSync(true); the default is 1 MiB.
func WithWALRotateSize(n int64) Option {
	return func(o *options) {
		if n > 0 {
			o.walRotate = n
		}
	}
}

// Mail is one mail record read back from a mailbox.
type Mail struct {
	ID   string
	Body []byte
}

// dirtyMarker is the store-open sentinel file: created (and synced) when
// a store opens, removed on clean Close. Finding it at open time means
// the previous process died with the store open, so New runs the full
// refcount/pointer reconciliation pass instead of trusting the files.
const dirtyMarker = "mfs.dirty"

// New opens (creating if necessary) an MFS store under dir in fs.
//
// Opening is also the recovery point: if a write-ahead log is present
// its complete records are replayed (and its torn tail discarded), and
// if the previous open did not close cleanly the store is reconciled —
// shared reference counts are recomputed from the surviving pointer
// records, torn locals and orphaned pointers are tombstoned. The shared
// mailbox's key file is then scanned once to rebuild the shared index.
// Recovery() reports what this pass did.
func New(fs fsim.FS, dir string, opts ...Option) (*Store, error) {
	s := &Store{
		fs:     fs,
		dir:    dir,
		shared: newSharedIndex(),
		open:   make(map[string]*Mailbox),
	}
	s.opts.walRotate = walDefault
	for _, opt := range opts {
		opt(&s.opts)
	}
	if fs.Exists(s.path("mfs.wal")) {
		if err := s.replayWAL(); err != nil {
			return nil, fmt.Errorf("mfs: wal replay: %w", err)
		}
	}
	var err error
	if s.shKey, err = fs.OpenAppend(s.path("shmailbox.key")); err != nil {
		return nil, fmt.Errorf("mfs: open shared key file: %w", err)
	}
	if s.shData, err = fs.OpenAppend(s.path("shmailbox.data")); err != nil {
		s.shKey.Close()
		return nil, fmt.Errorf("mfs: open shared data file: %w", err)
	}
	recs, err := readKeyRecords(s.shKey)
	if err != nil {
		s.shKey.Close()
		s.shData.Close()
		return nil, err
	}
	for i := range recs {
		r := recs[i]
		switch {
		case r.Type == recTombstone:
			s.shared.remove(r.ID)
		case r.Ref > 0:
			s.shared.insertCommitted(r)
		default:
			// Ref 0: fully released, awaiting compaction.
			s.shared.remove(r.ID)
		}
	}
	if fs.Exists(s.path(dirtyMarker)) {
		if err := s.reconcile(); err != nil {
			s.shKey.Close()
			s.shData.Close()
			return nil, fmt.Errorf("mfs: reconcile: %w", err)
		}
	}
	if err := s.writeDirtyMarker(); err != nil {
		s.shKey.Close()
		s.shData.Close()
		return nil, err
	}
	s.commit = newCommitter(s)
	if s.opts.sync {
		if err := s.commit.openWAL(); err != nil {
			s.commit.close() //nolint:errcheck
			s.shKey.Close()
			s.shData.Close()
			return nil, fmt.Errorf("mfs: open wal: %w", err)
		}
	}
	return s, nil
}

// writeDirtyMarker creates and syncs the open-store sentinel.
func (s *Store) writeDirtyMarker() error {
	f, err := s.fs.Create(s.path(dirtyMarker))
	if err != nil {
		return fmt.Errorf("mfs: dirty marker: %w", err)
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("mfs: dirty marker: %w", err)
	}
	return nil
}

// Recovery reports what the opening pass replayed and repaired; the zero
// value means the store opened clean.
func (s *Store) Recovery() RecoveryStats { return s.recovery }

func (s *Store) path(name string) string {
	if s.dir == "" {
		return name
	}
	return s.dir + "/" + name
}

// Close closes the store and every mailbox opened through it. In WAL
// mode the committer performs a final rotation (sync every dirty file,
// truncate the log); the dirty marker is then removed, so the next New
// sees a clean store and skips recovery.
func (s *Store) Close() error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	err := s.commit.close()
	s.openMu.Lock()
	for _, mb := range s.open {
		mb.mu.Lock()
		mb.closeLocked() //nolint:errcheck
		mb.mu.Unlock()
	}
	s.openMu.Unlock()
	if cerr := s.shKey.Close(); err == nil {
		err = cerr
	}
	if cerr := s.shData.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		// Only a fully clean shutdown may declare the store consistent.
		if rerr := s.fs.Remove(s.path(dirtyMarker)); rerr != nil && s.fs.Exists(s.path(dirtyMarker)) {
			err = rerr
		}
	}
	return err
}

// Mailbox is an open MFS mailbox: a key file, a data file, an in-memory
// index rebuilt at open, and a record-granularity seek pointer — the
// mail_file of the paper's API. A Mailbox has its own lock, so operations
// on different mailboxes proceed in parallel.
type Mailbox struct {
	store    *Store
	name     string
	keyPath  string
	dataPath string

	// mu guards everything below plus appends to key/data.
	mu   sync.Mutex
	key  fsim.File
	data fsim.File

	// entries holds records in arrival order; a deleted mail leaves a nil
	// slot (tombstone) so deletion is O(1), and the slice is compacted
	// once dead slots pile up. index maps id to its position in entries;
	// cursor is a physical position into entries (nil slots are skipped
	// on read).
	entries []*keyRecord
	index   map[string]int
	dead    int

	cursor int
	closed bool
}

// Open opens mailbox name, creating its key and data files if they do not
// exist — the paper's mail_open. Repeated opens return the same handle.
func (s *Store) Open(name string) (*Mailbox, error) {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if name == "" {
		return nil, fmt.Errorf("mfs: empty mailbox name")
	}
	// Fast path: the steady state of a busy server is every hot mailbox
	// already open, so a shared lookup avoids serializing deliveries.
	s.openMu.RLock()
	mb, ok := s.open[name]
	s.openMu.RUnlock()
	if ok {
		return mb, nil
	}
	s.openMu.Lock()
	defer s.openMu.Unlock()
	if mb, ok := s.open[name]; ok {
		return mb, nil
	}
	mb = &Mailbox{
		store:    s,
		name:     name,
		keyPath:  s.path("boxes/" + name + ".key"),
		dataPath: s.path("boxes/" + name + ".data"),
		index:    make(map[string]int),
	}
	var err error
	if mb.key, err = s.fs.OpenAppend(mb.keyPath); err != nil {
		return nil, fmt.Errorf("mfs: open mailbox %s: %w", name, err)
	}
	if mb.data, err = s.fs.OpenAppend(mb.dataPath); err != nil {
		mb.key.Close()
		return nil, fmt.Errorf("mfs: open mailbox %s: %w", name, err)
	}
	recs, err := readKeyRecords(mb.key)
	if err != nil {
		mb.key.Close()
		mb.data.Close()
		return nil, err
	}
	for i := range recs {
		r := recs[i]
		if r.Type == recTombstone {
			if j, ok := mb.index[r.ID]; ok {
				mb.entries[j] = nil
				delete(mb.index, r.ID)
				mb.dead++
			}
			continue
		}
		mb.index[r.ID] = len(mb.entries)
		mb.entries = append(mb.entries, &r)
	}
	mb.compactEntriesLocked()
	s.open[name] = mb
	return mb, nil
}

// deleteAt tombstones entry j: O(1) amortized — the slot goes nil and the
// slice is rebuilt only once dead slots dominate.
func (mb *Mailbox) deleteAt(j int) {
	delete(mb.index, mb.entries[j].ID)
	mb.entries[j] = nil
	mb.dead++
	if mb.dead >= 32 && mb.dead*2 >= len(mb.entries) {
		mb.compactEntriesLocked()
	}
}

// compactEntriesLocked rebuilds entries without nil slots, remapping the
// index and translating the cursor to its live position. mb.mu held.
func (mb *Mailbox) compactEntriesLocked() {
	if mb.dead == 0 {
		return
	}
	live := make([]*keyRecord, 0, len(mb.entries)-mb.dead)
	cursor := -1
	for i, r := range mb.entries {
		if i == mb.cursor {
			cursor = len(live)
		}
		if r == nil {
			continue
		}
		mb.index[r.ID] = len(live)
		live = append(live, r)
	}
	if cursor < 0 { // cursor was at or past the end
		cursor = len(live)
	}
	mb.entries, mb.dead, mb.cursor = live, 0, cursor
}

// liveLenLocked returns the number of live mails. mb.mu held.
func (mb *Mailbox) liveLenLocked() int { return len(mb.entries) - mb.dead }

// livePosLocked returns the live position of the physical cursor: the
// count of live entries before it. mb.mu held.
func (mb *Mailbox) livePosLocked() int {
	n := 0
	for _, r := range mb.entries[:mb.cursor] {
		if r != nil {
			n++
		}
	}
	return n
}

// physicalOfLocked returns the physical index of the pos-th live entry
// (len(entries) when pos equals the live length). mb.mu held.
func (mb *Mailbox) physicalOfLocked(pos int) int {
	n := 0
	for i, r := range mb.entries {
		if r == nil {
			continue
		}
		if n == pos {
			return i
		}
		n++
	}
	return len(mb.entries)
}

// Name returns the mailbox name.
func (mb *Mailbox) Name() string { return mb.name }

// Len returns the number of live mails in the mailbox.
func (mb *Mailbox) Len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.liveLenLocked()
}

// Whence values for Seek, mirroring io.Seek* but at mail granularity.
const (
	SeekStart   = io.SeekStart
	SeekCurrent = io.SeekCurrent
	SeekEnd     = io.SeekEnd
)

// Seek moves the read cursor by offset mails relative to whence — the
// paper's mail_seek, which "operates at the granularity of a mail instead
// of a byte". The resulting position is clamped to [0, Len].
func (mb *Mailbox) Seek(offset int, whence int) (int, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return 0, ErrClosed
	}
	var base int
	switch whence {
	case SeekStart:
		base = 0
	case SeekCurrent:
		base = mb.livePosLocked()
	case SeekEnd:
		base = mb.liveLenLocked()
	default:
		return 0, fmt.Errorf("mfs: bad whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		pos = 0
	}
	if n := mb.liveLenLocked(); pos > n {
		pos = n
	}
	mb.cursor = mb.physicalOfLocked(pos)
	return pos, nil
}

// ReadNext reads the mail under the cursor and advances it — the paper's
// mail_read. It returns io.EOF past the last mail.
func (mb *Mailbox) ReadNext() (Mail, error) {
	// stateMu pins the shared-store file handles (readRecordLocked may
	// follow a pointer into them) against a concurrent CompactShared.
	mb.store.stateMu.RLock()
	defer mb.store.stateMu.RUnlock()
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return Mail{}, ErrClosed
	}
	for mb.cursor < len(mb.entries) && mb.entries[mb.cursor] == nil {
		mb.cursor++
	}
	if mb.cursor >= len(mb.entries) {
		return Mail{}, io.EOF
	}
	rec := mb.entries[mb.cursor]
	body, err := mb.readRecordLocked(rec)
	if err != nil {
		return Mail{}, err
	}
	mb.cursor++
	return Mail{ID: rec.ID, Body: body}, nil
}

// ReadID reads the mail with the given id regardless of cursor position.
func (mb *Mailbox) ReadID(id string) (Mail, error) {
	mb.store.stateMu.RLock()
	defer mb.store.stateMu.RUnlock()
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return Mail{}, ErrClosed
	}
	j, ok := mb.index[id]
	if !ok {
		return Mail{}, fmt.Errorf("mfs: read %q: %w", id, ErrNotFound)
	}
	body, err := mb.readRecordLocked(mb.entries[j])
	if err != nil {
		return Mail{}, err
	}
	return Mail{ID: id, Body: body}, nil
}

// readRecordLocked resolves a key record to its payload, following the
// SharedRef indirection into the shared store.
func (mb *Mailbox) readRecordLocked(rec *keyRecord) ([]byte, error) {
	if rec.Ref == SharedRef {
		return readDataRecord(mb.store.shData, rec.Offset)
	}
	return readDataRecord(mb.data, rec.Offset)
}

// IDs returns the live mail-ids in arrival order.
func (mb *Mailbox) IDs() []string {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	ids := make([]string, 0, mb.liveLenLocked())
	for _, r := range mb.entries {
		if r != nil {
			ids = append(ids, r.ID)
		}
	}
	return ids
}

// Contains reports whether the mailbox holds the given mail-id.
func (mb *Mailbox) Contains(id string) bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	_, ok := mb.index[id]
	return ok
}

// Delete removes the mail with the given id — the paper's mail_delete.
// A locally stored mail's space is reclaimed by Compact; a shared mail's
// reference count is decremented in place and its payload dies with the
// last reference.
func (mb *Mailbox) Delete(id string) error {
	mb.store.stateMu.RLock()
	defer mb.store.stateMu.RUnlock()
	if mb.store.closed {
		return ErrClosed
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	j, ok := mb.index[id]
	if !ok {
		return fmt.Errorf("mfs: delete %q: %w", id, ErrNotFound)
	}
	rec := mb.entries[j]
	if mb.store.opts.sync {
		// WAL mode: the tombstone append and the shared refcount patch
		// travel as one commit request, so the delete is atomic and
		// durable when this returns.
		if err := mb.store.deleteDurable(mb, id, rec); err != nil {
			return err
		}
		mb.deleteAt(j)
		return nil
	}
	if rec.Ref == SharedRef {
		if err := mb.store.releaseShared(id); err != nil {
			return err
		}
	}
	if _, err := appendKeyRecord(mb.key, keyRecord{Type: recTombstone, ID: id}); err != nil {
		return err
	}
	mb.deleteAt(j)
	return nil
}

// deleteDurable commits a tombstone (and, for shared mails, the refcount
// decrement) through the WAL. The request carrying a refcount patch is
// enqueued while the shard lock is held: the committer drains in FIFO
// order, so patches to one position land in the order their in-memory
// counts were computed (last write wins correctly), and the committer
// never takes shard locks, so enqueueing under one cannot deadlock.
func (s *Store) deleteDurable(mb *Mailbox, id string, rec *keyRecord) error {
	keyEnd, err := mb.key.Size()
	if err != nil {
		return err
	}
	tomb, err := appendKeyRecordBuf(nil, keyRecord{Type: recTombstone, ID: id})
	if err != nil {
		return err
	}
	req := &commitReq{segs: []segment{
		{kind: walSegApp, file: mb.key, path: mb.keyPath, off: keyEnd, buf: tomb},
	}}
	if rec.Ref != SharedRef {
		return s.commit.submit(req)
	}
	sh := s.shared.shard(id)
	sh.mu.Lock()
	if shr, ok := sh.m[id]; ok {
		shr.Ref--
		var patch [4]byte
		putRef(patch[:], shr.Ref)
		req.segs = append(req.segs, segment{
			kind: walSegPat, file: s.shKey, path: s.path("shmailbox.key"),
			off: shr.refPos, buf: patch[:],
		})
		if shr.Ref <= 0 {
			delete(sh.m, id)
		}
	}
	s.commit.enqueue(req)
	sh.mu.Unlock()
	<-req.done
	return req.err
}

// releaseShared drops one reference to a shared record, persisting the
// new count in place; the record dies with its last reference.
func (s *Store) releaseShared(id string) error {
	sh := s.shared.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.m[id]
	if !ok {
		return nil
	}
	rec.Ref--
	if err := updateRef(s.shKey, rec.refPos, rec.Ref); err != nil {
		return err
	}
	if rec.Ref <= 0 {
		delete(sh.m, id)
	}
	return nil
}

// Close closes the mailbox — the paper's mail_close.
func (mb *Mailbox) Close() error {
	mb.store.stateMu.RLock()
	defer mb.store.stateMu.RUnlock()
	mb.store.openMu.Lock()
	defer mb.store.openMu.Unlock()
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	delete(mb.store.open, mb.name)
	return mb.closeLocked()
}

func (mb *Mailbox) closeLocked() error {
	if mb.closed {
		return nil
	}
	mb.closed = true
	err := mb.key.Close()
	if err2 := mb.data.Close(); err == nil {
		err = err2
	}
	return err
}

// lockBoxes acquires every destination's lock in sorted name order (the
// deadlock-free total order for multi-mailbox operations) and returns an
// unlock function.
func lockBoxes(boxes []*Mailbox) func() {
	sorted := make([]*Mailbox, len(boxes))
	copy(sorted, boxes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	for _, mb := range sorted {
		mb.mu.Lock()
	}
	return func() {
		for _, mb := range sorted {
			mb.mu.Unlock()
		}
	}
}

// NWrite writes one mail to n mailboxes — the paper's mail_nwrite and the
// heart of MFS. With a single destination the payload goes into that
// mailbox's own data file. With several destinations the payload is
// written once to the shared store with reference count n, and each
// mailbox receives an (id, offset, SharedRef) pointer record.
//
// If the mail-id already exists in the shared store, the data write is
// skipped (§6.2); the payload must then be byte-length-identical to the
// stored record, otherwise the call is treated as a collision attack
// (§6.4) and fails with ErrIDCollision. A destination that already holds
// the id fails with ErrDuplicate before anything is written.
//
// Concurrent NWrite calls with disjoint destination sets run in parallel;
// their shared-store appends are coalesced by the group committer.
func (s *Store) NWrite(boxes []*Mailbox, id string, body []byte) error {
	if len(boxes) == 0 {
		return fmt.Errorf("mfs: NWrite with no mailboxes")
	}
	if id == "" {
		return fmt.Errorf("mfs: NWrite with empty mail-id")
	}
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	seen := make(map[string]bool, len(boxes))
	for _, mb := range boxes {
		if mb.store != s {
			return fmt.Errorf("mfs: mailbox %s belongs to a different store", mb.name)
		}
		if seen[mb.name] {
			return fmt.Errorf("mfs: duplicate destination %s", mb.name)
		}
		seen[mb.name] = true
	}

	unlock := lockBoxes(boxes)
	defer unlock()
	for _, mb := range boxes {
		if mb.closed {
			return ErrClosed
		}
		if _, dup := mb.index[id]; dup {
			return fmt.Errorf("mfs: NWrite %q to %s: %w", id, mb.name, ErrDuplicate)
		}
	}

	if len(boxes) == 1 {
		mb := boxes[0]
		// A single-recipient id colliding with a shared record is the
		// §6.4 guessing attack: accepting it would alias another user's
		// mail into this mailbox on later reads.
		if s.shared.contains(id) {
			return fmt.Errorf("mfs: NWrite %q: %w", id, ErrIDCollision)
		}
		if s.opts.sync {
			return s.writeLocalDurable(mb, id, body)
		}
		off, err := appendDataRecord(mb.data, body)
		if err != nil {
			return err
		}
		rec := keyRecord{Type: recEntry, ID: id, Offset: off, Ref: 1}
		if rec.refPos, err = appendKeyRecord(mb.key, rec); err != nil {
			return err
		}
		mb.addEntry(rec)
		return nil
	}

	// Multi-recipient: single copy in the shared store.
	if s.opts.sync {
		return s.writeSharedDurable(boxes, id, body)
	}
	off, err := s.writeShared(id, body, int32(len(boxes)))
	if err != nil {
		return err
	}
	for _, mb := range boxes {
		rec := keyRecord{Type: recEntry, ID: id, Offset: off, Ref: SharedRef}
		refPos, err := appendKeyRecord(mb.key, rec)
		if err != nil {
			return err
		}
		rec.refPos = refPos
		mb.addEntry(rec)
	}
	return nil
}

// writeLocalDurable commits a single-recipient mail — data frame plus key
// tuple — as one WAL-covered request. The mailbox lock (held by the
// caller) keeps the enqueue-time file ends valid until the flush.
func (s *Store) writeLocalDurable(mb *Mailbox, id string, body []byte) error {
	dataEnd, err := mb.data.Size()
	if err != nil {
		return err
	}
	keyEnd, err := mb.key.Size()
	if err != nil {
		return err
	}
	rec := keyRecord{Type: recEntry, ID: id, Offset: dataEnd, Ref: 1}
	kbuf, err := appendKeyRecordBuf(nil, rec)
	if err != nil {
		return err
	}
	req := &commitReq{segs: []segment{
		{kind: walSegApp, file: mb.data, path: mb.dataPath, off: dataEnd,
			buf: appendDataFrame(make([]byte, 0, 4+len(body)), body)},
		{kind: walSegApp, file: mb.key, path: mb.keyPath, off: keyEnd, buf: kbuf},
	}}
	if err := s.commit.submit(req); err != nil {
		return err
	}
	rec.refPos = keyEnd + int64(len(kbuf)) - 4
	mb.addEntry(rec)
	return nil
}

// writeSharedDurable commits a multi-recipient mail as one WAL-covered
// request: the shared copy, its key tuple, and every destination's
// pointer record become durable together or not at all. The dedup path
// (§6.2) patches the existing record's refcount and appends only the
// pointer records, again as one request.
func (s *Store) writeSharedDurable(boxes []*Mailbox, id string, body []byte) error {
	sh := s.shared.shard(id)
	for {
		sh.mu.Lock()
		rec, exists := sh.m[id]
		if !exists {
			rec = &sharedRec{
				keyRecord: keyRecord{Type: recEntry, ID: id, Ref: int32(len(boxes))},
				ready:     make(chan struct{}),
			}
			sh.m[id] = rec
			sh.mu.Unlock()
			req := &commitReq{id: id, body: body, ref: int32(len(boxes))}
			for _, mb := range boxes {
				keyEnd, err := mb.key.Size()
				if err != nil {
					return s.abandonReservation(sh, id, rec, err)
				}
				req.ptrs = append(req.ptrs, pointerTarget{file: mb.key, path: mb.keyPath, off: keyEnd})
			}
			if err := s.commit.submit(req); err != nil {
				return s.abandonReservation(sh, id, rec, err)
			}
			rec.Offset, rec.refPos = req.off, req.refPos
			close(rec.ready)
			for i, mb := range boxes {
				mb.addEntry(keyRecord{
					Type: recEntry, ID: id, Offset: req.off, Ref: SharedRef,
					refPos: req.ptrs[i].refPos,
				})
			}
			return nil
		}
		sh.mu.Unlock()
		<-rec.ready
		if rec.err != nil {
			continue // the owner failed and removed the reservation; retry
		}
		sh.mu.Lock()
		if cur, ok := sh.m[id]; !ok || cur != rec {
			sh.mu.Unlock()
			continue // record died or was replaced; start over
		}
		// Dedup path: verify the payload length (the cheap §6.4 collision
		// check), then commit refcount patch + pointer records together.
		// Enqueued under the shard lock so refcount patches stay in
		// compute order (see deleteDurable).
		n, err := dataRecordLen(s.shData, rec.Offset)
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		if n != len(body) {
			sh.mu.Unlock()
			return fmt.Errorf("mfs: NWrite %q: stored %dB vs offered %dB: %w",
				id, n, len(body), ErrIDCollision)
		}
		rec.Ref += int32(len(boxes))
		var patch [4]byte
		putRef(patch[:], rec.Ref)
		req := &commitReq{segs: []segment{{
			kind: walSegPat, file: s.shKey, path: s.path("shmailbox.key"),
			off: rec.refPos, buf: patch[:],
		}}}
		off := rec.Offset
		ptrRefPos := make([]int64, len(boxes))
		ok := true
		for i, mb := range boxes {
			keyEnd, serr := mb.key.Size()
			if serr != nil {
				err, ok = serr, false
				break
			}
			pbuf, serr := appendKeyRecordBuf(nil, keyRecord{Type: recEntry, ID: id, Offset: off, Ref: SharedRef})
			if serr != nil {
				err, ok = serr, false
				break
			}
			ptrRefPos[i] = keyEnd + int64(len(pbuf)) - 4
			req.segs = append(req.segs, segment{kind: walSegApp, file: mb.key, path: mb.keyPath, off: keyEnd, buf: pbuf})
		}
		if !ok {
			rec.Ref -= int32(len(boxes))
			sh.mu.Unlock()
			return err
		}
		s.commit.enqueue(req)
		sh.mu.Unlock()
		<-req.done
		if req.err != nil {
			return req.err
		}
		for i, mb := range boxes {
			mb.addEntry(keyRecord{
				Type: recEntry, ID: id, Offset: off, Ref: SharedRef, refPos: ptrRefPos[i],
			})
		}
		return nil
	}
}

// abandonReservation unwinds a failed owner commit so waiters retry.
func (s *Store) abandonReservation(sh *indexShard, id string, rec *sharedRec, err error) error {
	rec.err = err
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
	close(rec.ready)
	return err
}

// writeShared stores one copy of body under id with the given reference
// count, or — if id is already live — verifies the payload length and
// adds refs to the existing copy (the §6.2 dedup path). It returns the
// payload's offset in the shared data file.
//
// Exactly one concurrent writer of a given id becomes the owner and
// commits the record through the group committer; others wait for that
// commit and then take the dedup path.
func (s *Store) writeShared(id string, body []byte, refs int32) (int64, error) {
	sh := s.shared.shard(id)
	for {
		sh.mu.Lock()
		rec, exists := sh.m[id]
		if !exists {
			// Reserve the id, then commit outside the shard lock so other
			// ids in this shard are not serialized behind the flush.
			rec = &sharedRec{
				keyRecord: keyRecord{Type: recEntry, ID: id, Ref: refs},
				ready:     make(chan struct{}),
			}
			sh.m[id] = rec
			sh.mu.Unlock()
			off, refPos, err := s.commit.append(id, body, refs)
			if err != nil {
				rec.err = err
				sh.mu.Lock()
				delete(sh.m, id)
				sh.mu.Unlock()
				close(rec.ready)
				return 0, err
			}
			rec.Offset, rec.refPos = off, refPos
			close(rec.ready)
			return off, nil
		}
		sh.mu.Unlock()
		<-rec.ready
		if rec.err != nil {
			// The owner failed and removed the reservation; retry as a
			// fresh writer.
			continue
		}
		sh.mu.Lock()
		if cur, ok := sh.m[id]; !ok || cur != rec {
			// The record died (last reference deleted) or was replaced
			// between our wait and relock; start over.
			sh.mu.Unlock()
			continue
		}
		// Dedup path: skip the data write, but verify the payload is the
		// same length as the stored record — a cheap integrity check that
		// flags the collision attack.
		n, err := dataRecordLen(s.shData, rec.Offset)
		if err != nil {
			sh.mu.Unlock()
			return 0, err
		}
		if n != len(body) {
			sh.mu.Unlock()
			return 0, fmt.Errorf("mfs: NWrite %q: stored %dB vs offered %dB: %w",
				id, n, len(body), ErrIDCollision)
		}
		rec.Ref += refs
		if err := updateRef(s.shKey, rec.refPos, rec.Ref); err != nil {
			sh.mu.Unlock()
			return 0, err
		}
		off := rec.Offset
		sh.mu.Unlock()
		return off, nil
	}
}

// addEntry appends a record to the in-memory index. mb.mu held.
func (mb *Mailbox) addEntry(rec keyRecord) {
	r := rec
	mb.index[r.ID] = len(mb.entries)
	mb.entries = append(mb.entries, &r)
}

// SharedCount returns the number of live records in the shared store —
// each is a single stored copy of a multi-recipient mail.
func (s *Store) SharedCount() int {
	records, _ := s.shared.counts()
	return records
}

// SharedRefTotal returns the sum of live shared reference counts, i.e.
// the number of mailbox pointers the single copies are standing in for.
func (s *Store) SharedRefTotal() int {
	_, refs := s.shared.counts()
	return refs
}
