package mfs

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/fsim"
)

// Store is an MFS instance rooted at a directory of the underlying
// filesystem. It owns the hidden shared mailbox and hands out Mailbox
// handles. Store is safe for concurrent use.
type Store struct {
	mu  sync.Mutex
	fs  fsim.FS
	dir string

	shKey  fsim.File
	shData fsim.File
	// shared index: mail-id -> live shared record.
	shared map[string]*keyRecord

	open   map[string]*Mailbox
	closed bool
}

// Mail is one mail record read back from a mailbox.
type Mail struct {
	ID   string
	Body []byte
}

// New opens (creating if necessary) an MFS store under dir in fs. The
// shared mailbox's key file is scanned once to rebuild the shared index.
func New(fs fsim.FS, dir string) (*Store, error) {
	s := &Store{
		fs:     fs,
		dir:    dir,
		shared: make(map[string]*keyRecord),
		open:   make(map[string]*Mailbox),
	}
	var err error
	if s.shKey, err = fs.OpenAppend(s.path("shmailbox.key")); err != nil {
		return nil, fmt.Errorf("mfs: open shared key file: %w", err)
	}
	if s.shData, err = fs.OpenAppend(s.path("shmailbox.data")); err != nil {
		s.shKey.Close()
		return nil, fmt.Errorf("mfs: open shared data file: %w", err)
	}
	recs, err := readKeyRecords(s.shKey)
	if err != nil {
		s.shKey.Close()
		s.shData.Close()
		return nil, err
	}
	for i := range recs {
		r := &recs[i]
		switch {
		case r.Type == recTombstone:
			delete(s.shared, r.ID)
		case r.Ref > 0:
			s.shared[r.ID] = r
		default:
			// Ref 0: fully released, awaiting compaction.
			delete(s.shared, r.ID)
		}
	}
	return s, nil
}

func (s *Store) path(name string) string {
	if s.dir == "" {
		return name
	}
	return s.dir + "/" + name
}

// Close closes the store and every mailbox opened through it.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	for _, mb := range s.open {
		mb.closeLocked()
	}
	if err := s.shKey.Close(); err != nil {
		s.shData.Close()
		return err
	}
	return s.shData.Close()
}

// Mailbox is an open MFS mailbox: a key file, a data file, an in-memory
// index rebuilt at open, and a record-granularity seek pointer — the
// mail_file of the paper's API.
type Mailbox struct {
	store *Store
	name  string
	key   fsim.File
	data  fsim.File

	// entries holds live records in arrival order; index maps id to its
	// position in entries. A deletion removes from both.
	entries []*keyRecord
	index   map[string]int

	cursor int
	closed bool
}

// Open opens mailbox name, creating its key and data files if they do not
// exist — the paper's mail_open. Repeated opens return the same handle.
func (s *Store) Open(name string) (*Mailbox, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if name == "" {
		return nil, fmt.Errorf("mfs: empty mailbox name")
	}
	if mb, ok := s.open[name]; ok {
		return mb, nil
	}
	mb := &Mailbox{store: s, name: name, index: make(map[string]int)}
	var err error
	if mb.key, err = s.fs.OpenAppend(s.path("boxes/" + name + ".key")); err != nil {
		return nil, fmt.Errorf("mfs: open mailbox %s: %w", name, err)
	}
	if mb.data, err = s.fs.OpenAppend(s.path("boxes/" + name + ".data")); err != nil {
		mb.key.Close()
		return nil, fmt.Errorf("mfs: open mailbox %s: %w", name, err)
	}
	recs, err := readKeyRecords(mb.key)
	if err != nil {
		mb.key.Close()
		mb.data.Close()
		return nil, err
	}
	for i := range recs {
		r := &recs[i]
		if r.Type == recTombstone {
			if j, ok := mb.index[r.ID]; ok {
				mb.removeAt(j)
			}
			continue
		}
		mb.index[r.ID] = len(mb.entries)
		mb.entries = append(mb.entries, r)
	}
	s.open[name] = mb
	return mb, nil
}

// removeAt drops entry j keeping order; index positions after j shift.
func (mb *Mailbox) removeAt(j int) {
	id := mb.entries[j].ID
	mb.entries = append(mb.entries[:j], mb.entries[j+1:]...)
	delete(mb.index, id)
	for i := j; i < len(mb.entries); i++ {
		mb.index[mb.entries[i].ID] = i
	}
	if mb.cursor > j {
		mb.cursor--
	}
}

// Name returns the mailbox name.
func (mb *Mailbox) Name() string { return mb.name }

// Len returns the number of live mails in the mailbox.
func (mb *Mailbox) Len() int {
	mb.store.mu.Lock()
	defer mb.store.mu.Unlock()
	return len(mb.entries)
}

// Whence values for Seek, mirroring io.Seek* but at mail granularity.
const (
	SeekStart   = io.SeekStart
	SeekCurrent = io.SeekCurrent
	SeekEnd     = io.SeekEnd
)

// Seek moves the read cursor by offset mails relative to whence — the
// paper's mail_seek, which "operates at the granularity of a mail instead
// of a byte". The resulting position is clamped to [0, Len].
func (mb *Mailbox) Seek(offset int, whence int) (int, error) {
	mb.store.mu.Lock()
	defer mb.store.mu.Unlock()
	if mb.closed {
		return 0, ErrClosed
	}
	var base int
	switch whence {
	case SeekStart:
		base = 0
	case SeekCurrent:
		base = mb.cursor
	case SeekEnd:
		base = len(mb.entries)
	default:
		return 0, fmt.Errorf("mfs: bad whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		pos = 0
	}
	if pos > len(mb.entries) {
		pos = len(mb.entries)
	}
	mb.cursor = pos
	return pos, nil
}

// ReadNext reads the mail under the cursor and advances it — the paper's
// mail_read. It returns io.EOF past the last mail.
func (mb *Mailbox) ReadNext() (Mail, error) {
	mb.store.mu.Lock()
	defer mb.store.mu.Unlock()
	if mb.closed {
		return Mail{}, ErrClosed
	}
	if mb.cursor >= len(mb.entries) {
		return Mail{}, io.EOF
	}
	rec := mb.entries[mb.cursor]
	body, err := mb.readRecordLocked(rec)
	if err != nil {
		return Mail{}, err
	}
	mb.cursor++
	return Mail{ID: rec.ID, Body: body}, nil
}

// ReadID reads the mail with the given id regardless of cursor position.
func (mb *Mailbox) ReadID(id string) (Mail, error) {
	mb.store.mu.Lock()
	defer mb.store.mu.Unlock()
	if mb.closed {
		return Mail{}, ErrClosed
	}
	j, ok := mb.index[id]
	if !ok {
		return Mail{}, fmt.Errorf("mfs: read %q: %w", id, ErrNotFound)
	}
	body, err := mb.readRecordLocked(mb.entries[j])
	if err != nil {
		return Mail{}, err
	}
	return Mail{ID: id, Body: body}, nil
}

// readRecordLocked resolves a key record to its payload, following the
// SharedRef indirection into the shared store.
func (mb *Mailbox) readRecordLocked(rec *keyRecord) ([]byte, error) {
	if rec.Ref == SharedRef {
		return readDataRecord(mb.store.shData, rec.Offset)
	}
	return readDataRecord(mb.data, rec.Offset)
}

// IDs returns the live mail-ids in arrival order.
func (mb *Mailbox) IDs() []string {
	mb.store.mu.Lock()
	defer mb.store.mu.Unlock()
	ids := make([]string, len(mb.entries))
	for i, r := range mb.entries {
		ids[i] = r.ID
	}
	return ids
}

// Contains reports whether the mailbox holds the given mail-id.
func (mb *Mailbox) Contains(id string) bool {
	mb.store.mu.Lock()
	defer mb.store.mu.Unlock()
	_, ok := mb.index[id]
	return ok
}

// Delete removes the mail with the given id — the paper's mail_delete.
// A locally stored mail's space is reclaimed by Compact; a shared mail's
// reference count is decremented in place and its payload dies with the
// last reference.
func (mb *Mailbox) Delete(id string) error {
	mb.store.mu.Lock()
	defer mb.store.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	j, ok := mb.index[id]
	if !ok {
		return fmt.Errorf("mfs: delete %q: %w", id, ErrNotFound)
	}
	rec := mb.entries[j]
	if rec.Ref == SharedRef {
		if sh, ok := mb.store.shared[id]; ok {
			sh.Ref--
			if err := updateRef(mb.store.shKey, sh.refPos, sh.Ref); err != nil {
				return err
			}
			if sh.Ref <= 0 {
				delete(mb.store.shared, id)
			}
		}
	}
	if _, err := appendKeyRecord(mb.key, keyRecord{Type: recTombstone, ID: id}); err != nil {
		return err
	}
	mb.removeAt(j)
	return nil
}

// Close closes the mailbox — the paper's mail_close.
func (mb *Mailbox) Close() error {
	mb.store.mu.Lock()
	defer mb.store.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	delete(mb.store.open, mb.name)
	return mb.closeLocked()
}

func (mb *Mailbox) closeLocked() error {
	if mb.closed {
		return nil
	}
	mb.closed = true
	err := mb.key.Close()
	if err2 := mb.data.Close(); err == nil {
		err = err2
	}
	return err
}

// NWrite writes one mail to n mailboxes — the paper's mail_nwrite and the
// heart of MFS. With a single destination the payload goes into that
// mailbox's own data file. With several destinations the payload is
// written once to the shared store with reference count n, and each
// mailbox receives an (id, offset, SharedRef) pointer record.
//
// If the mail-id already exists in the shared store, the data write is
// skipped (§6.2); the payload must then be byte-length-identical to the
// stored record, otherwise the call is treated as a collision attack
// (§6.4) and fails with ErrIDCollision. A destination that already holds
// the id fails with ErrDuplicate before anything is written.
func (s *Store) NWrite(boxes []*Mailbox, id string, body []byte) error {
	if len(boxes) == 0 {
		return fmt.Errorf("mfs: NWrite with no mailboxes")
	}
	if id == "" {
		return fmt.Errorf("mfs: NWrite with empty mail-id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	seen := make(map[string]bool, len(boxes))
	for _, mb := range boxes {
		if mb.closed {
			return ErrClosed
		}
		if mb.store != s {
			return fmt.Errorf("mfs: mailbox %s belongs to a different store", mb.name)
		}
		if seen[mb.name] {
			return fmt.Errorf("mfs: duplicate destination %s", mb.name)
		}
		seen[mb.name] = true
		if _, dup := mb.index[id]; dup {
			return fmt.Errorf("mfs: NWrite %q to %s: %w", id, mb.name, ErrDuplicate)
		}
	}

	if len(boxes) == 1 {
		mb := boxes[0]
		// A single-recipient id colliding with a shared record is the
		// §6.4 guessing attack: accepting it would alias another user's
		// mail into this mailbox on later reads.
		if _, exists := s.shared[id]; exists {
			return fmt.Errorf("mfs: NWrite %q: %w", id, ErrIDCollision)
		}
		off, err := appendDataRecord(mb.data, body)
		if err != nil {
			return err
		}
		rec := keyRecord{Type: recEntry, ID: id, Offset: off, Ref: 1}
		if rec.refPos, err = appendKeyRecord(mb.key, rec); err != nil {
			return err
		}
		mb.addEntry(rec)
		return nil
	}

	// Multi-recipient: single copy in the shared store.
	sh, exists := s.shared[id]
	if exists {
		// Dedup path: skip the data write, but verify the payload is the
		// same length as the stored record — a cheap integrity check that
		// flags the collision attack.
		n, err := dataRecordLen(s.shData, sh.Offset)
		if err != nil {
			return err
		}
		if n != len(body) {
			return fmt.Errorf("mfs: NWrite %q: stored %dB vs offered %dB: %w",
				id, n, len(body), ErrIDCollision)
		}
		sh.Ref += int32(len(boxes))
		if err := updateRef(s.shKey, sh.refPos, sh.Ref); err != nil {
			return err
		}
	} else {
		off, err := appendDataRecord(s.shData, body)
		if err != nil {
			return err
		}
		rec := keyRecord{Type: recEntry, ID: id, Offset: off, Ref: int32(len(boxes))}
		if rec.refPos, err = appendKeyRecord(s.shKey, rec); err != nil {
			return err
		}
		s.shared[id] = &rec
		sh = &rec
	}

	for _, mb := range boxes {
		rec := keyRecord{Type: recEntry, ID: id, Offset: sh.Offset, Ref: SharedRef}
		refPos, err := appendKeyRecord(mb.key, rec)
		if err != nil {
			return err
		}
		rec.refPos = refPos
		mb.addEntry(rec)
	}
	return nil
}

func (mb *Mailbox) addEntry(rec keyRecord) {
	r := rec
	mb.index[r.ID] = len(mb.entries)
	mb.entries = append(mb.entries, &r)
}

// SharedCount returns the number of live records in the shared store —
// each is a single stored copy of a multi-recipient mail.
func (s *Store) SharedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shared)
}

// SharedRefTotal returns the sum of live shared reference counts, i.e.
// the number of mailbox pointers the single copies are standing in for.
func (s *Store) SharedRefTotal() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, r := range s.shared {
		total += int(r.Ref)
	}
	return total
}
