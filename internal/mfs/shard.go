package mfs

import "sync"

// shardCount is the number of independently locked partitions of the
// shared index. Mail-ids are server-generated and uniformly distributed,
// so 64 shards keep the probability of two concurrent deliveries
// colliding on a shard lock low without bloating the Store.
const shardCount = 64

// sharedRec is one live record of the shared store. Offset and refPos are
// immutable once ready is closed; Ref is mutated only under the owning
// shard's lock.
type sharedRec struct {
	keyRecord

	// ready is closed once the record's payload and key tuple have been
	// committed and Offset/refPos are valid. Writers that find an
	// in-flight record for their id wait on it instead of writing a
	// second copy.
	ready chan struct{}

	// err records a failed commit; set before ready is closed.
	err error
}

// indexShard is one partition of the shared index.
type indexShard struct {
	mu sync.Mutex
	m  map[string]*sharedRec
}

// sharedIndex is the sharded mail-id -> shared record map. It replaces
// the single map formerly guarded by the store-wide mutex: lookups and
// reference-count updates for different mail-ids proceed in parallel.
type sharedIndex struct {
	shards [shardCount]indexShard
}

func newSharedIndex() *sharedIndex {
	idx := &sharedIndex{}
	for i := range idx.shards {
		idx.shards[i].m = make(map[string]*sharedRec)
	}
	return idx
}

// shard returns the partition owning id (FNV-1a).
func (idx *sharedIndex) shard(id string) *indexShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &idx.shards[h%shardCount]
}

// lookup returns the live record for id, if any (open-time recovery
// only: the record is not checked for commit completion).
func (idx *sharedIndex) lookup(id string) (*sharedRec, bool) {
	sh := idx.shard(id)
	sh.mu.Lock()
	r, ok := sh.m[id]
	sh.mu.Unlock()
	return r, ok
}

// contains reports whether id has a live shared record.
func (idx *sharedIndex) contains(id string) bool {
	sh := idx.shard(id)
	sh.mu.Lock()
	_, ok := sh.m[id]
	sh.mu.Unlock()
	return ok
}

// insertCommitted adds a fully committed record (used when rebuilding the
// index at open time, before any concurrency exists).
func (idx *sharedIndex) insertCommitted(r keyRecord) {
	sh := idx.shard(r.ID)
	rec := &sharedRec{keyRecord: r, ready: make(chan struct{})}
	close(rec.ready)
	sh.mu.Lock()
	sh.m[r.ID] = rec
	sh.mu.Unlock()
}

// remove drops id from the index (open-time tombstone replay).
func (idx *sharedIndex) remove(id string) {
	sh := idx.shard(id)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
}

// snapshot returns every live committed record. Callers must ensure no
// writes are in flight (the compaction paths hold the store lock
// exclusively).
func (idx *sharedIndex) snapshot() []*sharedRec {
	var out []*sharedRec
	for i := range idx.shards {
		sh := &idx.shards[i]
		sh.mu.Lock()
		for _, r := range sh.m {
			out = append(out, r)
		}
		sh.mu.Unlock()
	}
	return out
}

// counts returns the number of live records and the sum of their
// reference counts.
func (idx *sharedIndex) counts() (records, refs int) {
	for i := range idx.shards {
		sh := &idx.shards[i]
		sh.mu.Lock()
		records += len(sh.m)
		for _, r := range sh.m {
			refs += int(r.Ref)
		}
		sh.mu.Unlock()
	}
	return records, refs
}
