package mfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/fsim"
)

// checkSharedInvariants cross-checks the sharded index against the open
// mailboxes: every shared record's reference count must equal the number
// of pointer entries across mailboxes, and every pointer must have a live
// record. It also verifies each mailbox's id index matches its entries.
func checkSharedInvariants(t *testing.T, s *Store) {
	t.Helper()

	s.openMu.RLock()
	boxes := make([]*Mailbox, 0, len(s.open))
	for _, mb := range s.open {
		boxes = append(boxes, mb)
	}
	s.openMu.RUnlock()

	pointers := map[string]int32{}
	for _, mb := range boxes {
		mb.mu.Lock()
		live := 0
		for i, rec := range mb.entries {
			if rec == nil {
				continue
			}
			live++
			if j, ok := mb.index[rec.ID]; !ok || j != i {
				t.Errorf("%s: index[%q] = %d,%v, entry at %d", mb.name, rec.ID, j, ok, i)
			}
			if rec.Ref == SharedRef {
				pointers[rec.ID]++
			}
		}
		if live != len(mb.index) {
			t.Errorf("%s: %d live entries but %d index keys", mb.name, live, len(mb.index))
		}
		mb.mu.Unlock()
	}

	records := map[string]int32{}
	for i := range s.shared.shards {
		sh := &s.shared.shards[i]
		sh.mu.Lock()
		for id, rec := range sh.m {
			records[id] = rec.Ref
		}
		sh.mu.Unlock()
	}

	for id, n := range pointers {
		if records[id] != n {
			t.Errorf("shared %q: Ref = %d, %d mailbox pointers", id, records[id], n)
		}
	}
	for id, ref := range records {
		if pointers[id] != ref {
			t.Errorf("shared %q: Ref = %d but only %d pointers found", id, ref, pointers[id])
		}
		if ref <= 0 {
			t.Errorf("shared %q: non-positive Ref %d still indexed", id, ref)
		}
	}
}

// TestConcurrentStress hammers one store from many goroutines with mixed
// deliveries, reads, and deletes over overlapping mailboxes, then checks
// the refcount/index invariants and that a reopened store sees the same
// contents (the group committer must leave a consistent key file).
func TestConcurrentStress(t *testing.T) {
	for _, synced := range []bool{false, true} {
		t.Run(fmt.Sprintf("synced=%v", synced), func(t *testing.T) {
			fs := fsim.NewMem(costmodel.FSModel{})
			var opts []Option
			if synced {
				opts = append(opts, WithSync(true))
			}
			s, err := New(fs, "mfs", opts...)
			if err != nil {
				t.Fatal(err)
			}

			const (
				nBoxes   = 8
				nWorkers = 8
				nIters   = 60
			)
			boxes := make([]*Mailbox, nBoxes)
			for i := range boxes {
				boxes[i] = s.mustOpen(t, fmt.Sprintf("user%d", i))
			}

			var wg sync.WaitGroup
			for g := 0; g < nWorkers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					type sent struct {
						id   string
						box  *Mailbox
						body string
					}
					var mine []sent
					for i := 0; i < nIters; i++ {
						switch {
						case len(mine) > 4 && rng.Intn(4) == 0:
							// Delete one of our own earlier deliveries.
							j := rng.Intn(len(mine))
							if err := mine[j].box.Delete(mine[j].id); err != nil {
								t.Errorf("delete %s: %v", mine[j].id, err)
							}
							mine = append(mine[:j], mine[j+1:]...)
						case len(mine) > 0 && rng.Intn(3) == 0:
							// Read one back and check the body survived.
							j := rng.Intn(len(mine))
							m, err := mine[j].box.ReadID(mine[j].id)
							if err != nil {
								t.Errorf("read %s: %v", mine[j].id, err)
							} else if string(m.Body) != mine[j].body {
								t.Errorf("read %s: body %q, want %q", mine[j].id, m.Body, mine[j].body)
							}
						default:
							// Deliver to 1-3 distinct mailboxes.
							n := 1 + rng.Intn(3)
							perm := rng.Perm(nBoxes)[:n]
							dst := make([]*Mailbox, n)
							for k, p := range perm {
								dst[k] = boxes[p]
							}
							id := fmt.Sprintf("g%d-i%d", g, i)
							body := fmt.Sprintf("mail %s to %d boxes", id, n)
							if err := s.NWrite(dst, id, []byte(body)); err != nil {
								t.Errorf("NWrite %s: %v", id, err)
								continue
							}
							for _, mb := range dst {
								mine = append(mine, sent{id, mb, body})
							}
						}
					}
				}(g)
			}
			wg.Wait()

			checkSharedInvariants(t, s)

			// Snapshot contents, reopen from the same filesystem, compare.
			wantIDs := make(map[string][]string, nBoxes)
			for _, mb := range boxes {
				wantIDs[mb.Name()] = mb.IDs()
			}
			wantRecords, wantRefs := s.SharedCount(), s.SharedRefTotal()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := New(fs, "mfs", opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if got := s2.SharedCount(); got != wantRecords {
				t.Errorf("reopen: SharedCount = %d, want %d", got, wantRecords)
			}
			if got := s2.SharedRefTotal(); got != wantRefs {
				t.Errorf("reopen: SharedRefTotal = %d, want %d", got, wantRefs)
			}
			for name, want := range wantIDs {
				mb := s2.mustOpen(t, name)
				got := mb.IDs()
				if len(got) != len(want) {
					t.Errorf("reopen %s: %d mails, want %d", name, len(got), len(want))
					continue
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("reopen %s: id[%d] = %q, want %q", name, i, got[i], want[i])
						break
					}
				}
			}
		})
	}
}

// TestConcurrentSharedDedup races many writers of the same mail-id (each
// to its own pair of mailboxes). Exactly one payload may be written; all
// the others must take the reference-bump path.
func TestConcurrentSharedDedup(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s, err := New(fs, "mfs")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const nWriters = 8
	body := []byte("one copy to rule them all")
	var wg sync.WaitGroup
	for g := 0; g < nWriters; g++ {
		a := s.mustOpen(t, fmt.Sprintf("dup-a%d", g))
		b := s.mustOpen(t, fmt.Sprintf("dup-b%d", g))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.NWrite([]*Mailbox{a, b}, "same-id", body); err != nil {
				t.Errorf("NWrite: %v", err)
			}
		}()
	}
	wg.Wait()

	if got := s.SharedCount(); got != 1 {
		t.Fatalf("SharedCount = %d, want 1", got)
	}
	if got := s.SharedRefTotal(); got != 2*nWriters {
		t.Fatalf("SharedRefTotal = %d, want %d", got, 2*nWriters)
	}
	checkSharedInvariants(t, s)
}

// TestConcurrentCollisionDetected races writers of the same mail-id with
// different payload sizes: the §6.4 collision check must reject every
// writer whose body does not match the first committed copy.
func TestConcurrentCollisionDetected(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s, err := New(fs, "mfs")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const nWriters = 6
	results := make([]error, nWriters)
	var wg sync.WaitGroup
	for g := 0; g < nWriters; g++ {
		a := s.mustOpen(t, fmt.Sprintf("col-a%d", g))
		b := s.mustOpen(t, fmt.Sprintf("col-b%d", g))
		body := make([]byte, 10+g) // distinct length per writer
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = s.NWrite([]*Mailbox{a, b}, "contested-id", body)
		}(g)
	}
	wg.Wait()

	ok, collided := 0, 0
	for g, err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrIDCollision):
			collided++
		default:
			t.Errorf("writer %d: unexpected error %v", g, err)
		}
	}
	if ok != 1 || collided != nWriters-1 {
		t.Fatalf("got %d successes and %d collisions, want 1 and %d", ok, collided, nWriters-1)
	}
	if got := s.SharedCount(); got != 1 {
		t.Fatalf("SharedCount = %d, want 1", got)
	}
	if got := s.SharedRefTotal(); got != 2 {
		t.Fatalf("SharedRefTotal = %d, want 2", got)
	}
	checkSharedInvariants(t, s)
}

// TestConcurrentDeleteShared delivers one shared mail everywhere and then
// deletes it from every mailbox concurrently: the last deleter must
// reclaim the shared record, and the count never goes negative.
func TestConcurrentDeleteShared(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s, err := New(fs, "mfs")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const nBoxes = 12
	boxes := make([]*Mailbox, nBoxes)
	for i := range boxes {
		boxes[i] = s.mustOpen(t, fmt.Sprintf("del%d", i))
	}
	if err := s.NWrite(boxes, "bulk-id", []byte("shared then gone")); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for _, mb := range boxes {
		wg.Add(1)
		go func(mb *Mailbox) {
			defer wg.Done()
			if err := mb.Delete("bulk-id"); err != nil {
				t.Errorf("%s: delete: %v", mb.Name(), err)
			}
		}(mb)
	}
	wg.Wait()

	if got := s.SharedCount(); got != 0 {
		t.Fatalf("SharedCount = %d, want 0", got)
	}
	if got := s.SharedRefTotal(); got != 0 {
		t.Fatalf("SharedRefTotal = %d, want 0", got)
	}
	checkSharedInvariants(t, s)
}
