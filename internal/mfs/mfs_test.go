package mfs

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
	"repro/internal/fsim"
)

// newStores builds one MFS store per filesystem backend.
func newStores(t *testing.T) map[string]struct {
	fs    fsim.FS
	store *Store
} {
	t.Helper()
	out := make(map[string]struct {
		fs    fsim.FS
		store *Store
	})
	for name, fs := range map[string]fsim.FS{
		"os":  fsim.NewOS(t.TempDir()),
		"mem": fsim.NewMem(costmodel.FSModel{}),
	} {
		s, err := New(fs, "mfs")
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		out[name] = struct {
			fs    fsim.FS
			store *Store
		}{fs, s}
	}
	return out
}

func TestSingleRecipientWriteRead(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			mb, err := env.store.Open("alice")
			if err != nil {
				t.Fatal(err)
			}
			if err := env.store.NWrite([]*Mailbox{mb}, "id-1", []byte("hello alice")); err != nil {
				t.Fatal(err)
			}
			if mb.Len() != 1 {
				t.Fatalf("len = %d, want 1", mb.Len())
			}
			m, err := mb.ReadNext()
			if err != nil {
				t.Fatal(err)
			}
			if m.ID != "id-1" || string(m.Body) != "hello alice" {
				t.Fatalf("read = %q/%q", m.ID, m.Body)
			}
			if _, err := mb.ReadNext(); err != io.EOF {
				t.Fatalf("past-end read = %v, want EOF", err)
			}
			// Single-recipient mails do not enter the shared store.
			if env.store.SharedCount() != 0 {
				t.Fatal("single-recipient write touched shared store")
			}
		})
	}
}

func TestMultiRecipientSingleCopy(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			var boxes []*Mailbox
			for i := 0; i < 15; i++ {
				mb, err := env.store.Open(fmt.Sprintf("user%02d", i))
				if err != nil {
					t.Fatal(err)
				}
				boxes = append(boxes, mb)
			}
			body := []byte("spam spam spam")
			if err := env.store.NWrite(boxes, "spam-1", body); err != nil {
				t.Fatal(err)
			}
			// Exactly one copy, 15 references.
			if got := env.store.SharedCount(); got != 1 {
				t.Fatalf("shared records = %d, want 1", got)
			}
			if got := env.store.SharedRefTotal(); got != 15 {
				t.Fatalf("shared refs = %d, want 15", got)
			}
			// Every recipient reads the same bytes; their own data files
			// stay empty.
			for _, mb := range boxes {
				m, err := mb.ReadNext()
				if err != nil {
					t.Fatalf("%s: %v", mb.Name(), err)
				}
				if string(m.Body) != string(body) {
					t.Fatalf("%s read %q", mb.Name(), m.Body)
				}
				if sz, _ := env.fs.Size("mfs/boxes/" + mb.Name() + ".data"); sz != 0 {
					t.Fatalf("%s data file size = %d, want 0", mb.Name(), sz)
				}
			}
			// The shared data file holds one framed copy.
			shSize, _ := env.fs.Size("mfs/shmailbox.data")
			if want := int64(4 + len(body)); shSize != want {
				t.Fatalf("shared data size = %d, want %d", shSize, want)
			}
		})
	}
}

func TestNWriteDedupSkipsDataWrite(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			a, _ := env.store.Open("a")
			b, _ := env.store.Open("b")
			c, _ := env.store.Open("c")
			body := []byte("once only")
			if err := env.store.NWrite([]*Mailbox{a, b}, "m1", body); err != nil {
				t.Fatal(err)
			}
			before, _ := env.fs.Size("mfs/shmailbox.data")
			// Same id arrives for another recipient: data write skipped.
			if err := env.store.NWrite([]*Mailbox{c, a.store.mustOpen(t, "d")}, "m1", body); err != nil {
				t.Fatal(err)
			}
			after, _ := env.fs.Size("mfs/shmailbox.data")
			if before != after {
				t.Fatalf("shared data grew %d -> %d on dedup write", before, after)
			}
			if got := env.store.SharedRefTotal(); got != 4 {
				t.Fatalf("refs = %d, want 4", got)
			}
			m, err := c.ReadNext()
			if err != nil || string(m.Body) != "once only" {
				t.Fatalf("read after dedup: %v %q", err, m.Body)
			}
		})
	}
}

// mustOpen is a test helper for opening another mailbox inline.
func (s *Store) mustOpen(t *testing.T, name string) *Mailbox {
	t.Helper()
	mb, err := s.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	return mb
}

func TestCollisionAttackDetected(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			a, _ := env.store.Open("a")
			b, _ := env.store.Open("b")
			c, _ := env.store.Open("c")
			if err := env.store.NWrite([]*Mailbox{a, b}, "m1", []byte("legit")); err != nil {
				t.Fatal(err)
			}
			// §6.4: junk with a guessed id but different content.
			err := env.store.NWrite([]*Mailbox{c, b.store.mustOpen(t, "d")}, "m1", []byte("junk junk junk"))
			if !errors.Is(err, ErrIDCollision) {
				t.Fatalf("err = %v, want ErrIDCollision", err)
			}
			// Single-recipient write colliding with a shared id is also an
			// attack: it would alias the shared mail into the attacker's box.
			err = env.store.NWrite([]*Mailbox{c}, "m1", []byte("legit"))
			if !errors.Is(err, ErrIDCollision) {
				t.Fatalf("single-rcpt collision err = %v, want ErrIDCollision", err)
			}
		})
	}
}

func TestDuplicateInMailboxRejected(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			a, _ := env.store.Open("a")
			b, _ := env.store.Open("b")
			if err := env.store.NWrite([]*Mailbox{a, b}, "m1", []byte("x")); err != nil {
				t.Fatal(err)
			}
			err := env.store.NWrite([]*Mailbox{a, b}, "m1", []byte("x"))
			if !errors.Is(err, ErrDuplicate) {
				t.Fatalf("err = %v, want ErrDuplicate", err)
			}
			// Refcount unchanged by the failed write.
			if got := env.store.SharedRefTotal(); got != 2 {
				t.Fatalf("refs = %d, want 2", got)
			}
		})
	}
}

func TestNWriteValidation(t *testing.T) {
	env := newStores(t)["mem"]
	a, _ := env.store.Open("a")
	if err := env.store.NWrite(nil, "m", []byte("x")); err == nil {
		t.Error("no mailboxes accepted")
	}
	if err := env.store.NWrite([]*Mailbox{a}, "", []byte("x")); err == nil {
		t.Error("empty id accepted")
	}
	if err := env.store.NWrite([]*Mailbox{a, a}, "m", []byte("x")); err == nil {
		t.Error("duplicate destination accepted")
	}
	other, _ := New(fsim.NewMem(costmodel.FSModel{}), "other")
	if err := other.NWrite([]*Mailbox{a}, "m", []byte("x")); err == nil {
		t.Error("cross-store mailbox accepted")
	}
}

func TestSeekGranularity(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			mb, _ := env.store.Open("a")
			for i := 0; i < 5; i++ {
				id := fmt.Sprintf("m%d", i)
				if err := env.store.NWrite([]*Mailbox{mb}, id, []byte(id+"-body")); err != nil {
					t.Fatal(err)
				}
			}
			pos, err := mb.Seek(2, SeekStart)
			if err != nil || pos != 2 {
				t.Fatalf("Seek(2, start) = %d, %v", pos, err)
			}
			m, _ := mb.ReadNext()
			if m.ID != "m2" {
				t.Fatalf("after seek read %s, want m2", m.ID)
			}
			pos, _ = mb.Seek(-1, SeekEnd)
			if pos != 4 {
				t.Fatalf("Seek(-1, end) = %d, want 4", pos)
			}
			m, _ = mb.ReadNext()
			if m.ID != "m4" {
				t.Fatalf("read %s, want m4", m.ID)
			}
			pos, _ = mb.Seek(-100, SeekCurrent)
			if pos != 0 {
				t.Fatalf("clamped seek = %d, want 0", pos)
			}
			pos, _ = mb.Seek(100, SeekStart)
			if pos != 5 {
				t.Fatalf("clamped seek = %d, want 5", pos)
			}
			if _, err := mb.Seek(0, 99); err == nil {
				t.Fatal("bad whence accepted")
			}
		})
	}
}

func TestReadID(t *testing.T) {
	env := newStores(t)["mem"]
	mb, _ := env.store.Open("a")
	env.store.NWrite([]*Mailbox{mb}, "m1", []byte("one"))
	env.store.NWrite([]*Mailbox{mb}, "m2", []byte("two"))
	m, err := mb.ReadID("m2")
	if err != nil || string(m.Body) != "two" {
		t.Fatalf("ReadID = %v, %q", err, m.Body)
	}
	if _, err := mb.ReadID("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing id err = %v", err)
	}
}

func TestDeleteLocal(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			mb, _ := env.store.Open("a")
			env.store.NWrite([]*Mailbox{mb}, "m1", []byte("one"))
			env.store.NWrite([]*Mailbox{mb}, "m2", []byte("two"))
			if err := mb.Delete("m1"); err != nil {
				t.Fatal(err)
			}
			if mb.Len() != 1 || mb.Contains("m1") {
				t.Fatal("delete did not remove entry")
			}
			m, err := mb.ReadNext()
			if err != nil || m.ID != "m2" {
				t.Fatalf("read after delete = %v %v", m.ID, err)
			}
			if err := mb.Delete("m1"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double delete err = %v", err)
			}
		})
	}
}

func TestDeleteSharedDecrementsRef(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			a, _ := env.store.Open("a")
			b, _ := env.store.Open("b")
			c, _ := env.store.Open("c")
			env.store.NWrite([]*Mailbox{a, b, c}, "m1", []byte("shared"))
			if err := a.Delete("m1"); err != nil {
				t.Fatal(err)
			}
			if got := env.store.SharedRefTotal(); got != 2 {
				t.Fatalf("refs = %d, want 2", got)
			}
			// Remaining readers still see the mail.
			m, err := b.ReadNext()
			if err != nil || string(m.Body) != "shared" {
				t.Fatalf("b read = %v %q", err, m.Body)
			}
			b.Delete("m1")
			c.Delete("m1")
			if env.store.SharedCount() != 0 {
				t.Fatal("record should die with last reference")
			}
		})
	}
}

func TestCursorStableAcrossDeleteBefore(t *testing.T) {
	env := newStores(t)["mem"]
	mb, _ := env.store.Open("a")
	for i := 0; i < 4; i++ {
		env.store.NWrite([]*Mailbox{mb}, fmt.Sprintf("m%d", i), []byte("x"))
	}
	mb.Seek(2, SeekStart)
	mb.Delete("m0") // deletion before the cursor shifts it back
	m, err := mb.ReadNext()
	if err != nil || m.ID != "m2" {
		t.Fatalf("read = %v %v, want m2", m.ID, err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	for name, fs := range map[string]fsim.FS{
		"os":  fsim.NewOS(t.TempDir()),
		"mem": fsim.NewMem(costmodel.FSModel{}),
	} {
		t.Run(name, func(t *testing.T) {
			s, err := New(fs, "mfs")
			if err != nil {
				t.Fatal(err)
			}
			a, _ := s.Open("a")
			b, _ := s.Open("b")
			s.NWrite([]*Mailbox{a}, "solo", []byte("local mail"))
			s.NWrite([]*Mailbox{a, b}, "multi", []byte("shared mail"))
			a.Delete("solo")
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2, err := New(fs, "mfs")
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			a2, _ := s2.Open("a")
			if a2.Len() != 1 || !a2.Contains("multi") || a2.Contains("solo") {
				t.Fatalf("reopened a: len=%d ids=%v", a2.Len(), a2.IDs())
			}
			m, err := a2.ReadNext()
			if err != nil || string(m.Body) != "shared mail" {
				t.Fatalf("reopened read = %v %q", err, m.Body)
			}
			if s2.SharedRefTotal() != 2 {
				t.Fatalf("reopened refs = %d, want 2", s2.SharedRefTotal())
			}
		})
	}
}

func TestRefCountPersistedInPlace(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s, _ := New(fs, "mfs")
	a, _ := s.Open("a")
	b, _ := s.Open("b")
	s.NWrite([]*Mailbox{a, b}, "m", []byte("x"))
	a.Delete("m")
	s.Close()

	s2, _ := New(fs, "mfs")
	defer s2.Close()
	if got := s2.SharedRefTotal(); got != 1 {
		t.Fatalf("persisted ref = %d, want 1", got)
	}
	b2, _ := s2.Open("b")
	if m, err := b2.ReadNext(); err != nil || string(m.Body) != "x" {
		t.Fatalf("read = %v %q", err, m.Body)
	}
}

func TestCrashTruncatedKeyRecordIgnored(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s, _ := New(fs, "mfs")
	a, _ := s.Open("a")
	s.NWrite([]*Mailbox{a}, "whole", []byte("complete"))
	s.Close()

	// Simulate a crash mid-append: write half a record to the key file.
	f, _ := fs.OpenAppend("mfs/boxes/a.key")
	f.Write([]byte{recEntry, 10, 0, 'p', 'a', 'r'})
	f.Close()

	s2, err := New(fs, "mfs")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	a2, err := s2.Open("a")
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	if a2.Len() != 1 || !a2.Contains("whole") {
		t.Fatalf("recovered mailbox = %v", a2.IDs())
	}
}

func TestCorruptKeyFileDetected(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s, _ := New(fs, "mfs")
	s.Close()
	f, _ := fs.OpenAppend("mfs/boxes/a.key")
	f.Write([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Close()
	s2, _ := New(fs, "mfs")
	defer s2.Close()
	if _, err := s2.Open("a"); err == nil {
		t.Fatal("corrupt record type accepted")
	}
}

func TestOpenSameMailboxReturnsSameHandle(t *testing.T) {
	env := newStores(t)["mem"]
	a1, _ := env.store.Open("a")
	a2, _ := env.store.Open("a")
	if a1 != a2 {
		t.Fatal("Open should return the existing handle")
	}
	if _, err := env.store.Open(""); err == nil {
		t.Fatal("empty mailbox name accepted")
	}
}

func TestClosedOperations(t *testing.T) {
	env := newStores(t)["mem"]
	mb, _ := env.store.Open("a")
	env.store.NWrite([]*Mailbox{mb}, "m", []byte("x"))
	if err := mb.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mb.ReadNext(); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close = %v", err)
	}
	if _, err := mb.Seek(0, SeekStart); !errors.Is(err, ErrClosed) {
		t.Fatalf("seek after close = %v", err)
	}
	if err := mb.Delete("m"); !errors.Is(err, ErrClosed) {
		t.Fatalf("delete after close = %v", err)
	}
	if err := mb.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close = %v", err)
	}
	// Reopening yields a fresh handle over the same data.
	mb2, err := env.store.Open("a")
	if err != nil || mb2.Len() != 1 {
		t.Fatalf("reopen = %v, len %d", err, mb2.Len())
	}

	env.store.Close()
	if _, err := env.store.Open("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("open on closed store = %v", err)
	}
	if err := env.store.NWrite([]*Mailbox{mb2}, "y", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("NWrite on closed store = %v", err)
	}
	if err := env.store.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double store close = %v", err)
	}
}

func TestCompactReclaimsLocalSpace(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			mb, _ := env.store.Open("a")
			big := make([]byte, 8192)
			env.store.NWrite([]*Mailbox{mb}, "dead", big)
			env.store.NWrite([]*Mailbox{mb}, "live", []byte("keep me"))
			mb.Delete("dead")
			before, _ := env.fs.Size("mfs/boxes/a.data")
			if err := mb.Compact(); err != nil {
				t.Fatal(err)
			}
			after, _ := env.fs.Size("mfs/boxes/a.data")
			if after >= before {
				t.Fatalf("compact did not shrink data: %d -> %d", before, after)
			}
			m, err := mb.ReadNext()
			if err != nil || string(m.Body) != "keep me" {
				t.Fatalf("read after compact = %v %q", err, m.Body)
			}
		})
	}
}

func TestCompactSharedPatchesPointers(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			a, _ := env.store.Open("a")
			b, _ := env.store.Open("b")
			big := make([]byte, 8192)
			env.store.NWrite([]*Mailbox{a, b}, "dead", big)
			env.store.NWrite([]*Mailbox{a, b}, "live", []byte("survivor"))
			a.Delete("dead")
			b.Delete("dead")
			// Close b so the rewrite also exercises the on-disk patch path.
			b.Close()
			before, _ := env.fs.Size("mfs/shmailbox.data")
			if err := env.store.CompactShared(); err != nil {
				t.Fatal(err)
			}
			after, _ := env.fs.Size("mfs/shmailbox.data")
			if after >= before {
				t.Fatalf("shared compact did not shrink: %d -> %d", before, after)
			}
			// Open mailbox pointer still valid.
			m, err := a.ReadID("live")
			if err != nil || string(m.Body) != "survivor" {
				t.Fatalf("a read = %v %q", err, m.Body)
			}
			// Closed mailbox reopened: patched pointer valid.
			b2, err := env.store.Open("b")
			if err != nil {
				t.Fatal(err)
			}
			m, err = b2.ReadID("live")
			if err != nil || string(m.Body) != "survivor" {
				t.Fatalf("b read = %v %q", err, m.Body)
			}
		})
	}
}

func TestCompactSharedSurvivesReopen(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s, _ := New(fs, "mfs")
	a, _ := s.Open("a")
	b, _ := s.Open("b")
	s.NWrite([]*Mailbox{a, b}, "gone", make([]byte, 4096))
	s.NWrite([]*Mailbox{a, b}, "kept", []byte("payload"))
	a.Delete("gone")
	b.Delete("gone")
	if err := s.CompactShared(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, _ := New(fs, "mfs")
	defer s2.Close()
	a2, _ := s2.Open("a")
	m, err := a2.ReadID("kept")
	if err != nil || string(m.Body) != "payload" {
		t.Fatalf("after reopen = %v %q", err, m.Body)
	}
}

func TestStats(t *testing.T) {
	env := newStores(t)["mem"]
	a, _ := env.store.Open("a")
	b, _ := env.store.Open("b")
	env.store.NWrite([]*Mailbox{a, b}, "m", []byte("x"))
	st := env.store.Stats()
	if st.SharedRecords != 1 || st.SharedRefs != 2 || st.OpenMailboxes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEmptyBodyMail(t *testing.T) {
	env := newStores(t)["mem"]
	a, _ := env.store.Open("a")
	b, _ := env.store.Open("b")
	if err := env.store.NWrite([]*Mailbox{a, b}, "empty", nil); err != nil {
		t.Fatal(err)
	}
	m, err := a.ReadNext()
	if err != nil || len(m.Body) != 0 || m.ID != "empty" {
		t.Fatalf("empty mail read = %v %q", err, m.Body)
	}
}

func TestNWriteManyProperty(t *testing.T) {
	// Property: after an arbitrary sequence of single- and multi-recipient
	// writes, every mailbox reads back exactly the bodies addressed to it,
	// in order, and the shared store holds one record per multi-recipient
	// mail.
	f := func(plan []byte) bool {
		fs := fsim.NewMem(costmodel.FSModel{})
		s, err := New(fs, "mfs")
		if err != nil {
			return false
		}
		defer s.Close()
		boxes := make([]*Mailbox, 6)
		for i := range boxes {
			boxes[i], _ = s.Open(fmt.Sprintf("u%d", i))
		}
		want := make(map[string][]string) // mailbox -> expected bodies
		multi := 0
		for step, p := range plan {
			n := int(p)%len(boxes) + 1 // 1..6 recipients
			dst := make([]*Mailbox, n)
			for i := 0; i < n; i++ {
				dst[i] = boxes[(int(p)+i)%len(boxes)]
			}
			id := fmt.Sprintf("mail-%d", step)
			body := fmt.Sprintf("body-%d", step)
			if err := s.NWrite(dst, id, []byte(body)); err != nil {
				return false
			}
			if n > 1 {
				multi++
			}
			for _, d := range dst {
				want[d.Name()] = append(want[d.Name()], body)
			}
		}
		if s.SharedCount() != multi {
			return false
		}
		for _, mb := range boxes {
			mb.Seek(0, SeekStart)
			var got []string
			for {
				m, err := mb.ReadNext()
				if err == io.EOF {
					break
				}
				if err != nil {
					return false
				}
				got = append(got, string(m.Body))
			}
			exp := want[mb.Name()]
			if len(got) != len(exp) {
				return false
			}
			for i := range got {
				if got[i] != exp[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRefcountNeverNegativeProperty(t *testing.T) {
	// Property: under arbitrary interleavings of writes and deletes, the
	// shared reference total equals the number of live shared pointers.
	f := func(ops []byte) bool {
		fs := fsim.NewMem(costmodel.FSModel{})
		s, _ := New(fs, "mfs")
		defer s.Close()
		a, _ := s.Open("a")
		b, _ := s.Open("b")
		c, _ := s.Open("c")
		all := []*Mailbox{a, b, c}
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				id := fmt.Sprintf("m%d", next)
				next++
				s.NWrite(all, id, []byte("x"))
			default:
				mb := all[int(op)%3]
				ids := mb.IDs()
				if len(ids) > 0 {
					mb.Delete(ids[int(op)%len(ids)])
				}
			}
			pointers := 0
			for _, mb := range all {
				for _, id := range mb.IDs() {
					_ = id
					pointers++
				}
			}
			if s.SharedRefTotal() != pointers {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
