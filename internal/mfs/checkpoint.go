package mfs

import (
	"fmt"
	"strings"
)

// CheckpointStats reports what a checkpoint copied.
type CheckpointStats struct {
	Files int
	Bytes int64
}

// Checkpoint writes a point-in-time copy of the store under destDir (in
// the same filesystem), while the store keeps serving traffic. Opening
// the copy with New yields a store containing every mail acknowledged
// before the checkpoint began and passing the full consistency check —
// the copy carries the dirty marker, so its first open reconciles away
// whatever the copy caught mid-flight of later deliveries.
//
// The sequence: commits are quiesced just long enough to rotate the WAL
// (making every acknowledged write durable and the log empty) and copy
// the shared store, then commits resume while the mailbox files are
// copied — each box key file before its data file, so a copied record
// always has its payload. The WAL itself is never copied: its records
// describe the live files' states, not the copy's.
//
// The files are copied, not hardlinked: MFS files are append-mutable
// (and refcounts are patched in place), and both fsim backends share the
// inode across links — a hardlinked "backup" would keep mutating with
// the live store. This differs from LSM-style stores whose immutable
// segments can be hardlinked for free.
func (s *Store) Checkpoint(destDir string) (CheckpointStats, error) {
	var st CheckpointStats
	if destDir == "" {
		return st, fmt.Errorf("mfs: checkpoint: empty destination")
	}
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.closed {
		return st, ErrClosed
	}
	dest := func(rel string) string { return destDir + "/" + rel }

	// Phase 1 — under the committer lock: no batch can land, so the
	// shared files and (in WAL mode, thanks to the rotation) every file
	// are a consistent durable snapshot while we copy the shared store.
	c := s.commit
	c.mu.Lock()
	err := c.rotateLocked()
	if err == nil {
		for _, rel := range []string{"shmailbox.key", "shmailbox.data", dirtyMarker} {
			src := s.path(rel)
			if !s.fs.Exists(src) {
				continue
			}
			var n int64
			if n, err = s.copyFile(src, dest(rel)); err != nil {
				break
			}
			st.Files++
			st.Bytes += n
		}
	}
	c.mu.Unlock()
	if err != nil {
		return st, fmt.Errorf("mfs: checkpoint: %w", err)
	}

	// Phase 2 — live: copy each mailbox, key file before data file, so
	// every copied key record has its payload bytes in the copied data.
	names := s.fs.List(s.path("boxes/"))
	copyClass := func(suffix string) error {
		for _, src := range names {
			if !strings.HasSuffix(src, suffix) {
				continue
			}
			rel := src
			if s.dir != "" {
				rel = strings.TrimPrefix(src, s.dir+"/")
			}
			n, err := s.copyFile(src, dest(rel))
			if err != nil {
				return err
			}
			st.Files++
			st.Bytes += n
		}
		return nil
	}
	if err := copyClass(".key"); err != nil {
		return st, fmt.Errorf("mfs: checkpoint: %w", err)
	}
	if err := copyClass(".data"); err != nil {
		return st, fmt.Errorf("mfs: checkpoint: %w", err)
	}
	return st, nil
}

// copyFile copies src to dst byte-for-byte and syncs the copy.
func (s *Store) copyFile(src, dst string) (int64, error) {
	in, err := s.fs.OpenRead(src)
	if err != nil {
		return 0, err
	}
	data, err := readAll(in)
	in.Close()
	if err != nil {
		return 0, err
	}
	out, err := s.fs.Create(dst)
	if err != nil {
		return 0, err
	}
	if len(data) > 0 {
		if _, err := out.Write(data); err != nil {
			out.Close()
			return 0, err
		}
	}
	err = out.Sync()
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return int64(len(data)), err
}
