package mfs

import (
	"fmt"
	"strings"

	"repro/internal/fsim"
)

// RecoveryStats reports what New's recovery pass found and repaired.
// The zero value means the store opened clean (no log to replay, clean
// shutdown marker state).
type RecoveryStats struct {
	Replayed        int   // complete WAL records replayed
	ReplayedBytes   int64 // payload bytes rewritten from the log
	DiscardedTail   int64 // torn WAL bytes discarded after the last complete record
	Reconciled      bool  // the full refcount/pointer reconciliation ran
	RefsFixed       int   // shared refcounts rewritten to match pointer tallies
	PointersDropped int   // pointer records tombstoned (their shared copy is gone)
	TornDropped     int   // local records tombstoned (their payload is unreadable)
	SharedDropped   int   // shared records tombstoned (no pointer references them)
}

// replayWAL rewrites every mutation recorded by complete WAL records —
// the batches whose single commit Sync succeeded before the crash — and
// discards the torn tail. Append segments also truncate their file to
// the log's high-water mark, cutting any torn bytes a partial page flush
// may have left beyond the last committed batch. Once every touched file
// is synced the log itself is truncated, restoring the invariant that
// the WAL never promises more than the files deliver.
func (s *Store) replayWAL() error {
	walPath := s.path("mfs.wal")
	wf, err := s.fs.OpenRead(walPath)
	if err != nil {
		return err
	}
	data, err := readAll(wf)
	wf.Close()
	if err != nil {
		return err
	}
	records := parseWAL(data)
	replayedLen := 0
	files := make(map[string]fsim.File)
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	openFile := func(path string) (fsim.File, error) {
		if f, ok := files[path]; ok {
			return f, nil
		}
		f, err := s.fs.OpenAppend(path)
		if err != nil {
			return nil, err
		}
		files[path] = f
		return f, nil
	}
	maxEnd := make(map[string]int64)
	for _, segs := range records {
		for _, seg := range segs {
			f, err := openFile(seg.path)
			if err != nil {
				return err
			}
			if _, err := f.WriteAt(seg.buf, seg.off); err != nil {
				return err
			}
			if seg.kind == walSegApp {
				if end := seg.off + int64(len(seg.buf)); end > maxEnd[seg.path] {
					maxEnd[seg.path] = end
				}
			}
			s.recovery.ReplayedBytes += int64(len(seg.buf))
		}
		s.recovery.Replayed++
		replayedLen += walRecordLen(segs)
	}
	for path, end := range maxEnd {
		f := files[path]
		size, err := f.Size()
		if err != nil {
			return err
		}
		if size > end {
			if err := f.Truncate(end); err != nil {
				return err
			}
		}
	}
	for _, f := range files {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	s.recovery.DiscardedTail = int64(len(data)) - walRecordsLen(records)
	// Every promise the log made is now durable in the files; retire it.
	wt, err := s.fs.Create(walPath)
	if err != nil {
		return err
	}
	err = wt.Sync()
	if cerr := wt.Close(); err == nil {
		err = cerr
	}
	return err
}

// walRecordLen returns the serialized size of one record.
func walRecordLen(segs []walSeg) int {
	n := 1 + 8 + 4 + 4 // magic + seq + nsegs + crc
	for _, s := range segs {
		n += 1 + 2 + len(s.path) + 8 + 4 + len(s.buf)
	}
	return n
}

// walRecordsLen sums the serialized sizes of the parsed records.
func walRecordsLen(records [][]walSeg) int64 {
	var n int64
	for _, segs := range records {
		n += int64(walRecordLen(segs))
	}
	return n
}

// reconcile restores the cross-file invariants after an unclean
// shutdown: every shared record's reference count must equal the number
// of pointer records naming it across all mailbox key files, every
// local record's payload must be readable, and no pointer may name a
// shared record that does not exist. Violations are repaired in the
// direction that loses nothing acknowledged: counts are rewritten to
// the pointer tally, and records whose payload is gone are tombstoned.
//
// The pass runs before the store serves traffic (New, no mailboxes
// open), so it owns every file it touches. It is O(total key records) —
// gated by the dirty marker so clean opens never pay it.
func (s *Store) reconcile() error {
	s.recovery.Reconciled = true
	tally := make(map[string]int)
	for _, name := range s.fs.List(s.path("boxes/")) {
		if !strings.HasSuffix(name, ".key") {
			continue
		}
		if err := s.reconcileBox(name, tally); err != nil {
			return err
		}
	}
	// Repair shared refcounts against the pointer tally.
	for _, rec := range s.shared.snapshot() {
		n := tally[rec.ID]
		switch {
		case n == 0:
			if _, err := appendKeyRecord(s.shKey, keyRecord{Type: recTombstone, ID: rec.ID}); err != nil {
				return err
			}
			s.shared.remove(rec.ID)
			s.recovery.SharedDropped++
		case int32(n) != rec.Ref:
			if err := updateRef(s.shKey, rec.refPos, int32(n)); err != nil {
				return err
			}
			rec.Ref = int32(n)
			s.recovery.RefsFixed++
		}
	}
	if s.recovery.RefsFixed > 0 || s.recovery.SharedDropped > 0 {
		if err := s.shKey.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// reconcileBox scans one mailbox key file, tombstones records whose
// payload cannot be resolved, and tallies surviving shared pointers.
func (s *Store) reconcileBox(keyPath string, tally map[string]int) error {
	kf, err := s.fs.OpenAppend(keyPath)
	if err != nil {
		return err
	}
	defer kf.Close()
	recs, err := readKeyRecords(kf)
	if err != nil {
		// A corrupt key file would fail every future Open of this box;
		// reconcile is the one place allowed to give up on its records.
		return fmt.Errorf("mfs: reconcile %s: %w", keyPath, err)
	}
	live := make(map[string]keyRecord)
	order := make([]string, 0, len(recs))
	for _, r := range recs {
		if r.Type == recTombstone {
			delete(live, r.ID)
			continue
		}
		if _, ok := live[r.ID]; !ok {
			order = append(order, r.ID)
		}
		live[r.ID] = r
	}
	dataPath := strings.TrimSuffix(keyPath, ".key") + ".data"
	dataSize := int64(0)
	if s.fs.Exists(dataPath) {
		if dataSize, err = s.fs.Size(dataPath); err != nil {
			return err
		}
	}
	var df fsim.File
	dropped := 0
	for _, id := range order {
		r, ok := live[id]
		if !ok {
			continue
		}
		if r.Ref == SharedRef {
			shr, ok := s.shared.lookup(r.ID)
			if !ok {
				// Orphan pointer: its shared copy never committed or is
				// gone. Tombstone it — the mail was never acknowledged
				// with this destination durable.
				if _, err := appendKeyRecord(kf, keyRecord{Type: recTombstone, ID: r.ID}); err != nil {
					return err
				}
				s.recovery.PointersDropped++
				dropped++
				continue
			}
			if shr.Offset != r.Offset {
				// Stale pointer (an interrupted shared compaction): point
				// it at the record's current home. The offset field sits 8
				// bytes before the Ref field.
				var ob [8]byte
				putOffset(ob[:], shr.Offset)
				if _, err := kf.WriteAt(ob[:], r.refPos-8); err != nil {
					return err
				}
				dropped++ // force a sync of this key file below
			}
			tally[r.ID]++
			continue
		}
		// Local record: the payload frame must be fully inside the data
		// file.
		bad := r.Offset+4 > dataSize
		if !bad {
			if df == nil {
				if df, err = s.fs.OpenRead(dataPath); err != nil {
					return err
				}
				defer df.Close()
			}
			n, lerr := dataRecordLen(df, r.Offset)
			bad = lerr != nil || r.Offset+4+int64(n) > dataSize
		}
		if bad {
			if _, err := appendKeyRecord(kf, keyRecord{Type: recTombstone, ID: r.ID}); err != nil {
				return err
			}
			s.recovery.TornDropped++
			dropped++
		}
	}
	if dropped > 0 {
		if err := kf.Sync(); err != nil {
			return err
		}
	}
	return nil
}
