package mfs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/fsim"
)

// Write-ahead log for the crash-consistent commit path (WithSync).
//
// Every group-commit batch becomes one WAL record carrying every byte the
// batch will write — shared-store appends, mailbox key/data appends,
// pointer records, and in-place refcount patches — as a list of segments.
// The record is appended to mfs.wal and the WAL is synced ONCE; that
// single Sync is the batch's only ordering point. Only then are the
// segments applied to the real files, unsynced. After a crash, replay
// rewrites every applied-but-volatile byte from the log, so the
// key-without-data and data-without-key windows of the old
// sync(data)+sync(key) protocol are unreachable: a batch is either
// entirely durable (its record is in the synced WAL) or entirely absent
// (the record is torn and replay discards it).
//
// The WAL grows until rotation: rotate = Sync every file the log has
// touched, then truncate the log. The invariant behind both rotation and
// recovery is: never truncate the WAL before syncing every file its
// records touch.
//
// Record wire format (little endian):
//
//	magic 'M' | seq u64 | nsegs u32 | seg... | crc u32
//	seg := kind ('A' append | 'P' patch) | pathLen u16 | path | off u64 | len u32 | bytes
//
// The CRC (IEEE) covers everything from the magic through the last
// segment. A record with a bad or missing CRC — the torn tail left by a
// crash mid-append — ends replay; everything before it is complete by
// construction.

const (
	walMagic   byte = 'M'
	walSegApp  byte = 'A'     // append: off is the file end the bytes extend
	walSegPat  byte = 'P'     // patch: in-place overwrite at off
	walDefault      = 1 << 20 // rotation threshold in bytes
)

// walSeg is one file mutation inside a WAL record.
type walSeg struct {
	kind byte
	path string
	off  int64
	buf  []byte
}

// appendWALRecord serializes one record onto buf.
func appendWALRecord(buf []byte, seq uint64, segs []walSeg) []byte {
	start := len(buf)
	buf = append(buf, walMagic)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(segs)))
	for _, s := range segs {
		buf = append(buf, s.kind)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.path)))
		buf = append(buf, s.path...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.off))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.buf)))
		buf = append(buf, s.buf...)
	}
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// parseWAL decodes every complete record in data, stopping silently at
// the first torn or corrupt one (the crash signature). It returns the
// records' segments in log order.
func parseWAL(data []byte) (records [][]walSeg) {
	pos := 0
	for pos < len(data) {
		segs, next, ok := parseWALRecord(data, pos)
		if !ok {
			break
		}
		records = append(records, segs)
		pos = next
	}
	return records
}

// parseWALRecord decodes one record starting at pos; ok is false when the
// record is truncated, has a bad magic, or fails its checksum.
func parseWALRecord(data []byte, pos int) (segs []walSeg, next int, ok bool) {
	p := pos
	if p+1+8+4 > len(data) || data[p] != walMagic {
		return nil, 0, false
	}
	p++
	p += 8 // seq: informational; order is positional
	nsegs := int(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	segs = make([]walSeg, 0, nsegs)
	for i := 0; i < nsegs; i++ {
		if p+1+2 > len(data) {
			return nil, 0, false
		}
		kind := data[p]
		if kind != walSegApp && kind != walSegPat {
			return nil, 0, false
		}
		pathLen := int(binary.LittleEndian.Uint16(data[p+1:]))
		p += 3
		if p+pathLen+8+4 > len(data) {
			return nil, 0, false
		}
		path := string(data[p : p+pathLen])
		p += pathLen
		off := int64(binary.LittleEndian.Uint64(data[p:]))
		p += 8
		n := int(binary.LittleEndian.Uint32(data[p:]))
		p += 4
		if p+n > len(data) {
			return nil, 0, false
		}
		segs = append(segs, walSeg{kind: kind, path: path, off: off, buf: data[p : p+n]})
		p += n
	}
	if p+4 > len(data) {
		return nil, 0, false
	}
	if crc32.ChecksumIEEE(data[pos:p]) != binary.LittleEndian.Uint32(data[p:]) {
		return nil, 0, false
	}
	return segs, p + 4, true
}

// readAll loads a file's full content.
func readAll(f fsim.File) ([]byte, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
			return nil, fmt.Errorf("mfs: read %s: %w", f.Name(), err)
		}
	}
	return data, nil
}
