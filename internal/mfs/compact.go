package mfs

import (
	"fmt"
	"sort"
	"strings"
)

// Compact rewrites the mailbox's key and data files, dropping tombstones
// and the dead space of deleted local mails. Shared pointer records are
// preserved untouched (their payloads live in the shared store). Other
// mailboxes remain fully available while one compacts.
func (mb *Mailbox) Compact() error {
	mb.store.maintMu.Lock()
	defer mb.store.maintMu.Unlock()
	mb.store.stateMu.RLock()
	defer mb.store.stateMu.RUnlock()
	if mb.store.closed {
		return ErrClosed
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	s := mb.store
	mb.compactEntriesLocked()

	// Load surviving local payloads before truncating.
	type liveMail struct {
		rec  *keyRecord
		body []byte // nil for shared pointers
	}
	live := make([]liveMail, 0, len(mb.entries))
	for _, rec := range mb.entries {
		lm := liveMail{rec: rec}
		if rec.Ref != SharedRef {
			body, err := readDataRecord(mb.data, rec.Offset)
			if err != nil {
				return fmt.Errorf("mfs: compact %s: %w", mb.name, err)
			}
			lm.body = body
		}
		live = append(live, lm)
	}

	// Rewrite both files from scratch.
	if err := mb.key.Close(); err != nil {
		return err
	}
	if err := mb.data.Close(); err != nil {
		return err
	}
	var err error
	if mb.data, err = s.fs.Create(s.path("boxes/" + mb.name + ".data")); err != nil {
		return fmt.Errorf("mfs: compact %s: %w", mb.name, err)
	}
	if mb.key, err = s.fs.Create(s.path("boxes/" + mb.name + ".key")); err != nil {
		return fmt.Errorf("mfs: compact %s: %w", mb.name, err)
	}
	for _, lm := range live {
		if lm.body != nil {
			off, err := appendDataRecord(mb.data, lm.body)
			if err != nil {
				return err
			}
			lm.rec.Offset = off
		}
		refPos, err := appendKeyRecord(mb.key, *lm.rec)
		if err != nil {
			return err
		}
		lm.rec.refPos = refPos
	}
	if s.opts.sync {
		// The rewrite bypassed the WAL, so outstanding log records no
		// longer describe these files. Rotate: sync the rewritten files
		// (and everything else dirty), then truncate the log. A crash
		// before the rotation reverts to the pre-compaction files, which
		// the old log records still describe — nothing is lost either way.
		s.commit.markDirty(mb.keyPath, mb.dataPath)
		if err := s.commit.rotate(); err != nil {
			return err
		}
	}
	return nil
}

// CompactShared rewrites the shared store, reclaiming the space of
// records whose reference count reached zero, and rewrites every mailbox
// key file under the store so the pointer offsets stay valid. Mailboxes
// not currently open are rewritten on disk; open mailboxes are updated in
// memory as well.
//
// CompactShared holds the store lock exclusively: it is the stop-the-world
// maintenance pass, and every delivery, read, and delete waits for it.
func (s *Store) CompactShared() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.closed {
		return ErrClosed
	}

	// Read surviving shared payloads (sorted for a deterministic layout
	// across runs).
	survivors := s.shared.snapshot()
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].ID < survivors[j].ID })
	bodies := make([][]byte, len(survivors))
	for i, sv := range survivors {
		body, err := readDataRecord(s.shData, sv.Offset)
		if err != nil {
			return fmt.Errorf("mfs: compact shared: %w", err)
		}
		bodies[i] = body
	}

	// Rewrite shared data and key files.
	if err := s.shKey.Close(); err != nil {
		return err
	}
	if err := s.shData.Close(); err != nil {
		return err
	}
	var err error
	if s.shData, err = s.fs.Create(s.path("shmailbox.data")); err != nil {
		return fmt.Errorf("mfs: compact shared: %w", err)
	}
	if s.shKey, err = s.fs.Create(s.path("shmailbox.key")); err != nil {
		return fmt.Errorf("mfs: compact shared: %w", err)
	}
	// The committer appends through its own handle pair; keep it in step.
	s.commit.setFiles(s.shKey, s.shData)
	newOffset := make(map[string]int64, len(survivors))
	for i, sv := range survivors {
		off, err := appendDataRecord(s.shData, bodies[i])
		if err != nil {
			return err
		}
		sv.Offset = off
		newOffset[sv.ID] = off
		refPos, err := appendKeyRecord(s.shKey, sv.keyRecord)
		if err != nil {
			return err
		}
		sv.refPos = refPos
	}

	// Patch pointer offsets in every mailbox key file.
	s.openMu.RLock()
	defer s.openMu.RUnlock()
	touched := []string{s.path("shmailbox.key"), s.path("shmailbox.data")}
	for _, name := range s.fs.List(s.path("boxes/")) {
		if !strings.HasSuffix(name, ".key") {
			continue
		}
		boxName := strings.TrimSuffix(name[strings.LastIndex(name, "/")+1:], ".key")
		if mb, ok := s.open[boxName]; ok {
			if err := s.patchOpenMailbox(mb, newOffset); err != nil {
				return err
			}
		} else if err := s.patchClosedKeyFile(name, newOffset); err != nil {
			return err
		}
		touched = append(touched, name)
	}
	if s.opts.sync {
		// Same rotation rationale as Mailbox.Compact: the rewrite bypassed
		// the WAL, so make it durable and retire the stale log records.
		s.commit.markDirty(touched...)
		if err := s.commit.rotate(); err != nil {
			return err
		}
	}
	return nil
}

// patchOpenMailbox rewrites an open mailbox's key file with updated shared
// offsets, keeping the in-memory index coherent.
func (s *Store) patchOpenMailbox(mb *Mailbox, newOffset map[string]int64) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.compactEntriesLocked()
	if err := mb.key.Close(); err != nil {
		return err
	}
	var err error
	if mb.key, err = s.fs.Create(s.path("boxes/" + mb.name + ".key")); err != nil {
		return fmt.Errorf("mfs: compact shared: reopen %s: %w", mb.name, err)
	}
	for _, rec := range mb.entries {
		if rec.Ref == SharedRef {
			if off, ok := newOffset[rec.ID]; ok {
				rec.Offset = off
			}
		}
		refPos, err := appendKeyRecord(mb.key, *rec)
		if err != nil {
			return err
		}
		rec.refPos = refPos
	}
	return nil
}

// patchClosedKeyFile rewrites a non-open mailbox key file, resolving
// tombstones and updating shared offsets.
func (s *Store) patchClosedKeyFile(name string, newOffset map[string]int64) error {
	f, err := s.fs.OpenRead(name)
	if err != nil {
		return err
	}
	recs, err := readKeyRecords(f)
	f.Close()
	if err != nil {
		return err
	}
	// Resolve tombstones the same way Open does.
	liveIdx := make(map[string]int)
	var live []keyRecord
	for _, r := range recs {
		if r.Type == recTombstone {
			if j, ok := liveIdx[r.ID]; ok {
				live = append(live[:j], live[j+1:]...)
				delete(liveIdx, r.ID)
				for i := j; i < len(live); i++ {
					liveIdx[live[i].ID] = i
				}
			}
			continue
		}
		liveIdx[r.ID] = len(live)
		live = append(live, r)
	}
	out, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	defer out.Close()
	for i := range live {
		if live[i].Ref == SharedRef {
			if off, ok := newOffset[live[i].ID]; ok {
				live[i].Offset = off
			}
		}
		if _, err := appendKeyRecord(out, live[i]); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes a store's on-disk footprint for reports and tests.
type Stats struct {
	SharedRecords int // live single copies in the shared store
	SharedRefs    int // mailbox pointers those copies serve
	OpenMailboxes int
}

// Stats returns current store statistics.
func (s *Store) Stats() Stats {
	records, refs := s.shared.counts()
	s.openMu.RLock()
	open := len(s.open)
	s.openMu.RUnlock()
	return Stats{SharedRecords: records, SharedRefs: refs, OpenMailboxes: open}
}
