package fsim

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/costmodel"
)

// backends returns a fresh instance of each FS implementation so every
// behavioural test runs against both.
func backends(t *testing.T) map[string]FS {
	t.Helper()
	return map[string]FS{
		"os":  NewOS(t.TempDir()),
		"mem": NewMem(costmodel.FSModel{}),
	}
}

func TestCreateWriteRead(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fs.Create("box/user1")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("hello ")); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("world")); err != nil {
				t.Fatal(err)
			}
			if sz, _ := f.Size(); sz != 11 {
				t.Fatalf("size = %d, want 11", sz)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			r, err := fs.OpenRead("box/user1")
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 5)
			if _, err := r.ReadAt(buf, 6); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if string(buf) != "world" {
				t.Fatalf("read %q, want world", buf)
			}
			r.Close()
		})
	}
}

func TestCreateTruncates(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fs.Create("f")
			f.Write([]byte("long content here"))
			f.Close()
			f2, _ := fs.Create("f")
			f2.Write([]byte("x"))
			f2.Close()
			if sz, _ := fs.Size("f"); sz != 1 {
				t.Fatalf("size after truncate = %d, want 1", sz)
			}
		})
	}
}

func TestOpenAppendCreatesAndAppends(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fs.OpenAppend("a/b/c")
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte("one"))
			f.Close()
			f2, err := fs.OpenAppend("a/b/c")
			if err != nil {
				t.Fatal(err)
			}
			f2.Write([]byte("two"))
			f2.Close()
			r, _ := fs.OpenRead("a/b/c")
			buf := make([]byte, 6)
			r.ReadAt(buf, 0)
			r.Close()
			if string(buf) != "onetwo" {
				t.Fatalf("content = %q, want onetwo", buf)
			}
		})
	}
}

func TestWriteAt(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fs.Create("f")
			f.Write([]byte("aaaaaaaa"))
			if _, err := f.WriteAt([]byte("BB"), 3); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			f.ReadAt(buf, 0)
			if string(buf) != "aaaBBaaa" {
				t.Fatalf("content = %q", buf)
			}
			// WriteAt past EOF extends the file.
			if _, err := f.WriteAt([]byte("ZZ"), 10); err != nil {
				t.Fatal(err)
			}
			if sz, _ := f.Size(); sz != 12 {
				t.Fatalf("size = %d, want 12", sz)
			}
			f.Close()
		})
	}
}

func TestOpenReadMissing(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := fs.OpenRead("missing"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("err = %v, want ErrNotExist", err)
			}
			if _, err := fs.Size("missing"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Size err = %v, want ErrNotExist", err)
			}
			if err := fs.Remove("missing"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Remove err = %v, want ErrNotExist", err)
			}
		})
	}
}

func TestLinkSharesData(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fs.Create("orig")
			f.Write([]byte("shared"))
			f.Close()
			if err := fs.Link("orig", "copy"); err != nil {
				t.Fatal(err)
			}
			if sz, _ := fs.Size("copy"); sz != 6 {
				t.Fatalf("link size = %d, want 6", sz)
			}
			// Removing the original leaves the link readable.
			if err := fs.Remove("orig"); err != nil {
				t.Fatal(err)
			}
			r, err := fs.OpenRead("copy")
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 6)
			r.ReadAt(buf, 0)
			r.Close()
			if string(buf) != "shared" {
				t.Fatalf("content after unlink = %q", buf)
			}
		})
	}
}

func TestLinkErrors(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := fs.Link("absent", "x"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("link from missing: %v", err)
			}
			f, _ := fs.Create("a")
			f.Close()
			g, _ := fs.Create("b")
			g.Close()
			if err := fs.Link("a", "b"); !errors.Is(err, ErrExist) {
				t.Fatalf("link onto existing: %v", err)
			}
		})
	}
}

func TestExistsAndList(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, n := range []string{"m/2", "m/1", "other/x"} {
				f, _ := fs.Create(n)
				f.Close()
			}
			if !fs.Exists("m/1") || fs.Exists("m/3") {
				t.Fatal("Exists wrong")
			}
			got := fs.List("m")
			if len(got) != 2 || got[0] != "m/1" || got[1] != "m/2" {
				t.Fatalf("List = %v, want [m/1 m/2]", got)
			}
			if n := len(fs.List("")); n != 3 {
				t.Fatalf("List(all) = %d entries, want 3", n)
			}
			if n := len(fs.List("nothere")); n != 0 {
				t.Fatalf("List(missing) = %d entries, want 0", n)
			}
		})
	}
}

func TestReadAtEOF(t *testing.T) {
	for name, fs := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fs.Create("f")
			f.Write([]byte("abc"))
			buf := make([]byte, 10)
			n, err := f.ReadAt(buf, 0)
			if n != 3 || err != io.EOF {
				t.Fatalf("short ReadAt = %d, %v; want 3, EOF", n, err)
			}
			if _, err := f.ReadAt(buf, 99); err != io.EOF {
				t.Fatalf("ReadAt past end = %v, want EOF", err)
			}
			f.Close()
		})
	}
}

func TestMemMeterCharges(t *testing.T) {
	m := NewMem(costmodel.Ext3)
	if m.Elapsed() != 0 {
		t.Fatal("fresh meter should be zero")
	}
	f, _ := m.Create("f")
	afterCreate := m.Elapsed()
	if afterCreate != costmodel.Ext3.Create {
		t.Fatalf("create charged %v, want %v", afterCreate, costmodel.Ext3.Create)
	}
	f.Write(make([]byte, 2048))
	wantWrite := costmodel.Ext3.AppendFixed + 2*costmodel.Ext3.AppendPerKB
	if got := m.Elapsed() - afterCreate; got != wantWrite {
		t.Fatalf("2KB write charged %v, want %v", got, wantWrite)
	}
	f.Close()

	before := m.Elapsed()
	m.Link("f", "g")
	if got := m.Elapsed() - before; got != costmodel.Ext3.Link {
		t.Fatalf("link charged %v, want %v", got, costmodel.Ext3.Link)
	}
	before = m.Elapsed()
	m.Remove("g")
	if got := m.Elapsed() - before; got != costmodel.Ext3.Unlink {
		t.Fatalf("unlink charged %v, want %v", got, costmodel.Ext3.Unlink)
	}
	if m.Ops() == 0 {
		t.Fatal("op counter did not advance")
	}
	m.ResetMeter()
	if m.Elapsed() != 0 || m.Ops() != 0 {
		t.Fatal("ResetMeter did not reset")
	}
}

func TestMemMeterOpenVsCreate(t *testing.T) {
	m := NewMem(costmodel.Reiser)
	f, _ := m.OpenAppend("f") // absent: charged as create
	f.Close()
	if m.Elapsed() != costmodel.Reiser.Create {
		t.Fatalf("first OpenAppend charged %v, want create cost", m.Elapsed())
	}
	m.ResetMeter()
	f, _ = m.OpenAppend("f") // present: charged as open
	f.Close()
	if m.Elapsed() != costmodel.Reiser.Open {
		t.Fatalf("second OpenAppend charged %v, want open cost", m.Elapsed())
	}
}

func TestMemCreatingNMaildirFilesCostsMoreThanOneMboxAppend(t *testing.T) {
	// The crux of Figure 10: on Ext3, creating 15 small files dwarfs
	// appending 15 mails to one existing mbox file.
	mail := make([]byte, 4096)
	maildir := NewMem(costmodel.Ext3)
	for i := 0; i < 15; i++ {
		f, _ := maildir.Create(string(rune('a' + i)))
		f.Write(mail)
		f.Close()
	}
	mbox := NewMem(costmodel.Ext3)
	f, _ := mbox.OpenAppend("box")
	for i := 0; i < 15; i++ {
		f.Write(mail)
	}
	f.Close()
	if maildir.Elapsed() <= mbox.Elapsed() {
		t.Fatalf("maildir %v should exceed mbox %v on ext3",
			maildir.Elapsed(), mbox.Elapsed())
	}
}

func TestNegativeOffsets(t *testing.T) {
	m := NewMem(costmodel.FSModel{})
	f, _ := m.Create("f")
	if _, err := f.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative ReadAt offset accepted")
	}
	if _, err := f.WriteAt([]byte("x"), -1); err == nil {
		t.Fatal("negative WriteAt offset accepted")
	}
}

func TestMemWriteReadProperty(t *testing.T) {
	// Property: whatever byte sequence is appended in chunks is read back
	// intact at the right offsets.
	f := func(chunks [][]byte) bool {
		m := NewMem(costmodel.FSModel{})
		fl, _ := m.Create("f")
		var all []byte
		for _, c := range chunks {
			fl.Write(c)
			all = append(all, c...)
		}
		if len(all) == 0 {
			return true
		}
		buf := make([]byte, len(all))
		n, err := fl.ReadAt(buf, 0)
		if n != len(all) || (err != nil && err != io.EOF) {
			return false
		}
		for i := range all {
			if buf[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPerKBScaling(t *testing.T) {
	if perKB(time.Millisecond, 512) != 500*time.Microsecond {
		t.Fatal("perKB(1ms, 512B) should be 0.5ms")
	}
	if perKB(time.Millisecond, 0) != 0 {
		t.Fatal("perKB of 0 bytes should be 0")
	}
}

func TestMemSyncCharges(t *testing.T) {
	m := NewMem(costmodel.Ext3)
	f, _ := m.Create("f")
	f.Write([]byte("data"))
	before := m.Elapsed()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := m.Elapsed() - before; got != costmodel.Ext3.Sync {
		t.Fatalf("sync charged %v, want %v", got, costmodel.Ext3.Sync)
	}
	f.Close()
}

// TestMemConcurrentUse exercises the in-memory filesystem from many
// goroutines: disjoint files written in parallel, one shared file
// appended in parallel, and namespace ops interleaved. Run with -race.
func TestMemConcurrentUse(t *testing.T) {
	m := NewMem(costmodel.Ext3)
	shared, err := m.Create("shared")
	if err != nil {
		t.Fatal(err)
	}
	const nWorkers, perWorker = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < nWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("dir/f-%d-%d", g, i)
				f, err := m.Create(name)
				if err != nil {
					t.Errorf("create %s: %v", name, err)
					return
				}
				if _, err := f.Write([]byte(name)); err != nil {
					t.Errorf("write %s: %v", name, err)
				}
				f.Sync()
				f.Close()
				if _, err := shared.Write(make([]byte, 8)); err != nil {
					t.Errorf("shared write: %v", err)
				}
				m.Exists(name)
				m.List("dir/")
			}
		}(g)
	}
	wg.Wait()

	if n, _ := shared.Size(); n != nWorkers*perWorker*8 {
		t.Fatalf("shared file size = %d, want %d", n, nWorkers*perWorker*8)
	}
	if got := len(m.List("dir/")); got != nWorkers*perWorker {
		t.Fatalf("List = %d files, want %d", got, nWorkers*perWorker)
	}
	// The meter is a plain sum of charges: order-independent, so the
	// total must equal a serial replay of the same operation mix.
	serial := NewMem(costmodel.Ext3)
	sf, _ := serial.Create("shared")
	for g := 0; g < nWorkers; g++ {
		for i := 0; i < perWorker; i++ {
			name := fmt.Sprintf("dir/f-%d-%d", g, i)
			f, _ := serial.Create(name)
			f.Write([]byte(name))
			f.Sync()
			f.Close()
			sf.Write(make([]byte, 8))
			serial.Exists(name)
			serial.List("dir/")
		}
	}
	if m.Elapsed() != serial.Elapsed() {
		t.Fatalf("concurrent meter %v != serial meter %v", m.Elapsed(), serial.Elapsed())
	}
	if m.Ops() != serial.Ops() {
		t.Fatalf("concurrent ops %d != serial ops %d", m.Ops(), serial.Ops())
	}
}
