package fsim

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is returned by every operation on a Fault filesystem after
// its crash point has been reached: the simulated process is dead and
// nothing works until Recover.
var ErrCrashed = errors.New("fsim: crashed")

// Fault is an in-memory FS for crash-point enumeration tests. It models
// the durability contract the spool and MFS layers are written against:
//
//   - File data is volatile until Sync: a crash discards every byte
//     written (Write or WriteAt) since the file's last Sync.
//   - Namespace operations (create, link, remove) are journaled metadata
//     and survive a crash as soon as they return — the ext3
//     ordered-journal model. A file created but never synced survives as
//     a name whose content reverts to its last-synced bytes (empty for a
//     fresh file), which is exactly the torn-record case recovery scans
//     must tolerate.
//
// CrashAfter arms a countdown over mutating operations; when it reaches
// zero the filesystem "crashes": the triggering operation and everything
// after it fail with ErrCrashed. Recover reverts volatile data and
// brings the filesystem back, as if the process restarted on the same
// disk. Enumerating CrashAfter(0..Steps()) therefore kills a scenario at
// every distinct intermediate state.
type Fault struct {
	mu      sync.Mutex
	nodes   map[string]*faultNode
	steps   int64 // mutating ops performed (successfully)
	armed   bool
	left    int64 // ops remaining until crash when armed
	crashed bool
}

var _ FS = (*Fault)(nil)

// faultNode is one inode: data is the live view, durable the last-synced
// image. Hardlinked names share the node.
type faultNode struct {
	data    []byte
	durable []byte
	links   int
}

// NewFault returns an empty fault-injecting filesystem.
func NewFault() *Fault {
	return &Fault{nodes: make(map[string]*faultNode)}
}

// CrashAfter arms the crash countdown: the next n mutating operations
// succeed, and the one after them (and everything else) fails with
// ErrCrashed. CrashAfter(0) crashes on the next mutating op.
func (f *Fault) CrashAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = true
	f.left = int64(n)
}

// Crash kills the filesystem immediately.
func (f *Fault) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
}

// Crashed reports whether the crash point has been reached.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Steps returns the number of mutating operations performed so far; run
// a scenario once uncrashed to size a CrashAfter enumeration loop.
func (f *Fault) Steps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int(f.steps)
}

// Recover restarts the filesystem after a crash: volatile (unsynced)
// data is discarded, durable data and the namespace survive, and the
// countdown is disarmed. It is a no-op on a live filesystem.
func (f *Fault) Recover() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.crashed {
		f.armed = false
		return
	}
	seen := make(map[*faultNode]bool, len(f.nodes))
	for _, n := range f.nodes {
		if !seen[n] {
			seen[n] = true
			n.data = append(n.data[:0], n.durable...)
		}
	}
	f.crashed = false
	f.armed = false
}

// step accounts one mutating operation against the countdown; it returns
// ErrCrashed when the crash point has been reached (the op must not take
// effect). f.mu must be held.
func (f *Fault) step() error {
	if f.crashed {
		return ErrCrashed
	}
	if f.armed {
		if f.left <= 0 {
			f.crashed = true
			return ErrCrashed
		}
		f.left--
	}
	f.steps++
	return nil
}

// checkLive is the read-path guard: no countdown charge, but a crashed
// filesystem refuses everything.
func (f *Fault) checkLive() error {
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

type faultFile struct {
	fs   *Fault
	node *faultNode
	name string
}

var _ File = (*faultFile)(nil)

func (f *Fault) Create(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return nil, err
	}
	n, ok := f.nodes[name]
	if ok {
		n.data = n.data[:0]
	} else {
		n = &faultNode{links: 1}
		f.nodes[name] = n
	}
	return &faultFile{fs: f, node: n, name: name}, nil
}

func (f *Fault) OpenAppend(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[name]
	if !ok {
		if err := f.step(); err != nil {
			return nil, err
		}
		n = &faultNode{links: 1}
		f.nodes[name] = n
	} else if err := f.checkLive(); err != nil {
		return nil, err
	}
	return &faultFile{fs: f, node: n, name: name}, nil
}

func (f *Fault) OpenRead(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkLive(); err != nil {
		return nil, err
	}
	n, ok := f.nodes[name]
	if !ok {
		return nil, fmt.Errorf("fsim: open %s: %w", name, ErrNotExist)
	}
	return &faultFile{fs: f, node: n, name: name}, nil
}

func (f *Fault) Link(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	n, ok := f.nodes[oldname]
	if !ok {
		return fmt.Errorf("fsim: link %s: %w", oldname, ErrNotExist)
	}
	if _, taken := f.nodes[newname]; taken {
		return fmt.Errorf("fsim: link %s: %w", newname, ErrExist)
	}
	n.links++
	f.nodes[newname] = n
	return nil
}

func (f *Fault) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	n, ok := f.nodes[name]
	if !ok {
		return fmt.Errorf("fsim: remove %s: %w", name, ErrNotExist)
	}
	n.links--
	delete(f.nodes, name)
	return nil
}

func (f *Fault) Exists(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false
	}
	_, ok := f.nodes[name]
	return ok
}

func (f *Fault) Size(name string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkLive(); err != nil {
		return 0, err
	}
	n, ok := f.nodes[name]
	if !ok {
		return 0, fmt.Errorf("fsim: size %s: %w", name, ErrNotExist)
	}
	return int64(len(n.data)), nil
}

func (f *Fault) List(prefix string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil
	}
	var names []string
	for name := range f.nodes {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func (ff *faultFile) Close() error { return nil }

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.step(); err != nil {
		return 0, err
	}
	ff.node.data = append(ff.node.data, p...)
	return len(p), nil
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.step(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("fsim: negative write offset %d", off)
	}
	end := off + int64(len(p))
	if grow := end - int64(len(ff.node.data)); grow > 0 {
		ff.node.data = append(ff.node.data, make([]byte, grow)...)
	}
	copy(ff.node.data[off:end], p)
	return len(p), nil
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.checkLive(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("fsim: negative read offset %d", off)
	}
	if off >= int64(len(ff.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, ff.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (ff *faultFile) Size() (int64, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.checkLive(); err != nil {
		return 0, err
	}
	return int64(len(ff.node.data)), nil
}

// Sync makes the file's current bytes durable: after this call a crash
// no longer loses them.
func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.step(); err != nil {
		return err
	}
	ff.node.durable = append(ff.node.durable[:0], ff.node.data...)
	return nil
}

func (ff *faultFile) Name() string { return ff.name }
