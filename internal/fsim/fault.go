package fsim

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"sync"

	"repro/internal/costmodel"
)

// ErrCrashed is returned by every operation on a Fault filesystem after
// its crash point has been reached: the simulated process is dead and
// nothing works until Recover.
var ErrCrashed = errors.New("fsim: crashed")

// Fault is a crash-injection layer that wraps any FS and enforces the
// package durability contract on it, so the spool and MFS crash tests
// share one fault harness regardless of backend. Live data passes
// through to the inner filesystem; Fault keeps the last-synced image of
// every file and, on Recover after a crash, rewrites the inner files
// back to those images:
//
//   - File data is volatile until Sync: a crash discards every byte
//     written (Write, WriteAt, or Truncate) since the file's last Sync.
//   - Namespace operations (create, link, remove) are journaled metadata
//     and by default survive a crash as soon as they return — the ext3
//     ordered-journal model. A file created but never synced survives as
//     a name whose content reverts to its last-synced bytes (empty for a
//     fresh file), which is exactly the torn-record case recovery scans
//     must tolerate. SetVolatileNamespace switches to a stricter model
//     in which namespace operations are reverted unless a later Sync
//     committed the metadata journal.
//   - SetSyncLies makes Sync report success without making anything
//     durable — the lying-disk-cache case; recovery code must stay
//     consistent (though not lossless) even then.
//
// CrashAfter arms a countdown over mutating operations; when it reaches
// zero the filesystem "crashes": the triggering operation and everything
// after it fail with ErrCrashed. Recover reverts volatile state and
// brings the filesystem back, as if the process restarted on the same
// disk. Enumerating CrashAfter(0..Steps()) therefore kills a scenario at
// every distinct intermediate state.
type Fault struct {
	mu      sync.Mutex
	inner   FS
	nodes   map[string]*faultNode
	steps   int64 // mutating ops performed (successfully)
	armed   bool
	left    int64 // ops remaining until crash when armed
	crashed bool

	syncLies   bool
	volatileNS bool
	nsLog      []nsUndo // uncommitted namespace ops (volatile-namespace mode)
}

var _ FS = (*Fault)(nil)

// faultNode is one inode's durability state: durable is the last-synced
// image, links the number of names pointing at it. Hardlinked names
// share the node; the live bytes themselves stay in the inner FS.
type faultNode struct {
	durable []byte
	links   int
}

// nsUndo is one journaled-but-uncommitted namespace operation, recorded
// only in volatile-namespace mode so Recover can roll it back.
type nsUndo struct {
	op   byte // 'c' create, 'l' link, 'r' remove
	name string
	node *faultNode // the node 'r' removed a name from
}

// NewFault returns a fault-injecting filesystem over a fresh, empty,
// zero-cost in-memory backend — the common crash-test configuration.
func NewFault() *Fault {
	return NewFaultOn(NewMem(costmodel.FSModel{}))
}

// NewFaultOn wraps an existing filesystem with the fault layer. Files
// already present in inner are snapshotted as durable (each name as its
// own inode — pre-existing hardlink structure is not recovered), so
// wrapping a populated store treats its current state as the on-disk
// image a crash rolls back to.
func NewFaultOn(inner FS) *Fault {
	f := &Fault{inner: inner, nodes: make(map[string]*faultNode)}
	for _, name := range inner.List("") {
		data, err := readFull(inner, name)
		if err != nil {
			continue
		}
		f.nodes[name] = &faultNode{durable: data, links: 1}
	}
	return f
}

// readFull loads a file's entire content from fs.
func readFull(fs FS, name string) ([]byte, error) {
	fl, err := fs.OpenRead(name)
	if err != nil {
		return nil, err
	}
	defer fl.Close()
	size, err := fl.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := fl.ReadAt(data, 0); err != nil && err != io.EOF {
			return nil, err
		}
	}
	return data, nil
}

// SetSyncLies switches Sync between honest mode (the default) and lie
// mode, where Sync reports success without making data durable or
// committing the metadata journal — the misbehaving-write-cache model.
func (f *Fault) SetSyncLies(lie bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncLies = lie
}

// SetVolatileNamespace switches namespace durability between the default
// journaled model (create/link/remove survive a crash immediately) and
// the volatile model, where namespace operations are rolled back by a
// crash unless a later successful Sync committed the metadata journal.
func (f *Fault) SetVolatileNamespace(volatile bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.volatileNS = volatile
}

// CrashAfter arms the crash countdown: the next n mutating operations
// succeed, and the one after them (and everything else) fails with
// ErrCrashed. CrashAfter(0) crashes on the next mutating op.
func (f *Fault) CrashAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = true
	f.left = int64(n)
}

// Crash kills the filesystem immediately.
func (f *Fault) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
}

// Crashed reports whether the crash point has been reached.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Steps returns the number of mutating operations performed so far; run
// a scenario once uncrashed to size a CrashAfter enumeration loop.
func (f *Fault) Steps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int(f.steps)
}

// Recover restarts the filesystem after a crash: volatile (unsynced)
// data is discarded, uncommitted namespace operations are rolled back in
// volatile-namespace mode, and the countdown is disarmed. It is a no-op
// on a live filesystem.
func (f *Fault) Recover() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.crashed {
		f.armed = false
		return
	}
	// Roll back uncommitted namespace operations, newest first.
	for i := len(f.nsLog) - 1; i >= 0; i-- {
		u := f.nsLog[i]
		switch u.op {
		case 'c', 'l':
			if n, ok := f.nodes[u.name]; ok {
				n.links--
				delete(f.nodes, u.name)
				f.inner.Remove(u.name) //nolint:errcheck // rollback is best-effort
			}
		case 'r':
			f.nodes[u.name] = u.node
			u.node.links++
			if !f.inner.Exists(u.name) {
				if other := f.otherNameOf(u.node, u.name); other != "" {
					f.inner.Link(other, u.name) //nolint:errcheck
				} else if fl, err := f.inner.Create(u.name); err == nil {
					fl.Close()
				}
			}
		}
	}
	f.nsLog = nil
	// Restore every surviving inode to its last-synced image. Create
	// truncates the inode in place (links preserved), so one rewrite per
	// node restores all of its names.
	seen := make(map[*faultNode]bool, len(f.nodes))
	names := make([]string, 0, len(f.nodes))
	for name := range f.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := f.nodes[name]
		if seen[n] {
			continue
		}
		seen[n] = true
		fl, err := f.inner.Create(name)
		if err != nil {
			continue
		}
		if len(n.durable) > 0 {
			fl.Write(n.durable) //nolint:errcheck
		}
		fl.Close()
	}
	f.crashed = false
	f.armed = false
}

// otherNameOf returns a name other than skip mapping to node, or "".
// f.mu must be held.
func (f *Fault) otherNameOf(node *faultNode, skip string) string {
	for name, n := range f.nodes {
		if n == node && name != skip && f.inner.Exists(name) {
			return name
		}
	}
	return ""
}

// step accounts one mutating operation against the countdown; it returns
// ErrCrashed when the crash point has been reached (the op must not take
// effect). f.mu must be held.
func (f *Fault) step() error {
	if f.crashed {
		return ErrCrashed
	}
	if f.armed {
		if f.left <= 0 {
			f.crashed = true
			return ErrCrashed
		}
		f.left--
	}
	f.steps++
	return nil
}

// checkLive is the read-path guard: no countdown charge, but a crashed
// filesystem refuses everything.
func (f *Fault) checkLive() error {
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

type faultFile struct {
	fs    *Fault
	inner File
	node  *faultNode
	name  string
}

var _ File = (*faultFile)(nil)

func (f *Fault) Create(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	n, ok := f.nodes[name]
	if !ok {
		n = &faultNode{links: 1}
		f.nodes[name] = n
		if f.volatileNS {
			f.nsLog = append(f.nsLog, nsUndo{op: 'c', name: name})
		}
	}
	return &faultFile{fs: f, inner: inner, node: n, name: name}, nil
}

func (f *Fault) OpenAppend(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[name]
	if !ok {
		if err := f.step(); err != nil {
			return nil, err
		}
		n = &faultNode{links: 1}
		f.nodes[name] = n
		if f.volatileNS {
			f.nsLog = append(f.nsLog, nsUndo{op: 'c', name: name})
		}
	} else if err := f.checkLive(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, node: n, name: name}, nil
}

func (f *Fault) OpenRead(name string) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkLive(); err != nil {
		return nil, err
	}
	n, ok := f.nodes[name]
	if !ok {
		return nil, fmt.Errorf("fsim: open %s: %w", name, ErrNotExist)
	}
	inner, err := f.inner.OpenRead(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner, node: n, name: name}, nil
}

func (f *Fault) Link(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	n, ok := f.nodes[oldname]
	if !ok {
		return fmt.Errorf("fsim: link %s: %w", oldname, ErrNotExist)
	}
	if _, taken := f.nodes[newname]; taken {
		return fmt.Errorf("fsim: link %s: %w", newname, ErrExist)
	}
	if err := f.inner.Link(oldname, newname); err != nil {
		return err
	}
	n.links++
	f.nodes[newname] = n
	if f.volatileNS {
		f.nsLog = append(f.nsLog, nsUndo{op: 'l', name: newname})
	}
	return nil
}

func (f *Fault) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(); err != nil {
		return err
	}
	n, ok := f.nodes[name]
	if !ok {
		return fmt.Errorf("fsim: remove %s: %w", name, ErrNotExist)
	}
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	n.links--
	delete(f.nodes, name)
	if f.volatileNS {
		f.nsLog = append(f.nsLog, nsUndo{op: 'r', name: name, node: n})
	}
	return nil
}

func (f *Fault) Exists(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false
	}
	_, ok := f.nodes[name]
	return ok
}

func (f *Fault) Size(name string) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.checkLive(); err != nil {
		return 0, err
	}
	if _, ok := f.nodes[name]; !ok {
		return 0, fmt.Errorf("fsim: size %s: %w", name, ErrNotExist)
	}
	return f.inner.Size(name)
}

func (f *Fault) List(prefix string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil
	}
	return f.inner.List(prefix)
}

func (ff *faultFile) Close() error { return ff.inner.Close() }

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.step(); err != nil {
		return 0, err
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.step(); err != nil {
		return 0, err
	}
	return ff.inner.WriteAt(p, off)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.checkLive(); err != nil {
		return 0, err
	}
	return ff.inner.ReadAt(p, off)
}

func (ff *faultFile) Size() (int64, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.checkLive(); err != nil {
		return 0, err
	}
	return ff.inner.Size()
}

func (ff *faultFile) Truncate(size int64) error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.step(); err != nil {
		return err
	}
	return ff.inner.Truncate(size)
}

// Sync makes the file's current bytes durable and commits the metadata
// journal (in volatile-namespace mode, every namespace operation so far
// becomes durable with it). In lie mode it does neither, yet still
// reports success.
func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.step(); err != nil {
		return err
	}
	if ff.fs.syncLies {
		return nil
	}
	size, err := ff.inner.Size()
	if err != nil {
		return err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := ff.inner.ReadAt(data, 0); err != nil && err != io.EOF {
			return err
		}
	}
	ff.node.durable = data
	ff.fs.nsLog = nil
	return nil
}

func (ff *faultFile) Name() string { return ff.name }
