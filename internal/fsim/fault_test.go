package fsim

import (
	"errors"
	"testing"

	"repro/internal/costmodel"
)

func TestFaultUnsyncedDataLostOnCrash(t *testing.T) {
	fs := NewFault()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" volatile")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if _, err := fs.OpenRead("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read on crashed fs = %v", err)
	}
	fs.Recover()
	g, err := fs.OpenRead("a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, _ := g.ReadAt(buf, 0)
	if string(buf[:n]) != "durable" {
		t.Fatalf("post-crash content = %q, want only the synced bytes", buf[:n])
	}
}

func TestFaultNamespaceSurvivesCrash(t *testing.T) {
	fs := NewFault()
	f, _ := fs.Create("dir/a")
	f.Write([]byte("x")) //nolint:errcheck
	f.Sync()             //nolint:errcheck
	if err := fs.Link("dir/a", "dir/b"); err != nil {
		t.Fatal(err)
	}
	g, _ := fs.Create("dir/unsynced")
	g.Write([]byte("gone")) //nolint:errcheck
	fs.Crash()
	fs.Recover()
	if !fs.Exists("dir/a") || !fs.Exists("dir/b") {
		t.Fatal("links lost across crash")
	}
	// The created-but-unsynced file survives as a torn (empty) name.
	sz, err := fs.Size("dir/unsynced")
	if err != nil || sz != 0 {
		t.Fatalf("unsynced file: size %d err %v, want empty survivor", sz, err)
	}
}

func TestFaultCrashAfterCountdown(t *testing.T) {
	// Count the steps of a small scenario, then verify the countdown
	// kills exactly at each op.
	run := func(fs *Fault) error {
		f, err := fs.Create("a") // step 1
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("x")); err != nil { // step 2
			return err
		}
		if err := f.Sync(); err != nil { // step 3
			return err
		}
		return fs.Remove("a") // step 4
	}
	dry := NewFault()
	if err := run(dry); err != nil {
		t.Fatal(err)
	}
	if dry.Steps() != 4 {
		t.Fatalf("steps = %d, want 4", dry.Steps())
	}
	for k := 0; k < 4; k++ {
		fs := NewFault()
		fs.CrashAfter(k)
		if err := run(fs); !errors.Is(err, ErrCrashed) {
			t.Fatalf("CrashAfter(%d): err = %v", k, err)
		}
		if !fs.Crashed() {
			t.Fatalf("CrashAfter(%d): not crashed", k)
		}
	}
	fs := NewFault()
	fs.CrashAfter(4)
	if err := run(fs); err != nil {
		t.Fatalf("CrashAfter(4) should let the whole run finish: %v", err)
	}
}

func TestFaultRecoverIsNoopWhenLive(t *testing.T) {
	fs := NewFault()
	f, _ := fs.Create("a")
	f.Write([]byte("live")) //nolint:errcheck
	fs.Recover()            // disarms only; volatile data intact on a live fs
	sz, err := fs.Size("a")
	if err != nil || sz != 4 {
		t.Fatalf("live recover clobbered data: size %d err %v", sz, err)
	}
}

func TestFaultOnOSBackend(t *testing.T) {
	// The wrapper enforces the same durability semantics over the real-file
	// backend: unsynced bytes vanish, synced ones survive.
	fs := NewFaultOn(NewOS(t.TempDir()))
	f, err := fs.Create("box/a")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("kept")) //nolint:errcheck
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte(" torn")) //nolint:errcheck
	fs.Crash()
	fs.Recover()
	g, err := fs.OpenRead("box/a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := g.ReadAt(buf, 0)
	g.Close()
	if string(buf[:n]) != "kept" {
		t.Fatalf("post-crash content = %q, want %q", buf[:n], "kept")
	}
}

func TestFaultOnSnapshotsExistingFiles(t *testing.T) {
	// Wrapping a populated filesystem treats its current state as the
	// durable on-disk image.
	inner := NewMem(costmodel.FSModel{})
	f, _ := inner.Create("seed")
	f.Write([]byte("old")) //nolint:errcheck
	fs := NewFaultOn(inner)
	g, _ := fs.OpenAppend("seed")
	g.Write([]byte(" new")) //nolint:errcheck
	fs.Crash()
	fs.Recover()
	buf := make([]byte, 16)
	h, err := fs.OpenRead("seed")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := h.ReadAt(buf, 0)
	if string(buf[:n]) != "old" {
		t.Fatalf("pre-wrap content after crash = %q, want %q", buf[:n], "old")
	}
}

func TestFaultSyncLies(t *testing.T) {
	fs := NewFault()
	fs.SetSyncLies(true)
	f, _ := fs.Create("a")
	f.Write([]byte("promised")) //nolint:errcheck
	if err := f.Sync(); err != nil {
		t.Fatalf("lying sync must still report success: %v", err)
	}
	fs.Crash()
	fs.Recover()
	sz, err := fs.Size("a")
	if err != nil || sz != 0 {
		t.Fatalf("lied-about sync made data durable: size %d err %v", sz, err)
	}
}

func TestFaultVolatileNamespace(t *testing.T) {
	fs := NewFault()
	fs.SetVolatileNamespace(true)
	// Committed epoch: create a file and a link, then sync (journal commit).
	f, _ := fs.Create("a")
	f.Write([]byte("x")) //nolint:errcheck
	f.Sync()             //nolint:errcheck
	if err := fs.Link("a", "b"); err != nil {
		t.Fatal(err)
	}
	g, _ := fs.Create("commitpoint")
	g.Sync() //nolint:errcheck
	// Uncommitted epoch: a create, a link, and a remove with no Sync after.
	fs.Create("torn") //nolint:errcheck
	if err := fs.Link("a", "c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("b"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	fs.Recover()
	if fs.Exists("torn") || fs.Exists("c") {
		t.Fatal("uncommitted create/link survived a volatile-namespace crash")
	}
	if !fs.Exists("b") {
		t.Fatal("uncommitted remove not rolled back")
	}
	h, err := fs.OpenRead("b")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, _ := h.ReadAt(buf, 0)
	if string(buf[:n]) != "x" {
		t.Fatalf("restored link content = %q, want %q", buf[:n], "x")
	}
}

func TestFaultTruncateVolatileUntilSync(t *testing.T) {
	fs := NewFault()
	f, _ := fs.Create("a")
	f.Write([]byte("longrecord")) //nolint:errcheck
	f.Sync()                      //nolint:errcheck
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	fs.Recover()
	sz, _ := fs.Size("a")
	if sz != 10 {
		t.Fatalf("unsynced truncate survived crash: size %d, want 10", sz)
	}
	// And once synced, the truncation is durable.
	g, _ := fs.OpenAppend("a")
	g.Truncate(4) //nolint:errcheck
	g.Sync()      //nolint:errcheck
	fs.Crash()
	fs.Recover()
	if sz, _ := fs.Size("a"); sz != 4 {
		t.Fatalf("synced truncate lost: size %d, want 4", sz)
	}
}

func TestFaultHardlinkSharesData(t *testing.T) {
	fs := NewFault()
	f, _ := fs.Create("a")
	f.Write([]byte("shared")) //nolint:errcheck
	f.Sync()                  //nolint:errcheck
	if err := fs.Link("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	g, err := fs.OpenRead("b")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := g.ReadAt(buf, 0)
	if string(buf[:n]) != "shared" {
		t.Fatalf("content via second link = %q", buf[:n])
	}
}
