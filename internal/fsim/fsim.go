// Package fsim abstracts the filesystem under the mailbox stores.
//
// Two backends implement the same interface:
//
//   - OS: real files rooted at a directory. Tests and the runnable server
//     use it; it is plain os.File underneath.
//   - Mem: an in-memory filesystem that additionally *meters* every
//     operation against a costmodel.FSModel personality (Ext3 or Reiser)
//     and accumulates virtual disk time. The Figure 10/11 benchmarks
//     derive "mails written per second" from that accumulated time, which
//     is how the repository reproduces two filesystem personalities on
//     one machine.
//
// The interface is deliberately small — create, append, read-at,
// write-at, link, remove — because that is the entire op set mail stores
// need (§6.1: mailbox access happens in units of mails).
//
// # Durability contract
//
// Every backend provides the same crash-durability semantics, which the
// mail stores (internal/mfs, internal/spool) are written against and the
// Fault wrapper enforces in crash tests:
//
//   - File data is volatile until Sync. A crash may discard any byte
//     written (Write, WriteAt, or Truncate) since the file's last
//     successful Sync; it never discards bytes a Sync has reported
//     durable. Sync covers the file's entire current content, not just
//     the bytes written through the syncing handle.
//
//   - Namespace operations — creating a name, Link, Remove — are
//     metadata-journal operations. In the default (ext3 ordered-journal)
//     model they are durable as soon as they return: a crash never
//     un-links or re-links a name. A file created but never synced
//     survives a crash as a name whose content reverts to its
//     last-synced image (empty for a fresh file) — the torn-record case
//     every recovery scan must tolerate. The Fault wrapper can be
//     switched to a stricter volatile-namespace model in which namespace
//     operations only become durable at the next successful Sync of any
//     file (one journal commit flushes all pending metadata).
//
//   - Link is atomic: after a crash the new name either exists with the
//     full content of its target or does not exist. There are no torn
//     directory entries.
//
//   - Directory durability is subsumed by the two rules above: there is
//     no separate directory-sync operation, and no ordering guarantee
//     between data and namespace durability other than "Sync commits
//     both".
//
// Code that needs a stronger guarantee (write A durable before name B
// appears, etc.) must sequence Syncs explicitly; nothing in the
// interface reorders on its behalf.
package fsim

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/costmodel"
)

// ErrNotExist is returned when opening, linking from, or removing a file
// that does not exist.
var ErrNotExist = errors.New("fsim: file does not exist")

// ErrExist is returned by Link when the new name is already taken.
var ErrExist = errors.New("fsim: file already exists")

// File is an open file handle.
type File interface {
	io.Closer
	// Write appends to the end of the file.
	io.Writer
	io.ReaderAt
	io.WriterAt
	// Size returns the current file size.
	Size() (int64, error)
	// Truncate cuts (or zero-extends) the file to the given size. Like
	// writes, the truncation is volatile until the next Sync. Recovery
	// passes use it to discard torn tails left by a crash.
	Truncate(size int64) error
	// Sync flushes the file (a journal commit point for the Mem meter).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem interface the mail stores are written against.
type FS interface {
	// Create creates or truncates the named file for writing, creating
	// parent directories as needed.
	Create(name string) (File, error)
	// OpenAppend opens the named file for appending, creating it (and
	// parents) if absent.
	OpenAppend(name string) (File, error)
	// OpenRead opens the named file for reading.
	OpenRead(name string) (File, error)
	// Link creates newname as a hard link to oldname.
	Link(oldname, newname string) error
	// Remove deletes a name; data is freed when its last link goes.
	Remove(name string) error
	// Exists reports whether the name exists.
	Exists(name string) bool
	// Size returns the size of the named file.
	Size(name string) (int64, error)
	// List returns the names under the given path prefix, sorted.
	List(prefix string) []string
}

// ---------------------------------------------------------------------------
// OS backend

// OS is an FS rooted at a real directory.
type OS struct {
	root string
}

var _ FS = (*OS)(nil)

// NewOS returns an FS rooted at dir, which must exist.
func NewOS(dir string) *OS { return &OS{root: dir} }

func (o *OS) path(name string) string { return filepath.Join(o.root, filepath.FromSlash(name)) }

type osFile struct {
	f    *os.File
	name string
}

var _ File = (*osFile)(nil)

func (f *osFile) Close() error                             { return f.f.Close() }
func (f *osFile) Write(p []byte) (int, error)              { return f.f.Write(p) }
func (f *osFile) ReadAt(p []byte, off int64) (int, error)  { return f.f.ReadAt(p, off) }
func (f *osFile) WriteAt(p []byte, off int64) (int, error) { return f.f.WriteAt(p, off) }
func (f *osFile) Sync() error                              { return f.f.Sync() }
func (f *osFile) Name() string                             { return f.name }
func (f *osFile) Truncate(size int64) error {
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	// Restore the append-at-end invariant Write relies on (the handle
	// emulates O_APPEND by seeking).
	_, err := f.f.Seek(0, io.SeekEnd)
	return err
}
func (f *osFile) Size() (int64, error) {
	st, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (o *OS) Create(name string) (File, error) {
	p := o.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("fsim: create %s: %w", name, err)
	}
	f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fsim: create %s: %w", name, err)
	}
	return &osFile{f: f, name: name}, nil
}

func (o *OS) OpenAppend(name string) (File, error) {
	p := o.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("fsim: open %s: %w", name, err)
	}
	// O_APPEND would break WriteAt on Linux, so emulate append by seeking;
	// the File.Write contract (append-only) is preserved by the wrapper.
	f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fsim: open %s: %w", name, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("fsim: open %s: %w", name, err)
	}
	return &osFile{f: f, name: name}, nil
}

func (o *OS) OpenRead(name string) (File, error) {
	f, err := os.Open(o.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("fsim: open %s: %w", name, ErrNotExist)
		}
		return nil, fmt.Errorf("fsim: open %s: %w", name, err)
	}
	return &osFile{f: f, name: name}, nil
}

func (o *OS) Link(oldname, newname string) error {
	np := o.path(newname)
	if err := os.MkdirAll(filepath.Dir(np), 0o755); err != nil {
		return fmt.Errorf("fsim: link %s: %w", newname, err)
	}
	if _, err := os.Stat(np); err == nil {
		return fmt.Errorf("fsim: link %s: %w", newname, ErrExist)
	}
	if err := os.Link(o.path(oldname), np); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("fsim: link %s: %w", oldname, ErrNotExist)
		}
		return fmt.Errorf("fsim: link %s -> %s: %w", oldname, newname, err)
	}
	return nil
}

func (o *OS) Remove(name string) error {
	if err := os.Remove(o.path(name)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("fsim: remove %s: %w", name, ErrNotExist)
		}
		return fmt.Errorf("fsim: remove %s: %w", name, err)
	}
	return nil
}

func (o *OS) Exists(name string) bool {
	_, err := os.Stat(o.path(name))
	return err == nil
}

func (o *OS) Size(name string) (int64, error) {
	st, err := os.Stat(o.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("fsim: size %s: %w", name, ErrNotExist)
		}
		return 0, fmt.Errorf("fsim: size %s: %w", name, err)
	}
	return st.Size(), nil
}

func (o *OS) List(prefix string) []string {
	var names []string
	root := o.path(prefix)
	filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil //nolint:nilerr // absent trees list as empty
		}
		rel, err := filepath.Rel(o.root, p)
		if err != nil {
			return nil //nolint:nilerr
		}
		names = append(names, filepath.ToSlash(rel))
		return nil
	})
	sort.Strings(names)
	return names
}

// ---------------------------------------------------------------------------
// Mem backend with cost metering

// Mem is an in-memory FS that charges every operation against an
// costmodel.FSModel and accumulates the virtual disk time in a meter.
// A zero-cost personality (all fields zero) makes it a plain in-memory
// filesystem for tests.
//
// Mem is safe for concurrent use and designed not to become the
// bottleneck under parallel delivery: the namespace map has its own
// lock, each node (file) has its own lock for data operations, and the
// meter is a pair of atomics. Virtual disk time is a sum of per-op
// charges, so the total is independent of interleaving.
type Mem struct {
	mu    sync.RWMutex
	model costmodel.FSModel
	nodes map[string]*memNode // name -> node (hardlinks share nodes)

	elapsed atomic.Int64 // nanoseconds
	ops     atomic.Int64
}

var _ FS = (*Mem)(nil)

type memNode struct {
	mu    sync.Mutex
	data  []byte
	links int
}

// NewMem returns a metered in-memory filesystem with the given
// personality.
func NewMem(model costmodel.FSModel) *Mem {
	return &Mem{model: model, nodes: make(map[string]*memNode)}
}

// Elapsed returns the accumulated virtual disk time.
func (m *Mem) Elapsed() time.Duration {
	return time.Duration(m.elapsed.Load())
}

// ResetMeter zeroes the accumulated time and op count.
func (m *Mem) ResetMeter() {
	m.elapsed.Store(0)
	m.ops.Store(0)
}

// Ops returns the number of metered operations.
func (m *Mem) Ops() int64 {
	return m.ops.Load()
}

func (m *Mem) charge(d time.Duration) {
	m.elapsed.Add(int64(d))
	m.ops.Add(1)
}

func perKB(rate time.Duration, n int) time.Duration {
	return time.Duration(float64(rate) * float64(n) / 1024.0)
}

type memFile struct {
	fs   *Mem
	node *memNode
	name string
}

var _ File = (*memFile)(nil)

func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if ok {
		n.mu.Lock()
		n.data = n.data[:0]
		n.mu.Unlock()
		m.charge(m.model.Open)
	} else {
		n = &memNode{links: 1}
		m.nodes[name] = n
		m.charge(m.model.Create)
	}
	return &memFile{fs: m, node: n, name: name}, nil
}

func (m *Mem) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		n = &memNode{links: 1}
		m.nodes[name] = n
		m.charge(m.model.Create)
	} else {
		m.charge(m.model.Open)
	}
	return &memFile{fs: m, node: n, name: name}, nil
}

func (m *Mem) OpenRead(name string) (File, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n, ok := m.nodes[name]
	if !ok {
		return nil, fmt.Errorf("fsim: open %s: %w", name, ErrNotExist)
	}
	m.charge(m.model.Open)
	return &memFile{fs: m, node: n, name: name}, nil
}

func (m *Mem) Link(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[oldname]
	if !ok {
		return fmt.Errorf("fsim: link %s: %w", oldname, ErrNotExist)
	}
	if _, taken := m.nodes[newname]; taken {
		return fmt.Errorf("fsim: link %s: %w", newname, ErrExist)
	}
	n.links++
	m.nodes[newname] = n
	m.charge(m.model.Link)
	return nil
}

func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		return fmt.Errorf("fsim: remove %s: %w", name, ErrNotExist)
	}
	n.links--
	delete(m.nodes, name)
	m.charge(m.model.Unlink)
	return nil
}

func (m *Mem) Exists(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.nodes[name]
	return ok
}

func (m *Mem) Size(name string) (int64, error) {
	m.mu.RLock()
	n, ok := m.nodes[name]
	m.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("fsim: size %s: %w", name, ErrNotExist)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return int64(len(n.data)), nil
}

func (m *Mem) List(prefix string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var names []string
	for name := range m.nodes {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func (f *memFile) Close() error { return nil }

func (f *memFile) Write(p []byte) (int, error) {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	f.node.data = append(f.node.data, p...)
	f.fs.charge(f.fs.model.AppendFixed + perKB(f.fs.model.AppendPerKB, len(p)))
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("fsim: negative read offset %d", off)
	}
	if off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[off:])
	f.fs.charge(perKB(f.fs.model.ReadPerKB, n))
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("fsim: negative write offset %d", off)
	}
	end := off + int64(len(p))
	if grow := end - int64(len(f.node.data)); grow > 0 {
		f.node.data = append(f.node.data, make([]byte, grow)...)
	}
	copy(f.node.data[off:end], p)
	f.fs.charge(f.fs.model.AppendFixed + perKB(f.fs.model.AppendPerKB, len(p)))
	return len(p), nil
}

func (f *memFile) Size() (int64, error) {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	return int64(len(f.node.data)), nil
}

func (f *memFile) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("fsim: negative truncate size %d", size)
	}
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if grow := size - int64(len(f.node.data)); grow > 0 {
		f.node.data = append(f.node.data, make([]byte, grow)...)
	} else {
		f.node.data = f.node.data[:size]
	}
	return nil
}

// Sync charges the personality's journal-commit cost. The MFS group
// committer issues one Sync per flushed batch, so this is where batching
// concurrent deliveries visibly cuts the per-mail disk bill.
func (f *memFile) Sync() error {
	f.fs.charge(f.fs.model.Sync)
	return nil
}

func (f *memFile) Name() string { return f.name }
