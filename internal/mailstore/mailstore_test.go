package mailstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
	"repro/internal/fsim"
)

// newStores returns a fresh instance of each of the four formats over an
// in-memory filesystem, plus the fs for inspection.
func newStores(t *testing.T) map[string]struct {
	fs    *fsim.Mem
	store Store
} {
	t.Helper()
	out := make(map[string]struct {
		fs    *fsim.Mem
		store Store
	})
	for _, name := range []string{"mbox", "maildir", "hardlink", "mfs"} {
		fs := fsim.NewMem(costmodel.FSModel{})
		var s Store
		switch name {
		case "mbox":
			s = NewMbox(fs)
		case "maildir":
			s = NewMaildir(fs)
		case "hardlink":
			s = NewHardlink(fs)
		case "mfs":
			var err error
			s, err = NewMFS(fs, "mfs")
			if err != nil {
				t.Fatal(err)
			}
		}
		if s.Name() != name {
			t.Fatalf("store name = %q, want %q", s.Name(), name)
		}
		out[name] = struct {
			fs    *fsim.Mem
			store Store
		}{fs, s}
	}
	return out
}

func TestDeliverAndReadBack(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			defer env.store.Close()
			body := []byte("Subject: hi\r\n\r\nbody text")
			if err := env.store.Deliver("m1", []string{"alice"}, body); err != nil {
				t.Fatal(err)
			}
			got, err := env.store.Read("alice", "m1")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(body) {
				t.Fatalf("read %q, want %q", got, body)
			}
		})
	}
}

func TestMultiRecipientAllReceive(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			defer env.store.Close()
			rcpts := []string{"u1", "u2", "u3", "u4", "u5"}
			body := []byte("spam to many")
			if err := env.store.Deliver("m1", rcpts, body); err != nil {
				t.Fatal(err)
			}
			for _, r := range rcpts {
				got, err := env.store.Read(r, "m1")
				if err != nil || string(got) != string(body) {
					t.Fatalf("%s: read = %q, %v", r, got, err)
				}
			}
		})
	}
}

func TestListOrder(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			defer env.store.Close()
			for i := 0; i < 12; i++ {
				id := fmt.Sprintf("m%02d", i)
				if err := env.store.Deliver(id, []string{"bob"}, []byte(id)); err != nil {
					t.Fatal(err)
				}
			}
			ids, err := env.store.List("bob")
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 12 {
				t.Fatalf("list len = %d, want 12", len(ids))
			}
			for i, id := range ids {
				if want := fmt.Sprintf("m%02d", i); id != want {
					t.Fatalf("order broken at %d: %s != %s", i, id, want)
				}
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			defer env.store.Close()
			env.store.Deliver("m1", []string{"a", "b"}, []byte("one"))
			env.store.Deliver("m2", []string{"a"}, []byte("two"))
			if err := env.store.Delete("a", "m1"); err != nil {
				t.Fatal(err)
			}
			if _, err := env.store.Read("a", "m1"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted mail still readable: %v", err)
			}
			// Other recipient unaffected.
			if got, err := env.store.Read("b", "m1"); err != nil || string(got) != "one" {
				t.Fatalf("b's copy damaged: %q %v", got, err)
			}
			// Remaining mail unaffected.
			if got, err := env.store.Read("a", "m2"); err != nil || string(got) != "two" {
				t.Fatalf("m2 damaged: %q %v", got, err)
			}
			if err := env.store.Delete("a", "m1"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double delete: %v", err)
			}
		})
	}
}

func TestMissingMailboxAndMail(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			defer env.store.Close()
			if _, err := env.store.List("ghost"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("List(ghost) = %v", err)
			}
			env.store.Deliver("m1", []string{"real"}, []byte("x"))
			if _, err := env.store.Read("real", "ghost-id"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Read(ghost-id) = %v", err)
			}
		})
	}
}

func TestDeliverValidation(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			defer env.store.Close()
			cases := []struct {
				id    string
				rcpts []string
			}{
				{"", []string{"a"}},
				{"m", nil},
				{"m", []string{""}},
				{"m", []string{"a", "a"}},
				{"m", []string{"../evil"}},
			}
			for _, c := range cases {
				if err := env.store.Deliver(c.id, c.rcpts, []byte("x")); err == nil {
					t.Errorf("Deliver(%q, %v) accepted", c.id, c.rcpts)
				}
			}
		})
	}
}

func TestEmptyBody(t *testing.T) {
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			defer env.store.Close()
			if err := env.store.Deliver("m", []string{"a", "b"}, nil); err != nil {
				t.Fatal(err)
			}
			got, err := env.store.Read("b", "m")
			if err != nil || len(got) != 0 {
				t.Fatalf("empty body read = %q, %v", got, err)
			}
		})
	}
}

func TestMboxDuplicatesBytesPerRecipient(t *testing.T) {
	env := newStores(t)["mbox"]
	body := make([]byte, 1000)
	env.store.Deliver("m", []string{"a", "b", "c"}, body)
	// Three mailbox files, each over 1000 bytes: 3 full copies.
	var total int64
	for _, f := range env.fs.List("mbox/") {
		sz, _ := env.fs.Size(f)
		total += sz
	}
	if total < 3000 {
		t.Fatalf("mbox total bytes = %d, want >= 3000 (duplicated copies)", total)
	}
}

func TestMFSStoresSingleCopy(t *testing.T) {
	env := newStores(t)["mfs"]
	body := make([]byte, 1000)
	env.store.Deliver("m", []string{"a", "b", "c"}, body)
	var total int64
	for _, f := range env.fs.List("") {
		sz, _ := env.fs.Size(f)
		total += sz
	}
	// One body copy plus key records: far less than three copies.
	if total >= 2000 {
		t.Fatalf("mfs total bytes = %d, want < 2000 (single copy)", total)
	}
}

func TestHardlinkSharesInode(t *testing.T) {
	env := newStores(t)["hardlink"]
	body := make([]byte, 1000)
	env.store.Deliver("m", []string{"a", "b", "c"}, body)
	// Three names exist but removing one leaves the others readable.
	if err := env.store.Delete("a", "m"); err != nil {
		t.Fatal(err)
	}
	got, err := env.store.Read("c", "m")
	if err != nil || len(got) != 1000 {
		t.Fatalf("after unlink: %d bytes, %v", len(got), err)
	}
}

func TestMaildirSequenceResumesAfterReopen(t *testing.T) {
	fs := fsim.NewMem(costmodel.FSModel{})
	s := NewMaildir(fs)
	s.Deliver("m0", []string{"a"}, []byte("x"))
	s.Deliver("m1", []string{"a"}, []byte("x"))
	s.Close()
	s2 := NewMaildir(fs)
	s2.Deliver("m2", []string{"a"}, []byte("x"))
	ids, err := s2.List("a")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"m0", "m1", "m2"}
	for i, id := range ids {
		if id != want[i] {
			t.Fatalf("order after reopen = %v, want %v", ids, want)
		}
	}
}

func TestMboxDeletePreservesOrder(t *testing.T) {
	env := newStores(t)["mbox"]
	for i := 0; i < 5; i++ {
		env.store.Deliver(fmt.Sprintf("m%d", i), []string{"a"}, []byte("x"))
	}
	env.store.Delete("a", "m2")
	ids, _ := env.store.List("a")
	want := []string{"m0", "m1", "m3", "m4"}
	if len(ids) != 4 {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestEquivalenceProperty(t *testing.T) {
	// Property: all four stores expose identical mailbox contents after
	// an arbitrary delivery plan.
	users := []string{"u0", "u1", "u2", "u3"}
	f := func(plan []byte) bool {
		stores := []Store{
			NewMbox(fsim.NewMem(costmodel.FSModel{})),
			NewMaildir(fsim.NewMem(costmodel.FSModel{})),
			NewHardlink(fsim.NewMem(costmodel.FSModel{})),
		}
		mfsStore, err := NewMFS(fsim.NewMem(costmodel.FSModel{}), "mfs")
		if err != nil {
			return false
		}
		stores = append(stores, mfsStore)
		defer func() {
			for _, s := range stores {
				s.Close()
			}
		}()
		for step, p := range plan {
			n := int(p)%len(users) + 1
			rcpts := make([]string, 0, n)
			for i := 0; i < n; i++ {
				rcpts = append(rcpts, users[(int(p)+i)%len(users)])
			}
			id := fmt.Sprintf("m%d", step)
			body := []byte(fmt.Sprintf("body-%d", step))
			for _, s := range stores {
				if err := s.Deliver(id, rcpts, body); err != nil {
					return false
				}
			}
		}
		for _, u := range users {
			ref, refErr := stores[0].List(u)
			for _, s := range stores[1:] {
				got, err := s.List(u)
				if (err == nil) != (refErr == nil) {
					return false
				}
				if len(got) != len(ref) {
					return false
				}
				for i := range ref {
					if got[i] != ref[i] {
						return false
					}
					b0, _ := stores[0].Read(u, ref[i])
					b1, _ := s.Read(u, got[i])
					if string(b0) != string(b1) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCostOrderingOnExt3(t *testing.T) {
	// The Figure 10 relationships at 15 recipients on the Ext3
	// personality: maildir ≫ hardlink > mbox > mfs in disk time.
	deliver := func(s Store, fs *fsim.Mem) {
		body := make([]byte, 4096)
		for i := 0; i < 20; i++ {
			rcpts := make([]string, 15)
			for j := range rcpts {
				rcpts[j] = fmt.Sprintf("u%02d", j)
			}
			if err := s.Deliver(fmt.Sprintf("m%d", i), rcpts, body); err != nil {
				panic(err)
			}
		}
	}
	elapsed := map[string]float64{}
	for _, name := range []string{"mbox", "maildir", "hardlink", "mfs"} {
		fs := fsim.NewMem(costmodel.Ext3)
		var s Store
		switch name {
		case "mbox":
			s = NewMbox(fs)
		case "maildir":
			s = NewMaildir(fs)
		case "hardlink":
			s = NewHardlink(fs)
		case "mfs":
			s, _ = NewMFS(fs, "mfs")
		}
		deliver(s, fs)
		s.Close()
		elapsed[name] = fs.Elapsed().Seconds()
	}
	if !(elapsed["maildir"] > elapsed["hardlink"]) {
		t.Errorf("maildir (%v) should cost more than hardlink (%v)", elapsed["maildir"], elapsed["hardlink"])
	}
	if !(elapsed["hardlink"] > elapsed["mbox"]) {
		t.Errorf("hardlink (%v) should cost more than mbox (%v) on ext3", elapsed["hardlink"], elapsed["mbox"])
	}
	if !(elapsed["mbox"] > elapsed["mfs"]) {
		t.Errorf("mbox (%v) should cost more than mfs (%v)", elapsed["mbox"], elapsed["mfs"])
	}
}

// TestParallelDeliver drives every backend with concurrent deliveries to
// overlapping recipient sets and verifies each (mail, mailbox) pair is
// present and readable afterwards. Run with -race to exercise the
// backend locking (striped for mbox, atomic sequence for maildir and
// hardlink, per-mailbox for mfs).
func TestParallelDeliver(t *testing.T) {
	recipients := []string{"alice", "bob", "carol", "dave"}
	for name, env := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			const nWorkers, perWorker = 8, 20
			var wg sync.WaitGroup
			for g := 0; g < nWorkers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						id := fmt.Sprintf("p%d-%d", g, i)
						// Overlapping subsets: rotate through 1-3 recipients.
						rcpts := recipients[g%len(recipients) : g%len(recipients)+1]
						if i%3 == 0 {
							rcpts = recipients[:2+i%3]
						}
						body := []byte("body of " + id)
						if err := env.store.Deliver(id, rcpts, body); err != nil {
							t.Errorf("deliver %s: %v", id, err)
						}
					}
				}(g)
			}
			wg.Wait()

			// Rebuild the expected mailbox contents and verify.
			want := map[string]map[string]bool{}
			for g := 0; g < nWorkers; g++ {
				for i := 0; i < perWorker; i++ {
					id := fmt.Sprintf("p%d-%d", g, i)
					rcpts := recipients[g%len(recipients) : g%len(recipients)+1]
					if i%3 == 0 {
						rcpts = recipients[:2+i%3]
					}
					for _, r := range rcpts {
						if want[r] == nil {
							want[r] = map[string]bool{}
						}
						want[r][id] = true
					}
				}
			}
			for box, ids := range want {
				got, err := env.store.List(box)
				if err != nil {
					t.Fatalf("list %s: %v", box, err)
				}
				if len(got) != len(ids) {
					t.Errorf("%s: %d mails, want %d", box, len(got), len(ids))
				}
				for _, id := range got {
					if !ids[id] {
						t.Errorf("%s: unexpected mail %s", box, id)
					}
				}
				// Spot-check a readback.
				for id := range ids {
					body, err := env.store.Read(box, id)
					if err != nil {
						t.Errorf("read %s/%s: %v", box, id, err)
					} else if string(body) != "body of "+id {
						t.Errorf("read %s/%s: body %q", box, id, body)
					}
					break
				}
			}
		})
	}
}
