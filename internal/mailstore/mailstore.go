// Package mailstore defines the mailbox-storage interface the delivery
// agent writes through, with the four implementations compared in the
// paper's Figures 10 and 11:
//
//   - Mbox: the vanilla postfix format — one file per mailbox, a
//     multi-recipient mail is appended once per recipient (N duplicate
//     writes).
//   - Maildir: one file per mail per recipient (N file creations).
//   - Hardlink: maildir that stores one copy and hard-links the other
//     N−1 names to it.
//   - MFS: the paper's single-copy record-oriented file system — one data
//     write plus N pointer records (see internal/mfs).
//
// All four run over fsim.FS, so the same code is exercised on real files
// (tests, the runnable server) and on the cost-metered simulated
// filesystem (the benchmarks).
package mailstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/fsim"
	"repro/internal/mfs"
)

// ErrNotFound is returned when a mailbox or mail-id is absent.
var ErrNotFound = errors.New("mailstore: not found")

// Store is the delivery-side interface to a mailbox format. All
// implementations are safe for concurrent use; Deliver calls for
// disjoint recipient sets proceed in parallel.
type Store interface {
	// Deliver writes one mail to every recipient mailbox. Recipients must
	// be non-empty and free of duplicates.
	Deliver(id string, recipients []string, body []byte) error
	// List returns the mail-ids in a mailbox in delivery order.
	List(mailbox string) ([]string, error)
	// Read returns the body of one mail.
	Read(mailbox, id string) ([]byte, error)
	// Delete removes one mail from one mailbox.
	Delete(mailbox, id string) error
	// Name identifies the format in reports ("mbox", "maildir",
	// "hardlink", "mfs").
	Name() string
	// Close releases resources.
	Close() error
}

func validateDelivery(id string, recipients []string) error {
	if id == "" {
		return fmt.Errorf("mailstore: empty mail-id")
	}
	if len(recipients) == 0 {
		return fmt.Errorf("mailstore: no recipients")
	}
	seen := make(map[string]bool, len(recipients))
	for _, r := range recipients {
		if r == "" {
			return fmt.Errorf("mailstore: empty recipient")
		}
		if strings.ContainsAny(r, "/\x00") {
			return fmt.Errorf("mailstore: recipient %q contains path separators", r)
		}
		if seen[r] {
			return fmt.Errorf("mailstore: duplicate recipient %q", r)
		}
		seen[r] = true
	}
	return nil
}

// ---------------------------------------------------------------------------
// Mbox

// mboxStripes is the number of independently locked mailbox partitions
// of an Mbox store; deliveries to mailboxes in different stripes run in
// parallel.
const mboxStripes = 64

// Mbox is the one-file-per-mailbox format vanilla postfix delivers into.
// Records are framed as [u16 idLen][id][u32 bodyLen][body] rather than
// "From " separator lines so that bodies need no escaping; the I/O
// pattern — one append per recipient, full body duplicated — is identical
// to classic mbox, which is what the benchmarks measure.
//
// Locking is striped per mailbox (hash of the name), mirroring the
// per-mailbox dot-locks real mbox delivery takes: appends, scans, and
// the delete-rewrite of one mailbox serialize with each other but not
// with other mailboxes.
type Mbox struct {
	stripes [mboxStripes]sync.Mutex
	fs      fsim.FS
}

var _ Store = (*Mbox)(nil)

// NewMbox returns an mbox store over fs.
func NewMbox(fs fsim.FS) *Mbox { return &Mbox{fs: fs} }

func (m *Mbox) Name() string { return "mbox" }
func (m *Mbox) Close() error { return nil }

func (m *Mbox) boxPath(mailbox string) string { return "mbox/" + mailbox }

// stripe returns the lock guarding mailbox (FNV-1a on the name).
func (m *Mbox) stripe(mailbox string) *sync.Mutex {
	h := uint32(2166136261)
	for i := 0; i < len(mailbox); i++ {
		h ^= uint32(mailbox[i])
		h *= 16777619
	}
	return &m.stripes[h%mboxStripes]
}

func (m *Mbox) Deliver(id string, recipients []string, body []byte) error {
	if err := validateDelivery(id, recipients); err != nil {
		return err
	}
	frame := makeMboxFrame(id, body)
	for _, rcpt := range recipients {
		// One stripe at a time — never nested, so no ordering concerns.
		if err := m.deliverOne(rcpt, frame); err != nil {
			return err
		}
	}
	return nil
}

func (m *Mbox) deliverOne(rcpt string, frame []byte) error {
	mu := m.stripe(rcpt)
	mu.Lock()
	defer mu.Unlock()
	f, err := m.fs.OpenAppend(m.boxPath(rcpt))
	if err != nil {
		return err
	}
	// The whole body is written once per recipient — the duplicated
	// disk I/O the paper's §4.2 identifies.
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func makeMboxFrame(id string, body []byte) []byte {
	buf := make([]byte, 0, 2+len(id)+4+len(body))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(id)))
	buf = append(buf, id...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	return buf
}

// scanMbox walks the frames of a mailbox file, invoking fn for each; fn
// returning false stops the walk.
func (m *Mbox) scanMbox(mailbox string, fn func(id string, body []byte) bool) error {
	f, err := m.fs.OpenRead(m.boxPath(mailbox))
	if err != nil {
		if errors.Is(err, fsim.ErrNotExist) {
			return fmt.Errorf("mailstore: mailbox %s: %w", mailbox, ErrNotFound)
		}
		return err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
			return err
		}
	}
	pos := 0
	for pos < len(data) {
		if len(data)-pos < 2 {
			return fmt.Errorf("mailstore: corrupt mbox %s at %d", mailbox, pos)
		}
		idLen := int(binary.LittleEndian.Uint16(data[pos:]))
		pos += 2
		if len(data)-pos < idLen+4 {
			return fmt.Errorf("mailstore: corrupt mbox %s at %d", mailbox, pos)
		}
		id := string(data[pos : pos+idLen])
		pos += idLen
		bodyLen := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		if len(data)-pos < bodyLen {
			return fmt.Errorf("mailstore: corrupt mbox %s at %d", mailbox, pos)
		}
		body := data[pos : pos+bodyLen]
		pos += bodyLen
		if !fn(id, body) {
			return nil
		}
	}
	return nil
}

func (m *Mbox) List(mailbox string) ([]string, error) {
	mu := m.stripe(mailbox)
	mu.Lock()
	defer mu.Unlock()
	var ids []string
	err := m.scanMbox(mailbox, func(id string, _ []byte) bool {
		ids = append(ids, id)
		return true
	})
	return ids, err
}

func (m *Mbox) Read(mailbox, id string) ([]byte, error) {
	mu := m.stripe(mailbox)
	mu.Lock()
	defer mu.Unlock()
	var found []byte
	ok := false
	err := m.scanMbox(mailbox, func(gotID string, body []byte) bool {
		if gotID == id {
			found = append([]byte(nil), body...)
			ok = true
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("mailstore: mail %s in %s: %w", id, mailbox, ErrNotFound)
	}
	return found, nil
}

// Delete rewrites the mailbox without the given mail — the full-file
// rewrite is exactly why mbox deletion is expensive in practice.
func (m *Mbox) Delete(mailbox, id string) error {
	mu := m.stripe(mailbox)
	mu.Lock()
	defer mu.Unlock()
	type rec struct {
		id   string
		body []byte
	}
	var keep []rec
	found := false
	err := m.scanMbox(mailbox, func(gotID string, body []byte) bool {
		if gotID == id && !found {
			found = true
			return true
		}
		keep = append(keep, rec{id: gotID, body: append([]byte(nil), body...)})
		return true
	})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("mailstore: mail %s in %s: %w", id, mailbox, ErrNotFound)
	}
	f, err := m.fs.Create(m.boxPath(mailbox))
	if err != nil {
		return err
	}
	defer f.Close()
	for _, r := range keep {
		if _, err := f.Write(makeMboxFrame(r.id, r.body)); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Maildir

// Maildir stores one file per mail per recipient under
// maildir/<user>/<seq>-<id>. The sequence prefix preserves delivery order.
//
// Maildir needs no store-level lock: every delivery creates fresh
// uniquely named files (the sequence counter is atomic), which is
// exactly the lock-free-delivery property real maildir was designed for.
type Maildir struct {
	fs  fsim.FS
	seq atomic.Uint64
}

var _ Store = (*Maildir)(nil)

// NewMaildir returns a maildir store over fs.
func NewMaildir(fs fsim.FS) *Maildir {
	m := &Maildir{fs: fs}
	// Resume the sequence past any existing files so re-opened stores
	// keep order monotone.
	for _, name := range fs.List("maildir/") {
		var seq uint64
		base := name[strings.LastIndex(name, "/")+1:]
		if i := strings.IndexByte(base, '-'); i > 0 {
			fmt.Sscanf(base[:i], "%016x", &seq)
			if seq >= m.seq.Load() {
				m.seq.Store(seq + 1)
			}
		}
	}
	return m
}

func (m *Maildir) Name() string { return "maildir" }
func (m *Maildir) Close() error { return nil }

func (m *Maildir) mailPath(mailbox string, seq uint64, id string) string {
	return fmt.Sprintf("maildir/%s/%016x-%s", mailbox, seq, id)
}

func (m *Maildir) Deliver(id string, recipients []string, body []byte) error {
	if err := validateDelivery(id, recipients); err != nil {
		return err
	}
	seq := m.seq.Add(1) - 1
	for _, rcpt := range recipients {
		// One small-file creation per recipient — the op mix that makes
		// maildir collapse on Ext3 (Fig 10).
		f, err := m.fs.Create(m.mailPath(rcpt, seq, id))
		if err != nil {
			return err
		}
		if _, err := f.Write(body); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// findMail locates the stored path of a mail within a mailbox.
func (m *Maildir) findMail(mailbox, id string) (string, error) {
	prefix := "maildir/" + mailbox + "/"
	for _, name := range m.fs.List(prefix) {
		base := name[strings.LastIndex(name, "/")+1:]
		if i := strings.IndexByte(base, '-'); i > 0 && base[i+1:] == id {
			return name, nil
		}
	}
	return "", fmt.Errorf("mailstore: mail %s in %s: %w", id, mailbox, ErrNotFound)
}

func (m *Maildir) List(mailbox string) ([]string, error) {
	prefix := "maildir/" + mailbox + "/"
	names := m.fs.List(prefix)
	if len(names) == 0 {
		return nil, fmt.Errorf("mailstore: mailbox %s: %w", mailbox, ErrNotFound)
	}
	sort.Strings(names) // sequence prefix sorts into delivery order
	ids := make([]string, 0, len(names))
	for _, name := range names {
		base := name[strings.LastIndex(name, "/")+1:]
		if i := strings.IndexByte(base, '-'); i > 0 {
			ids = append(ids, base[i+1:])
		}
	}
	return ids, nil
}

func (m *Maildir) Read(mailbox, id string) ([]byte, error) {
	path, err := m.findMail(mailbox, id)
	if err != nil {
		return nil, err
	}
	return readAll(m.fs, path)
}

func (m *Maildir) Delete(mailbox, id string) error {
	path, err := m.findMail(mailbox, id)
	if err != nil {
		return err
	}
	return m.fs.Remove(path)
}

// ---------------------------------------------------------------------------
// Hardlink

// Hardlink is the optimized maildir of the paper's Figure 10: the mail is
// written once into the first recipient's directory and the remaining
// recipients get hard links to it. Deleting any name leaves the other
// links intact (link-count semantics).
type Hardlink struct {
	Maildir
}

var _ Store = (*Hardlink)(nil)

// NewHardlink returns a hardlink-maildir store over fs.
func NewHardlink(fs fsim.FS) *Hardlink {
	return &Hardlink{Maildir: *NewMaildir(fs)}
}

func (h *Hardlink) Name() string { return "hardlink" }

func (h *Hardlink) Deliver(id string, recipients []string, body []byte) error {
	if err := validateDelivery(id, recipients); err != nil {
		return err
	}
	seq := h.seq.Add(1) - 1
	first := h.mailPath(recipients[0], seq, id)
	f, err := h.fs.Create(first)
	if err != nil {
		return err
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, rcpt := range recipients[1:] {
		// A link instead of a copy: one inode, N directory entries.
		if err := h.fs.Link(first, h.mailPath(rcpt, seq, id)); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// MFS adapter

// MFS adapts the paper's single-copy file system (internal/mfs) to the
// Store interface.
type MFS struct {
	store *mfs.Store
}

var _ Store = (*MFS)(nil)

// NewMFS returns an MFS-backed store rooted at dir of fs. Options are
// passed through to mfs.New (e.g. mfs.WithSync(true) for the
// write-ahead-logged durable mode).
func NewMFS(fs fsim.FS, dir string, opts ...mfs.Option) (*MFS, error) {
	s, err := mfs.New(fs, dir, opts...)
	if err != nil {
		return nil, err
	}
	return &MFS{store: s}, nil
}

// Store exposes the underlying mfs.Store for callers needing MFS-specific
// surface (commit statistics, shared-store compaction).
func (m *MFS) Store() *mfs.Store { return m.store }

// Recovery reports what the open-time recovery pass replayed and
// repaired (zero value for a clean open).
func (m *MFS) Recovery() mfs.RecoveryStats { return m.store.Recovery() }

// Checkpoint writes a point-in-time copy of the live store under
// destDir; see mfs.Store.Checkpoint.
func (m *MFS) Checkpoint(destDir string) (mfs.CheckpointStats, error) {
	return m.store.Checkpoint(destDir)
}

func (m *MFS) Name() string { return "mfs" }
func (m *MFS) Close() error { return m.store.Close() }

// Underlying exposes the wrapped mfs.Store for callers that need the
// record-level API (Seek, Compact, Stats).
func (m *MFS) Underlying() *mfs.Store { return m.store }

func (m *MFS) Deliver(id string, recipients []string, body []byte) error {
	if err := validateDelivery(id, recipients); err != nil {
		return err
	}
	boxes := make([]*mfs.Mailbox, 0, len(recipients))
	for _, rcpt := range recipients {
		mb, err := m.store.Open(rcpt)
		if err != nil {
			return err
		}
		// Idempotent redelivery: after a crash the queue replays spool
		// files whose delivery was already acknowledged durable, so a
		// recipient that holds the id was delivered — skip it rather
		// than fail the whole mail with ErrDuplicate. (Mail-ids are
		// server-generated, so an honest equal id is the same mail; a
		// forged one still trips the NWrite collision check below.)
		if mb.Contains(id) {
			continue
		}
		boxes = append(boxes, mb)
	}
	if len(boxes) == 0 {
		return nil
	}
	return m.store.NWrite(boxes, id, body)
}

func (m *MFS) List(mailbox string) ([]string, error) {
	mb, err := m.store.Open(mailbox)
	if err != nil {
		return nil, err
	}
	ids := mb.IDs()
	if len(ids) == 0 {
		return nil, fmt.Errorf("mailstore: mailbox %s: %w", mailbox, ErrNotFound)
	}
	return ids, nil
}

func (m *MFS) Read(mailbox, id string) ([]byte, error) {
	mb, err := m.store.Open(mailbox)
	if err != nil {
		return nil, err
	}
	mail, err := mb.ReadID(id)
	if err != nil {
		if errors.Is(err, mfs.ErrNotFound) {
			return nil, fmt.Errorf("mailstore: mail %s in %s: %w", id, mailbox, ErrNotFound)
		}
		return nil, err
	}
	return mail.Body, nil
}

func (m *MFS) Delete(mailbox, id string) error {
	mb, err := m.store.Open(mailbox)
	if err != nil {
		return err
	}
	if err := mb.Delete(id); err != nil {
		if errors.Is(err, mfs.ErrNotFound) {
			return fmt.Errorf("mailstore: mail %s in %s: %w", id, mailbox, ErrNotFound)
		}
		return err
	}
	return nil
}

// readAll reads a whole file from fs.
func readAll(fs fsim.FS, name string) ([]byte, error) {
	f, err := fs.OpenRead(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			return nil, err
		}
	}
	return buf, nil
}
