package policy

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
)

// epoch0 is the fixed base instant the store tests measure from; using
// an injected absolute clock keeps every expiry decision deterministic
// regardless of when (or how fast) the test runs.
var epoch0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func abs(s float64) time.Time { return epoch0.Add(time.Duration(s * float64(time.Second))) }

func mkIP(a, b, c, d byte) addr.IPv4 { return addr.MakeIPv4(a, b, c, d) }

// addrIP labels an IP for table-driven assertions.
type addrIP struct {
	name string
	ip   addr.IPv4
}

// --- Reputation Delta/Merge ---

func TestReputationDeltaFiltersByStamp(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	r.RecordBounce(abs(0), ip1)
	r.RecordBounce(abs(100), ip4)
	all := r.Delta(time.Time{})
	if len(all) != 4 { // 2 IPs + 2 prefixes
		t.Fatalf("full snapshot = %d entries, want 4", len(all))
	}
	late := r.Delta(abs(50))
	if len(late) != 2 {
		t.Fatalf("delta since 50s = %d entries, want 2 (ip4 + its prefix)", len(late))
	}
	for _, e := range late {
		if e.Last.Before(abs(50)) {
			t.Fatalf("stale entry in delta: %+v", e)
		}
	}
}

func TestReputationMergeAdoptsLargerDecayedScore(t *testing.T) {
	cfg := ReputationConfig{HalfLife: time.Hour}
	a := NewReputation(cfg)
	b := NewReputation(cfg)
	// a saw one bounce; b saw three, later.
	a.RecordBounce(abs(0), ip1)
	for i := 0; i < 3; i++ {
		b.RecordBounce(abs(10+float64(i)), ip1)
	}
	if n := a.Merge(b.Delta(time.Time{})); n == 0 {
		t.Fatal("merge changed nothing")
	}
	// a now sees b's richer history (score ≥ 3 at the IP + prefix echo).
	if s := a.Score(abs(20), ip1); s < 4 {
		t.Fatalf("merged score = %v, want ≥ 4 (3 bounces × 1.5)", s)
	}
	// The reverse direction must not clobber the richer view.
	before := b.Score(abs(20), ip1)
	b.Merge(a.Delta(time.Time{}))
	if after := b.Score(abs(20), ip1); after < before-1e-9 {
		t.Fatalf("merge lowered score: %v -> %v", before, after)
	}
}

func TestReputationMergeIsIdempotentAndCommutative(t *testing.T) {
	cfg := ReputationConfig{HalfLife: time.Hour}
	mk := func() (*Reputation, *Reputation) {
		a, b := NewReputation(cfg), NewReputation(cfg)
		a.RecordBounce(abs(0), ip1)
		a.RecordBounce(abs(5), ip4)
		b.RecordBounce(abs(3), ip1)
		b.RecordBounce(abs(7), ip2)
		return a, b
	}

	// Idempotence: applying the same delta twice changes nothing more.
	a, b := mk()
	d := b.Delta(time.Time{})
	a.Merge(d)
	if n := a.Merge(d); n != 0 {
		t.Fatalf("second identical merge changed %d entries", n)
	}

	// Commutativity: a∪b and b∪a agree on every score.
	a1, b1 := mk()
	a2, b2 := mk()
	a1.Merge(b1.Delta(time.Time{}))
	b2.Merge(a2.Delta(time.Time{}))
	for _, ip := range []addrIP{{"ip1", ip1}, {"ip2", ip2}, {"ip4", ip4}} {
		s1 := a1.Score(abs(10), ip.ip)
		s2 := b2.Score(abs(10), ip.ip)
		if diff := s1 - s2; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: a∪b=%v b∪a=%v", ip.name, s1, s2)
		}
	}
}

// TestReputationMergeNeverInflates pins the anti-echo property: gossiping
// the same observation back and forth must not grow the score.
func TestReputationMergeNeverInflates(t *testing.T) {
	cfg := ReputationConfig{HalfLife: time.Hour}
	a, b := NewReputation(cfg), NewReputation(cfg)
	a.RecordBounce(abs(0), ip1)
	want := a.Score(abs(0), ip1)
	for round := 0; round < 10; round++ {
		b.Merge(a.Delta(time.Time{}))
		a.Merge(b.Delta(time.Time{}))
	}
	if got := a.Score(abs(0), ip1); got > want+1e-9 {
		t.Fatalf("echo rounds inflated score: %v -> %v", want, got)
	}
}

// TestReputationExpiryDeterministic drives the MaxEntries sweep on an
// injected clock: which entries survive depends only on recorded stamps,
// never on the wall clock (satellite bugfix: no flaking on wall-clock
// boundaries).
func TestReputationExpiryDeterministic(t *testing.T) {
	cfg := ReputationConfig{HalfLife: time.Second, MaxEntries: 4}
	for trial := 0; trial < 3; trial++ {
		r := NewReputation(cfg)
		for i := 0; i < 4; i++ {
			r.RecordBounce(abs(float64(i)), mkIP(10, 0, byte(i), 1))
		}
		// 30 half-lives later a fifth source triggers the sweep; every
		// earlier entry has decayed below the negligible threshold.
		r.RecordBounce(abs(30), mkIP(10, 9, 9, 9))
		r.mu.Lock()
		n := len(r.byIP)
		r.mu.Unlock()
		if n != 1 {
			t.Fatalf("trial %d: %d entries survive sweep, want 1", trial, n)
		}
	}
}

// --- Greylist Delta/Merge ---

func TestGreylistMergeSharesPass(t *testing.T) {
	cfg := GreyConfig{MinRetry: 10 * time.Second, MaxValid: time.Hour, WhitelistTTL: 2 * time.Hour}
	a, b := NewGreylist(cfg), NewGreylist(cfg)
	// First contact on node a; the retry lands on node b, which learned
	// the pending tuple through gossip and honors the original window.
	if d := a.Check(abs(0), ip1, "s@x.test", "u@y.test"); d.Verdict != Tempfail {
		t.Fatalf("first contact: %+v", d)
	}
	b.Merge(a.Delta(time.Time{}))
	if d := b.Check(abs(15), ip1, "s@x.test", "u@y.test"); d.Verdict != Allow {
		t.Fatalf("cross-node retry: %+v", d)
	}
	// b's pass flows back: a now whitelists the tuple immediately.
	a.Merge(b.Delta(time.Time{}))
	if d := a.Check(abs(16), ip1, "s@x.test", "u@y.test"); d.Verdict != Allow {
		t.Fatalf("pass did not replicate: %+v", d)
	}
}

func TestGreylistMergePendingKeepsEarliestFirstSeen(t *testing.T) {
	cfg := GreyConfig{MinRetry: 10 * time.Second, MaxValid: time.Hour}
	a, b := NewGreylist(cfg), NewGreylist(cfg)
	a.Check(abs(0), ip1, "s@x.test", "u@y.test")
	b.Check(abs(5), ip1, "s@x.test", "u@y.test") // same tuple, later first contact
	b.Merge(a.Delta(time.Time{}))
	// b credits the retry against a's earlier window: 12s > MinRetry
	// from a's firstSeen, though only 7s from b's own.
	if d := b.Check(abs(12), ip1, "s@x.test", "u@y.test"); d.Verdict != Allow {
		t.Fatalf("earliest firstSeen not honored: %+v", d)
	}
}

func TestGreylistMergeIdempotent(t *testing.T) {
	cfg := GreyConfig{MinRetry: 10 * time.Second}
	a, b := NewGreylist(cfg), NewGreylist(cfg)
	a.Check(abs(0), ip1, "s@x.test", "u@y.test")
	a.Check(abs(15), ip1, "s@x.test", "u@y.test") // passes
	d := a.Delta(time.Time{})
	if n := b.Merge(d); n != 1 {
		t.Fatalf("first merge changed %d, want 1", n)
	}
	if n := b.Merge(d); n != 0 {
		t.Fatalf("repeat merge changed %d, want 0", n)
	}
}

// TestGreylistExpiryDeterministic pins whitelist expiry to the injected
// clock: one nanosecond before expiry the tuple is allowed, at expiry it
// restarts the window — no wall-clock involvement.
func TestGreylistExpiryDeterministic(t *testing.T) {
	cfg := GreyConfig{MinRetry: 10 * time.Second, MaxValid: time.Hour, WhitelistTTL: 2 * time.Hour}
	g := NewGreylist(cfg)
	g.Check(abs(0), ip1, "s@x.test", "u@y.test")
	if d := g.Check(abs(15), ip1, "s@x.test", "u@y.test"); d.Verdict != Allow {
		t.Fatalf("pass: %+v", d)
	}
	expiry := abs(15).Add(cfg.WhitelistTTL)
	if d := g.Check(expiry.Add(-time.Nanosecond), ip1, "s@x.test", "u@y.test"); d.Verdict != Allow {
		t.Fatalf("1ns before expiry: %+v", d)
	}
	// That allowed delivery refreshed the TTL; jump past the refreshed
	// window and the tuple greylists again.
	refreshed := expiry.Add(-time.Nanosecond).Add(cfg.WhitelistTTL)
	if d := g.Check(refreshed, ip1, "s@x.test", "u@y.test"); d.Verdict != Tempfail {
		t.Fatalf("at expiry: %+v", d)
	}
}

// --- concurrent gossip merge vs verdict reads ---

// TestStoresConcurrentMergeAndRead is the -race half of the satellite:
// one goroutine pair gossips deltas between two store pairs while others
// read verdicts and record evidence through an Engine sharing the store.
func TestStoresConcurrentMergeAndRead(t *testing.T) {
	rep := NewReputation(ReputationConfig{})
	grey := NewGreylist(GreyConfig{MinRetry: time.Millisecond})
	peerRep := NewReputation(ReputationConfig{})
	peerGrey := NewGreylist(GreyConfig{MinRetry: time.Millisecond})
	eng := New(WithReputationStore(rep), WithGreylistStore(grey), WithEpoch(epoch0))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // gossip loop
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			peerRep.RecordBounce(abs(float64(i)), mkIP(10, 1, byte(i>>8), byte(i)))
			peerGrey.Check(abs(float64(i)), mkIP(10, 1, 0, byte(i)), "p@x.test", "u@y.test")
			rep.Merge(peerRep.Delta(time.Time{}))
			grey.Merge(peerGrey.Delta(time.Time{}))
			peerRep.Merge(rep.Delta(time.Time{}))
			peerGrey.Merge(grey.Delta(time.Time{}))
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ip := mkIP(10, 0, 0, byte(g))
			for i := 0; i < 500; i++ {
				now := time.Duration(i) * time.Millisecond
				eng.Admit(bg, now, ip, 0)
				eng.Rcpt(bg, now, ip, "s@x.test", fmt.Sprintf("u%d@y.test", i%3))
				eng.RecordBounce(now, ip)
				eng.Score(now, ip)
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if st := eng.Stats(); st.ConnAllowed+st.ConnTempfailed+st.ConnRejected != 4*500 {
		t.Fatalf("lost verdicts: %+v", st)
	}
}
