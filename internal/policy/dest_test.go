package policy

import (
	"testing"
	"time"
)

func TestDestTrackerScoresAndDecay(t *testing.T) {
	clock := time.Unix(1000, 0)
	tr := NewDestTracker(
		WithDestHalfLife(time.Minute),
		WithDestClock(func() time.Time { return clock }),
	)
	if tr.Score("b.test") != 0 {
		t.Fatal("unknown destination must score 0")
	}
	tr.RecordFailure("b.test")
	tr.RecordFailure("b.test")
	tr.RecordSuccess("c.test")
	if s := tr.Score("b.test"); s < 1.9 || s > 2.1 {
		t.Fatalf("score = %v, want ≈2", s)
	}
	if tr.Score("c.test") != 0 {
		t.Fatal("successes must not charge the failure score")
	}
	// One half-life later the score halves.
	clock = clock.Add(time.Minute)
	if s := tr.Score("b.test"); s < 0.9 || s > 1.1 {
		t.Fatalf("decayed score = %v, want ≈1", s)
	}
}

func TestDestTrackerSnapshotOrder(t *testing.T) {
	tr := NewDestTracker()
	tr.RecordFailure("bad.test")
	tr.RecordFailure("bad.test")
	tr.RecordFailure("meh.test")
	tr.RecordSuccess("good.test")
	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Dest != "bad.test" || snap[0].Failures != 2 {
		t.Fatalf("worst first broken: %+v", snap)
	}
	if snap[2].Dest != "good.test" || snap[2].Successes != 1 {
		t.Fatalf("healthy destination missing: %+v", snap)
	}
}
