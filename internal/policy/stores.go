package policy

import (
	"time"

	"repro/internal/addr"
)

// This file defines the transport-agnostic pre-trust state contracts the
// scale-out director tier depends on. The Engine consults its stores only
// through these interfaces, so the same verdict pipeline runs over a
// private in-process store (the default), a store shared among several
// front-end goroutines, or a store replicated between nodes by
// internal/director's gossip layer.
//
// Times are absolute (time.Time). The Engine itself stays clock-agnostic
// — its methods take a Duration offset — and converts offsets to
// absolute instants against its epoch (WithEpoch), so simulator virtual
// time and wall time both map onto the stores. Absolute times are what
// make state mergeable across nodes: a decayed-score stamp or greylist
// window recorded on one front end means the same thing on every other.

// ReputationStore is the aggregated-historical-reputation store the
// Engine consults at connect time and feeds with bounce/reject/DNSBL
// evidence. Implementations must be safe for concurrent use: the
// director tier reads verdicts while a gossip merge is in flight.
type ReputationStore interface {
	// RecordBounce adds one completed bounce connection's weight.
	RecordBounce(at time.Time, ip addr.IPv4)
	// RecordRejectedRcpt adds one 550-rejected recipient's weight.
	RecordRejectedRcpt(at time.Time, ip addr.IPv4)
	// RecordDNSBLHit adds one DNSBL listing's weight.
	RecordDNSBLHit(at time.Time, ip addr.IPv4)
	// Check returns the admission verdict for ip from history alone.
	Check(at time.Time, ip addr.IPv4) Decision
	// Score returns the combined decayed score, for observability.
	Score(at time.Time, ip addr.IPv4) float64
}

// GreylistStore is the first-contact greylist the Engine consults per
// otherwise-valid RCPT TO. Implementations must be safe for concurrent
// use.
type GreylistStore interface {
	// Check evaluates one (client, sender, rcpt) delivery attempt and
	// advances the tuple's state.
	Check(at time.Time, ip addr.IPv4, sender, rcpt string) Decision
}

// RepEntry is one reputation entry in the snapshot/delta wire contract:
// a decayed score as of its last update. Key is the dotted-quad IP for
// exact-address entries or CIDR notation ("185.0.2.0/25") for prefix
// aggregates.
type RepEntry struct {
	Key   string    `json:"k"`
	Value float64   `json:"v"`
	Last  time.Time `json:"t"`
}

// GreyEntry is one greylist tuple in the snapshot/delta wire contract.
// Key is the store's tuple key (client /24, sender, recipient).
type GreyEntry struct {
	Key       string    `json:"k"`
	FirstSeen time.Time `json:"f"`
	Passed    bool      `json:"p,omitempty"`
	Expiry    time.Time `json:"e"`
	Updated   time.Time `json:"u"`
}

// ReputationSync is the anti-entropy contract a shareable reputation
// store exposes to a replication layer. Delta returns entries stamped at
// or after since (a zero since returns a full snapshot); Merge folds a
// peer's entries in and reports how many changed local state. Merge must
// be commutative and idempotent so gossip rounds can overlap, repeat,
// and arrive in any order.
type ReputationSync interface {
	Delta(since time.Time) []RepEntry
	Merge(entries []RepEntry) int
}

// GreylistSync is the anti-entropy contract a shareable greylist
// exposes, with the same Delta/Merge semantics as ReputationSync.
type GreylistSync interface {
	Delta(since time.Time) []GreyEntry
	Merge(entries []GreyEntry) int
}
