// Package policy is the pre-trust connection policy engine: a pluggable
// verdict pipeline evaluated per connection and per MAIL FROM / RCPT TO,
// before the server commits an smtpd worker to the client.
//
// The paper's fork-after-trust architecture (§5) moves the *resource
// commitment* after the first valid RCPT; this package moves the
// *admission decision* even earlier, to the front of both architectures,
// following the aggregated-history line of work (Menahem & Puzis; Pour et
// al., PAPERS.md): cheap per-source state — rates, retry behaviour,
// bounce/blacklist history — separates spam sources before any dialog
// work is done. The hybrid master consults the engine inside its event
// loop, so a rejected connection never costs a worker, extending the
// paper's thesis from bounces to policy rejects.
//
// The pipeline composes four checkers:
//
//   - token-bucket rate limiters per client IP and per /25 prefix
//     (internal/addr prefix math), applied to connections and to MAIL
//     transactions;
//   - a greylist keyed on (client /24, sender, recipient) with a
//     configurable retry window;
//   - an aggregated historical reputation store: exponentially decayed
//     scores of bounces, rejected RCPTs, and DNSBL hits per IP and per
//     /25 prefix;
//   - a concurrent multi-DNSBL scorer (Scorer) fanning out to several
//     internal/dnsbl clients with early exit once a score threshold is
//     crossed.
//
// Greylist and reputation state live behind the GreylistStore and
// ReputationStore interfaces (stores.go), so an Engine can run against
// private per-process stores (the default), or against stores shared and
// gossip-replicated across a director tier (internal/director).
//
// The Engine itself is clock-agnostic: every method takes "now" as an
// offset on the caller's clock, so the same engine runs under the
// discrete-event simulator's virtual time (internal/simmail) and under
// the wall clock (ServerPolicy adapts it for internal/smtpserver).
// Offsets are converted to absolute store timestamps against the
// engine's epoch (WithEpoch).
package policy

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/addr"
)

// Verdict is the outcome of a policy evaluation.
type Verdict int

// The three verdicts, ordered by severity.
const (
	// Allow admits the connection or command.
	Allow Verdict = iota
	// Tempfail asks the client to retry later (SMTP 4xx): greylisting,
	// rate limiting, and borderline reputation.
	Tempfail
	// Reject refuses permanently (SMTP 5xx): blacklisted or
	// reputation-condemned sources.
	Reject
)

// String names the verdict for reports.
func (v Verdict) String() string {
	switch v {
	case Allow:
		return "allow"
	case Tempfail:
		return "tempfail"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Decision is one verdict with its provenance.
type Decision struct {
	Verdict Verdict
	// Checker names the checker that decided ("rate", "greylist",
	// "reputation", "dnsbl"); empty for Allow.
	Checker string
	// Reason is a human-readable explanation suitable for an SMTP reply.
	Reason string
}

// allowed is the zero Decision.
var allowed = Decision{}

// Stats is a snapshot of the engine's verdict counters, by stage.
type Stats struct {
	ConnAllowed    int64 // connections admitted
	ConnTempfailed int64 // connections tempfailed (rate / reputation / dnsbl)
	ConnRejected   int64 // connections rejected (reputation / dnsbl)
	MailTempfailed int64 // MAIL FROM transactions tempfailed (rate)
	RcptGreylisted int64 // RCPT TO attempts tempfailed by the greylist
	RcptAllowed    int64 // RCPT TO attempts passed by the greylist
	BouncesSeen    int64 // bounce connections fed to the reputation store
	RejectsSeen    int64 // rejected RCPTs fed to the reputation store
	DNSBLHitsSeen  int64 // DNSBL hits fed to the reputation store
}

// Option configures an Engine. A zero-option Engine allows everything.
type Option func(*Engine)

// WithRate enables the token-bucket rate limiters.
func WithRate(cfg RateConfig) Option {
	return func(e *Engine) { e.rate = newRateLimiter(cfg) }
}

// WithGreylist enables greylisting of first-contact delivery attempts
// with a private store.
func WithGreylist(cfg GreyConfig) Option {
	return func(e *Engine) { e.grey = NewGreylist(cfg) }
}

// WithGreylistStore enables greylisting against a caller-supplied —
// possibly shared or replicated — store.
func WithGreylistStore(s GreylistStore) Option {
	return func(e *Engine) { e.grey = s }
}

// WithReputation enables the aggregated historical reputation store
// with a private instance.
func WithReputation(cfg ReputationConfig) Option {
	return func(e *Engine) { e.rep = NewReputation(cfg) }
}

// WithReputationStore enables reputation against a caller-supplied —
// possibly shared or replicated — store.
func WithReputationStore(s ReputationStore) Option {
	return func(e *Engine) { e.rep = s }
}

// WithDNSBLReject rejects a connection whose DNSBL score (passed to
// Admit by the caller, typically from a Scorer) reaches threshold.
func WithDNSBLReject(threshold float64) Option {
	return func(e *Engine) { e.dnsblReject = threshold }
}

// WithDNSBLTempfail tempfails a connection whose DNSBL score is below
// the reject threshold but at or above this one.
func WithDNSBLTempfail(threshold float64) Option {
	return func(e *Engine) { e.dnsblTempfail = threshold }
}

// WithEpoch sets the absolute instant the engine's duration offsets are
// measured from (default Unix epoch). Wall-clock callers set this so
// store timestamps are real times, comparable across gossiping nodes;
// simulator callers keep the default so virtual time stays
// deterministic.
func WithEpoch(epoch time.Time) Option {
	return func(e *Engine) { e.epoch = epoch }
}

// Engine evaluates the policy pipeline. It is safe for concurrent use;
// under the simulator it is driven single-threaded on virtual time.
type Engine struct {
	mu            sync.Mutex
	epoch         time.Time
	dnsblReject   float64
	dnsblTempfail float64
	rate          *rateLimiter
	grey          GreylistStore
	rep           ReputationStore
	st            Stats
}

// New builds an engine. Options enable checkers; with none, everything
// is allowed.
func New(opts ...Option) *Engine {
	e := &Engine{epoch: time.Unix(0, 0).UTC()}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Epoch returns the absolute instant offset 0 corresponds to.
func (e *Engine) Epoch() time.Time { return e.epoch }

// at converts a clock offset to the stores' absolute time.
func (e *Engine) at(now time.Duration) time.Time { return e.epoch.Add(now) }

// Stats returns a snapshot of the verdict counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st
}

// Admit evaluates connection admission at time now: reputation first
// (cheapest evidence), then rate limits, then the caller-supplied DNSBL
// score (0 when no lookup ran). A non-zero score is also recorded as
// reputation evidence, so repeat offenders are condemned from history
// even when later lookups are skipped.
//
// ctx is the connection's evaluation context, plumbed end to end from
// the accept path through the DNSBL resolvers; a cancelled context fails
// open (Allow) without touching any checker state, since the connection
// is already gone.
func (e *Engine) Admit(ctx context.Context, now time.Duration, ip addr.IPv4, dnsblScore float64) Decision {
	if ctx.Err() != nil {
		return allowed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	d := e.admitLocked(now, ip, dnsblScore)
	switch d.Verdict {
	case Reject:
		e.st.ConnRejected++
	case Tempfail:
		e.st.ConnTempfailed++
	default:
		e.st.ConnAllowed++
	}
	return d
}

func (e *Engine) admitLocked(now time.Duration, ip addr.IPv4, dnsblScore float64) Decision {
	// Reputation is judged on *historical* evidence only; this visit's
	// DNSBL hit is recorded afterwards, condemning the next visit.
	var rep Decision
	if e.rep != nil {
		rep = e.rep.Check(e.at(now), ip)
	}
	if dnsblScore > 0 && e.rep != nil {
		e.st.DNSBLHitsSeen++
		e.rep.RecordDNSBLHit(e.at(now), ip)
	}
	if rep.Verdict != Allow {
		return rep
	}
	if e.rate != nil {
		if d := e.rate.takeConn(now, ip); d.Verdict != Allow {
			return d
		}
	}
	if e.dnsblReject > 0 && dnsblScore >= e.dnsblReject {
		return Decision{Reject, "dnsbl", fmt.Sprintf("listed by DNSBLs (score %.1f)", dnsblScore)}
	}
	if e.dnsblTempfail > 0 && dnsblScore >= e.dnsblTempfail {
		return Decision{Tempfail, "dnsbl", fmt.Sprintf("deferred on DNSBL evidence (score %.1f)", dnsblScore)}
	}
	return allowed
}

// Mail evaluates one MAIL FROM transaction: the per-IP message-rate
// bucket, throttling sources that pipeline many transactions through few
// connections. A cancelled ctx fails open.
func (e *Engine) Mail(ctx context.Context, now time.Duration, ip addr.IPv4, sender string) Decision {
	if ctx.Err() != nil {
		return allowed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rate != nil {
		if d := e.rate.takeMail(now, ip); d.Verdict != Allow {
			e.st.MailTempfailed++
			return d
		}
	}
	return allowed
}

// Rcpt evaluates one otherwise-valid RCPT TO through the greylist.
// Invalid recipients never reach here — they draw 550 from the access
// database and are fed to the reputation store via RecordRejectedRcpt.
// A cancelled ctx fails open.
func (e *Engine) Rcpt(ctx context.Context, now time.Duration, ip addr.IPv4, sender, rcpt string) Decision {
	if ctx.Err() != nil {
		return allowed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.grey != nil {
		if d := e.grey.Check(e.at(now), ip, sender, rcpt); d.Verdict != Allow {
			e.st.RcptGreylisted++
			return d
		}
	}
	e.st.RcptAllowed++
	return allowed
}

// RecordRejectedRcpt feeds one 550-rejected recipient (a §4.1 bounce
// signal) into the reputation store.
func (e *Engine) RecordRejectedRcpt(now time.Duration, ip addr.IPv4) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.st.RejectsSeen++
	if e.rep != nil {
		e.rep.RecordRejectedRcpt(e.at(now), ip)
	}
}

// RecordBounce feeds one completed bounce connection (no recipient was
// valid) into the reputation store.
func (e *Engine) RecordBounce(now time.Duration, ip addr.IPv4) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.st.BouncesSeen++
	if e.rep != nil {
		e.rep.RecordBounce(e.at(now), ip)
	}
}

// Score returns the current combined reputation score for ip, for
// observability (0 when the reputation checker is disabled).
func (e *Engine) Score(now time.Duration, ip addr.IPv4) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rep == nil {
		return 0
	}
	return e.rep.Score(e.at(now), ip)
}
