// Package policy is the pre-trust connection policy engine: a pluggable
// verdict pipeline evaluated per connection and per MAIL FROM / RCPT TO,
// before the server commits an smtpd worker to the client.
//
// The paper's fork-after-trust architecture (§5) moves the *resource
// commitment* after the first valid RCPT; this package moves the
// *admission decision* even earlier, to the front of both architectures,
// following the aggregated-history line of work (Menahem & Puzis; Pour et
// al., PAPERS.md): cheap per-source state — rates, retry behaviour,
// bounce/blacklist history — separates spam sources before any dialog
// work is done. The hybrid master consults the engine inside its event
// loop, so a rejected connection never costs a worker, extending the
// paper's thesis from bounces to policy rejects.
//
// The pipeline composes four checkers:
//
//   - token-bucket rate limiters per client IP and per /25 prefix
//     (internal/addr prefix math), applied to connections and to MAIL
//     transactions;
//   - a greylist keyed on (client /24, sender, recipient) with a
//     configurable retry window;
//   - an aggregated historical reputation store: exponentially decayed
//     scores of bounces, rejected RCPTs, and DNSBL hits per IP and per
//     /25 prefix;
//   - a concurrent multi-DNSBL scorer (Scorer) fanning out to several
//     internal/dnsbl clients with early exit once a score threshold is
//     crossed.
//
// The Engine itself is clock-agnostic: every method takes "now" as an
// offset on the caller's clock, so the same engine runs under the
// discrete-event simulator's virtual time (internal/simmail) and under
// the wall clock (ServerPolicy adapts it for internal/smtpserver).
package policy

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/addr"
)

// Verdict is the outcome of a policy evaluation.
type Verdict int

// The three verdicts, ordered by severity.
const (
	// Allow admits the connection or command.
	Allow Verdict = iota
	// Tempfail asks the client to retry later (SMTP 4xx): greylisting,
	// rate limiting, and borderline reputation.
	Tempfail
	// Reject refuses permanently (SMTP 5xx): blacklisted or
	// reputation-condemned sources.
	Reject
)

// String names the verdict for reports.
func (v Verdict) String() string {
	switch v {
	case Allow:
		return "allow"
	case Tempfail:
		return "tempfail"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Decision is one verdict with its provenance.
type Decision struct {
	Verdict Verdict
	// Checker names the checker that decided ("rate", "greylist",
	// "reputation", "dnsbl"); empty for Allow.
	Checker string
	// Reason is a human-readable explanation suitable for an SMTP reply.
	Reason string
}

// allowed is the zero Decision.
var allowed = Decision{}

// Config assembles an Engine. Nil sections disable their checker; the
// zero Config allows everything.
type Config struct {
	// Rate enables the token-bucket rate limiters.
	Rate *RateConfig
	// Greylist enables greylisting of first-contact delivery attempts.
	Greylist *GreyConfig
	// Reputation enables the aggregated historical reputation store.
	Reputation *ReputationConfig
	// DNSBLReject rejects a connection whose DNSBL score (passed to
	// Admit by the caller, typically from a Scorer) reaches this
	// threshold. 0 disables the check.
	DNSBLReject float64
	// DNSBLTempfail tempfails below DNSBLReject but at or above this
	// threshold. 0 disables.
	DNSBLTempfail float64
}

// Stats is a snapshot of the engine's verdict counters, by stage.
type Stats struct {
	ConnAllowed    int64 // connections admitted
	ConnTempfailed int64 // connections tempfailed (rate / reputation / dnsbl)
	ConnRejected   int64 // connections rejected (reputation / dnsbl)
	MailTempfailed int64 // MAIL FROM transactions tempfailed (rate)
	RcptGreylisted int64 // RCPT TO attempts tempfailed by the greylist
	RcptAllowed    int64 // RCPT TO attempts passed by the greylist
	BouncesSeen    int64 // bounce connections fed to the reputation store
	RejectsSeen    int64 // rejected RCPTs fed to the reputation store
	DNSBLHitsSeen  int64 // DNSBL hits fed to the reputation store
}

// Engine evaluates the policy pipeline. It is safe for concurrent use;
// under the simulator it is driven single-threaded on virtual time.
type Engine struct {
	mu   sync.Mutex
	cfg  Config
	rate *rateLimiter
	grey *greylist
	rep  *reputation
	st   Stats
}

// NewEngine builds an engine from cfg.
func NewEngine(cfg Config) *Engine {
	e := &Engine{cfg: cfg}
	if cfg.Rate != nil {
		e.rate = newRateLimiter(*cfg.Rate)
	}
	if cfg.Greylist != nil {
		e.grey = newGreylist(*cfg.Greylist)
	}
	if cfg.Reputation != nil {
		e.rep = newReputation(*cfg.Reputation)
	}
	return e
}

// Stats returns a snapshot of the verdict counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.st
}

// Admit evaluates connection admission at time now: reputation first
// (cheapest evidence), then rate limits, then the caller-supplied DNSBL
// score (0 when no lookup ran). A non-zero score is also recorded as
// reputation evidence, so repeat offenders are condemned from history
// even when later lookups are skipped.
//
// ctx is the connection's evaluation context, plumbed end to end from
// the accept path through the DNSBL resolvers; a cancelled context fails
// open (Allow) without touching any checker state, since the connection
// is already gone.
func (e *Engine) Admit(ctx context.Context, now time.Duration, ip addr.IPv4, dnsblScore float64) Decision {
	if ctx.Err() != nil {
		return allowed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	d := e.admitLocked(now, ip, dnsblScore)
	switch d.Verdict {
	case Reject:
		e.st.ConnRejected++
	case Tempfail:
		e.st.ConnTempfailed++
	default:
		e.st.ConnAllowed++
	}
	return d
}

func (e *Engine) admitLocked(now time.Duration, ip addr.IPv4, dnsblScore float64) Decision {
	// Reputation is judged on *historical* evidence only; this visit's
	// DNSBL hit is recorded afterwards, condemning the next visit.
	var rep Decision
	if e.rep != nil {
		rep = e.rep.check(now, ip)
	}
	if dnsblScore > 0 && e.rep != nil {
		e.st.DNSBLHitsSeen++
		e.rep.recordDNSBLHit(now, ip)
	}
	if rep.Verdict != Allow {
		return rep
	}
	if e.rate != nil {
		if d := e.rate.takeConn(now, ip); d.Verdict != Allow {
			return d
		}
	}
	if e.cfg.DNSBLReject > 0 && dnsblScore >= e.cfg.DNSBLReject {
		return Decision{Reject, "dnsbl", fmt.Sprintf("listed by DNSBLs (score %.1f)", dnsblScore)}
	}
	if e.cfg.DNSBLTempfail > 0 && dnsblScore >= e.cfg.DNSBLTempfail {
		return Decision{Tempfail, "dnsbl", fmt.Sprintf("deferred on DNSBL evidence (score %.1f)", dnsblScore)}
	}
	return allowed
}

// Mail evaluates one MAIL FROM transaction: the per-IP message-rate
// bucket, throttling sources that pipeline many transactions through few
// connections. A cancelled ctx fails open.
func (e *Engine) Mail(ctx context.Context, now time.Duration, ip addr.IPv4, sender string) Decision {
	if ctx.Err() != nil {
		return allowed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rate != nil {
		if d := e.rate.takeMail(now, ip); d.Verdict != Allow {
			e.st.MailTempfailed++
			return d
		}
	}
	return allowed
}

// Rcpt evaluates one otherwise-valid RCPT TO through the greylist.
// Invalid recipients never reach here — they draw 550 from the access
// database and are fed to the reputation store via RecordRejectedRcpt.
// A cancelled ctx fails open.
func (e *Engine) Rcpt(ctx context.Context, now time.Duration, ip addr.IPv4, sender, rcpt string) Decision {
	if ctx.Err() != nil {
		return allowed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.grey != nil {
		if d := e.grey.check(now, ip, sender, rcpt); d.Verdict != Allow {
			e.st.RcptGreylisted++
			return d
		}
	}
	e.st.RcptAllowed++
	return allowed
}

// RecordRejectedRcpt feeds one 550-rejected recipient (a §4.1 bounce
// signal) into the reputation store.
func (e *Engine) RecordRejectedRcpt(now time.Duration, ip addr.IPv4) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.st.RejectsSeen++
	if e.rep != nil {
		e.rep.recordRejectedRcpt(now, ip)
	}
}

// RecordBounce feeds one completed bounce connection (no recipient was
// valid) into the reputation store.
func (e *Engine) RecordBounce(now time.Duration, ip addr.IPv4) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.st.BouncesSeen++
	if e.rep != nil {
		e.rep.recordBounce(now, ip)
	}
}

// Score returns the current combined reputation score for ip, for
// observability (0 when the reputation checker is disabled).
func (e *Engine) Score(now time.Duration, ip addr.IPv4) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rep == nil {
		return 0
	}
	return e.rep.score(now, ip)
}
