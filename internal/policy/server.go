package policy

import (
	"context"
	"time"

	"repro/internal/addr"
	"repro/internal/eventlog"
	"repro/internal/metrics"
)

// ServerPolicy adapts the clock-agnostic Engine (plus an optional
// concurrent Scorer) to the real servers: string client addresses and
// the wall clock. internal/smtpserver consults it at accept time and on
// each MAIL/RCPT; internal/simmail drives the Engine directly on
// virtual time instead.
type ServerPolicy struct {
	eng    *Engine
	scorer *Scorer
	epoch  time.Time
	clock  func() time.Time
	nowFn  func() time.Duration

	reg          *metrics.Registry
	events       *eventlog.Log
	admitLatency *metrics.Sample // Connect wall time in seconds (includes DNSBL scan)
	scanCheck    *metrics.Histogram
	admitCheck   *metrics.Histogram
}

// ServerPolicyOption configures a ServerPolicy (see NewServerPolicy).
type ServerPolicyOption func(*ServerPolicy)

// WithRegistry directs the policy's metrics — the policy_admit_seconds
// summary and the per-check policy_check_seconds{check} histograms —
// into r. The default is a private registry.
func WithRegistry(r *metrics.Registry) ServerPolicyOption {
	return func(p *ServerPolicy) { p.reg = r }
}

// WithEventLog emits a policy.connect debug event per admission —
// source, DNSBL score, verdict with the deciding checker and reason,
// and the scan + admit wall time — into log. Nil disables emission (the
// default).
func WithEventLog(log *eventlog.Log) ServerPolicyOption {
	return func(p *ServerPolicy) { p.events = log }
}

// WithClock drives the policy off an injected absolute clock instead of
// the process start time: offsets handed to the Engine become
// now().Sub(eng.Epoch()), so store timestamps are real instants on the
// injected clock — deterministic in tests, and comparable across nodes
// whose engines share an epoch (the gossip layer requires this).
func WithClock(now func() time.Time) ServerPolicyOption {
	return func(p *ServerPolicy) { p.clock = now }
}

// NewServerPolicy wraps eng for wall-clock use; scorer may be nil when
// no DNSBLs are consulted.
func NewServerPolicy(eng *Engine, scorer *Scorer, opts ...ServerPolicyOption) *ServerPolicy {
	p := &ServerPolicy{
		eng:    eng,
		scorer: scorer,
		epoch:  time.Now(),
	}
	for _, o := range opts {
		o(p)
	}
	if p.reg == nil {
		p.reg = metrics.NewRegistry()
	}
	p.admitLatency = p.reg.Sample("policy_admit_seconds")
	p.scanCheck = p.reg.Histogram("policy_check_seconds", metrics.LatencyBounds(), "check", "dnsbl_scan")
	p.admitCheck = p.reg.Histogram("policy_check_seconds", metrics.LatencyBounds(), "check", "admit")
	if p.clock != nil {
		p.nowFn = func() time.Duration { return p.clock().Sub(eng.Epoch()) }
	} else {
		p.nowFn = func() time.Duration { return time.Since(p.epoch) }
	}
	return p
}

// Registry returns the registry holding the policy's metrics.
func (p *ServerPolicy) Registry() *metrics.Registry { return p.reg }

// withNow overrides the clock, for tests.
func (p *ServerPolicy) withNow(now func() time.Duration) *ServerPolicy {
	p.nowFn = now
	return p
}

// parse returns the client IP, failing open (allow, zero IP) on
// non-IPv4 peers so an exotic address never blocks mail.
func parse(ipStr string) (addr.IPv4, bool) {
	ip, err := addr.ParseIPv4(ipStr)
	return ip, err == nil
}

// Connect evaluates connection admission for a client address: the
// DNSBL scan (when configured) followed by Engine.Admit. ctx is the
// connection's context; the scorer bounds the scan by ctx's deadline, or
// its own timeout when ctx has none.
func (p *ServerPolicy) Connect(ctx context.Context, ipStr string) Decision {
	ip, ok := parse(ipStr)
	if !ok {
		return allowed
	}
	start := time.Now()
	var score float64
	if p.scorer != nil {
		score = p.scorer.Score(ctx, ip)
		p.scanCheck.ObserveDuration(time.Since(start))
	}
	admitStart := time.Now()
	d := p.eng.Admit(ctx, p.nowFn(), ip, score)
	end := time.Now()
	p.admitCheck.ObserveDuration(end.Sub(admitStart))
	p.admitLatency.Observe(end.Sub(start).Seconds())
	p.events.Debug("policy.connect", 0,
		eventlog.IP("ip", ip),
		eventlog.Float("score", score),
		eventlog.Str("verdict", d.Verdict.String()),
		eventlog.Str("checker", d.Checker),
		eventlog.Str("reason", d.Reason),
		eventlog.Dur("took", end.Sub(start)),
	)
	return d
}

// Mail evaluates one MAIL FROM transaction.
func (p *ServerPolicy) Mail(ctx context.Context, ipStr, sender string) Decision {
	ip, ok := parse(ipStr)
	if !ok {
		return allowed
	}
	return p.eng.Mail(ctx, p.nowFn(), ip, sender)
}

// Rcpt evaluates one otherwise-valid RCPT TO.
func (p *ServerPolicy) Rcpt(ctx context.Context, ipStr, sender, rcpt string) Decision {
	ip, ok := parse(ipStr)
	if !ok {
		return allowed
	}
	return p.eng.Rcpt(ctx, p.nowFn(), ip, sender, rcpt)
}

// RecordRejectedRcpt feeds one 550-rejected recipient into the
// reputation store.
func (p *ServerPolicy) RecordRejectedRcpt(ipStr string) {
	if ip, ok := parse(ipStr); ok {
		p.eng.RecordRejectedRcpt(p.nowFn(), ip)
	}
}

// RecordBounce feeds one completed bounce connection into the
// reputation store.
func (p *ServerPolicy) RecordBounce(ipStr string) {
	if ip, ok := parse(ipStr); ok {
		p.eng.RecordBounce(p.nowFn(), ip)
	}
}

// Stats returns the engine's verdict counters.
func (p *ServerPolicy) Stats() Stats { return p.eng.Stats() }

// ScorerStats returns the DNSBL scan counters (zero when no scorer).
func (p *ServerPolicy) ScorerStats() ScorerStats {
	if p.scorer == nil {
		return ScorerStats{}
	}
	return p.scorer.Stats()
}

// AdmitLatencyQuantile returns the q-quantile of Connect wall time in
// seconds — the pre-trust latency the engine adds to every accept.
func (p *ServerPolicy) AdmitLatencyQuantile(q float64) float64 {
	return p.admitLatency.Quantile(q)
}
