package policy

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/addr"
)

// ReputationConfig parameterizes the aggregated historical reputation
// store: exponentially decayed per-source event scores, the
// aggregated-historical-data idea of Menahem & Puzis applied at two
// aggregation levels (exact IP and /25 prefix).
type ReputationConfig struct {
	// HalfLife is the score decay half-life (default 1 h): an event's
	// weight halves every HalfLife of (virtual or wall) clock.
	HalfLife time.Duration
	// BounceWeight, RejectWeight, and DNSBLWeight are the per-event
	// score increments (defaults 1.0, 0.3, 2.0). Rejected RCPTs weigh
	// less than whole bounce connections because one bounce connection
	// typically carries several of them.
	BounceWeight float64
	RejectWeight float64
	DNSBLWeight  float64
	// PrefixFactor scales the /25-prefix score's contribution to the
	// combined score (default 0.5): neighbourhood history matters, but
	// less than the exact address's own record.
	PrefixFactor float64
	// TempfailScore and RejectScore are the combined-score thresholds
	// (defaults 4 and 8).
	TempfailScore float64
	RejectScore   float64
	// MaxEntries softly caps tracked sources per map (default 1<<17);
	// only fully decayed entries are evicted.
	MaxEntries int
}

func (c ReputationConfig) withDefaults() ReputationConfig {
	if c.HalfLife <= 0 {
		c.HalfLife = time.Hour
	}
	if c.BounceWeight == 0 {
		c.BounceWeight = 1.0
	}
	if c.RejectWeight == 0 {
		c.RejectWeight = 0.3
	}
	if c.DNSBLWeight == 0 {
		c.DNSBLWeight = 2.0
	}
	if c.PrefixFactor == 0 {
		c.PrefixFactor = 0.5
	}
	if c.TempfailScore == 0 {
		c.TempfailScore = 4
	}
	if c.RejectScore == 0 {
		c.RejectScore = 8
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 1 << 17
	}
	return c
}

// ewma is one decayed score: value as of last.
type ewma struct {
	value float64
	last  time.Time
}

// decayed returns the score decayed to at.
func (e *ewma) decayed(at time.Time, halfLife time.Duration) float64 {
	if !at.After(e.last) {
		return e.value
	}
	return e.value * math.Exp2(-float64(at.Sub(e.last))/float64(halfLife))
}

// add decays to at and adds w.
func (e *ewma) add(at time.Time, halfLife time.Duration, w float64) {
	e.value = e.decayed(at, halfLife)
	if at.After(e.last) {
		e.last = at
	}
	e.value += w
}

// Reputation is the two-level decayed score store. It implements
// ReputationStore and ReputationSync and is safe for concurrent use, so
// several front ends — or a front end plus a gossip loop — can share
// one instance.
type Reputation struct {
	cfg    ReputationConfig
	mu     sync.Mutex
	byIP   map[addr.IPv4]*ewma
	byPref map[addr.Prefix]*ewma
}

// NewReputation builds a reputation store from cfg.
func NewReputation(cfg ReputationConfig) *Reputation {
	return &Reputation{
		cfg:    cfg.withDefaults(),
		byIP:   make(map[addr.IPv4]*ewma),
		byPref: make(map[addr.Prefix]*ewma),
	}
}

// RecordBounce implements ReputationStore.
func (r *Reputation) RecordBounce(at time.Time, ip addr.IPv4) {
	r.record(at, ip, r.cfg.BounceWeight)
}

// RecordRejectedRcpt implements ReputationStore.
func (r *Reputation) RecordRejectedRcpt(at time.Time, ip addr.IPv4) {
	r.record(at, ip, r.cfg.RejectWeight)
}

// RecordDNSBLHit implements ReputationStore.
func (r *Reputation) RecordDNSBLHit(at time.Time, ip addr.IPv4) {
	r.record(at, ip, r.cfg.DNSBLWeight)
}

func (r *Reputation) record(at time.Time, ip addr.IPv4, w float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ipE, ok := r.byIP[ip]
	if !ok {
		if len(r.byIP) >= r.cfg.MaxEntries {
			sweepEwma(r.byIP, at, r.cfg.HalfLife)
		}
		ipE = &ewma{last: at}
		r.byIP[ip] = ipE
	}
	ipE.add(at, r.cfg.HalfLife, w)

	pref := ip.Prefix25()
	prefE, ok := r.byPref[pref]
	if !ok {
		if len(r.byPref) >= r.cfg.MaxEntries {
			sweepEwma(r.byPref, at, r.cfg.HalfLife)
		}
		prefE = &ewma{last: at}
		r.byPref[pref] = prefE
	}
	prefE.add(at, r.cfg.HalfLife, w)
}

// Score implements ReputationStore: the combined decayed score — the
// exact IP's history plus a fraction of its /25 neighbourhood's.
func (r *Reputation) Score(at time.Time, ip addr.IPv4) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scoreLocked(at, ip)
}

func (r *Reputation) scoreLocked(at time.Time, ip addr.IPv4) float64 {
	var s float64
	if e, ok := r.byIP[ip]; ok {
		s += e.decayed(at, r.cfg.HalfLife)
	}
	if e, ok := r.byPref[ip.Prefix25()]; ok {
		s += r.cfg.PrefixFactor * e.decayed(at, r.cfg.HalfLife)
	}
	return s
}

// Check implements ReputationStore.
func (r *Reputation) Check(at time.Time, ip addr.IPv4) Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.scoreLocked(at, ip)
	switch {
	case s >= r.cfg.RejectScore:
		return Decision{Reject, "reputation", fmt.Sprintf("poor sending history (score %.1f)", s)}
	case s >= r.cfg.TempfailScore:
		return Decision{Tempfail, "reputation", fmt.Sprintf("deferred on sending history (score %.1f)", s)}
	}
	return allowed
}

// Delta implements ReputationSync: every entry whose last update is at
// or after since. A zero since returns the full snapshot.
func (r *Reputation) Delta(since time.Time) []RepEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []RepEntry
	for ip, e := range r.byIP {
		if !e.last.Before(since) {
			out = append(out, RepEntry{Key: ip.String(), Value: e.value, Last: e.last})
		}
	}
	for p, e := range r.byPref {
		if !e.last.Before(since) {
			out = append(out, RepEntry{Key: p.String(), Value: e.value, Last: e.last})
		}
	}
	return out
}

// Merge implements ReputationSync. For each remote entry, both the local
// and remote scores are decayed to the later of the two stamps; the
// larger decayed score wins and is stored with the winner's stamp
// untouched. Because EWMA decay commutes with the max — decaying both
// operands by the same interval preserves their order — this merge is
// commutative, associative, and idempotent (a max-CRDT under decay), so
// overlapping or repeated gossip rounds converge without inflating
// scores. The cost is that the merged view is a lower bound on the sum
// of what both nodes observed; DESIGN.md discusses why that is the safe
// direction for an admission signal. Returns how many entries changed
// local state.
func (r *Reputation) Merge(entries []RepEntry) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	changed := 0
	for _, re := range entries {
		var slot *ewma
		if strings.ContainsRune(re.Key, '/') {
			pref, ok := parsePrefixKey(re.Key)
			if !ok {
				continue
			}
			e, ok := r.byPref[pref]
			if !ok {
				if len(r.byPref) >= r.cfg.MaxEntries {
					sweepEwma(r.byPref, re.Last, r.cfg.HalfLife)
				}
				e = &ewma{}
				r.byPref[pref] = e
			}
			slot = e
		} else {
			ip, err := addr.ParseIPv4(re.Key)
			if err != nil {
				continue
			}
			e, ok := r.byIP[ip]
			if !ok {
				if len(r.byIP) >= r.cfg.MaxEntries {
					sweepEwma(r.byIP, re.Last, r.cfg.HalfLife)
				}
				e = &ewma{}
				r.byIP[ip] = e
			}
			slot = e
		}
		ref := slot.last
		if re.Last.After(ref) {
			ref = re.Last
		}
		local := slot.decayed(ref, r.cfg.HalfLife)
		remote := remoteDecayed(re, ref, r.cfg.HalfLife)
		if remote > local {
			slot.value = re.Value
			slot.last = re.Last
			changed++
		}
	}
	return changed
}

func remoteDecayed(re RepEntry, at time.Time, halfLife time.Duration) float64 {
	if !at.After(re.Last) {
		return re.Value
	}
	return re.Value * math.Exp2(-float64(at.Sub(re.Last))/float64(halfLife))
}

func parsePrefixKey(key string) (addr.Prefix, bool) {
	slash := strings.IndexByte(key, '/')
	if slash < 0 {
		return addr.Prefix{}, false
	}
	ip, err := addr.ParseIPv4(key[:slash])
	if err != nil {
		return addr.Prefix{}, false
	}
	bits, err := strconv.Atoi(key[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return addr.Prefix{}, false
	}
	return ip.PrefixN(bits), true
}

// negligibleScore is the decayed value below which an entry is
// indistinguishable from absent.
const negligibleScore = 1e-3

func sweepEwma[K comparable](m map[K]*ewma, at time.Time, halfLife time.Duration) {
	for k, e := range m {
		if e.decayed(at, halfLife) < negligibleScore {
			delete(m, k)
		}
	}
}
