package policy

import (
	"fmt"
	"math"
	"time"

	"repro/internal/addr"
)

// ReputationConfig parameterizes the aggregated historical reputation
// store: exponentially decayed per-source event scores, the
// aggregated-historical-data idea of Menahem & Puzis applied at two
// aggregation levels (exact IP and /25 prefix).
type ReputationConfig struct {
	// HalfLife is the score decay half-life (default 1 h): an event's
	// weight halves every HalfLife of (virtual or wall) clock.
	HalfLife time.Duration
	// BounceWeight, RejectWeight, and DNSBLWeight are the per-event
	// score increments (defaults 1.0, 0.3, 2.0). Rejected RCPTs weigh
	// less than whole bounce connections because one bounce connection
	// typically carries several of them.
	BounceWeight float64
	RejectWeight float64
	DNSBLWeight  float64
	// PrefixFactor scales the /25-prefix score's contribution to the
	// combined score (default 0.5): neighbourhood history matters, but
	// less than the exact address's own record.
	PrefixFactor float64
	// TempfailScore and RejectScore are the combined-score thresholds
	// (defaults 4 and 8).
	TempfailScore float64
	RejectScore   float64
	// MaxEntries softly caps tracked sources per map (default 1<<17);
	// only fully decayed entries are evicted.
	MaxEntries int
}

func (c ReputationConfig) withDefaults() ReputationConfig {
	if c.HalfLife <= 0 {
		c.HalfLife = time.Hour
	}
	if c.BounceWeight == 0 {
		c.BounceWeight = 1.0
	}
	if c.RejectWeight == 0 {
		c.RejectWeight = 0.3
	}
	if c.DNSBLWeight == 0 {
		c.DNSBLWeight = 2.0
	}
	if c.PrefixFactor == 0 {
		c.PrefixFactor = 0.5
	}
	if c.TempfailScore == 0 {
		c.TempfailScore = 4
	}
	if c.RejectScore == 0 {
		c.RejectScore = 8
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 1 << 17
	}
	return c
}

// ewma is one decayed score: value as of last.
type ewma struct {
	value float64
	last  time.Duration
}

// decayed returns the score decayed to now.
func (e *ewma) decayed(now time.Duration, halfLife time.Duration) float64 {
	if now <= e.last {
		return e.value
	}
	return e.value * math.Exp2(-float64(now-e.last)/float64(halfLife))
}

// add decays to now and adds w.
func (e *ewma) add(now time.Duration, halfLife time.Duration, w float64) {
	e.value = e.decayed(now, halfLife)
	if now > e.last {
		e.last = now
	}
	e.value += w
}

// reputation is the two-level decayed score store.
type reputation struct {
	cfg    ReputationConfig
	byIP   map[addr.IPv4]*ewma
	byPref map[addr.Prefix]*ewma
}

func newReputation(cfg ReputationConfig) *reputation {
	return &reputation{
		cfg:    cfg.withDefaults(),
		byIP:   make(map[addr.IPv4]*ewma),
		byPref: make(map[addr.Prefix]*ewma),
	}
}

func (r *reputation) recordBounce(now time.Duration, ip addr.IPv4) {
	r.add(now, ip, r.cfg.BounceWeight)
}

func (r *reputation) recordRejectedRcpt(now time.Duration, ip addr.IPv4) {
	r.add(now, ip, r.cfg.RejectWeight)
}

func (r *reputation) recordDNSBLHit(now time.Duration, ip addr.IPv4) {
	r.add(now, ip, r.cfg.DNSBLWeight)
}

func (r *reputation) add(now time.Duration, ip addr.IPv4, w float64) {
	ipE, ok := r.byIP[ip]
	if !ok {
		if len(r.byIP) >= r.cfg.MaxEntries {
			sweepEwma(r.byIP, now, r.cfg.HalfLife)
		}
		ipE = &ewma{last: now}
		r.byIP[ip] = ipE
	}
	ipE.add(now, r.cfg.HalfLife, w)

	pref := ip.Prefix25()
	prefE, ok := r.byPref[pref]
	if !ok {
		if len(r.byPref) >= r.cfg.MaxEntries {
			sweepEwma(r.byPref, now, r.cfg.HalfLife)
		}
		prefE = &ewma{last: now}
		r.byPref[pref] = prefE
	}
	prefE.add(now, r.cfg.HalfLife, w)
}

// score returns the combined decayed score: exact-IP history plus a
// fraction of the /25 neighbourhood's.
func (r *reputation) score(now time.Duration, ip addr.IPv4) float64 {
	var s float64
	if e, ok := r.byIP[ip]; ok {
		s += e.decayed(now, r.cfg.HalfLife)
	}
	if e, ok := r.byPref[ip.Prefix25()]; ok {
		s += r.cfg.PrefixFactor * e.decayed(now, r.cfg.HalfLife)
	}
	return s
}

func (r *reputation) check(now time.Duration, ip addr.IPv4) Decision {
	s := r.score(now, ip)
	switch {
	case s >= r.cfg.RejectScore:
		return Decision{Reject, "reputation", fmt.Sprintf("poor sending history (score %.1f)", s)}
	case s >= r.cfg.TempfailScore:
		return Decision{Tempfail, "reputation", fmt.Sprintf("deferred on sending history (score %.1f)", s)}
	}
	return allowed
}

// negligibleScore is the decayed value below which an entry is
// indistinguishable from absent.
const negligibleScore = 1e-3

func sweepEwma[K comparable](m map[K]*ewma, now time.Duration, halfLife time.Duration) {
	for k, e := range m {
		if e.decayed(now, halfLife) < negligibleScore {
			delete(m, k)
		}
	}
}
