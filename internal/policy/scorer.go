package policy

import (
	"context"
	"time"

	"repro/internal/addr"
	"repro/internal/costmodel"
	"repro/internal/dnsbl"
	"repro/internal/metrics"
)

// List is one DNSBL consulted by the scorer.
type List struct {
	// Name identifies the list in stats (typically the zone).
	Name string
	// Resolver performs the lookups: a *dnsbl.Client (classic per-IP or
	// prefix-cached DNSBLv6, over any dns.Transport) or any stub
	// implementing dnsbl.Resolver.
	Resolver dnsbl.Resolver
	// Weight is the score a listing on this list contributes (default 1).
	Weight float64
}

// scorerConfig collects the scorer's tunables.
type scorerConfig struct {
	lists     []List
	registry  *metrics.Registry
	threshold float64
	timeout   time.Duration
}

// ScorerOption configures a Scorer (see NewScorer).
type ScorerOption func(*scorerConfig)

// WithLists appends blacklists for the scorer to consult.
func WithLists(lists ...List) ScorerOption {
	return func(c *scorerConfig) { c.lists = append(c.lists, lists...) }
}

// WithThreshold stops a scan early once the accumulated score reaches
// threshold — slower lists are never waited on when faster ones have
// already condemned the source. 0 (the default) waits for every list.
func WithThreshold(threshold float64) ScorerOption {
	return func(c *scorerConfig) { c.threshold = threshold }
}

// WithScanTimeout bounds the whole scan when the caller's context
// carries no deadline (default costmodel.DNSBLTimeout). Lists that miss
// the deadline contribute 0 — the scorer fails open, like the paper's
// servers: a DNSBL outage must not stop mail.
func WithScanTimeout(d time.Duration) ScorerOption {
	return func(c *scorerConfig) { c.timeout = d }
}

// WithScorerRegistry directs the scorer's metrics (scan counters and
// the policy_scan_seconds latency sample) into r. The default is a
// private registry.
func WithScorerRegistry(r *metrics.Registry) ScorerOption {
	return func(c *scorerConfig) { c.registry = r }
}

// Scorer fans one IP out to several DNSBLs concurrently and accumulates
// a weighted listing score, exiting early once the threshold is crossed
// (Figure 5 shows 16–50% of single-list queries exceeding 100 ms, so
// serial consultation of several lists is untenable in an accept path).
// It is safe for concurrent use.
type Scorer struct {
	cfg scorerConfig
	reg *metrics.Registry

	scans   *metrics.Counter
	hits    *metrics.Counter // scans with score > 0
	early   *metrics.Counter // scans that exited before every list answered
	latency *metrics.Sample  // scan wall time in seconds
}

// NewScorer returns a scorer over the lists given via WithLists.
func NewScorer(opts ...ScorerOption) *Scorer {
	var cfg scorerConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.timeout <= 0 {
		cfg.timeout = costmodel.DNSBLTimeout
	}
	for i := range cfg.lists {
		if cfg.lists[i].Weight == 0 {
			cfg.lists[i].Weight = 1
		}
	}
	reg := cfg.registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Scorer{
		cfg:     cfg,
		reg:     reg,
		scans:   reg.Counter("policy_scans_total"),
		hits:    reg.Counter("policy_scan_hits_total"),
		early:   reg.Counter("policy_scan_early_exits_total"),
		latency: reg.Sample("policy_scan_seconds"),
	}
}

// Registry returns the registry holding the scorer's metrics.
func (s *Scorer) Registry() *metrics.Registry { return s.reg }

// listVote is one list's contribution to a scan.
type listVote struct {
	weight float64
	listed bool
}

// Score looks ip up on every configured list concurrently and returns
// the accumulated weight of the lists that answered "listed" before the
// scan ended (early exit, ctx expiry, or the scan timeout). The scan
// context is cancelled as soon as the scan ends, so abandoned lookups
// stop retrying and hedging immediately. Lookup errors score 0.
func (s *Scorer) Score(ctx context.Context, ip addr.IPv4) float64 {
	if len(s.cfg.lists) == 0 {
		return 0
	}
	start := time.Now()
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.timeout)
		defer cancel()
	} else {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	votes := make(chan listVote, len(s.cfg.lists))
	for _, l := range s.cfg.lists {
		go func(l List) {
			res, err := l.Resolver.Lookup(ctx, ip)
			votes <- listVote{weight: l.Weight, listed: err == nil && res.Listed}
		}(l)
	}
	var score float64
	answered := 0
scan:
	for answered < len(s.cfg.lists) {
		select {
		case v := <-votes:
			answered++
			if v.listed {
				score += v.weight
				if s.cfg.threshold > 0 && score >= s.cfg.threshold {
					break scan
				}
			}
		case <-ctx.Done():
			break scan
		}
	}
	if answered < len(s.cfg.lists) {
		s.early.Inc()
	}
	s.scans.Inc()
	if score > 0 {
		s.hits.Inc()
	}
	s.latency.Observe(time.Since(start).Seconds())
	return score
}

// ScorerStats is a snapshot of scan activity.
type ScorerStats struct {
	Scans      int64
	Hits       int64
	EarlyExits int64
	// P50 and P99 are scan wall-time quantiles in seconds.
	P50, P99 float64
}

// Stats returns a snapshot of the scorer's counters and latencies.
func (s *Scorer) Stats() ScorerStats {
	return ScorerStats{
		Scans:      s.scans.Value(),
		Hits:       s.hits.Value(),
		EarlyExits: s.early.Value(),
		P50:        s.latency.Quantile(0.5),
		P99:        s.latency.Quantile(0.99),
	}
}
