package policy

import (
	"fmt"
	"time"

	"repro/internal/addr"
)

// GreyConfig parameterizes the greylist.
type GreyConfig struct {
	// MinRetry is the earliest retry the greylist accepts after first
	// contact (default 1 minute). Legitimate MTAs queue and retry;
	// fire-and-forget spamware does not.
	MinRetry time.Duration
	// MaxValid is the latest acceptable retry after first contact
	// (default 24 h); a retry beyond it restarts the window.
	MaxValid time.Duration
	// WhitelistTTL is how long a tuple that passed stays whitelisted
	// (default 36 h), refreshed on every accepted delivery.
	WhitelistTTL time.Duration
	// MaxEntries softly caps tracked tuples (default 1<<17); only
	// expired entries are evicted, so the cap never changes verdicts.
	MaxEntries int
}

func (c GreyConfig) withDefaults() GreyConfig {
	if c.MinRetry <= 0 {
		c.MinRetry = time.Minute
	}
	if c.MaxValid <= 0 {
		c.MaxValid = 24 * time.Hour
	}
	if c.WhitelistTTL <= 0 {
		c.WhitelistTTL = 36 * time.Hour
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 1 << 17
	}
	return c
}

// greyEntry tracks one (client /24, sender, recipient) tuple.
type greyEntry struct {
	firstSeen time.Duration
	passed    bool
	expiry    time.Duration // whitelist expiry when passed
}

// greylist keys on the client's /24 rather than the exact IP so a
// legitimate server farm retrying from a sibling address still matches —
// the same granularity at which the paper observes source locality
// (Figure 13).
type greylist struct {
	cfg     GreyConfig
	entries map[string]*greyEntry
}

func newGreylist(cfg GreyConfig) *greylist {
	return &greylist{cfg: cfg.withDefaults(), entries: make(map[string]*greyEntry)}
}

func greyKey(ip addr.IPv4, sender, rcpt string) string {
	return fmt.Sprintf("%s|%s|%s", ip.Prefix24(), sender, rcpt)
}

func (g *greylist) check(now time.Duration, ip addr.IPv4, sender, rcpt string) Decision {
	key := greyKey(ip, sender, rcpt)
	e, ok := g.entries[key]
	if !ok {
		if len(g.entries) >= g.cfg.MaxEntries {
			g.sweep(now)
		}
		g.entries[key] = &greyEntry{firstSeen: now}
		return Decision{Tempfail, "greylist", "greylisted, please retry later"}
	}
	if e.passed {
		if now < e.expiry {
			e.expiry = now + g.cfg.WhitelistTTL
			return allowed
		}
		// Whitelist expired: restart the window.
		*e = greyEntry{firstSeen: now}
		return Decision{Tempfail, "greylist", "greylisted, please retry later"}
	}
	age := now - e.firstSeen
	switch {
	case age < g.cfg.MinRetry:
		return Decision{Tempfail, "greylist", "greylisted, retried too soon"}
	case age <= g.cfg.MaxValid:
		e.passed = true
		e.expiry = now + g.cfg.WhitelistTTL
		return allowed
	default:
		e.firstSeen = now
		return Decision{Tempfail, "greylist", "greylisted, please retry later"}
	}
}

// sweep drops entries that no longer influence any verdict: expired
// whitelistings and pending entries past their retry window.
func (g *greylist) sweep(now time.Duration) {
	for k, e := range g.entries {
		if e.passed && now >= e.expiry {
			delete(g.entries, k)
		}
		if !e.passed && now-e.firstSeen > g.cfg.MaxValid {
			delete(g.entries, k)
		}
	}
}
