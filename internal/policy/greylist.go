package policy

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/addr"
)

// GreyConfig parameterizes the greylist.
type GreyConfig struct {
	// MinRetry is the earliest retry the greylist accepts after first
	// contact (default 1 minute). Legitimate MTAs queue and retry;
	// fire-and-forget spamware does not.
	MinRetry time.Duration
	// MaxValid is the latest acceptable retry after first contact
	// (default 24 h); a retry beyond it restarts the window.
	MaxValid time.Duration
	// WhitelistTTL is how long a tuple that passed stays whitelisted
	// (default 36 h), refreshed on every accepted delivery.
	WhitelistTTL time.Duration
	// MaxEntries softly caps tracked tuples (default 1<<17); only
	// expired entries are evicted, so the cap never changes verdicts.
	MaxEntries int
}

func (c GreyConfig) withDefaults() GreyConfig {
	if c.MinRetry <= 0 {
		c.MinRetry = time.Minute
	}
	if c.MaxValid <= 0 {
		c.MaxValid = 24 * time.Hour
	}
	if c.WhitelistTTL <= 0 {
		c.WhitelistTTL = 36 * time.Hour
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 1 << 17
	}
	return c
}

// greyEntry tracks one (client /24, sender, recipient) tuple. updated
// stamps the last state change so Delta can ship only what a peer has
// not seen.
type greyEntry struct {
	firstSeen time.Time
	passed    bool
	expiry    time.Time // whitelist expiry when passed
	updated   time.Time
}

// Greylist keys on the client's /24 rather than the exact IP so a
// legitimate server farm retrying from a sibling address still matches —
// the same granularity at which the paper observes source locality
// (Figure 13). It implements GreylistStore and GreylistSync and is safe
// for concurrent use.
type Greylist struct {
	cfg     GreyConfig
	mu      sync.Mutex
	entries map[string]*greyEntry
}

// NewGreylist builds a greylist from cfg.
func NewGreylist(cfg GreyConfig) *Greylist {
	return &Greylist{cfg: cfg.withDefaults(), entries: make(map[string]*greyEntry)}
}

func greyKey(ip addr.IPv4, sender, rcpt string) string {
	return fmt.Sprintf("%s|%s|%s", ip.Prefix24(), sender, rcpt)
}

// Check implements GreylistStore.
func (g *Greylist) Check(at time.Time, ip addr.IPv4, sender, rcpt string) Decision {
	g.mu.Lock()
	defer g.mu.Unlock()
	key := greyKey(ip, sender, rcpt)
	e, ok := g.entries[key]
	if !ok {
		if len(g.entries) >= g.cfg.MaxEntries {
			g.sweep(at)
		}
		g.entries[key] = &greyEntry{firstSeen: at, updated: at}
		return Decision{Tempfail, "greylist", "greylisted, please retry later"}
	}
	if e.passed {
		if at.Before(e.expiry) {
			e.expiry = at.Add(g.cfg.WhitelistTTL)
			e.updated = at
			return allowed
		}
		// Whitelist expired: restart the window.
		*e = greyEntry{firstSeen: at, updated: at}
		return Decision{Tempfail, "greylist", "greylisted, please retry later"}
	}
	age := at.Sub(e.firstSeen)
	switch {
	case age < g.cfg.MinRetry:
		return Decision{Tempfail, "greylist", "greylisted, retried too soon"}
	case age <= g.cfg.MaxValid:
		e.passed = true
		e.expiry = at.Add(g.cfg.WhitelistTTL)
		e.updated = at
		return allowed
	default:
		e.firstSeen = at
		e.updated = at
		return Decision{Tempfail, "greylist", "greylisted, please retry later"}
	}
}

// sweep drops entries that no longer influence any verdict: expired
// whitelistings and pending entries past their retry window.
func (g *Greylist) sweep(at time.Time) {
	for k, e := range g.entries {
		if e.passed && !at.Before(e.expiry) {
			delete(g.entries, k)
		}
		if !e.passed && at.Sub(e.firstSeen) > g.cfg.MaxValid {
			delete(g.entries, k)
		}
	}
}

// Delta implements GreylistSync: every tuple whose state changed at or
// after since. A zero since returns the full snapshot.
func (g *Greylist) Delta(since time.Time) []GreyEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []GreyEntry
	for k, e := range g.entries {
		if !e.updated.Before(since) {
			out = append(out, GreyEntry{Key: k, FirstSeen: e.firstSeen, Passed: e.passed, Expiry: e.expiry, Updated: e.updated})
		}
	}
	return out
}

// Merge implements GreylistSync. Per tuple: a passed entry beats a
// pending one (the sender proved it retries — any node may honor the
// whitelist); among passed entries the later expiry wins (each
// accepted delivery refreshes it); among pending entries the earlier
// firstSeen wins, so a retry arriving at a different front end is
// credited against the original window. All three rules pick a
// deterministic extremum, so the merge is commutative and idempotent.
// Returns how many tuples changed local state.
func (g *Greylist) Merge(entries []GreyEntry) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	changed := 0
	for _, re := range entries {
		e, ok := g.entries[re.Key]
		if !ok {
			if len(g.entries) >= g.cfg.MaxEntries {
				g.sweep(re.Updated)
			}
			g.entries[re.Key] = &greyEntry{firstSeen: re.FirstSeen, passed: re.Passed, expiry: re.Expiry, updated: re.Updated}
			changed++
			continue
		}
		switch {
		case re.Passed && !e.passed:
			*e = greyEntry{firstSeen: re.FirstSeen, passed: true, expiry: re.Expiry, updated: re.Updated}
			changed++
		case re.Passed && e.passed:
			if re.Expiry.After(e.expiry) {
				e.expiry = re.Expiry
				e.updated = re.Updated
				changed++
			}
		case !re.Passed && !e.passed:
			if re.FirstSeen.Before(e.firstSeen) {
				e.firstSeen = re.FirstSeen
				e.updated = re.Updated
				changed++
			}
		}
	}
	return changed
}
