package policy

import (
	"sort"
	"sync"
	"time"
)

// DestTracker is the outbound counterpart of the inbound reputation
// store: a per-destination (next-hop domain) exponentially decayed
// failure score, fed by the delivery path and read by operators and the
// retry scheduler. It reuses the same EWMA decay as the inbound
// reputation maps — the aggregated-historical-data idea pointed at the
// remote sites we deliver to instead of the sources that deliver to us.
type DestTracker struct {
	mu       sync.Mutex
	halfLife time.Duration
	scores   map[string]*ewma
	fails    map[string]int64
	oks      map[string]int64
	now      func() time.Time
	max      int
}

// DestTrackerOption configures a DestTracker.
type DestTrackerOption func(*DestTracker)

// WithDestHalfLife sets the failure-score decay half-life (default
// 10 min: outbound health moves faster than sender reputation).
func WithDestHalfLife(d time.Duration) DestTrackerOption {
	return func(t *DestTracker) {
		if d > 0 {
			t.halfLife = d
		}
	}
}

// WithDestClock overrides the wall clock (tests).
func WithDestClock(now func() time.Time) DestTrackerOption {
	return func(t *DestTracker) { t.now = now }
}

// WithDestMaxEntries caps tracked destinations (default 1<<15); fully
// decayed entries are swept when the cap is hit.
func WithDestMaxEntries(n int) DestTrackerOption {
	return func(t *DestTracker) {
		if n > 0 {
			t.max = n
		}
	}
}

// NewDestTracker returns an empty tracker.
func NewDestTracker(opts ...DestTrackerOption) *DestTracker {
	t := &DestTracker{
		halfLife: 10 * time.Minute,
		scores:   make(map[string]*ewma),
		fails:    make(map[string]int64),
		oks:      make(map[string]int64),
		now:      time.Now,
		max:      1 << 15,
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// RecordFailure charges one failed delivery attempt against dest.
func (t *DestTracker) RecordFailure(dest string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	e, ok := t.scores[dest]
	if !ok {
		if len(t.scores) >= t.max {
			sweepEwma(t.scores, now, t.halfLife)
		}
		e = &ewma{last: now}
		t.scores[dest] = e
	}
	e.add(now, t.halfLife, 1)
	t.fails[dest]++
}

// RecordSuccess records a successful delivery to dest; the failure
// score keeps decaying but is not charged.
func (t *DestTracker) RecordSuccess(dest string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.oks[dest]++
}

// Score returns dest's decayed failure score (0 = healthy or unknown).
func (t *DestTracker) Score(dest string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.scores[dest]
	if !ok {
		return 0
	}
	return e.decayed(t.now(), t.halfLife)
}

// DestStat is one destination's outbound record.
type DestStat struct {
	Dest      string
	Score     float64
	Failures  int64
	Successes int64
}

// Snapshot returns every tracked destination, worst score first.
func (t *DestTracker) Snapshot() []DestStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	seen := make(map[string]bool, len(t.scores)+len(t.oks))
	var out []DestStat
	add := func(dest string) {
		if seen[dest] {
			return
		}
		seen[dest] = true
		st := DestStat{Dest: dest, Failures: t.fails[dest], Successes: t.oks[dest]}
		if e, ok := t.scores[dest]; ok {
			st.Score = e.decayed(now, t.halfLife)
		}
		out = append(out, st)
	}
	for dest := range t.scores {
		add(dest)
	}
	for dest := range t.oks {
		add(dest)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Dest < out[j].Dest
	})
	return out
}
