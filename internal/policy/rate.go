package policy

import (
	"time"

	"repro/internal/addr"
)

// RateConfig parameterizes the token-bucket rate limiters. A rate of 0
// disables the corresponding bucket.
type RateConfig struct {
	// ConnPerSec and ConnBurst bound connection attempts per client IP.
	ConnPerSec float64
	ConnBurst  float64
	// PrefixConnPerSec and PrefixConnBurst bound connection attempts per
	// /25 prefix, catching botnet neighbourhoods that rotate through
	// addresses faster than any single IP trips its own bucket (the
	// spatial locality of Figure 12).
	PrefixConnPerSec float64
	PrefixConnBurst  float64
	// MailPerSec and MailBurst bound MAIL FROM transactions per IP.
	MailPerSec float64
	MailBurst  float64
	// MaxEntries softly caps tracked buckets per map (default 1<<17).
	// Only buckets that have fully refilled — semantically identical to
	// absent entries — are evicted, so the cap never changes verdicts.
	MaxEntries int
}

func (c RateConfig) withDefaults() RateConfig {
	if c.MaxEntries <= 0 {
		c.MaxEntries = 1 << 17
	}
	return c
}

// bucket is one token bucket. A missing bucket is equivalent to a full
// one, which is what makes stale-entry eviction verdict-neutral.
type bucket struct {
	tokens float64
	last   time.Duration
}

// take refills the bucket at rate tokens/sec up to burst, then tries to
// consume one token.
func (b *bucket) take(now time.Duration, rate, burst float64) bool {
	if now > b.last {
		b.tokens += rate * (now - b.last).Seconds()
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// full reports whether the bucket has refilled to burst at time now.
func (b *bucket) full(now time.Duration, rate, burst float64) bool {
	t := b.tokens
	if now > b.last {
		t += rate * (now - b.last).Seconds()
	}
	return t >= burst
}

// rateLimiter holds the three bucket families.
type rateLimiter struct {
	cfg    RateConfig
	conn   map[addr.IPv4]*bucket
	prefix map[addr.Prefix]*bucket
	mail   map[addr.IPv4]*bucket
}

func newRateLimiter(cfg RateConfig) *rateLimiter {
	return &rateLimiter{
		cfg:    cfg.withDefaults(),
		conn:   make(map[addr.IPv4]*bucket),
		prefix: make(map[addr.Prefix]*bucket),
		mail:   make(map[addr.IPv4]*bucket),
	}
}

// takeConn charges one connection attempt against the per-IP and
// per-/25 buckets. The prefix bucket is charged even when the IP bucket
// refuses, so a flood from one address still burns its neighbourhood's
// allowance.
func (r *rateLimiter) takeConn(now time.Duration, ip addr.IPv4) Decision {
	ipOK := r.takeFrom(ipKeyed{r.conn}, now, ip, r.cfg.ConnPerSec, r.cfg.ConnBurst)
	prefOK := true
	if r.cfg.PrefixConnPerSec > 0 {
		prefOK = r.takeFrom(prefKeyed{r.prefix}, now, ip, r.cfg.PrefixConnPerSec, r.cfg.PrefixConnBurst)
	}
	switch {
	case !ipOK:
		return Decision{Tempfail, "rate", "connection rate exceeded for client address"}
	case !prefOK:
		return Decision{Tempfail, "rate", "connection rate exceeded for client network"}
	}
	return allowed
}

// takeMail charges one MAIL transaction against the per-IP mail bucket.
func (r *rateLimiter) takeMail(now time.Duration, ip addr.IPv4) Decision {
	if !r.takeFrom(ipKeyed{r.mail}, now, ip, r.cfg.MailPerSec, r.cfg.MailBurst) {
		return Decision{Tempfail, "rate", "message rate exceeded for client address"}
	}
	return allowed
}

// ipKeyed and prefKeyed adapt the two map key types to one take path.
type ipKeyed struct{ m map[addr.IPv4]*bucket }

func (k ipKeyed) get(ip addr.IPv4) (*bucket, bool) { b, ok := k.m[ip]; return b, ok }
func (k ipKeyed) put(ip addr.IPv4, b *bucket)      { k.m[ip] = b }
func (k ipKeyed) len() int                         { return len(k.m) }
func (k ipKeyed) sweep(now time.Duration, rate, burst float64) {
	for ip, b := range k.m {
		if b.full(now, rate, burst) {
			delete(k.m, ip)
		}
	}
}

type prefKeyed struct{ m map[addr.Prefix]*bucket }

func (k prefKeyed) get(ip addr.IPv4) (*bucket, bool) { b, ok := k.m[ip.Prefix25()]; return b, ok }
func (k prefKeyed) put(ip addr.IPv4, b *bucket)      { k.m[ip.Prefix25()] = b }
func (k prefKeyed) len() int                         { return len(k.m) }
func (k prefKeyed) sweep(now time.Duration, rate, burst float64) {
	for p, b := range k.m {
		if b.full(now, rate, burst) {
			delete(k.m, p)
		}
	}
}

type bucketMap interface {
	get(ip addr.IPv4) (*bucket, bool)
	put(ip addr.IPv4, b *bucket)
	len() int
	sweep(now time.Duration, rate, burst float64)
}

// takeFrom runs one take against a keyed bucket family; rate 0 always
// admits. New buckets start full.
func (r *rateLimiter) takeFrom(m bucketMap, now time.Duration, ip addr.IPv4, rate, burst float64) bool {
	if rate <= 0 {
		return true
	}
	if burst < 1 {
		burst = 1
	}
	b, ok := m.get(ip)
	if !ok {
		if m.len() >= r.cfg.MaxEntries {
			m.sweep(now, rate, burst)
		}
		b = &bucket{tokens: burst, last: now}
		m.put(ip, b)
	}
	return b.take(now, rate, burst)
}
