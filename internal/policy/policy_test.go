package policy

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/dnsbl"
)

var (
	ip1 = addr.MustParseIPv4("198.51.100.7")
	ip2 = addr.MustParseIPv4("198.51.100.9")   // same /25 as ip1
	ip3 = addr.MustParseIPv4("198.51.100.200") // same /24, other /25
	ip4 = addr.MustParseIPv4("203.0.113.5")    // unrelated
)

func at(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// bg is the do-not-care context the non-cancellation tests use.
var bg = context.Background()

// --- rate limiter ---

func TestRateLimitPerIP(t *testing.T) {
	e := New(WithRate(RateConfig{ConnPerSec: 1, ConnBurst: 2}))
	if d := e.Admit(bg, at(0), ip1, 0); d.Verdict != Allow {
		t.Fatalf("first conn: %+v", d)
	}
	if d := e.Admit(bg, at(0), ip1, 0); d.Verdict != Allow {
		t.Fatalf("burst conn: %+v", d)
	}
	d := e.Admit(bg, at(0), ip1, 0)
	if d.Verdict != Tempfail || d.Checker != "rate" {
		t.Fatalf("over-burst conn: %+v", d)
	}
	// Another IP is unaffected.
	if d := e.Admit(bg, at(0), ip4, 0); d.Verdict != Allow {
		t.Fatalf("other ip: %+v", d)
	}
	// One second refills one token.
	if d := e.Admit(bg, at(1), ip1, 0); d.Verdict != Allow {
		t.Fatalf("refilled conn: %+v", d)
	}
	if d := e.Admit(bg, at(1), ip1, 0); d.Verdict != Tempfail {
		t.Fatalf("still capped: %+v", d)
	}
}

func TestRateLimitPerPrefix(t *testing.T) {
	// Generous per-IP budget, tight /25 budget: two neighbours share it.
	e := New(WithRate(RateConfig{
		ConnPerSec: 100, ConnBurst: 100,
		PrefixConnPerSec: 0.1, PrefixConnBurst: 2,
	}))
	if d := e.Admit(bg, at(0), ip1, 0); d.Verdict != Allow {
		t.Fatalf("neighbour 1: %+v", d)
	}
	if d := e.Admit(bg, at(0), ip2, 0); d.Verdict != Allow {
		t.Fatalf("neighbour 2: %+v", d)
	}
	if d := e.Admit(bg, at(0), ip2, 0); d.Verdict != Tempfail {
		t.Fatalf("prefix budget exhausted but admitted: %+v", d)
	}
	// The other /25 half of the same /24 has its own bucket.
	if d := e.Admit(bg, at(0), ip3, 0); d.Verdict != Allow {
		t.Fatalf("other /25: %+v", d)
	}
}

func TestRateLimitMail(t *testing.T) {
	e := New(WithRate(RateConfig{MailPerSec: 0.1, MailBurst: 1}))
	if d := e.Mail(bg, at(0), ip1, "s@x.test"); d.Verdict != Allow {
		t.Fatalf("first mail: %+v", d)
	}
	if d := e.Mail(bg, at(0), ip1, "s@x.test"); d.Verdict != Tempfail {
		t.Fatalf("second mail admitted")
	}
	// Connections are governed by a separate bucket.
	if d := e.Admit(bg, at(0), ip1, 0); d.Verdict != Allow {
		t.Fatalf("conn blocked by mail bucket: %+v", d)
	}
}

func TestRateEvictionIsVerdictNeutral(t *testing.T) {
	e := New(WithRate(RateConfig{ConnPerSec: 10, ConnBurst: 2, MaxEntries: 4}))
	// Fill past the cap with sources whose buckets refill instantly.
	for i := 0; i < 32; i++ {
		ip := addr.MakeIPv4(10, 0, byte(i>>8), byte(i))
		e.Admit(bg, at(float64(i)), ip, 0)
	}
	// A fresh source still gets its full burst.
	late := addr.MakeIPv4(10, 9, 9, 9)
	for j := 0; j < 2; j++ {
		if d := e.Admit(bg, at(100), late, 0); d.Verdict != Allow {
			t.Fatalf("burst conn %d after eviction: %+v", j, d)
		}
	}
	if d := e.Admit(bg, at(100), late, 0); d.Verdict != Tempfail {
		t.Fatal("over-burst admitted after eviction")
	}
}

// --- greylist ---

func greyEngine() *Engine {
	return New(WithGreylist(GreyConfig{
		MinRetry: 10 * time.Second, MaxValid: time.Hour, WhitelistTTL: 2 * time.Hour,
	}))
}

func TestGreylistFirstContactTempfails(t *testing.T) {
	e := greyEngine()
	d := e.Rcpt(bg, at(0), ip1, "s@x.test", "u@dept.test")
	if d.Verdict != Tempfail || d.Checker != "greylist" {
		t.Fatalf("first contact: %+v", d)
	}
	// Too-early retry stays greylisted and does not reset the window.
	if d := e.Rcpt(bg, at(5), ip1, "s@x.test", "u@dept.test"); d.Verdict != Tempfail {
		t.Fatalf("early retry admitted")
	}
	// A proper retry inside the window passes.
	if d := e.Rcpt(bg, at(15), ip1, "s@x.test", "u@dept.test"); d.Verdict != Allow {
		t.Fatalf("valid retry: %+v", d)
	}
	// And the tuple is now whitelisted: immediate re-delivery is fine.
	if d := e.Rcpt(bg, at(16), ip1, "s@x.test", "u@dept.test"); d.Verdict != Allow {
		t.Fatalf("whitelisted tuple: %+v", d)
	}
}

func TestGreylistKeyGranularity(t *testing.T) {
	e := greyEngine()
	e.Rcpt(bg, at(0), ip1, "s@x.test", "u@dept.test")
	// Same /24, same envelope → same tuple (retry from a sibling MTA).
	if d := e.Rcpt(bg, at(15), ip3, "s@x.test", "u@dept.test"); d.Verdict != Allow {
		t.Fatalf("sibling-address retry: %+v", d)
	}
	// Different sender → a fresh tuple.
	if d := e.Rcpt(bg, at(15), ip1, "other@x.test", "u@dept.test"); d.Verdict != Tempfail {
		t.Fatalf("different sender shared the tuple")
	}
	// Different client network → a fresh tuple.
	if d := e.Rcpt(bg, at(15), ip4, "s@x.test", "u@dept.test"); d.Verdict != Tempfail {
		t.Fatalf("different /24 shared the tuple")
	}
}

func TestGreylistWindowExpiry(t *testing.T) {
	e := greyEngine()
	e.Rcpt(bg, at(0), ip1, "s@x.test", "u@dept.test")
	// Retry after MaxValid restarts the window.
	if d := e.Rcpt(bg, at(2*3600+100), ip1, "s@x.test", "u@dept.test"); d.Verdict != Tempfail {
		t.Fatalf("stale retry admitted")
	}
	if d := e.Rcpt(bg, at(2*3600+115), ip1, "s@x.test", "u@dept.test"); d.Verdict != Allow {
		t.Fatalf("restarted window retry: %+v", d)
	}
}

// --- reputation ---

func repEngine() *Engine {
	return New(WithReputation(ReputationConfig{
		HalfLife: time.Hour, TempfailScore: 2, RejectScore: 4,
	}))
}

func TestReputationAccumulatesAndRejects(t *testing.T) {
	e := repEngine()
	if d := e.Admit(bg, at(0), ip1, 0); d.Verdict != Allow {
		t.Fatalf("clean source: %+v", d)
	}
	e.RecordBounce(at(1), ip1) // ip 1.0 + prefix 0.5 = 1.5
	if d := e.Admit(bg, at(2), ip1, 0); d.Verdict != Allow {
		t.Fatalf("one bounce already condemned: %+v", d)
	}
	e.RecordBounce(at(3), ip1) // combined 3.0
	d := e.Admit(bg, at(4), ip1, 0)
	if d.Verdict != Tempfail || d.Checker != "reputation" {
		t.Fatalf("two bounces: %+v", d)
	}
	e.RecordBounce(at(5), ip1)
	e.RecordBounce(at(6), ip1) // combined 6.0
	if d := e.Admit(bg, at(7), ip1, 0); d.Verdict != Reject {
		t.Fatalf("four bounces: %+v", d)
	}
}

func TestReputationPrefixAggregation(t *testing.T) {
	e := repEngine()
	// Evidence is recorded only against ip1's neighbours, never ip2.
	for i := 0; i < 6; i++ {
		e.RecordBounce(at(float64(i)), ip1)
	}
	// ip2 shares the /25: prefix score 6 × 0.5 = 3 ≥ Tempfail threshold.
	if d := e.Admit(bg, at(10), ip2, 0); d.Verdict != Tempfail {
		t.Fatalf("neighbourhood history ignored: %+v", d)
	}
	// ip3 is in the other /25 half: unaffected.
	if d := e.Admit(bg, at(10), ip3, 0); d.Verdict != Allow {
		t.Fatalf("other /25 condemned: %+v", d)
	}
}

func TestReputationDecay(t *testing.T) {
	e := repEngine()
	for i := 0; i < 4; i++ {
		e.RecordBounce(at(float64(i)), ip1)
	}
	if d := e.Admit(bg, at(5), ip1, 0); d.Verdict != Reject {
		t.Fatalf("fresh history: %+v", d)
	}
	// Two half-lives later the score has quartered: 6 → 1.5 < Tempfail.
	if d := e.Admit(bg, at(2*3600+5), ip1, 0); d.Verdict != Allow {
		t.Fatalf("decayed history still condemns: %+v", d)
	}
}

func TestReputationRejectedRcptWeighsLess(t *testing.T) {
	e := repEngine()
	for i := 0; i < 4; i++ {
		e.RecordRejectedRcpt(at(float64(i)), ip1) // 4 × 0.3 × 1.5 = 1.8 < 2
	}
	if d := e.Admit(bg, at(5), ip1, 0); d.Verdict != Allow {
		t.Fatalf("rejected rcpts over-weighted: %+v", d)
	}
	st := e.Stats()
	if st.RejectsSeen != 4 {
		t.Fatalf("RejectsSeen = %d", st.RejectsSeen)
	}
}

// --- DNSBL thresholds + hit feedback ---

func TestDNSBLScoreThresholds(t *testing.T) {
	e := New(WithDNSBLReject(2), WithDNSBLTempfail(1))
	if d := e.Admit(bg, at(0), ip1, 0); d.Verdict != Allow {
		t.Fatalf("clean: %+v", d)
	}
	if d := e.Admit(bg, at(0), ip1, 1); d.Verdict != Tempfail {
		t.Fatalf("score 1: %+v", d)
	}
	d := e.Admit(bg, at(0), ip1, 2)
	if d.Verdict != Reject || d.Checker != "dnsbl" {
		t.Fatalf("score 2: %+v", d)
	}
}

func TestDNSBLHitFeedsReputation(t *testing.T) {
	e := New(
		WithDNSBLReject(3),
		WithReputation(ReputationConfig{HalfLife: time.Hour, TempfailScore: 2, RejectScore: 40}),
	)
	// Score 1 is below the DNSBL thresholds, but the hit is remembered:
	// 2.0 × 1.5 = 3 ≥ TempfailScore on the next visit.
	if d := e.Admit(bg, at(0), ip1, 1); d.Verdict != Allow {
		t.Fatalf("first visit: %+v", d)
	}
	if d := e.Admit(bg, at(1), ip1, 0); d.Verdict != Tempfail {
		t.Fatalf("history of DNSBL hits ignored: %+v", d)
	}
	if st := e.Stats(); st.DNSBLHitsSeen != 1 {
		t.Fatalf("DNSBLHitsSeen = %d", st.DNSBLHitsSeen)
	}
}

// --- engine composition and stats ---

func TestEngineZeroConfigAllowsEverything(t *testing.T) {
	e := New()
	for i := 0; i < 10; i++ {
		if d := e.Admit(bg, at(0), ip1, 0); d.Verdict != Allow {
			t.Fatalf("conn %d: %+v", i, d)
		}
		if d := e.Mail(bg, at(0), ip1, "s@x.test"); d.Verdict != Allow {
			t.Fatalf("mail %d: %+v", i, d)
		}
		if d := e.Rcpt(bg, at(0), ip1, "s@x.test", "u@y.test"); d.Verdict != Allow {
			t.Fatalf("rcpt %d: %+v", i, d)
		}
	}
	st := e.Stats()
	if st.ConnAllowed != 10 || st.RcptAllowed != 10 || st.ConnRejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEngineStatsCountVerdicts(t *testing.T) {
	e := New(WithRate(RateConfig{ConnPerSec: 0.001, ConnBurst: 1}), WithDNSBLReject(1))
	e.Admit(bg, at(0), ip1, 0) // allow
	e.Admit(bg, at(0), ip1, 0) // rate tempfail
	e.Admit(bg, at(0), ip4, 1) // dnsbl reject
	st := e.Stats()
	if st.ConnAllowed != 1 || st.ConnTempfailed != 1 || st.ConnRejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEngineConcurrentUse(t *testing.T) {
	e := New(
		WithRate(RateConfig{ConnPerSec: 1000, ConnBurst: 1000, MailPerSec: 1000, MailBurst: 1000}),
		WithGreylist(GreyConfig{MinRetry: time.Millisecond}),
		WithReputation(ReputationConfig{}),
	)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ip := addr.MakeIPv4(10, 0, 0, byte(g))
			for i := 0; i < 200; i++ {
				now := time.Duration(i) * time.Millisecond
				e.Admit(bg, now, ip, 0)
				e.Mail(bg, now, ip, "s@x.test")
				e.Rcpt(bg, now, ip, "s@x.test", fmt.Sprintf("u%d@y.test", i%3))
				e.RecordRejectedRcpt(now, ip)
			}
		}(g)
	}
	wg.Wait()
	if st := e.Stats(); st.ConnAllowed+st.ConnTempfailed+st.ConnRejected != 8*200 {
		t.Fatalf("lost verdicts: %+v", st)
	}
}

func TestVerdictString(t *testing.T) {
	if Allow.String() != "allow" || Tempfail.String() != "tempfail" || Reject.String() != "reject" {
		t.Fatal("verdict names wrong")
	}
}

// --- scorer ---

// stubList is a deterministic Resolver with a controllable delay.
type stubList struct {
	listed bool
	err    error
	delay  time.Duration
}

func (s stubList) Lookup(context.Context, addr.IPv4) (dnsbl.Result, error) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return dnsbl.Result{Listed: s.listed}, s.err
}

func TestScorerAccumulatesWeights(t *testing.T) {
	s := NewScorer(WithLists(
		List{Name: "a", Resolver: stubList{listed: true}, Weight: 1},
		List{Name: "b", Resolver: stubList{listed: true}, Weight: 0.5},
		List{Name: "c", Resolver: stubList{listed: false}},
	))
	if got := s.Score(bg, ip1); got != 1.5 {
		t.Fatalf("score = %v, want 1.5", got)
	}
	st := s.Stats()
	if st.Scans != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScorerFailsOpenOnErrors(t *testing.T) {
	s := NewScorer(WithLists(
		List{Name: "a", Resolver: stubList{listed: true, err: fmt.Errorf("boom")}},
		List{Name: "b", Resolver: stubList{listed: false}},
	))
	if got := s.Score(bg, ip1); got != 0 {
		t.Fatalf("score = %v, want 0", got)
	}
}

func TestScorerEarlyExit(t *testing.T) {
	// Two fast condemning lists cross the threshold; the slow list would
	// take far longer than the test allows.
	slow := stubList{listed: true, delay: 30 * time.Second}
	s := NewScorer(
		WithLists(
			List{Name: "fast1", Resolver: stubList{listed: true}},
			List{Name: "fast2", Resolver: stubList{listed: true}},
			List{Name: "slow", Resolver: slow},
		),
		WithThreshold(2),
	)
	done := make(chan float64, 1)
	go func() { done <- s.Score(bg, ip1) }()
	select {
	case got := <-done:
		if got < 2 {
			t.Fatalf("score = %v, want ≥ 2", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("early exit did not fire")
	}
	if st := s.Stats(); st.EarlyExits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScorerTimeoutFailsOpen(t *testing.T) {
	s := NewScorer(
		WithLists(List{Name: "slow", Resolver: stubList{listed: true, delay: time.Minute}}),
		WithScanTimeout(20*time.Millisecond),
	)
	if got := s.Score(bg, ip1); got != 0 {
		t.Fatalf("score = %v, want 0 after timeout", got)
	}
}

func TestScorerNoLists(t *testing.T) {
	if got := NewScorer().Score(bg, ip1); got != 0 {
		t.Fatalf("score = %v", got)
	}
}

// --- ServerPolicy adapter ---

func TestServerPolicyClock(t *testing.T) {
	eng := New(WithGreylist(GreyConfig{MinRetry: 10 * time.Second}))
	var now time.Duration
	p := NewServerPolicy(eng, nil).withNow(func() time.Duration { return now })
	if d := p.Rcpt(bg, "198.51.100.7", "s@x.test", "u@y.test"); d.Verdict != Tempfail {
		t.Fatalf("first contact: %+v", d)
	}
	now = 15 * time.Second
	if d := p.Rcpt(bg, "198.51.100.7", "s@x.test", "u@y.test"); d.Verdict != Allow {
		t.Fatalf("retry: %+v", d)
	}
}

func TestServerPolicyFailsOpenOnBadAddress(t *testing.T) {
	eng := New(WithRate(RateConfig{ConnPerSec: 0.001, ConnBurst: 1}))
	p := NewServerPolicy(eng, nil)
	for i := 0; i < 5; i++ {
		if d := p.Connect(bg, "::1"); d.Verdict != Allow {
			t.Fatalf("IPv6 peer blocked: %+v", d)
		}
	}
}

func TestServerPolicyRecordsEvents(t *testing.T) {
	eng := New(WithReputation(ReputationConfig{TempfailScore: 1, RejectScore: 100}))
	p := NewServerPolicy(eng, nil)
	p.RecordBounce("198.51.100.7")
	if d := p.Connect(bg, "198.51.100.7"); d.Verdict != Tempfail {
		t.Fatalf("recorded bounce ignored: %+v", d)
	}
	if st := p.Stats(); st.BouncesSeen != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
