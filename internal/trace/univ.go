package trace

import (
	"fmt"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
)

// deptSpamRcptCDF is the recipients-per-spam distribution at a real
// departmental server: unlike the sinkhole (which accepts any guess, so
// spammers pile recipients on), department-bound spam carries the few
// harvested addresses — a mean of ≈1.7 but still clearly above ham's
// 1.02, preserving the §8 observation that "a legitimate SMTP session
// contains fewer recipients as compared to a spam".
var deptSpamRcptCDF = sim.NewCDFSampler([]struct{ X, Frac float64 }{
	{1, 0.62}, {2, 0.82}, {3, 0.92}, {5, 0.98}, {8, 1},
})

// Published statistics of the Univ trace (Table 1).
const (
	// UnivConnections is the month's connection count.
	UnivConnections = 1862349
	// UnivIPs is the unique client count.
	UnivIPs = 621124
	// UnivSpamRatio is the Spam-Assassin-flagged fraction.
	UnivSpamRatio = 0.67
	// UnivDuration is November 2007.
	UnivDuration = 30 * 24 * time.Hour
	// UnivHamRcptMean is the average recipients per legitimate mail
	// (1.02, consistent with Clayton's study — paper ref [3]).
	UnivHamRcptMean = 1.02
)

// UnivConfig parameterizes the departmental-workload generator.
type UnivConfig struct {
	// Seed drives all randomness.
	Seed uint64
	// Connections to generate (default: a 20k-connection scaled month —
	// the full 1.86M is available by setting it explicitly).
	Connections int
	// Duration of the trace (default UnivDuration).
	Duration time.Duration
	// SpamRatio is the fraction of spam connections (default 0.67).
	SpamRatio float64
	// BounceRatio is the fraction of spam connections that are bounces
	// (default 0.25, the ECN midpoint; §4.1 attributes bounces to
	// random-guessing spammers).
	BounceRatio float64
	// UnfinishedRatio is the fraction of spam connections abandoned
	// mid-handshake (default 0.10).
	UnfinishedRatio float64
	// Mailboxes is the number of local users (default 400, "over 400
	// mailboxes").
	Mailboxes int
	// Domain is the local domain (default "dept.example.edu").
	Domain string
}

// Univ generates the departmental mail workload: a 67/33 spam/ham mix
// where ham comes from long-lived static IPs with ≈1 recipient and spam
// behaves like the sinkhole's botnet traffic.
type Univ struct {
	cfg      UnivConfig
	rng      *sim.RNG
	sinkhole *Sinkhole
	hamHosts []addr.IPv4
}

// NewUniv builds the generator.
func NewUniv(cfg UnivConfig) *Univ {
	if cfg.Connections <= 0 {
		cfg.Connections = 20000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = UnivDuration
	}
	if cfg.SpamRatio == 0 {
		cfg.SpamRatio = UnivSpamRatio
	}
	if cfg.BounceRatio == 0 {
		cfg.BounceRatio = 0.25
	}
	if cfg.UnfinishedRatio == 0 {
		cfg.UnfinishedRatio = 0.10
	}
	if cfg.Mailboxes <= 0 {
		cfg.Mailboxes = 400
	}
	if cfg.Domain == "" {
		cfg.Domain = "dept.example.edu"
	}
	u := &Univ{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}

	// The spam side reuses the sinkhole population model, scaled to the
	// spam share of the connection budget.
	spamConns := int(float64(cfg.Connections) * cfg.SpamRatio)
	prefixes := spamConns / 10
	if prefixes < 16 {
		prefixes = 16
	}
	if prefixes > SinkholePrefixes {
		prefixes = SinkholePrefixes
	}
	u.sinkhole = NewSinkhole(SinkholeConfig{
		Seed:            cfg.Seed + 1,
		Connections:     spamConns,
		Prefixes:        prefixes,
		Duration:        cfg.Duration,
		BounceRatio:     cfg.BounceRatio,
		UnfinishedRatio: cfg.UnfinishedRatio,
		RcptDomain:      cfg.Domain,
		ValidMailboxes:  cfg.Mailboxes,
		RcptSampler:     deptSpamRcptCDF,
	})

	// Legitimate mail originates from long-lasting static IPs (paper
	// ref [30]): a small, stable pool of peer mail servers.
	nHam := 64
	for i := 0; i < nHam; i++ {
		u.hamHosts = append(u.hamHosts,
			addr.MakeIPv4(8, byte(4+i/64), byte(i%64), byte(10+i%200)))
	}
	return u
}

// Sinkhole exposes the embedded spam-origin model (for DNSBL zone
// construction).
func (u *Univ) Sinkhole() *Sinkhole { return u.sinkhole }

// Generate produces the mixed trace in arrival order.
func (u *Univ) Generate() []Conn {
	spam := u.sinkhole.Generate()
	nHam := u.cfg.Connections - len(spam)
	ham := make([]Conn, 0, nHam)
	meanGap := u.cfg.Duration / time.Duration(nHam+1)
	now := time.Duration(0)
	for i := 0; i < nHam; i++ {
		now += u.rng.Exp(meanGap)
		host := u.hamHosts[u.rng.Intn(len(u.hamHosts))]
		k := 1
		// Mean 1.02 recipients: a 2% chance of a second recipient.
		if u.rng.Bool(UnivHamRcptMean - 1) {
			k = 2
		}
		rcpts := make([]Rcpt, 0, k)
		for j := 0; j < k; j++ {
			rcpts = append(rcpts, Rcpt{
				Addr:  fmt.Sprintf("user%04d@%s", u.rng.Intn(u.cfg.Mailboxes), u.cfg.Domain),
				Valid: true,
			})
		}
		ham = append(ham, Conn{
			At:        now,
			ClientIP:  host,
			Helo:      fmt.Sprintf("mx%d.peer.example", host),
			Sender:    fmt.Sprintf("colleague%03d@peer.example", u.rng.Intn(500)),
			Rcpts:     rcpts,
			SizeBytes: hamSize(u.rng),
			Spam:      false,
		})
	}
	return mergeByTime(spam, ham)
}

// hamSize draws a legitimate-mail size: wider spread than spam
// (attachments), median ≈6 KB.
func hamSize(rng *sim.RNG) int {
	size := int(rng.LogNormal(8.7, 1.1))
	if size < 500 {
		size = 500
	}
	if size > 4<<20 {
		size = 4 << 20
	}
	return size
}

// mergeByTime merges two time-ordered traces.
func mergeByTime(a, b []Conn) []Conn {
	out := make([]Conn, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].At <= b[j].At {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
