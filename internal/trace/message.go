// Message-lifecycle distributed tracing. Where SpanRecorder (span.go)
// watches one process's connection stages against a process-local
// epoch, the types here follow a *mail* across processes: a 128-bit
// trace id minted at the first byte of the client connection, a span
// per pipeline stage (pretrust, forward, smtp, queue, delivery, store,
// outbound), and wall-clock timestamps so spans recorded by different
// nodes stitch into one timeline. The context crosses the SMTP hop as
// an XTRACE MAIL parameter (see internal/smtp) and survives crashes
// inside spool envelope frames (see internal/spool).
//
// Hot-path discipline: sampling is decided once, at Mint. A sampled-out
// mail carries the zero Context, and every method on the zero Context —
// and every recorder method fed one — is an allocation-free no-op, so
// the 0-alloc dialog gates hold with tracing compiled in.

package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical message-span stage names, in pipeline order. mailtop and
// the cluster aggregator key per-stage latency tables on these.
const (
	MStagePretrust = "pretrust" // director: connection accept → envelope complete
	MStageForward  = "forward"  // director: one replay attempt to a shard
	MStageSMTP     = "smtp"     // smtpserver: DATA receive → enqueue done
	MStageQueue    = "queue"    // queue: enqueue → worker pickup
	MStageDelivery = "delivery" // queue: one delivery attempt
	MStageStore    = "store"    // delivery agent: mailbox store commit
	MStageOutbound = "outbound" // outbound: one remote SMTP transaction
)

// MessageStages lists the canonical stage names in pipeline order.
func MessageStages() []string {
	return []string{
		MStagePretrust, MStageForward, MStageSMTP,
		MStageQueue, MStageDelivery, MStageStore, MStageOutbound,
	}
}

// Context identifies one mail's trace and the span under which new
// work should be recorded. The zero Context means "not sampled": every
// operation on it is a no-op.
type Context struct {
	// Hi, Lo are the two halves of the 128-bit trace id.
	Hi, Lo uint64
	// Span is the current span id — the parent for spans started from
	// this context, and the id Finish records. Zero at the root.
	Span uint64
	// Parent is Span's own parent. It never crosses the wire: the
	// receiving side parents its spans to Span.
	Parent uint64
}

// Valid reports whether the context belongs to a sampled trace.
func (c Context) Valid() bool { return c.Hi|c.Lo != 0 }

// ContextTextLen is the length of the wire encoding: 32 hex digits of
// trace id, '-', 16 hex digits of span id.
const ContextTextLen = 32 + 1 + 16

// AppendText appends the wire encoding ("<32hex>-<16hex>") to dst and
// returns the extended slice. It never allocates beyond dst's growth.
func (c Context) AppendText(dst []byte) []byte {
	dst = appendHex64(dst, c.Hi)
	dst = appendHex64(dst, c.Lo)
	dst = append(dst, '-')
	return appendHex64(dst, c.Span)
}

// TraceID returns the 32-hex trace id (allocates; not for the hot path).
func (c Context) TraceID() string {
	var b [32]byte
	out := appendHex64(appendHex64(b[:0], c.Hi), c.Lo)
	return string(out)
}

// ParseContext decodes AppendText's encoding. It returns ok=false for
// malformed input or an all-zero trace id, and never allocates.
func ParseContext(b []byte) (Context, bool) {
	if len(b) != ContextTextLen || b[32] != '-' {
		return Context{}, false
	}
	hi, ok1 := parseHex64(b[:16])
	lo, ok2 := parseHex64(b[16:32])
	sp, ok3 := parseHex64(b[33:])
	if !ok1 || !ok2 || !ok3 {
		return Context{}, false
	}
	c := Context{Hi: hi, Lo: lo, Span: sp}
	if !c.Valid() {
		return Context{}, false
	}
	return c, true
}

// ParseTraceID decodes a 32-hex trace id (the form TraceID returns and
// /trace/{id} accepts).
func ParseTraceID(s string) (hi, lo uint64, ok bool) {
	if len(s) != 32 {
		return 0, 0, false
	}
	b := []byte(s)
	hi, ok1 := parseHex64(b[:16])
	lo, ok2 := parseHex64(b[16:])
	if !ok1 || !ok2 || hi|lo == 0 {
		return 0, 0, false
	}
	return hi, lo, true
}

const hexDigits = "0123456789abcdef"

func appendHex64(dst []byte, v uint64) []byte {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return append(dst, b[:]...)
}

func parseHex64(b []byte) (uint64, bool) {
	if len(b) != 16 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// MessageSpan is one completed stage of one mail's lifecycle, stamped
// with wall-clock nanoseconds so spans from different nodes order on a
// shared timeline.
type MessageSpan struct {
	Hi, Lo uint64 // trace id
	ID     uint64 // this span's id (process-randomized, collision-free in practice)
	Parent uint64 // parent span id; 0 = root
	Node   string // recording node's name
	Stage  string // pipeline stage: pretrust, forward, smtp, queue, ...
	Start  int64  // UnixNano
	End    int64  // UnixNano
	Note   string // free-form annotation (shard name, store, outcome)
}

// Duration is the span's wall-clock extent.
func (s MessageSpan) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// TraceID returns the span's 32-hex trace id.
func (s MessageSpan) TraceID() string { return Context{Hi: s.Hi, Lo: s.Lo}.TraceID() }

// String renders the span as one self-describing line — the /trace/{id}
// wire format the cluster aggregator parses back:
//
//	mspan trace=<32hex> id=<16hex> parent=<16hex> node=fe-1 stage=forward start=<ns> end=<ns> note=shard-a
func (s MessageSpan) String() string {
	var b strings.Builder
	b.Grow(160)
	b.WriteString("mspan trace=")
	var hex [ContextTextLen]byte
	b.Write(appendHex64(appendHex64(hex[:0], s.Hi), s.Lo))
	b.WriteString(" id=")
	b.Write(appendHex64(hex[:0], s.ID))
	b.WriteString(" parent=")
	b.Write(appendHex64(hex[:0], s.Parent))
	fmt.Fprintf(&b, " node=%s stage=%s start=%d end=%d",
		sanitizeNote(s.Node), sanitizeNote(s.Stage), s.Start, s.End)
	if s.Note != "" {
		b.WriteString(" note=")
		b.WriteString(sanitizeNote(s.Note))
	}
	return b.String()
}

// ParseMessageSpan parses one String()-formatted line.
func ParseMessageSpan(line string) (MessageSpan, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 7 || fields[0] != "mspan" {
		return MessageSpan{}, false
	}
	var s MessageSpan
	seen := 0
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return MessageSpan{}, false
		}
		switch key {
		case "trace":
			hi, lo, ok := ParseTraceID(val)
			if !ok {
				return MessageSpan{}, false
			}
			s.Hi, s.Lo = hi, lo
			seen++
		case "id":
			v, ok := parseHex64([]byte(val))
			if !ok {
				return MessageSpan{}, false
			}
			s.ID = v
			seen++
		case "parent":
			v, ok := parseHex64([]byte(val))
			if !ok {
				return MessageSpan{}, false
			}
			s.Parent = v
			seen++
		case "node":
			s.Node = val
		case "stage":
			s.Stage = val
			seen++
		case "start":
			if _, err := fmt.Sscanf(val, "%d", &s.Start); err != nil {
				return MessageSpan{}, false
			}
			seen++
		case "end":
			if _, err := fmt.Sscanf(val, "%d", &s.End); err != nil {
				return MessageSpan{}, false
			}
			seen++
		case "note":
			s.Note = val
		}
	}
	return s, seen >= 6
}

// ParseMessageSpans reads String()-formatted lines from r, skipping
// anything that is not an mspan line.
func ParseMessageSpans(r io.Reader) ([]MessageSpan, error) {
	var spans []MessageSpan
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		if s, ok := ParseMessageSpan(sc.Text()); ok {
			spans = append(spans, s)
		}
	}
	return spans, sc.Err()
}

// MessageRecorder mints trace contexts and keeps a bounded ring of
// completed message spans. All methods are safe for concurrent use and
// are no-ops on a nil receiver or an invalid context.
type MessageRecorder struct {
	node   string
	sample uint64 // record 1 in sample connections; 0 disables minting

	minted atomic.Uint64 // mint counter driving the sampling decision
	rng    atomic.Uint64 // splitmix64 state for trace and span ids

	mu   sync.Mutex
	buf  []MessageSpan // ring
	next int
	n    int
}

// NewMessageRecorder returns a recorder identifying itself as node,
// holding the most recent capacity spans, and sampling one in sampleN
// minted connections (1 samples everything, 0 disables tracing).
func NewMessageRecorder(node string, capacity, sampleN int) *MessageRecorder {
	if capacity <= 0 {
		capacity = 1024
	}
	if sampleN < 0 {
		sampleN = 0
	}
	r := &MessageRecorder{
		node:   node,
		sample: uint64(sampleN),
		buf:    make([]MessageSpan, capacity),
	}
	// Seed span/trace id generation off the wall clock and the node
	// name, so ids minted by different processes never collide.
	seed := uint64(time.Now().UnixNano())
	for _, c := range node {
		seed = seed*0x100000001b3 + uint64(c)
	}
	r.rng.Store(seed)
	return r
}

// Node returns the recorder's node name.
func (r *MessageRecorder) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// rand64 is an atomic splitmix64 step: lock-free, allocation-free.
func (r *MessageRecorder) rand64() uint64 {
	x := r.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

func (r *MessageRecorder) nonzero64() uint64 {
	for {
		if v := r.rand64(); v != 0 {
			return v
		}
	}
}

// Mint makes the sampling decision for one connection and returns its
// root context: a fresh 128-bit trace id with no current span. The
// zero Context comes back for sampled-out connections (and from a nil
// recorder), making every downstream tracing call a no-op.
func (r *MessageRecorder) Mint() Context {
	if r == nil || r.sample == 0 {
		return Context{}
	}
	if n := r.minted.Add(1); r.sample > 1 && n%r.sample != 0 {
		return Context{}
	}
	return Context{Hi: r.nonzero64(), Lo: r.nonzero64()}
}

// NewSpan allocates a span id under tc: the returned context carries
// the new id as its Span (so downstream stages parent to it) and
// remembers tc.Span as the Parent that Finish will record.
func (r *MessageRecorder) NewSpan(tc Context) Context {
	if r == nil || !tc.Valid() {
		return Context{}
	}
	return Context{Hi: tc.Hi, Lo: tc.Lo, Span: r.nonzero64(), Parent: tc.Span}
}

// FinishAt records the span sp carries (id sp.Span, parent sp.Parent)
// as one completed stage spanning [start, end].
func (r *MessageRecorder) FinishAt(sp Context, stage string, start, end time.Time, note string) {
	if r == nil || !sp.Valid() || sp.Span == 0 {
		return
	}
	ms := MessageSpan{
		Hi: sp.Hi, Lo: sp.Lo, ID: sp.Span, Parent: sp.Parent,
		Node: r.node, Stage: stage,
		Start: start.UnixNano(), End: end.UnixNano(), Note: note,
	}
	r.mu.Lock()
	r.buf[r.next] = ms
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Finish is FinishAt with end = now.
func (r *MessageRecorder) Finish(sp Context, stage string, start time.Time, note string) {
	if r == nil || !sp.Valid() || sp.Span == 0 {
		return
	}
	r.FinishAt(sp, stage, start, time.Now(), note)
}

// Spans returns the retained spans, oldest first.
func (r *MessageRecorder) Spans() []MessageSpan {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MessageSpan, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Trace returns the retained spans belonging to one trace id, oldest
// first.
func (r *MessageRecorder) Trace(hi, lo uint64) []MessageSpan {
	var out []MessageSpan
	for _, s := range r.Spans() {
		if s.Hi == hi && s.Lo == lo {
			out = append(out, s)
		}
	}
	return out
}

// TraceIDs returns up to max distinct trace ids present in the ring,
// most recently recorded first.
func (r *MessageRecorder) TraceIDs(max int) []string {
	spans := r.Spans()
	seen := make(map[[2]uint64]bool, len(spans))
	var out []string
	for i := len(spans) - 1; i >= 0 && (max <= 0 || len(out) < max); i-- {
		key := [2]uint64{spans[i].Hi, spans[i].Lo}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, spans[i].TraceID())
	}
	return out
}

// WriteTrace writes one trace's spans to w, one mspan line each.
func (r *MessageRecorder) WriteTrace(w io.Writer, hi, lo uint64) error {
	for _, s := range r.Trace(hi, lo) {
		if _, err := io.WriteString(w, s.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// StitchSpans merges spans gathered from several nodes into one
// timeline: duplicates (same node, same span id) collapse and the
// result sorts by start time, then id, for deterministic rendering.
func StitchSpans(spans []MessageSpan) []MessageSpan {
	type key struct {
		node string
		id   uint64
	}
	seen := make(map[key]bool, len(spans))
	out := make([]MessageSpan, 0, len(spans))
	for _, s := range spans {
		k := key{s.Node, s.ID}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SpanTree is one node of a stitched trace rendered as a tree.
type SpanTree struct {
	Span     MessageSpan
	Children []*SpanTree
}

// BuildSpanTree arranges stitched spans into parent→child trees.
// Spans whose parent id is unknown (or zero) become roots; roots and
// children keep StitchSpans order.
func BuildSpanTree(spans []MessageSpan) []*SpanTree {
	spans = StitchSpans(spans)
	nodes := make(map[uint64]*SpanTree, len(spans))
	for i := range spans {
		nodes[spans[i].ID] = &SpanTree{Span: spans[i]}
	}
	var roots []*SpanTree
	for _, s := range spans {
		n := nodes[s.ID]
		if parent, ok := nodes[s.Parent]; ok && s.Parent != 0 && s.Parent != s.ID {
			parent.Children = append(parent.Children, n)
			continue
		}
		roots = append(roots, n)
	}
	return roots
}
