package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanEvent is one completed stage in a connection's life, as emitted by
// the real servers: which connection, which pipeline stage, when it
// started and ended (offsets on the recorder's clock), and an optional
// note carrying the stage's verdict ("allow", "reject", "quit",
// "dropped", "trusted", …).
//
// Events serialize to single text lines (see String / ParseSpanEvent),
// so a span stream can be dumped over an admin endpoint, written to a
// file, and reconstructed offline by cmd/traceinfo.
type SpanEvent struct {
	// Conn identifies the connection; ids are unique per recorder.
	Conn uint64
	// Stage names the pipeline stage (smtpserver.StageAccept etc.).
	Stage string
	// Start and End are offsets from the recorder's epoch.
	Start time.Duration
	End   time.Duration
	// Note is the stage's verdict or detail; single token, no spaces.
	Note string
}

// Duration returns the stage's elapsed time.
func (e SpanEvent) Duration() time.Duration { return e.End - e.Start }

// String renders the event as one parseable text line (without a
// trailing newline): `span conn=3 stage=dialog start=1.5ms end=4ms
// note=quit`. The note field is omitted when empty.
func (e SpanEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "span conn=%d stage=%s start=%s end=%s", e.Conn, e.Stage, e.Start, e.End)
	if e.Note != "" {
		fmt.Fprintf(&b, " note=%s", sanitizeNote(e.Note))
	}
	return b.String()
}

// sanitizeNote keeps notes single-token so lines stay parseable.
func sanitizeNote(s string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '=' {
			return '_'
		}
		return r
	}, s)
}

// ParseSpanEvent parses one line produced by SpanEvent.String.
func ParseSpanEvent(line string) (SpanEvent, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != "span" {
		return SpanEvent{}, fmt.Errorf("trace: not a span line: %q", line)
	}
	var e SpanEvent
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return SpanEvent{}, fmt.Errorf("trace: bad span field %q in %q", f, line)
		}
		var err error
		switch k {
		case "conn":
			_, err = fmt.Sscanf(v, "%d", &e.Conn)
		case "stage":
			e.Stage = v
		case "start":
			e.Start, err = time.ParseDuration(v)
		case "end":
			e.End, err = time.ParseDuration(v)
		case "note":
			e.Note = v
		default:
			return SpanEvent{}, fmt.Errorf("trace: unknown span field %q in %q", k, line)
		}
		if err != nil {
			return SpanEvent{}, fmt.Errorf("trace: bad span field %q in %q: %w", f, line, err)
		}
	}
	if e.Stage == "" {
		return SpanEvent{}, fmt.Errorf("trace: span line missing stage: %q", line)
	}
	return e, nil
}

// ParseSpans reads span lines from r, skipping blank lines and lines
// that are not span records (so a mixed server log can be piped in
// whole).
func ParseSpans(r io.Reader) ([]SpanEvent, error) {
	var out []SpanEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || !strings.HasPrefix(line, "span ") {
			continue
		}
		e, err := ParseSpanEvent(line)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// SpanRecorder collects SpanEvents from a running server into a bounded
// ring buffer: cheap enough to leave on (a handful of events per
// connection, one small struct each), with the oldest events overwritten
// once the capacity is reached. It is safe for concurrent use.
type SpanRecorder struct {
	epoch time.Time
	next  atomic.Uint64

	mu    sync.Mutex
	buf   []SpanEvent
	start int // index of oldest event
	n     int // events held
}

// NewSpanRecorder returns a recorder retaining up to capacity events
// (default 4096 when capacity ≤ 0).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &SpanRecorder{epoch: time.Now(), buf: make([]SpanEvent, capacity)}
}

// ConnID allocates the next connection id (ids start at 1).
func (r *SpanRecorder) ConnID() uint64 { return r.next.Add(1) }

// Offset converts an instant to an offset on the recorder's clock.
func (r *SpanRecorder) Offset(t time.Time) time.Duration { return t.Sub(r.epoch) }

// Record appends one event, overwriting the oldest once full.
func (r *SpanRecorder) Record(e SpanEvent) {
	r.mu.Lock()
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
	} else {
		r.buf[r.start] = e
		r.start = (r.start + 1) % len(r.buf)
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *SpanRecorder) Events() []SpanEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanEvent, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// WriteTo dumps the retained events as text lines, oldest first.
func (r *SpanRecorder) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range r.Events() {
		n, err := fmt.Fprintln(w, e.String())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ConnSpan is one connection's reconstructed life: its events in stage
// order plus the derived totals traceinfo prints.
type ConnSpan struct {
	Conn   uint64
	Events []SpanEvent
}

// Start returns the earliest stage start.
func (c ConnSpan) Start() time.Duration {
	if len(c.Events) == 0 {
		return 0
	}
	return c.Events[0].Start
}

// End returns the latest stage end.
func (c ConnSpan) End() time.Duration {
	end := time.Duration(0)
	for _, e := range c.Events {
		if e.End > end {
			end = e.End
		}
	}
	return end
}

// Verdict returns the note of the last event that carries one — how the
// connection's life ended.
func (c ConnSpan) Verdict() string {
	for i := len(c.Events) - 1; i >= 0; i-- {
		if c.Events[i].Note != "" {
			return c.Events[i].Note
		}
	}
	return ""
}

// GroupSpans reconstructs per-connection lives from an event stream:
// events are grouped by connection id, ordered by start within each
// connection, and connections ordered by first activity. Events with
// Conn == 0 (emitted when no recorder allocated an id) are dropped.
func GroupSpans(events []SpanEvent) []ConnSpan {
	byConn := make(map[uint64][]SpanEvent)
	for _, e := range events {
		if e.Conn == 0 {
			continue
		}
		byConn[e.Conn] = append(byConn[e.Conn], e)
	}
	out := make([]ConnSpan, 0, len(byConn))
	for id, evs := range byConn {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		out = append(out, ConnSpan{Conn: id, Events: evs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start() != out[j].Start() {
			return out[i].Start() < out[j].Start()
		}
		return out[i].Conn < out[j].Conn
	})
	return out
}
