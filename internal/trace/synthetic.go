package trace

import (
	"fmt"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
)

// BounceSweep generates the §5.4 controlled workload: n connections with
// mail sizes following the Univ model, of which the given fraction are
// bounce connections (every recipient invalid). The remaining mails go
// to single valid recipients, so the experiment isolates the
// concurrency-architecture effect from multi-recipient disk effects.
func BounceSweep(seed uint64, n int, bounceRatio float64, domain string, mailboxes int) []Conn {
	rng := sim.NewRNG(seed)
	conns := make([]Conn, 0, n)
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		now += rng.Exp(10 * time.Millisecond)
		c := Conn{
			At:       now,
			ClientIP: addr.MakeIPv4(100, byte(i>>16), byte(i>>8), byte(i)),
			Helo:     fmt.Sprintf("c%d.load.example", i),
			Sender:   fmt.Sprintf("s%d@load.example", i%1000),
		}
		if rng.Bool(bounceRatio) {
			c.Spam = true
			c.Rcpts = []Rcpt{{
				Addr:  fmt.Sprintf("guess%06d@%s", rng.Intn(1000000), domain),
				Valid: false,
			}}
		} else {
			c.Rcpts = []Rcpt{{
				Addr:  fmt.Sprintf("user%04d@%s", rng.Intn(mailboxes), domain),
				Valid: true,
			}}
			c.SizeBytes = hamSize(rng)
		}
		conns = append(conns, c)
	}
	return conns
}

// RecipientSweep generates the §6.3 controlled workload: mails "destined
// to 15 distinct mailboxes, i.e., each sequence of 15 mails share the
// same size", delivered using rcptsPerConn recipients per connection
// (e.g. 5 recipients per connection → 3 connections per sequence). The
// sizes follow the spam-size model — multi-recipient bulk mail is
// templated and compact. It returns sequences×ceil(15/rcpts)
// connections covering sequences×15 (mail, mailbox) deliveries.
func RecipientSweep(seed uint64, sequences, rcptsPerConn int, domain string) []Conn {
	const groupSize = 15
	if rcptsPerConn < 1 {
		rcptsPerConn = 1
	}
	if rcptsPerConn > groupSize {
		rcptsPerConn = groupSize
	}
	rng := sim.NewRNG(seed)
	var conns []Conn
	now := time.Duration(0)
	for seq := 0; seq < sequences; seq++ {
		size := spamSize(rng)
		for start := 0; start < groupSize; start += rcptsPerConn {
			end := start + rcptsPerConn
			if end > groupSize {
				end = groupSize
			}
			rcpts := make([]Rcpt, 0, end-start)
			for m := start; m < end; m++ {
				rcpts = append(rcpts, Rcpt{
					Addr:  fmt.Sprintf("user%04d@%s", m, domain),
					Valid: true,
				})
			}
			now += time.Millisecond
			conns = append(conns, Conn{
				At:        now,
				ClientIP:  addr.MakeIPv4(100, 0, byte(seq>>8), byte(seq)),
				Helo:      "bulk.load.example",
				Sender:    fmt.Sprintf("bulk%d@load.example", seq),
				Rcpts:     rcpts,
				SizeBytes: size,
			})
		}
	}
	return conns
}

// ECNPoint is one day of the ECN measurement (Figure 3).
type ECNPoint struct {
	// Day is the offset from the series start (Jan 2007).
	Day int
	// BounceRatio is bounced mails over total mails delivered.
	BounceRatio float64
	// UnfinishedRatio is unfinished SMTP transactions over connections.
	UnfinishedRatio float64
}

// ECNSeries regenerates the Figure 3 series: about a year of daily
// ratios with bounces between 20–25% (drifting slightly upward) and
// unfinished transactions between 5–15%.
func ECNSeries(seed uint64, days int) []ECNPoint {
	if days <= 0 {
		days = 365
	}
	rng := sim.NewRNG(seed)
	pts := make([]ECNPoint, 0, days)
	bounce := 0.215
	unfinished := 0.10
	for d := 0; d < days; d++ {
		// Slow upward drift of the bounce ratio across the year ("a
		// slight increase in the percentage of bounces within a year's
		// time frame") plus day-to-day jitter and weekly texture.
		drift := 0.02 * float64(d) / float64(days)
		b := bounce + drift + 0.018*(rng.Float64()-0.5) + 0.006*weekly(d)
		u := unfinished + 0.05*(rng.Float64()-0.5) + 0.01*weekly(d+3)
		pts = append(pts, ECNPoint{
			Day:             d,
			BounceRatio:     clamp(b, 0.18, 0.27),
			UnfinishedRatio: clamp(u, 0.05, 0.15),
		})
	}
	return pts
}

func weekly(d int) float64 {
	// A light 7-day ripple: weekends carry proportionally more spam.
	switch d % 7 {
	case 5, 6:
		return 1
	default:
		return -0.4
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
