package trace

import (
	"fmt"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
)

// BounceSweep generates the §5.4 controlled workload: n connections with
// mail sizes following the Univ model, of which the given fraction are
// bounce connections (every recipient invalid). The remaining mails go
// to single valid recipients, so the experiment isolates the
// concurrency-architecture effect from multi-recipient disk effects.
func BounceSweep(seed uint64, n int, bounceRatio float64, domain string, mailboxes int) []Conn {
	rng := sim.NewRNG(seed)
	conns := make([]Conn, 0, n)
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		now += rng.Exp(10 * time.Millisecond)
		c := Conn{
			At:       now,
			ClientIP: addr.MakeIPv4(100, byte(i>>16), byte(i>>8), byte(i)),
			Helo:     fmt.Sprintf("c%d.load.example", i),
			Sender:   fmt.Sprintf("s%d@load.example", i%1000),
		}
		if rng.Bool(bounceRatio) {
			c.Spam = true
			c.Rcpts = []Rcpt{{
				Addr:  fmt.Sprintf("guess%06d@%s", rng.Intn(1000000), domain),
				Valid: false,
			}}
		} else {
			c.Rcpts = []Rcpt{{
				Addr:  fmt.Sprintf("user%04d@%s", rng.Intn(mailboxes), domain),
				Valid: true,
			}}
			c.SizeBytes = hamSize(rng)
		}
		conns = append(conns, c)
	}
	return conns
}

// RecipientSweep generates the §6.3 controlled workload: mails "destined
// to 15 distinct mailboxes, i.e., each sequence of 15 mails share the
// same size", delivered using rcptsPerConn recipients per connection
// (e.g. 5 recipients per connection → 3 connections per sequence). The
// sizes follow the spam-size model — multi-recipient bulk mail is
// templated and compact. It returns sequences×ceil(15/rcpts)
// connections covering sequences×15 (mail, mailbox) deliveries.
func RecipientSweep(seed uint64, sequences, rcptsPerConn int, domain string) []Conn {
	const groupSize = 15
	if rcptsPerConn < 1 {
		rcptsPerConn = 1
	}
	if rcptsPerConn > groupSize {
		rcptsPerConn = groupSize
	}
	rng := sim.NewRNG(seed)
	var conns []Conn
	now := time.Duration(0)
	for seq := 0; seq < sequences; seq++ {
		size := spamSize(rng)
		for start := 0; start < groupSize; start += rcptsPerConn {
			end := start + rcptsPerConn
			if end > groupSize {
				end = groupSize
			}
			rcpts := make([]Rcpt, 0, end-start)
			for m := start; m < end; m++ {
				rcpts = append(rcpts, Rcpt{
					Addr:  fmt.Sprintf("user%04d@%s", m, domain),
					Valid: true,
				})
			}
			now += time.Millisecond
			conns = append(conns, Conn{
				At:        now,
				ClientIP:  addr.MakeIPv4(100, 0, byte(seq>>8), byte(seq)),
				Helo:      "bulk.load.example",
				Sender:    fmt.Sprintf("bulk%d@load.example", seq),
				Rcpts:     rcpts,
				SizeBytes: size,
			})
		}
	}
	return conns
}

// PolicySweep generates the policy-engine workload: legitimate mail from
// one-off sources mixed with spam from a small pool of repeat-offender
// sources packed into a few /25 blocks (the Figure 12 clustering). It
// differs from BounceSweep in one decisive way: most spam connections
// carry a *valid* recipient — delivered spam, not address guessing — so
// fork-after-trust alone still hands them to workers; only a pre-trust
// policy verdict can refuse them before delegation. It returns the
// connections plus the ground-truth DNSBL listing (≈80% of the spam
// sources are listed; the rest are caught by greylisting, rates, or
// accumulated reputation).
func PolicySweep(seed uint64, n int, spamRatio float64, domain string, mailboxes int) ([]Conn, map[addr.IPv4]bool) {
	rng := sim.NewRNG(seed)
	nsrc := n / 50
	if nsrc < 8 {
		nsrc = 8
	}
	sources := make([]addr.IPv4, nsrc)
	listed := make(map[addr.IPv4]bool, nsrc)
	for i := range sources {
		// 16 sources per /25 block: dense zombie neighbourhoods.
		block, host := i/16, i%16
		ip := addr.MakeIPv4(185, byte(block>>7), byte(block<<1), byte(host))
		sources[i] = ip
		if rng.Bool(0.8) {
			listed[ip] = true
		}
	}
	conns := make([]Conn, 0, n)
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		now += rng.Exp(10 * time.Millisecond)
		if rng.Bool(spamRatio) {
			c := Conn{
				At:       now,
				ClientIP: sources[rng.Intn(len(sources))],
				Helo:     "mx.bulk.example",
				Sender:   fmt.Sprintf("x%d@bulk.example", rng.Intn(200)),
				Spam:     true,
			}
			if rng.Bool(0.7) {
				// Delivered spam: a real mailbox, templated bulk size.
				c.Rcpts = []Rcpt{{
					Addr:  fmt.Sprintf("user%04d@%s", rng.Intn(mailboxes), domain),
					Valid: true,
				}}
				c.SizeBytes = spamSize(rng)
			} else {
				// Address-guessing bounce.
				for g := 1 + rng.Intn(3); g > 0; g-- {
					c.Rcpts = append(c.Rcpts, Rcpt{
						Addr:  fmt.Sprintf("guess%06d@%s", rng.Intn(1000000), domain),
						Valid: false,
					})
				}
			}
			conns = append(conns, c)
			continue
		}
		// Ham: a fresh source per connection, spread across /25 prefixes
		// (low bits in the second octet) so prefix-level limits never
		// throttle legitimate mail.
		conns = append(conns, Conn{
			At:       now,
			ClientIP: addr.MakeIPv4(100, byte(i), byte(i>>8), byte(i>>16)),
			Helo:     fmt.Sprintf("c%d.corp.example", i),
			Sender:   fmt.Sprintf("s%d@corp%d.example", i%500, i%37),
			Rcpts: []Rcpt{{
				Addr:  fmt.Sprintf("user%04d@%s", rng.Intn(mailboxes), domain),
				Valid: true,
			}},
			SizeBytes: hamSize(rng),
		})
	}
	return conns, listed
}

// ECNPoint is one day of the ECN measurement (Figure 3).
type ECNPoint struct {
	// Day is the offset from the series start (Jan 2007).
	Day int
	// BounceRatio is bounced mails over total mails delivered.
	BounceRatio float64
	// UnfinishedRatio is unfinished SMTP transactions over connections.
	UnfinishedRatio float64
}

// ECNSeries regenerates the Figure 3 series: about a year of daily
// ratios with bounces between 20–25% (drifting slightly upward) and
// unfinished transactions between 5–15%.
func ECNSeries(seed uint64, days int) []ECNPoint {
	if days <= 0 {
		days = 365
	}
	rng := sim.NewRNG(seed)
	pts := make([]ECNPoint, 0, days)
	bounce := 0.215
	unfinished := 0.10
	for d := 0; d < days; d++ {
		// Slow upward drift of the bounce ratio across the year ("a
		// slight increase in the percentage of bounces within a year's
		// time frame") plus day-to-day jitter and weekly texture.
		drift := 0.02 * float64(d) / float64(days)
		b := bounce + drift + 0.018*(rng.Float64()-0.5) + 0.006*weekly(d)
		u := unfinished + 0.05*(rng.Float64()-0.5) + 0.01*weekly(d+3)
		pts = append(pts, ECNPoint{
			Day:             d,
			BounceRatio:     clamp(b, 0.18, 0.27),
			UnfinishedRatio: clamp(u, 0.05, 0.15),
		})
	}
	return pts
}

func weekly(d int) float64 {
	// A light 7-day ripple: weekends carry proportionally more spam.
	switch d % 7 {
	case 5, 6:
		return 1
	default:
		return -0.4
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
