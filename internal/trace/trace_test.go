package trace

import (
	"testing"
	"time"

	"repro/internal/addr"
)

func TestConnPredicates(t *testing.T) {
	bounce := Conn{Rcpts: []Rcpt{{Addr: "x@d", Valid: false}, {Addr: "y@d", Valid: false}}}
	if !bounce.IsBounce() || bounce.Delivers() || bounce.ValidRcpts() != 0 {
		t.Fatal("bounce predicates wrong")
	}
	mixed := Conn{Rcpts: []Rcpt{{Valid: false}, {Valid: true}}}
	if mixed.IsBounce() || !mixed.Delivers() || mixed.ValidRcpts() != 1 {
		t.Fatal("mixed predicates wrong")
	}
	unfinished := Conn{Unfinished: true}
	if unfinished.IsBounce() || unfinished.Delivers() {
		t.Fatal("unfinished predicates wrong")
	}
}

// smallSinkhole is a scaled sinkhole for quick tests.
func smallSinkhole(t *testing.T, mutate ...func(*SinkholeConfig)) (*Sinkhole, []Conn) {
	t.Helper()
	cfg := SinkholeConfig{Seed: 42, Connections: 8000, Prefixes: 700}
	for _, m := range mutate {
		m(&cfg)
	}
	s := NewSinkhole(cfg)
	return s, s.Generate()
}

func TestSinkholePopulationShape(t *testing.T) {
	s, conns := smallSinkhole(t)
	st := Summarize(conns)
	if st.Connections != 8000 {
		t.Fatalf("connections = %d", st.Connections)
	}
	// The IPs:prefixes ratio of the real trace is ≈2.2.
	ratio := float64(len(s.SpamIPs())) / float64(len(s.Prefixes()))
	if ratio < 1.8 || ratio > 2.6 {
		t.Fatalf("IPs per prefix = %.2f, want ≈2.2", ratio)
	}
	if len(s.Prefixes()) != 700 {
		t.Fatalf("prefixes = %d", len(s.Prefixes()))
	}
	// Every spammer is CBL-listed.
	listed := make(map[addr.IPv4]bool)
	for _, ip := range s.CBLPopulation() {
		listed[ip] = true
	}
	for _, ip := range s.SpamIPs() {
		if !listed[ip] {
			t.Fatalf("spammer %s not in CBL population", ip)
		}
	}
}

func TestSinkholeFig12Infestation(t *testing.T) {
	s, _ := smallSinkhole(t)
	perPrefix := make(map[addr.Prefix]int)
	for _, ip := range s.CBLPopulation() {
		perPrefix[ip.Prefix24()]++
	}
	counts := make([]int, 0, len(perPrefix))
	for _, n := range perPrefix {
		counts = append(counts, n)
	}
	// Figure 12: 40% of prefixes hold >10 blacklisted IPs, ≈3% hold >100.
	if f := FractionAbove(counts, 10); f < 0.34 || f > 0.46 {
		t.Fatalf("frac >10 = %.3f, want ≈0.40", f)
	}
	if f := FractionAbove(counts, 100); f < 0.015 || f > 0.05 {
		t.Fatalf("frac >100 = %.3f, want ≈0.03", f)
	}
}

func TestSinkholeFig4Recipients(t *testing.T) {
	_, conns := smallSinkhole(t)
	sample := RcptSample(conns)
	// §6.3: "the average number of recipients per connection in this
	// trace is about 7".
	if mean := sample.Mean(); mean < 6 || mean > 8.5 {
		t.Fatalf("mean rcpts = %.2f, want ≈7", mean)
	}
	// Figure 4: commonly between 5 and 15.
	within := sample.FractionBelow(15) - sample.FractionBelow(4)
	if within < 0.5 {
		t.Fatalf("frac in [5,15] = %.2f, want majority", within)
	}
	if sample.Max() > 20 {
		t.Fatalf("max rcpts = %v, distribution tops at 20", sample.Max())
	}
}

func TestSinkholeFig13TemporalLocality(t *testing.T) {
	_, conns := smallSinkhole(t)
	byIP, byPrefix := Interarrivals(conns)
	if byIP.Count() == 0 || byPrefix.Count() == 0 {
		t.Fatal("no interarrival observations")
	}
	// Figure 13: same-/24 interarrivals are markedly shorter than
	// same-IP interarrivals.
	if !(byPrefix.Quantile(0.5) < byIP.Quantile(0.5)) {
		t.Fatalf("median prefix gap %v !< median IP gap %v",
			byPrefix.Quantile(0.5), byIP.Quantile(0.5))
	}
	if !(byPrefix.Mean() < byIP.Mean()) {
		t.Fatalf("mean prefix gap %v !< mean IP gap %v", byPrefix.Mean(), byIP.Mean())
	}
}

func TestSinkholeBounceAndUnfinishedRatios(t *testing.T) {
	_, conns := smallSinkhole(t, func(c *SinkholeConfig) {
		c.BounceRatio = 0.25
		c.UnfinishedRatio = 0.10
	})
	st := Summarize(conns)
	if r := st.BounceRatio(); r < 0.21 || r > 0.29 {
		t.Fatalf("bounce ratio = %.3f, want ≈0.25", r)
	}
	if r := st.UnfinishedRatio(); r < 0.07 || r > 0.13 {
		t.Fatalf("unfinished ratio = %.3f, want ≈0.10", r)
	}
}

func TestSinkholeDeterminism(t *testing.T) {
	gen := func() []Conn {
		return NewSinkhole(SinkholeConfig{Seed: 7, Connections: 500, Prefixes: 64}).Generate()
	}
	a, b := gen(), gen()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].ClientIP != b[i].ClientIP ||
			len(a[i].Rcpts) != len(b[i].Rcpts) || a[i].SizeBytes != b[i].SizeBytes {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestSinkholeTimeOrdering(t *testing.T) {
	_, conns := smallSinkhole(t)
	for i := 1; i < len(conns); i++ {
		if conns[i].At < conns[i-1].At {
			t.Fatalf("out of order at %d", i)
		}
	}
	if conns[len(conns)-1].At <= 0 {
		t.Fatal("timestamps never advanced")
	}
}

func TestUnivTraceShape(t *testing.T) {
	u := NewUniv(UnivConfig{Seed: 11, Connections: 12000})
	conns := u.Generate()
	st := Summarize(conns)
	if st.Connections != 12000 {
		t.Fatalf("connections = %d", st.Connections)
	}
	spamFrac := float64(st.SpamConns) / float64(st.Connections)
	if spamFrac < 0.63 || spamFrac > 0.71 {
		t.Fatalf("spam ratio = %.3f, want ≈0.67", spamFrac)
	}
	// Ham recipients: mean ≈1.02.
	hamRcpts, hamConns := 0, 0
	for i := range conns {
		if !conns[i].Spam && len(conns[i].Rcpts) > 0 {
			hamConns++
			hamRcpts += len(conns[i].Rcpts)
		}
	}
	mean := float64(hamRcpts) / float64(hamConns)
	if mean < 1.0 || mean > 1.06 {
		t.Fatalf("ham mean rcpts = %.3f, want ≈1.02", mean)
	}
	// Trace is time-ordered after the merge.
	for i := 1; i < len(conns); i++ {
		if conns[i].At < conns[i-1].At {
			t.Fatalf("merged trace out of order at %d", i)
		}
	}
	// Ham hosts are a small static pool; spam hosts a wide botnet.
	hamIPs := make(map[addr.IPv4]bool)
	spamIPs := make(map[addr.IPv4]bool)
	for i := range conns {
		if conns[i].Spam {
			spamIPs[conns[i].ClientIP] = true
		} else {
			hamIPs[conns[i].ClientIP] = true
		}
	}
	if len(hamIPs) >= len(spamIPs) {
		t.Fatalf("ham pool (%d) should be far smaller than botnet (%d)", len(hamIPs), len(spamIPs))
	}
}

func TestBounceSweep(t *testing.T) {
	for _, ratio := range []float64{0, 0.5, 1} {
		conns := BounceSweep(3, 4000, ratio, "d.test", 400)
		st := Summarize(conns)
		got := st.BounceRatio()
		if got < ratio-0.04 || got > ratio+0.04 {
			t.Fatalf("ratio %v: got %.3f", ratio, got)
		}
		for i := range conns {
			if len(conns[i].Rcpts) != 1 {
				t.Fatal("BounceSweep must use single recipients")
			}
			if conns[i].Delivers() && conns[i].SizeBytes == 0 {
				t.Fatal("delivering connection without size")
			}
		}
	}
}

func TestRecipientSweep(t *testing.T) {
	for _, k := range []int{1, 5, 7, 15} {
		conns := RecipientSweep(5, 10, k, "d.test")
		// Total (mail, mailbox) deliveries must be sequences×15.
		total := 0
		for i := range conns {
			total += len(conns[i].Rcpts)
			if len(conns[i].Rcpts) > k {
				t.Fatalf("k=%d: connection with %d rcpts", k, len(conns[i].Rcpts))
			}
		}
		if total != 150 {
			t.Fatalf("k=%d: deliveries = %d, want 150", k, total)
		}
	}
	// Within a sequence, all mails share one size.
	conns := RecipientSweep(5, 3, 5, "d.test")
	perSeq := 3 // 15/5 connections per sequence
	for seq := 0; seq < 3; seq++ {
		first := conns[seq*perSeq].SizeBytes
		for i := 1; i < perSeq; i++ {
			if conns[seq*perSeq+i].SizeBytes != first {
				t.Fatal("sizes differ within a sequence")
			}
		}
	}
	// Clamps.
	if got := RecipientSweep(5, 1, 0, "d.test"); len(got) != 15 {
		t.Fatalf("k=0 should clamp to 1: %d conns", len(got))
	}
	if got := RecipientSweep(5, 1, 99, "d.test"); len(got) != 1 {
		t.Fatalf("k=99 should clamp to 15: %d conns", len(got))
	}
}

func TestECNSeries(t *testing.T) {
	pts := ECNSeries(9, 365)
	if len(pts) != 365 {
		t.Fatalf("days = %d", len(pts))
	}
	var earlySum, lateSum float64
	for i, p := range pts {
		if p.BounceRatio < 0.18 || p.BounceRatio > 0.27 {
			t.Fatalf("day %d bounce = %.3f outside Figure 3's band", i, p.BounceRatio)
		}
		if p.UnfinishedRatio < 0.05 || p.UnfinishedRatio > 0.15 {
			t.Fatalf("day %d unfinished = %.3f outside band", i, p.UnfinishedRatio)
		}
		if i < 90 {
			earlySum += p.BounceRatio
		}
		if i >= 275 {
			lateSum += p.BounceRatio
		}
	}
	// The year shows a slight upward drift.
	if lateSum/90 <= earlySum/90 {
		t.Fatal("bounce ratio should drift upward across the year")
	}
}

func TestSummarizeEmptyAndRatios(t *testing.T) {
	st := Summarize(nil)
	if st.BounceRatio() != 0 || st.UnfinishedRatio() != 0 || st.MeanRcpts() != 0 {
		t.Fatal("empty trace ratios should be 0")
	}
}

func TestCountCDF(t *testing.T) {
	pts := CountCDF([]int{3, 1, 2})
	if len(pts) != 3 || pts[0].X != 1 || pts[2].X != 3 || pts[2].Frac != 1 {
		t.Fatalf("pts = %+v", pts)
	}
	if CountCDF(nil) != nil {
		t.Fatal("empty CDF should be nil")
	}
	if FractionAbove(nil, 1) != 0 {
		t.Fatal("empty FractionAbove should be 0")
	}
}

func TestInterarrivalsSingletonsExcluded(t *testing.T) {
	conns := []Conn{
		{At: 0, ClientIP: addr.MakeIPv4(1, 2, 3, 4)},
		{At: time.Second, ClientIP: addr.MakeIPv4(5, 6, 7, 8)},
	}
	byIP, byPrefix := Interarrivals(conns)
	if byIP.Count() != 0 || byPrefix.Count() != 0 {
		t.Fatal("singleton origins must not contribute gaps")
	}
}

func TestPolicySweep(t *testing.T) {
	conns, listed := PolicySweep(7, 5000, 0.5, "d.test", 400)
	if len(conns) != 5000 {
		t.Fatalf("len = %d", len(conns))
	}
	if len(listed) == 0 {
		t.Fatal("no listed sources")
	}
	spam, spamDeliver, hamIPs := 0, 0, map[string]bool{}
	srcIPs := map[string]bool{}
	for i := range conns {
		c := &conns[i]
		if c.Spam {
			spam++
			srcIPs[c.ClientIP.String()] = true
			if c.Delivers() {
				spamDeliver++
			}
		} else {
			hamIPs[c.ClientIP.String()] = true
			if !c.Delivers() {
				t.Fatal("ham connection does not deliver")
			}
		}
	}
	ratio := float64(spam) / float64(len(conns))
	if ratio < 0.46 || ratio > 0.54 {
		t.Fatalf("spam ratio = %.3f", ratio)
	}
	// Spam must be dominated by *delivered* spam — the class
	// fork-after-trust alone cannot keep off the workers.
	if frac := float64(spamDeliver) / float64(spam); frac < 0.6 || frac > 0.8 {
		t.Fatalf("delivered-spam fraction = %.3f, want ≈0.7", frac)
	}
	// Repeat offenders: a small source pool reused across many
	// connections; ham sources are one-off.
	if len(srcIPs) >= spam/5 {
		t.Fatalf("spam sources = %d for %d spam conns — not repeat offenders", len(srcIPs), spam)
	}
	// Ground truth covers only spam sources, roughly 80% of the pool.
	for ip := range listed {
		if hamIPs[ip.String()] {
			t.Fatalf("ham IP %v is DNSBL-listed", ip)
		}
	}
	frac := float64(len(listed)) / float64(len(srcIPs))
	if frac < 0.6 || frac > 1 {
		t.Fatalf("listed fraction = %.3f", frac)
	}
}

func TestPolicySweepDeterministic(t *testing.T) {
	a, la := PolicySweep(9, 2000, 0.6, "d.test", 400)
	b, lb := PolicySweep(9, 2000, 0.6, "d.test", 400)
	if len(a) != len(b) || len(la) != len(lb) {
		t.Fatalf("sizes differ: %d/%d conns, %d/%d listed", len(a), len(b), len(la), len(lb))
	}
	for i := range a {
		if a[i].ClientIP != b[i].ClientIP || a[i].Sender != b[i].Sender ||
			len(a[i].Rcpts) != len(b[i].Rcpts) || a[i].SizeBytes != b[i].SizeBytes {
			t.Fatalf("conn %d differs across runs", i)
		}
	}
	for ip := range la {
		if !lb[ip] {
			t.Fatalf("listing of %v differs across runs", ip)
		}
	}
}

func TestRepeatRatios(t *testing.T) {
	mk := func(ip addr.IPv4, at time.Duration) Conn {
		return Conn{At: at, ClientIP: ip, Rcpts: []Rcpt{{Addr: "u@d.test", Valid: true}}}
	}
	a := addr.MustParseIPv4("198.51.100.7")
	b := addr.MustParseIPv4("198.51.100.9") // same /25 as a
	c := addr.MustParseIPv4("203.0.113.5")  // unrelated
	conns := []Conn{
		mk(a, 0),
		mk(b, 10*time.Second), // /25 repeat, new IP
		mk(a, 30*time.Second), // IP repeat within window
		mk(c, 40*time.Second), // fresh
		mk(a, 2*time.Hour),    // repeat but outside window
	}
	ipR, prefR := RepeatRatios(conns, time.Minute)
	if want := 1.0 / 5; ipR != want {
		t.Fatalf("ip ratio = %v, want %v", ipR, want)
	}
	if want := 2.0 / 5; prefR != want {
		t.Fatalf("prefix ratio = %v, want %v", prefR, want)
	}
	if ipR2, prefR2 := RepeatRatios(nil, time.Minute); ipR2 != 0 || prefR2 != 0 {
		t.Fatal("empty trace must yield zero ratios")
	}
	// On a clustered workload the prefix ratio dominates the IP ratio.
	sw, _ := PolicySweep(5, 5000, 0.6, "d.test", 400)
	ipR, prefR = RepeatRatios(sw, time.Hour)
	if prefR <= ipR {
		t.Fatalf("clustered trace: prefix ratio %v not above IP ratio %v", prefR, ipR)
	}
}
