package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanEventRoundTrip(t *testing.T) {
	e := SpanEvent{Conn: 42, Stage: "dialog", Start: 1500 * time.Microsecond, End: 4 * time.Millisecond, Note: "quit"}
	line := e.String()
	got, err := ParseSpanEvent(line)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip: %+v != %+v", got, e)
	}
	// Note omitted when empty.
	e.Note = ""
	if strings.Contains(e.String(), "note=") {
		t.Fatalf("empty note rendered: %q", e.String())
	}
	if _, err := ParseSpanEvent(e.String()); err != nil {
		t.Fatal(err)
	}
}

func TestSpanNoteSanitized(t *testing.T) {
	e := SpanEvent{Conn: 1, Stage: "policy", Note: "rate limit=hit"}
	got, err := ParseSpanEvent(e.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != "rate_limit_hit" {
		t.Fatalf("note = %q", got.Note)
	}
}

func TestParseSpanEventErrors(t *testing.T) {
	for _, line := range []string{
		"",
		"not a span",
		"span conn=x stage=dialog",
		"span conn=1 start=zzz stage=dialog",
		"span conn=1",
		"span conn=1 bogus=field stage=dialog",
	} {
		if _, err := ParseSpanEvent(line); err == nil {
			t.Fatalf("ParseSpanEvent(%q) succeeded", line)
		}
	}
}

func TestParseSpansSkipsNonSpanLines(t *testing.T) {
	in := `2026/08/06 smtpd: serving
span conn=1 stage=accept start=0s end=1ms
span conn=1 stage=dialog start=1ms end=5ms note=quit

span conn=2 stage=accept start=2ms end=3ms
`
	events, err := ParseSpans(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(events))
	}
}

func TestSpanRecorderRingBuffer(t *testing.T) {
	r := NewSpanRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Record(SpanEvent{Conn: uint64(i), Stage: "accept"})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	// Oldest overwritten: 3, 4, 5 remain in order.
	for i, want := range []uint64{3, 4, 5} {
		if evs[i].Conn != want {
			t.Fatalf("events = %+v", evs)
		}
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	r := NewSpanRecorder(128)
	var wg sync.WaitGroup
	ids := make(map[uint64]bool)
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := r.ConnID()
				mu.Lock()
				if ids[id] {
					t.Errorf("duplicate conn id %d", id)
				}
				ids[id] = true
				mu.Unlock()
				r.Record(SpanEvent{Conn: id, Stage: "accept"})
			}
		}()
	}
	wg.Wait()
	if len(r.Events()) != 128 {
		t.Fatalf("retained %d, want capacity 128", len(r.Events()))
	}
}

func TestGroupSpans(t *testing.T) {
	events := []SpanEvent{
		{Conn: 2, Stage: "dialog", Start: 5 * time.Millisecond, End: 9 * time.Millisecond, Note: "quit"},
		{Conn: 1, Stage: "accept", Start: 0, End: time.Millisecond},
		{Conn: 2, Stage: "accept", Start: 4 * time.Millisecond, End: 5 * time.Millisecond},
		{Conn: 1, Stage: "pretrust", Start: time.Millisecond, End: 3 * time.Millisecond, Note: "dropped"},
		{Conn: 0, Stage: "accept"}, // no id allocated: dropped
	}
	lives := GroupSpans(events)
	if len(lives) != 2 {
		t.Fatalf("lives = %d, want 2", len(lives))
	}
	if lives[0].Conn != 1 || lives[1].Conn != 2 {
		t.Fatalf("order = %d, %d", lives[0].Conn, lives[1].Conn)
	}
	if lives[0].Events[0].Stage != "accept" || lives[0].Events[1].Stage != "pretrust" {
		t.Fatalf("conn 1 stages out of order: %+v", lives[0].Events)
	}
	if lives[0].Verdict() != "dropped" || lives[1].Verdict() != "quit" {
		t.Fatalf("verdicts = %q, %q", lives[0].Verdict(), lives[1].Verdict())
	}
	if lives[1].End() != 9*time.Millisecond {
		t.Fatalf("conn 2 end = %v", lives[1].End())
	}
}

func TestSpanRecorderWriteTo(t *testing.T) {
	r := NewSpanRecorder(8)
	id := r.ConnID()
	r.Record(SpanEvent{Conn: id, Stage: "accept", Start: 0, End: time.Millisecond})
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpans(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || parsed[0].Conn != id {
		t.Fatalf("parsed = %+v", parsed)
	}
}
