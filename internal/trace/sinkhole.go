package trace

import (
	"fmt"
	"time"

	"repro/internal/addr"
	"repro/internal/sim"
)

// Published statistics of the two-month sinkhole trace (Table 1).
const (
	// SinkholeConnections is the connection count of the real trace.
	SinkholeConnections = 101692
	// SinkholeIPs is the unique spam-origin count.
	SinkholeIPs = 19492
	// SinkholePrefixes is the unique /24 count.
	SinkholePrefixes = 8832
	// SinkholeDuration spans May–June 2007.
	SinkholeDuration = 61 * 24 * time.Hour
)

// fig4RcptCDF is the recipients-per-connection distribution of Figure 4:
// "the number of 'rcpt to' fields in a single spam mail is commonly
// between 5-15"; the trace-wide average is ≈7 (§6.3).
var fig4RcptCDF = sim.NewCDFSampler([]struct{ X, Frac float64 }{
	{1, 0.06}, {2, 0.11}, {3, 0.17}, {4, 0.23}, {5, 0.31},
	{7, 0.50}, {10, 0.72}, {12, 0.84}, {15, 0.94}, {17, 0.975}, {20, 1},
})

// fig12InfestationCDF is the blacklisted-IPs-per-/24 distribution of
// Figure 12: 40% of the /24s of sinkhole spammers contain more than 10
// CBL-listed IPs and about 3% contain more than 100.
var fig12InfestationCDF = sim.NewCDFSampler([]struct{ X, Frac float64 }{
	{1, 0}, {2, 0.22}, {5, 0.45}, {10, 0.60}, {30, 0.82},
	{60, 0.92}, {100, 0.97}, {180, 0.995}, {254, 1},
})

// SinkholeConfig parameterizes the sinkhole generator. The zero value
// (via NewSinkhole defaults) reproduces the published trace shape at
// full scale; reduce Connections for quick experiments.
type SinkholeConfig struct {
	// Seed drives all randomness.
	Seed uint64
	// Connections is the number of connections to generate (default
	// SinkholeConnections).
	Connections int
	// IPs and Prefixes scale the origin population (defaults
	// SinkholeIPs / SinkholePrefixes). Scaled traces keep the published
	// IPs-per-prefix ratio unless both are set explicitly.
	IPs      int
	Prefixes int
	// Duration is the trace length (default SinkholeDuration).
	Duration time.Duration
	// BounceRatio is the fraction of connections whose recipients are
	// all invalid — zero for the pure sinkhole (a sinkhole accepts
	// everything) and set to the ECN-observed ratio for the §8 combined
	// workload.
	BounceRatio float64
	// UnfinishedRatio is the fraction of connections abandoned after the
	// handshake.
	UnfinishedRatio float64
	// RcptDomain is the recipient domain (default "sink.example.org").
	RcptDomain string
	// ValidMailboxes is the number of real mailboxes valid recipients
	// are drawn from (default 400).
	ValidMailboxes int
	// HotRepeatProb is the probability that the next connection comes
	// from an IP active within the recent window — bots spam in
	// campaigns, re-sending for hours (default 0.54). Together with
	// PrefixRepeatProb it is the temporal-locality dial behind
	// Figures 13 and 15; the defaults are calibrated so a 24h-TTL cache
	// replay of the full-scale trace reproduces the paper's hit ratios
	// (73.8% per-IP, 83.9% per-prefix).
	HotRepeatProb float64
	// PrefixRepeatProb is the probability that the next connection comes
	// from a *different* bot inside a recently active /24 (default
	// 0.38) — the spatial correlation prefix-based caching exploits.
	PrefixRepeatProb float64
	// HotWindow is how long an origin stays "recent" (default 15h,
	// inside the 24h DNSBL TTL).
	HotWindow time.Duration
	// RcptSampler overrides the recipients-per-connection distribution
	// (default: the Figure 4 sinkhole distribution). The Univ model uses
	// a departmental distribution: spammers at a real department target
	// the few addresses they have harvested.
	RcptSampler *sim.CDFSampler
}

// Sinkhole generates sinkhole-style spam traffic.
type Sinkhole struct {
	cfg SinkholeConfig
	rng *sim.RNG

	prefixes   []addr.Prefix
	infested   []int         // CBL-listed count per prefix
	spamIPs    [][]addr.IPv4 // sinkhole spammers per prefix
	allSpamIPs []addr.IPv4
	cblListed  []addr.IPv4 // the whole simulated CBL population
	weights    []float64   // prefix selection weights
}

// NewSinkhole builds a generator; the construction itself lays out the
// IP population deterministically from the seed.
func NewSinkhole(cfg SinkholeConfig) *Sinkhole {
	if cfg.Connections <= 0 {
		cfg.Connections = SinkholeConnections
	}
	if cfg.Prefixes <= 0 {
		cfg.Prefixes = SinkholePrefixes
	}
	if cfg.IPs <= 0 {
		// Preserve the published IPs:prefixes ratio when scaled.
		cfg.IPs = cfg.Prefixes * SinkholeIPs / SinkholePrefixes
	}
	if cfg.IPs < cfg.Prefixes {
		cfg.IPs = cfg.Prefixes // every prefix has at least one spammer
	}
	if cfg.Duration <= 0 {
		cfg.Duration = SinkholeDuration
	}
	if cfg.RcptDomain == "" {
		cfg.RcptDomain = "sink.example.org"
	}
	if cfg.ValidMailboxes <= 0 {
		cfg.ValidMailboxes = 400
	}
	if cfg.HotRepeatProb == 0 {
		cfg.HotRepeatProb = 0.54
	}
	if cfg.PrefixRepeatProb == 0 {
		cfg.PrefixRepeatProb = 0.38
	}
	if cfg.HotWindow <= 0 {
		cfg.HotWindow = 15 * time.Hour
	}
	if cfg.RcptSampler == nil {
		cfg.RcptSampler = fig4RcptCDF
	}
	s := &Sinkhole{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}
	s.layoutPopulation()
	return s
}

// layoutPopulation assigns /24 prefixes, their CBL infestation levels,
// and the sinkhole spammers within them.
func (s *Sinkhole) layoutPopulation() {
	seen := make(map[addr.Prefix]bool, s.cfg.Prefixes)
	for len(s.prefixes) < s.cfg.Prefixes {
		// Spam sources concentrate in a handful of /8s (dynamic ranges);
		// pick the high octets from a small pool to mimic that without
		// affecting any measured statistic.
		a := byte(60 + s.rng.Intn(150))
		p := addr.MakeIPv4(a, byte(s.rng.Intn(256)), byte(s.rng.Intn(256)), 0).Prefix24()
		if !seen[p] {
			seen[p] = true
			s.prefixes = append(s.prefixes, p)
		}
	}

	// Infestation level per prefix (Figure 12) and the CBL population.
	s.infested = make([]int, len(s.prefixes))
	totalInfested := 0
	for i := range s.prefixes {
		l := int(fig12InfestationCDF.Sample(s.rng))
		if l < 1 {
			l = 1
		}
		if l > 254 {
			l = 254
		}
		s.infested[i] = l
		totalInfested += l
	}

	// Every prefix contributes one spammer; the surplus is distributed
	// proportionally to infestation (bots cluster where bots are).
	s.spamIPs = make([][]addr.IPv4, len(s.prefixes))
	counts := make([]int, len(s.prefixes))
	for i := range counts {
		counts[i] = 1
	}
	surplus := s.cfg.IPs - len(s.prefixes)
	weights := make([]float64, len(s.prefixes))
	for i, l := range s.infested {
		weights[i] = float64(l)
	}
	for n := 0; n < surplus; n++ {
		i := s.rng.WeightedChoice(weights)
		if counts[i] < s.infested[i] {
			counts[i]++
		} else {
			// Prefix saturated: place the bot in the next unsaturated one.
			for j := range counts {
				k := (i + j) % len(counts)
				if counts[k] < s.infested[k] {
					counts[k]++
					break
				}
			}
		}
	}

	// Materialize addresses: the first counts[i] infested hosts spam the
	// sinkhole; all infested hosts are CBL-listed.
	for i, p := range s.prefixes {
		hosts := s.rng.Perm(254) // host octets 1..254
		for h := 0; h < s.infested[i]; h++ {
			ip := p.Nth(hosts[h] + 1)
			s.cblListed = append(s.cblListed, ip)
			if h < counts[i] {
				s.spamIPs[i] = append(s.spamIPs[i], ip)
				s.allSpamIPs = append(s.allSpamIPs, ip)
			}
		}
	}
	s.weights = weights
}

// SpamIPs returns every sinkhole spammer address.
func (s *Sinkhole) SpamIPs() []addr.IPv4 {
	return append([]addr.IPv4(nil), s.allSpamIPs...)
}

// CBLPopulation returns every blacklisted address in the simulated CBL —
// the zone contents for the DNSBL server.
func (s *Sinkhole) CBLPopulation() []addr.IPv4 {
	return append([]addr.IPv4(nil), s.cblListed...)
}

// Prefixes returns the /24 population.
func (s *Sinkhole) Prefixes() []addr.Prefix {
	return append([]addr.Prefix(nil), s.prefixes...)
}

// recentConn is one entry of the generator's recency window.
type recentConn struct {
	at     time.Duration
	prefix int
	ip     addr.IPv4
}

// Generate produces the connection trace. The arrival process mixes
// three behaviours: a campaign repeat (the same bot sends again within
// the hot window), a neighbourhood repeat (a different bot in a recently
// active /24 — the spatial locality of §7.1), and a cold draw weighted by
// prefix infestation. The mix is what reproduces Figure 13's interarrival
// gap and Figure 15's cache hit ratios.
func (s *Sinkhole) Generate() []Conn {
	n := s.cfg.Connections
	conns := make([]Conn, 0, n)
	meanGap := s.cfg.Duration / time.Duration(n)
	now := time.Duration(0)

	var recent []recentConn

	for i := 0; i < n; i++ {
		now += s.rng.Exp(meanGap)
		// Evict window entries older than HotWindow.
		cut := 0
		for cut < len(recent) && now-recent[cut].at > s.cfg.HotWindow {
			cut++
		}
		recent = recent[cut:]

		var pi int
		var ip addr.IPv4
		roll := s.rng.Float64()
		switch {
		case len(recent) > 0 && roll < s.cfg.HotRepeatProb:
			// Campaign repeat: the same bot again.
			rc := recent[s.rng.Intn(len(recent))]
			pi, ip = rc.prefix, rc.ip
		case len(recent) > 0 && roll < s.cfg.HotRepeatProb+s.cfg.PrefixRepeatProb:
			// Neighbourhood repeat: another bot in a hot /24.
			rc := recent[s.rng.Intn(len(recent))]
			pi = rc.prefix
			ips := s.spamIPs[pi]
			ip = ips[s.rng.Intn(len(ips))]
		default:
			// Cold draw weighted by infestation.
			pi = s.rng.WeightedChoice(s.weights)
			ips := s.spamIPs[pi]
			ip = ips[s.rng.Intn(len(ips))]
		}
		recent = append(recent, recentConn{at: now, prefix: pi, ip: ip})

		c := Conn{
			At:       now,
			ClientIP: ip,
			Helo:     fmt.Sprintf("host%d.bot.example", ip),
			Sender:   fmt.Sprintf("promo%d@offers.example", s.rng.Intn(5000)),
			Spam:     true,
		}
		switch {
		case s.rng.Bool(s.cfg.UnfinishedRatio):
			c.Unfinished = true
		default:
			bounce := s.rng.Bool(s.cfg.BounceRatio / maxf(1-s.cfg.UnfinishedRatio, 1e-9))
			k := int(s.cfg.RcptSampler.Sample(s.rng))
			if k < 1 {
				k = 1
			}
			c.Rcpts = s.makeRcpts(k, bounce)
			c.SizeBytes = spamSize(s.rng)
		}
		conns = append(conns, c)
	}
	return conns
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// makeRcpts builds k recipient attempts; when bounce is true all of them
// are random guesses at nonexistent mailboxes.
func (s *Sinkhole) makeRcpts(k int, bounce bool) []Rcpt {
	rcpts := make([]Rcpt, 0, k)
	for j := 0; j < k; j++ {
		if bounce {
			rcpts = append(rcpts, Rcpt{
				Addr:  fmt.Sprintf("guess%06d@%s", s.rng.Intn(1000000), s.cfg.RcptDomain),
				Valid: false,
			})
		} else {
			rcpts = append(rcpts, Rcpt{
				Addr:  fmt.Sprintf("user%04d@%s", s.rng.Intn(s.cfg.ValidMailboxes), s.cfg.RcptDomain),
				Valid: true,
			})
		}
	}
	return rcpts
}

// spamSize draws a spam body size: small, tightly clustered (spam is
// templated); median ≈4 KB.
func spamSize(rng *sim.RNG) int {
	size := int(rng.LogNormal(8.3, 0.5))
	if size < 300 {
		size = 300
	}
	if size > 64<<10 {
		size = 64 << 10
	}
	return size
}
