package trace

import (
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/metrics"
)

// Stats summarizes a trace.
type Stats struct {
	Connections int
	UniqueIPs   int
	UniquePref  int // unique /24 prefixes
	Bounces     int // bounce connections (§4.1)
	Unfinished  int
	Delivering  int // connections that deliver ≥1 mail
	SpamConns   int
	TotalRcpts  int
	ValidRcpts  int
}

// Summarize computes trace-wide statistics.
func Summarize(conns []Conn) Stats {
	st := Stats{Connections: len(conns)}
	ips := make(map[addr.IPv4]bool)
	prefs := make(map[addr.Prefix]bool)
	for i := range conns {
		c := &conns[i]
		ips[c.ClientIP] = true
		prefs[c.ClientIP.Prefix24()] = true
		if c.Unfinished {
			st.Unfinished++
		}
		if c.IsBounce() {
			st.Bounces++
		}
		if c.Delivers() {
			st.Delivering++
		}
		if c.Spam {
			st.SpamConns++
		}
		st.TotalRcpts += len(c.Rcpts)
		st.ValidRcpts += c.ValidRcpts()
	}
	st.UniqueIPs = len(ips)
	st.UniquePref = len(prefs)
	return st
}

// BounceRatio returns bounce connections over completed connections.
func (s Stats) BounceRatio() float64 {
	completed := s.Connections - s.Unfinished
	if completed == 0 {
		return 0
	}
	return float64(s.Bounces) / float64(completed)
}

// UnfinishedRatio returns unfinished connections over all connections.
func (s Stats) UnfinishedRatio() float64 {
	if s.Connections == 0 {
		return 0
	}
	return float64(s.Unfinished) / float64(s.Connections)
}

// MeanRcpts returns the mean recipients per delivering connection.
func (s Stats) MeanRcpts() float64 {
	if s.Delivering == 0 {
		return 0
	}
	return float64(s.ValidRcpts) / float64(s.Delivering)
}

// RcptSample returns the recipients-per-connection observations for
// delivering connections — the Figure 4 population.
func RcptSample(conns []Conn) *metrics.Sample {
	s := metrics.NewSample(len(conns))
	for i := range conns {
		if len(conns[i].Rcpts) > 0 && !conns[i].Unfinished {
			s.Observe(float64(len(conns[i].Rcpts)))
		}
	}
	return s
}

// PrefixSpamCounts returns, per /24 prefix, how many connections it
// originated.
func PrefixSpamCounts(conns []Conn) map[addr.Prefix]int {
	out := make(map[addr.Prefix]int)
	for i := range conns {
		out[conns[i].ClientIP.Prefix24()]++
	}
	return out
}

// Interarrivals computes Figure 13's two distributions over a trace:
// the gaps between consecutive connections from the same IP and from the
// same /24 prefix, in seconds. Only origins appearing more than once
// contribute.
func Interarrivals(conns []Conn) (byIP, byPrefix *metrics.Sample) {
	byIP = metrics.NewSample(len(conns))
	byPrefix = metrics.NewSample(len(conns))
	lastIP := make(map[addr.IPv4]time.Duration)
	lastPref := make(map[addr.Prefix]time.Duration)
	for i := range conns {
		c := &conns[i]
		if prev, ok := lastIP[c.ClientIP]; ok {
			byIP.Observe((c.At - prev).Seconds())
		}
		lastIP[c.ClientIP] = c.At
		p := c.ClientIP.Prefix24()
		if prev, ok := lastPref[p]; ok {
			byPrefix.Observe((c.At - prev).Seconds())
		}
		lastPref[p] = c.At
	}
	return byIP, byPrefix
}

// RepeatRatios measures temporal source locality: the fraction of
// connections whose client IP — and whose /25 prefix — already
// connected within the preceding window of trace time. This is the
// revisit probability that per-source policy state (rate buckets,
// reputation scores, greylist entries) exploits: a source seen again
// inside the window hits warm state. Figure 13's observation that
// locality is stronger at prefix granularity shows up as the prefix
// ratio exceeding the per-IP ratio.
func RepeatRatios(conns []Conn, window time.Duration) (ipRatio, prefixRatio float64) {
	if len(conns) == 0 {
		return 0, 0
	}
	lastIP := make(map[addr.IPv4]time.Duration)
	lastPref := make(map[addr.Prefix]time.Duration)
	var ipHits, prefHits int
	for i := range conns {
		c := &conns[i]
		if prev, ok := lastIP[c.ClientIP]; ok && c.At-prev <= window {
			ipHits++
		}
		lastIP[c.ClientIP] = c.At
		p := c.ClientIP.Prefix25()
		if prev, ok := lastPref[p]; ok && c.At-prev <= window {
			prefHits++
		}
		lastPref[p] = c.At
	}
	n := float64(len(conns))
	return float64(ipHits) / n, float64(prefHits) / n
}

// CountCDF converts a map of counts into sorted (count, cumulative
// fraction) points — the rendering of Figures 4 and 12.
func CountCDF(counts []int) []metrics.CDFPoint {
	if len(counts) == 0 {
		return nil
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	pts := make([]metrics.CDFPoint, 0, len(sorted))
	for i, v := range sorted {
		pts = append(pts, metrics.CDFPoint{
			X:    float64(v),
			Frac: float64(i+1) / float64(len(sorted)),
		})
	}
	return pts
}

// FractionAbove returns the fraction of counts strictly greater than x.
func FractionAbove(counts []int, x int) float64 {
	if len(counts) == 0 {
		return 0
	}
	n := 0
	for _, v := range counts {
		if v > x {
			n++
		}
	}
	return float64(n) / float64(len(counts))
}
