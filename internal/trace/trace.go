// Package trace models the three mail workloads of the paper's Table 1
// and generates synthetic traces that reproduce their published
// statistics:
//
//   - the spam-sinkhole trace (May–June 2007): 101,692 connections from
//     19,492 unique IPs in 8,832 unique /24 prefixes, 5–15 recipients per
//     connection (Figure 4), heavy-tailed blacklisted-IPs-per-/24
//     (Figure 12), and stronger temporal locality at /24 granularity
//     than per-IP (Figure 13);
//
//   - the Univ trace (Nov 2007): a departmental server with >400
//     mailboxes, 67% spam, legitimate mail averaging 1.02 recipients;
//
//   - the ECN bounce statistics (Figure 3): 20–25% bounced mails and
//     5–15% unfinished SMTP transactions, with a slight upward drift.
//
// The real traces are not distributable; every generator here is seeded
// and deterministic, so experiments are reproducible byte-for-byte.
package trace

import (
	"time"

	"repro/internal/addr"
)

// Rcpt is one RCPT TO attempt within a connection.
type Rcpt struct {
	// Addr is the recipient address presented by the client.
	Addr string
	// Valid reports whether the mailbox exists (false = a §4.1 bounce
	// recipient that will draw "550 User unknown").
	Valid bool
}

// Conn is one SMTP connection in a trace.
type Conn struct {
	// At is the arrival time offset from trace start.
	At time.Duration
	// ClientIP is the connecting address.
	ClientIP addr.IPv4
	// Helo is the client's HELO name.
	Helo string
	// Sender is the envelope sender.
	Sender string
	// Rcpts are the recipient attempts in order.
	Rcpts []Rcpt
	// SizeBytes is the message body size transferred if the transaction
	// completes.
	SizeBytes int
	// Unfinished marks a connection the client abandons after the
	// handshake without attempting delivery (§4.1).
	Unfinished bool
	// Spam marks connections from spam senders (known for synthetic
	// traces; used for reporting, never by the server).
	Spam bool
}

// ValidRcpts returns the number of recipients that exist.
func (c *Conn) ValidRcpts() int {
	n := 0
	for _, r := range c.Rcpts {
		if r.Valid {
			n++
		}
	}
	return n
}

// IsBounce reports whether the connection is a bounce connection in the
// paper's §4.1 sense: it completes the handshake but no recipient is
// valid, so no mail is delivered. Unfinished connections are counted
// separately.
func (c *Conn) IsBounce() bool {
	return !c.Unfinished && len(c.Rcpts) > 0 && c.ValidRcpts() == 0
}

// Delivers reports whether the connection results in at least one
// delivered mail.
func (c *Conn) Delivers() bool {
	return !c.Unfinished && c.ValidRcpts() > 0
}
