package addr

import (
	"testing"
	"testing/quick"
)

func TestMakeAndOctets(t *testing.T) {
	ip := MakeIPv4(192, 0, 2, 17)
	a, b, c, d := ip.Octets()
	if a != 192 || b != 0 || c != 2 || d != 17 {
		t.Fatalf("octets = %d.%d.%d.%d, want 192.0.2.17", a, b, c, d)
	}
	if ip.String() != "192.0.2.17" {
		t.Fatalf("String = %q", ip.String())
	}
}

func TestParseIPv4(t *testing.T) {
	cases := []struct {
		in   string
		want IPv4
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"10.1.2.3", MakeIPv4(10, 1, 2, 3), true},
		{"256.0.0.1", 0, false},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
		{"1.2.3.0004", 0, false},
		{"-1.2.3.4", 0, false},
	}
	for _, c := range cases {
		got, err := ParseIPv4(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseIPv4(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseIPv4(%q) succeeded, want error", c.in)
		}
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		ip := IPv4(raw)
		back, err := ParseIPv4(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseIPv4 did not panic")
		}
	}()
	MustParseIPv4("bogus")
}

func TestPrefixes(t *testing.T) {
	ip := MustParseIPv4("10.20.30.200")
	if got := ip.Prefix24().String(); got != "10.20.30.0/24" {
		t.Errorf("Prefix24 = %s", got)
	}
	if got := ip.Prefix25().String(); got != "10.20.30.128/25" {
		t.Errorf("Prefix25 = %s", got)
	}
	low := MustParseIPv4("10.20.30.5")
	if got := low.Prefix25().String(); got != "10.20.30.0/25" {
		t.Errorf("Prefix25 low half = %s", got)
	}
	if got := ip.PrefixN(16).String(); got != "10.20.0.0/16" {
		t.Errorf("PrefixN(16) = %s", got)
	}
	if got := ip.PrefixN(0).String(); got != "0.0.0.0/0" {
		t.Errorf("PrefixN(0) = %s", got)
	}
	if got := ip.PrefixN(32).String(); got != "10.20.30.200/32" {
		t.Errorf("PrefixN(32) = %s", got)
	}
}

func TestPrefixNOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PrefixN(33) did not panic")
		}
	}()
	IPv4(0).PrefixN(33)
}

func TestIndexIn25(t *testing.T) {
	if got := MustParseIPv4("1.2.3.0").IndexIn25(); got != 0 {
		t.Errorf("IndexIn25(.0) = %d", got)
	}
	if got := MustParseIPv4("1.2.3.127").IndexIn25(); got != 127 {
		t.Errorf("IndexIn25(.127) = %d", got)
	}
	if got := MustParseIPv4("1.2.3.128").IndexIn25(); got != 0 {
		t.Errorf("IndexIn25(.128) = %d", got)
	}
	if got := MustParseIPv4("1.2.3.255").IndexIn25(); got != 127 {
		t.Errorf("IndexIn25(.255) = %d", got)
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParseIPv4("10.20.30.128").Prefix25()
	if !p.Contains(MustParseIPv4("10.20.30.200")) {
		t.Error("prefix should contain 10.20.30.200")
	}
	if p.Contains(MustParseIPv4("10.20.30.5")) {
		t.Error("prefix should not contain 10.20.30.5")
	}
	all := Prefix{Addr: 0, Bits: 0}
	if !all.Contains(MustParseIPv4("255.1.2.3")) {
		t.Error("/0 should contain everything")
	}
}

func TestPrefixSizeNth(t *testing.T) {
	p := MustParseIPv4("10.0.0.0").Prefix25()
	if p.Size() != 128 {
		t.Fatalf("size = %d, want 128", p.Size())
	}
	if got := p.Nth(0); got != MustParseIPv4("10.0.0.0") {
		t.Errorf("Nth(0) = %s", got)
	}
	if got := p.Nth(127); got != MustParseIPv4("10.0.0.127") {
		t.Errorf("Nth(127) = %s", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Nth(128) did not panic")
		}
	}()
	p.Nth(128)
}

func TestReversedName(t *testing.T) {
	ip := MustParseIPv4("1.2.3.4")
	got := ip.ReversedName("bl.example.org")
	if got != "4.3.2.1.bl.example.org" {
		t.Fatalf("ReversedName = %q", got)
	}
	back, err := ParseReversedName(got, "bl.example.org")
	if err != nil || back != ip {
		t.Fatalf("ParseReversedName = %v, %v", back, err)
	}
}

func TestParseReversedNameErrors(t *testing.T) {
	for _, name := range []string{
		"4.3.2.1.other.zone",
		"3.2.1.bl.example.org",
		"x.3.2.1.bl.example.org",
	} {
		if _, err := ParseReversedName(name, "bl.example.org"); err == nil {
			t.Errorf("ParseReversedName(%q) succeeded, want error", name)
		}
	}
}

func TestV6Name(t *testing.T) {
	cases := []struct {
		ip   string
		want string
	}{
		{"1.2.3.4", "0.3.2.1.bl6.example.org"},
		{"1.2.3.127", "0.3.2.1.bl6.example.org"},
		{"1.2.3.128", "1.3.2.1.bl6.example.org"},
		{"1.2.3.255", "1.3.2.1.bl6.example.org"},
	}
	for _, c := range cases {
		if got := MustParseIPv4(c.ip).V6Name("bl6.example.org"); got != c.want {
			t.Errorf("V6Name(%s) = %q, want %q", c.ip, got, c.want)
		}
	}
}

func TestParseV6Name(t *testing.T) {
	p, err := ParseV6Name("1.3.2.1.bl6.example.org", "bl6.example.org")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "1.2.3.128/25" {
		t.Fatalf("prefix = %s, want 1.2.3.128/25", p)
	}
	p, err = ParseV6Name("0.3.2.1.bl6.example.org", "bl6.example.org")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "1.2.3.0/25" {
		t.Fatalf("prefix = %s, want 1.2.3.0/25", p)
	}
}

func TestParseV6NameErrors(t *testing.T) {
	for _, name := range []string{
		"2.3.2.1.bl6.example.org", // half selector must be 0/1
		"1.3.2.1.wrong.zone",
		"1.3.2.bl6.example.org",
		"1.3.2.999.bl6.example.org",
	} {
		if _, err := ParseV6Name(name, "bl6.example.org"); err == nil {
			t.Errorf("ParseV6Name(%q) succeeded, want error", name)
		}
	}
}

func TestV6NameRoundTripProperty(t *testing.T) {
	// Property: for any IP, its V6Name parses back to the /25 prefix that
	// contains it.
	f := func(raw uint32) bool {
		ip := IPv4(raw)
		p, err := ParseV6Name(ip.V6Name("z.example"), "z.example")
		return err == nil && p == ip.Prefix25() && p.Contains(ip)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmap128(t *testing.T) {
	var b Bitmap128
	if !b.IsZero() || b.Count() != 0 {
		t.Fatal("zero bitmap should be empty")
	}
	b.Set(0)
	b.Set(127)
	b.Set(64)
	if b.IsZero() {
		t.Fatal("bitmap with bits should not be zero")
	}
	if b.Count() != 3 {
		t.Fatalf("count = %d, want 3", b.Count())
	}
	for _, i := range []int{0, 64, 127} {
		if !b.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if b.Get(1) || b.Get(126) {
		t.Error("unset bits read as set")
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Error("Clear failed")
	}
	// Bit 0 is the MSB of byte 0 (network order).
	if b[0] != 0x80 {
		t.Errorf("byte 0 = %#x, want 0x80", b[0])
	}
	if b[15] != 0x01 {
		t.Errorf("byte 15 = %#x, want 0x01", b[15])
	}
}

func TestBitmapBoundsPanic(t *testing.T) {
	var b Bitmap128
	for _, f := range []func(){
		func() { b.Set(-1) },
		func() { b.Set(128) },
		func() { b.Get(128) },
		func() { b.Clear(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range bitmap op did not panic")
				}
			}()
			f()
		}()
	}
}

func TestBitmapSetGetProperty(t *testing.T) {
	f := func(bits []uint8) bool {
		var b Bitmap128
		seen := map[int]bool{}
		for _, raw := range bits {
			i := int(raw) % 128
			b.Set(i)
			seen[i] = true
		}
		for i := 0; i < 128; i++ {
			if b.Get(i) != seen[i] {
				return false
			}
		}
		return b.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapString(t *testing.T) {
	var b Bitmap128
	b.Set(0)
	s := b.String()
	if len(s) != 32 {
		t.Fatalf("len = %d, want 32", len(s))
	}
	if s[:2] != "80" {
		t.Fatalf("first byte hex = %q, want 80", s[:2])
	}
}
