// Package addr provides the IPv4 address arithmetic used by the DNSBL
// subsystem: /24 and /25 prefix extraction, reversed-octet DNSBL query
// names (w.z.y.x.zone), and the 128-bit blacklist bitmap that a DNSBLv6
// server returns inside an AAAA record (§7.1 of the paper).
package addr

import (
	"fmt"
	"strconv"
	"strings"
)

// IPv4 is an IPv4 address in host byte order. Using a plain uint32 keeps
// the simulator's data structures compact and hashable.
type IPv4 uint32

// MakeIPv4 assembles an address from its four dotted-quad octets.
func MakeIPv4(a, b, c, d byte) IPv4 {
	return IPv4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseIPv4 parses a dotted-quad string such as "192.0.2.17".
func ParseIPv4(s string) (IPv4, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("addr: %q is not a dotted quad", s)
	}
	var ip uint32
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return 0, fmt.Errorf("addr: %q is not a dotted quad", s)
		}
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("addr: %q is not a dotted quad", s)
		}
		ip = ip<<8 | uint32(n)
	}
	return IPv4(ip), nil
}

// MustParseIPv4 is ParseIPv4 that panics on error, for tests and constants.
func MustParseIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Octets returns the address's four octets most-significant first.
func (ip IPv4) Octets() (a, b, c, d byte) {
	return byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)
}

// String renders the address as a dotted quad.
func (ip IPv4) String() string {
	a, b, c, d := ip.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", a, b, c, d)
}

// Prefix24 returns the address's /24 prefix (the address with its last
// octet cleared).
func (ip IPv4) Prefix24() Prefix { return Prefix{Addr: ip &^ 0xff, Bits: 24} }

// Prefix25 returns the address's /25 prefix. A /25 covers 128 addresses,
// which is exactly the width of an IPv6 address — the observation DNSBLv6
// exploits to ship a whole neighbourhood's blacklist status in one AAAA
// answer.
func (ip IPv4) Prefix25() Prefix { return Prefix{Addr: ip &^ 0x7f, Bits: 25} }

// PrefixN returns the address's /bits prefix for 0 ≤ bits ≤ 32.
func (ip IPv4) PrefixN(bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic("addr: prefix bits out of range")
	}
	if bits == 0 {
		return Prefix{Addr: 0, Bits: 0}
	}
	mask := ^IPv4(0) << (32 - bits)
	return Prefix{Addr: ip & mask, Bits: bits}
}

// IndexIn25 returns the address's offset (0–127) within its /25 prefix.
func (ip IPv4) IndexIn25() int { return int(ip & 0x7f) }

// ReversedName returns the classic DNSBL query name for the address under
// the given zone: for IP x.y.z.w it returns "w.z.y.x.zone" (§4.3).
func (ip IPv4) ReversedName(zone string) string {
	a, b, c, d := ip.Octets()
	return fmt.Sprintf("%d.%d.%d.%d.%s", d, c, b, a, zone)
}

// V6Name returns the DNSBLv6 query name for the address under the given
// zone (§7.1): for IP x.y.z.w it is "h.z.y.x.zone" where h is 0 when
// w < 128 and 1 otherwise, selecting which /25 half of the /24 the bitmap
// should describe.
func (ip IPv4) V6Name(zone string) string {
	a, b, c, d := ip.Octets()
	h := 0
	if d >= 128 {
		h = 1
	}
	return fmt.Sprintf("%d.%d.%d.%d.%s", h, c, b, a, zone)
}

// ParseReversedName inverts ReversedName: given "w.z.y.x.zone" and the
// zone suffix, it recovers x.y.z.w. The zone must match exactly.
func ParseReversedName(name, zone string) (IPv4, error) {
	suffix := "." + zone
	if !strings.HasSuffix(name, suffix) {
		return 0, fmt.Errorf("addr: name %q not under zone %q", name, zone)
	}
	rev := strings.TrimSuffix(name, suffix)
	parts := strings.Split(rev, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("addr: reversed name %q malformed", name)
	}
	return ParseIPv4(parts[3] + "." + parts[2] + "." + parts[1] + "." + parts[0])
}

// ParseV6Name inverts V6Name: given "h.z.y.x.zone" it recovers the /25
// prefix the query addresses.
func ParseV6Name(name, zone string) (Prefix, error) {
	suffix := "." + zone
	if !strings.HasSuffix(name, suffix) {
		return Prefix{}, fmt.Errorf("addr: name %q not under zone %q", name, zone)
	}
	rev := strings.TrimSuffix(name, suffix)
	parts := strings.Split(rev, ".")
	if len(parts) != 4 {
		return Prefix{}, fmt.Errorf("addr: v6 name %q malformed", name)
	}
	h, err := strconv.Atoi(parts[0])
	if err != nil || (h != 0 && h != 1) {
		return Prefix{}, fmt.Errorf("addr: v6 name %q has bad half selector", name)
	}
	base, err := ParseIPv4(parts[3] + "." + parts[2] + "." + parts[1] + ".0")
	if err != nil {
		return Prefix{}, err
	}
	if h == 1 {
		base |= 0x80
	}
	return Prefix{Addr: base, Bits: 25}, nil
}

// Prefix is an IPv4 prefix: the masked address plus the prefix length.
type Prefix struct {
	Addr IPv4
	Bits int
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IPv4) bool {
	if p.Bits == 0 {
		return true
	}
	mask := ^IPv4(0) << (32 - p.Bits)
	return ip&mask == p.Addr&mask
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() int { return 1 << (32 - p.Bits) }

// Nth returns the i-th address inside the prefix (0-based).
func (p Prefix) Nth(i int) IPv4 {
	if i < 0 || i >= p.Size() {
		panic("addr: index outside prefix")
	}
	return p.Addr + IPv4(i)
}

// Bitmap128 is the 128-bit blacklist bitmap a DNSBLv6 server encodes into
// an AAAA record: bit i set means address prefix.Nth(i) is blacklisted.
// Bit 0 is the most significant bit of byte 0, matching network order so
// the bitmap bytes are exactly the 16 bytes of the IPv6 answer address.
type Bitmap128 [16]byte

// Set marks bit i (0–127).
func (b *Bitmap128) Set(i int) {
	if i < 0 || i > 127 {
		panic("addr: bitmap index out of range")
	}
	b[i/8] |= 0x80 >> (i % 8)
}

// Clear unmarks bit i (0–127).
func (b *Bitmap128) Clear(i int) {
	if i < 0 || i > 127 {
		panic("addr: bitmap index out of range")
	}
	b[i/8] &^= 0x80 >> (i % 8)
}

// Get reports whether bit i is set.
func (b *Bitmap128) Get(i int) bool {
	if i < 0 || i > 127 {
		panic("addr: bitmap index out of range")
	}
	return b[i/8]&(0x80>>(i%8)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap128) Count() int {
	n := 0
	for _, by := range b {
		for by != 0 {
			n += int(by & 1)
			by >>= 1
		}
	}
	return n
}

// IsZero reports whether no bit is set.
func (b *Bitmap128) IsZero() bool {
	for _, by := range b {
		if by != 0 {
			return false
		}
	}
	return true
}

// String renders the bitmap as 32 hex digits, for logs and tests.
func (b Bitmap128) String() string {
	var sb strings.Builder
	for _, by := range b {
		fmt.Fprintf(&sb, "%02x", by)
	}
	return sb.String()
}
