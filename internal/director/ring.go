// Package director is the scale-out front-end tier: processes that
// terminate TCP, run the whole pre-trust phase — policy verdict, DNSBL
// score, greylist — with the internal/policy engine, and replay accepted
// envelopes to back-end delivery shards chosen by consistent-hashed
// recipient. It is the paper's fork-after-trust boundary stretched over
// a network hop: the cheap untrusted dialog runs on the director, and a
// back-end smtpserver process is only involved once a sender has earned
// trust.
//
// Directors share what they learn. The Gossip type replicates EWMA
// reputation deltas, greylist tuples, and DNSBL verdicts between nodes
// by periodic anti-entropy exchange (see DESIGN.md for the consistency
// model), so a spam source condemned by one front end is refused by all
// of them — the aggregated-historical-data argument (PAPERS.md) applied
// across servers.
package director

import (
	"sort"
	"strconv"
	"sync"
)

// fnv1a64 is the FNV-1a 64-bit hash of key — cheap, allocation-free,
// and well-distributed for short recipient strings.
func fnv1a64(key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer. Raw FNV of short, similar strings
// ("shard-a#0", "shard-a#1", ...) clusters on the circle badly enough
// to skew shard ownership 10×; the avalanche step spreads the points.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node string
}

// Ring maps keys (recipient addresses) to nodes (delivery shards) by
// consistent hashing with virtual nodes: each shard owns many points on
// a 64-bit circle and a key belongs to the first point at or after its
// hash. Adding or removing one shard only remaps the keys adjacent to
// that shard's points — mail in flight to the other shards keeps its
// mapping, which is what makes shard death survivable. Safe for
// concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint
	nodes  []string
}

// NewRing returns an empty ring with vnodes virtual nodes per shard
// (default 64 when <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes}
}

// Add inserts a node; adding an existing node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.nodes {
		if n == node {
			return
		}
	}
	r.nodes = append(r.nodes, node)
	sort.Strings(r.nodes)
	for i := 0; i < r.vnodes; i++ {
		h := fnv1a64(node + "#" + strconv.Itoa(i))
		r.points = append(r.points, ringPoint{hash: h, node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node and its points; unknown nodes are a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			out = append(out, p)
		}
	}
	r.points = out
	for i, n := range r.nodes {
		if n == node {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			break
		}
	}
}

// Nodes returns the current members in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Pick returns the node owning key, or "" on an empty ring.
func (r *Ring) Pick(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(fnv1a64(key))].node
}

// Candidates returns up to n distinct nodes in ring order starting at
// key's owner — the failover sequence a director walks when the owner
// shard is down. Every caller sees the same sequence for the same key,
// so retried mail lands on the same fallback shard.
func (r *Ring) Candidates(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	idx := r.search(fnv1a64(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// search returns the index of the first point at or after h, wrapping.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
