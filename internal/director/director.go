package director

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/eventlog"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/smtp"
	"repro/internal/trace"
)

// settings collects the director's tunables.
type settings struct {
	hostname       string
	backends       []backendSpec
	pol            *policy.ServerPolicy
	validateRcpt   func(string) bool
	registry       *metrics.Registry
	events         *eventlog.Log
	idleTimeout    time.Duration
	forwardTimeout time.Duration
	vnodes         int
	cooldown       time.Duration
	maxRcpts       int
	maxMessage     int
	mtrace         *trace.MessageRecorder
}

type backendSpec struct {
	name string
	addr string
}

// Option configures a director Server.
type Option func(*settings)

// WithHostname sets the banner hostname (default "director.local").
func WithHostname(h string) Option {
	return func(s *settings) { s.hostname = h }
}

// WithBackend registers one delivery shard under a stable name; the
// name — not the address — is hashed onto the ring, so a shard can move
// without remapping recipients. Repeat for each shard.
func WithBackend(name, addr string) Option {
	return func(s *settings) { s.backends = append(s.backends, backendSpec{name: name, addr: addr}) }
}

// WithPolicy installs the pre-trust policy adapter: connect verdicts
// (with DNSBL scan), MAIL/RCPT checks, and bounce/reject reputation
// feedback. Nil (the default) admits everything — the director still
// validates recipients and forwards.
func WithPolicy(p *policy.ServerPolicy) Option {
	return func(s *settings) { s.pol = p }
}

// WithValidateRcpt installs the recipient-existence check (the access
// database). nil accepts every recipient.
func WithValidateRcpt(f func(string) bool) Option {
	return func(s *settings) { s.validateRcpt = f }
}

// WithRegistry directs the director's metrics into r (default private).
func WithRegistry(r *metrics.Registry) Option {
	return func(s *settings) { s.registry = r }
}

// WithEventLog emits director.conn / director.forward / director.shard
// events into log (default off).
func WithEventLog(log *eventlog.Log) Option {
	return func(s *settings) { s.events = log }
}

// WithIdleTimeout bounds client inactivity per read (default 60s).
func WithIdleTimeout(d time.Duration) Option {
	return func(s *settings) { s.idleTimeout = d }
}

// WithForwardTimeout bounds the back-end dial and each replay command
// (default 10s).
func WithForwardTimeout(d time.Duration) Option {
	return func(s *settings) { s.forwardTimeout = d }
}

// WithVnodes sets virtual nodes per shard on the ring (default 64).
func WithVnodes(n int) Option {
	return func(s *settings) { s.vnodes = n }
}

// WithCooldown sets how long a shard that failed a forward is skipped
// before being probed again (default 2s).
func WithCooldown(d time.Duration) Option {
	return func(s *settings) { s.cooldown = d }
}

// WithMaxRcpts caps accepted recipients per mail (default smtp's 50).
func WithMaxRcpts(n int) Option {
	return func(s *settings) { s.maxRcpts = n }
}

// WithMessageTracer enables message-lifecycle tracing at the director:
// the edge of the tier mints each sampled mail's trace id, records a
// "pretrust" span per client dialog and a "forward" span per shard
// replay, and propagates the context to XTRACE-capable shards as a MAIL
// parameter so their spans stitch into the same trace. Nil disables
// (the default); sampled-out connections carry the zero context and
// cost no allocations.
func WithMessageTracer(rec *trace.MessageRecorder) Option {
	return func(s *settings) { s.mtrace = rec }
}

// Stats is a snapshot of a director's counters.
type Stats struct {
	Connections    int64 // accepted TCP connections
	PolicyRejected int64 // refused 554 at connect time
	PolicyTempfail int64 // refused 421 at connect time
	MailsForwarded int64 // envelopes replayed to a shard successfully
	MailsFailed    int64 // envelopes tempfailed 451 (every candidate down)
	MailsRefused   int64 // envelopes 554'd (shards refused every recipient)
	ForwardRetries int64 // pooled-connection retries + candidate failovers
	RcptRejected   int64 // 550s issued (bounce evidence)
	RcptSkew       int64 // recipients the director admitted but a shard refused
	PreTrustClosed int64 // connections finished without a forwarded mail
}

// Server is one director front end. Create with New, start with Serve,
// stop with Close.
type Server struct {
	cfg  settings
	ring *Ring
	bmu  sync.Mutex
	bk   map[string]*backend

	ln     net.Listener
	connWG sync.WaitGroup
	closed chan struct{}
	ids    uint64
	idsMu  sync.Mutex

	reg            *metrics.Registry
	connections    *metrics.Counter
	policyRejected *metrics.Counter
	policyTempfail *metrics.Counter
	mailsForwarded *metrics.Counter
	mailsFailed    *metrics.Counter
	mailsRefused   *metrics.Counter
	forwardRetries *metrics.Counter
	rcptRejected   *metrics.Counter
	rcptSkew       *metrics.Counter
	preTrustClosed *metrics.Counter
	shardDown      *metrics.Counter
	traceStitched  *metrics.Counter
	handoff        *metrics.Histogram // per-envelope replay wall time
	perShard       map[string]*metrics.Counter
	forwardSec     map[string]*metrics.Histogram // per-shard replay wall time
}

// New builds a director over at least one backend shard.
func New(opts ...Option) (*Server, error) {
	st := settings{
		hostname:       "director.local",
		idleTimeout:    60 * time.Second,
		forwardTimeout: 10 * time.Second,
		cooldown:       2 * time.Second,
	}
	for _, o := range opts {
		o(&st)
	}
	if len(st.backends) == 0 {
		return nil, errors.New("director: at least one backend is required")
	}
	reg := st.registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		cfg:            st,
		ring:           NewRing(st.vnodes),
		bk:             make(map[string]*backend, len(st.backends)),
		closed:         make(chan struct{}),
		reg:            reg,
		connections:    reg.Counter("director_connections_total"),
		policyRejected: reg.Counter("director_policy_rejected_total"),
		policyTempfail: reg.Counter("director_policy_tempfail_total"),
		mailsForwarded: reg.Counter("director_mails_forwarded_total"),
		mailsFailed:    reg.Counter("director_mails_failed_total"),
		mailsRefused:   reg.Counter("director_mails_refused_total"),
		forwardRetries: reg.Counter("director_forward_retries_total"),
		rcptRejected:   reg.Counter("director_rcpt_rejected_total"),
		rcptSkew:       reg.Counter("director_rcpt_skew_total"),
		preTrustClosed: reg.Counter("director_pretrust_closed_total"),
		shardDown:      reg.Counter("director_shard_down_total"),
		traceStitched:  reg.Counter("director_trace_stitched_total"),
		handoff:        reg.Histogram("director_handoff_seconds", metrics.LatencyBounds()),
		perShard:       make(map[string]*metrics.Counter, len(st.backends)),
		forwardSec:     make(map[string]*metrics.Histogram, len(st.backends)),
	}
	for _, spec := range st.backends {
		if _, dup := s.bk[spec.name]; dup {
			return nil, fmt.Errorf("director: duplicate backend %q", spec.name)
		}
		s.bk[spec.name] = &backend{name: spec.name, addr: spec.addr}
		s.ring.Add(spec.name)
		s.perShard[spec.name] = reg.Counter("director_shard_forwarded_total", "shard", spec.name)
		s.forwardSec[spec.name] = reg.Histogram("director_forward_seconds", metrics.LatencyBounds(), "shard", spec.name)
	}
	return s, nil
}

// Registry returns the registry holding the director's metrics.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Ring returns the recipient ring, for observability and tests.
func (s *Server) Ring() *Ring { return s.ring }

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Connections:    s.connections.Value(),
		PolicyRejected: s.policyRejected.Value(),
		PolicyTempfail: s.policyTempfail.Value(),
		MailsForwarded: s.mailsForwarded.Value(),
		MailsFailed:    s.mailsFailed.Value(),
		MailsRefused:   s.mailsRefused.Value(),
		ForwardRetries: s.forwardRetries.Value(),
		RcptRejected:   s.rcptRejected.Value(),
		RcptSkew:       s.rcptSkew.Value(),
		PreTrustClosed: s.preTrustClosed.Value(),
	}
}

// HandoffQuantile returns the q-quantile of envelope replay wall time
// in seconds.
func (s *Server) HandoffQuantile(q float64) float64 { return s.handoff.Quantile(q) }

// Serve accepts connections on ln until Close. It owns ln.
func (s *Server) Serve(ln net.Listener) {
	s.ln = ln
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			continue
		}
		s.connWG.Add(1)
		go s.serveConn(nc)
	}
}

// Close stops accepting, waits for in-flight dialogs, and drains the
// back-end connection pools.
func (s *Server) Close() {
	select {
	case <-s.closed:
		return
	default:
	}
	close(s.closed)
	if s.ln != nil {
		s.ln.Close()
	}
	s.connWG.Wait()
	for _, b := range s.bk {
		b.closeIdle()
	}
}

func (s *Server) nextID() uint64 {
	s.idsMu.Lock()
	defer s.idsMu.Unlock()
	s.ids++
	return s.ids
}

// remoteIP extracts the peer IP.
func remoteIP(nc net.Conn) string {
	a := nc.RemoteAddr()
	if a == nil {
		return ""
	}
	host, _, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String()
	}
	return host
}

// serveConn runs one client dialog: admission, pre-trust SMTP, and
// per-mail replay to the owning shard.
func (s *Server) serveConn(nc net.Conn) {
	defer s.connWG.Done()
	defer nc.Close()
	id := s.nextID()
	s.connections.Inc()
	ip := remoteIP(nc)
	c := smtp.AcquireConn(nc)
	defer smtp.ReleaseConn(c)

	if !s.admitPolicy(nc, c, id, ip) {
		return
	}

	sess := smtp.AcquireSession(s.sessionConfig(ip))
	defer smtp.ReleaseSession(sess)
	// The director is the trace edge: the id minted here follows the
	// mail through every shard and queue it crosses. The pretrust span
	// covers the whole client dialog; forward spans nest per replay.
	tc := s.cfg.mtrace.Mint()
	preStart := time.Now()
	if err := c.WriteReply(sess.Greeting()); err != nil {
		return
	}
	forwarded := s.runDialog(nc, c, sess, ip, id, tc)
	psp := s.cfg.mtrace.NewSpan(tc)
	s.cfg.mtrace.FinishAt(psp, trace.MStagePretrust, preStart, time.Now(), "director")
	if forwarded == 0 {
		s.preTrustClosed.Inc()
		// A connection that drew 550s and forwarded nothing is the §4.1
		// bounce: feed it back so the next visit is refused at connect.
		if s.cfg.pol != nil && sess.RejectedRcpts() > 0 {
			s.cfg.pol.RecordBounce(ip)
		}
	}
	s.cfg.events.Debug("director.conn", id,
		eventlog.Str("ip", ip),
		eventlog.Int("forwarded", int64(forwarded)),
	)
}

// admitPolicy runs the connect-time verdict; false means a refusal has
// been written.
func (s *Server) admitPolicy(nc net.Conn, c *smtp.Conn, id uint64, ip string) bool {
	if s.cfg.pol == nil {
		return true
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.idleTimeout)
	defer cancel()
	d := s.cfg.pol.Connect(ctx, ip)
	switch d.Verdict {
	case policy.Reject:
		s.policyRejected.Inc()
		c.WriteReply(smtp.Reply{Code: 554, Text: d.Reason}) //nolint:errcheck // closing anyway
		return false
	case policy.Tempfail:
		s.policyTempfail.Inc()
		c.WriteReply(smtp.Reply{Code: 421, Text: d.Reason}) //nolint:errcheck // closing anyway
		return false
	default:
		return true
	}
}

// sessionConfig wires the policy hooks into the session state machine,
// mirroring smtpserver so both tiers speak identical SMTP.
func (s *Server) sessionConfig(ip string) smtp.Config {
	cfg := smtp.Config{
		Hostname:        s.cfg.hostname,
		ValidateRcpt:    s.cfg.validateRcpt,
		MaxRcpts:        s.cfg.maxRcpts,
		MaxMessageBytes: s.cfg.maxMessage,
	}
	if p := s.cfg.pol; p != nil {
		cfg.CheckMail = func(sender string) *smtp.Reply {
			return policyReply(p.Mail(context.Background(), ip, sender))
		}
		cfg.CheckRcpt = func(sender, rcpt string) *smtp.Reply {
			return policyReply(p.Rcpt(context.Background(), ip, sender, rcpt))
		}
	}
	return cfg
}

func policyReply(d policy.Decision) *smtp.Reply {
	switch d.Verdict {
	case policy.Reject:
		return &smtp.Reply{Code: 554, Text: d.Reason}
	case policy.Tempfail:
		return &smtp.Reply{Code: 450, Text: d.Reason}
	default:
		return nil
	}
}

// runDialog drives the client session until QUIT or drop, replaying
// each completed envelope to its shards. Returns envelopes forwarded.
// connTC is the connection's minted trace context; a context arriving
// on the wire as an XTRACE MAIL parameter (a director upstream of this
// one) takes precedence, so chained tiers share one trace.
func (s *Server) runDialog(nc net.Conn, c *smtp.Conn, sess *smtp.Session, ip string, id uint64, connTC trace.Context) int {
	forwarded := 0
	for {
		if err := nc.SetReadDeadline(time.Now().Add(s.cfg.idleTimeout)); err != nil {
			return forwarded
		}
		line, err := c.ReadLine()
		if err != nil {
			if errors.Is(err, smtp.ErrLineTooLong) {
				if c.WriteReply(smtp.ReplyLineTooLong) == nil {
					continue
				}
			}
			return forwarded
		}
		reply, action := sess.CommandBytes(line)
		if reply.Code == smtp.ReplyUserUnknown.Code {
			s.rcptRejected.Inc()
			if s.cfg.pol != nil {
				s.cfg.pol.RecordRejectedRcpt(ip)
			}
		}
		switch action {
		case smtp.ActionData:
			if err := c.WriteReply(reply); err != nil {
				return forwarded
			}
			if err := nc.SetReadDeadline(time.Now().Add(s.cfg.idleTimeout)); err != nil {
				return forwarded
			}
			body, err := c.ReadData(sess.MaxMessageBytes())
			if err != nil {
				if errors.Is(err, smtp.ErrMessageTooBig) {
					if c.WriteReply(sess.AbortData()) == nil {
						continue
					}
				}
				return forwarded
			}
			env, done := sess.FinishData(body)
			base := env.Trace
			if !base.Valid() {
				base = connTC
			}
			accepted, ok := s.deliver(env, id, base)
			switch {
			case !ok:
				s.mailsFailed.Inc()
				done = smtp.Reply{Code: 451, Text: "delivery shards unavailable, try again later"}
			case accepted == 0:
				// Every shard answered and cleanly refused every
				// recipient: a permanent recipient problem, not an
				// outage. Acking would drop the mail silently and a
				// retry cannot help — fail the transaction for good.
				s.mailsRefused.Inc()
				done = smtp.Reply{Code: 554, Text: "all recipients refused by delivery shards"}
			default:
				forwarded++
			}
			if err := c.WriteReply(done); err != nil {
				return forwarded
			}
		case smtp.ActionQuit:
			c.WriteReply(reply) //nolint:errcheck // closing anyway
			return forwarded
		default:
			if c.InputPending() {
				if err := c.WriteReplyLazy(reply); err != nil {
					return forwarded
				}
			} else if err := c.WriteReply(reply); err != nil {
				return forwarded
			}
		}
	}
}

// deliver fans one accepted envelope out to the shards owning its
// recipients (usually one). The whole replay is timed as the handoff —
// the network-stretched equivalent of the in-process worker handoff.
// It returns the recipients a shard took and whether every group found
// a live shard; ok with accepted == 0 means the shards cleanly refused
// everything (config skew), which the caller must not ack.
func (s *Server) deliver(env smtp.Envelope, id uint64, tc trace.Context) (accepted int, ok bool) {
	start := time.Now()
	ok = true
	for shard, rcpts := range s.groupByShard(env.Rcpts) {
		n, groupOK := s.forwardGroup(shard, env.Sender, rcpts, env.Data, id, tc)
		accepted += n
		if !groupOK {
			ok = false
		}
	}
	s.handoff.ObserveDuration(time.Since(start))
	if ok && accepted > 0 {
		s.mailsForwarded.Inc()
	}
	return accepted, ok
}

// groupByShard buckets recipients by owning shard.
func (s *Server) groupByShard(rcpts []string) map[string][]string {
	groups := make(map[string][]string, 1)
	for _, r := range rcpts {
		shard := s.ring.Pick(r)
		groups[shard] = append(groups[shard], r)
	}
	return groups
}

// forwardGroup walks the ring candidates for one recipient group until
// a shard takes the mail. Down shards are skipped inside their
// cooldown unless every candidate is down — then each is probed anyway
// rather than failing mail on a stale latch.
func (s *Server) forwardGroup(owner, sender string, rcpts []string, data []byte, id uint64, tc trace.Context) (int, bool) {
	candidates := s.ring.Candidates(rcpts[0], len(s.ring.Nodes()))
	now := time.Now()
	// Pass 0 probes the candidates whose cooldown is clear. If every
	// candidate was latched down before this call, pass 1 probes them
	// all anyway — better to pay a probe than tempfail mail on a stale
	// latch. A shard that failed a pass-0 probe is NOT re-probed.
	probed := 0
	for pass := 0; pass < 2; pass++ {
		if pass == 1 && probed > 0 {
			break
		}
		for i, name := range candidates {
			b := s.bk[name]
			if b == nil || (pass == 0 && b.down(now)) {
				continue
			}
			probed++
			if i > 0 {
				s.forwardRetries.Inc()
			}
			// The forward span's context crosses the wire as XTRACE, so
			// the shard's own spans parent under this replay.
			fsp := s.cfg.mtrace.NewSpan(tc)
			probeStart := time.Now()
			accepted, retried, traced, err := b.forward(s.cfg.hostname, s.cfg.forwardTimeout, sender, rcpts, data, fsp)
			if retried {
				s.forwardRetries.Inc()
			}
			if err == nil {
				b.markUp()
				s.perShard[name].Inc()
				s.forwardSec[name].ObserveDuration(time.Since(probeStart))
				s.cfg.mtrace.FinishAt(fsp, trace.MStageForward, probeStart, time.Now(), name)
				if traced {
					// The shard advertised XTRACE and took the context:
					// its spans will stitch into this trace.
					s.traceStitched.Inc()
				}
				if accepted < len(rcpts) {
					// The shard refused recipients the director admitted:
					// an access-config skew between the tiers. The
					// accepted subset is already delivered, so retrying
					// another shard would duplicate it — count the skew
					// and move on. Keep the tiers' -domain/mailbox
					// config in lockstep to keep this at zero.
					s.rcptSkew.Add(int64(len(rcpts) - accepted))
					s.cfg.events.Warn("director.skew", id,
						eventlog.Str("shard", name),
						eventlog.Int("refused", int64(len(rcpts)-accepted)),
					)
				}
				s.cfg.events.Debug("director.forward", id,
					eventlog.Str("shard", name),
					eventlog.Int("rcpts", int64(len(rcpts))),
				)
				return accepted, true
			}
			b.markDown(time.Now(), s.cfg.cooldown)
			s.shardDown.Inc()
			s.cfg.events.Warn("director.shard", id,
				eventlog.Str("shard", name),
				eventlog.Str("err", err.Error()),
			)
		}
	}
	return 0, false
}
