package director

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/dnsbl"
	"repro/internal/policy"
)

var ctx = context.Background()

// gossipNode bundles one node's stores and its gossip endpoint.
type gossipNode struct {
	rep  *policy.Reputation
	grey *policy.Greylist
	verd *Verdicts
	g    *Gossip
	addr string
}

// staticResolver answers Listed for a fixed set of IPs and counts
// upstream lookups.
type staticResolver struct {
	mu     sync.Mutex
	listed map[string]bool
	calls  int
}

func (s *staticResolver) Lookup(_ context.Context, ip addr.IPv4) (dnsbl.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	return dnsbl.Result{Listed: s.listed[ip.String()]}, nil
}

func (s *staticResolver) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func startGossipNode(t *testing.T, name string, clock func() time.Time, inner dnsbl.Resolver) *gossipNode {
	t.Helper()
	n := &gossipNode{
		rep:  policy.NewReputation(policy.ReputationConfig{}),
		grey: policy.NewGreylist(policy.GreyConfig{}),
		verd: NewVerdicts(inner, WithVerdictClock(clock)),
	}
	n.g = NewGossip(
		WithGossipName(name),
		WithReputationSync(n.rep),
		WithGreylistSync(n.grey),
		WithVerdicts(n.verd),
		WithGossipClock(clock),
		WithInterval(10*time.Millisecond),
	)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go n.g.Serve(ln)
	t.Cleanup(n.g.Close)
	n.addr = ln.Addr().String()
	return n
}

// TestGossipExchangeReplicatesReputation: bounce history recorded on
// one node condemns the source on the other after a single exchange —
// in both directions, since an exchange is a symmetric sync.
func TestGossipExchangeReplicatesReputation(t *testing.T) {
	now := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	a := startGossipNode(t, "fe-a", clock, nil)
	b := startGossipNode(t, "fe-b", clock, nil)

	spammer := addr.MustParseIPv4("203.0.113.9")
	for i := 0; i < 20; i++ {
		a.rep.RecordBounce(now, spammer)
	}
	other := addr.MustParseIPv4("198.51.100.7")
	b.rep.RecordBounce(now, other)

	if err := a.g.Exchange(b.addr); err != nil {
		t.Fatal(err)
	}
	if got := b.rep.Score(now, spammer); got < 10 {
		t.Fatalf("peer score for spammer = %.2f after exchange; a-side = %.2f",
			got, a.rep.Score(now, spammer))
	}
	if got := a.rep.Score(now, other); got < 0.5 {
		t.Fatalf("pull direction missing: a's score for other = %.2f", got)
	}
	if st := b.g.Stats(); st.Served != 1 || st.RepApplied == 0 {
		t.Fatalf("responder stats = %+v", st)
	}
}

// TestGossipExchangeIdempotent: repeating the same exchange does not
// inflate scores — the merge is max-under-decay, not sum.
func TestGossipExchangeIdempotent(t *testing.T) {
	now := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	a := startGossipNode(t, "fe-a", clock, nil)
	b := startGossipNode(t, "fe-b", clock, nil)

	ip := addr.MustParseIPv4("203.0.113.9")
	a.rep.RecordBounce(now, ip)
	want := a.rep.Score(now, ip)
	for i := 0; i < 5; i++ {
		if err := a.g.Exchange(b.addr); err != nil {
			t.Fatal(err)
		}
		if err := b.g.Exchange(a.addr); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.rep.Score(now, ip); got != want {
		t.Fatalf("echo inflated a's score %.4f -> %.4f", want, got)
	}
	if got := b.rep.Score(now, ip); got != want {
		t.Fatalf("b's score %.4f, want %.4f", got, want)
	}
}

// TestGossipReplicatesGreylistPass: a tuple that earned its pass on one
// front end is whitelisted on the other, so a retry landing on a
// different director is not greylisted again.
func TestGossipReplicatesGreylistPass(t *testing.T) {
	now := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	a := startGossipNode(t, "fe-a", clock, nil)
	b := startGossipNode(t, "fe-b", clock, nil)

	ip := addr.MustParseIPv4("192.0.2.33")
	// First contact on a: greylisted. Retry after MinRetry: passes.
	if d := a.grey.Check(now, ip, "s@x.org", "r@y.org"); d.Verdict != policy.Tempfail {
		t.Fatalf("first contact = %+v", d)
	}
	now = now.Add(2 * time.Minute)
	if d := a.grey.Check(now, ip, "s@x.org", "r@y.org"); d.Verdict != policy.Allow {
		t.Fatalf("retry = %+v", d)
	}
	if err := a.g.Exchange(b.addr); err != nil {
		t.Fatal(err)
	}
	// The same tuple hitting b is already whitelisted there.
	if d := b.grey.Check(now, ip, "s@x.org", "r@y.org"); d.Verdict != policy.Allow {
		t.Fatalf("replicated tuple greylisted on peer: %+v", d)
	}
}

// TestGossipVerdictCacheLift: a DNSBL verdict paid for by one node is
// served from cache on the other, counted as a peer hit — the
// cache-hit lift the scale-out experiment measures.
func TestGossipVerdictCacheLift(t *testing.T) {
	now := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	ip := addr.MustParseIPv4("203.0.113.50")
	resA := &staticResolver{listed: map[string]bool{ip.String(): true}}
	resB := &staticResolver{listed: map[string]bool{ip.String(): true}}
	a := startGossipNode(t, "fe-a", clock, resA)
	b := startGossipNode(t, "fe-b", clock, resB)

	// a pays the upstream query.
	if r, err := a.verd.Lookup(ctx, ip); err != nil || !r.Listed || r.CacheHit {
		t.Fatalf("a lookup = %+v, %v", r, err)
	}
	if err := a.g.Exchange(b.addr); err != nil {
		t.Fatal(err)
	}
	// b answers from gossip, never touching its upstream.
	r, err := b.verd.Lookup(ctx, ip)
	if err != nil || !r.Listed || !r.CacheHit {
		t.Fatalf("b lookup = %+v, %v", r, err)
	}
	if resB.count() != 0 {
		t.Fatalf("b paid %d upstream queries for a replicated verdict", resB.count())
	}
	if b.verd.PeerHits() != 1 || b.verd.LocalHits() != 0 {
		t.Fatalf("peer=%d local=%d", b.verd.PeerHits(), b.verd.LocalHits())
	}
	// a re-reading its own verdict is a local hit, not a peer hit.
	if _, err := a.verd.Lookup(ctx, ip); err != nil {
		t.Fatal(err)
	}
	if a.verd.LocalHits() != 1 || a.verd.PeerHits() != 0 {
		t.Fatalf("a peer=%d local=%d", a.verd.PeerHits(), a.verd.LocalHits())
	}
}

// TestGossipConcurrentMergeVsReads is the -race stress: both nodes'
// tickers run while both stores take concurrent reads and writes, the
// exact interleaving a live director pair produces.
func TestGossipConcurrentMergeVsReads(t *testing.T) {
	a := startGossipNode(t, "fe-a", time.Now, nil)
	b := startGossipNode(t, "fe-b", time.Now, nil)
	WithPeers(b.addr)(a.g)
	WithPeers(a.addr)(b.g)
	a.g.Start()
	b.g.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ip := addr.MakeIPv4(203, 0, 113, byte(w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				now := time.Now()
				n := a
				if i%2 == 1 {
					n = b
				}
				n.rep.RecordBounce(now, ip)
				_ = n.rep.Score(now, ip)
				_ = n.grey.Check(now, ip, "s@x.org", "r@y.org")
			}
		}(w)
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if st := a.g.Stats(); st.Exchanges == 0 {
		t.Fatalf("ticker never exchanged: %+v", st)
	}
	// Convergence spot check: a score recorded on either node is
	// non-zero on both after the loops.
	if err := a.g.Exchange(b.addr); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	ip := addr.MakeIPv4(203, 0, 113, 0)
	if a.rep.Score(now, ip) == 0 || b.rep.Score(now, ip) == 0 {
		t.Fatalf("scores did not converge: a=%.2f b=%.2f",
			a.rep.Score(now, ip), b.rep.Score(now, ip))
	}
}
