package director

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/smtp"
	"repro/internal/smtpserver"
)

// sink is a shard's enqueue target: it records which recipients the
// shard accepted.
type sink struct {
	mu    sync.Mutex
	mails int
	rcpts map[string]int
}

func newSink() *sink { return &sink{rcpts: make(map[string]int)} }

func (s *sink) enqueue(sender string, rcpts []string, data []byte) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mails++
	for _, r := range rcpts {
		s.rcpts[r]++
	}
	return "id", nil
}

func (s *sink) count(rcpt string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rcpts[rcpt]
}

func (s *sink) total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mails
}

// startShardServer boots one back-end delivery shard on a loopback
// listener and returns its address, sink, and a kill function.
func startShardServer(t *testing.T) (string, *sink, func()) {
	t.Helper()
	sk := newSink()
	srv, err := smtpserver.New(sk.enqueue,
		smtpserver.WithHostname("shard.test"),
		smtpserver.WithArchitecture(smtpserver.Vanilla),
		smtpserver.WithIdleTimeout(5*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // exits on Close
	var once sync.Once
	kill := func() {
		once.Do(func() {
			// Close the listener directly too: Serve may not have
			// registered it yet when a test kills the shard immediately.
			ln.Close()
			srv.Close() //nolint:errcheck
		})
	}
	t.Cleanup(kill)
	return ln.Addr().String(), sk, kill
}

// startDirector boots a front end over the given shards.
func startDirector(t *testing.T, opts ...Option) (*Server, string) {
	t.Helper()
	d, err := New(append([]Option{
		WithHostname("fe.test"),
		WithIdleTimeout(5 * time.Second),
		WithForwardTimeout(2 * time.Second),
		WithCooldown(200 * time.Millisecond),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(ln)
	t.Cleanup(d.Close)
	return d, ln.Addr().String()
}

func sendMail(t *testing.T, addr, sender string, rcpts []string) int {
	t.Helper()
	c, err := smtp.Dial(addr, 2*time.Second, smtp.WithCommandTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit() //nolint:errcheck
	if err := c.Helo("client.test"); err != nil {
		t.Fatal(err)
	}
	accepted, err := c.Send(sender, rcpts, []byte("Subject: hi\r\n\r\nbody\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	return accepted
}

// TestDirectorForwardsToOwningShard: an accepted envelope is replayed
// to exactly the shard the ring maps its recipient to.
func TestDirectorForwardsToOwningShard(t *testing.T) {
	addrA, sinkA, _ := startShardServer(t)
	addrB, sinkB, _ := startShardServer(t)
	d, feAddr := startDirector(t,
		WithBackend("shard-a", addrA),
		WithBackend("shard-b", addrB),
	)

	sinks := map[string]*sink{"shard-a": sinkA, "shard-b": sinkB}
	for _, rcpt := range []string{"alice@example.org", "bob@example.org", "carol@example.org"} {
		if got := sendMail(t, feAddr, "sender@remote.net", []string{rcpt}); got != 1 {
			t.Fatalf("accepted %d rcpts for %s", got, rcpt)
		}
		owner := d.Ring().Pick(rcpt)
		other := "shard-a"
		if owner == other {
			other = "shard-b"
		}
		if sinks[owner].count(rcpt) != 1 {
			t.Fatalf("%s not delivered to owner %s", rcpt, owner)
		}
		if sinks[other].count(rcpt) != 0 {
			t.Fatalf("%s leaked to non-owner %s", rcpt, other)
		}
	}
	st := d.Stats()
	if st.MailsForwarded != 3 || st.MailsFailed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDirectorMultiRcptFanout: one envelope whose recipients live on
// different shards is split and replayed to both.
func TestDirectorMultiRcptFanout(t *testing.T) {
	addrA, sinkA, _ := startShardServer(t)
	addrB, sinkB, _ := startShardServer(t)
	d, feAddr := startDirector(t,
		WithBackend("shard-a", addrA),
		WithBackend("shard-b", addrB),
	)

	// Find two recipients with different owners.
	corpus := rcptCorpus(100)
	var onA, onB string
	for _, rc := range corpus {
		switch d.Ring().Pick(rc) {
		case "shard-a":
			if onA == "" {
				onA = rc
			}
		case "shard-b":
			if onB == "" {
				onB = rc
			}
		}
	}
	if onA == "" || onB == "" {
		t.Fatal("corpus did not cover both shards")
	}
	if got := sendMail(t, feAddr, "s@remote.net", []string{onA, onB}); got != 2 {
		t.Fatalf("accepted %d rcpts, want 2", got)
	}
	if sinkA.count(onA) != 1 || sinkB.count(onB) != 1 {
		t.Fatalf("fanout incomplete: a=%d b=%d", sinkA.count(onA), sinkB.count(onB))
	}
}

// TestDirectorFailsOverOnShardDeath: killing the owning shard must not
// lose the mail — the director walks the ring to the survivor and the
// client still gets its 250.
func TestDirectorFailsOverOnShardDeath(t *testing.T) {
	addrA, sinkA, killA := startShardServer(t)
	addrB, sinkB, killB := startShardServer(t)
	d, feAddr := startDirector(t,
		WithBackend("shard-a", addrA),
		WithBackend("shard-b", addrB),
	)

	rcpt := "victim@example.org"
	owner := d.Ring().Pick(rcpt)
	// Prime a pooled connection to the owner so the failover also
	// exercises the stale-pool drain.
	if got := sendMail(t, feAddr, "s@remote.net", []string{rcpt}); got != 1 {
		t.Fatalf("prime accepted %d", got)
	}
	ownerSink, survivorSink := sinkA, sinkB
	if owner == "shard-b" {
		ownerSink, survivorSink = sinkB, sinkA
		killB()
	} else {
		killA()
	}
	if ownerSink.count(rcpt) != 1 {
		t.Fatalf("prime mail missed owner %s", owner)
	}

	if got := sendMail(t, feAddr, "s@remote.net", []string{rcpt}); got != 1 {
		t.Fatalf("post-kill accepted %d, want 1 (mail must not be lost)", got)
	}
	if survivorSink.count(rcpt) != 1 {
		t.Fatalf("failover mail not on survivor (owner=%d survivor=%d)",
			ownerSink.count(rcpt), survivorSink.count(rcpt))
	}
	st := d.Stats()
	if st.ForwardRetries == 0 {
		t.Fatalf("no forward retries recorded: %+v", st)
	}
	if st.MailsFailed != 0 {
		t.Fatalf("mails failed despite a live survivor: %+v", st)
	}
}

// TestDirectorTempfailsWhenAllShardsDead: with every shard gone the
// client gets 451 — a retryable verdict, never silent loss.
func TestDirectorTempfailsWhenAllShardsDead(t *testing.T) {
	addrA, _, killA := startShardServer(t)
	d, feAddr := startDirector(t, WithBackend("shard-a", addrA))
	killA()

	c, err := smtp.Dial(feAddr, 2*time.Second, smtp.WithCommandTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abort() //nolint:errcheck
	if err := c.Helo("client.test"); err != nil {
		t.Fatal(err)
	}
	// RCPT passes the pre-trust checks (the recipient is valid); the
	// tempfail must come at end-of-data, after the forward fails.
	accepted, err := c.Send("s@remote.net", []string{"x@example.org"}, []byte("m\r\n"))
	if err == nil || !strings.Contains(err.Error(), "451") {
		t.Fatalf("want 451 tempfail, got accepted=%d err=%v", accepted, err)
	}
	st := d.Stats()
	if st.MailsFailed != 1 || st.MailsForwarded != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDirectorValidateRcpt: the access check runs on the director —
// unknown recipients bounce 550 at the front end and never cross to a
// shard.
func TestDirectorValidateRcpt(t *testing.T) {
	addrA, sinkA, _ := startShardServer(t)
	d, feAddr := startDirector(t,
		WithBackend("shard-a", addrA),
		WithValidateRcpt(func(a string) bool { return strings.HasSuffix(a, "@example.org") }),
	)

	c, err := smtp.Dial(feAddr, 2*time.Second, smtp.WithCommandTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Quit() //nolint:errcheck
	if err := c.Helo("client.test"); err != nil {
		t.Fatal(err)
	}
	accepted, err := c.Send("s@remote.net",
		[]string{"ghost@nowhere.net", "real@example.org"}, []byte("m\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 1 {
		t.Fatalf("accepted = %d, want 1", accepted)
	}
	if sinkA.count("ghost@nowhere.net") != 0 {
		t.Fatal("rejected recipient crossed the trust boundary")
	}
	if sinkA.count("real@example.org") != 1 {
		t.Fatal("valid recipient not forwarded")
	}
	if st := d.Stats(); st.RcptRejected != 1 {
		t.Fatalf("RcptRejected = %d, want 1", st.RcptRejected)
	}
}

// TestDirectorSkewIsNotRetried: a shard refusing a recipient over
// clean SMTP is config skew, not shard death — the accepted subset is
// already delivered, so the director must NOT replay the envelope on
// another shard (that would duplicate it). It records the skew and
// answers 250.
func TestDirectorSkewIsNotRetried(t *testing.T) {
	sk := newSink()
	srv, err := smtpserver.New(sk.enqueue,
		smtpserver.WithHostname("shard.test"),
		smtpserver.WithArchitecture(smtpserver.Vanilla),
		smtpserver.WithValidateRcpt(func(a string) bool { return a != "skewed@example.org" }),
	)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)                  //nolint:errcheck
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck

	// Two shards at the same address: the ring has a live failover
	// candidate, which must NOT be used for a clean refusal.
	d, feAddr := startDirector(t,
		WithBackend("shard-a", ln.Addr().String()),
		WithBackend("shard-b", ln.Addr().String()),
	)
	if got := sendMail(t, feAddr, "s@remote.net",
		[]string{"ok@example.org", "skewed@example.org"}); got != 2 {
		t.Fatalf("director accepted %d rcpts, want 2 (no validate hook)", got)
	}
	if sk.count("ok@example.org") != 1 {
		t.Fatalf("delivered %d copies of the accepted rcpt, want exactly 1",
			sk.count("ok@example.org"))
	}
	st := d.Stats()
	if st.RcptSkew != 1 {
		t.Fatalf("RcptSkew = %d, want 1", st.RcptSkew)
	}
	if st.ForwardRetries != 0 || st.MailsFailed != 0 {
		t.Fatalf("clean refusal triggered failover: %+v", st)
	}
}

// TestDirectorAllRcptsRefusedNotAcked: when the shards cleanly refuse
// EVERY recipient of an envelope, nothing was stored anywhere — a 250
// would be silent mail loss, and a retry elsewhere cannot help a
// recipient-based refusal. The director must fail the transaction 554.
func TestDirectorAllRcptsRefusedNotAcked(t *testing.T) {
	sk := newSink()
	srv, err := smtpserver.New(sk.enqueue,
		smtpserver.WithHostname("shard.test"),
		smtpserver.WithArchitecture(smtpserver.Vanilla),
		smtpserver.WithValidateRcpt(func(string) bool { return false }),
	)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)                  //nolint:errcheck
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck

	d, feAddr := startDirector(t,
		WithBackend("shard-a", ln.Addr().String()),
		WithBackend("shard-b", ln.Addr().String()),
	)
	c, err := smtp.Dial(feAddr, 2*time.Second, smtp.WithCommandTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abort() //nolint:errcheck
	if err := c.Helo("client.test"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Send("s@remote.net", []string{"ghost@example.org"}, []byte("m\r\n"))
	if err == nil || !strings.Contains(err.Error(), "554") {
		t.Fatalf("want 554 for an all-refused envelope, got err=%v", err)
	}
	if n := sk.total(); n != 0 {
		t.Fatalf("sink holds %d deliveries, want 0", n)
	}
	st := d.Stats()
	if st.MailsRefused != 1 || st.MailsForwarded != 0 || st.MailsFailed != 0 {
		t.Fatalf("stats = %+v, want exactly one refused mail", st)
	}
	if st.ForwardRetries != 0 {
		t.Fatalf("clean full refusal triggered failover: %+v", st)
	}
	if st.RcptSkew != 1 {
		t.Fatalf("RcptSkew = %d, want 1", st.RcptSkew)
	}
}

// TestDirectorPoolReuse: sequential dialogs ride the same back-end
// connection — the point of the pool.
func TestDirectorPoolReuse(t *testing.T) {
	addrA, sinkA, _ := startShardServer(t)
	_, feAddr := startDirector(t, WithBackend("shard-a", addrA))
	for i := 0; i < 5; i++ {
		if got := sendMail(t, feAddr, "s@remote.net", []string{"alice@example.org"}); got != 1 {
			t.Fatalf("mail %d accepted %d", i, got)
		}
	}
	if sinkA.count("alice@example.org") != 5 {
		t.Fatalf("delivered %d of 5", sinkA.count("alice@example.org"))
	}
}
