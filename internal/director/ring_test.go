package director

import (
	"fmt"
	"testing"
)

func rcptCorpus(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("user%04d@example%d.org", i, i%37)
	}
	return out
}

// TestRingSkewBound: with 64 vnodes per shard, 1k recipients spread
// over 4 shards must land within a loose constant factor of the even
// share — the property that keeps one delivery shard from becoming the
// hot spot.
func TestRingSkewBound(t *testing.T) {
	r := NewRing(0)
	shards := []string{"shard-a", "shard-b", "shard-c", "shard-d"}
	for _, s := range shards {
		r.Add(s)
	}
	counts := make(map[string]int)
	rcpts := rcptCorpus(1000)
	for _, rc := range rcpts {
		counts[r.Pick(rc)]++
	}
	if len(counts) != len(shards) {
		t.Fatalf("only %d of %d shards own recipients: %v", len(counts), len(shards), counts)
	}
	mean := float64(len(rcpts)) / float64(len(shards))
	for s, c := range counts {
		if f := float64(c) / mean; f < 0.5 || f > 1.7 {
			t.Fatalf("shard %s owns %d of %d (%.2f× even share); skew too large: %v",
				s, c, len(rcpts), f, counts)
		}
	}
}

// TestRingStablePick: the same key maps to the same shard on every
// call and on a ring built in a different insertion order.
func TestRingStablePick(t *testing.T) {
	a, b := NewRing(32), NewRing(32)
	for _, s := range []string{"s1", "s2", "s3"} {
		a.Add(s)
	}
	for _, s := range []string{"s3", "s1", "s2"} {
		b.Add(s)
	}
	for _, rc := range rcptCorpus(200) {
		if a.Pick(rc) != b.Pick(rc) {
			t.Fatalf("pick for %q depends on insertion order", rc)
		}
	}
}

// TestRingMinimalRemapOnJoin: adding a shard moves keys ONLY onto the
// new shard, and roughly its fair share of them — nothing shuffles
// between surviving shards.
func TestRingMinimalRemapOnJoin(t *testing.T) {
	r := NewRing(64)
	for _, s := range []string{"s1", "s2", "s3", "s4"} {
		r.Add(s)
	}
	rcpts := rcptCorpus(1000)
	before := make(map[string]string, len(rcpts))
	for _, rc := range rcpts {
		before[rc] = r.Pick(rc)
	}
	r.Add("s5")
	moved := 0
	for _, rc := range rcpts {
		now := r.Pick(rc)
		if now != before[rc] {
			moved++
			if now != "s5" {
				t.Fatalf("%q moved %s -> %s, not to the joining shard", rc, before[rc], now)
			}
		}
	}
	// Fair share is 1/5 = 200; allow wide slack but catch a full
	// reshuffle (naive mod-N hashing moves ~80%).
	if moved == 0 || moved > 400 {
		t.Fatalf("join moved %d of %d keys; want ~200", moved, len(rcpts))
	}
}

// TestRingMinimalRemapOnLeave: removing a shard moves only the keys it
// owned, and every orphan lands on a surviving shard.
func TestRingMinimalRemapOnLeave(t *testing.T) {
	r := NewRing(64)
	for _, s := range []string{"s1", "s2", "s3", "s4"} {
		r.Add(s)
	}
	rcpts := rcptCorpus(1000)
	before := make(map[string]string, len(rcpts))
	owned := 0
	for _, rc := range rcpts {
		before[rc] = r.Pick(rc)
		if before[rc] == "s3" {
			owned++
		}
	}
	r.Remove("s3")
	moved := 0
	for _, rc := range rcpts {
		now := r.Pick(rc)
		if now == "s3" {
			t.Fatalf("%q still maps to the removed shard", rc)
		}
		if now != before[rc] {
			moved++
			if before[rc] != "s3" {
				t.Fatalf("%q moved %s -> %s though its shard survived", rc, before[rc], now)
			}
		}
	}
	if moved != owned {
		t.Fatalf("leave moved %d keys, removed shard owned %d", moved, owned)
	}
}

// TestRingCandidates: the failover sequence starts at the owner, lists
// distinct shards, and never exceeds membership.
func TestRingCandidates(t *testing.T) {
	r := NewRing(16)
	for _, s := range []string{"s1", "s2", "s3"} {
		r.Add(s)
	}
	for _, rc := range rcptCorpus(50) {
		cands := r.Candidates(rc, 10)
		if len(cands) != 3 {
			t.Fatalf("candidates(%q) = %v, want 3 distinct shards", rc, cands)
		}
		if cands[0] != r.Pick(rc) {
			t.Fatalf("candidates(%q)[0] = %s, owner = %s", rc, cands[0], r.Pick(rc))
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("candidates(%q) repeats %s: %v", rc, c, cands)
			}
			seen[c] = true
		}
	}
	if got := r.Candidates("x", 0); got != nil {
		t.Fatalf("candidates with n=0 = %v", got)
	}
	if got := NewRing(4).Pick("x"); got != "" {
		t.Fatalf("empty ring picked %q", got)
	}
}
