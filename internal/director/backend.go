package director

import (
	"sync"
	"time"

	"repro/internal/smtp"
	"repro/internal/trace"
)

// maxIdlePerBackend bounds the pooled connections kept per shard. A
// director serves many client dialogs over few long-lived back-end
// connections — the same amortization argument as the paper's
// persistent-worker pool, applied to the network hop.
const maxIdlePerBackend = 4

// backend is one delivery shard as seen from a director: an address, a
// small pool of idle replay connections, and a cooldown latch that keeps
// the forward path from re-dialing a dead shard on every mail.
type backend struct {
	name string
	addr string

	mu        sync.Mutex
	idle      []*smtp.Client
	downUntil time.Time
	fails     int64
}

// get returns a pooled connection or dials a fresh one.
func (b *backend) get(helo string, timeout time.Duration) (*smtp.Client, bool, error) {
	b.mu.Lock()
	if n := len(b.idle); n > 0 {
		c := b.idle[n-1]
		b.idle = b.idle[:n-1]
		b.mu.Unlock()
		return c, true, nil
	}
	b.mu.Unlock()
	c, err := smtp.Dial(b.addr, timeout, smtp.WithCommandTimeout(timeout))
	if err != nil {
		return nil, false, err
	}
	// EHLO with HELO fallback: learning the shard's extensions here is
	// what lets forward propagate trace contexts over XTRACE.
	if err := c.Hello(helo); err != nil {
		c.Abort()
		return nil, false, err
	}
	return c, false, nil
}

// put returns a healthy connection to the pool, closing overflow.
func (b *backend) put(c *smtp.Client) {
	b.mu.Lock()
	if len(b.idle) < maxIdlePerBackend {
		b.idle = append(b.idle, c)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	c.Quit() //nolint:errcheck // surplus connection
}

// down reports whether the shard is inside its failure cooldown.
func (b *backend) down(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.Before(b.downUntil)
}

// markDown records a forward failure and arms the cooldown, dropping
// any pooled connections (they share the dead endpoint).
func (b *backend) markDown(now time.Time, cooldown time.Duration) {
	b.mu.Lock()
	idle := b.idle
	b.idle = nil
	b.downUntil = now.Add(cooldown)
	b.fails++
	b.mu.Unlock()
	for _, c := range idle {
		c.Abort() //nolint:errcheck
	}
}

// markUp clears the cooldown after a successful forward.
func (b *backend) markUp() {
	b.mu.Lock()
	b.downUntil = time.Time{}
	b.mu.Unlock()
}

// closeIdle drains the pool on shutdown.
func (b *backend) closeIdle() {
	b.mu.Lock()
	idle := b.idle
	b.idle = nil
	b.mu.Unlock()
	for _, c := range idle {
		c.Quit() //nolint:errcheck
	}
}

// forward delivers the envelope to this shard: pooled connection first,
// then one fresh dial. A non-nil error is a transport-level failure —
// nothing was delivered and the caller should try the next ring
// candidate. A nil error with accepted < len(rcpts) means the shard
// REFUSED some recipients over clean SMTP (550s): the accepted subset
// is already delivered, so retrying elsewhere would duplicate it — the
// caller records the skew instead. The pooled flag drives the retry
// story: a pooled connection may simply be stale (the shard restarted,
// the socket idled out), so its failure drains the pool and one fresh
// dial decides whether the shard itself is sick.
//
// tc is the mail's trace context; when it is valid and the shard
// advertised XTRACE it rides MAIL FROM, and traced reports that it did
// — the caller's trace-stitched signal.
func (b *backend) forward(helo string, timeout time.Duration, sender string, rcpts []string, data []byte, tc trace.Context) (accepted int, retried, traced bool, err error) {
	c, pooled, err := b.get(helo, timeout)
	if err != nil {
		return 0, false, false, err
	}
	traced = tc.Valid() && c.Supports("XTRACE")
	accepted, err = c.SendTraced(sender, rcpts, data, tc)
	if err != nil {
		c.Abort() //nolint:errcheck
		if !pooled {
			return 0, false, false, err
		}
		b.mu.Lock()
		stale := b.idle
		b.idle = nil
		b.mu.Unlock()
		for _, sc := range stale {
			sc.Abort() //nolint:errcheck
		}
		c2, _, derr := b.get(helo, timeout)
		if derr != nil {
			return 0, true, false, derr
		}
		traced = tc.Valid() && c2.Supports("XTRACE")
		accepted, err = c2.SendTraced(sender, rcpts, data, tc)
		if err != nil {
			c2.Abort() //nolint:errcheck
			return 0, true, false, err
		}
		b.put(c2)
		return accepted, true, traced, nil
	}
	b.put(c)
	return accepted, false, traced, nil
}
