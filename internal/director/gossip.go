package director

import (
	"encoding/json"
	"net"
	"sync"
	"time"

	"repro/internal/eventlog"
	"repro/internal/policy"
)

// syncMsg is one direction of an anti-entropy exchange: the sender's
// deltas since the receiver last saw it, plus (on the dialing side) the
// watermark the responder should answer from.
type syncMsg struct {
	From  string             `json:"from,omitempty"`
	Since time.Time          `json:"since"`
	Rep   []policy.RepEntry  `json:"rep,omitempty"`
	Grey  []policy.GreyEntry `json:"grey,omitempty"`
	Verd  []VerdictEntry     `json:"verd,omitempty"`
}

// GossipStats snapshots one node's replication counters.
type GossipStats struct {
	Exchanges   int64 // completed dial-side exchanges
	Failures    int64 // dial-side exchanges that errored
	Served      int64 // exchanges answered as responder
	RepApplied  int64 // reputation entries merged in
	GreyApplied int64
	VerdApplied int64
}

// Gossip replicates pre-trust state — EWMA reputation deltas, greylist
// tuples, DNSBL verdicts — between director nodes by periodic
// anti-entropy exchange over TCP. Every exchange is a symmetric full
// sync: the dialer pushes its deltas since it last pushed to that peer
// and pulls the peer's deltas since it last pulled. Merges are
// commutative and idempotent (see DESIGN.md), so overlap between
// rounds and between peers is harmless; watermarks are backed off by
// one overlap window to cover entries stamped concurrently with a
// delta scan.
type Gossip struct {
	name     string
	peers    []string
	interval time.Duration
	overlap  time.Duration
	timeout  time.Duration
	now      func() time.Time
	events   *eventlog.Log

	rep  policy.ReputationSync
	grey policy.GreylistSync
	verd *Verdicts

	mu       sync.Mutex
	lastPull map[string]time.Time // per peer: watermark sent as Since
	lastPush map[string]time.Time // per peer: base of our own Delta
	st       GossipStats

	ln   net.Listener
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// GossipOption configures a Gossip node.
type GossipOption func(*Gossip)

// WithGossipName labels this node in exchange messages and events.
func WithGossipName(name string) GossipOption {
	return func(g *Gossip) { g.name = name }
}

// WithPeers sets the peer gossip addresses this node dials.
func WithPeers(addrs ...string) GossipOption {
	return func(g *Gossip) { g.peers = append(g.peers, addrs...) }
}

// WithInterval sets the anti-entropy period (default 1s).
func WithInterval(d time.Duration) GossipOption {
	return func(g *Gossip) { g.interval = d }
}

// WithGossipTimeout bounds one exchange round trip (default 5s).
func WithGossipTimeout(d time.Duration) GossipOption {
	return func(g *Gossip) { g.timeout = d }
}

// WithReputationSync shares the reputation store.
func WithReputationSync(r policy.ReputationSync) GossipOption {
	return func(g *Gossip) { g.rep = r }
}

// WithGreylistSync shares the greylist store.
func WithGreylistSync(gr policy.GreylistSync) GossipOption {
	return func(g *Gossip) { g.grey = gr }
}

// WithVerdicts shares the DNSBL verdict cache.
func WithVerdicts(v *Verdicts) GossipOption {
	return func(g *Gossip) { g.verd = v }
}

// WithGossipClock injects the clock used for watermarks (default
// time.Now). Deltas and merges use the stores' own stamps; this clock
// only decides how far back each exchange reaches.
func WithGossipClock(now func() time.Time) GossipOption {
	return func(g *Gossip) { g.now = now }
}

// WithGossipEventLog emits gossip.exchange events into log.
func WithGossipEventLog(log *eventlog.Log) GossipOption {
	return func(g *Gossip) { g.events = log }
}

// NewGossip builds a gossip node over whatever stores were supplied;
// absent stores simply do not replicate.
func NewGossip(opts ...GossipOption) *Gossip {
	g := &Gossip{
		name:     "gossip",
		interval: time.Second,
		timeout:  5 * time.Second,
		now:      time.Now,
		lastPull: make(map[string]time.Time),
		lastPush: make(map[string]time.Time),
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(g)
	}
	g.overlap = g.interval
	return g
}

// Stats snapshots the replication counters.
func (g *Gossip) Stats() GossipStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.st
}

// Serve answers exchange requests on ln until Close. It owns ln.
func (g *Gossip) Serve(ln net.Listener) {
	g.mu.Lock()
	g.ln = ln
	g.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-g.done:
				return
			default:
			}
			continue
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.serveExchange(nc)
		}()
	}
}

// Start launches the periodic dial loop against the configured peers.
func (g *Gossip) Start() {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		t := time.NewTicker(g.interval)
		defer t.Stop()
		for {
			select {
			case <-g.done:
				return
			case <-t.C:
				for _, p := range g.peers {
					g.Exchange(p) //nolint:errcheck // counted in Stats, retried next tick
				}
			}
		}
	}()
}

// Close stops the loops and the responder listener.
func (g *Gossip) Close() {
	g.once.Do(func() { close(g.done) })
	g.mu.Lock()
	ln := g.ln
	g.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	g.wg.Wait()
}

// serveExchange answers one inbound exchange: merge what the peer
// pushed, reply with our deltas since the peer's watermark.
func (g *Gossip) serveExchange(nc net.Conn) {
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(g.timeout)) //nolint:errcheck
	var req syncMsg
	if err := json.NewDecoder(nc).Decode(&req); err != nil {
		return
	}
	g.apply(req)
	resp := g.delta(req.Since)
	json.NewEncoder(nc).Encode(resp) //nolint:errcheck // peer retries next tick
	g.mu.Lock()
	g.st.Served++
	g.mu.Unlock()
}

// Exchange runs one synchronous anti-entropy round with peer.
func (g *Gossip) Exchange(peer string) error {
	g.mu.Lock()
	pull := g.lastPull[peer]
	push := g.lastPush[peer]
	g.mu.Unlock()
	start := g.now()

	req := g.delta(push)
	req.Since = pull
	req.From = g.name

	nc, err := net.DialTimeout("tcp", peer, g.timeout)
	if err != nil {
		return g.fail(peer, err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(g.timeout)) //nolint:errcheck
	if err := json.NewEncoder(nc).Encode(req); err != nil {
		return g.fail(peer, err)
	}
	var resp syncMsg
	if err := json.NewDecoder(nc).Decode(&resp); err != nil {
		return g.fail(peer, err)
	}
	applied := g.apply(resp)

	// Advance watermarks to just before this round began; the overlap
	// re-sends anything stamped while the delta scan ran. Idempotent
	// merges make the repetition free.
	mark := start.Add(-g.overlap)
	g.mu.Lock()
	g.lastPull[peer] = mark
	g.lastPush[peer] = mark
	g.st.Exchanges++
	g.mu.Unlock()
	if g.verd != nil {
		g.verd.Sweep()
	}
	g.events.Debug("gossip.exchange", 0,
		eventlog.Str("peer", peer),
		eventlog.Int("applied", int64(applied)),
	)
	return nil
}

func (g *Gossip) fail(peer string, err error) error {
	g.mu.Lock()
	g.st.Failures++
	g.mu.Unlock()
	g.events.Warn("gossip.fail", 0,
		eventlog.Str("peer", peer),
		eventlog.Str("err", err.Error()),
	)
	return err
}

// delta collects this node's entries stamped since the watermark.
func (g *Gossip) delta(since time.Time) syncMsg {
	var m syncMsg
	if g.rep != nil {
		m.Rep = g.rep.Delta(since)
	}
	if g.grey != nil {
		m.Grey = g.grey.Delta(since)
	}
	if g.verd != nil {
		m.Verd = g.verd.Delta(since)
	}
	return m
}

// apply merges a peer's entries into the local stores.
func (g *Gossip) apply(m syncMsg) int {
	applied := 0
	if g.rep != nil && len(m.Rep) > 0 {
		n := g.rep.Merge(m.Rep)
		applied += n
		g.mu.Lock()
		g.st.RepApplied += int64(n)
		g.mu.Unlock()
	}
	if g.grey != nil && len(m.Grey) > 0 {
		n := g.grey.Merge(m.Grey)
		applied += n
		g.mu.Lock()
		g.st.GreyApplied += int64(n)
		g.mu.Unlock()
	}
	if g.verd != nil && len(m.Verd) > 0 {
		n := g.verd.Merge(m.Verd)
		applied += n
		g.mu.Lock()
		g.st.VerdApplied += int64(n)
		g.mu.Unlock()
	}
	return applied
}
