package director

import (
	"context"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/dnsbl"
)

// VerdictEntry is one DNSBL verdict on the gossip wire. Verdicts are
// immutable facts about (IP, moment), so replication is plain
// last-writer-wins on Stamp — no decay algebra needed.
type VerdictEntry struct {
	IP     string    `json:"ip"`
	Listed bool      `json:"l,omitempty"`
	Expiry time.Time `json:"e"`
	Stamp  time.Time `json:"s"`
}

type verdict struct {
	listed bool
	expiry time.Time
	stamp  time.Time
}

// Verdicts is a gossip-shared DNSBL verdict cache: a dnsbl.Resolver
// that answers from verdicts this node — or any peer — has already paid
// an upstream query for, delegating to the inner resolver only on a
// miss. The per-origin hit counters are what the director-scaleout
// experiment measures: peer hits are lookups a lone node would have
// sent upstream, i.e. the cache-hit lift bought by gossip.
type Verdicts struct {
	inner dnsbl.Resolver
	ttl   time.Duration
	now   func() time.Time

	mu        sync.Mutex
	entries   map[string]verdict // key: dotted-quad IP
	origin    map[string]bool    // true when the entry arrived by gossip
	localHits int64
	peerHits  int64
	misses    int64
}

// VerdictsOption configures a Verdicts cache.
type VerdictsOption func(*Verdicts)

// WithVerdictTTL sets how long a verdict stays servable (default 5m).
func WithVerdictTTL(d time.Duration) VerdictsOption {
	return func(v *Verdicts) { v.ttl = d }
}

// WithVerdictClock injects the clock (default time.Now).
func WithVerdictClock(now func() time.Time) VerdictsOption {
	return func(v *Verdicts) { v.now = now }
}

// NewVerdicts wraps inner with a shared verdict cache.
func NewVerdicts(inner dnsbl.Resolver, opts ...VerdictsOption) *Verdicts {
	v := &Verdicts{
		inner:   inner,
		ttl:     5 * time.Minute,
		now:     time.Now,
		entries: make(map[string]verdict),
		origin:  make(map[string]bool),
	}
	for _, o := range opts {
		o(v)
	}
	return v
}

// Lookup answers from the shared cache when it can, else pays the
// upstream query and records the verdict for the next gossip round.
func (v *Verdicts) Lookup(ctx context.Context, ip addr.IPv4) (dnsbl.Result, error) {
	key := ip.String()
	now := v.now()
	v.mu.Lock()
	if e, ok := v.entries[key]; ok && now.Before(e.expiry) {
		if v.origin[key] {
			v.peerHits++
		} else {
			v.localHits++
		}
		v.mu.Unlock()
		return dnsbl.Result{Listed: e.listed, CacheHit: true}, nil
	}
	v.misses++
	v.mu.Unlock()

	r, err := v.inner.Lookup(ctx, ip)
	if err != nil {
		return r, err
	}
	v.mu.Lock()
	v.entries[key] = verdict{listed: r.Listed, expiry: now.Add(v.ttl), stamp: now}
	v.origin[key] = false
	v.mu.Unlock()
	return r, nil
}

// LocalHits counts cache hits on verdicts this node queried itself.
func (v *Verdicts) LocalHits() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.localHits
}

// PeerHits counts cache hits on verdicts that arrived by gossip —
// upstream queries this node never had to send.
func (v *Verdicts) PeerHits() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.peerHits
}

// Misses counts lookups that went to the inner resolver.
func (v *Verdicts) Misses() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.misses
}

// Delta returns entries stamped at or after since.
func (v *Verdicts) Delta(since time.Time) []VerdictEntry {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out []VerdictEntry
	for key, e := range v.entries {
		if e.stamp.Before(since) {
			continue
		}
		out = append(out, VerdictEntry{IP: key, Listed: e.listed, Expiry: e.expiry, Stamp: e.stamp})
	}
	return out
}

// Merge folds peer entries in, last writer (by Stamp) winning. Merged
// entries are tagged as peer-origin so later hits on them count toward
// the gossip lift; re-merging an echo of a local entry changes nothing
// because equal stamps keep the incumbent. Returns entries applied.
func (v *Verdicts) Merge(entries []VerdictEntry) int {
	now := v.now()
	v.mu.Lock()
	defer v.mu.Unlock()
	applied := 0
	for _, e := range entries {
		if !now.Before(e.Expiry) {
			continue // dead on arrival
		}
		if cur, ok := v.entries[e.IP]; ok && !cur.stamp.Before(e.Stamp) {
			continue
		}
		v.entries[e.IP] = verdict{listed: e.Listed, expiry: e.Expiry, stamp: e.Stamp}
		v.origin[e.IP] = true
		applied++
	}
	return applied
}

// Sweep drops expired verdicts; call it from the gossip loop.
func (v *Verdicts) Sweep() {
	now := v.now()
	v.mu.Lock()
	defer v.mu.Unlock()
	for key, e := range v.entries {
		if !now.Before(e.expiry) {
			delete(v.entries, key)
			delete(v.origin, key)
		}
	}
}
