package pop3

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/fsim"
	"repro/internal/mailstore"
)

// testClient is a minimal POP3 client for the tests.
type testClient struct {
	t  *testing.T
	nc net.Conn
	r  *bufio.Reader
}

func dialPOP3(t *testing.T, addr string) *testClient {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	c := &testClient{t: t, nc: nc, r: bufio.NewReader(nc)}
	if got := c.line(); !strings.HasPrefix(got, "+OK") {
		t.Fatalf("banner = %q", got)
	}
	return c
}

func (c *testClient) line() string {
	c.t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatal(err)
	}
	return strings.TrimRight(line, "\r\n")
}

// cmd sends a command and returns the single status line.
func (c *testClient) cmd(line string) string {
	c.t.Helper()
	if _, err := c.nc.Write([]byte(line + "\r\n")); err != nil {
		c.t.Fatal(err)
	}
	return c.line()
}

// multi reads a dot-terminated multi-line payload (after a +OK).
func (c *testClient) multi() []string {
	c.t.Helper()
	var lines []string
	for {
		l := c.line()
		if l == "." {
			return lines
		}
		lines = append(lines, strings.TrimPrefix(l, "."))
	}
}

// startServer boots a POP3 server over an MFS store with three mails for
// alice (one shared with bob).
func startServer(t *testing.T, mutate ...func(*Config)) (*testClient, mailstore.Store, *Server) {
	t.Helper()
	store, err := mailstore.NewMFS(fsim.NewMem(costmodel.FSModel{}), "mfs")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	mails := []struct {
		id    string
		rcpts []string
		body  string
	}{
		{"m1", []string{"alice"}, "Subject: one\r\n\r\nfirst\r\n"},
		{"m2", []string{"alice", "bob"}, "Subject: two\r\n\r\n.dot line\r\nshared\r\n"},
		{"m3", []string{"alice"}, "Subject: three\r\n\r\nthird\r\n"},
	}
	for _, m := range mails {
		if err := store.Deliver(m.id, m.rcpts, []byte(m.body)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Store: store, Hostname: "pop.test", IdleTimeout: 5 * time.Second}
	for _, m := range mutate {
		m(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return dialPOP3(t, ln.Addr().String()), store, srv
}

func login(t *testing.T, c *testClient, user string) {
	t.Helper()
	if got := c.cmd("USER " + user); !strings.HasPrefix(got, "+OK") {
		t.Fatalf("USER = %q", got)
	}
	if got := c.cmd("PASS secret"); !strings.HasPrefix(got, "+OK") {
		t.Fatalf("PASS = %q", got)
	}
}

func TestStatListUidl(t *testing.T) {
	c, _, _ := startServer(t)
	login(t, c, "alice")
	stat := c.cmd("STAT")
	if !strings.HasPrefix(stat, "+OK 3 ") {
		t.Fatalf("STAT = %q", stat)
	}
	if got := c.cmd("LIST"); !strings.HasPrefix(got, "+OK 3 messages") {
		t.Fatalf("LIST = %q", got)
	}
	rows := c.multi()
	if len(rows) != 3 || !strings.HasPrefix(rows[0], "1 ") {
		t.Fatalf("LIST rows = %v", rows)
	}
	if got := c.cmd("LIST 2"); !strings.HasPrefix(got, "+OK 2 ") {
		t.Fatalf("LIST 2 = %q", got)
	}
	if got := c.cmd("UIDL"); !strings.HasPrefix(got, "+OK") {
		t.Fatalf("UIDL = %q", got)
	}
	uids := c.multi()
	if len(uids) != 3 || uids[1] != "2 m2" {
		t.Fatalf("UIDL rows = %v", uids)
	}
}

func TestRetrDotStuffedRoundTrip(t *testing.T) {
	c, _, srv := startServer(t)
	login(t, c, "alice")
	if got := c.cmd("RETR 2"); !strings.HasPrefix(got, "+OK") {
		t.Fatalf("RETR = %q", got)
	}
	body := strings.Join(c.multi(), "\r\n") + "\r\n"
	want := "Subject: two\r\n\r\n.dot line\r\nshared\r\n"
	if body != want {
		t.Fatalf("RETR body = %q, want %q", body, want)
	}
	if srv.Stats().Retrieved != 1 {
		t.Fatalf("retrieved = %d", srv.Stats().Retrieved)
	}
}

func TestDeleAppliedAtQuit(t *testing.T) {
	c, store, srv := startServer(t)
	login(t, c, "alice")
	if got := c.cmd("DELE 1"); !strings.HasPrefix(got, "+OK") {
		t.Fatalf("DELE = %q", got)
	}
	// Deleted messages disappear from the listing but the store is
	// untouched until QUIT.
	if got := c.cmd("STAT"); !strings.HasPrefix(got, "+OK 2 ") {
		t.Fatalf("STAT after DELE = %q", got)
	}
	if got := c.cmd("RETR 1"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("RETR deleted = %q", got)
	}
	if ids, _ := store.List("alice"); len(ids) != 3 {
		t.Fatal("store modified before QUIT")
	}
	if got := c.cmd("QUIT"); !strings.HasPrefix(got, "+OK") {
		t.Fatalf("QUIT = %q", got)
	}
	waitFor(t, func() bool { return srv.Stats().Deleted == 1 })
	ids, err := store.List("alice")
	if err != nil || len(ids) != 2 || ids[0] != "m2" {
		t.Fatalf("after quit: %v, %v", ids, err)
	}
	// The shared mail survives for bob.
	if _, err := store.Read("bob", "m2"); err != nil {
		t.Fatalf("bob's copy: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRsetRestoresDeleted(t *testing.T) {
	c, store, _ := startServer(t)
	login(t, c, "alice")
	c.cmd("DELE 1")
	c.cmd("DELE 3")
	if got := c.cmd("RSET"); !strings.HasPrefix(got, "+OK") {
		t.Fatalf("RSET = %q", got)
	}
	if got := c.cmd("STAT"); !strings.HasPrefix(got, "+OK 3 ") {
		t.Fatalf("STAT after RSET = %q", got)
	}
	c.cmd("QUIT")
	if ids, _ := store.List("alice"); len(ids) != 3 {
		t.Fatal("RSET did not cancel deletions")
	}
}

func TestAuthRequired(t *testing.T) {
	c, _, _ := startServer(t)
	for _, cmd := range []string{"STAT", "LIST", "RETR 1", "DELE 1", "UIDL", "RSET"} {
		if got := c.cmd(cmd); !strings.HasPrefix(got, "-ERR") {
			t.Fatalf("%s before login = %q", cmd, got)
		}
	}
	if got := c.cmd("PASS x"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("PASS before USER = %q", got)
	}
}

func TestAuthenticatorRejects(t *testing.T) {
	c, _, srv := startServer(t, func(cfg *Config) {
		cfg.Auth = func(user, pass string) bool { return pass == "correct" }
	})
	c.cmd("USER alice")
	if got := c.cmd("PASS wrong"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("bad PASS = %q", got)
	}
	if srv.Stats().AuthFails != 1 {
		t.Fatal("auth failure not counted")
	}
	// USER must be resent after a failure.
	if got := c.cmd("PASS correct"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("PASS without USER = %q", got)
	}
	c.cmd("USER alice")
	if got := c.cmd("PASS correct"); !strings.HasPrefix(got, "+OK") {
		t.Fatalf("good PASS = %q", got)
	}
}

func TestEmptyMaildrop(t *testing.T) {
	c, _, _ := startServer(t)
	login(t, c, "nobody-yet")
	if got := c.cmd("STAT"); got != "+OK 0 0" {
		t.Fatalf("empty STAT = %q", got)
	}
}

func TestBadMessageNumbers(t *testing.T) {
	c, _, _ := startServer(t)
	login(t, c, "alice")
	for _, cmd := range []string{"RETR 0", "RETR 9", "RETR x", "DELE 99", "LIST 7", "UIDL 0"} {
		if got := c.cmd(cmd); !strings.HasPrefix(got, "-ERR") {
			t.Fatalf("%s = %q", cmd, got)
		}
	}
}

func TestUnknownCommandAndNoop(t *testing.T) {
	c, _, _ := startServer(t)
	if got := c.cmd("XYZZY"); !strings.HasPrefix(got, "-ERR") {
		t.Fatalf("XYZZY = %q", got)
	}
	if got := c.cmd("NOOP"); !strings.HasPrefix(got, "+OK") {
		t.Fatalf("NOOP = %q", got)
	}
}

func TestWorksOverEveryStore(t *testing.T) {
	for _, name := range []string{"mbox", "maildir", "hardlink"} {
		t.Run(name, func(t *testing.T) {
			fs := fsim.NewMem(costmodel.FSModel{})
			var store mailstore.Store
			switch name {
			case "mbox":
				store = mailstore.NewMbox(fs)
			case "maildir":
				store = mailstore.NewMaildir(fs)
			case "hardlink":
				store = mailstore.NewHardlink(fs)
			}
			defer store.Close()
			store.Deliver("m1", []string{"carol"}, []byte("hello\r\n"))
			srv, err := New(Config{Store: store})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ln) //nolint:errcheck
			defer srv.Close()
			c := dialPOP3(t, ln.Addr().String())
			login(t, c, "carol")
			if got := c.cmd("RETR 1"); !strings.HasPrefix(got, "+OK") {
				t.Fatalf("RETR = %q", got)
			}
			if body := strings.Join(c.multi(), "\r\n"); body != "hello" {
				t.Fatalf("body = %q", body)
			}
		})
	}
}

func TestConcurrentSessions(t *testing.T) {
	c1, _, srv := startServer(t)
	login(t, c1, "alice")
	// A second concurrent session on another mailbox.
	var c2 *testClient
	func() {
		nc, err := net.Dial("tcp", c1.nc.RemoteAddr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nc.Close() })
		c2 = &testClient{t: t, nc: nc, r: bufio.NewReader(nc)}
		c2.line() // banner
	}()
	login(t, c2, "bob")
	if got := c2.cmd("STAT"); !strings.HasPrefix(got, "+OK 1 ") {
		t.Fatalf("bob STAT = %q", got)
	}
	if got := c1.cmd("STAT"); !strings.HasPrefix(got, "+OK 3 ") {
		t.Fatalf("alice STAT = %q", got)
	}
	c1.cmd("QUIT")
	c2.cmd("QUIT")
	waitFor(t, func() bool { return srv.Stats().Sessions == 2 })
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil store accepted")
	}
}

func TestCloseIdempotentAndServeAfterClose(t *testing.T) {
	store := mailstore.NewMbox(fsim.NewMem(costmodel.FSModel{}))
	defer store.Close()
	srv, _ := New(Config{Store: store})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve after Close = %v", err)
	}
	if err := srv.Close(); err == nil {
		t.Fatal("double Close accepted")
	}
	ln2, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln2.Close()
	if err := srv.Serve(ln2); err == nil {
		t.Fatal("Serve on closed server accepted")
	}
}
