// Package pop3 implements the retrieval side of the mail system: a POP3
// (RFC 1939) server reading from any mailstore.Store. The paper's §6.1
// observes that mail servers, POP and IMAP servers all access mailboxes
// "in units of mails" — which is exactly why MFS is record-oriented; this
// server is the consumer that observation is about, and it runs unchanged
// over every store in internal/mailstore, MFS included.
//
// The command set is the RFC 1939 minimal profile plus UIDL: USER, PASS,
// STAT, LIST, UIDL, RETR, DELE, NOOP, RSET, QUIT. Deletions are staged
// during the session and applied at QUIT (the UPDATE state), per the RFC.
package pop3

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/mailstore"
	"repro/internal/metrics"
	"repro/internal/smtp"
)

// Authenticator decides whether a USER/PASS pair may open a mailbox. The
// mailbox name is the user name.
type Authenticator func(user, pass string) bool

// Config parameterizes a Server.
type Config struct {
	// Store is the mailbox store to serve; required.
	Store mailstore.Store
	// Auth validates credentials; nil accepts every user that has a
	// mailbox (lab configuration).
	Auth Authenticator
	// Hostname appears in the greeting banner.
	Hostname string
	// IdleTimeout bounds each wait for a client command (default 60s).
	IdleTimeout time.Duration
}

// Stats counts server activity.
type Stats struct {
	Sessions  int64
	Retrieved int64
	Deleted   int64
	AuthFails int64
}

// Server is a POP3 server. Create with New, start with Serve, stop with
// Close.
type Server struct {
	cfg Config

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup

	sessions  metrics.Counter
	retrieved metrics.Counter
	deleted   metrics.Counter
	authFails metrics.Counter
}

// New returns an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("pop3: Store is required")
	}
	if cfg.Hostname == "" {
		cfg.Hostname = "mail.example.org"
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	return &Server{cfg: cfg, conns: make(map[net.Conn]bool)}, nil
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Sessions:  s.sessions.Value(),
		Retrieved: s.retrieved.Value(),
		Deleted:   s.deleted.Value(),
		AuthFails: s.authFails.Value(),
	}
}

// Serve accepts connections until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("pop3: server closed")
	}
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("pop3: already serving")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("pop3: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(nc)
	}
}

// Close stops accepting, force-closes open sessions, and waits.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("pop3: already closed")
	}
	s.closed = true
	ln := s.ln
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) untrack(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
}

// session holds one connection's state.
type session struct {
	srv  *Server
	nc   net.Conn
	c    *smtp.Conn // reuses the SMTP line/dot codec: POP3 shares both
	user string
	// authed marks the transition from AUTHORIZATION to TRANSACTION.
	authed bool
	// ids is the mailbox listing frozen at PASS time (RFC 1939 locks the
	// maildrop for the session).
	ids []string
	// deleted marks messages staged for deletion (1-based index).
	deleted map[int]bool
}

func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer s.untrack(nc)
	defer nc.Close()
	s.sessions.Inc()
	sess := &session{srv: s, nc: nc, c: smtp.NewConn(nc), deleted: make(map[int]bool)}
	if err := sess.ok("POP3 server ready on " + s.cfg.Hostname); err != nil {
		return
	}
	for {
		if err := nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
			return
		}
		line, err := sess.c.ReadLine()
		if err != nil {
			return
		}
		verb, arg := splitCommand(string(line))
		quit, err := sess.dispatch(verb, arg)
		if err != nil || quit {
			return
		}
	}
}

func splitCommand(line string) (verb, arg string) {
	verb = line
	if i := strings.IndexByte(line, ' '); i >= 0 {
		verb, arg = line[:i], strings.TrimSpace(line[i+1:])
	}
	return strings.ToUpper(verb), arg
}

func (s *session) ok(text string) error   { return s.c.WriteLine("+OK " + text) }
func (s *session) errr(text string) error { return s.c.WriteLine("-ERR " + text) }

// dispatch handles one command; quit reports session end.
func (s *session) dispatch(verb, arg string) (quit bool, err error) {
	switch verb {
	case "QUIT":
		return true, s.quit()
	case "NOOP":
		return false, s.ok("")
	case "USER":
		return false, s.cmdUser(arg)
	case "PASS":
		return false, s.cmdPass(arg)
	case "STAT":
		return false, s.inTransaction(func() error { return s.cmdStat() })
	case "LIST":
		return false, s.inTransaction(func() error { return s.cmdList(arg) })
	case "UIDL":
		return false, s.inTransaction(func() error { return s.cmdUidl(arg) })
	case "RETR":
		return false, s.inTransaction(func() error { return s.cmdRetr(arg) })
	case "DELE":
		return false, s.inTransaction(func() error { return s.cmdDele(arg) })
	case "RSET":
		return false, s.inTransaction(func() error {
			s.deleted = make(map[int]bool)
			return s.ok("reset")
		})
	default:
		return false, s.errr("unknown command")
	}
}

func (s *session) inTransaction(fn func() error) error {
	if !s.authed {
		return s.errr("log in first")
	}
	return fn()
}

func (s *session) cmdUser(arg string) error {
	if s.authed {
		return s.errr("already authenticated")
	}
	if arg == "" {
		return s.errr("USER requires a name")
	}
	s.user = arg
	return s.ok("user accepted, send PASS")
}

func (s *session) cmdPass(arg string) error {
	if s.authed {
		return s.errr("already authenticated")
	}
	if s.user == "" {
		return s.errr("send USER first")
	}
	if s.srv.cfg.Auth != nil && !s.srv.cfg.Auth(s.user, arg) {
		s.srv.authFails.Inc()
		s.user = ""
		return s.errr("authentication failed")
	}
	ids, err := s.srv.cfg.Store.List(s.user)
	if err != nil {
		if errors.Is(err, mailstore.ErrNotFound) {
			// An empty maildrop is not an error: new users simply have
			// no mail yet.
			ids = nil
		} else {
			return s.errr("maildrop unavailable")
		}
	}
	s.ids = ids
	s.authed = true
	return s.ok(fmt.Sprintf("maildrop has %d messages", len(ids)))
}

// live returns the undeleted message numbers in order.
func (s *session) live() []int {
	var out []int
	for i := range s.ids {
		if !s.deleted[i+1] {
			out = append(out, i+1)
		}
	}
	return out
}

// message resolves a 1-based message number argument.
func (s *session) message(arg string) (int, string, error) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 || n > len(s.ids) {
		return 0, "", fmt.Errorf("no such message")
	}
	if s.deleted[n] {
		return 0, "", fmt.Errorf("message deleted")
	}
	return n, s.ids[n-1], nil
}

func (s *session) sizes() (map[int]int, int, error) {
	out := make(map[int]int)
	total := 0
	for _, n := range s.live() {
		body, err := s.srv.cfg.Store.Read(s.user, s.ids[n-1])
		if err != nil {
			return nil, 0, err
		}
		out[n] = len(body)
		total += len(body)
	}
	return out, total, nil
}

func (s *session) cmdStat() error {
	sizes, total, err := s.sizes()
	if err != nil {
		return s.errr("maildrop unavailable")
	}
	return s.ok(fmt.Sprintf("%d %d", len(sizes), total))
}

func (s *session) cmdList(arg string) error {
	sizes, total, err := s.sizes()
	if err != nil {
		return s.errr("maildrop unavailable")
	}
	if arg != "" {
		n, _, err := s.message(arg)
		if err != nil {
			return s.errr(err.Error())
		}
		return s.ok(fmt.Sprintf("%d %d", n, sizes[n]))
	}
	if err := s.ok(fmt.Sprintf("%d messages (%d octets)", len(sizes), total)); err != nil {
		return err
	}
	for _, n := range s.live() {
		if err := s.c.WriteLine(fmt.Sprintf("%d %d", n, sizes[n])); err != nil {
			return err
		}
	}
	return s.c.WriteLine(".")
}

func (s *session) cmdUidl(arg string) error {
	if arg != "" {
		n, id, err := s.message(arg)
		if err != nil {
			return s.errr(err.Error())
		}
		return s.ok(fmt.Sprintf("%d %s", n, id))
	}
	if err := s.ok("unique-id listing"); err != nil {
		return err
	}
	for _, n := range s.live() {
		if err := s.c.WriteLine(fmt.Sprintf("%d %s", n, s.ids[n-1])); err != nil {
			return err
		}
	}
	return s.c.WriteLine(".")
}

func (s *session) cmdRetr(arg string) error {
	_, id, err := s.message(arg)
	if err != nil {
		return s.errr(err.Error())
	}
	body, err := s.srv.cfg.Store.Read(s.user, id)
	if err != nil {
		return s.errr("message unavailable")
	}
	if err := s.ok(fmt.Sprintf("%d octets", len(body))); err != nil {
		return err
	}
	s.srv.retrieved.Inc()
	// The SMTP dot codec is exactly POP3's multi-line response framing.
	return s.c.WriteData(body)
}

func (s *session) cmdDele(arg string) error {
	n, _, err := s.message(arg)
	if err != nil {
		return s.errr(err.Error())
	}
	s.deleted[n] = true
	return s.ok(fmt.Sprintf("message %d deleted", n))
}

// quit enters the UPDATE state: staged deletions are applied against the
// store (one mfs.Delete / mbox rewrite per message) and the session ends.
func (s *session) quit() error {
	if s.authed {
		for n := range s.deleted {
			if err := s.srv.cfg.Store.Delete(s.user, s.ids[n-1]); err == nil {
				s.srv.deleted.Inc()
			}
		}
	}
	return s.ok("bye")
}
