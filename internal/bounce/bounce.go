// Package bounce synthesizes delivery status notifications (DSNs) in
// the RFC 3464 multipart/report shape: when the queue exhausts a mail's
// delivery attempts, the mail does not vanish — its sender gets a
// machine-parsable failure report from the null reverse-path, exactly
// as a production MTA behaves. The §4.1 measurement that motivates the
// paper (a quarter of all SMTP connections are bounces) is this
// mechanism seen from the receiving side.
package bounce

import (
	"bytes"
	"fmt"
)

// Generator builds DSNs for one reporting MTA.
type Generator struct {
	// Hostname is the Reporting-MTA (e.g. "mx.dept.example.edu").
	Hostname string
	// MaxOriginal bounds how many bytes of the original message are
	// returned in the third part (default 4096; headers-plus-a-little,
	// like postfix's bounce_size_limit).
	MaxOriginal int
}

// New returns a Generator reporting as hostname.
func New(hostname string) *Generator {
	return &Generator{Hostname: hostname, MaxOriginal: 4096}
}

// Synthesize builds the DSN for a permanently undeliverable mail. It
// returns the bounce recipients (the original envelope sender) and the
// message body; ok is false when no bounce must be sent — the original
// sender was the null reverse-path, i.e. the failed mail was itself a
// DSN, and generating another would start a mail loop (RFC 5321 §6.1).
//
// The envelope sender of the returned mail is always the null sender
// ""; callers enqueue it with that.
func (g *Generator) Synthesize(id, sender string, rcpts []string, data []byte, reason string) (brcpts []string, bdata []byte, ok bool) {
	if sender == "" {
		return nil, nil, false
	}
	host := g.Hostname
	if host == "" {
		host = "localhost"
	}
	maxOrig := g.MaxOriginal
	if maxOrig <= 0 {
		maxOrig = 4096
	}
	boundary := "=_bounce_" + id

	var b bytes.Buffer
	fmt.Fprintf(&b, "From: MAILER-DAEMON@%s\r\n", host)
	fmt.Fprintf(&b, "To: <%s>\r\n", sender)
	fmt.Fprintf(&b, "Subject: Undelivered Mail Returned to Sender\r\n")
	fmt.Fprintf(&b, "Auto-Submitted: auto-replied\r\n")
	fmt.Fprintf(&b, "MIME-Version: 1.0\r\n")
	fmt.Fprintf(&b, "Content-Type: multipart/report; report-type=delivery-status;\r\n\tboundary=\"%s\"\r\n", boundary)
	fmt.Fprintf(&b, "\r\n")

	// Part 1: human-readable notification.
	fmt.Fprintf(&b, "--%s\r\nContent-Type: text/plain; charset=us-ascii\r\n\r\n", boundary)
	fmt.Fprintf(&b, "This is the mail system at host %s.\r\n\r\n", host)
	fmt.Fprintf(&b, "I'm sorry to have to inform you that your message could not\r\n")
	fmt.Fprintf(&b, "be delivered to one or more recipients.\r\n\r\n")
	for _, r := range rcpts {
		fmt.Fprintf(&b, "<%s>: %s\r\n", r, reason)
	}
	fmt.Fprintf(&b, "\r\n")

	// Part 2: the machine-parsable delivery status (RFC 3464).
	fmt.Fprintf(&b, "--%s\r\nContent-Type: message/delivery-status\r\n\r\n", boundary)
	fmt.Fprintf(&b, "Reporting-MTA: dns; %s\r\n", host)
	fmt.Fprintf(&b, "X-Queue-ID: %s\r\n\r\n", id)
	for _, r := range rcpts {
		fmt.Fprintf(&b, "Final-Recipient: rfc822; %s\r\n", r)
		fmt.Fprintf(&b, "Action: failed\r\n")
		fmt.Fprintf(&b, "Status: 4.4.1\r\n")
		fmt.Fprintf(&b, "Diagnostic-Code: smtp; %s\r\n\r\n", reason)
	}

	// Part 3: the original message, truncated.
	orig := data
	truncated := false
	if len(orig) > maxOrig {
		orig = orig[:maxOrig]
		truncated = true
	}
	if truncated {
		fmt.Fprintf(&b, "--%s\r\nContent-Type: text/rfc822-headers\r\n\r\n", boundary)
	} else {
		fmt.Fprintf(&b, "--%s\r\nContent-Type: message/rfc822\r\n\r\n", boundary)
	}
	b.Write(orig)
	fmt.Fprintf(&b, "\r\n--%s--\r\n", boundary)

	return []string{sender}, b.Bytes(), true
}
