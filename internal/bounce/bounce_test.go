package bounce

import (
	"strings"
	"testing"
)

func TestSynthesizeShape(t *testing.T) {
	g := New("mx.dept.example.edu")
	rcpts, data, ok := g.Synthesize("Q0001", "alice@origin.test",
		[]string{"bob@remote.test", "carol@remote.test"},
		[]byte("Subject: hi\r\n\r\nbody"), "connect to remote.test failed after 5 attempts")
	if !ok {
		t.Fatal("bounce suppressed for a non-null sender")
	}
	if len(rcpts) != 1 || rcpts[0] != "alice@origin.test" {
		t.Fatalf("bounce rcpts = %v, want the original sender", rcpts)
	}
	s := string(data)
	for _, want := range []string{
		"From: MAILER-DAEMON@mx.dept.example.edu",
		"To: <alice@origin.test>",
		"multipart/report; report-type=delivery-status",
		"Reporting-MTA: dns; mx.dept.example.edu",
		"X-Queue-ID: Q0001",
		"Final-Recipient: rfc822; bob@remote.test",
		"Final-Recipient: rfc822; carol@remote.test",
		"Action: failed",
		"Status: 4.4.1",
		"Diagnostic-Code: smtp; connect to remote.test failed after 5 attempts",
		"message/rfc822",
		"Subject: hi",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("DSN missing %q", want)
		}
	}
	// Exactly two Action lines: one per failed recipient.
	if n := strings.Count(s, "Action: failed"); n != 2 {
		t.Errorf("Action lines = %d, want 2", n)
	}
}

func TestSynthesizeSuppressesDoubleBounce(t *testing.T) {
	g := New("mx.test")
	if _, _, ok := g.Synthesize("Q2", "", []string{"r@b.test"}, nil, "x"); ok {
		t.Fatal("DSN generated for a null-sender mail (mail loop)")
	}
}

func TestSynthesizeTruncatesOriginal(t *testing.T) {
	g := New("mx.test")
	g.MaxOriginal = 16
	big := make([]byte, 1000)
	for i := range big {
		big[i] = 'A'
	}
	_, data, ok := g.Synthesize("Q3", "s@a.test", []string{"r@b.test"}, big, "too slow")
	if !ok {
		t.Fatal("not ok")
	}
	s := string(data)
	if !strings.Contains(s, "text/rfc822-headers") {
		t.Error("truncated DSN should switch to text/rfc822-headers")
	}
	if len(s) > 2000 {
		t.Errorf("DSN did not truncate the original: %d bytes", len(s))
	}
}
