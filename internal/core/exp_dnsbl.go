package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/costmodel"
	"repro/internal/dnsbl"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simmail"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "DNSBL query latency across six blacklists",
		Paper: "Figure 5: 16–50% of queries to the six DNSBLs exceed 100 ms",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Throughput vs connection rate under IP- and prefix-based DNSBL caching",
		Paper: "Figure 14: equal at low rates; gap opens ≈150 conn/s; prefix +10.8% at 200 conn/s",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "DNSBL lookup time and cache behaviour under the sinkhole trace",
		Paper: "Figure 15: hit ratio 73.8%→83.9%; queries issued 26.22%→16.11% (−39%)",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "ablation-bitmapwidth",
		Title: "Ablation: prefix-cache granularity /24 vs /25 vs /26",
		Paper: "design choice §7.1: /25 fits exactly one AAAA answer",
		Run:   runAblationBitmapWidth,
	})
	register(Experiment{
		ID:    "ablation-ttl",
		Title: "Ablation: DNSBL cache TTL sensitivity",
		Paper: "design choice §7.2: 24 h TTL because blacklists update infrequently",
		Run:   runAblationTTL,
	})
}

func runFig5(w io.Writer, opts Options) (Metrics, error) {
	// Query-latency CDFs for the spam-IP population, per blacklist.
	nIPs := opts.scale(trace.SinkholeIPs, 2000)
	t := metrics.NewTable("blacklist", "p50 (ms)", "p90 (ms)", ">100ms")
	m := Metrics{}
	rng := sim.NewRNG(opts.seed())
	for _, l := range dnsbl.Figure5 {
		sampler := l.Sampler()
		s := metrics.NewSample(nIPs)
		for i := 0; i < nIPs; i++ {
			s.Observe(sampler.Sample(rng))
		}
		over100 := 1 - s.FractionBelow(100)
		t.AddRow(l.Zone, s.Quantile(0.5), s.Quantile(0.9), over100)
		m["over100_"+l.Zone] = over100
	}
	fmt.Fprint(w, t.String())
	lo, hi := 1.0, 0.0
	for _, l := range dnsbl.Figure5 {
		v := m["over100_"+l.Zone]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	m["over100_min"], m["over100_max"] = lo, hi
	fmt.Fprintf(w, "\nshare of queries over 100 ms spans %.0f%%–%.0f%% (paper 16%%–50%%)\n",
		100*lo, 100*hi)
	return m, nil
}

// fig14Trace builds the open-system sinkhole workload. The trace duration
// scales with the connection count so cache behaviour (keyed on trace
// time) matches the full trace's.
func fig14Trace(opts Options) []trace.Conn {
	n := opts.scale(40000, 6000)
	return trace.NewSinkhole(trace.SinkholeConfig{
		Seed:        opts.seed(),
		Connections: n,
		Prefixes:    opts.scale(3470, 520),
		Duration:    trace.SinkholeDuration / trace.SinkholeConnections * time.Duration(n),
	}).Generate()
}

// fig14Config is the §7.2 server setup: open-system client, process limit
// high, sinkhole semantics (accept and discard, no content filters).
func fig14Config(policy dnsbl.CachePolicy) simmail.Config {
	return simmail.Config{
		Arch:            simmail.ArchVanilla,
		Workers:         256,
		Seed:            2,
		DiscardDelivery: true,
		CleanupCPU:      time.Millisecond,
		DNSBL:           &simmail.DNSBLConfig{Policy: policy},
	}
}

func runFig14(w io.Writer, opts Options) (Metrics, error) {
	conns := fig14Trace(opts)
	t := metrics.NewTable("offered conn/s", "IP-cache mails/s", "prefix-cache mails/s", "prefix gain")
	m := Metrics{}
	rates := []float64{40, 80, 120, 150, 170, 180, 190, 200}
	for _, rate := range rates {
		ip := simmail.RunOpen(fig14Config(dnsbl.CacheIP), conns, rate)
		pf := simmail.RunOpen(fig14Config(dnsbl.CachePrefix), conns, rate)
		gain := 0.0
		if ip.Goodput > 0 {
			gain = (pf.Goodput - ip.Goodput) / ip.Goodput
		}
		t.AddRow(rate, ip.Goodput, pf.Goodput, fmt.Sprintf("%+.1f%%", 100*gain))
		m[fmt.Sprintf("ip_%.0f", rate)] = ip.Goodput
		m[fmt.Sprintf("prefix_%.0f", rate)] = pf.Goodput
		m[fmt.Sprintf("gain_%.0f", rate)] = gain
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "\nprefix-based gain at 200 conn/s: %+.1f%% (paper +10.8%%)\n",
		100*m["gain_200"])
	return m, nil
}

// replayCache runs the pure cache emulation over a trace with the given
// key extractor and TTL, the §7.2 method behind Figures 14/15.
func replayCache(conns []trace.Conn, policy dnsbl.CachePolicy, ttl time.Duration, seed uint64) *dnsbl.SimCache {
	c := dnsbl.NewSimCache(policy, ttl, dnsbl.DefaultLatency.Sampler(), sim.NewRNG(seed))
	for i := range conns {
		c.Lookup(conns[i].At, conns[i].ClientIP.String(), conns[i].ClientIP.Prefix25().String())
	}
	return c
}

func runFig15(w io.Writer, opts Options) (Metrics, error) {
	conns := sinkholeFor(opts).Generate()
	t := metrics.NewTable("policy", "hit ratio", "queries issued", "p50 lookup (ms)", "p90 lookup (ms)")
	m := Metrics{}
	for _, pol := range []dnsbl.CachePolicy{dnsbl.CacheNone, dnsbl.CacheIP, dnsbl.CachePrefix} {
		c := replayCache(conns, pol, costmodel.DNSBLCacheTTL, opts.seed())
		s := metrics.NewSample(len(conns))
		for _, d := range c.Latencies() {
			s.Observe(float64(d) / float64(time.Millisecond))
		}
		t.AddRow(pol.String(), c.HitRatio(), c.MissRatio(),
			s.Quantile(0.5), s.Quantile(0.9))
		m["hit_"+pol.String()] = c.HitRatio()
		m["miss_"+pol.String()] = c.MissRatio()
	}
	fmt.Fprint(w, t.String())
	reduction := 0.0
	if m["miss_ip"] > 0 {
		reduction = 1 - m["miss_prefix"]/m["miss_ip"]
	}
	m["query_reduction"] = reduction
	fmt.Fprintf(w, "\nhit ratio %.1f%%→%.1f%% (paper 73.8→83.9); queries %.2f%%→%.2f%% (−%.0f%%, paper −39%%)\n",
		100*m["hit_ip"], 100*m["hit_prefix"], 100*m["miss_ip"], 100*m["miss_prefix"], 100*reduction)
	return m, nil
}

func runAblationBitmapWidth(w io.Writer, opts Options) (Metrics, error) {
	conns := sinkholeFor(opts).Generate()
	t := metrics.NewTable("granularity", "hit ratio", "queries issued", "answers per query")
	m := Metrics{}
	for _, bits := range []int{24, 25, 26} {
		c := dnsbl.NewSimCache(dnsbl.CachePrefix, costmodel.DNSBLCacheTTL,
			dnsbl.DefaultLatency.Sampler(), sim.NewRNG(opts.seed()))
		for i := range conns {
			key := conns[i].ClientIP.PrefixN(bits).String()
			c.Lookup(conns[i].At, conns[i].ClientIP.String(), key)
		}
		label := fmt.Sprintf("/%d", bits)
		covered := 1 << (32 - bits)
		t.AddRow(label, c.HitRatio(), c.MissRatio(), covered)
		m[fmt.Sprintf("hit_%d", bits)] = c.HitRatio()
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "\nwider prefixes cache more neighbours but /25 is the widest that fits one AAAA answer\n")
	return m, nil
}

func runAblationTTL(w io.Writer, opts Options) (Metrics, error) {
	conns := sinkholeFor(opts).Generate()
	t := metrics.NewTable("TTL", "IP-cache hit", "prefix-cache hit")
	m := Metrics{}
	for _, ttl := range []time.Duration{time.Hour, 6 * time.Hour, 24 * time.Hour, 72 * time.Hour} {
		ip := replayCache(conns, dnsbl.CacheIP, ttl, opts.seed())
		pf := replayCache(conns, dnsbl.CachePrefix, ttl, opts.seed())
		t.AddRow(ttl.String(), ip.HitRatio(), pf.HitRatio())
		m[fmt.Sprintf("ip_hit_%s", ttl)] = ip.HitRatio()
		m[fmt.Sprintf("prefix_hit_%s", ttl)] = pf.HitRatio()
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "\nhit ratios grow with TTL; the prefix advantage persists at every TTL\n")
	return m, nil
}
