package core

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// quick runs one experiment at Quick scale and returns its metrics.
func quick(t *testing.T, id string) Metrics {
	t.Helper()
	e, ok := Find(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	var buf bytes.Buffer
	m, err := e.Run(&buf, Options{Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if buf.Len() == 0 {
		t.Fatalf("%s produced no output", id)
	}
	return m
}

func within(t *testing.T, m Metrics, key string, lo, hi float64) {
	t.Helper()
	v, ok := m[key]
	if !ok {
		t.Fatalf("metric %q missing (have %v)", key, keys(m))
	}
	if v < lo || v > hi {
		t.Errorf("metric %s = %v, want in [%v, %v]", key, v, lo, hi)
	}
}

func keys(m Metrics) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 15 {
		t.Fatalf("registry has %d experiments, want ≥15", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{
		"table1", "fig1", "fig3", "fig4", "fig5", "tuning", "fig8",
		"fig10", "fig11", "mfs-sinkhole", "fig12", "fig13", "fig14",
		"fig15", "combined", "parallel-delivery", "stage-latency",
		"outbound-outage",
	} {
		if !seen[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
	if len(IDs()) != len(exps) {
		t.Error("IDs() length mismatch")
	}
}

func TestTable1AndFig1(t *testing.T) {
	quick(t, "table1")
	m := quick(t, "fig1")
	if m["Sendmail"] <= m["Postfix"] {
		t.Error("Figure 1: sendmail should lead postfix")
	}
}

func TestFig3Shape(t *testing.T) {
	m := quick(t, "fig3")
	within(t, m, "mean_bounce", 0.20, 0.25)
	within(t, m, "mean_unfinished", 0.05, 0.15)
	if m["bounce_drift"] <= 0 {
		t.Error("bounce ratio should drift upward across the year")
	}
}

func TestFig4Shape(t *testing.T) {
	m := quick(t, "fig4")
	within(t, m, "mean_rcpts", 6, 8.5)
	within(t, m, "frac_5_to_15", 0.5, 0.85)
	within(t, m, "max_rcpts", 15, 20)
}

func TestFig5Shape(t *testing.T) {
	m := quick(t, "fig5")
	within(t, m, "over100_min", 0.13, 0.21)
	within(t, m, "over100_max", 0.44, 0.56)
}

func TestTuningShape(t *testing.T) {
	m := quick(t, "tuning")
	within(t, m, "peak_goodput", 160, 200)
	// The optimum sits in the 100–500 plateau; 50 is starved and 1000
	// degrades (§3).
	if m["goodput_50"] > 0.75*m["peak_goodput"] {
		t.Errorf("50 workers too fast: %v vs peak %v", m["goodput_50"], m["peak_goodput"])
	}
	if m["goodput_1000"] > 0.9*m["peak_goodput"] {
		t.Errorf("1000 workers should degrade: %v vs peak %v", m["goodput_1000"], m["peak_goodput"])
	}
	if m["goodput_500"] < 0.95*m["peak_goodput"] {
		t.Errorf("500 workers should sit near the peak: %v vs %v", m["goodput_500"], m["peak_goodput"])
	}
}

func TestFig8Shape(t *testing.T) {
	m := quick(t, "fig8")
	// Vanilla declines steadily and has lost most of its goodput by 0.9.
	if m["vanilla_0.90"] > 0.55*m["vanilla_0.00"] {
		t.Errorf("vanilla at 0.9 = %v, want well below %v", m["vanilla_0.90"], m["vanilla_0.00"])
	}
	if !(m["vanilla_0.50"] < m["vanilla_0.25"] && m["vanilla_0.75"] < m["vanilla_0.50"]) {
		t.Error("vanilla should decline monotonically with bounce ratio")
	}
	// Hybrid stays nearly flat until 0.75 (paper: until 0.9).
	if m["hybrid_0.75"] < 0.9*m["hybrid_0.00"] {
		t.Errorf("hybrid at 0.75 = %v, want ≥90%% of %v", m["hybrid_0.75"], m["hybrid_0.00"])
	}
	// Both start from the same point.
	ratio := m["hybrid_0.00"] / m["vanilla_0.00"]
	if ratio < 0.95 || ratio > 1.1 {
		t.Errorf("b=0 parity broken: hybrid/vanilla = %v", ratio)
	}
	// Context switches cut by ≈2× or more under a bounce-heavy mix.
	if m["switch_ratio_0.50"] < 1.8 {
		t.Errorf("switch ratio at 0.5 = %v, want ≥1.8 (paper ≈2×)", m["switch_ratio_0.50"])
	}
}

func TestFig10Shape(t *testing.T) {
	m := quick(t, "fig10")
	within(t, m, "vanilla_speedup_1_to_15", 4, 9) // paper 7.2
	within(t, m, "mfs_gain_15", 0.2, 0.6)         // paper +39%
	// Maildir collapses on Ext3; hardlink is between maildir and mbox.
	if !(m["maildir_15"] < m["hardlink_15"] && m["hardlink_15"] < m["mbox_15"]) {
		t.Errorf("ext3 ordering broken: maildir %v hardlink %v mbox %v",
			m["maildir_15"], m["hardlink_15"], m["mbox_15"])
	}
	if m["mfs_15"] <= m["mbox_15"] {
		t.Error("MFS must beat vanilla at 15 recipients")
	}
}

func TestFig11Shape(t *testing.T) {
	m := quick(t, "fig11")
	// Reiser ordering at 15 rcpts: MFS > hardlink > vanilla > maildir.
	if !(m["mfs_15"] > m["hardlink_15"] &&
		m["hardlink_15"] > m["mbox_15"] &&
		m["mbox_15"] > m["maildir_15"]) {
		t.Errorf("reiser ordering broken: mfs %v hardlink %v mbox %v maildir %v",
			m["mfs_15"], m["hardlink_15"], m["mbox_15"], m["maildir_15"])
	}
	within(t, m, "mfs_vs_maildir_15", 1.0, 4.0) // paper +212%
}

func TestMFSSinkholeShape(t *testing.T) {
	m := quick(t, "mfs-sinkhole")
	within(t, m, "mfs_gain", 0.08, 0.40) // paper +20%
}

func TestFig12Shape(t *testing.T) {
	m := quick(t, "fig12")
	within(t, m, "frac_gt_10", 0.33, 0.47)   // paper 40%
	within(t, m, "frac_gt_100", 0.015, 0.05) // paper ≈3%
}

func TestFig13Shape(t *testing.T) {
	m := quick(t, "fig13")
	if m["median_prefix_gap"] >= m["median_ip_gap"] {
		t.Errorf("prefix gap %v should undercut IP gap %v",
			m["median_prefix_gap"], m["median_ip_gap"])
	}
	if m["mean_prefix_gap"] >= m["mean_ip_gap"] {
		t.Error("mean gaps ordering broken")
	}
}

func TestFig14Shape(t *testing.T) {
	m := quick(t, "fig14")
	// Equal at low rates; a clear gap at 200 conn/s (paper +10.8%).
	within(t, m, "gain_80", -0.02, 0.02)
	within(t, m, "gain_120", -0.02, 0.02)
	if m["gain_200"] < 0.04 {
		t.Errorf("gain at 200 = %v, want ≥4%%", m["gain_200"])
	}
	if m["gain_200"] <= m["gain_170"] {
		t.Error("gap should widen with rate")
	}
}

func TestFig15Shape(t *testing.T) {
	m := quick(t, "fig15")
	within(t, m, "hit_ip", 0.66, 0.80)     // paper 73.8%
	within(t, m, "hit_prefix", 0.77, 0.89) // paper 83.9%
	within(t, m, "query_reduction", 0.25, 0.50)
	if m["hit_none"] != 0 {
		t.Error("no-cache policy must have zero hits")
	}
}

func TestCombinedShape(t *testing.T) {
	m := quick(t, "combined")
	within(t, m, "gain_spam", 0.30, 0.60)     // paper +40%
	within(t, m, "querycut_spam", 0.30, 0.50) // paper −39%
	within(t, m, "gain_univ", 0.10, 0.30)     // paper +18%
	within(t, m, "querycut_univ", 0.10, 0.30) // paper −20%
}

func TestAblations(t *testing.T) {
	tp := quick(t, "ablation-trustpoint")
	if tp["after-mail"] >= tp["after-rcpt"] {
		t.Errorf("delegating before validation should lose: after-mail %v vs after-rcpt %v",
			tp["after-mail"], tp["after-rcpt"])
	}
	bw := quick(t, "ablation-bitmapwidth")
	if !(bw["hit_24"] >= bw["hit_25"] && bw["hit_25"] >= bw["hit_26"]) {
		t.Error("wider prefixes should cache at least as well")
	}
	ttl := quick(t, "ablation-ttl")
	if ttl["prefix_hit_24h0m0s"] <= ttl["ip_hit_24h0m0s"] {
		t.Error("prefix caching should win at the default TTL")
	}
	quick(t, "ablation-vectorsend")
	quick(t, "ablation-refcount")
}

func TestResolverResilienceShape(t *testing.T) {
	m := quick(t, "resolver-resilience")
	// The seed transport eats the full timeout on every lost packet: with
	// ~300 cache-miss queries per policy at 5% loss, stalls are certain.
	if m["stalls_seed"] < 3 {
		t.Errorf("stalls_seed = %v, want ≥3 (loss should stall the naive transport)", m["stalls_seed"])
	}
	// The pipelined resolver detects loss at 30 ms and retries/hedges, so
	// the accept path stays under the 100 ms stall line (≤1 tolerated for
	// scheduler noise on loaded CI machines).
	if m["stalls_resilient"] > 1 {
		t.Errorf("stalls_resilient = %v, want ≤1", m["stalls_resilient"])
	}
	// p99 bounded where the seed's is not: cache-miss-heavy CacheNone puts
	// the seed's p99 at the timeout; the resilient p99 must stay well
	// below the stall line.
	if m["p99_seed_none"] < resolverStallMs {
		t.Errorf("p99_seed_none = %v ms, expected ≥%v (the full-timeout stall)",
			m["p99_seed_none"], resolverStallMs)
	}
	if m["p99_resilient_none"] > 0.8*m["p99_seed_none"] {
		t.Errorf("resilient p99 %v ms not bounded vs seed %v ms",
			m["p99_resilient_none"], m["p99_seed_none"])
	}
	// Verdicts must be error-free on the resilient path.
	for _, pol := range []string{"none", "ip", "prefix"} {
		if m["errors_resilient_"+pol] != 0 {
			t.Errorf("errors_resilient_%s = %v", pol, m["errors_resilient_"+pol])
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep is slow")
	}
	var buf bytes.Buffer
	all, err := RunAll(&buf, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Experiments()) {
		t.Fatalf("RunAll returned %d results, want %d", len(all), len(Experiments()))
	}
	out := buf.String()
	for _, e := range Experiments() {
		if !strings.Contains(out, "=== "+e.ID) {
			t.Errorf("output missing section for %s", e.ID)
		}
	}
}

func TestOptionsScale(t *testing.T) {
	o := Options{Quick: true}
	if o.scale(1000, 50) != 100 {
		t.Error("Quick should divide by 10")
	}
	if o.scale(100, 50) != 50 {
		t.Error("floor not applied")
	}
	full := Options{}
	if full.scale(1000, 50) != 1000 {
		t.Error("full scale should pass through")
	}
	if (Options{}).seed() != 1 || (Options{Seed: 9}).seed() != 9 {
		t.Error("seed defaulting wrong")
	}
}

var _ io.Writer = (*bytes.Buffer)(nil)

func TestParallelDelivery(t *testing.T) {
	m := quick(t, "parallel-delivery")
	// Adding workers must never slow the metered pipeline down; the batch
	// counters must show real coalescing at 8 workers. The published ≥2×
	// speedup is asserted loosely here (scheduler-dependent batching can
	// dip under CI load); EXPERIMENTS.md records the typical ×2.3.
	within(t, m, "speedup_8", 0.99, 10)
	if m["batch_8"] <= 1.5 {
		t.Errorf("batch_8 = %v, want >1.5 (group commit not coalescing)", m["batch_8"])
	}
	if m["throughput_8"] < m["throughput_1"] {
		t.Errorf("8 workers slower than 1: %v < %v", m["throughput_8"], m["throughput_1"])
	}
	if m["batch_1"] != 1 {
		t.Errorf("batch_1 = %v, want exactly 1 (serial deliveries must not batch)", m["batch_1"])
	}
}

func TestSpamWeatherShape(t *testing.T) {
	m := quick(t, "spam-weather")
	// Both architectures replay the same trace end to end.
	if m["conns_vanilla"] != m["conns_hybrid"] || m["conns_vanilla"] == 0 {
		t.Errorf("conn counts: vanilla %v, hybrid %v", m["conns_vanilla"], m["conns_hybrid"])
	}
	// ~50% spam where ~30% carries no valid recipient, plus DNSBL rejects
	// of delivered spam: the observed bounce ratio must sit near the mix
	// under both architectures, and the EWMA near the cumulative ratio on
	// a stationary trace.
	for _, arch := range []string{"vanilla", "hybrid"} {
		within(t, m, "bounce_"+arch, 0.30, 0.70)
		if e, b := m["ewma_"+arch], m["bounce_"+arch]; e < b-0.25 || e > b+0.25 {
			t.Errorf("%s ewma %v far from cumulative %v", arch, e, b)
		}
	}
	// The paper's handoff contract, read back from live telemetry: vanilla
	// pays a worker for every connection; hybrid skips one per bounce.
	if m["savings_vanilla"] != 0 {
		t.Errorf("vanilla handoff savings = %v, want 0", m["savings_vanilla"])
	}
	if m["savings_hybrid"] < 0.25 {
		t.Errorf("hybrid handoff savings = %v, want ≥0.25", m["savings_hybrid"])
	}
	// Locality consistent with the trace mix: every ham source is a fresh
	// /25 while the spam half recycles a handful of /25 blocks, so the
	// repeat fraction lands at ≈ the spam ratio (199/400 at quick scale).
	for _, arch := range []string{"vanilla", "hybrid"} {
		if m["lookups_"+arch] == 0 {
			t.Fatalf("%s saw no dnsbl.lookup events", arch)
		}
		within(t, m, "locality_"+arch, 0.40, 0.75)
		if m["cachesave_"+arch] <= 0 {
			t.Errorf("%s cache savings estimate = %v, want > 0", arch, m["cachesave_"+arch])
		}
		if m["talkers_"+arch] == 0 {
			t.Errorf("%s reported no top talkers", arch)
		}
	}
}

func TestStageLatencyShape(t *testing.T) {
	m := quick(t, "stage-latency")
	// Every connection passes accept and dialog under vanilla; under
	// hybrid the bounce half of the trace dies in the pre-trust front end
	// and never reaches handoff_wait or a worker dialog.
	if m["vanilla_accept_count"] != m["hybrid_accept_count"] {
		t.Errorf("accept counts differ: vanilla %v, hybrid %v",
			m["vanilla_accept_count"], m["hybrid_accept_count"])
	}
	if m["vanilla_handoff_wait_count"] != m["vanilla_accept_count"] {
		t.Errorf("vanilla handoff_wait %v != accept %v (every conn must wait for a worker)",
			m["vanilla_handoff_wait_count"], m["vanilla_accept_count"])
	}
	if m["hybrid_pretrust_count"] != m["hybrid_accept_count"] {
		t.Errorf("hybrid pretrust %v != accept %v", m["hybrid_pretrust_count"], m["hybrid_accept_count"])
	}
	// ~50% bounce ratio: hybrid should hand off roughly half the trace.
	if r := m["handoff_wait_count_ratio"]; r < 1.5 {
		t.Errorf("handoff_wait count ratio = %v, want ≥1.5 (bounces must not reach the queue)", r)
	}
	if m["hybrid_dialog_count"] != m["hybrid_handoff_wait_count"] {
		t.Errorf("hybrid dialog %v != handoff_wait %v", m["hybrid_dialog_count"], m["hybrid_handoff_wait_count"])
	}
	for _, key := range []string{"vanilla_dialog_p99_ms", "hybrid_dialog_p99_ms"} {
		if m[key] <= 0 {
			t.Errorf("%s = %v, want > 0", key, m[key])
		}
	}
}

func TestOutboundOutageShape(t *testing.T) {
	m := quick(t, "outbound-outage")
	for _, arch := range []string{"vanilla", "hybrid"} {
		accepted := m["accepted_"+arch]
		if accepted <= 0 {
			t.Fatalf("%s accepted %v mails", arch, accepted)
		}
		// Every accepted mail must end as a delivery or a DSN — the
		// outage may not lose mail.
		if got := m["delivered_"+arch] + m["bounced_"+arch]; got < accepted {
			t.Errorf("%s: delivered+bounced = %v < accepted %v", arch, got, accepted)
		}
		if m["bounced_"+arch] < 2 {
			t.Errorf("%s: bounced = %v, want ≥2 (dead-domain mails must DSN)", arch, m["bounced_"+arch])
		}
		// The spool must visibly absorb the outage backlog...
		if m["peak_spool_"+arch] < 0.5*accepted {
			t.Errorf("%s: peak spool %v too shallow for %v accepted", arch, m["peak_spool_"+arch], accepted)
		}
		// ...and retries must amplify (remote was down) but stay bounded
		// by the exponential backoff.
		if amp := m["amplification_"+arch]; amp < 1 || amp > 16 {
			t.Errorf("%s: amplification = %v, want in [1, 16]", arch, amp)
		}
		if m["drain_ms_"+arch] <= 0 {
			t.Errorf("%s: drain_ms = %v, want > 0", arch, m["drain_ms_"+arch])
		}
	}
}

func TestCrashRecoveryShape(t *testing.T) {
	m := quick(t, "crash-recovery")
	for _, arch := range []string{"vanilla", "hybrid"} {
		accepted := m["accepted_"+arch]
		if accepted <= 0 {
			t.Fatalf("%s accepted %v mails", arch, accepted)
		}
		// The crash must land mid-run: some mail committed, some spooled.
		if m["delivered_pre_"+arch] <= 0 {
			t.Errorf("%s: no pre-crash commits", arch)
		}
		if m["spool_at_crash_"+arch] <= 0 {
			t.Errorf("%s: spool empty at crash — nothing was at risk", arch)
		}
		// The restarted store must actually replay its commit log...
		if m["wal_replayed_"+arch] <= 0 {
			t.Errorf("%s: wal_replayed = %v, want > 0", arch, m["wal_replayed_"+arch])
		}
		// ...and the queue must replay every mail the crash interrupted.
		if got := m["spool_recovered_"+arch]; got < m["spool_at_crash_"+arch] {
			t.Errorf("%s: spool_recovered = %v < spool_at_crash %v", arch, got, m["spool_at_crash_"+arch])
		}
		// crashRun itself fails unless every accepted mail is present
		// exactly once, so reaching here with entries > 0 is the
		// no-loss/no-duplicate assertion.
		if m["mailbox_entries_"+arch] <= 0 {
			t.Errorf("%s: no mailbox entries after recovery", arch)
		}
		if m["recover_ms_"+arch] <= 0 {
			t.Errorf("%s: recover_ms = %v, want > 0", arch, m["recover_ms_"+arch])
		}
	}
}

func TestDirectorScaleoutShape(t *testing.T) {
	m := quick(t, "director-scaleout")
	// The acceptance criterion: a shard dying mid-storm must not lose a
	// single acknowledged mail, gossip or no gossip.
	if m["lost_solo"] != 0 || m["lost_gossip"] != 0 {
		t.Fatalf("acked mail lost: solo=%v gossip=%v", m["lost_solo"], m["lost_gossip"])
	}
	// The kill must actually have been survived via ring failover.
	if m["forward_retries"] <= 0 {
		t.Errorf("forward_retries = %v, want > 0 (shard death never exercised)", m["forward_retries"])
	}
	// Gossip must buy a measurable DNSBL cache-hit lift: verdicts paid
	// for on one front end serve the other.
	if m["cache_hit_lift"] <= 0 {
		t.Errorf("cache_hit_lift = %v, want > 0", m["cache_hit_lift"])
	}
	if m["peer_hits_gossip"] <= 0 {
		t.Errorf("peer_hits_gossip = %v, want > 0", m["peer_hits_gossip"])
	}
	// Fewer upstream DNSBL queries with replication than without.
	if m["upstream_gossip"] >= m["upstream_solo"] {
		t.Errorf("upstream queries: gossip %v >= solo %v", m["upstream_gossip"], m["upstream_solo"])
	}
	// Shared greylist passes mean fewer cross-node re-greylistings and
	// at least as good an aggregate accept rate.
	if m["greylisted_gossip"] >= m["greylisted_solo"] {
		t.Errorf("greylisted: gossip %v >= solo %v", m["greylisted_gossip"], m["greylisted_solo"])
	}
	if m["accept_rate_gossip"] < m["accept_rate_solo"] {
		t.Errorf("accept rate: gossip %v < solo %v", m["accept_rate_gossip"], m["accept_rate_solo"])
	}
	if m["handoff_p99_ms"] <= 0 {
		t.Errorf("handoff_p99_ms = %v, want > 0", m["handoff_p99_ms"])
	}
}

func TestTracePropagationShape(t *testing.T) {
	m := quick(t, "trace-propagation")
	// Every mail is traced at sample 1, so every acked mail must have
	// produced a trace whose spans span at least two processes: the
	// director that minted the id and the shard that delivered it.
	if m["mails_acked"] <= 0 {
		t.Fatalf("mails_acked = %v, want > 0", m["mails_acked"])
	}
	if m["traces"] <= 0 {
		t.Fatalf("traces = %v, want > 0", m["traces"])
	}
	if m["traces_multi_node"] <= 0 {
		t.Fatalf("traces_multi_node = %v, want > 0 (no trace crossed the XTRACE hop)", m["traces_multi_node"])
	}
	// A two-recipient mail split across the ring stitches all 3 nodes.
	if m["max_nodes_trace"] < 3 {
		t.Errorf("max_nodes_trace = %v, want >= 3 (director + both shards)", m["max_nodes_trace"])
	}
	// The full stage catalog must appear: director-side pretrust and
	// forward, shard-side smtp, queue, delivery, and store.
	for _, stage := range []string{"pretrust", "forward", "smtp", "queue", "delivery", "store"} {
		if m["stage_"+stage] <= 0 {
			t.Errorf("stage_%s = %v, want > 0", stage, m["stage_"+stage])
		}
	}
	// The director's stitched counter must agree that XTRACE-capable
	// shards accepted propagated contexts.
	if m["stitched_counter"] <= 0 {
		t.Errorf("stitched_counter = %v, want > 0", m["stitched_counter"])
	}
	// A mail crashed in the spool must resume its original trace id.
	if m["recovered_trace_ok"] != 1 {
		t.Errorf("recovered_trace_ok = %v, want 1 (spooled trace context lost)", m["recovered_trace_ok"])
	}
}
