package core

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/simmail"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "tuning",
		Title: "Postfix process-limit tuning under the Univ trace",
		Paper: "§3: throughput peaks at ≈180 mails/s with the process limit at 500",
		Run:   runTuning,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Goodput vs bounce ratio: vanilla vs fork-after-trust",
		Paper: "Figure 8: vanilla declines steadily; hybrid nearly flat to 0.9; context switches ≈halved",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "ablation-trustpoint",
		Title: "Ablation: delegation point (after MAIL / after RCPT / after DATA)",
		Paper: "design choice §5.1: delegate on the first valid RCPT",
		Run:   runAblationTrustPoint,
	})
	register(Experiment{
		ID:    "ablation-vectorsend",
		Title: "Ablation: vector-send task batching vs per-task idle notification",
		Paper: "design choice §5.3: vector sends amortize the master↔smtpd round trip",
		Run:   runAblationVectorSend,
	})
}

func univTrace(opts Options) []trace.Conn {
	return trace.NewUniv(trace.UnivConfig{
		Seed:        opts.seed(),
		Connections: opts.scale(15000, 4000),
	}).Generate()
}

func runTuning(w io.Writer, opts Options) (Metrics, error) {
	conns := univTrace(opts)
	t := metrics.NewTable("process limit", "goodput (mails/s)", "cpu util", "disk util")
	m := Metrics{}
	best, bestW := 0.0, 0
	for _, workers := range []int{50, 100, 200, 500, 700, 1000} {
		res := simmail.RunClosed(simmail.Config{
			Arch: simmail.ArchVanilla, Workers: workers, Seed: 2,
		}, conns, 1000, 0)
		t.AddRow(workers, res.Goodput, res.CPUUtil, res.DiskUtil)
		m[fmt.Sprintf("goodput_%d", workers)] = res.Goodput
		if res.Goodput > best {
			best, bestW = res.Goodput, workers
		}
	}
	fmt.Fprint(w, t.String())
	m["peak_goodput"] = best
	m["peak_workers"] = float64(bestW)
	fmt.Fprintf(w, "\npeak %.0f mails/s at limit %d (paper ≈180 at 500); limit 1000 degrades to %.0f\n",
		best, bestW, m["goodput_1000"])
	return m, nil
}

// fig8Run executes one bounce-ratio point for one architecture.
func fig8Run(arch simmail.Architecture, conns []trace.Conn) simmail.Result {
	cfg := simmail.Config{Arch: arch, Workers: 500, Seed: 2}
	if arch == simmail.ArchHybrid {
		cfg.Sockets = 700 // §5.4: "up to a maximum of 700 sockets"
	}
	return simmail.RunClosed(cfg, conns, 700, 0)
}

func runFig8(w io.Writer, opts Options) (Metrics, error) {
	n := opts.scale(12000, 4000)
	t := metrics.NewTable("bounce ratio", "vanilla (mails/s)", "hybrid (mails/s)", "vanilla switches", "hybrid switches")
	m := Metrics{}
	for _, b := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95} {
		conns := trace.BounceSweep(opts.seed()+2, n, b, "dept.example.edu", 400)
		v := fig8Run(simmail.ArchVanilla, conns)
		h := fig8Run(simmail.ArchHybrid, conns)
		t.AddRow(b, v.Goodput, h.Goodput, v.Switches, h.Switches)
		key := fmt.Sprintf("%.2f", b)
		m["vanilla_"+key] = v.Goodput
		m["hybrid_"+key] = h.Goodput
		m["vswitches_"+key] = float64(v.Switches)
		m["hswitches_"+key] = float64(h.Switches)
	}
	fmt.Fprint(w, t.String())
	m["switch_ratio_0.50"] = m["vswitches_0.50"] / m["hswitches_0.50"]
	fmt.Fprintf(w, "\nat bounce 0.5: hybrid keeps %.0f%% of its zero-bounce goodput (vanilla %.0f%%); switches cut %.1f×\n",
		100*m["hybrid_0.50"]/m["hybrid_0.00"],
		100*m["vanilla_0.50"]/m["vanilla_0.00"],
		m["switch_ratio_0.50"])
	return m, nil
}

func runAblationTrustPoint(w io.Writer, opts Options) (Metrics, error) {
	n := opts.scale(12000, 4000)
	conns := trace.BounceSweep(opts.seed()+2, n, 0.5, "dept.example.edu", 400)
	t := metrics.NewTable("delegation point", "goodput (mails/s)", "handoffs", "switches")
	m := Metrics{}
	for _, trust := range []simmail.TrustPoint{
		simmail.TrustAfterMail, simmail.TrustAfterRcpt, simmail.TrustAfterData,
	} {
		res := simmail.RunClosed(simmail.Config{
			Arch: simmail.ArchHybrid, Workers: 500, Sockets: 700,
			Trust: trust, Seed: 2,
		}, conns, 700, 0)
		t.AddRow(trust.String(), res.Goodput, res.Handoffs, res.Switches)
		m[trust.String()] = res.Goodput
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "\nafter-mail wastes workers on bounces; after-data performs comparably here but streams message bodies through the master, giving up the §5.2 isolation that motivates delegating before DATA\n")
	return m, nil
}

func runAblationVectorSend(w io.Writer, opts Options) (Metrics, error) {
	n := opts.scale(12000, 4000)
	conns := trace.BounceSweep(opts.seed()+2, n, 0.25, "dept.example.edu", 400)
	t := metrics.NewTable("dispatch", "goodput (mails/s)", "switches")
	m := Metrics{}
	for _, novec := range []bool{false, true} {
		res := simmail.RunClosed(simmail.Config{
			Arch: simmail.ArchHybrid, Workers: 500, Sockets: 700,
			NoVectorSend: novec, Seed: 2,
		}, conns, 700, 0)
		name := "vector-send"
		if novec {
			name = "per-task notify"
		}
		t.AddRow(name, res.Goodput, res.Switches)
		m[name] = res.Goodput
	}
	fmt.Fprint(w, t.String())
	return m, nil
}
