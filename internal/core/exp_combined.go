package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dnsbl"
	"repro/internal/metrics"
	"repro/internal/simmail"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "combined",
		Title: "All three optimizations combined (§8)",
		Paper: "§8: +40% throughput and −39% DNSBL queries on the spam workload; +18% and −20% on the Univ trace",
		Run:   runCombined,
	})
}

// combinedRun executes one server configuration over a trace: the
// baseline is vanilla postfix (process-per-connection, mbox store,
// per-IP DNSBL caching); the spam-aware server enables all three
// §5/§6/§7 optimizations.
func combinedRun(spamAware bool, conns []trace.Conn) simmail.Result {
	cfg := simmail.Config{
		Arch:    simmail.ArchVanilla,
		Workers: 500,
		Store:   simmail.StoreMbox,
		DNSBL:   &simmail.DNSBLConfig{Policy: dnsbl.CacheIP},
		Seed:    2,
	}
	if spamAware {
		cfg.Arch = simmail.ArchHybrid
		cfg.Sockets = 700
		cfg.Store = simmail.StoreMFS
		cfg.DNSBL = &simmail.DNSBLConfig{Policy: dnsbl.CachePrefix}
	}
	return simmail.RunClosed(cfg, conns, 700, 0)
}

// combinedSpamTrace is §8's spam workload: the sinkhole trace with the
// bounce and unfinished ratios witnessed at the ECN server (§4.1:
// "bounces and rogue connections currently stands between 25 and 45%").
func combinedSpamTrace(opts Options) []trace.Conn {
	n := opts.scale(20000, 3000)
	return trace.NewSinkhole(trace.SinkholeConfig{
		Seed:            opts.seed(),
		Connections:     n,
		Prefixes:        opts.scale(1750, 260),
		Duration:        trace.SinkholeDuration / trace.SinkholeConnections * time.Duration(n),
		BounceRatio:     0.30,
		UnfinishedRatio: 0.15,
	}).Generate()
}

func runCombined(w io.Writer, opts Options) (Metrics, error) {
	t := metrics.NewTable("workload", "vanilla (mails/s)", "spam-aware (mails/s)", "gain",
		"DNSBL query cut")
	m := Metrics{}

	type workload struct {
		name  string
		conns []trace.Conn
	}
	for _, wl := range []workload{
		{"spam (sinkhole+ECN bounces)", combinedSpamTrace(opts)},
		{"univ", univTrace(opts)},
	} {
		base := combinedRun(false, wl.conns)
		aware := combinedRun(true, wl.conns)
		gain := aware.Goodput/base.Goodput - 1
		queryCut := 0.0
		if base.DNSQueries > 0 {
			queryCut = 1 - float64(aware.DNSQueries)/float64(base.DNSQueries)
		}
		t.AddRow(wl.name, base.Goodput, aware.Goodput,
			fmt.Sprintf("%+.0f%%", 100*gain), fmt.Sprintf("-%.0f%%", 100*queryCut))
		key := "spam"
		if wl.name == "univ" {
			key = "univ"
		}
		m["base_"+key] = base.Goodput
		m["aware_"+key] = aware.Goodput
		m["gain_"+key] = gain
		m["querycut_"+key] = queryCut
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "\nspam workload %+.0f%% (paper +40%%), queries -%.0f%% (paper -39%%); univ %+.0f%% (paper +18%%), queries -%.0f%% (paper -20%%)\n",
		100*m["gain_spam"], 100*m["querycut_spam"], 100*m["gain_univ"], 100*m["querycut_univ"])
	return m, nil
}
