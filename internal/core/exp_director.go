package core

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/director"
	"repro/internal/dnsbl"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/smtp"
	"repro/internal/smtpserver"
)

func init() {
	register(Experiment{
		ID:    "director-scaleout",
		Title: "Director tier scale-out: 2 front ends × 2 delivery shards over TCP, shard death mid-storm, gossip on vs off",
		Paper: "§5's fork-after-trust boundary stretched over a network hop: front ends run the whole pre-trust phase and replay trusted envelopes to consistent-hashed shards; shared pre-trust state (gossip) lifts the DNSBL cache hit rate and the aggregate accept rate, and a dying shard must not lose acknowledged mail",
		Run:   runDirectorScaleout,
	})
}

// countingResolver is the upstream DNSBL: a fixed listing set with a
// query counter, standing in for the remote blacklist whose latency the
// verdict cache exists to avoid.
type countingResolver struct {
	mu     sync.Mutex
	listed map[string]bool
	calls  int
}

func (c *countingResolver) Lookup(_ context.Context, ip addr.IPv4) (dnsbl.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	return dnsbl.Result{Listed: c.listed[ip.String()]}, nil
}

func (c *countingResolver) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// scaleoutSink counts what one delivery shard accepted.
type scaleoutSink struct {
	mu    sync.Mutex
	mails int
}

func (s *scaleoutSink) enqueue(sender string, rcpts []string, data []byte) (string, error) {
	s.mu.Lock()
	s.mails++
	s.mu.Unlock()
	return "id", nil
}

func (s *scaleoutSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mails
}

// scaleoutShard is one back-end delivery server.
type scaleoutShard struct {
	srv  *smtpserver.Server
	ln   net.Listener
	sink *scaleoutSink
	once sync.Once
}

func startScaleoutShard() (*scaleoutShard, error) {
	sink := &scaleoutSink{}
	srv, err := smtpserver.New(sink.enqueue,
		smtpserver.WithHostname("shard.test"),
		smtpserver.WithArchitecture(smtpserver.Vanilla),
		smtpserver.WithIdleTimeout(5*time.Second),
	)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln) //nolint:errcheck // exits on kill
	return &scaleoutShard{srv: srv, ln: ln, sink: sink}, nil
}

func (s *scaleoutShard) kill() {
	s.once.Do(func() {
		s.ln.Close()
		s.srv.Close() //nolint:errcheck
	})
}

// scaleoutFE is one front end: a director plus its node-local pre-trust
// state (greylist, reputation, verdict cache) and gossip endpoint.
type scaleoutFE struct {
	d          *director.Server
	addr       string
	addrGossip string
	grey       *policy.Greylist
	rep        *policy.Reputation
	verd       *director.Verdicts
	inner      *countingResolver
	gossip     *director.Gossip
}

func (fe *scaleoutFE) close() {
	fe.gossip.Close()
	fe.d.Close()
}

// scaleoutRun is one full storm at a fixed gossip setting.
type scaleoutRun struct {
	conns      int
	refusedDNS int // refused at connect: DNSBL verdict
	refusedRep int // refused at connect: replicated bounce reputation
	greylisted int // tempfailed by the greylist
	acked      int // mails acknowledged 250 by a front end
	tempfailed int // post-trust 451 (shards unavailable)
	delivered  int // mails that reached a shard's queue
	upstream   int // DNSBL queries that actually went upstream
	lookups    int
	cacheHits  int
	peerHits   int
	retries    int64
	handoffP99 float64
}

func (r *scaleoutRun) acceptRate() float64 {
	if r.conns == 0 {
		return 0
	}
	return float64(r.acked) / float64(r.conns)
}

func (r *scaleoutRun) cacheHitRate() float64 {
	if r.lookups == 0 {
		return 0
	}
	return float64(r.cacheHits) / float64(r.lookups)
}

// runScaleoutStorm drives one storm: conns client dialogs alternating
// between two front ends, each carrying one recipient, with the
// pre-trust phase (DNSBL verdict, reputation, greylist) evaluated
// against the trace's source IP and the trusted dialog carried over a
// real socket. Midway through, one delivery shard is killed.
func runScaleoutStorm(opts Options, gossipOn bool) (*scaleoutRun, error) {
	rng := sim.NewRNG(opts.seed() + 17)
	conns := opts.scale(1200, 160)

	// Source population: 48 hosts, a third of them DNSBL-listed spam
	// sources. Every host keeps a stable (sender, rcpt) tuple so
	// greylist retries repeat the tuple. Hosts sit in distinct /24s so
	// one spammer's prefix reputation does not condemn the ham next door.
	const hosts = 48
	listed := make(map[string]bool)
	ips := make([]addr.IPv4, hosts)
	for i := range ips {
		ips[i] = addr.MakeIPv4(198, 18, byte(i), 1)
		if i%3 == 0 {
			listed[ips[i].String()] = true
		}
	}

	shardA, err := startScaleoutShard()
	if err != nil {
		return nil, err
	}
	defer shardA.kill()
	shardB, err := startScaleoutShard()
	if err != nil {
		return nil, err
	}
	defer shardB.kill()

	// Virtual clock for the pre-trust stores: one tick per connection,
	// fast enough that greylist retries clear MinRetry within the storm.
	epoch := time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
	var vmu sync.Mutex
	vnow := epoch
	clock := func() time.Time {
		vmu.Lock()
		defer vmu.Unlock()
		return vnow
	}

	newFE := func(name string) (*scaleoutFE, error) {
		fe := &scaleoutFE{
			inner: &countingResolver{listed: listed},
			grey:  policy.NewGreylist(policy.GreyConfig{MinRetry: 5 * time.Second, MaxValid: time.Hour}),
			rep:   policy.NewReputation(policy.ReputationConfig{}),
		}
		fe.verd = director.NewVerdicts(fe.inner, director.WithVerdictClock(clock))
		d, err := director.New(
			director.WithHostname(name+".test"),
			director.WithBackend("shard-a", shardA.ln.Addr().String()),
			director.WithBackend("shard-b", shardB.ln.Addr().String()),
			director.WithForwardTimeout(2*time.Second),
			director.WithCooldown(50*time.Millisecond),
		)
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go d.Serve(ln)
		fe.d, fe.addr = d, ln.Addr().String()
		fe.gossip = director.NewGossip(
			director.WithGossipName(name),
			director.WithReputationSync(fe.rep),
			director.WithGreylistSync(fe.grey),
			director.WithVerdicts(fe.verd),
			director.WithGossipClock(clock),
		)
		gln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go fe.gossip.Serve(gln)
		fe.addrGossip = gln.Addr().String()
		return fe, nil
	}
	fe1, err := newFE("fe-1")
	if err != nil {
		return nil, err
	}
	defer fe1.close()
	fe2, err := newFE("fe-2")
	if err != nil {
		return nil, err
	}
	defer fe2.close()
	fes := []*scaleoutFE{fe1, fe2}

	run := &scaleoutRun{conns: conns}
	killAt := conns / 2
	exchangeEvery := 20
	body := []byte("Subject: storm\r\n\r\npayload\r\n")

	for i := 0; i < conns; i++ {
		vmu.Lock()
		vnow = epoch.Add(time.Duration(i) * time.Second)
		at := vnow
		vmu.Unlock()

		if i == killAt {
			shardB.kill()
		}
		if gossipOn && i%exchangeEvery == exchangeEvery-1 {
			fe1.gossip.Exchange(fe2.addrGossip) //nolint:errcheck // next round retries
			fe2.gossip.Exchange(fe1.addrGossip) //nolint:errcheck
		}

		fe := fes[i%2]
		h := rng.Intn(hosts)
		ip := ips[h]
		sender := fmt.Sprintf("user%d@relay%d.example.net", h, h%7)
		rcpt := fmt.Sprintf("rcpt%d@example.org", h%23)

		// Pre-trust phase on the chosen front end, evaluated against the
		// trace's source address (every socket here shares loopback, so
		// the experiment feeds the stores directly — the same calls
		// ServerPolicy makes per connection).
		run.lookups++
		r, err := fe.verd.Lookup(context.Background(), ip)
		if err != nil {
			return nil, err
		}
		if r.CacheHit {
			run.cacheHits++
		}
		if r.Listed {
			run.refusedDNS++
			fe.rep.RecordDNSBLHit(at, ip)
			continue
		}
		if d := fe.rep.Check(at, ip); d.Verdict != policy.Allow {
			run.refusedRep++
			continue
		}
		if d := fe.grey.Check(at, ip, sender, rcpt); d.Verdict != policy.Allow {
			run.greylisted++
			continue
		}

		// Trusted dialog: real socket to the front end, replayed to the
		// owning shard.
		acked, err := scaleoutSend(fe.addr, sender, rcpt, body)
		if err != nil {
			return nil, err
		}
		if acked {
			run.acked++
		} else {
			run.tempfailed++
		}
	}

	run.delivered = shardA.sink.count() + shardB.sink.count()
	run.upstream = fe1.inner.count() + fe2.inner.count()
	run.peerHits = int(fe1.verd.PeerHits() + fe2.verd.PeerHits())
	st1, st2 := fe1.d.Stats(), fe2.d.Stats()
	run.retries = st1.ForwardRetries + st2.ForwardRetries
	p99 := fe1.d.HandoffQuantile(0.99)
	if q := fe2.d.HandoffQuantile(0.99); q > p99 {
		p99 = q
	}
	run.handoffP99 = p99 * 1e3 // ms
	return run, nil
}

// scaleoutSend runs one single-recipient dialog against a front end.
// Returns whether the mail was acknowledged 250.
func scaleoutSend(addr, sender, rcpt string, body []byte) (bool, error) {
	c, err := smtp.Dial(addr, 2*time.Second, smtp.WithCommandTimeout(2*time.Second))
	if err != nil {
		return false, err
	}
	defer c.Quit() //nolint:errcheck
	if err := c.Helo("client.test"); err != nil {
		return false, err
	}
	accepted, err := c.Send(sender, []string{rcpt}, body)
	if err != nil {
		// 451 at end-of-data is the expected shard-death tempfail; any
		// accepted count of 0 means RCPT itself failed, which the
		// pre-trust phase should have prevented.
		return false, nil //nolint:nilerr // tempfail is an outcome, not a failure
	}
	return accepted == 1, nil
}

func runDirectorScaleout(w io.Writer, opts Options) (Metrics, error) {
	solo, err := runScaleoutStorm(opts, false)
	if err != nil {
		return nil, err
	}
	goss, err := runScaleoutStorm(opts, true)
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "%-28s %12s %12s\n", "", "gossip off", "gossip on")
	row := func(name string, a, b interface{}) {
		fmt.Fprintf(w, "%-28s %12v %12v\n", name, a, b)
	}
	row("connections", solo.conns, goss.conns)
	row("refused (DNSBL verdict)", solo.refusedDNS, goss.refusedDNS)
	row("refused (reputation)", solo.refusedRep, goss.refusedRep)
	row("greylisted", solo.greylisted, goss.greylisted)
	row("acked 250", solo.acked, goss.acked)
	row("tempfailed post-trust", solo.tempfailed, goss.tempfailed)
	row("delivered to shards", solo.delivered, goss.delivered)
	row("upstream DNSBL queries", solo.upstream, goss.upstream)
	row("verdict peer hits", solo.peerHits, goss.peerHits)
	row("forward retries", solo.retries, goss.retries)
	fmt.Fprintf(w, "%-28s %12.3f %12.3f\n", "ham accept rate", solo.acceptRate(), goss.acceptRate())
	fmt.Fprintf(w, "%-28s %12.3f %12.3f\n", "DNSBL cache hit rate", solo.cacheHitRate(), goss.cacheHitRate())
	fmt.Fprintf(w, "%-28s %12.2f %12.2f\n", "handoff p99 (ms)", solo.handoffP99, goss.handoffP99)
	fmt.Fprintf(w, "\nacked mail lost: off=%d on=%d (acked - delivered; must be 0)\n",
		solo.acked-solo.delivered, goss.acked-goss.delivered)

	return Metrics{
		"accept_rate_solo":   solo.acceptRate(),
		"accept_rate_gossip": goss.acceptRate(),
		"cache_hit_solo":     solo.cacheHitRate(),
		"cache_hit_gossip":   goss.cacheHitRate(),
		"cache_hit_lift":     goss.cacheHitRate() - solo.cacheHitRate(),
		"upstream_solo":      float64(solo.upstream),
		"upstream_gossip":    float64(goss.upstream),
		"peer_hits_gossip":   float64(goss.peerHits),
		"lost_solo":          float64(solo.acked - solo.delivered),
		"lost_gossip":        float64(goss.acked - goss.delivered),
		"forward_retries":    float64(solo.retries + goss.retries),
		"handoff_p99_ms":     goss.handoffP99,
		"greylisted_solo":    float64(solo.greylisted),
		"greylisted_gossip":  float64(goss.greylisted),
	}, nil
}
