package core

import "testing"

// TestPolicySweep checks the experiment's headline claim: at spam
// ratios ≥ 0.5 the hybrid server with the policy engine on consumes
// strictly less worker-pool capacity than policy-off, while legitimate
// mail still delivers through the greylist retry.
func TestPolicySweep(t *testing.T) {
	m := quick(t, "policy-sweep")
	for _, key := range []string{"0.50", "0.75", "0.90"} {
		off, on := m["occ_off_"+key], m["occ_on_"+key]
		if !(on < off) {
			t.Errorf("spam %s: occupancy on = %v, want strictly below off = %v", key, on, off)
		}
		if m["refused_"+key] == 0 {
			t.Errorf("spam %s: no connections refused pre-trust", key)
		}
	}
	// With no spam, policy must not lose mail: everything delivers after
	// its greylist retry.
	if m["good_on_0.00"] != m["good_off_0.00"] {
		t.Errorf("ham-only: policy-on delivered %v mails, policy-off %v",
			m["good_on_0.00"], m["good_off_0.00"])
	}
	// Spam suppression: at 0.9 spam, policy-on delivers far less than
	// policy-off (the delta is delivered spam kept out).
	if m["good_on_0.90"] >= m["good_off_0.90"]/2 {
		t.Errorf("spam 0.9: policy-on delivered %v of %v — delivered spam not suppressed",
			m["good_on_0.90"], m["good_off_0.90"])
	}
}

// TestPolicySweepDeterministic re-runs the experiment and requires
// identical metrics — the engine must not leak wall-clock or map-order
// effects into verdicts.
func TestPolicySweepDeterministic(t *testing.T) {
	a := quick(t, "policy-sweep")
	b := quick(t, "policy-sweep")
	if len(a) != len(b) {
		t.Fatalf("metric sets differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("metric %s: %v vs %v across runs", k, v, b[k])
		}
	}
}
