package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/addr"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/simmail"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "policy-sweep",
		Title: "Pre-trust policy engine: worker occupancy vs spam ratio",
		Paper: "extends §5: admission verdicts in the master keep delivered spam off the smtpd pool, where fork-after-trust alone cannot",
		Run:   runPolicySweep,
	})
}

// sweepEngine builds the sweep's policy pipeline: reject DNSBL-listed
// sources outright, greylist first contacts, throttle per-IP connection
// rates, and accumulate reputation from bounces and hits.
func sweepEngine() *policy.Engine {
	return policy.New(
		policy.WithRate(policy.RateConfig{ConnPerSec: 0.5, ConnBurst: 5}),
		policy.WithGreylist(policy.GreyConfig{MinRetry: 30 * time.Second}),
		policy.WithReputation(policy.ReputationConfig{}),
		policy.WithDNSBLReject(1),
	)
}

// policySweepRun executes one point; a nil listed map runs policy-off.
func policySweepRun(arch simmail.Architecture, conns []trace.Conn, listed map[addr.IPv4]bool) simmail.Result {
	cfg := simmail.Config{Arch: arch, Workers: 500, Seed: 2}
	if arch == simmail.ArchHybrid {
		cfg.Sockets = 700
	}
	if listed != nil {
		cfg.Policy = &simmail.PolicyOptions{
			Engine:      sweepEngine(),
			Listed:      func(c *trace.Conn) bool { return listed[c.ClientIP] },
			ListedScore: 2,
			// Legitimate MTAs retry after the greylist window; spam
			// cannons never do.
			RetryAfter: 35 * time.Second,
		}
	}
	return simmail.RunClosed(cfg, conns, 700, 0)
}

func runPolicySweep(w io.Writer, opts Options) (Metrics, error) {
	n := opts.scale(10000, 3000)
	t := metrics.NewTable("spam ratio", "occupancy off", "occupancy on",
		"mails off", "mails on", "rejected", "greylisted", "retries")
	m := Metrics{}
	for _, s := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		conns, listed := trace.PolicySweep(opts.seed()+3, n, s, "dept.example.edu", 400)
		off := policySweepRun(simmail.ArchHybrid, conns, nil)
		on := policySweepRun(simmail.ArchHybrid, conns, listed)
		refused := on.PolicyRejected + on.PolicyTempfailed
		t.AddRow(s, off.WorkerOccupancy, on.WorkerOccupancy,
			off.GoodMails, on.GoodMails, refused, on.Greylisted, on.Retries)
		key := fmt.Sprintf("%.2f", s)
		m["occ_off_"+key] = off.WorkerOccupancy
		m["occ_on_"+key] = on.WorkerOccupancy
		m["good_off_"+key] = float64(off.GoodMails)
		m["good_on_"+key] = float64(on.GoodMails)
		m["refused_"+key] = float64(refused)
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "\nat spam 0.75: policy verdicts in the master cut worker occupancy from %.3f to %.3f; "+
		"ham still delivers (%.0f mails, one greylist retry each)\n",
		m["occ_off_0.75"], m["occ_on_0.75"], m["good_on_0.75"])
	return m, nil
}
