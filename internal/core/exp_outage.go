package core

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bounce"
	"repro/internal/costmodel"
	"repro/internal/eventlog"
	"repro/internal/fsim"
	"repro/internal/metrics"
	"repro/internal/outbound"
	"repro/internal/queue"
	"repro/internal/smtp"
	"repro/internal/smtpserver"
	"repro/internal/spool"
)

func init() {
	register(Experiment{
		ID:    "outbound-outage",
		Title: "Remote-site outage and recovery: spool depth, retry amplification, time-to-drain",
		Paper: "Figure 2's queue/outbound split under an unreachable destination: the durable spool absorbs the outage, the per-destination backoff bounds retry amplification, and the queue drains once the remote recovers",
		Run:   runOutboundOutage,
	})
}

// outageSink is a minimal accept-everything SMTP server standing in for
// the remote site once it comes back up.
type outageSink struct {
	ln        net.Listener
	delivered atomic.Int64
}

func startOutageSink() (*outageSink, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &outageSink{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return s, nil
}

func (s *outageSink) addr() string { return s.ln.Addr().String() }
func (s *outageSink) close()       { s.ln.Close() }

func (s *outageSink) serve(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, "220 remote back online\r\n")
	inData := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		if inData {
			if line == "." {
				inData = false
				s.delivered.Add(1)
				fmt.Fprintf(conn, "250 queued\r\n")
			}
			continue
		}
		switch verb := strings.ToUpper(line); {
		case strings.HasPrefix(verb, "HELO"), strings.HasPrefix(verb, "EHLO"),
			strings.HasPrefix(verb, "MAIL"), strings.HasPrefix(verb, "RCPT"),
			strings.HasPrefix(verb, "RSET"):
			fmt.Fprintf(conn, "250 ok\r\n")
		case strings.HasPrefix(verb, "DATA"):
			inData = true
			fmt.Fprintf(conn, "354 go\r\n")
		case strings.HasPrefix(verb, "QUIT"):
			fmt.Fprintf(conn, "221 bye\r\n")
			return
		default:
			fmt.Fprintf(conn, "500 what\r\n")
		}
	}
}

// outageResult is one architecture's measurement.
type outageResult struct {
	accepted       int64
	delivered      int64
	bounced        int64
	deferrals      int64
	peakSpool      int
	outageAttempts float64
	totalAttempts  float64
	drain          time.Duration
}

// amplification is total delivery attempts per mail that ultimately
// needed them (delivered + bounced originals): 1.0 means every mail
// went through on its first try.
func (r outageResult) amplification() float64 {
	mails := float64(r.delivered + r.bounced)
	if mails == 0 {
		return 0
	}
	return r.totalAttempts / mails
}

// outageRun boots one full pipeline — SMTP front end over loopback TCP,
// durable spool on a simulated disk, backoff scheduler, MX-resolving
// outbound deliverer — and walks it through a remote-site outage:
//
//  1. Every destination MX refuses connections. n mails arrive and pile
//     up in the deferred lane under exponential backoff; deadN of them
//     aim at a permanently dead domain.
//  2. After a hold period the remote "comes back": the MX table repoints
//     at a live sink, and the drain clock starts.
//  3. The queue drains. The dead-domain mails exhaust their attempts and
//     bounce; the DSNs themselves deliver to the recovered remote.
func outageRun(arch smtpserver.Architecture, n, deadN int, hold time.Duration) (outageResult, error) {
	const (
		localDomain  = "origin.test"
		remoteDomain = "remote.test"
		deadDomain   = "nohost.test"
	)
	var res outageResult

	// A port that refuses connections: listen, grab the address, close.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	resolver := outbound.NewStatic()
	resolver.Set(remoteDomain, outbound.MX{Host: deadAddr, Pref: 10})
	resolver.Set(localDomain, outbound.MX{Host: deadAddr, Pref: 10})
	resolver.Set(deadDomain, outbound.MX{Host: deadAddr, Pref: 10})

	reg := metrics.NewRegistry()
	events := eventlog.New(eventlog.WithLevel(eventlog.LevelOff))
	deliverer, err := outbound.New(outbound.Config{
		Resolver:       resolver,
		Helo:           "mx." + localDomain,
		DialTimeout:    500 * time.Millisecond,
		CommandTimeout: 2 * time.Second,
		Registry:       reg,
		Events:         events,
	})
	if err != nil {
		return res, err
	}
	qm, err := queue.NewManager(queue.Config{
		Deliverer:       deliverer,
		Store:           spool.New(fsim.NewMem(costmodel.FSModel{}), ""),
		ActiveLimit:     8,
		MaxAttempts:     8,
		RetryDelay:      25 * time.Millisecond,
		MaxRetryDelay:   250 * time.Millisecond,
		DestConcurrency: 8,
		IntakeLimit:     2*n + 16,
		Bounce:          bounce.New("mx." + localDomain).Synthesize,
		Registry:        reg,
		Events:          events,
	})
	if err != nil {
		return res, err
	}
	srv, err := smtpserver.New(qm.Enqueue,
		smtpserver.WithHostname("mx."+localDomain),
		smtpserver.WithArchitecture(arch),
		smtpserver.WithMaxWorkers(8),
		smtpserver.WithIdleTimeout(5*time.Second),
		smtpserver.WithRegistry(reg),
		smtpserver.WithEventLog(events),
	)
	if err != nil {
		qm.Close()
		return res, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		qm.Close()
		return res, err
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }() //nolint:errcheck // exits on Close

	// Sample the spool depth while the outage lasts; the peak is the
	// headline "how much disk did the outage cost" number.
	var peak atomic.Int64
	stopSampling := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampling:
				return
			case <-tick.C:
				depth := int64(qm.LaneDepth(spool.LaneActive) +
					qm.LaneDepth(spool.LaneDeferred) + qm.LaneDepth(spool.LaneHold))
				if depth > peak.Load() {
					peak.Store(depth)
				}
			}
		}
	}()

	// Inject n mails while the remote is down. A slice aims at the
	// permanently dead domain to exercise the exhaustion→DSN path.
	body := []byte("Subject: outage drill\r\n\r\n" + strings.Repeat("payload ", 32) + "\r\n")
	const senders = 4
	var inject sync.WaitGroup
	injectErr := make([]error, senders)
	for g := 0; g < senders; g++ {
		inject.Add(1)
		go func(g int) {
			defer inject.Done()
			for i := g; i < n; i += senders {
				rcptDomain := remoteDomain
				if i < deadN {
					rcptDomain = deadDomain
				}
				c, err := smtp.Dial(ln.Addr().String(), 2*time.Second)
				if err != nil {
					injectErr[g] = err
					return
				}
				if err := c.Helo("relay." + localDomain); err == nil {
					sender := fmt.Sprintf("user%d@%s", i, localDomain)
					rcpt := fmt.Sprintf("rcpt%d@%s", i, rcptDomain)
					if _, err := c.Send(sender, []string{rcpt}, body); err != nil {
						injectErr[g] = err
					}
				}
				_ = c.Quit()
			}
		}(g)
	}
	inject.Wait()
	for _, err := range injectErr {
		if err != nil {
			qm.Close()
			srv.Close()
			<-done
			return res, fmt.Errorf("inject: %w", err)
		}
	}

	// Let the outage bite: retries accumulate against the dead address.
	time.Sleep(hold)
	res.outageAttempts = float64(reg.Counter("outbound_attempts_total").Value())
	close(stopSampling)
	sampler.Wait()
	res.peakSpool = int(peak.Load())

	// Recovery: the remote (and the origin domain, for DSNs) come back.
	sink, err := startOutageSink()
	if err != nil {
		qm.Close()
		srv.Close()
		<-done
		return res, err
	}
	defer sink.close()
	resolver.Set(remoteDomain, outbound.MX{Host: sink.addr(), Pref: 10})
	resolver.Set(localDomain, outbound.MX{Host: sink.addr(), Pref: 10})
	recoverStart := time.Now()
	if !qm.WaitIdle(60 * time.Second) {
		qm.Close()
		srv.Close()
		<-done
		return res, fmt.Errorf("queue did not drain after recovery")
	}
	res.drain = time.Since(recoverStart)

	if err := srv.Close(); err != nil {
		qm.Close()
		return res, err
	}
	<-done
	if err := qm.Close(); err != nil {
		return res, err
	}

	stats := qm.Stats()
	res.accepted = stats.Enqueued
	res.delivered = stats.Delivered
	res.bounced = stats.Bounced
	res.deferrals = stats.Deferred
	res.totalAttempts = float64(reg.Counter("outbound_attempts_total").Value())
	return res, nil
}

func runOutboundOutage(w io.Writer, opts Options) (Metrics, error) {
	n := opts.scale(240, 32)
	deadN := n / 16
	if deadN < 2 {
		deadN = 2
	}
	hold := 400 * time.Millisecond
	if opts.Quick {
		hold = 200 * time.Millisecond
	}

	t := metrics.NewTable("arch", "accepted", "peak spool", "outage attempts",
		"total attempts", "amp", "bounced", "drain ms")
	m := Metrics{}
	for _, arch := range []smtpserver.Architecture{smtpserver.Vanilla, smtpserver.Hybrid} {
		r, err := outageRun(arch, n, deadN, hold)
		if err != nil {
			return nil, fmt.Errorf("outbound-outage %s: %v", arch, err)
		}
		t.AddRow(arch.String(), r.accepted, r.peakSpool, r.outageAttempts,
			r.totalAttempts, r.amplification(), r.bounced, float64(r.drain.Milliseconds()))
		key := arch.String()
		m["accepted_"+key] = float64(r.accepted)
		m["delivered_"+key] = float64(r.delivered)
		m["bounced_"+key] = float64(r.bounced)
		m["deferrals_"+key] = float64(r.deferrals)
		m["peak_spool_"+key] = float64(r.peakSpool)
		m["outage_attempts_"+key] = r.outageAttempts
		m["total_attempts_"+key] = r.totalAttempts
		m["amplification_"+key] = r.amplification()
		m["drain_ms_"+key] = float64(r.drain.Milliseconds())
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "\nboth architectures accept at full speed while the remote is down: "+
		"the spool absorbs the backlog (peak %.0f mails), exponential per-destination "+
		"backoff caps retry amplification at %.1f attempts/mail, and the queue drains "+
		"in %.0f ms once the remote returns; %.0f mails aimed at a permanently dead "+
		"domain exhausted their attempts and bounced as DSNs\n",
		m["peak_spool_hybrid"], m["amplification_hybrid"], m["drain_ms_hybrid"],
		m["bounced_hybrid"])
	return m, nil
}
