package core

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/delivery"
	"repro/internal/fsim"
	"repro/internal/mailstore"
	"repro/internal/metrics"
	"repro/internal/mfs"
	"repro/internal/queue"
	"repro/internal/smtp"
	"repro/internal/smtpserver"
	"repro/internal/spool"
)

func init() {
	register(Experiment{
		ID:    "crash-recovery",
		Title: "Power-cut crash and restart: spool depth at crash, WAL replay, time-to-recover",
		Paper: "the durability the Figure 2 queue/store split promises: an SMTP 250 survives a power cut — the spool replays undelivered mail, the MFS commit log replays acknowledged mailbox writes, and no accepted mail is lost or duplicated",
		Run:   runCrashRecovery,
	})
}

// stallingAgent wraps the local delivery agent with a budget: the first
// `allow` commits go through, then every delivery fails as if the
// mailbox disk stalled. That freezes a realistic mid-run state — some
// mail committed to MFS (part of it still only in the write-ahead log),
// the rest piling up in the spool — for the crash to hit.
type stallingAgent struct {
	inner queue.Deliverer
	left  atomic.Int64
}

func (g *stallingAgent) Deliver(item *queue.Item) error {
	if g.left.Add(-1) < 0 {
		return fmt.Errorf("mailbox storage stalled")
	}
	return g.inner.Deliver(item)
}

// crashResult is one architecture's measurement.
type crashResult struct {
	accepted       int64
	deliveredPre   int64 // mails committed to MFS before the crash
	spoolAtCrash   int   // mails in spool lanes when the power went out
	spoolRecovered int   // mails the restarted queue replayed
	spoolTorn      int   // torn spool files dropped by the replay
	walReplayed    int   // complete WAL records replayed on MFS reopen
	walBytes       int64 // payload bytes restored from the log
	refsFixed      int   // shared refcounts repaired by reconciliation
	redelivered    int64 // post-crash commits of replayed spool mails
	mailboxEntries int   // (mail, mailbox) pairs present after the drain
	recoverMS      float64
}

// crashRun boots the full local pipeline — SMTP front end over loopback
// TCP, synced spool, queue manager, local agent, MFS store in WAL mode,
// all on one fault-injecting filesystem — and power-cuts it mid-run:
//
//  1. n mails arrive (every third to three recipients, taking the
//     shared single-copy path). The delivery agent commits the first
//     `allow` of them to MFS, then stalls; the rest accumulate in the
//     deferred lane on disk.
//  2. The power goes out: every byte not fsynced is dropped, the
//     server is torn down, and the filesystem restarts from its
//     durable image.
//  3. The clock starts. A new MFS store replays its commit log and
//     reconciles, a new queue manager replays the spool, and the
//     stall is lifted; the clock stops when the queue drains.
//
// No accepted mail may be lost, and replayed spool mails whose commit
// already survived in MFS must not duplicate (the agent redelivers
// idempotently).
func crashRun(arch smtpserver.Architecture, n, allow, users int) (crashResult, error) {
	const domain = "dept.example.edu"
	var res crashResult

	fault := fsim.NewFault()
	store, err := mailstore.NewMFS(fault, "mfs", mfs.WithSync(true))
	if err != nil {
		return res, err
	}
	db := access.NewDB(domain)
	if err := access.Populate(db, domain, users); err != nil {
		return res, err
	}
	gate := &stallingAgent{inner: delivery.NewAgent(db, store)}
	gate.left.Store(int64(allow))
	qm, err := queue.NewManager(queue.Config{
		Deliverer:     gate,
		Store:         spool.New(fault, "queue"),
		ActiveLimit:   8,
		MaxAttempts:   1 << 20, // the stall must defer, never bounce
		RetryDelay:    50 * time.Millisecond,
		MaxRetryDelay: 200 * time.Millisecond,
		IntakeLimit:   n + 16,
	})
	if err != nil {
		return res, err
	}
	srv, err := smtpserver.New(qm.Enqueue,
		smtpserver.WithHostname("mx."+domain),
		smtpserver.WithArchitecture(arch),
		smtpserver.WithMaxWorkers(8),
		smtpserver.WithIdleTimeout(5*time.Second),
	)
	if err != nil {
		qm.Close()
		return res, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		qm.Close()
		return res, err
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }() //nolint:errcheck // exits on Close

	// Inject n mails; every third fans out to three recipients.
	body := []byte("Subject: crash drill\r\n\r\n" + strings.Repeat("payload ", 24) + "\r\n")
	const senders = 4
	var inject sync.WaitGroup
	injectErr := make([]error, senders)
	for g := 0; g < senders; g++ {
		inject.Add(1)
		go func(g int) {
			defer inject.Done()
			for i := g; i < n; i += senders {
				rcpts := []string{fmt.Sprintf("user%04d@%s", i%users, domain)}
				if i%3 == 0 {
					rcpts = append(rcpts,
						fmt.Sprintf("user%04d@%s", (i+1)%users, domain),
						fmt.Sprintf("user%04d@%s", (i+2)%users, domain))
				}
				c, err := smtp.Dial(ln.Addr().String(), 2*time.Second)
				if err != nil {
					injectErr[g] = err
					return
				}
				if err := c.Helo("relay.example.net"); err == nil {
					sender := fmt.Sprintf("peer%d@remote.example", i)
					if _, err := c.Send(sender, rcpts, body); err != nil {
						injectErr[g] = err
					}
				}
				_ = c.Quit()
			}
		}(g)
	}
	inject.Wait()
	for _, err := range injectErr {
		if err != nil {
			srv.Close()
			<-done
			qm.Close()
			return res, fmt.Errorf("inject: %w", err)
		}
	}

	// Let the pipeline settle: the allowed commits land in MFS, the
	// stalled remainder parks in the deferred lane on disk.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := qm.Stats()
		if st.Delivered >= int64(allow) && st.InFlight == 0 && st.Pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			srv.Close()
			<-done
			qm.Close()
			return res, fmt.Errorf("pipeline did not settle before the crash")
		}
		time.Sleep(5 * time.Millisecond)
	}
	res.accepted = qm.Stats().Enqueued
	res.deliveredPre = qm.Stats().Delivered
	res.spoolAtCrash = qm.LaneDepth(spool.LaneActive) +
		qm.LaneDepth(spool.LaneDeferred) + qm.LaneDepth(spool.LaneHold)

	// Power cut: drop everything unsynced, then tear the process down.
	// The teardown's own writes fail — that is the point.
	fault.Crash()
	srv.Close()
	<-done
	_ = qm.Close()
	_ = store.Close()
	fault.Recover()

	// Restart. The clock covers the full path back to a drained queue:
	// MFS log replay + reconciliation, spool replay, and redelivery.
	restart := time.Now()
	store2, err := mailstore.NewMFS(fault, "mfs", mfs.WithSync(true))
	if err != nil {
		return res, fmt.Errorf("reopen mfs: %w", err)
	}
	rs := store2.Recovery()
	res.walReplayed = rs.Replayed
	res.walBytes = rs.ReplayedBytes
	res.refsFixed = rs.RefsFixed

	agent2 := delivery.NewAgent(db, store2)
	qm2, err := queue.NewManager(queue.Config{
		Deliverer:     agent2,
		Store:         spool.New(fault, "queue"),
		ActiveLimit:   8,
		MaxAttempts:   1 << 20,
		RetryDelay:    50 * time.Millisecond,
		MaxRetryDelay: 200 * time.Millisecond,
		IntakeLimit:   n + 16,
	})
	if err != nil {
		store2.Close()
		return res, fmt.Errorf("restart queue: %w", err)
	}
	if !qm2.WaitIdle(60 * time.Second) {
		qm2.Close()
		store2.Close()
		return res, fmt.Errorf("queue did not drain after restart")
	}
	res.recoverMS = float64(time.Since(restart).Microseconds()) / 1000
	qrs := qm2.RecoveryStats()
	for _, lane := range spool.Lanes {
		res.spoolRecovered += qrs.Recovered[lane]
	}
	res.spoolTorn = qrs.Torn
	res.redelivered = agent2.Stats().Redelivered
	if err := qm2.Close(); err != nil {
		store2.Close()
		return res, err
	}

	// Tally (mail, mailbox) pairs: every accepted mail must be present
	// in each of its mailboxes exactly once.
	for i := 0; i < users; i++ {
		mb, err := store2.Store().Open(fmt.Sprintf("user%04d", i))
		if err != nil {
			store2.Close()
			return res, err
		}
		res.mailboxEntries += mb.Len()
	}
	if err := store2.Close(); err != nil {
		return res, err
	}

	// The invariant the experiment exists to demonstrate.
	wantEntries := 0
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			wantEntries += 3
		} else {
			wantEntries++
		}
	}
	if res.mailboxEntries != wantEntries {
		return res, fmt.Errorf("crash-recovery %s: %d mailbox entries after recovery, want %d (lost or duplicated mail)",
			arch, res.mailboxEntries, wantEntries)
	}
	return res, nil
}

func runCrashRecovery(w io.Writer, opts Options) (Metrics, error) {
	const users = 32
	n := opts.scale(400, 60)
	allow := n / 3

	t := metrics.NewTable("arch", "accepted", "pre-crash commits", "spool @ crash",
		"spool replayed", "wal replayed", "redelivered", "entries", "recover ms")
	m := Metrics{}
	for _, arch := range []smtpserver.Architecture{smtpserver.Vanilla, smtpserver.Hybrid} {
		r, err := crashRun(arch, n, allow, users)
		if err != nil {
			return nil, fmt.Errorf("crash-recovery %s: %w", arch, err)
		}
		t.AddRow(arch.String(), r.accepted, r.deliveredPre, r.spoolAtCrash,
			r.spoolRecovered, r.walReplayed, r.redelivered, r.mailboxEntries, r.recoverMS)
		key := arch.String()
		m["accepted_"+key] = float64(r.accepted)
		m["delivered_pre_"+key] = float64(r.deliveredPre)
		m["spool_at_crash_"+key] = float64(r.spoolAtCrash)
		m["spool_recovered_"+key] = float64(r.spoolRecovered)
		m["spool_torn_"+key] = float64(r.spoolTorn)
		m["wal_replayed_"+key] = float64(r.walReplayed)
		m["wal_bytes_"+key] = float64(r.walBytes)
		m["refs_fixed_"+key] = float64(r.refsFixed)
		m["redelivered_"+key] = float64(r.redelivered)
		m["mailbox_entries_"+key] = float64(r.mailboxEntries)
		m["recover_ms_"+key] = r.recoverMS
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "\na power cut mid-run loses nothing on either architecture: the restarted "+
		"store replays %.0f commit-log records (%.0f bytes) to recover every pre-crash "+
		"mailbox commit, the queue replays %.0f spooled mails and redelivers them "+
		"idempotently, and the pipeline is fully drained %.1f ms after restart with "+
		"every accepted mail present exactly once\n",
		m["wal_replayed_hybrid"], m["wal_bytes_hybrid"],
		m["spool_recovered_hybrid"], m["recover_ms_hybrid"])
	return m, nil
}
