package core

import (
	"fmt"
	"io"

	"repro/internal/addr"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Measurement testbed, software, and traces",
		Paper: "Table 1: testbed configuration and trace inventory",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "fig1",
		Title: "Distribution of mail servers in the Internet (Jan 2007)",
		Paper: "Figure 1: sendmail leads, then postfix, MS Exim, Postini, …",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Daily bounce and unfinished-transaction ratios (ECN, 2007)",
		Paper: "Figure 3: bounces 20–25% with a slight upward drift; unfinished 5–15%",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "CDF of recipients per mail in the sinkhole trace",
		Paper: "Figure 4: 'rcpt to' count commonly between 5–15; trace mean ≈7",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "CDF of blacklisted IPs per /24 prefix",
		Paper: "Figure 12: 40% of prefixes hold >10 blacklisted IPs; ≈3% hold >100",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Interarrival times per IP vs per /24 prefix",
		Paper: "Figure 13: same-/24 interarrivals markedly shorter than same-IP",
		Run:   runFig13,
	})
}

func runTable1(w io.Writer, opts Options) (Metrics, error) {
	t := metrics.NewTable("item", "value")
	t.AddRow("server/client machine", "Intel Xeon 3.0 GHz, 2 GB RAM, U320 10K SCSI (modelled)")
	t.AddRow("os / filesystem", "Linux 2.6.20, Ext3 journal (cost model; Reiser alternative)")
	t.AddRow("network", "gigabit switch, 30 ms emulated delay each way")
	t.AddRow("server software", "spam-aware mail server (this repository), vanilla + hybrid")
	t.AddRow("client program 1", "closed-system replayer (internal/workload.RunClosed)")
	t.AddRow("client program 2", "open-system replayer (internal/workload.RunOpen)")
	t.AddRow("spam trace", fmt.Sprintf("synthetic sinkhole: %d conns, %d IPs, %d /24s",
		trace.SinkholeConnections, trace.SinkholeIPs, trace.SinkholePrefixes))
	t.AddRow("univ trace", fmt.Sprintf("synthetic departmental: %d conns, %.0f%% spam",
		trace.UnivConnections, 100*trace.UnivSpamRatio))
	fmt.Fprint(w, t.String())
	return Metrics{"rows": float64(8)}, nil
}

// fig1Data is the January-2007 MTA fingerprint distribution read off the
// paper's Figure 1 (percent of ~400,000 fingerprinted company domains).
var fig1Data = []struct {
	Server string
	Pct    float64
}{
	{"Sendmail", 12.3},
	{"Postfix", 8.6},
	{"MS Exchange", 7.4},
	{"Postini", 6.7},
	{"Exim", 5.0},
	{"MXLogic", 4.1},
	{"Qmail", 3.8},
	{"CommuniGate", 3.2},
	{"Cisco/IronPort", 2.6},
	{"Barracuda", 2.2},
}

func runFig1(w io.Writer, opts Options) (Metrics, error) {
	t := metrics.NewTable("mail server", "% of domains")
	for _, d := range fig1Data {
		t.AddRow(d.Server, d.Pct)
	}
	fmt.Fprint(w, t.String())
	m := Metrics{}
	for _, d := range fig1Data {
		m[d.Server] = d.Pct
	}
	return m, nil
}

func runFig3(w io.Writer, opts Options) (Metrics, error) {
	days := opts.scale(390, 60)
	pts := trace.ECNSeries(opts.seed(), days)
	t := metrics.NewTable("day", "bounce ratio", "unfinished ratio")
	var bSum, uSum, bEarly, bLate float64
	for i, p := range pts {
		if i%30 == 0 {
			t.AddRow(p.Day, p.BounceRatio, p.UnfinishedRatio)
		}
		bSum += p.BounceRatio
		uSum += p.UnfinishedRatio
		if i < len(pts)/4 {
			bEarly += p.BounceRatio
		}
		if i >= 3*len(pts)/4 {
			bLate += p.BounceRatio
		}
	}
	fmt.Fprint(w, t.String())
	n := float64(len(pts))
	q := n / 4
	m := Metrics{
		"mean_bounce":     bSum / n,
		"mean_unfinished": uSum / n,
		"bounce_drift":    bLate/q - bEarly/q,
	}
	fmt.Fprintf(w, "\nmean bounce %.3f, mean unfinished %.3f, year drift %+.4f\n",
		m["mean_bounce"], m["mean_unfinished"], m["bounce_drift"])
	return m, nil
}

// sinkholeFor builds the scaled sinkhole generator shared by the trace
// experiments.
func sinkholeFor(opts Options) *trace.Sinkhole {
	return trace.NewSinkhole(trace.SinkholeConfig{
		Seed:        opts.seed(),
		Connections: opts.scale(trace.SinkholeConnections, 8000),
		Prefixes:    opts.scale(trace.SinkholePrefixes, 700),
	})
}

func runFig4(w io.Writer, opts Options) (Metrics, error) {
	conns := sinkholeFor(opts).Generate()
	sample := trace.RcptSample(conns)
	t := metrics.NewTable("recipients ≤", "CDF")
	for _, x := range []float64{1, 2, 3, 5, 7, 10, 12, 15, 20} {
		t.AddRow(int(x), sample.FractionBelow(x))
	}
	fmt.Fprint(w, t.String())
	m := Metrics{
		"mean_rcpts":   sample.Mean(),
		"frac_5_to_15": sample.FractionBelow(15) - sample.FractionBelow(4),
		"median_rcpts": sample.Quantile(0.5),
		"max_rcpts":    sample.Max(),
		"delivering":   float64(sample.Count()),
	}
	fmt.Fprintf(w, "\nmean %.2f rcpts/conn (paper ≈7); %.0f%% in [5,15]\n",
		m["mean_rcpts"], 100*m["frac_5_to_15"])
	return m, nil
}

func runFig12(w io.Writer, opts Options) (Metrics, error) {
	s := sinkholeFor(opts)
	perPrefix := make(map[addr.Prefix]int)
	for _, ip := range s.CBLPopulation() {
		perPrefix[ip.Prefix24()]++
	}
	counts := make([]int, 0, len(perPrefix))
	for _, n := range perPrefix {
		counts = append(counts, n)
	}
	t := metrics.NewTable("blacklisted IPs per /24 >", "fraction of prefixes")
	for _, x := range []int{1, 5, 10, 30, 60, 100, 180} {
		t.AddRow(x, trace.FractionAbove(counts, x))
	}
	fmt.Fprint(w, t.String())
	m := Metrics{
		"frac_gt_10":  trace.FractionAbove(counts, 10),
		"frac_gt_100": trace.FractionAbove(counts, 100),
		"prefixes":    float64(len(counts)),
	}
	fmt.Fprintf(w, "\n%.0f%% of prefixes >10 IPs (paper 40%%); %.1f%% >100 (paper ≈3%%)\n",
		100*m["frac_gt_10"], 100*m["frac_gt_100"])
	return m, nil
}

func runFig13(w io.Writer, opts Options) (Metrics, error) {
	conns := sinkholeFor(opts).Generate()
	byIP, byPrefix := trace.Interarrivals(conns)
	t := metrics.NewTable("quantile", "same-IP gap (s)", "same-/24 gap (s)")
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		t.AddRow(q, byIP.Quantile(q), byPrefix.Quantile(q))
	}
	fmt.Fprint(w, t.String())
	m := Metrics{
		"median_ip_gap":     byIP.Quantile(0.5),
		"median_prefix_gap": byPrefix.Quantile(0.5),
		"mean_ip_gap":       byIP.Mean(),
		"mean_prefix_gap":   byPrefix.Mean(),
	}
	fmt.Fprintf(w, "\nmedian gap: %.0fs per IP vs %.0fs per /24\n",
		m["median_ip_gap"], m["median_prefix_gap"])
	return m, nil
}
