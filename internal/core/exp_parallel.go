package core

import (
	"fmt"
	"io"

	"repro/internal/access"
	"repro/internal/costmodel"
	"repro/internal/delivery"
	"repro/internal/fsim"
	"repro/internal/mailstore"
	"repro/internal/metrics"
	"repro/internal/mfs"
	"repro/internal/queue"
)

func init() {
	register(Experiment{
		ID:    "parallel-delivery",
		Title: "MFS delivery throughput vs concurrent queue workers (group commit)",
		Paper: "§6: single-copy MFS under the Figure 2 pipeline; concurrent deliveries coalesce into batched shared-store commits",
		Run:   runParallelDelivery,
	})
}

// parallelDeliveryRun drives one full delivery pipeline — queue manager
// with `workers` concurrent delivery workers, local agent, MFS store with
// synced group commits — over the metered in-memory Ext3 and returns the
// throughput in mails per metered disk-second plus the mean commit batch
// size. The machine model is the paper's: the disk is the bottleneck, so
// the win from concurrency is not CPU parallelism but commit coalescing —
// N blocked deliverers share one append and one fsync per flush.
func parallelDeliveryRun(workers, nMails, users, rcpts int) (thr, batch float64, err error) {
	fs := fsim.NewMem(costmodel.Ext3)
	store, err := mailstore.NewMFS(fs, "mfs", mfs.WithSync(true))
	if err != nil {
		return 0, 0, err
	}
	defer store.Close()
	db := access.NewDB("test")
	if err := access.Populate(db, "test", users); err != nil {
		return 0, 0, err
	}
	qm, err := queue.NewManager(queue.Config{
		Deliverer:   delivery.NewAgent(db, store),
		ActiveLimit: workers,
		IntakeLimit: nMails, // hold the full run; backpressure is not under test
	})
	if err != nil {
		return 0, 0, err
	}
	body := make([]byte, 4096)
	for i := 0; i < nMails; i++ {
		to := make([]string, rcpts)
		for j := range to {
			to[j] = fmt.Sprintf("user%04d@test", (i*rcpts+j)%users)
		}
		if _, err := qm.Enqueue("peer@remote.example", to, body); err != nil {
			qm.Close()
			return 0, 0, err
		}
	}
	if !qm.WaitIdle(60e9) {
		qm.Close()
		return 0, 0, fmt.Errorf("parallel-delivery: queue did not drain")
	}
	if err := qm.Close(); err != nil {
		return 0, 0, err
	}
	cs := store.Store().CommitStats()
	if cs.Batches > 0 {
		batch = float64(cs.Mails) / float64(cs.Batches)
	}
	elapsed := fs.Elapsed().Seconds()
	if elapsed == 0 {
		return 0, 0, fmt.Errorf("parallel-delivery: no disk time metered")
	}
	return float64(nMails) / elapsed, batch, nil
}

func runParallelDelivery(w io.Writer, opts Options) (Metrics, error) {
	const (
		users = 64
		rcpts = 3 // multi-recipient: every mail takes the shared-store path
	)
	nMails := opts.scale(2000, 300)
	t := metrics.NewTable("workers", "mails / disk-second", "mean commit batch")
	m := Metrics{}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		thr, batch, err := parallelDeliveryRun(workers, nMails, users, rcpts)
		if err != nil {
			return nil, err
		}
		t.AddRow(workers, thr, batch)
		m[fmt.Sprintf("throughput_%d", workers)] = thr
		m[fmt.Sprintf("batch_%d", workers)] = batch
	}
	fmt.Fprint(w, t.String())
	m["speedup_8"] = m["throughput_8"] / m["throughput_1"]
	m["speedup_16"] = m["throughput_16"] / m["throughput_1"]
	fmt.Fprintf(w, "\n8 workers deliver ×%.2f the single-worker rate (mean batch %.1f mails/commit)\n",
		m["speedup_8"], m["batch_8"])
	return m, nil
}
