package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/costmodel"
	"repro/internal/metrics"
	"repro/internal/simmail"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Mailbox-store throughput vs recipients per connection (Ext3)",
		Paper: "Figure 10: vanilla ×7.2 from 1→15 rcpts; MFS +39% over vanilla at 15; maildir/hardlink far worse",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Mailbox-store throughput vs recipients per connection (Reiser)",
		Paper: "Figure 11: MFS beats hardlink/vanilla/maildir by ≈29.5%/31%/212% at 15 rcpts",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "mfs-sinkhole",
		Title: "MFS vs vanilla mbox under the sinkhole trace",
		Paper: "§6.3: MFS outperforms vanilla postfix by ≈20% in mail throughput",
		Run:   runMFSSinkhole,
	})
	register(Experiment{
		ID:    "ablation-refcount",
		Title: "Ablation: MFS shared store with reference counts vs per-recipient copies",
		Paper: "design choice §6.1: one shared copy plus pointer records",
		Run:   runAblationRefcount,
	})
}

// storeThroughput computes mailbox writes per second for the §6.3
// controlled workload: sequences of 15 equal-size mails delivered with k
// recipients per connection. The disk is the bottleneck (as in the
// paper's figures), so throughput is deliveries per disk-second: each
// connection pays one queue-file write plus the store's delivery cost.
func storeThroughput(kind simmail.StoreKind, fs costmodel.FSModel, rcpts int, sizes []int) float64 {
	var busy float64
	var copies int
	for _, size := range sizes {
		// One sequence of 15 mailboxes takes ceil(15/k) connections.
		for start := 0; start < 15; start += rcpts {
			k := rcpts
			if start+k > 15 {
				k = 15 - start
			}
			busy += (simmail.QueueFileCost(fs, size) +
				simmail.DeliveryCost(kind, fs, k, size) +
				simmail.QueueFileCleanup(fs)).Seconds()
			copies += k
		}
	}
	if busy == 0 {
		return 0
	}
	return float64(copies) / busy
}

// fig10Sizes draws the §6.3 sequence sizes from the Univ mail-size model.
func fig10Sizes(opts Options) []int {
	conns := trace.RecipientSweep(opts.seed()+3, opts.scale(2000, 400), 15, "d.test")
	sizes := make([]int, 0, len(conns))
	for i := range conns {
		sizes = append(sizes, conns[i].SizeBytes)
	}
	return sizes
}

var storeKinds = []simmail.StoreKind{
	simmail.StoreMFS, simmail.StoreMbox, simmail.StoreMaildir, simmail.StoreHardlink,
}

func runStoreFigure(w io.Writer, opts Options, fs costmodel.FSModel) (Metrics, error) {
	sizes := fig10Sizes(opts)
	t := metrics.NewTable("recipients", "MFS", "mbox (vanilla)", "maildir", "hardlink")
	m := Metrics{}
	// ceil(15/k) connections per 15-mailbox sequence: pick k values that
	// change the connection count at every step.
	for _, k := range []int{1, 2, 3, 5, 8, 15} {
		row := make([]interface{}, 0, 5)
		row = append(row, k)
		for _, kind := range storeKinds {
			v := storeThroughput(kind, fs, k, sizes)
			row = append(row, v)
			m[fmt.Sprintf("%s_%d", kind, k)] = v
		}
		t.AddRow(row...)
	}
	fmt.Fprint(w, t.String())
	m["vanilla_speedup_1_to_15"] = m["mbox_15"] / m["mbox_1"]
	m["mfs_gain_15"] = m["mfs_15"]/m["mbox_15"] - 1
	m["mfs_vs_hardlink_15"] = m["mfs_15"]/m["hardlink_15"] - 1
	m["mfs_vs_maildir_15"] = m["mfs_15"]/m["maildir_15"] - 1
	return m, nil
}

func runFig10(w io.Writer, opts Options) (Metrics, error) {
	m, err := runStoreFigure(w, opts, costmodel.Ext3)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nvanilla ×%.1f from 1→15 rcpts (paper 7.2); MFS %+.0f%% over vanilla at 15 (paper +39%%)\n",
		m["vanilla_speedup_1_to_15"], 100*m["mfs_gain_15"])
	return m, nil
}

func runFig11(w io.Writer, opts Options) (Metrics, error) {
	m, err := runStoreFigure(w, opts, costmodel.Reiser)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nat 15 rcpts MFS beats hardlink %+.0f%%, vanilla %+.0f%%, maildir %+.0f%% (paper +29.5/+31/+212%%)\n",
		100*m["mfs_vs_hardlink_15"], 100*m["mfs_gain_15"], 100*m["mfs_vs_maildir_15"])
	return m, nil
}

func runMFSSinkhole(w io.Writer, opts Options) (Metrics, error) {
	conns := trace.NewSinkhole(trace.SinkholeConfig{
		Seed:        opts.seed(),
		Connections: opts.scale(20000, 3000),
		Prefixes:    opts.scale(1750, 260),
	}).Generate()
	t := metrics.NewTable("store", "goodput (mails/s)", "disk util", "cpu util")
	m := Metrics{}
	for _, kind := range []simmail.StoreKind{simmail.StoreMbox, simmail.StoreMFS} {
		res := simmail.RunClosed(simmail.Config{
			Arch: simmail.ArchVanilla, Workers: 500, Store: kind, Seed: 2,
		}, conns, 700, 0)
		t.AddRow(kind.String(), res.Goodput, res.DiskUtil, res.CPUUtil)
		m[kind.String()] = res.Goodput
	}
	fmt.Fprint(w, t.String())
	m["mfs_gain"] = m["mfs"]/m["mbox"] - 1
	fmt.Fprintf(w, "\nMFS %+.0f%% over vanilla mbox under the sinkhole trace (paper +20%%)\n",
		100*m["mfs_gain"])
	return m, nil
}

func runAblationRefcount(w io.Writer, opts Options) (Metrics, error) {
	sizes := fig10Sizes(opts)
	t := metrics.NewTable("recipients", "MFS shared+refcount", "MFS without sharing")
	m := Metrics{}
	for _, k := range []int{1, 4, 7, 15} {
		shared := storeThroughput(simmail.StoreMFS, costmodel.Ext3, k, sizes)
		// Without the shared store every recipient mailbox gets its own
		// framed copy plus a key tuple: k times the single-recipient
		// delivery cost.
		var busy float64
		var copies int
		for _, size := range sizes {
			for start := 0; start < 15; start += k {
				kk := k
				if start+kk > 15 {
					kk = 15 - start
				}
				per := simmail.DeliveryCost(simmail.StoreMFS, costmodel.Ext3, 1, size)
				busy += (simmail.QueueFileCost(costmodel.Ext3, size) +
					time.Duration(kk)*per +
					simmail.QueueFileCleanup(costmodel.Ext3)).Seconds()
				copies += kk
			}
		}
		unshared := float64(copies) / busy
		t.AddRow(k, shared, unshared)
		m[fmt.Sprintf("shared_%d", k)] = shared
		m[fmt.Sprintf("unshared_%d", k)] = unshared
	}
	fmt.Fprint(w, t.String())
	m["sharing_gain_15"] = m["shared_15"]/m["unshared_15"] - 1
	fmt.Fprintf(w, "\nreference-counted sharing is worth %+.0f%% at 15 recipients\n",
		100*m["sharing_gain_15"])
	return m, nil
}
