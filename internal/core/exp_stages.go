package core

import (
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/smtpserver"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "stage-latency",
		Title: "Per-stage pipeline latency over real TCP: vanilla vs hybrid",
		Paper: "§5: fork-after-trust moves the wait for an smtpd worker off the accept path; bounces die in the front end without queuing for a worker",
		Run:   runStageLatency,
	})
}

// stageRun boots one real server over loopback TCP, replays a bounce-heavy
// trace through the closed-system client, and returns the server so the
// caller can read its stage histograms back out of the registry.
func stageRun(arch smtpserver.Architecture, conns []trace.Conn) (*smtpserver.Server, error) {
	const domain = "dept.example.edu"
	// The enqueue sink accepts and discards: this experiment measures the
	// front end's pipeline stages, not the queue/delivery tail.
	enqueue := func(sender string, rcpts []string, data []byte) (string, error) {
		return "sunk", nil
	}
	srv, err := smtpserver.New(enqueue,
		smtpserver.WithHostname("mx."+domain),
		smtpserver.WithArchitecture(arch),
		// Few workers against many client slots, so connections queue for
		// an smtpd worker and the handoff_wait stage has something to show.
		smtpserver.WithMaxWorkers(4),
		smtpserver.WithIdleTimeout(5*time.Second),
		smtpserver.WithValidateRcpt(func(a string) bool {
			return strings.HasPrefix(a, "user") && strings.HasSuffix(a, "@"+domain)
		}),
	)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }() //nolint:errcheck // exits on Close
	workload.RunClosed(workload.ClosedConfig{
		Addr:        ln.Addr().String(),
		Concurrency: 16,
		Timeout:     10 * time.Second,
	}, conns)
	if err := srv.Close(); err != nil {
		return nil, err
	}
	<-done
	return srv, nil
}

// stageQuantiles reads one architecture's stage histogram back from the
// server's registry by its documented name.
func stageQuantiles(srv *smtpserver.Server, arch smtpserver.Architecture, stage string) (metrics.Metric, bool) {
	return srv.Registry().Find(smtpserver.StageMetric,
		"arch", arch.String(), "stage", stage)
}

func runStageLatency(w io.Writer, opts Options) (Metrics, error) {
	// A bounce-heavy trace (§4.1's regime) is where the architectures
	// diverge: vanilla queues every bounce for a worker, hybrid kills
	// them in the front end.
	n := opts.scale(3000, 400)
	conns := trace.BounceSweep(opts.seed()+7, n, 0.5, "dept.example.edu", 400)

	servers := map[smtpserver.Architecture]*smtpserver.Server{}
	for _, arch := range []smtpserver.Architecture{smtpserver.Vanilla, smtpserver.Hybrid} {
		srv, err := stageRun(arch, conns)
		if err != nil {
			return nil, fmt.Errorf("stage-latency %s: %w", arch, err)
		}
		servers[arch] = srv
	}

	t := metrics.NewTable("stage", "arch", "events", "p50 (ms)", "p99 (ms)")
	m := Metrics{}
	for _, stage := range smtpserver.Stages() {
		for _, arch := range []smtpserver.Architecture{smtpserver.Vanilla, smtpserver.Hybrid} {
			met, ok := stageQuantiles(servers[arch], arch, stage)
			if !ok || met.Count == 0 {
				continue // e.g. pretrust never fires under vanilla
			}
			p50 := 1000 * met.Quantile(0.5)
			p99 := 1000 * met.Quantile(0.99)
			t.AddRow(stage, arch.String(), met.Count, p50, p99)
			key := arch.String() + "_" + stage
			m[key+"_count"] = float64(met.Count)
			m[key+"_p50_ms"] = p50
			m[key+"_p99_ms"] = p99
		}
	}
	fmt.Fprint(w, t.String())

	vWait, vOK := stageQuantiles(servers[smtpserver.Vanilla], smtpserver.Vanilla, smtpserver.StageHandoffWait)
	hWait, hOK := stageQuantiles(servers[smtpserver.Hybrid], smtpserver.Hybrid, smtpserver.StageHandoffWait)
	if vOK && hOK {
		fmt.Fprintf(w, "\nhandoff_wait p99: vanilla %.2f ms over %d conns (every connection, bounces included) vs hybrid %.2f ms over %d conns (trusted only — bounces never wait)\n",
			1000*vWait.Quantile(0.99), vWait.Count,
			1000*hWait.Quantile(0.99), hWait.Count)
		m["handoff_wait_count_ratio"] = float64(vWait.Count) / float64(max64(hWait.Count, 1))
	}
	return m, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
