package core

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"time"

	"repro/internal/access"
	"repro/internal/admin"
	"repro/internal/delivery"
	"repro/internal/director"
	"repro/internal/fsim"
	"repro/internal/mailstore"
	"repro/internal/metrics"
	"repro/internal/queue"
	"repro/internal/smtp"
	"repro/internal/smtpserver"
	"repro/internal/spool"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "trace-propagation",
		Title: "End-to-end message tracing across the director tier: id minted at the front end, spans stitched from 3 nodes, trace survives a spool crash",
		Paper: "the scale-out architecture's observability contract: one trace id follows a mail from the director's pre-trust phase over the XTRACE hop into a shard's queue, delivery, and store commit, and a cluster aggregator reassembles the lifecycle from per-node span fragments",
		Run:   runTracePropagation,
	})
}

// traceShard is one delivery shard with the full traced pipeline:
// smtpserver → queue (spooled) → delivery agent → mbox store, all
// recording into one per-node MessageRecorder, plus an admin endpoint
// serving the node's spans.
type traceShard struct {
	name  string
	rec   *trace.MessageRecorder
	srv   *smtpserver.Server
	qm    *queue.Manager
	ln    net.Listener
	adm   net.Listener
	admin string // admin base URL
}

func startTraceShard(name, domain string, users int) (*traceShard, error) {
	rec := trace.NewMessageRecorder(name, 4096, 1)
	fs := fsim.NewFault()
	db := access.NewDB(domain)
	if err := access.Populate(db, domain, users); err != nil {
		return nil, err
	}
	agent := delivery.NewAgent(db, mailstore.NewMbox(fs), delivery.WithMessageTracer(rec))
	qm, err := queue.NewManager(queue.Config{
		Deliverer: agent,
		Store:     spool.New(fs, "queue"),
		Tracer:    rec,
	})
	if err != nil {
		return nil, err
	}
	srv, err := smtpserver.New(qm.Enqueue,
		smtpserver.WithHostname(name+".test"),
		smtpserver.WithArchitecture(smtpserver.Vanilla),
		smtpserver.WithIdleTimeout(5*time.Second),
		smtpserver.WithValidateRcpt(db.Valid),
		smtpserver.WithMessageTracer(rec),
		smtpserver.WithEnqueueTraced(qm.EnqueueTraced),
	)
	if err != nil {
		qm.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		qm.Close()
		return nil, err
	}
	go srv.Serve(ln) //nolint:errcheck // exits on close
	adm, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ln.Close()
		qm.Close()
		return nil, err
	}
	go http.Serve(adm, admin.NewHandler(metrics.NewRegistry(), nil, admin.WithTrace(rec))) //nolint:errcheck // dies with listener
	return &traceShard{
		name: name, rec: rec, srv: srv, qm: qm, ln: ln, adm: adm,
		admin: "http://" + adm.Addr().String(),
	}, nil
}

func (s *traceShard) close() {
	s.adm.Close()
	s.ln.Close()
	s.srv.Close() //nolint:errcheck
	s.qm.Close()  //nolint:errcheck
}

// runTracePropagation drives mails through a director and two shards
// with tracing at sample 1, then replays the cluster read side: the
// aggregator fetches each node's span fragments over HTTP and stitches
// them by trace id. A second leg crashes a spooled traced mail and
// proves the recovered delivery resumes the same trace.
func runTracePropagation(w io.Writer, opts Options) (Metrics, error) {
	const domain = "example.org"
	mails := opts.scale(120, 24)
	users := 64

	shardA, err := startTraceShard("shard-a", domain, users)
	if err != nil {
		return nil, err
	}
	defer shardA.close()
	shardB, err := startTraceShard("shard-b", domain, users)
	if err != nil {
		return nil, err
	}
	defer shardB.close()

	drec := trace.NewMessageRecorder("director", 4096, 1)
	d, err := director.New(
		director.WithHostname("director.test"),
		director.WithBackend("shard-a", shardA.ln.Addr().String()),
		director.WithBackend("shard-b", shardB.ln.Addr().String()),
		director.WithForwardTimeout(2*time.Second),
		director.WithMessageTracer(drec),
	)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	dln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go d.Serve(dln)
	dadm, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer dadm.Close()
	go http.Serve(dadm, admin.NewHandler(d.Registry(), nil, admin.WithTrace(drec))) //nolint:errcheck

	// Leg 1: mails through the director, recipients spread over the ring
	// so both shards take traffic; two-recipient mails fan one trace out
	// to two forwards when the ring splits them.
	body := []byte("Subject: traced\r\n\r\npayload\r\n")
	acked := 0
	for i := 0; i < mails; i++ {
		r1 := fmt.Sprintf("user%04d@%s", i%users, domain)
		r2 := fmt.Sprintf("user%04d@%s", (i*7+3)%users, domain)
		c, err := smtp.Dial(dln.Addr().String(), 2*time.Second, smtp.WithCommandTimeout(2*time.Second))
		if err != nil {
			return nil, err
		}
		if err := c.Helo("client.test"); err != nil {
			c.Abort()
			return nil, err
		}
		n, err := c.Send(fmt.Sprintf("sender%d@relay.example.net", i), []string{r1, r2}, body)
		c.Quit() //nolint:errcheck
		if err != nil {
			return nil, err
		}
		if n > 0 {
			acked++
		}
	}
	shardA.qm.WaitIdle(5 * time.Second)
	shardB.qm.WaitIdle(5 * time.Second)

	// The cluster read side: exactly what mailtop -cluster runs.
	agg := telemetry.NewAggregator(
		[]string{"http://" + dadm.Addr().String(), shardA.admin, shardB.admin},
		2*time.Second)
	ids := agg.RecentTraces(0)
	stitched, multiNode, maxNodes := 0, 0, 0
	stages := map[string]int{}
	spansTotal := 0
	for _, id := range ids {
		spans, missing, err := agg.FetchTrace(id)
		if err != nil {
			return nil, err
		}
		if len(missing) > 0 {
			return nil, fmt.Errorf("trace %s: peers missing: %v", id, missing)
		}
		nodes := map[string]bool{}
		for _, sp := range spans {
			nodes[sp.Node] = true
			stages[sp.Stage]++
		}
		spansTotal += len(spans)
		if len(nodes) > maxNodes {
			maxNodes = len(nodes)
		}
		if len(nodes) >= 2 {
			multiNode++
		}
		if len(trace.BuildSpanTree(spans)) > 0 {
			stitched++
		}
	}

	// Leg 2: a traced mail crashes in the spool and must resume its
	// trace after recovery. The first manager's deliverer always fails,
	// parking the mail in the deferred lane; the second manager recovers
	// the spool and delivers, and the trace id on the recovered item
	// must be the one minted before the "crash".
	crashFS := fsim.NewFault()
	crashRec := trace.NewMessageRecorder("crash-node", 256, 1)
	qm1, err := queue.NewManager(queue.Config{
		Deliverer:     queue.DelivererFunc(func(*queue.Item) error { return fmt.Errorf("shard down") }),
		Store:         spool.New(crashFS, "queue"),
		Tracer:        crashRec,
		MaxAttempts:   1 << 20, // never bounce; the mail must still be spooled at the crash
		RetryDelay:    20 * time.Millisecond,
		MaxRetryDelay: 20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	minted := crashRec.Mint()
	preCrash := crashRec.NewSpan(minted)
	if _, err := qm1.EnqueueTraced("s@a.test", []string{"u@b.test"}, body, preCrash); err != nil {
		return nil, err
	}
	waitFor(func() bool { return qm1.Stats().Deferred > 0 }, 5*time.Second)
	qm1.Close() //nolint:errcheck // the simulated crash

	recoveredTrace := make(chan trace.Context, 1)
	qm2, err := queue.NewManager(queue.Config{
		Deliverer: queue.DelivererFunc(func(it *queue.Item) error {
			select {
			case recoveredTrace <- it.Trace:
			default:
			}
			return nil
		}),
		Store:  spool.New(crashFS, "queue"),
		Tracer: crashRec,
	})
	if err != nil {
		return nil, err
	}
	defer qm2.Close() //nolint:errcheck
	qm2.WaitIdle(5 * time.Second)
	traceSurvived := 0.0
	select {
	case got := <-recoveredTrace:
		if got.Hi == minted.Hi && got.Lo == minted.Lo {
			traceSurvived = 1
		}
	default:
	}

	// Report: the cluster stage-latency table mailtop -cluster renders,
	// then the stitching counts.
	all := agg.FetchAllSpans(len(ids))
	fmt.Fprintf(w, "%-12s %-10s %8s %10s %10s\n", "node", "stage", "spans", "mean ms", "max ms")
	for _, row := range telemetry.StageLatencies(all) {
		fmt.Fprintf(w, "%-12s %-10s %8d %10.3f %10.3f\n",
			row.Node, row.Stage, row.Count,
			1000*row.Mean().Seconds(), 1000*row.Max.Seconds())
	}
	stageNames := make([]string, 0, len(stages))
	for s := range stages {
		stageNames = append(stageNames, s)
	}
	sort.Strings(stageNames)
	fmt.Fprintf(w, "\nmails acked: %d/%d   traces: %d   multi-node: %d   max nodes/trace: %d\n",
		acked, mails, len(ids), multiNode, maxNodes)
	fmt.Fprintf(w, "stages observed: %v\n", stageNames)
	fmt.Fprintf(w, "director trace_stitched_total: %d   spool-recovered trace retained: %v\n",
		int(stitchedCounter(d)), traceSurvived == 1)

	return Metrics{
		"mails_acked":        float64(acked),
		"traces":             float64(len(ids)),
		"traces_multi_node":  float64(multiNode),
		"max_nodes_trace":    float64(maxNodes),
		"spans_total":        float64(spansTotal),
		"stitched_counter":   stitchedCounter(d),
		"stage_pretrust":     float64(stages[trace.MStagePretrust]),
		"stage_forward":      float64(stages[trace.MStageForward]),
		"stage_smtp":         float64(stages[trace.MStageSMTP]),
		"stage_queue":        float64(stages[trace.MStageQueue]),
		"stage_delivery":     float64(stages[trace.MStageDelivery]),
		"stage_store":        float64(stages[trace.MStageStore]),
		"recovered_trace_ok": traceSurvived,
	}, nil
}

// stitchedCounter reads director_trace_stitched_total off the
// director's registry, as a scraper would.
func stitchedCounter(d *director.Server) float64 {
	for _, m := range d.Registry().Snapshot() {
		if m.Name == "director_trace_stitched_total" {
			return m.Value
		}
	}
	return 0
}

// waitFor polls cond until true or timeout.
func waitFor(cond func() bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}
