package core

import (
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"repro/internal/addr"
	"repro/internal/dns"
	"repro/internal/dnsbl"
	"repro/internal/eventlog"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/smtpserver"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "spam-weather",
		Title: "Live spam weather: event-driven telemetry over both architectures",
		Paper: "§4.1's bounce mix and §7's /25 locality, measured live from the structured event stream instead of post-hoc trace analysis",
		Run:   runSpamWeather,
	})
}

// weatherZone is the experiment's DNSBL zone name.
const weatherZone = "bl6.weather.exp"

// weatherRun boots one real server over loopback TCP — policy engine and
// live DNSBLv6 UDP server included — with a telemetry tracker observing
// its event log, replays the trace, and returns the tracker's snapshot.
//
// The event log runs with the ring switched off (LevelOff): the
// telemetry rides the observer tap, which sees every event before the
// level gate, so the spam weather stays accurate however quiet the
// operator keeps the log.
func weatherRun(arch smtpserver.Architecture, conns []trace.Conn, listed map[addr.IPv4]bool) (telemetry.Snapshot, error) {
	const domain = "dept.example.edu"
	none := telemetry.Snapshot{}

	// The replayer presents each trace source from its loopback alias, so
	// the blacklist must hold the mapped addresses the server will see.
	list := dnsbl.NewList(weatherZone)
	for ip := range listed {
		list.Add(workload.LoopbackSource(ip), dnsbl.CodeZombie)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return none, err
	}
	dsrv := dns.NewServer(pc, &dnsbl.V6Handler{List: list})
	defer dsrv.Close()

	reg := metrics.NewRegistry()
	// The trace's ham half is all one-off sources; raise the tracker's
	// source cap above the trace size so repeat offenders — not the
	// overflow bucket — surface as top talkers.
	tracker := telemetry.New(telemetry.WithMaxSources(2 * len(conns)))
	tracker.Register(reg)
	events := eventlog.New(
		eventlog.WithLevel(eventlog.LevelOff),
		eventlog.WithObserver(tracker),
	)

	client := dnsbl.New(weatherZone,
		dnsbl.WithUpstreams(dsrv.Addr().String()),
		dnsbl.WithPolicy(dnsbl.CachePrefix),
		dnsbl.WithRegistry(reg),
		dnsbl.WithEventLog(events))
	defer client.Close()

	// Reputation plus a hard DNSBL reject; greylisting and rate limits
	// stay off because the closed-system replayer never retries, so they
	// would refuse ham.
	eng := policy.New(
		policy.WithReputation(policy.ReputationConfig{}),
		policy.WithDNSBLReject(1),
	)
	scorer := policy.NewScorer(
		policy.WithLists(policy.List{Name: weatherZone, Resolver: client, Weight: 1}),
		policy.WithThreshold(1),
		policy.WithScorerRegistry(reg),
	)
	pol := policy.NewServerPolicy(eng, scorer,
		policy.WithRegistry(reg), policy.WithEventLog(events))

	enqueue := func(sender string, rcpts []string, data []byte) (string, error) {
		return "sunk", nil
	}
	srv, err := smtpserver.New(enqueue,
		smtpserver.WithHostname("mx."+domain),
		smtpserver.WithArchitecture(arch),
		smtpserver.WithMaxWorkers(8),
		smtpserver.WithIdleTimeout(5*time.Second),
		smtpserver.WithValidateRcpt(func(a string) bool {
			return strings.HasPrefix(a, "user") && strings.HasSuffix(a, "@"+domain)
		}),
		smtpserver.WithPolicy(pol),
		smtpserver.WithRegistry(reg),
		smtpserver.WithEventLog(events),
	)
	if err != nil {
		return none, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return none, err
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }() //nolint:errcheck // exits on Close
	workload.RunClosed(workload.ClosedConfig{
		Addr:           ln.Addr().String(),
		Concurrency:    16,
		Timeout:        10 * time.Second,
		SourceLoopback: true,
	}, conns)
	if err := srv.Close(); err != nil {
		return none, err
	}
	<-done
	return tracker.Snapshot(), nil
}

func runSpamWeather(w io.Writer, opts Options) (Metrics, error) {
	// The policy-sweep mix at 50% spam: repeat-offender sources packed
	// into /25 blocks (high DNSBL locality) against one-off ham sources.
	n := opts.scale(3000, 400)
	conns, listed := trace.PolicySweep(opts.seed()+11, n, 0.5, "dept.example.edu", 400)

	t := metrics.NewTable("arch", "conns", "bounce", "ewma", "handoff savings",
		"dnsbl lookups", "/25 locality", "cache savings est")
	m := Metrics{}
	snaps := map[smtpserver.Architecture]telemetry.Snapshot{}
	for _, arch := range []smtpserver.Architecture{smtpserver.Vanilla, smtpserver.Hybrid} {
		s, err := weatherRun(arch, conns, listed)
		if err != nil {
			return nil, fmt.Errorf("spam-weather %s: %w", arch, err)
		}
		snaps[arch] = s
		t.AddRow(arch.String(), s.Conns, s.BounceRatio, s.BounceRatioEWMA, s.HandoffSavings,
			s.DNSBL.Lookups, s.DNSBL.PrefixLocality, s.DNSBL.CacheSavingsEst)
		key := arch.String()
		m["conns_"+key] = float64(s.Conns)
		m["bounce_"+key] = s.BounceRatio
		m["ewma_"+key] = s.BounceRatioEWMA
		m["savings_"+key] = s.HandoffSavings
		m["lookups_"+key] = float64(s.DNSBL.Lookups)
		m["locality_"+key] = s.DNSBL.PrefixLocality
		m["cachesave_"+key] = s.DNSBL.CacheSavingsEst
		m["talkers_"+key] = float64(len(s.TopTalkers))
	}
	fmt.Fprint(w, t.String())

	h := snaps[smtpserver.Hybrid]
	fmt.Fprintf(w, "\nhybrid: %.0f%% of connections never cost a worker (vanilla by construction 0%%); "+
		"DNSBL /25 locality %.0f%% ⇒ a prefix cache would cut ≈%.0f%% of upstream queries; "+
		"top talker %s with %d connections\n",
		100*h.HandoffSavings, 100*h.DNSBL.PrefixLocality, 100*h.DNSBL.CacheSavingsEst,
		topTalkerName(h), topTalkerConns(h))
	return m, nil
}

func topTalkerName(s telemetry.Snapshot) string {
	if len(s.TopTalkers) == 0 {
		return "none"
	}
	return s.TopTalkers[0].IP
}

func topTalkerConns(s telemetry.Snapshot) uint64 {
	if len(s.TopTalkers) == 0 {
		return 0
	}
	return s.TopTalkers[0].Conns
}
