// Package core ties the substrates together into the paper's system and
// exposes the experiment registry: one runnable experiment per table and
// figure of the evaluation, each regenerating the published rows/series
// from the same deterministic models the unit tests exercise.
//
// cmd/mailbench and the top-level benchmarks are thin wrappers over this
// package.
package core

import (
	"fmt"
	"io"
	"sort"
)

// Metrics holds an experiment's headline numbers, keyed by stable metric
// names (used by benchmarks and EXPERIMENTS.md).
type Metrics map[string]float64

// Options tunes experiment execution.
type Options struct {
	// Quick runs experiments at ~1/10 scale for tests and iterative
	// work; the published comparisons use full scale.
	Quick bool
	// Seed drives every generator (default 1).
	Seed uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// scale divides a count by 10 under Quick, with a floor.
func (o Options) scale(full, floor int) int {
	if !o.Quick {
		return full
	}
	n := full / 10
	if n < floor {
		n = floor
	}
	return n
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the registry key (e.g. "fig8").
	ID string
	// Title is a one-line description.
	Title string
	// Paper states the published result the run should reproduce.
	Paper string
	// Run executes the experiment, writing its table to w.
	Run func(w io.Writer, opts Options) (Metrics, error)
}

// registry is populated by the exp_*.go files' init-free registration.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns every registered experiment in a stable order:
// paper order (the order of registration in experiments.go).
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns every experiment id, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment in order, writing each section to w.
// It returns per-experiment metrics.
func RunAll(w io.Writer, opts Options) (map[string]Metrics, error) {
	out := make(map[string]Metrics, len(registry))
	for _, e := range Experiments() {
		fmt.Fprintf(w, "\n=== %s — %s ===\n", e.ID, e.Title)
		fmt.Fprintf(w, "paper: %s\n\n", e.Paper)
		m, err := e.Run(w, opts)
		if err != nil {
			return out, fmt.Errorf("core: experiment %s: %w", e.ID, err)
		}
		out[e.ID] = m
	}
	return out, nil
}
