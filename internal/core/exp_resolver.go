package core

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/dns"
	"repro/internal/dnsbl"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "resolver-resilience",
		Title: "Accept-path DNSBL lookup latency under packet loss: seed vs pipelined resolver",
		Paper: "§4.3/§5: DNSBL queries sit on the accept path, so a lost UDP packet must not stall a worker for the full timeout",
		Run:   runResolverResilience,
	})
}

// resolverStallMs is the accept-path stall threshold: a lookup slower
// than this has visibly held an SMTP worker (the paper's §4.3 complaint
// is queries over 100 ms).
const resolverStallMs = 100

// runResolverResilience replays a sinkhole connection trace against a
// live DNSBLv6 server pair whose response path drops 5% of packets, once
// through the seed transport (one socket per query, single send, full
// timeout on loss) and once through the production resolver (shared
// pipelined sockets, 30 ms attempt timeout with retries, hedging to the
// replica, serve-stale) — for each of the three cache policies.
func runResolverResilience(w io.Writer, opts Options) (Metrics, error) {
	const lossRate = 0.05
	sink := trace.NewSinkhole(trace.SinkholeConfig{
		Seed:        opts.seed(),
		Connections: opts.scale(3000, 300),
		Prefixes:    opts.scale(400, 40),
	})
	conns := sink.Generate()

	// Two replica servers sharing the ground-truth list, each behind its
	// own deterministic 5%-loss fault wrapper.
	list := dnsbl.NewList("bl6.exp")
	for _, ip := range sink.CBLPopulation() {
		list.Add(ip, dnsbl.CodeZombie)
	}
	servers := make([]string, 0, 2)
	for i := 0; i < 2; i++ {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		fc := dns.NewFaultConn(pc, dns.FaultConfig{Loss: lossRate, Seed: opts.seed() + uint64(i)})
		srv := dns.NewServer(fc, &dnsbl.V6Handler{List: list})
		defer srv.Close()
		servers = append(servers, srv.Addr().String())
	}

	t := metrics.NewTable("policy", "transport", "p50 (ms)", "p99 (ms)", "max (ms)", "stalls >100ms", "errors")
	m := Metrics{}
	var totalSeedStalls, totalResilientStalls float64
	for _, pol := range []dnsbl.CachePolicy{dnsbl.CacheNone, dnsbl.CacheIP, dnsbl.CachePrefix} {
		for _, kind := range []string{"seed", "resilient"} {
			client, cleanup, err := resolverClient(kind, pol, servers)
			if err != nil {
				return nil, err
			}
			s := metrics.NewSample(len(conns))
			stalls, errors := 0, 0
			for i := range conns {
				start := time.Now()
				_, lerr := client.Lookup(context.Background(), conns[i].ClientIP)
				ms := float64(time.Since(start)) / float64(time.Millisecond)
				s.Observe(ms)
				if ms > resolverStallMs {
					stalls++
				}
				if lerr != nil {
					errors++
				}
			}
			cleanup()
			key := fmt.Sprintf("%s_%s", kind, pol)
			m["p50_"+key] = s.Quantile(0.5)
			m["p99_"+key] = s.Quantile(0.99)
			m["stalls_"+key] = float64(stalls)
			m["errors_"+key] = float64(errors)
			if kind == "seed" {
				totalSeedStalls += float64(stalls)
			} else {
				totalResilientStalls += float64(stalls)
			}
			t.AddRow(pol.String(), kind, s.Quantile(0.5), s.Quantile(0.99), s.Max(), stalls, errors)
		}
	}
	m["stalls_seed"] = totalSeedStalls
	m["stalls_resilient"] = totalResilientStalls
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "\nunder %.0f%% loss the seed transport stalled the accept path %.0f times "+
		"(each a full %dms timeout); the pipelined resolver %.0f times\n",
		100*lossRate, totalSeedStalls, seedTimeout/time.Millisecond, totalResilientStalls)
	return m, nil
}

// seedTimeout is the seed transport's single-shot query timeout: every
// lost response costs the worker the whole window.
const seedTimeout = 120 * time.Millisecond

// resolverClient builds the lookup client for one arm of the comparison.
func resolverClient(kind string, pol dnsbl.CachePolicy, servers []string) (*dnsbl.Client, func(), error) {
	if kind == "seed" {
		tr := &dns.UDPTransport{Server: servers[0], Timeout: seedTimeout}
		c := dnsbl.New("bl6.exp", dnsbl.WithTransport(tr), dnsbl.WithPolicy(pol))
		return c, func() {}, nil
	}
	// The production resolver: shared pipelined sockets over both
	// replicas, loss detected at 30 ms and retried, hedged to the replica
	// at 20 ms, expired bitmaps served while the blacklist is down.
	p, err := dns.NewPipelined(servers,
		dns.WithAttemptTimeout(30*time.Millisecond),
		dns.WithAttempts(3),
		dns.WithBackoff(5*time.Millisecond),
		dns.WithHedgeDelay(20*time.Millisecond),
		dns.WithQueryTimeout(2*time.Second))
	if err != nil {
		return nil, nil, err
	}
	c := dnsbl.New("bl6.exp",
		dnsbl.WithTransport(p),
		dnsbl.WithPolicy(pol),
		dnsbl.WithStale(time.Hour))
	return c, func() { p.Close() }, nil
}
