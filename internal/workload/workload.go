// Package workload implements the paper's two load generators (Table 1):
//
//   - Client program 1 — the closed-system model: a configurable number
//     of concurrent connection slots, each replaying trace connections
//     back-to-back (optionally with think time). Throughput is governed
//     by concurrency, as in Schroeder et al. (paper ref [24]).
//
//   - Client program 2 — the open-system model: new connections are
//     initiated at a configurable rate regardless of completions, which
//     is what exposes the DNSBL-lookup bottleneck in Figure 14.
//
// Both replay trace.Conn records against a real SMTP server address.
package workload

import (
	"errors"
	"strings"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/metrics"
	"repro/internal/smtp"
	"repro/internal/trace"
)

// Result summarizes one load-generation run.
type Result struct {
	// GoodMails is the number of completed DATA transactions.
	GoodMails int64
	// BounceConns is the number of connections where every recipient was
	// rejected.
	BounceConns int64
	// Unfinished is the number of deliberately abandoned connections.
	Unfinished int64
	// Rejected is the number of connections refused at accept (DNSBL).
	Rejected int64
	// Errors is the number of connections that failed unexpectedly.
	Errors int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Latency samples per-connection completion time in seconds.
	Latency *metrics.Sample
}

// Goodput returns completed mails per second of wall-clock time.
func (r Result) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.GoodMails) / r.Elapsed.Seconds()
}

// bodyFor builds a deterministic message body of the trace-specified
// size.
func bodyFor(c *trace.Conn) []byte {
	size := c.SizeBytes
	if size <= 0 {
		size = 512
	}
	header := "From: " + c.Sender + "\r\nSubject: trace replay\r\n\r\n"
	if size < len(header)+2 {
		size = len(header) + 2
	}
	var b strings.Builder
	b.Grow(size)
	b.WriteString(header)
	const line = "The quick brown fox jumps over the lazy dog. 0123456789\r\n"
	for b.Len() < size {
		remain := size - b.Len()
		if remain >= len(line) {
			b.WriteString(line)
		} else {
			b.WriteString(line[:remain])
		}
	}
	return []byte(b.String())
}

// connOutcome classifies how one replayed connection ended.
type connOutcome int

const (
	outcomeError connOutcome = iota + 1
	outcomeRejected
	outcomeUnfinished
	outcomeBounce
	outcomeGood
)

// LoopbackSource maps a trace source IP into 127.0.0.0/8 by keeping its
// low three octets: 185.0.2.9 becomes 127.0.2.9. Linux routes the whole
// /8 to the loopback interface and lets clients bind any address in it,
// so a replayer dialing from the mapped address presents each trace
// source as a distinct peer — and sources sharing a /25 (or /24) keep
// sharing it, preserving the locality the caches and policy state key
// on. Trace IPs differing only in their first octet collide; the
// generators keep such overlaps to a handful per trace.
func LoopbackSource(ip addr.IPv4) addr.IPv4 {
	return addr.IPv4(127<<24 | uint32(ip)&0x00ffffff)
}

// replayConn performs one trace connection against the server and
// records the outcome into r under mu.
func replayConn(dest string, c *trace.Conn, local string, timeout time.Duration, r *Result, mu *sync.Mutex) {
	start := time.Now()
	outcome := runConn(dest, c, local, timeout)
	elapsed := time.Since(start)
	mu.Lock()
	defer mu.Unlock()
	switch outcome {
	case outcomeError:
		r.Errors++
	case outcomeRejected:
		r.Rejected++
	case outcomeUnfinished:
		r.Unfinished++
	case outcomeBounce:
		r.BounceConns++
	case outcomeGood:
		r.GoodMails++
		r.Latency.Observe(elapsed.Seconds())
	}
}

func runConn(dest string, c *trace.Conn, local string, timeout time.Duration) connOutcome {
	client, err := smtp.DialFrom(dest, local, timeout)
	if err != nil {
		var unexpected *smtp.UnexpectedReplyError
		if errors.As(err, &unexpected) && unexpected.Reply.Code == 554 {
			return outcomeRejected // DNSBL rejection at accept
		}
		return outcomeError
	}
	if err := client.Helo(c.Helo); err != nil {
		client.Abort()
		return outcomeError
	}
	if c.Unfinished {
		client.Abort()
		return outcomeUnfinished
	}
	rcpts := make([]string, len(c.Rcpts))
	for i, rc := range c.Rcpts {
		rcpts[i] = rc.Addr
	}
	accepted, err := client.Send(c.Sender, rcpts, bodyFor(c))
	if err != nil {
		client.Abort()
		return outcomeError
	}
	client.Quit()
	if accepted == 0 {
		return outcomeBounce
	}
	return outcomeGood
}

// ClosedConfig parameterizes the closed-system client.
type ClosedConfig struct {
	// Addr is the server's host:port.
	Addr string
	// Concurrency is the number of connection slots (Client program 1's
	// "configurable number of concurrent connections").
	Concurrency int
	// Think is the per-slot pause between connections (the Z parameter
	// of the closed-system model); zero means none.
	Think time.Duration
	// Timeout bounds each dial and protocol step.
	Timeout time.Duration
	// SourceLoopback dials each connection from LoopbackSource of its
	// trace ClientIP, so the server sees distinct per-source peers over
	// loopback (Linux; requires the target to listen on 127.0.0.1, not a
	// specific other address).
	SourceLoopback bool
}

// localFor returns the source address one connection dials from.
func localFor(sourceLoopback bool, c *trace.Conn) string {
	if !sourceLoopback {
		return ""
	}
	return LoopbackSource(c.ClientIP).String()
}

// RunClosed replays the trace through the closed-system client: each of
// the Concurrency slots takes the next unplayed connection, replays it to
// completion, optionally thinks, and repeats until the trace is drained.
func RunClosed(cfg ClosedConfig, conns []trace.Conn) Result {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	res := Result{Latency: metrics.NewSample(len(conns))}
	var mu sync.Mutex
	next := make(chan *trace.Conn)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				replayConn(cfg.Addr, c, localFor(cfg.SourceLoopback, c), cfg.Timeout, &res, &mu)
				if cfg.Think > 0 {
					time.Sleep(cfg.Think)
				}
			}
		}()
	}
	for i := range conns {
		next <- &conns[i]
	}
	close(next)
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res
}

// OpenConfig parameterizes the open-system client.
type OpenConfig struct {
	// Addr is the server's host:port.
	Addr string
	// Rate is the connection initiation rate per second; if zero, the
	// trace's own timestamps pace the run.
	Rate float64
	// Timeout bounds each dial and protocol step.
	Timeout time.Duration
	// SourceLoopback is as in ClosedConfig.
	SourceLoopback bool
}

// RunOpen replays the trace through the open-system client: connection i
// starts at its scheduled time whether or not earlier connections have
// completed (the defining property of the open model).
func RunOpen(cfg OpenConfig, conns []trace.Conn) Result {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	res := Result{Latency: metrics.NewSample(len(conns))}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := range conns {
		var due time.Duration
		if cfg.Rate > 0 {
			due = time.Duration(float64(i) / cfg.Rate * float64(time.Second))
		} else {
			due = conns[i].At
		}
		if wait := due - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(c *trace.Conn) {
			defer wg.Done()
			replayConn(cfg.Addr, c, localFor(cfg.SourceLoopback, c), cfg.Timeout, &res, &mu)
		}(&conns[i])
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res
}
