package workload

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/smtpserver"
	"repro/internal/trace"
)

// startServer boots a hybrid server accepting @d.test recipients.
func startServer(t *testing.T, opts ...smtpserver.Option) (addr string, accepted *int64, mu *sync.Mutex) {
	t.Helper()
	var n int64
	var m sync.Mutex
	enqueue := func(string, []string, []byte) (string, error) {
		m.Lock()
		n++
		m.Unlock()
		return "Q", nil
	}
	all := append([]smtpserver.Option{
		smtpserver.WithHostname("mx.test"),
		smtpserver.WithArchitecture(smtpserver.Hybrid),
		smtpserver.WithValidateRcpt(func(a string) bool {
			return strings.HasSuffix(strings.ToLower(a), "@d.test")
		}),
		smtpserver.WithMaxWorkers(8),
		smtpserver.WithIdleTimeout(5 * time.Second),
	}, opts...)
	srv, err := smtpserver.New(enqueue, all...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), &n, &m
}

// mixTrace builds a small trace with known composition.
func mixTrace() []trace.Conn {
	var conns []trace.Conn
	for i := 0; i < 10; i++ {
		conns = append(conns, trace.Conn{
			Helo:      "good.test",
			Sender:    "s@x.test",
			Rcpts:     []trace.Rcpt{{Addr: "u@d.test", Valid: true}},
			SizeBytes: 600,
		})
	}
	for i := 0; i < 4; i++ {
		conns = append(conns, trace.Conn{
			Helo:   "bad.test",
			Sender: "s@x.test",
			Rcpts:  []trace.Rcpt{{Addr: "ghost@other.test", Valid: false}},
		})
	}
	for i := 0; i < 2; i++ {
		conns = append(conns, trace.Conn{Helo: "gone.test", Unfinished: true})
	}
	return conns
}

func TestRunClosed(t *testing.T) {
	addr, accepted, mu := startServer(t)
	res := RunClosed(ClosedConfig{Addr: addr, Concurrency: 4, Timeout: 5 * time.Second}, mixTrace())
	if res.GoodMails != 10 || res.BounceConns != 4 || res.Unfinished != 2 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	mu.Lock()
	defer mu.Unlock()
	if *accepted != 10 {
		t.Fatalf("server accepted %d, want 10", *accepted)
	}
	if res.Goodput() <= 0 {
		t.Fatal("goodput should be positive")
	}
	if res.Latency.Count() != 10 {
		t.Fatalf("latency samples = %d", res.Latency.Count())
	}
}

func TestRunClosedSingleSlotSerializes(t *testing.T) {
	addr, _, _ := startServer(t)
	res := RunClosed(ClosedConfig{Addr: addr, Concurrency: 1, Timeout: 5 * time.Second}, mixTrace())
	if res.GoodMails != 10 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRunClosedThinkTime(t *testing.T) {
	addr, _, _ := startServer(t)
	conns := mixTrace()[:4]
	start := time.Now()
	res := RunClosed(ClosedConfig{Addr: addr, Concurrency: 1, Think: 30 * time.Millisecond, Timeout: 5 * time.Second}, conns)
	if res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	if elapsed := time.Since(start); elapsed < 4*30*time.Millisecond {
		t.Fatalf("think time not honoured: %v", elapsed)
	}
}

func TestRunOpenAtRate(t *testing.T) {
	addr, _, _ := startServer(t)
	conns := mixTrace()
	res := RunOpen(OpenConfig{Addr: addr, Rate: 200, Timeout: 5 * time.Second}, conns)
	if res.GoodMails != 10 || res.BounceConns != 4 || res.Unfinished != 2 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	// 16 connections at 200/s must take at least 75ms.
	if res.Elapsed < 75*time.Millisecond {
		t.Fatalf("open pacing too fast: %v", res.Elapsed)
	}
}

func TestRunOpenTraceTimestamps(t *testing.T) {
	addr, _, _ := startServer(t)
	conns := mixTrace()[:3]
	for i := range conns {
		conns[i].At = time.Duration(i) * 40 * time.Millisecond
	}
	start := time.Now()
	res := RunOpen(OpenConfig{Addr: addr, Timeout: 5 * time.Second}, conns)
	if res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	if time.Since(start) < 80*time.Millisecond {
		t.Fatal("trace timestamps not honoured")
	}
}

func TestRejectedCounted(t *testing.T) {
	addr, _, _ := startServer(t,
		smtpserver.WithCheckClient(func(string) bool { return true }))
	res := RunClosed(ClosedConfig{Addr: addr, Concurrency: 2, Timeout: 5 * time.Second}, mixTrace()[:4])
	if res.Rejected != 4 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestErrorsCountedOnDeadServer(t *testing.T) {
	// Dial a port nobody listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	res := RunClosed(ClosedConfig{Addr: dead, Concurrency: 2, Timeout: 200 * time.Millisecond}, mixTrace()[:3])
	if res.Errors != 3 {
		t.Fatalf("errors = %d, want 3", res.Errors)
	}
}

func TestBodyForRespectsSize(t *testing.T) {
	c := &trace.Conn{Sender: "s@x.test", SizeBytes: 5000}
	body := bodyFor(c)
	if len(body) != 5000 {
		t.Fatalf("body = %d bytes, want 5000", len(body))
	}
	small := bodyFor(&trace.Conn{Sender: "s@x.test", SizeBytes: 0})
	if len(small) == 0 {
		t.Fatal("zero-size conn should still get a body")
	}
}

func TestGoodputZeroElapsed(t *testing.T) {
	if (Result{GoodMails: 5}).Goodput() != 0 {
		t.Fatal("zero elapsed should give zero goodput")
	}
}
