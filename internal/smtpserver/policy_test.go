package smtpserver

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/dnsbl"
	"repro/internal/policy"
	"repro/internal/smtp"
)

// listedAll is a stub DNSBL resolver that lists every IP.
type listedAll struct{}

func (listedAll) Lookup(context.Context, addr.IPv4) (dnsbl.Result, error) {
	return dnsbl.Result{Listed: true, Code: dnsbl.CodeSpamSrc}, nil
}

// rcptCode runs one RCPT and returns the reply code regardless of
// accept/override.
func rcptCode(t *testing.T, c *smtp.Client, rcpt string) int {
	t.Helper()
	r, err := c.Rcpt(rcpt)
	if err != nil {
		var unexpected *smtp.UnexpectedReplyError
		if errors.As(err, &unexpected) {
			return unexpected.Reply.Code
		}
		t.Fatal(err)
	}
	return r.Code
}

// TestGreylistTempfailThenAccept is the ISSUE's integration scenario: a
// real Hybrid server tempfails a first-contact sender with 450, never
// costing a worker, then accepts the retry after the minimum retry
// window — exactly how a legitimate MTA behaves and a spam cannon does
// not.
func TestGreylistTempfailThenAccept(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		const minRetry = 60 * time.Millisecond
		eng := policy.New(policy.WithGreylist(policy.GreyConfig{MinRetry: minRetry}))
		env := startServer(t, arch, WithPolicy(policy.NewServerPolicy(eng, nil)))

		// First attempt: greylisted with 450; the recipient is valid, so
		// only the greylist stands between the client and trust.
		c := dial(t, env)
		c.Helo("h")
		if err := c.Mail("sender@remote.test"); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if code := rcptCode(t, c, "a@valid.test"); code != 450 {
			t.Fatalf("first rcpt = %d, want 450", code)
		}
		c.Quit()
		waitStats(t, env.srv, func(s Stats) bool { return s.Greylisted == 1 })
		if arch == Hybrid && env.srv.Stats().Handoffs != 0 {
			t.Fatal("greylisted connection was delegated to a worker")
		}

		// Retry inside the window is still refused.
		if time.Since(start) < minRetry {
			c = dial(t, env)
			c.Helo("h")
			c.Mail("sender@remote.test")
			if code := rcptCode(t, c, "a@valid.test"); code != 450 {
				t.Fatalf("early retry = %d, want 450", code)
			}
			c.Quit()
		}

		// Retry after the window delivers.
		time.Sleep(minRetry - time.Since(start) + 10*time.Millisecond)
		c = dial(t, env)
		c.Helo("h")
		n, err := c.Send("sender@remote.test", []string{"a@valid.test"}, []byte("m"))
		if err != nil || n != 1 {
			t.Fatalf("retry send = %d, %v", n, err)
		}
		c.Quit()
		waitStats(t, env.srv, func(s Stats) bool { return s.MailsAccepted == 1 })
		if arch == Hybrid && env.srv.Stats().Handoffs != 1 {
			t.Fatalf("handoffs = %d, want 1", env.srv.Stats().Handoffs)
		}
	})
}

// TestPolicyConnectReject drives a DNSBL-listed client against both
// architectures: the connection draws 554 before the banner, and under
// Hybrid it never reaches the worker pool.
func TestPolicyConnectReject(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		eng := policy.New(policy.WithDNSBLReject(1))
		scorer := policy.NewScorer(policy.WithLists(
			policy.List{Name: "bl.test", Resolver: listedAll{}, Weight: 1},
		))
		env := startServer(t, arch, WithPolicy(policy.NewServerPolicy(eng, scorer)))
		nc, err := net.Dial("tcp", env.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		reply, err := smtp.NewConn(nc).ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if reply.Code != 554 {
			t.Fatalf("listed client banner = %d, want 554", reply.Code)
		}
		waitStats(t, env.srv, func(s Stats) bool { return s.PolicyRejected == 1 })
		if arch == Hybrid && env.srv.Stats().Handoffs != 0 {
			t.Fatal("rejected connection was delegated")
		}
	})
}

// TestPolicyRateLimitTempfail exhausts a one-connection burst: the
// second concurrent connection from the same IP draws 421.
func TestPolicyRateLimitTempfail(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		eng := policy.New(policy.WithRate(policy.RateConfig{ConnPerSec: 0.001, ConnBurst: 1}))
		env := startServer(t, arch, WithPolicy(policy.NewServerPolicy(eng, nil)))

		// First connection is admitted and delivers.
		c := dial(t, env)
		c.Helo("h")
		if _, err := c.Send("s@x.test", []string{"a@valid.test"}, []byte("m")); err != nil {
			t.Fatal(err)
		}
		c.Quit()
		waitStats(t, env.srv, func(s Stats) bool { return s.MailsAccepted == 1 })

		// Second connection from the same IP exceeds the burst.
		nc, err := net.Dial("tcp", env.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		reply, err := smtp.NewConn(nc).ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if reply.Code != 421 {
			t.Fatalf("over-rate banner = %d, want 421", reply.Code)
		}
		waitStats(t, env.srv, func(s Stats) bool { return s.PolicyTempfail == 1 })
	})
}

// TestPolicyBounceFeedsReputation verifies the reputation loop
// end-to-end: enough bounce connections condemn the source IP, and a
// later connection is refused at connect time with no DNSBL evidence at
// all.
func TestPolicyBounceFeedsReputation(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		eng := policy.New(policy.WithReputation(policy.ReputationConfig{
			HalfLife:      time.Hour,
			TempfailScore: 3,   // one bounce scores ~1.95 (with the /25 echo), two ~3.9
			RejectScore:   100, // keep the verdict at tempfail for the test
		}))
		env := startServer(t, arch, WithPolicy(policy.NewServerPolicy(eng, nil)))

		// Two bounce connections: each records rejected RCPTs plus a
		// completed bounce. (Weights: 2 bounces ×1.0 + 2 rejects ×0.3.)
		for i := 0; i < 2; i++ {
			c := dial(t, env)
			c.Helo("h")
			c.Send("spam@bot.test", []string{"guess@wrong.test"}, []byte("x"))
			c.Quit()
		}
		waitStats(t, env.srv, func(s Stats) bool { return s.PreTrustClosed == 2 })
		waitStats(t, env.srv, func(s Stats) bool { return s.RcptRejected == 2 })

		// The next connection is refused from history alone.
		nc, err := net.Dial("tcp", env.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		reply, err := smtp.NewConn(nc).ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if reply.Code != 421 {
			t.Fatalf("condemned client banner = %d, want 421", reply.Code)
		}
		waitStats(t, env.srv, func(s Stats) bool { return s.PolicyTempfail == 1 })
	})
}
