package smtpserver

import (
	"time"

	"repro/internal/eventlog"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Enqueue hands an accepted mail to the queue manager and returns its
// queue id. It is the one required collaborator of a Server — everything
// else is optional configuration.
type Enqueue func(sender string, rcpts []string, data []byte) (string, error)

// EnqueueTraced is Enqueue carrying the mail's message trace context,
// so the queue's spans (queue wait, delivery, store commit) attach to
// the same trace as the SMTP dialog that accepted the mail.
type EnqueueTraced func(sender string, rcpts []string, data []byte, tc trace.Context) (string, error)

// settings is the resolved configuration New builds from its options:
// the legacy Config plus the observability wiring that never existed on
// the Config struct.
type settings struct {
	Config
	registry      *metrics.Registry
	spans         *trace.SpanRecorder
	events        *eventlog.Log
	mtrace        *trace.MessageRecorder
	enqueueTraced EnqueueTraced
}

// Option configures a Server (see New).
type Option func(*settings)

// WithHostname sets the banner hostname (default "mail.example.org").
func WithHostname(h string) Option {
	return func(s *settings) { s.Hostname = h }
}

// WithArchitecture selects the concurrency model (default Hybrid, the
// paper's contribution).
func WithArchitecture(a Architecture) Option {
	return func(s *settings) { s.Arch = a }
}

// WithMaxWorkers sets the smtpd pool size (default 100, like stock
// postfix).
func WithMaxWorkers(n int) Option {
	return func(s *settings) { s.MaxWorkers = n }
}

// WithTaskDepthPerWorker sizes the hybrid handoff queue per worker
// (default ≈28, the §5.3 estimate of tasks per 64 KB socket buffer).
func WithTaskDepthPerWorker(n int) Option {
	return func(s *settings) { s.TaskDepthPerWorker = n }
}

// WithValidateRcpt sets the access-database hook; nil accepts
// everything.
func WithValidateRcpt(f func(addr string) bool) Option {
	return func(s *settings) { s.ValidateRcpt = f }
}

// WithValidateRcptBytes sets the allocation-free access-database hook,
// preferred over WithValidateRcpt when both are set: the session passes
// recipient addresses as views into the command line, so validation adds
// no per-RCPT heap traffic. The callee must not retain the slice.
func WithValidateRcptBytes(f func(addr []byte) bool) Option {
	return func(s *settings) { s.ValidateRcptBytes = f }
}

// WithAcceptShards splits the accept path into n independent shards —
// one accept loop and worker ring each, over SO_REUSEPORT listeners
// where the platform supports it (see Config.AcceptShards). 0 or 1 keeps
// the single classic accept loop.
func WithAcceptShards(n int) Option {
	return func(s *settings) { s.AcceptShards = n }
}

// WithCheckClient sets the bare DNSBL hook: return true to reject the
// connecting IP with 554 at accept time.
func WithCheckClient(f func(ip string) bool) Option {
	return func(s *settings) { s.CheckClient = f }
}

// WithPolicy installs the pre-trust policy engine, consulted at connect
// time and on each MAIL FROM / RCPT TO.
func WithPolicy(p *policy.ServerPolicy) Option {
	return func(s *settings) { s.Policy = p }
}

// WithMaxRcpts bounds recipients per transaction (see smtp.Config).
func WithMaxRcpts(n int) Option {
	return func(s *settings) { s.MaxRcpts = n }
}

// WithMaxMessageBytes bounds message size (see smtp.Config).
func WithMaxMessageBytes(n int) Option {
	return func(s *settings) { s.MaxMessageBytes = n }
}

// WithIdleTimeout bounds each wait for a client command (default 60s).
func WithIdleTimeout(d time.Duration) Option {
	return func(s *settings) { s.IdleTimeout = d }
}

// WithRegistry directs the server's metrics — stage histograms and every
// counter behind Stats() — into r, typically metrics.Default() wired to
// an admin endpoint. By default each server uses a private registry, so
// tests and side-by-side experiments never share series.
func WithRegistry(r *metrics.Registry) Option {
	return func(s *settings) { s.registry = r }
}

// WithSpans emits per-connection stage spans (connection id, stage
// enter/exit, verdict) into rec, from which cmd/traceinfo can
// reconstruct a single connection's life. Nil disables span emission
// (the default).
func WithSpans(rec *trace.SpanRecorder) Option {
	return func(s *settings) { s.spans = rec }
}

// WithMessageTracer enables message-lifecycle tracing: the server
// advertises the XTRACE extension on EHLO, adopts trace contexts from
// incoming XTRACE MAIL parameters (a director upstream), mints fresh
// ones for edge connections rec samples in, and records an "smtp" span
// per accepted mail into rec. Nil disables (the default); sampled-out
// connections carry the zero context and cost no allocations.
func WithMessageTracer(rec *trace.MessageRecorder) Option {
	return func(s *settings) { s.mtrace = rec }
}

// WithEnqueueTraced installs the trace-aware enqueue hook, preferred
// over the plain Enqueue when both are set, so the queue receives each
// mail's trace context alongside its envelope.
func WithEnqueueTraced(f EnqueueTraced) Option {
	return func(s *settings) { s.enqueueTraced = f }
}

// WithEventLog emits structured events into log: one smtpd.conn event
// per finished connection (outcome, worker/bounce flags, source) and an
// smtpd.policy event per verdict — the stream internal/telemetry derives
// the live spam weather from. Event conn ids are the span connection
// ids, so a connection's events and spans correlate. Nil disables
// emission (the default).
func WithEventLog(log *eventlog.Log) Option {
	return func(s *settings) { s.events = log }
}
