// Package smtpserver implements the mail server's network front end in
// both of the paper's architectures:
//
//   - Vanilla (§2, Figure 6): the postfix process-per-connection model.
//     A fixed pool of MaxWorkers smtpd workers each owns one connection
//     at a time and runs the whole SMTP dialog, including the bounce
//     connections that never deliver anything.
//
//   - Hybrid "fork-after-trust" (§5, Figure 7): a cheap front end drives
//     the dialog only until the first *valid* RCPT TO. Bounce and
//     unfinished connections (§4.1) die in the front end without ever
//     occupying an smtpd worker; trusted connections are delegated over
//     a bounded task queue — the analogue of the 64 KB UNIX-domain
//     socket whose finite capacity throttles the master (§5.3).
//
// Go's runtime schedules goroutines rather than forking processes, so
// the *costs* the paper measures are reproduced by internal/simmail; this
// package reproduces the *behaviour*: where in the dialog resources are
// committed, what a bounce costs structurally, and how backpressure
// propagates. It runs over real TCP and is what cmd/smtpd serves.
package smtpserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/costmodel"
	"repro/internal/eventlog"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/smtp"
	"repro/internal/trace"
)

// The pipeline stages every connection is timed under, recorded as
// smtpd_stage_seconds{arch,stage} histograms and (when a span recorder
// is attached) as per-connection span events. The catalogue is part of
// the observability API: DESIGN.md documents it and experiments read
// histograms back by these names.
const (
	// StageAccept is the accept loop's dispatch time for one connection:
	// from Accept returning to the connection being handed off toward
	// its handler (tracking, DNSBL accept-time check, dispatch).
	StageAccept = "accept"
	// StagePolicy is the connect-time policy verdict, DNSBL scan
	// included.
	StagePolicy = "policy"
	// StagePreTrust is the hybrid front end's share of the dialog: from
	// banner write until the connection is trusted or finished.
	StagePreTrust = "pretrust"
	// StageHandoffWait is the time a connection waits for an smtpd
	// worker: hybrid, from task enqueue to worker pickup (the §5.3
	// socket-buffer queue); vanilla, from accept-loop dispatch to worker
	// pickup — master blocked on the process limit.
	StageHandoffWait = "handoff_wait"
	// StageDialog is the worker's share of the dialog: the whole session
	// for vanilla, the post-trust remainder for hybrid.
	StageDialog = "dialog"
)

// Stages lists the stage names in pipeline order.
func Stages() []string {
	return []string{StageAccept, StagePolicy, StagePreTrust, StageHandoffWait, StageDialog}
}

// StageMetric is the name of the per-stage latency histogram family.
const StageMetric = "smtpd_stage_seconds"

// Architecture selects the concurrency model.
type Architecture int

// The two architectures the paper compares.
const (
	// Vanilla is the process-per-connection model (Figure 6).
	Vanilla Architecture = iota + 1
	// Hybrid is fork-after-trust (Figure 7).
	Hybrid
)

// String names the architecture for reports.
func (a Architecture) String() string {
	switch a {
	case Vanilla:
		return "vanilla"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// Config parameterizes a Server.
type Config struct {
	// Hostname appears in the banner.
	Hostname string
	// Arch selects the concurrency architecture.
	Arch Architecture
	// MaxWorkers is the smtpd pool size (the paper's process limit;
	// default 100 like stock postfix).
	MaxWorkers int
	// TaskDepthPerWorker sizes the hybrid handoff queue per worker.
	// Default ≈28, the §5.3 estimate of tasks per 64 KB socket buffer at
	// 7 recipients/mail.
	TaskDepthPerWorker int
	// ValidateRcpt is the access-database hook; nil accepts everything.
	ValidateRcpt func(addr string) bool
	// ValidateRcptBytes is the allocation-free form of ValidateRcpt,
	// preferred by the session when both are set (see smtp.Config).
	ValidateRcptBytes func(addr []byte) bool
	// CheckClient, if non-nil, is the DNSBL hook: it returns true when
	// the connecting IP is blacklisted and the connection should be
	// rejected with 554 at accept time.
	CheckClient func(ip string) bool
	// Policy, if non-nil, is the pre-trust policy engine, consulted at
	// connect time and on each MAIL FROM / RCPT TO. The check runs where
	// the corresponding postfix code would: inside the worker for
	// Vanilla, inside the master's front end for Hybrid — so a
	// policy-rejected connection never costs a Hybrid worker, extending
	// the paper's fork-after-trust thesis from bounces to policy
	// rejects.
	Policy *policy.ServerPolicy
	// Enqueue hands an accepted mail to the queue manager and returns
	// its queue id. Required.
	Enqueue func(sender string, rcpts []string, data []byte) (string, error)
	// MaxRcpts and MaxMessageBytes bound transactions (see smtp.Config).
	MaxRcpts        int
	MaxMessageBytes int
	// IdleTimeout bounds each wait for a client command (default 60s).
	IdleTimeout time.Duration
	// AcceptShards splits the accept path across n independent shards,
	// each with its own accept loop and worker ring, so a single accept
	// loop stops being the ceiling on connection turnover (the reuseport
	// pattern of modern event-driven servers). ListenAndServe opens n
	// SO_REUSEPORT listeners where the platform supports it and otherwise
	// runs n accept goroutines on one listener. 0 or 1 keeps the single
	// classic accept loop. MaxWorkers is divided across the shards.
	AcceptShards int
}

// Stats counts server activity. All fields are monotone counters except
// where noted.
type Stats struct {
	Connections     int64 // accepted connections
	Blacklisted     int64 // rejected at accept by the DNSBL hook
	PreTrustClosed  int64 // connections that ended before any valid RCPT
	Handoffs        int64 // hybrid: delegations to the worker pool
	MailsAccepted   int64 // DATA transactions queued
	RcptRejected    int64 // 550 replies (bounce recipients)
	SessionsServed  int64 // connections fully completed
	EnqueueFailures int64 // queue-full 452s
	PolicyRejected  int64 // connections 554-rejected by the policy engine
	PolicyTempfail  int64 // connections 421-tempfailed by the policy engine
	Greylisted      int64 // MAIL/RCPT attempts 450-tempfailed by policy
}

// Server is a runnable mail server front end.
type Server struct {
	cfg    Config
	reg    *metrics.Registry
	spans  *trace.SpanRecorder
	events *eventlog.Log
	arch   string

	// Message-lifecycle tracing (nil mtrace disables): the server
	// advertises XTRACE via the precomputed ehlo reply, adopts incoming
	// contexts, and mints fresh ones for sampled edge connections.
	mtrace        *trace.MessageRecorder
	enqueueTraced EnqueueTraced
	ehlo          *smtp.Reply

	mu     sync.Mutex
	lns    []net.Listener
	shards []*shard
	conns  map[net.Conn]bool
	closed bool

	// frontWG tracks hybrid front ends; workerWG tracks the smtpd pools.
	// Close must wait for fronts before closing the task queues the
	// workers drain, so the two lifetimes are tracked separately.
	frontWG  sync.WaitGroup
	workerWG sync.WaitGroup

	// Counters are vended by the registry under their documented names;
	// Stats() reads them back, so the table API and /metrics agree by
	// construction.
	connections     *metrics.Counter
	blacklisted     *metrics.Counter
	preTrustClosed  *metrics.Counter
	handoffs        *metrics.Counter
	mailsAccepted   *metrics.Counter
	rcptRejected    *metrics.Counter
	sessionsServed  *metrics.Counter
	enqueueFailures *metrics.Counter
	policyRejected  *metrics.Counter
	policyTempfail  *metrics.Counter
	greylisted      *metrics.Counter

	stage map[string]*metrics.Histogram
}

// task is one delegated connection: exactly the state §5.3 transfers over
// the UNIX-domain socket (client identity, sender, recipients — carried
// inside the live Session — plus the connection itself), annotated with
// the handoff instant and span id the instrumentation needs.
type task struct {
	nc   net.Conn
	c    *smtp.Conn
	sess *smtp.Session
	id   uint64
	at   time.Time     // when the front end enqueued the task
	tc   trace.Context // the connection's minted message-trace context
}

// accepted is one connection in flight from the accept loop to a
// vanilla worker.
type accepted struct {
	nc net.Conn
	id uint64
	at time.Time // when the accept loop accepted the connection
}

// shard is one slice of the accept path: an accept loop plus the worker
// ring it feeds. A single-shard server (the default) is exactly the old
// architecture; with AcceptShards > 1 each shard runs independently so
// accept dispatch, handoff queues, and worker wakeups never contend
// across shards.
type shard struct {
	tasks chan *task    // hybrid handoff queue (nil under vanilla)
	conns chan accepted // vanilla dispatch channel (nil under hybrid)
}

// New returns an unstarted server delivering accepted mail through
// enqueue, configured by functional options. The default server is the
// paper's hybrid architecture with 100 workers and a private metrics
// registry; see the With* options, in particular WithRegistry to expose
// the server on a shared /metrics endpoint and WithSpans for
// per-connection stage spans.
func New(enqueue Enqueue, opts ...Option) (*Server, error) {
	st := settings{}
	st.Enqueue = enqueue
	st.Arch = Hybrid
	for _, o := range opts {
		o(&st)
	}
	return newServer(st)
}

// newServer validates, defaults, and wires the instrumentation.
func newServer(st settings) (*Server, error) {
	cfg := st.Config
	if cfg.Enqueue == nil {
		return nil, errors.New("smtpserver: Enqueue is required")
	}
	if cfg.Arch != Vanilla && cfg.Arch != Hybrid {
		return nil, fmt.Errorf("smtpserver: unknown architecture %d", cfg.Arch)
	}
	if cfg.Hostname == "" {
		cfg.Hostname = "mail.example.org"
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = 100
	}
	if cfg.TaskDepthPerWorker <= 0 {
		cfg.TaskDepthPerWorker = costmodel.TasksPerSocketBuffer(7)
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	reg := st.registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	arch := cfg.Arch.String()
	s := &Server{
		cfg:           cfg,
		reg:           reg,
		spans:         st.spans,
		events:        st.events,
		arch:          arch,
		mtrace:        st.mtrace,
		enqueueTraced: st.enqueueTraced,
		conns:         make(map[net.Conn]bool),

		connections:     reg.Counter("smtpd_connections_total", "arch", arch),
		blacklisted:     reg.Counter("smtpd_blacklisted_total", "arch", arch),
		preTrustClosed:  reg.Counter("smtpd_pretrust_closed_total", "arch", arch),
		handoffs:        reg.Counter("smtpd_handoffs_total", "arch", arch),
		mailsAccepted:   reg.Counter("smtpd_mails_accepted_total", "arch", arch),
		rcptRejected:    reg.Counter("smtpd_rcpt_rejected_total", "arch", arch),
		sessionsServed:  reg.Counter("smtpd_sessions_served_total", "arch", arch),
		enqueueFailures: reg.Counter("smtpd_enqueue_failures_total", "arch", arch),
		policyRejected:  reg.Counter("smtpd_policy_rejected_total", "arch", arch),
		policyTempfail:  reg.Counter("smtpd_policy_tempfail_total", "arch", arch),
		greylisted:      reg.Counter("smtpd_greylisted_total", "arch", arch),

		stage: make(map[string]*metrics.Histogram, 5),
	}
	for _, name := range Stages() {
		s.stage[name] = reg.Histogram(StageMetric, metrics.LatencyBounds(), "arch", arch, "stage", name)
	}
	if s.mtrace != nil {
		// One preformatted multiline EHLO reply for the server's
		// lifetime; advertising XTRACE costs nothing per connection.
		ehlo := smtp.EhloReply(cfg.Hostname, "XTRACE")
		s.ehlo = &ehlo
	}
	return s, nil
}

// Registry returns the registry holding the server's metrics.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// connID allocates a span connection id, or 0 when spans are off.
func (s *Server) connID() uint64 {
	if s.spans == nil {
		return 0
	}
	return s.spans.ConnID()
}

// observeStage records one completed stage into the stage histogram and,
// when spans are on, as a span event ending now.
func (s *Server) observeStage(stage string, id uint64, start time.Time, note string) {
	end := time.Now()
	s.stage[stage].Observe(end.Sub(start).Seconds())
	if s.spans != nil && id != 0 {
		s.spans.Record(trace.SpanEvent{
			Conn:  id,
			Stage: stage,
			Start: s.spans.Offset(start),
			End:   s.spans.Offset(end),
			Note:  note,
		})
	}
}

// logConn emits the one smtpd.conn event a connection gets when it
// finishes: the record internal/telemetry folds into the live spam
// weather. worker reports whether the connection ever occupied an smtpd
// worker (always true under vanilla; only on handoff under hybrid), and
// bounce whether it ended without delivering mail — the §4.1 signal.
func (s *Server) logConn(id uint64, ip, outcome string, worker, bounce bool) {
	s.events.Info("smtpd.conn", id,
		eventlog.Str("ip", ip),
		eventlog.Str("outcome", outcome),
		eventlog.Bool("worker", worker),
		eventlog.Bool("bounce", bounce),
		eventlog.Str("arch", s.arch),
	)
}

// logPolicy emits an smtpd.policy event for one verdict: Debug for
// allows (high-volume; sample them), Info for rejects and tempfails.
func (s *Server) logPolicy(id uint64, ip, phase string, d policy.Decision, took time.Duration) {
	lv := eventlog.LevelInfo
	if d.Verdict == policy.Allow {
		lv = eventlog.LevelDebug
	}
	s.events.Log(lv, "smtpd.policy", id,
		eventlog.Str("ip", ip),
		eventlog.Str("phase", phase),
		eventlog.Str("verdict", d.Verdict.String()),
		eventlog.Str("checker", d.Checker),
		eventlog.Str("reason", d.Reason),
		eventlog.Dur("took", took),
	)
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Connections:     s.connections.Value(),
		Blacklisted:     s.blacklisted.Value(),
		PreTrustClosed:  s.preTrustClosed.Value(),
		Handoffs:        s.handoffs.Value(),
		MailsAccepted:   s.mailsAccepted.Value(),
		RcptRejected:    s.rcptRejected.Value(),
		SessionsServed:  s.sessionsServed.Value(),
		EnqueueFailures: s.enqueueFailures.Value(),
		PolicyRejected:  s.policyRejected.Value(),
		PolicyTempfail:  s.policyTempfail.Value(),
		Greylisted:      s.greylisted.Value(),
	}
}

// Serve accepts connections on ln until Close. It blocks; run it in a
// goroutine. The listener is owned by the server after this call. With
// AcceptShards > 1 the single listener is shared by that many accept
// goroutines, each feeding its own worker ring; use ServeListeners (or
// ListenAndServe, which calls ListenShards) to give each shard its own
// SO_REUSEPORT listener instead.
func (s *Server) Serve(ln net.Listener) error {
	return s.ServeListeners([]net.Listener{ln})
}

// ServeListeners accepts connections on every listener until Close,
// running max(AcceptShards, len(lns)) shards: one accept loop per shard,
// each with its own worker ring. When there are more shards than
// listeners the extra accept loops share the existing listeners — the
// non-reuseport fallback. It blocks until all accept loops exit and
// returns the first accept error, or nil on Close.
func (s *Server) ServeListeners(lns []net.Listener) error {
	if len(lns) == 0 {
		return errors.New("smtpserver: no listeners")
	}
	nshards := s.cfg.AcceptShards
	if nshards < len(lns) {
		nshards = len(lns)
	}
	workers := s.cfg.MaxWorkers / nshards
	if workers < 1 {
		workers = 1
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("smtpserver: server closed")
	}
	if s.lns != nil {
		s.mu.Unlock()
		return errors.New("smtpserver: already serving")
	}
	s.lns = append([]net.Listener(nil), lns...)
	shards := make([]*shard, nshards)
	for i := range shards {
		shards[i] = s.startShard(workers)
	}
	s.shards = shards
	s.mu.Unlock()

	errc := make(chan error, nshards)
	var wg sync.WaitGroup
	for i := 0; i < nshards; i++ {
		ln, sh := lns[i%len(lns)], shards[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			errc <- s.acceptLoop(ln, sh)
		}()
	}
	wg.Wait()
	var first error
	for i := 0; i < nshards; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// startShard launches one shard's worker ring and returns its channels.
func (s *Server) startShard(workers int) *shard {
	sh := &shard{}
	switch s.cfg.Arch {
	case Hybrid:
		sh.tasks = make(chan *task, workers*s.cfg.TaskDepthPerWorker)
		for i := 0; i < workers; i++ {
			s.workerWG.Add(1)
			go s.hybridWorker(sh.tasks)
		}
	case Vanilla:
		// The worker ring mirrors postfix's reuse of smtpd processes:
		// long-lived workers each take one connection at a time; the
		// unbuffered channel makes the shard's accept loop wait when all
		// are busy, exactly like master refusing to fork past the process
		// limit.
		sh.conns = make(chan accepted)
		for i := 0; i < workers; i++ {
			s.workerWG.Add(1)
			go s.vanillaWorker(sh.conns)
		}
	}
	return sh
}

// acceptLoop accepts connections on ln and dispatches them into sh until
// the listener fails (Close, or a real error).
func (s *Server) acceptLoop(ln net.Listener, sh *shard) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if sh.conns != nil {
				close(sh.conns)
			}
			if closed {
				return nil
			}
			return fmt.Errorf("smtpserver: accept: %w", err)
		}
		acceptedAt := time.Now()
		id := s.connID()
		s.connections.Inc()
		if !s.track(nc) {
			nc.Close()
			continue
		}
		if s.cfg.CheckClient != nil && s.cfg.CheckClient(remoteIP(nc)) {
			s.blacklisted.Inc()
			ip := remoteIP(nc)
			c := smtp.AcquireConn(nc)
			c.WriteReply(smtp.ReplyBlacklisted) //nolint:errcheck // closing anyway
			smtp.ReleaseConn(c)
			s.untrack(nc)
			nc.Close()
			s.observeStage(StageAccept, id, acceptedAt, "blacklisted")
			s.logConn(id, ip, "blacklisted", false, true)
			continue
		}
		switch s.cfg.Arch {
		case Vanilla:
			// Under vanilla, waiting here IS the architecture's cost:
			// master blocked on the process limit. The wait lands in the
			// handoff_wait histogram (observed by the worker); accept's
			// own share ends at the send.
			s.observeStage(StageAccept, id, acceptedAt, "")
			sh.conns <- accepted{nc: nc, id: id, at: acceptedAt}
		case Hybrid:
			s.frontWG.Add(1)
			go s.hybridFrontEnd(nc, id, sh)
			s.observeStage(StageAccept, id, acceptedAt, "")
		}
	}
}

// ListenAndServe listens on addr and serves until Close. With
// AcceptShards > 1 it opens one listener per shard via ListenShards
// (SO_REUSEPORT where supported).
func (s *Server) ListenAndServe(addr string) error {
	lns, err := ListenShards(addr, s.cfg.AcceptShards)
	if err != nil {
		return fmt.Errorf("smtpserver: listen %s: %w", addr, err)
	}
	return s.ServeListeners(lns)
}

// Close stops accepting, force-closes open connections, and waits for all
// workers to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("smtpserver: already closed")
	}
	s.closed = true
	lns := s.lns
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	s.frontWG.Wait()
	s.mu.Lock()
	for _, sh := range s.shards {
		if sh.tasks != nil {
			close(sh.tasks)
		}
	}
	s.shards = nil
	s.mu.Unlock()
	s.workerWG.Wait()
	return nil
}

// track registers a live connection; false means the server is closing.
func (s *Server) track(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[nc] = true
	return true
}

func (s *Server) untrack(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
}

func remoteIP(nc net.Conn) string {
	addr := nc.RemoteAddr()
	if addr == nil {
		return ""
	}
	host, _, err := net.SplitHostPort(addr.String())
	if err != nil {
		return addr.String()
	}
	return host
}

// sessionConfig builds the session hooks for one connection. When a
// policy engine is configured, MAIL and RCPT are additionally checked
// against it; both hooks run wherever the dialog runs, which for the
// hybrid architecture is the master's event loop until trust — a
// greylisted recipient is never recorded, so the connection stays
// un-trusted and is finished without costing a worker.
func (s *Server) sessionConfig(ip string, id uint64) smtp.Config {
	cfg := smtp.Config{
		Hostname:          s.cfg.Hostname,
		ValidateRcpt:      s.cfg.ValidateRcpt,
		ValidateRcptBytes: s.cfg.ValidateRcptBytes,
		MaxRcpts:          s.cfg.MaxRcpts,
		MaxMessageBytes:   s.cfg.MaxMessageBytes,
		Ehlo:              s.ehlo,
	}
	if p := s.cfg.Policy; p != nil {
		// Mid-dialog checks are local (rate buckets, greylist); the
		// background context is bounded by the engine itself, and a dead
		// connection is detected by the socket, not the verdict path.
		cfg.CheckMail = func(sender string) *smtp.Reply {
			start := time.Now()
			d := p.Mail(context.Background(), ip, sender)
			s.logPolicy(id, ip, "mail", d, time.Since(start))
			return s.policyReply(d)
		}
		cfg.CheckRcpt = func(sender, rcpt string) *smtp.Reply {
			start := time.Now()
			d := p.Rcpt(context.Background(), ip, sender, rcpt)
			s.logPolicy(id, ip, "rcpt", d, time.Since(start))
			return s.policyReply(d)
		}
	}
	return cfg
}

// policyReply maps a mid-dialog policy decision to an overriding reply,
// or nil for Allow.
func (s *Server) policyReply(d policy.Decision) *smtp.Reply {
	switch d.Verdict {
	case policy.Reject:
		s.policyRejected.Inc()
		return &smtp.Reply{Code: 554, Text: d.Reason}
	case policy.Tempfail:
		s.greylisted.Inc()
		return &smtp.Reply{Code: 450, Text: d.Reason}
	default:
		return nil
	}
}

// admitPolicy runs the connect-time policy check; false means a verdict
// reply has been written and the connection must be closed by the
// caller. It is called from the vanilla worker and the hybrid front
// end, never from the accept loop, so a slow DNSBL scan stalls only the
// connection it concerns. The verdict is timed as the policy stage and
// noted on the connection's span (allow/reject/tempfail).
func (s *Server) admitPolicy(nc net.Conn, c *smtp.Conn, id uint64, worker bool) bool {
	if s.cfg.Policy == nil {
		return true
	}
	// The connect-time verdict includes the DNSBL scan; bound it by the
	// idle timeout so a sick resolver stack can never pin the connection
	// longer than a silent client could.
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.IdleTimeout)
	defer cancel()
	ip := remoteIP(nc)
	start := time.Now()
	d := s.cfg.Policy.Connect(ctx, ip)
	s.logPolicy(id, ip, "connect", d, time.Since(start))
	switch d.Verdict {
	case policy.Reject:
		s.observeStage(StagePolicy, id, start, "reject")
		s.policyRejected.Inc()
		c.WriteReply(smtp.Reply{Code: 554, Text: d.Reason}) //nolint:errcheck // closing anyway
		s.logConn(id, ip, "policy_reject", worker, true)
		return false
	case policy.Tempfail:
		s.observeStage(StagePolicy, id, start, "tempfail")
		s.policyTempfail.Inc()
		c.WriteReply(smtp.Reply{Code: 421, Text: d.Reason}) //nolint:errcheck // closing anyway
		s.logConn(id, ip, "policy_tempfail", worker, true)
		return false
	default:
		s.observeStage(StagePolicy, id, start, "allow")
		return true
	}
}
