//go:build linux

package smtpserver

import (
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT on Linux (asm-generic/socket.h). Spelled as
// a literal because the stdlib syscall package does not export it and the
// repo deliberately takes no dependency on golang.org/x/sys.
const soReusePort = 0xf

// reuseportSupported reports whether ListenShards can open multiple
// kernel-balanced listeners on one address.
const reuseportSupported = true

// reuseportListenConfig returns a ListenConfig that sets SO_REUSEPORT
// before bind, so several listeners can share one address and the kernel
// distributes incoming connections across them.
func reuseportListenConfig() *net.ListenConfig {
	return &net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
}
