package smtpserver

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/smtp"
)

func TestListenAndServe(t *testing.T) {
	srv, err := New(func(string, []string, []byte) (string, error) { return "Q", nil },
		WithArchitecture(Hybrid))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	// The listener address is not exposed before Serve runs, so probe by
	// closing: ListenAndServe must return nil after Close.
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ListenAndServe = %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("ListenAndServe did not return after Close")
	}
}

func TestListenAndServeBadAddress(t *testing.T) {
	srv, err := New(func(string, []string, []byte) (string, error) { return "Q", nil },
		WithArchitecture(Vanilla))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ListenAndServe("127.0.0.1:notaport"); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestServeTwiceRejected(t *testing.T) {
	env := startServer(t, Hybrid)
	// Make sure the first Serve call has installed its listener before
	// racing a second one against it.
	c := dial(t, env)
	c.Quit()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := env.srv.Serve(ln); err == nil || !strings.Contains(err.Error(), "already serving") {
		t.Fatalf("second Serve = %v", err)
	}
}

func TestServeAfterCloseRejected(t *testing.T) {
	srv, err := New(func(string, []string, []byte) (string, error) { return "Q", nil },
		WithArchitecture(Vanilla))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	time.Sleep(10 * time.Millisecond)
	srv.Close()
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	if err := srv.Serve(ln2); err == nil {
		t.Fatal("Serve after Close accepted")
	}
}

func TestOverlongCommandLineGets500(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		env := startServer(t, arch)
		nc, err := net.Dial("tcp", env.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		c := smtp.NewConn(nc)
		if _, err := c.ReadReply(); err != nil {
			t.Fatal(err)
		}
		// A line far over MaxLineLen: the server answers 500 and stays up.
		if err := c.WriteLine("HELO " + strings.Repeat("x", smtp.MaxLineLen+100)); err != nil {
			t.Fatal(err)
		}
		reply, err := c.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if reply.Code != 500 {
			t.Fatalf("overlong line reply = %d, want 500", reply.Code)
		}
		// Session continues normally afterwards.
		if err := c.WriteLine("HELO ok.example"); err != nil {
			t.Fatal(err)
		}
		reply, err = c.ReadReply()
		if err != nil || reply.Code != 250 {
			t.Fatalf("post-overlong HELO = %v, %v", reply, err)
		}
	})
}

func TestOversizeBodyKeepsConnectionAlive(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		env := startServer(t, arch, WithMaxMessageBytes(128))
		client := dial(t, env)
		client.Helo("h")
		client.Mail("s@x.test")
		client.Rcpt("a@valid.test")
		if err := client.Data(make([]byte, 4096)); err == nil {
			t.Fatal("oversize body accepted")
		}
		// The transaction was aborted with 552; a fresh one succeeds.
		if _, err := client.Send("s@x.test", []string{"a@valid.test"}, []byte("small")); err != nil {
			t.Fatalf("post-552 transaction failed: %v", err)
		}
		client.Quit()
		waitStats(t, env.srv, func(s Stats) bool { return s.MailsAccepted == 1 })
	})
}

func TestIdleClientTimedOut(t *testing.T) {
	env := startServer(t, Hybrid, WithIdleTimeout(50*time.Millisecond))
	nc, err := net.Dial("tcp", env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := smtp.NewConn(nc)
	if _, err := c.ReadReply(); err != nil {
		t.Fatal(err)
	}
	// Say nothing; the server must drop the connection and count it as
	// pre-trust closed.
	waitStats(t, env.srv, func(s Stats) bool { return s.PreTrustClosed == 1 })
}

func TestRemoteIPParsing(t *testing.T) {
	env := startServer(t, Vanilla, WithCheckClient(func(ip string) bool {
		// The hook must receive a bare IP, not host:port.
		if strings.Contains(ip, ":") || net.ParseIP(ip) == nil {
			t.Errorf("CheckClient got %q, want bare IPv4", ip)
		}
		return false
	}))
	c := dial(t, env)
	c.Helo("h")
	c.Quit()
	waitStats(t, env.srv, func(s Stats) bool { return s.Connections == 1 })
}
