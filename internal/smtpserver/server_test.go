package smtpserver

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/smtp"
)

// testEnv is a running server plus a sink capturing enqueued mails.
type testEnv struct {
	srv     *Server
	addr    string
	mu      sync.Mutex
	mail    []capturedMail
	enqueue Enqueue // optional override, set via setEnqueue before dialing
}

// setEnqueue replaces the capture sink for subsequent deliveries.
func (e *testEnv) setEnqueue(fn Enqueue) {
	e.mu.Lock()
	e.enqueue = fn
	e.mu.Unlock()
}

type capturedMail struct {
	sender string
	rcpts  []string
	data   []byte
}

func (e *testEnv) captured() []capturedMail {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]capturedMail(nil), e.mail...)
}

// startServer boots a server of the given architecture on a loopback
// port. Recipients at @valid.test are accepted. Extra options override
// the test defaults (they append after them).
func startServer(t *testing.T, arch Architecture, opts ...Option) *testEnv {
	t.Helper()
	env := &testEnv{}
	enqueue := func(sender string, rcpts []string, data []byte) (string, error) {
		env.mu.Lock()
		defer env.mu.Unlock()
		if env.enqueue != nil {
			return env.enqueue(sender, rcpts, data)
		}
		env.mail = append(env.mail, capturedMail{
			sender: sender,
			rcpts:  append([]string(nil), rcpts...),
			data:   append([]byte(nil), data...),
		})
		return fmt.Sprintf("Q%d", len(env.mail)), nil
	}
	all := append([]Option{
		WithHostname("mx.test"),
		WithArchitecture(arch),
		WithValidateRcpt(func(addr string) bool {
			return strings.HasSuffix(strings.ToLower(addr), "@valid.test")
		}),
		WithMaxWorkers(4),
		WithIdleTimeout(5 * time.Second),
	}, opts...)
	srv, err := New(enqueue, all...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // exits on Close
	t.Cleanup(func() { srv.Close() })
	env.srv = srv
	env.addr = ln.Addr().String()
	return env
}

func dial(t *testing.T, env *testEnv) *smtp.Client {
	t.Helper()
	client, err := smtp.Dial(env.addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

// Both architectures must pass the same behavioural suite.
func forEachArch(t *testing.T, fn func(t *testing.T, arch Architecture)) {
	for _, arch := range []Architecture{Vanilla, Hybrid} {
		t.Run(arch.String(), func(t *testing.T) { fn(t, arch) })
	}
}

func TestDeliverOneMail(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		env := startServer(t, arch)
		c := dial(t, env)
		if err := c.Helo("client.test"); err != nil {
			t.Fatal(err)
		}
		n, err := c.Send("sender@remote.test",
			[]string{"a@valid.test", "b@valid.test"}, []byte("hello\r\n"))
		if err != nil || n != 2 {
			t.Fatalf("send = %d, %v", n, err)
		}
		if err := c.Quit(); err != nil {
			t.Fatal(err)
		}
		waitStats(t, env.srv, func(s Stats) bool { return s.MailsAccepted == 1 })
		got := env.captured()
		if len(got) != 1 || got[0].sender != "sender@remote.test" || len(got[0].rcpts) != 2 {
			t.Fatalf("captured = %+v", got)
		}
		if string(got[0].data) != "hello\r\n" {
			t.Fatalf("data = %q", got[0].data)
		}
	})
}

func waitStats(t *testing.T, srv *Server, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond(srv.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", srv.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestBounceConnection(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		env := startServer(t, arch)
		c := dial(t, env)
		c.Helo("h")
		n, err := c.Send("spam@bot.test", []string{"guess1@valid.other", "guess2@valid.other"}, []byte("x"))
		if err != nil || n != 0 {
			t.Fatalf("send = %d, %v", n, err)
		}
		c.Quit()
		waitStats(t, env.srv, func(s Stats) bool { return s.PreTrustClosed == 1 })
		st := env.srv.Stats()
		if st.RcptRejected != 2 {
			t.Fatalf("rcpt rejected = %d, want 2", st.RcptRejected)
		}
		if st.MailsAccepted != 0 {
			t.Fatal("bounce connection delivered mail")
		}
		if arch == Hybrid && st.Handoffs != 0 {
			t.Fatalf("bounce connection delegated to a worker: %+v", st)
		}
	})
}

func TestUnfinishedConnection(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		env := startServer(t, arch)
		c := dial(t, env)
		c.Helo("h")
		c.Abort() // hang up mid-session (§4.1)
		waitStats(t, env.srv, func(s Stats) bool { return s.PreTrustClosed == 1 })
		if arch == Hybrid && env.srv.Stats().Handoffs != 0 {
			t.Fatal("unfinished connection was delegated")
		}
	})
}

func TestHybridDelegatesOnlyTrusted(t *testing.T) {
	env := startServer(t, Hybrid)
	// Two bounce connections and one good one.
	for i := 0; i < 2; i++ {
		c := dial(t, env)
		c.Helo("h")
		c.Send("s@x.test", []string{"nope@wrong.test"}, nil)
		c.Quit()
	}
	c := dial(t, env)
	c.Helo("h")
	c.Send("s@x.test", []string{"ok@valid.test"}, []byte("m"))
	c.Quit()
	waitStats(t, env.srv, func(s Stats) bool {
		return s.MailsAccepted == 1 && s.PreTrustClosed == 2
	})
	st := env.srv.Stats()
	if st.Handoffs != 1 {
		t.Fatalf("handoffs = %d, want 1", st.Handoffs)
	}
}

func TestMixedBounceThenValidDelegates(t *testing.T) {
	// A connection whose first RCPT bounces but second is valid must be
	// delegated after the valid one (§5.1).
	env := startServer(t, Hybrid)
	c := dial(t, env)
	c.Helo("h")
	n, err := c.Send("s@x.test", []string{"bad@wrong.test", "good@valid.test"}, []byte("m"))
	if err != nil || n != 1 {
		t.Fatalf("send = %d, %v", n, err)
	}
	c.Quit()
	waitStats(t, env.srv, func(s Stats) bool { return s.MailsAccepted == 1 })
	st := env.srv.Stats()
	if st.Handoffs != 1 || st.RcptRejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMultipleMailsPerConnection(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		env := startServer(t, arch)
		c := dial(t, env)
		c.Helo("h")
		for i := 0; i < 3; i++ {
			if _, err := c.Send("s@x.test", []string{"a@valid.test"}, []byte("m")); err != nil {
				t.Fatal(err)
			}
		}
		c.Quit()
		waitStats(t, env.srv, func(s Stats) bool { return s.MailsAccepted == 3 })
		if arch == Hybrid && env.srv.Stats().Handoffs != 1 {
			t.Fatalf("one connection should delegate once, got %d", env.srv.Stats().Handoffs)
		}
	})
}

func TestConcurrentClients(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		env := startServer(t, arch, WithMaxWorkers(3))
		const clients = 12
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, err := smtp.Dial(env.addr, 5*time.Second)
				if err != nil {
					errs <- err
					return
				}
				if err := c.Helo("h"); err != nil {
					errs <- err
					return
				}
				rcpt := fmt.Sprintf("u%d@valid.test", i)
				if _, err := c.Send("s@x.test", []string{rcpt}, []byte("m")); err != nil {
					errs <- err
					return
				}
				errs <- c.Quit()
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		waitStats(t, env.srv, func(s Stats) bool { return s.MailsAccepted == clients })
		if got := len(env.captured()); got != clients {
			t.Fatalf("captured = %d, want %d", got, clients)
		}
	})
}

func TestBlacklistedClientRejected(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		env := startServer(t, arch,
			WithCheckClient(func(ip string) bool { return true })) // everyone is evil
		nc, err := net.Dial("tcp", env.addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		reply, err := smtp.NewConn(nc).ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if reply.Code != 554 {
			t.Fatalf("blacklisted banner = %d, want 554", reply.Code)
		}
		waitStats(t, env.srv, func(s Stats) bool { return s.Blacklisted == 1 })
	})
}

func TestEnqueueFailureReports452(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		env := startServer(t, arch)
		env.setEnqueue(func(string, []string, []byte) (string, error) {
			return "", fmt.Errorf("queue full")
		})
		c := dial(t, env)
		c.Helo("h")
		c.Mail("s@x.test")
		c.Rcpt("a@valid.test")
		err := c.Data([]byte("m"))
		if err == nil || !strings.Contains(err.Error(), "452") {
			t.Fatalf("data err = %v, want 452", err)
		}
		c.Quit()
		waitStats(t, env.srv, func(s Stats) bool { return s.EnqueueFailures == 1 })
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, WithArchitecture(Vanilla)); err == nil {
		t.Fatal("missing Enqueue accepted")
	}
	enq := func(string, []string, []byte) (string, error) { return "", nil }
	if _, err := New(enq, WithArchitecture(Architecture(99))); err == nil {
		t.Fatal("bogus architecture accepted")
	}
	// The options path defaults the architecture to Hybrid...
	srv, err := New(enq)
	if err != nil {
		t.Fatal(err)
	}
	if srv.cfg.Arch != Hybrid {
		t.Fatalf("default arch = %v, want Hybrid", srv.cfg.Arch)
	}
	// ...and an explicit zero Architecture is still rejected, not
	// silently re-defaulted.
	if _, err := New(enq, WithArchitecture(Architecture(0))); err == nil {
		t.Fatal("zero Architecture accepted")
	}
}

func TestCloseIsCleanWithIdleClients(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		env := startServer(t, arch)
		// Leave a client mid-session; Close must still return promptly.
		c := dial(t, env)
		c.Helo("h")
		done := make(chan error, 1)
		go func() { done <- env.srv.Close() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close hung with idle client")
		}
		if err := env.srv.Close(); err == nil {
			t.Fatal("double close accepted")
		}
	})
}

func TestArchitectureString(t *testing.T) {
	if Vanilla.String() != "vanilla" || Hybrid.String() != "hybrid" {
		t.Fatal("architecture names wrong")
	}
	if !strings.Contains(Architecture(9).String(), "9") {
		t.Fatal("unknown architecture string")
	}
}
