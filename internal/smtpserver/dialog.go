package smtpserver

import (
	"errors"
	"net"
	"time"

	"repro/internal/smtp"
	"repro/internal/trace"
)

// outcome reports how a dialog phase ended.
type outcome int

const (
	// outcomeQuit: client sent QUIT; 221 has been written.
	outcomeQuit outcome = iota + 1
	// outcomeDropped: connection error or EOF (an unfinished transaction
	// in §4.1 terms when it happens pre-trust).
	outcomeDropped
	// outcomeTrusted: the stop predicate fired (hybrid pre-trust phase
	// saw its first valid RCPT); the dialog should continue elsewhere.
	outcomeTrusted
)

// runDialog drives the session over c until QUIT, connection loss, or —
// when stopWhen is non-nil — the predicate becomes true after a reply is
// written. It is the single dialog loop both architectures share; the
// phases differ only in where it runs and when it stops. connTC is the
// connection's minted message-trace context (zero when tracing is off
// or sampled out); a context arriving on the wire as an XTRACE MAIL
// parameter — a director upstream — takes precedence over it.
func (s *Server) runDialog(nc net.Conn, c *smtp.Conn, sess *smtp.Session, stopWhen func(*smtp.Session) bool, connTC trace.Context) outcome {
	for {
		if err := nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
			return outcomeDropped
		}
		line, err := c.ReadLine()
		if err != nil {
			if errors.Is(err, smtp.ErrLineTooLong) {
				if c.WriteReply(smtp.ReplyLineTooLong) == nil {
					continue
				}
			}
			return outcomeDropped
		}
		reply, action := sess.CommandBytes(line)
		if reply.Code == smtp.ReplyUserUnknown.Code {
			s.rcptRejected.Inc()
			if s.cfg.Policy != nil {
				// Each 550 is a §4.1 bounce signal; feed it to the
				// reputation store so repeat offenders are refused at
				// connect time on their next visit.
				s.cfg.Policy.RecordRejectedRcpt(remoteIP(nc))
			}
		}
		switch action {
		case smtp.ActionData:
			// The 354 must reach the client before it will send the body,
			// so this flush also drains any batched pipelined replies.
			dataStart := time.Now()
			if err := c.WriteReply(reply); err != nil {
				return outcomeDropped
			}
			if err := nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
				return outcomeDropped
			}
			body, err := c.ReadData(sess.MaxMessageBytes())
			if err != nil {
				if errors.Is(err, smtp.ErrMessageTooBig) {
					if c.WriteReply(sess.AbortData()) == nil {
						continue
					}
				}
				return outcomeDropped
			}
			env, done := sess.FinishData(body)
			// The mail's trace base: the context the upstream hop sent
			// (XTRACE), else this connection's minted root. NewSpan on an
			// invalid base is a free no-op, keeping the sampled-out path
			// allocation-free.
			base := env.Trace
			if !base.Valid() {
				base = connTC
			}
			sp := s.mtrace.NewSpan(base)
			var qerr error
			if s.enqueueTraced != nil {
				_, qerr = s.enqueueTraced(env.Sender, env.Rcpts, env.Data, sp)
			} else {
				_, qerr = s.cfg.Enqueue(env.Sender, env.Rcpts, env.Data)
			}
			if qerr != nil {
				s.enqueueFailures.Inc()
				done = smtp.ReplyInsufficient
			} else {
				s.mailsAccepted.Inc()
			}
			s.mtrace.FinishAt(sp, trace.MStageSMTP, dataStart, time.Now(), s.arch)
			if err := c.WriteReply(done); err != nil {
				return outcomeDropped
			}
		case smtp.ActionQuit:
			c.WriteReply(reply) //nolint:errcheck // closing anyway
			return outcomeQuit
		default:
			// Pipelining batch: while the client has already sent the next
			// command, buffer the reply and answer the whole burst with one
			// flush — one writev for N replies instead of N small writes.
			// Only safe when input is pending: a lazy reply to a client
			// that is waiting for it would deadlock the dialog.
			if c.InputPending() {
				if err := c.WriteReplyLazy(reply); err != nil {
					return outcomeDropped
				}
			} else if err := c.WriteReply(reply); err != nil {
				return outcomeDropped
			}
		}
		if stopWhen != nil && stopWhen(sess) {
			return outcomeTrusted
		}
	}
}

// outcomeNote maps a dialog outcome to its span note.
func outcomeNote(out outcome) string {
	switch out {
	case outcomeQuit:
		return "quit"
	case outcomeTrusted:
		return "trusted"
	default:
		return "dropped"
	}
}

// vanillaWorker is one smtpd process of Figure 6: it takes whole
// connections and serves the entire dialog, bounces included.
func (s *Server) vanillaWorker(conns <-chan accepted) {
	defer s.workerWG.Done()
	for a := range conns {
		nc := a.nc
		// The time since the accept loop dispatched is the vanilla
		// handoff wait: master blocked until a worker freed up.
		s.observeStage(StageHandoffWait, a.id, a.at, "")
		c := smtp.AcquireConn(nc)
		ip := remoteIP(nc)
		// The vanilla architecture pays a worker for the policy check
		// itself — the cost contrast the policy-sweep experiment measures.
		if !s.admitPolicy(nc, c, a.id, true) {
			s.untrack(nc)
			nc.Close()
			smtp.ReleaseConn(c)
			continue
		}
		dialogStart := time.Now()
		sess := smtp.AcquireSession(s.sessionConfig(ip, a.id))
		tc := s.mtrace.Mint()
		if err := c.WriteReply(sess.Greeting()); err == nil {
			out := s.runDialog(nc, c, sess, nil, tc)
			if out == outcomeQuit {
				s.sessionsServed.Inc()
			}
			bounce := !sess.HasValidRcpt() && sess.MailsCompleted() == 0
			if bounce {
				s.preTrustClosed.Inc()
				s.recordBounce(nc, sess)
			}
			s.observeStage(StageDialog, a.id, dialogStart, outcomeNote(out))
			s.logConn(a.id, ip, outcomeNote(out), true, bounce)
		} else {
			s.observeStage(StageDialog, a.id, dialogStart, "dropped")
			s.logConn(a.id, ip, "dropped", true, true)
		}
		s.untrack(nc)
		nc.Close()
		smtp.ReleaseConn(c)
		smtp.ReleaseSession(sess)
	}
}

// hybridFrontEnd is the master's event-loop role in Figure 7: it serves
// the banner and the dialog up to the first valid RCPT. Connections that
// never produce one — random-guessing bounces and unfinished sessions —
// are finished right here, costing no worker. Trusted connections are
// delegated to the worker pool through the bounded task queue.
func (s *Server) hybridFrontEnd(nc net.Conn, id uint64, sh *shard) {
	defer s.frontWG.Done()
	c := smtp.AcquireConn(nc)
	ip := remoteIP(nc)
	// Policy runs in the master's event loop: a rejected connection is
	// finished here, before any worker is committed — the paper's
	// fork-after-trust thesis extended from bounces to policy verdicts.
	if !s.admitPolicy(nc, c, id, false) {
		s.untrack(nc)
		nc.Close()
		smtp.ReleaseConn(c)
		return
	}
	preTrustStart := time.Now()
	sess := smtp.AcquireSession(s.sessionConfig(ip, id))
	tc := s.mtrace.Mint()
	if err := c.WriteReply(sess.Greeting()); err != nil {
		s.observeStage(StagePreTrust, id, preTrustStart, "dropped")
		s.logConn(id, ip, "dropped", false, true)
		s.untrack(nc)
		nc.Close()
		smtp.ReleaseConn(c)
		smtp.ReleaseSession(sess)
		return
	}
	out := s.runDialog(nc, c, sess, (*smtp.Session).HasValidRcpt, tc)
	s.observeStage(StagePreTrust, id, preTrustStart, outcomeNote(out))
	switch out {
	case outcomeTrusted:
		s.handoffs.Inc()
		// A full queue blocks the front end — the finite socket buffer
		// acting "as a natural throttle for the master process" (§5.3).
		// Conn and Session ownership moves to the worker, which releases
		// them back to the pools when the connection finishes. The minted
		// trace context travels with the task so post-trust mails keep
		// the connection's trace.
		sh.tasks <- &task{nc: nc, c: c, sess: sess, id: id, at: time.Now(), tc: tc}
	case outcomeQuit:
		s.sessionsServed.Inc()
		s.preTrustClosed.Inc()
		s.recordBounce(nc, sess)
		// Finished in the front end with no valid RCPT: a bounce that
		// never cost a worker — the connection fork-after-trust saves.
		s.logConn(id, ip, outcomeNote(out), false, true)
		s.untrack(nc)
		nc.Close()
		smtp.ReleaseConn(c)
		smtp.ReleaseSession(sess)
	default:
		s.preTrustClosed.Inc()
		s.recordBounce(nc, sess)
		s.logConn(id, ip, outcomeNote(out), false, true)
		s.untrack(nc)
		nc.Close()
		smtp.ReleaseConn(c)
		smtp.ReleaseSession(sess)
	}
}

// recordBounce feeds a finished pre-trust connection that drew at least
// one 550 to the reputation store as a completed bounce.
func (s *Server) recordBounce(nc net.Conn, sess *smtp.Session) {
	if s.cfg.Policy != nil && sess.RejectedRcpts() > 0 {
		s.cfg.Policy.RecordBounce(remoteIP(nc))
	}
}

// hybridWorker is one delegated-mode smtpd process: it receives trusted
// connections mid-dialog and serves them to completion, then returns to
// listening on the task queue (§5.3).
func (s *Server) hybridWorker(tasks <-chan *task) {
	defer s.workerWG.Done()
	for t := range tasks {
		// Queue wait: from the front end's enqueue attempt to this
		// pickup — the §5.3 socket-buffer throttle made visible.
		s.observeStage(StageHandoffWait, t.id, t.at, "")
		ip := remoteIP(t.nc)
		dialogStart := time.Now()
		out := s.runDialog(t.nc, t.c, t.sess, nil, t.tc)
		if out == outcomeQuit {
			s.sessionsServed.Inc()
		}
		s.observeStage(StageDialog, t.id, dialogStart, outcomeNote(out))
		// Trusted by definition (it was handed off), so never a bounce.
		s.logConn(t.id, ip, outcomeNote(out), true, false)
		s.untrack(t.nc)
		t.nc.Close()
		smtp.ReleaseConn(t.c)
		smtp.ReleaseSession(t.sess)
	}
}
