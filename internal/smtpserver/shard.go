package smtpserver

import (
	"context"
	"fmt"
	"net"
)

// ListenShards opens the listeners for n accept shards on addr. On
// platforms with SO_REUSEPORT it returns n kernel-balanced listeners
// bound to the same address; elsewhere (or for n <= 1) it returns a
// single listener, which ServeListeners then shares across the shards'
// accept goroutines. When addr requests an ephemeral port the first bind
// resolves it and the remaining shards bind the same resolved port.
func ListenShards(addr string, n int) ([]net.Listener, error) {
	if n <= 1 || !reuseportSupported {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return []net.Listener{ln}, nil
	}
	lc := reuseportListenConfig()
	first, err := lc.Listen(context.Background(), "tcp", addr)
	if err != nil {
		return nil, err
	}
	lns := []net.Listener{first}
	resolved := first.Addr().String()
	for i := 1; i < n; i++ {
		ln, err := lc.Listen(context.Background(), "tcp", resolved)
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		lns = append(lns, ln)
	}
	return lns, nil
}
