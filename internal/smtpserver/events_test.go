package smtpserver

import (
	"testing"
	"time"

	"repro/internal/eventlog"
)

// waitEvents polls the ring until cond is satisfied over the smtpd.conn
// events, or fails.
func waitEvents(t *testing.T, log *eventlog.Log, cond func([]eventlog.Event) bool) []eventlog.Event {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		evs := log.Tail(eventlog.Filter{Name: "smtpd.conn"})
		if cond(evs) {
			return evs
		}
		if time.Now().After(deadline) {
			t.Fatalf("events never converged: %+v", evs)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func boolField(t *testing.T, e eventlog.Event, key string) bool {
	t.Helper()
	f, ok := e.Field(key)
	if !ok {
		t.Fatalf("event %s missing field %q", e.Name, key)
	}
	return f.Int() != 0
}

func strField(t *testing.T, e eventlog.Event, key string) string {
	t.Helper()
	f, ok := e.Field(key)
	if !ok {
		t.Fatalf("event %s missing field %q", e.Name, key)
	}
	return f.Str()
}

// TestConnEventContract pins the smtpd.conn schema telemetry relies on:
// worker reports whether a worker was occupied (always under vanilla,
// only on handoff under hybrid) and bounce marks undelivered endings.
func TestConnEventContract(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		log := eventlog.New()
		env := startServer(t, arch, WithEventLog(log))

		// One good delivery...
		c := dial(t, env)
		c.Helo("h")
		if n, err := c.Send("s@remote.test", []string{"a@valid.test"}, []byte("ok\r\n")); err != nil || n != 1 {
			t.Fatalf("send = %d, %v", n, err)
		}
		c.Quit()
		// ...and one bounce that never names a valid recipient.
		b := dial(t, env)
		b.Helo("h")
		if n, _ := b.Send("spam@bot.test", []string{"guess@valid.other"}, []byte("x")); n != 0 {
			t.Fatalf("bounce delivered %d", n)
		}
		b.Quit()

		evs := waitEvents(t, log, func(evs []eventlog.Event) bool { return len(evs) == 2 })
		var good, bounce *eventlog.Event
		for i := range evs {
			if boolField(t, evs[i], "bounce") {
				bounce = &evs[i]
			} else {
				good = &evs[i]
			}
		}
		if good == nil || bounce == nil {
			t.Fatalf("want one good and one bounce event, got %+v", evs)
		}
		if got := strField(t, *good, "arch"); got != arch.String() {
			t.Fatalf("arch = %q, want %q", got, arch)
		}
		if strField(t, *good, "outcome") != "quit" || strField(t, *bounce, "outcome") != "quit" {
			t.Fatalf("outcomes = %q/%q, want quit/quit",
				strField(t, *good, "outcome"), strField(t, *bounce, "outcome"))
		}
		// The paper's handoff-savings contract: vanilla pays a worker for
		// everything; hybrid pays only for the trusted connection.
		if !boolField(t, *good, "worker") {
			t.Fatal("delivered connection must report worker=true")
		}
		if wantWorker := arch == Vanilla; boolField(t, *bounce, "worker") != wantWorker {
			t.Fatalf("bounce worker = %v, want %v under %s",
				boolField(t, *bounce, "worker"), wantWorker, arch)
		}
		if strField(t, *good, "ip") == "" {
			t.Fatal("conn event missing source ip")
		}
	})
}
