//go:build !linux

package smtpserver

import "net"

// reuseportSupported: without a portable SO_REUSEPORT story the server
// falls back to one listener shared by all accept shards.
const reuseportSupported = false

func reuseportListenConfig() *net.ListenConfig { return nil }
