package smtpserver

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/smtp"
)

// smtpDial is dial without the testing.T, usable from client goroutines.
func smtpDial(addr string) (*smtp.Client, error) {
	return smtp.Dial(addr, 5*time.Second)
}

func TestListenShards(t *testing.T) {
	lns, err := ListenShards("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	if runtime.GOOS == "linux" {
		if len(lns) != 3 {
			t.Fatalf("listeners = %d, want 3 (reuseport)", len(lns))
		}
		addr := lns[0].Addr().String()
		for i, ln := range lns {
			if ln.Addr().String() != addr {
				t.Fatalf("listener %d bound %s, want %s", i, ln.Addr(), addr)
			}
		}
	} else if len(lns) != 1 {
		t.Fatalf("listeners = %d, want 1 (fallback)", len(lns))
	}
}

func TestListenShardsSingle(t *testing.T) {
	lns, err := ListenShards("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer lns[0].Close()
	if len(lns) != 1 {
		t.Fatalf("listeners = %d, want 1", len(lns))
	}
}

// startShardedServer boots a server with n accept shards over
// ListenShards listeners — reuseport on Linux, shared-listener fallback
// elsewhere — so the test exercises whichever path the platform has.
func startShardedServer(t *testing.T, arch Architecture, n int) *testEnv {
	t.Helper()
	env := &testEnv{}
	enqueue := func(sender string, rcpts []string, data []byte) (string, error) {
		env.mu.Lock()
		defer env.mu.Unlock()
		env.mail = append(env.mail, capturedMail{sender: sender})
		return fmt.Sprintf("Q%d", len(env.mail)), nil
	}
	srv, err := New(enqueue,
		WithHostname("mx.test"),
		WithArchitecture(arch),
		WithValidateRcptBytes(func(addr []byte) bool {
			const sfx = "@valid.test"
			return len(addr) > len(sfx) && string(addr[len(addr)-len(sfx):]) == sfx
		}),
		WithMaxWorkers(8),
		WithAcceptShards(n),
		WithIdleTimeout(5*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	lns, err := ListenShards("127.0.0.1:0", n)
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeListeners(lns) //nolint:errcheck // exits on Close
	t.Cleanup(func() { srv.Close() })
	env.srv = srv
	env.addr = lns[0].Addr().String()
	return env
}

func TestAcceptShardsServeBothArchitectures(t *testing.T) {
	forEachArch(t, func(t *testing.T, arch Architecture) {
		env := startShardedServer(t, arch, 3)
		const clients = 12
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				client, err := smtpDial(env.addr)
				if err != nil {
					errs <- err
					return
				}
				defer client.Abort() //nolint:errcheck
				if err := client.Helo("c.test"); err != nil {
					errs <- err
					return
				}
				if _, err := client.Send("s@remote.test",
					[]string{fmt.Sprintf("user%d@valid.test", i)},
					[]byte("sharded\r\n")); err != nil {
					errs <- err
					return
				}
				errs <- client.Quit()
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		waitStats(t, env.srv, func(st Stats) bool { return st.MailsAccepted >= clients })
		if got := len(env.captured()); got != clients {
			t.Fatalf("delivered = %d, want %d", got, clients)
		}
		if st := env.srv.Stats(); st.Connections < clients {
			t.Fatalf("connections = %d, want >= %d", st.Connections, clients)
		}
	})
}

func TestAcceptShardsFallbackSharedListener(t *testing.T) {
	// Serve with a single listener and AcceptShards > 1 uses the
	// fallback: several accept goroutines on one listener, each with its
	// own worker ring. Behaviour must be identical to the reuseport path.
	env := startServer(t, Hybrid, WithAcceptShards(4))
	for i := 0; i < 6; i++ {
		client := dial(t, env)
		if err := client.Helo("c.test"); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Send("s@r.test", []string{"u@valid.test"}, []byte("m")); err != nil {
			t.Fatal(err)
		}
		if err := client.Quit(); err != nil {
			t.Fatal(err)
		}
	}
	waitStats(t, env.srv, func(st Stats) bool { return st.MailsAccepted >= 6 })
}
