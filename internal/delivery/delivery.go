// Package delivery implements the local delivery agent of the paper's
// Figure 2 (postfix's local(8)): it takes items from the queue manager,
// resolves every recipient through the access database (aliases
// included), deduplicates the target mailboxes, and writes the mail
// through a mailstore.Store — one call per mail, so a multi-recipient
// mail reaches an MFS store as a single NWrite (§6.1).
package delivery

import (
	"fmt"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/mailstore"
	"repro/internal/queue"
	"repro/internal/smtp"
)

// Agent is a queue.Deliverer writing into a mailbox store. It is safe
// for concurrent use by the queue manager's delivery workers; the stat
// counters are atomics so the per-mail hot path takes no lock here.
type Agent struct {
	db    *access.DB
	store mailstore.Store

	mails          atomic.Int64
	rcptDeliveries atomic.Int64
	droppedRcpts   atomic.Int64
}

var _ queue.Deliverer = (*Agent)(nil)

// Stats counts delivery outcomes.
type Stats struct {
	// Mails is the number of queue items processed successfully.
	Mails int64
	// RcptDeliveries is the number of (mail, mailbox) pairs written.
	RcptDeliveries int64
	// DroppedRcpts counts recipients that no longer resolved at delivery
	// time (e.g. removed between RCPT and delivery).
	DroppedRcpts int64
}

// NewAgent returns a delivery agent writing through store, resolving
// recipients against db.
func NewAgent(db *access.DB, store mailstore.Store) *Agent {
	return &Agent{db: db, store: store}
}

// Deliver implements queue.Deliverer.
func (a *Agent) Deliver(item *queue.Item) error {
	// Resolve to mailbox names (local parts of canonical addresses),
	// deduplicating: two aliases of one user get a single copy, like
	// postfix's duplicate elimination.
	seen := make(map[string]bool, len(item.Rcpts))
	mailboxes := make([]string, 0, len(item.Rcpts))
	dropped := int64(0)
	for _, rcpt := range item.Rcpts {
		canonical, ok := a.db.Resolve(rcpt)
		if !ok {
			dropped++
			continue
		}
		box := smtp.LocalPart(canonical)
		if !seen[box] {
			seen[box] = true
			mailboxes = append(mailboxes, box)
		}
	}
	if len(mailboxes) == 0 {
		// Nothing deliverable; succeed so the queue drops the item
		// instead of retrying a permanent condition.
		a.droppedRcpts.Add(dropped)
		return nil
	}
	if err := a.store.Deliver(item.ID, mailboxes, item.Data); err != nil {
		return fmt.Errorf("delivery: %s: %w", item.ID, err)
	}
	a.mails.Add(1)
	a.rcptDeliveries.Add(int64(len(mailboxes)))
	a.droppedRcpts.Add(dropped)
	return nil
}

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats {
	return Stats{
		Mails:          a.mails.Load(),
		RcptDeliveries: a.rcptDeliveries.Load(),
		DroppedRcpts:   a.droppedRcpts.Load(),
	}
}
