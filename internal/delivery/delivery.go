// Package delivery implements the local delivery agent of the paper's
// Figure 2 (postfix's local(8)): it takes items from the queue manager,
// resolves every recipient through the access database (aliases
// included), deduplicates the target mailboxes, and writes the mail
// through a mailstore.Store — one call per mail, so a multi-recipient
// mail reaches an MFS store as a single NWrite (§6.1).
package delivery

import (
	"fmt"
	"time"

	"repro/internal/access"
	"repro/internal/eventlog"
	"repro/internal/mailstore"
	"repro/internal/metrics"
	"repro/internal/queue"
	"repro/internal/smtp"
	"repro/internal/trace"
)

// Agent is a queue.Deliverer writing into a mailbox store. It is safe
// for concurrent use by the queue manager's delivery workers; the stat
// counters are registry-vended atomics so the per-mail hot path takes no
// lock here.
type Agent struct {
	db     *access.DB
	store  mailstore.Store
	reg    *metrics.Registry
	events *eventlog.Log
	tracer *trace.MessageRecorder

	mails          *metrics.Counter
	rcptDeliveries *metrics.Counter
	droppedRcpts   *metrics.Counter
	redelivered    *metrics.Counter
	commitHist     *metrics.Histogram
}

var _ queue.Deliverer = (*Agent)(nil)

// Stats counts delivery outcomes.
type Stats struct {
	// Mails is the number of queue items processed successfully.
	Mails int64
	// RcptDeliveries is the number of (mail, mailbox) pairs written.
	RcptDeliveries int64
	// DroppedRcpts counts recipients that no longer resolved at delivery
	// time (e.g. removed between RCPT and delivery).
	DroppedRcpts int64
	// Redelivered counts mails committed on a retry attempt — deferrals
	// and post-crash spool replays. MFS commits these idempotently, so
	// a redelivery never duplicates a mailbox copy.
	Redelivered int64
}

// AgentOption configures an Agent (see NewAgent).
type AgentOption func(*Agent)

// WithRegistry directs the agent's metrics (delivery counters and the
// delivery_commit_seconds histogram, labelled by store) into r. The
// default is a private registry.
func WithRegistry(r *metrics.Registry) AgentOption {
	return func(a *Agent) { a.reg = r }
}

// WithEventLog emits a delivery.commit debug event per store write
// (queue id, mailbox fan-out, commit time) and a delivery.failed
// warning per failed commit into log. Nil disables emission (the
// default).
func WithEventLog(log *eventlog.Log) AgentOption {
	return func(a *Agent) { a.events = log }
}

// WithMessageTracer records a "store" message-lifecycle span per store
// commit into rec, parented under the queue's delivery span riding on
// item.Trace. Nil disables (the default).
func WithMessageTracer(rec *trace.MessageRecorder) AgentOption {
	return func(a *Agent) { a.tracer = rec }
}

// NewAgent returns a delivery agent writing through store, resolving
// recipients against db.
func NewAgent(db *access.DB, store mailstore.Store, opts ...AgentOption) *Agent {
	a := &Agent{db: db, store: store}
	for _, o := range opts {
		o(a)
	}
	if a.reg == nil {
		a.reg = metrics.NewRegistry()
	}
	name := store.Name()
	a.mails = a.reg.Counter("delivery_mails_total", "store", name)
	a.rcptDeliveries = a.reg.Counter("delivery_rcpt_deliveries_total", "store", name)
	a.droppedRcpts = a.reg.Counter("delivery_dropped_rcpts_total", "store", name)
	a.redelivered = a.reg.Counter("delivery_redelivered_total", "store", name)
	a.commitHist = a.reg.Histogram("delivery_commit_seconds", metrics.LatencyBounds(), "store", name)
	return a
}

// Registry returns the registry holding the agent's metrics.
func (a *Agent) Registry() *metrics.Registry { return a.reg }

// Deliver implements queue.Deliverer.
func (a *Agent) Deliver(item *queue.Item) error {
	// Resolve to mailbox names (local parts of canonical addresses),
	// deduplicating: two aliases of one user get a single copy, like
	// postfix's duplicate elimination.
	seen := make(map[string]bool, len(item.Rcpts))
	mailboxes := make([]string, 0, len(item.Rcpts))
	dropped := int64(0)
	for _, rcpt := range item.Rcpts {
		canonical, ok := a.db.Resolve(rcpt)
		if !ok {
			dropped++
			continue
		}
		box := smtp.LocalPart(canonical)
		if !seen[box] {
			seen[box] = true
			mailboxes = append(mailboxes, box)
		}
	}
	if len(mailboxes) == 0 {
		// Nothing deliverable; succeed so the queue drops the item
		// instead of retrying a permanent condition.
		a.droppedRcpts.Add(dropped)
		return nil
	}
	start := time.Now()
	err := a.store.Deliver(item.ID, mailboxes, item.Data)
	took := time.Since(start)
	a.commitHist.ObserveDuration(took)
	sp := a.tracer.NewSpan(item.Trace)
	a.tracer.FinishAt(sp, trace.MStageStore, start, time.Now(), a.store.Name())
	if err != nil {
		a.events.Warn("delivery.failed", 0,
			eventlog.Str("id", item.ID),
			eventlog.Str("err", err.Error()),
		)
		return fmt.Errorf("delivery: %s: %w", item.ID, err)
	}
	a.events.Debug("delivery.commit", 0,
		eventlog.Str("id", item.ID),
		eventlog.Int("mailboxes", int64(len(mailboxes))),
		eventlog.Dur("took", took),
	)
	a.mails.Inc()
	a.rcptDeliveries.Add(int64(len(mailboxes)))
	a.droppedRcpts.Add(dropped)
	if item.Attempts > 0 {
		a.redelivered.Inc()
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats {
	return Stats{
		Mails:          a.mails.Value(),
		RcptDeliveries: a.rcptDeliveries.Value(),
		DroppedRcpts:   a.droppedRcpts.Value(),
		Redelivered:    a.redelivered.Value(),
	}
}
