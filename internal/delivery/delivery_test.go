package delivery

import (
	"testing"

	"repro/internal/access"
	"repro/internal/costmodel"
	"repro/internal/fsim"
	"repro/internal/mailstore"
	"repro/internal/queue"
)

func newEnv(t *testing.T) (*access.DB, mailstore.Store, *Agent) {
	t.Helper()
	db := access.NewDB("dept.test")
	for _, u := range []string{"alice@dept.test", "bob@dept.test"} {
		if err := db.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	store, err := mailstore.NewMFS(fsim.NewMem(costmodel.FSModel{}), "mfs")
	if err != nil {
		t.Fatal(err)
	}
	return db, store, NewAgent(db, store)
}

func TestDeliverSingle(t *testing.T) {
	_, store, agent := newEnv(t)
	item := &queue.Item{ID: "m1", Sender: "s@x.test", Rcpts: []string{"alice@dept.test"}, Data: []byte("hi")}
	if err := agent.Deliver(item); err != nil {
		t.Fatal(err)
	}
	got, err := store.Read("alice", "m1")
	if err != nil || string(got) != "hi" {
		t.Fatalf("read = %q, %v", got, err)
	}
	st := agent.Stats()
	if st.Mails != 1 || st.RcptDeliveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeliverMultiRecipient(t *testing.T) {
	_, store, agent := newEnv(t)
	item := &queue.Item{ID: "m1", Rcpts: []string{"alice@dept.test", "bob@dept.test"}, Data: []byte("x")}
	if err := agent.Deliver(item); err != nil {
		t.Fatal(err)
	}
	for _, box := range []string{"alice", "bob"} {
		if _, err := store.Read(box, "m1"); err != nil {
			t.Fatalf("%s: %v", box, err)
		}
	}
}

func TestAliasesDeduplicated(t *testing.T) {
	db, store, agent := newEnv(t)
	db.AddAlias("postmaster@dept.test", "alice@dept.test")
	item := &queue.Item{
		ID:    "m1",
		Rcpts: []string{"alice@dept.test", "postmaster@dept.test"},
		Data:  []byte("x"),
	}
	if err := agent.Deliver(item); err != nil {
		t.Fatal(err)
	}
	ids, err := store.List("alice")
	if err != nil || len(ids) != 1 {
		t.Fatalf("alice got %v mails (%v), want exactly 1", ids, err)
	}
	if agent.Stats().RcptDeliveries != 1 {
		t.Fatalf("stats = %+v", agent.Stats())
	}
}

func TestUnresolvableRecipientsDropped(t *testing.T) {
	_, store, agent := newEnv(t)
	item := &queue.Item{
		ID:    "m1",
		Rcpts: []string{"ghost@dept.test", "alice@dept.test"},
		Data:  []byte("x"),
	}
	if err := agent.Deliver(item); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Read("alice", "m1"); err != nil {
		t.Fatal(err)
	}
	st := agent.Stats()
	if st.DroppedRcpts != 1 || st.RcptDeliveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAllRecipientsUnresolvableSucceeds(t *testing.T) {
	// A permanently undeliverable mail must not bounce around the
	// deferred queue forever.
	_, _, agent := newEnv(t)
	item := &queue.Item{ID: "m1", Rcpts: []string{"ghost@dept.test"}, Data: []byte("x")}
	if err := agent.Deliver(item); err != nil {
		t.Fatal(err)
	}
	st := agent.Stats()
	if st.Mails != 0 || st.DroppedRcpts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeliverThroughQueue(t *testing.T) {
	_, store, agent := newEnv(t)
	m, err := queue.NewManager(queue.Config{Deliverer: agent})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	id, err := m.Enqueue("s@x.test", []string{"bob@dept.test"}, []byte("queued"))
	if err != nil {
		t.Fatal(err)
	}
	if !m.WaitIdle(2_000_000_000) {
		t.Fatal("queue never idle")
	}
	got, err := store.Read("bob", id)
	if err != nil || string(got) != "queued" {
		t.Fatalf("read = %q, %v", got, err)
	}
}
