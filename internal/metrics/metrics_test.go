package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("zero counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatal("zero gauge not 0")
	}
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
}

func TestSampleBasics(t *testing.T) {
	s := NewSample(4)
	for _, x := range []float64{3, 1, 2} {
		s.Observe(x)
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	if s.Sum() != 6 {
		t.Fatalf("sum = %v, want 6", s.Sum())
	}
	if s.Mean() != 2 {
		t.Fatalf("mean = %v, want 2", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("min/max = %v/%v, want 1/3", s.Min(), s.Max())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Quantile(0.5) != 0 || s.FractionBelow(10) != 0 {
		t.Fatal("empty sample should return zeros")
	}
	if s.CDF(5) != nil {
		t.Fatal("empty sample CDF should be nil")
	}
}

func TestSampleQuantileInterpolation(t *testing.T) {
	s := NewSample(0)
	for _, x := range []float64{10, 20, 30, 40} {
		s.Observe(x)
	}
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSampleObserveAfterQuantile(t *testing.T) {
	// Observing after a quantile query must re-sort.
	s := NewSample(0)
	s.Observe(5)
	_ = s.Quantile(0.5)
	s.Observe(1)
	if got := s.Min(); got != 1 {
		t.Fatalf("min after late observation = %v, want 1", got)
	}
}

func TestSampleFractionBelow(t *testing.T) {
	s := NewSample(0)
	for _, x := range []float64{1, 2, 2, 3} {
		s.Observe(x)
	}
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := s.FractionBelow(c.x); got != c.want {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSampleCDF(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	pts := s.CDF(10)
	if len(pts) != 10 {
		t.Fatalf("CDF len = %d, want 10", len(pts))
	}
	if pts[0].X != 1 || pts[len(pts)-1].X != 100 {
		t.Fatalf("CDF span = [%v,%v], want [1,100]", pts[0].X, pts[len(pts)-1].X)
	}
	if pts[len(pts)-1].Frac != 1 {
		t.Fatalf("CDF final frac = %v, want 1", pts[len(pts)-1].Frac)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Frac < pts[i-1].Frac {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
}

func TestSampleCDFAt(t *testing.T) {
	s := NewSample(0)
	s.Observe(1)
	s.Observe(3)
	pts := s.CDFAt([]float64{0, 2, 4})
	want := []float64{0, 0.5, 1}
	for i, p := range pts {
		if p.Frac != want[i] {
			t.Errorf("CDFAt[%d] = %v, want %v", i, p.Frac, want[i])
		}
	}
}

func TestSampleQuantileProperty(t *testing.T) {
	// Property: for any sample, quantiles are monotone in q and bounded by
	// min/max.
	f := func(xs []float64, q1, q2 float64) bool {
		if len(xs) == 0 {
			return true
		}
		s := NewSample(len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Observe(x)
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := s.Quantile(q1), s.Quantile(q2)
		return a <= b && a >= s.Min() && b <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFractionBelowProperty(t *testing.T) {
	// Property: FractionBelow is a valid CDF — monotone, 0 below min,
	// 1 at and above max.
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := NewSample(len(clean))
		for _, x := range clean {
			s.Observe(x)
		}
		if s.FractionBelow(math.Nextafter(s.Min(), math.Inf(-1))) != 0 {
			return false
		}
		if s.FractionBelow(s.Max()) != 1 {
			return false
		}
		return s.FractionBelow(s.Min()) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3})
	for _, x := range []float64{0.5, 1, 1.5, 2.5, 10} {
		h.Observe(x)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || len(counts) != 4 {
		t.Fatalf("buckets = %d/%d, want 4/4", len(bounds), len(counts))
	}
	// x ≤ 1 goes into bucket 0 (SearchFloat64s returns first index with
	// bounds[i] >= x), so bucket 0 holds {0.5, 1}.
	want := []int64{2, 1, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if !math.IsInf(bounds[3], 1) {
		t.Fatal("last bound should be +Inf")
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Mean(); math.Abs(got-3.1) > 1e-9 {
		t.Fatalf("mean = %v, want 3.1", got)
	}
}

func TestHistogramUnsortedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewHistogram([]float64{2, 1})
}

// Regression test: NewHistogram used to accept duplicate bounds
// silently, leaving a bucket that could never count and skewing
// cumulative exposition. Duplicates must now panic with a message
// naming the offending indices.
func TestHistogramDuplicateBoundsPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate bounds did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "bounds[2]") || !strings.Contains(msg, "strictly increasing") {
			t.Fatalf("panic message unhelpful: %v", r)
		}
	}()
	NewHistogram([]float64{1, 2, 2, 3})
}

func TestLinearBounds(t *testing.T) {
	bs := LinearBounds(10, 5, 3)
	want := []float64{10, 15, 20}
	for i, b := range bs {
		if b != want[i] {
			t.Fatalf("bounds = %v, want %v", bs, want)
		}
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput(0)
	tp.Record(1*time.Second, 50)
	tp.Record(2*time.Second, 50)
	if tp.Count() != 100 {
		t.Fatalf("count = %d, want 100", tp.Count())
	}
	if got := tp.PerSecond(2 * time.Second); got != 50 {
		t.Fatalf("rate = %v, want 50", got)
	}
	// Extending the window dilutes the rate.
	if got := tp.PerSecond(4 * time.Second); got != 25 {
		t.Fatalf("rate = %v, want 25", got)
	}
	// asOf earlier than last event must not shrink the window.
	if got := tp.PerSecond(1 * time.Second); got != 50 {
		t.Fatalf("rate = %v, want 50", got)
	}
}

func TestThroughputEmptyWindow(t *testing.T) {
	tp := NewThroughput(5 * time.Second)
	if got := tp.PerSecond(5 * time.Second); got != 0 {
		t.Fatalf("rate with zero window = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("b", 2)
	out := tbl.String()
	if out == "" {
		t.Fatal("empty render")
	}
	for _, want := range []string{"name", "alpha", "1.500", "2"} {
		if !contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2, "2"}, {2.5, "2.500"}, {-3, "-3"}, {0.125, "0.125"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
