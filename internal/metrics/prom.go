package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// series, histograms as cumulative _bucket/_sum/_count series with "le"
// labels, samples as summaries with "quantile" labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastName string
	for _, m := range r.Snapshot() {
		name := promName(m.Name)
		if name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, m.Kind); err != nil {
				return err
			}
			lastName = name
		}
		if err := writePromMetric(w, name, m); err != nil {
			return err
		}
	}
	return nil
}

func writePromMetric(w io.Writer, name string, m Metric) error {
	switch m.Kind {
	case KindCounter, KindGauge, KindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, promLabels(m.Labels, "", ""), promFloat(m.Value))
		return err
	case KindHistogram:
		cum := int64(0)
		for i, c := range m.Counts {
			cum += c
			le := "+Inf"
			if i < len(m.Bounds) {
				le = promFloat(m.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(m.Labels, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(m.Labels, "", ""), promFloat(m.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(m.Labels, "", ""), m.Count)
		return err
	case KindSample:
		for _, q := range SampleQuantiles {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, promLabels(m.Labels, "quantile", promFloat(q)), promFloat(m.Quantiles[q])); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(m.Labels, "", ""), promFloat(m.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(m.Labels, "", ""), m.Count)
		return err
	default:
		return fmt.Errorf("metrics: cannot render kind %v", m.Kind)
	}
}

// promName sanitizes a metric name to the Prometheus charset.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set, with an optional extra label (le /
// quantile) appended.
func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", promName(l.Key), l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat renders a float the way Prometheus expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// ExpvarMap returns the registry's state as a plain map suitable for
// expvar.Func / JSON encoding: counters and gauges map to numbers,
// histograms to {count, sum, p50, p99}, samples to {count, sum,
// quantiles...}. Keys are the metric identity strings.
func (r *Registry) ExpvarMap() map[string]interface{} {
	out := make(map[string]interface{})
	for _, m := range r.Snapshot() {
		key := keyFor(m.Name, m.Labels)
		switch m.Kind {
		case KindCounter, KindGauge, KindGaugeFunc:
			out[key] = m.Value
		case KindHistogram:
			out[key] = map[string]interface{}{
				"count": m.Count,
				"sum":   m.Sum,
				"p50":   m.Quantile(0.5),
				"p99":   m.Quantile(0.99),
			}
		case KindSample:
			v := map[string]interface{}{"count": m.Count, "sum": m.Sum}
			for q, val := range m.Quantiles {
				v[fmt.Sprintf("p%g", 100*q)] = val
			}
			out[key] = v
		}
	}
	return out
}
