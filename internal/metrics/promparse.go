package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsePrometheus reads a Prometheus text exposition (the format
// WritePrometheus emits) back into Metric snapshots, reversing the
// rendering: histogram _bucket series are de-accumulated into per-bucket
// counts, summary quantile series fold into the Quantiles map, and _sum
// and _count rejoin their family. It is the scrape half of the console
// tools (cmd/mailtop reads /metrics through it), and the inverse used by
// the exposition round-trip tests.
//
// Families without a # TYPE line parse as gauges. Unparseable lines are
// an error — the input is machine-generated, so damage means truncation.
func ParsePrometheus(r io.Reader) ([]Metric, error) {
	kinds := make(map[string]Kind)
	byKey := make(map[string]*promSeries)
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) == 4 && f[1] == "TYPE" {
				kinds[f[2]] = promKind(f[3])
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		family, part := name, ""
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name {
				if k, ok := kinds[base]; ok && (k == KindHistogram || k == KindSample) {
					family, part = base, suffix
					break
				}
			}
		}
		kind, ok := kinds[family]
		if !ok {
			kind = KindGauge
		}

		var special string // le or quantile value, extracted from labels
		if kind == KindHistogram || kind == KindSample {
			keep := labels[:0]
			for _, l := range labels {
				if (kind == KindHistogram && l.Key == "le") || (kind == KindSample && l.Key == "quantile") {
					special = l.Value
					continue
				}
				keep = append(keep, l)
			}
			labels = keep
		}

		key := keyFor(family, labels)
		s := byKey[key]
		if s == nil {
			s = &promSeries{m: Metric{Name: family, Labels: labels, Kind: kind}}
			byKey[key] = s
			order = append(order, key)
		}
		switch {
		case kind == KindCounter || kind == KindGauge || kind == KindGaugeFunc:
			s.m.Value = value
		case part == "_sum":
			s.m.Sum = value
		case part == "_count":
			s.m.Count = int64(value)
		case kind == KindHistogram:
			le, err := parsePromFloat(special)
			if err != nil {
				return nil, fmt.Errorf("metrics: line %d: bad le %q", lineNo, special)
			}
			s.buckets = append(s.buckets, promBucket{le: le, cum: int64(value)})
		case kind == KindSample:
			q, err := parsePromFloat(special)
			if err != nil {
				return nil, fmt.Errorf("metrics: line %d: bad quantile %q", lineNo, special)
			}
			if s.m.Quantiles == nil {
				s.m.Quantiles = make(map[float64]float64)
			}
			s.m.Quantiles[q] = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make([]Metric, 0, len(order))
	for _, key := range order {
		s := byKey[key]
		if len(s.buckets) > 0 {
			sort.Slice(s.buckets, func(i, j int) bool { return s.buckets[i].le < s.buckets[j].le })
			s.m.Bounds = make([]float64, 0, len(s.buckets)-1)
			s.m.Counts = make([]int64, len(s.buckets))
			prev := int64(0)
			for i, b := range s.buckets {
				if !math.IsInf(b.le, 1) {
					s.m.Bounds = append(s.m.Bounds, b.le)
				}
				s.m.Counts[i] = b.cum - prev
				prev = b.cum
			}
		}
		out = append(out, s.m)
	}
	return out, nil
}

// promSeries accumulates one metric family member during parsing.
type promSeries struct {
	m       Metric
	buckets []promBucket
}

type promBucket struct {
	le  float64
	cum int64
}

// promKind maps a TYPE token back to a Kind.
func promKind(s string) Kind {
	switch s {
	case "counter":
		return KindCounter
	case "histogram":
		return KindHistogram
	case "summary":
		return KindSample
	default: // gauge, untyped
		return KindGauge
	}
}

// parsePromSample splits `name{k="v",...} value` into its parts.
func parsePromSample(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ \t")
	if i <= 0 {
		return "", nil, 0, fmt.Errorf("no metric name in %q", line)
	}
	name, rest = rest[:i], rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated labels in %q", line)
		}
		labels, err = parsePromLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	if i := strings.IndexAny(valStr, " \t"); i >= 0 {
		valStr = valStr[:i] // ignore a trailing timestamp
	}
	value, err = parsePromFloat(valStr)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q in %q", valStr, line)
	}
	return name, labels, value, nil
}

// parsePromLabels parses the inside of a {...} label block.
func parsePromLabels(s string) ([]Label, error) {
	var labels []Label
	for s != "" {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("bad label in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = strings.TrimSpace(s[eq+1:])
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted label value in %q", s)
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		val, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value %q: %v", s[:end+1], err)
		}
		labels = append(labels, Label{Key: key, Value: val})
		s = strings.TrimSpace(s[end+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	return labels, nil
}

// parsePromFloat parses a float in the exposition format, including the
// +Inf/-Inf/NaN spellings promFloat emits.
func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
