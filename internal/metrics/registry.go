package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates the metric types a Registry vends.
type Kind int

// The metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindGaugeFunc
	KindHistogram
	KindSample
)

// String names the kind for exposition formats.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindSample:
		return "summary"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Label is one key=value dimension of a metric.
type Label struct {
	Key, Value string
}

// Registry is a named, labeled metric namespace: the observability API
// every subsystem registers its instruments into, and the single thing
// an admin endpoint needs to expose them all. Counter, Gauge, Histogram,
// and Sample vend the package's primitive types get-or-create style —
// calling twice with the same name and labels returns the same instance,
// so independently wired components share series naturally. Registration
// takes a lock; the returned instruments record lock-free, so the
// intended pattern is to register once at construction time and hold the
// pointer on the hot path.
//
// Identity is (name, sorted labels). Registering the same identity as a
// different kind — or a histogram with different bounds — panics:
// colliding definitions are a wiring bug that would otherwise surface as
// silently corrupt series.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry

	// labelLimit caps distinct values per (family, label key); 0 = off.
	// Past the cap, new values clamp to OverflowLabelValue (see
	// SetLabelValueLimit).
	labelLimit int
	labelVals  map[string]map[string]struct{}
}

// entry is one registered metric.
type entry struct {
	name   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
	sample  *Sample
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// defaultRegistry is the process-wide registry (see Default).
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Commands that expose one
// /metrics endpoint wire every component to it; libraries default to a
// private registry so tests and simulations stay isolated unless a
// registry is passed in.
func Default() *Registry { return defaultRegistry }

// parseLabels validates and normalizes alternating key/value pairs.
func parseLabels(name string, kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list for %q: %q (want key/value pairs)", name, kv))
	}
	if len(kv) == 0 {
		return nil
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if kv[i] == "" {
			panic(fmt.Sprintf("metrics: empty label key for %q", name))
		}
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	for i := 1; i < len(labels); i++ {
		if labels[i].Key == labels[i-1].Key {
			panic(fmt.Sprintf("metrics: duplicate label key %q for %q", labels[i].Key, name))
		}
	}
	return labels
}

// keyFor builds the identity string for (name, labels).
func keyFor(name string, labels []Label) string {
	if name == "" {
		panic("metrics: empty metric name")
	}
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the entry for key, or nil. Read lock only.
func (r *Registry) lookup(key string) *entry {
	r.mu.RLock()
	e := r.entries[key]
	r.mu.RUnlock()
	return e
}

// OverflowLabelValue is the bucket a label value clamps to once its
// family exceeds the registry's label-value limit.
const OverflowLabelValue = "other"

// SetLabelValueLimit caps the number of distinct values the registry
// admits per (metric family, label key); further values are clamped to
// OverflowLabelValue so one series absorbs the tail and unbounded input
// (per-source IPs, user-supplied strings) cannot blow up /metrics.
// Zero disables the guard (the default). Values already registered when
// the limit is set are grandfathered in and count toward the cap.
//
// Clamping happens on the registration slow path only: calls that hit an
// already-registered identity are untouched, and a clamped caller gets
// the shared overflow series back, so instrument pointers keep working —
// but Find with the raw (clamped) label values will miss; look up the
// OverflowLabelValue series instead.
func (r *Registry) SetLabelValueLimit(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.labelLimit = n
	if n <= 0 {
		r.labelVals = nil
		return
	}
	r.labelVals = make(map[string]map[string]struct{})
	for _, e := range r.entries {
		for _, l := range e.labels {
			r.admitLocked(e.name, l.Key, l.Value)
		}
	}
}

// admitLocked records a (family, key) label value, ignoring the cap —
// for seeding from pre-existing entries.
func (r *Registry) admitLocked(name, key, value string) {
	fk := name + "\x00" + key
	set := r.labelVals[fk]
	if set == nil {
		set = make(map[string]struct{})
		r.labelVals[fk] = set
	}
	set[value] = struct{}{}
}

// clampLocked applies the label-value limit to a new registration,
// returning the (possibly rewritten) label set and whether it changed.
func (r *Registry) clampLocked(name string, labels []Label) ([]Label, bool) {
	changed := false
	for i, l := range labels {
		if l.Value == OverflowLabelValue {
			continue
		}
		fk := name + "\x00" + l.Key
		set := r.labelVals[fk]
		if set == nil {
			set = make(map[string]struct{})
			r.labelVals[fk] = set
		}
		if _, ok := set[l.Value]; ok {
			continue
		}
		if len(set) < r.labelLimit {
			set[l.Value] = struct{}{}
			continue
		}
		if !changed {
			labels = append([]Label(nil), labels...)
			changed = true
		}
		labels[i].Value = OverflowLabelValue
	}
	return labels, changed
}

// register inserts e unless the key is already present, in which case
// the existing entry is returned (first registration wins). When a
// label-value limit is set, over-limit label values clamp to the
// overflow bucket before insertion.
func (r *Registry) register(key string, e *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.entries[key]; ok {
		return existing
	}
	if r.labelLimit > 0 {
		if nl, changed := r.clampLocked(e.name, e.labels); changed {
			e.labels = nl
			key = keyFor(e.name, nl)
			if existing, ok := r.entries[key]; ok {
				return existing
			}
		}
	}
	r.entries[key] = e
	return e
}

// checkKind panics when an existing entry's kind conflicts.
func (e *entry) checkKind(want Kind) *entry {
	if e.kind != want {
		panic(fmt.Sprintf("metrics: %s already registered as %s, requested as %s",
			keyFor(e.name, e.labels), e.kind, want))
	}
	return e
}

// Counter returns the counter registered under name and the given
// key/value label pairs, creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	ls := parseLabels(name, labels)
	key := keyFor(name, ls)
	if e := r.lookup(key); e != nil {
		return e.checkKind(KindCounter).counter
	}
	e := r.register(key, &entry{name: name, labels: ls, kind: KindCounter, counter: &Counter{}})
	return e.checkKind(KindCounter).counter
}

// Gauge returns the gauge registered under name and the given key/value
// label pairs, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	ls := parseLabels(name, labels)
	key := keyFor(name, ls)
	if e := r.lookup(key); e != nil {
		return e.checkKind(KindGauge).gauge
	}
	e := r.register(key, &entry{name: name, labels: ls, kind: KindGauge, gauge: &Gauge{}})
	return e.checkKind(KindGauge).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time — for quantities another component already tracks (queue depths,
// transport counters). Re-registering the same identity replaces fn, so
// a reconstructed component can re-point the series at its new state.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if fn == nil {
		panic(fmt.Sprintf("metrics: nil GaugeFunc for %q", name))
	}
	ls := parseLabels(name, labels)
	key := keyFor(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.entries[key]; ok {
		existing.checkKind(KindGaugeFunc)
		existing.fn = fn
		return
	}
	if r.labelLimit > 0 {
		if nl, changed := r.clampLocked(name, ls); changed {
			ls = nl
			key = keyFor(name, nl)
			if existing, ok := r.entries[key]; ok {
				existing.checkKind(KindGaugeFunc)
				existing.fn = fn
				return
			}
		}
	}
	r.entries[key] = &entry{name: name, labels: ls, kind: KindGaugeFunc, fn: fn}
}

// Histogram returns the histogram registered under name and the given
// key/value label pairs, creating it with the given bounds on first use.
// Re-registering with different bounds panics.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	ls := parseLabels(name, labels)
	key := keyFor(name, ls)
	e := r.lookup(key)
	if e == nil {
		e = r.register(key, &entry{name: name, labels: ls, kind: KindHistogram, hist: NewHistogram(bounds)})
	}
	e.checkKind(KindHistogram)
	if len(e.hist.bounds) != len(bounds) {
		panic(fmt.Sprintf("metrics: %s re-registered with %d bounds, has %d", key, len(bounds), len(e.hist.bounds)))
	}
	for i := range bounds {
		if e.hist.bounds[i] != bounds[i] {
			panic(fmt.Sprintf("metrics: %s re-registered with different bounds", key))
		}
	}
	return e.hist
}

// Sample returns the exact-sample reservoir registered under name and
// the given key/value label pairs, creating it on first use. Samples
// retain every observation; prefer Histogram for series that grow
// without bound in a long-running server.
func (r *Registry) Sample(name string, labels ...string) *Sample {
	ls := parseLabels(name, labels)
	key := keyFor(name, ls)
	if e := r.lookup(key); e != nil {
		return e.checkKind(KindSample).sample
	}
	e := r.register(key, &entry{name: name, labels: ls, kind: KindSample, sample: NewSample(0)})
	return e.checkKind(KindSample).sample
}

// SampleQuantiles are the quantiles a Sample reports in snapshots and
// text exposition.
var SampleQuantiles = []float64{0.5, 0.9, 0.99}

// Metric is one read-only snapshot of a registered metric.
type Metric struct {
	Name   string
	Labels []Label
	Kind   Kind

	// Value is the current value for counters and gauges.
	Value float64

	// Count and Sum are set for histograms and samples.
	Count int64
	Sum   float64

	// Bounds and Counts are the histogram's buckets: Bounds excludes the
	// implicit +Inf bucket; Counts has one extra final element for it.
	Bounds []float64
	Counts []int64

	// Quantiles holds SampleQuantiles values for samples.
	Quantiles map[float64]float64
}

// Quantile estimates the q-quantile of a histogram snapshot (see
// Histogram.Quantile); for samples it returns the nearest precomputed
// quantile. It returns 0 for other kinds.
func (m Metric) Quantile(q float64) float64 {
	switch m.Kind {
	case KindHistogram:
		bounds := make([]float64, len(m.Counts))
		copy(bounds, m.Bounds)
		bounds[len(bounds)-1] = math.Inf(1)
		return bucketQuantile(bounds, m.Counts, q)
	case KindSample:
		best, bestDist := 0.0, 2.0
		for sq, v := range m.Quantiles {
			if d := math.Abs(sq - q); d < bestDist {
				best, bestDist = v, d
			}
		}
		return best
	default:
		return 0
	}
}

func (e *entry) snapshot() Metric {
	m := Metric{Name: e.name, Labels: e.labels, Kind: e.kind}
	switch e.kind {
	case KindCounter:
		m.Value = float64(e.counter.Value())
	case KindGauge:
		m.Value = e.gauge.Value()
	case KindGaugeFunc:
		m.Value = e.fn()
	case KindHistogram:
		bs, cs := e.hist.Buckets()
		m.Bounds = bs[:len(bs)-1]
		m.Counts = cs
		m.Count = e.hist.Count()
		m.Sum = e.hist.Sum()
	case KindSample:
		m.Count = int64(e.sample.Count())
		m.Sum = e.sample.Sum()
		m.Quantiles = make(map[float64]float64, len(SampleQuantiles))
		for _, q := range SampleQuantiles {
			m.Quantiles[q] = e.sample.Quantile(q)
		}
	}
	return m
}

// Snapshot returns a point-in-time view of every registered metric,
// sorted by name then label identity — the stable iteration order the
// exposition formats and experiments rely on.
func (r *Registry) Snapshot() []Metric {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	keys := make([]string, 0, len(r.entries))
	for k, e := range r.entries {
		keys = append(keys, k)
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Sort(&keyedEntries{keys: keys, entries: entries})
	out := make([]Metric, len(entries))
	for i, e := range entries {
		out[i] = e.snapshot()
	}
	return out
}

// Find returns a snapshot of the metric registered under name and the
// given key/value label pairs.
func (r *Registry) Find(name string, labels ...string) (Metric, bool) {
	key := keyFor(name, parseLabels(name, labels))
	e := r.lookup(key)
	if e == nil {
		return Metric{}, false
	}
	return e.snapshot(), true
}

// keyedEntries sorts entries by their identity key.
type keyedEntries struct {
	keys    []string
	entries []*entry
}

func (s *keyedEntries) Len() int           { return len(s.keys) }
func (s *keyedEntries) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *keyedEntries) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
}
