package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("conns_total", "arch", "hybrid")
	c2 := r.Counter("conns_total", "arch", "hybrid")
	if c1 != c2 {
		t.Fatal("same identity returned distinct counters")
	}
	c3 := r.Counter("conns_total", "arch", "vanilla")
	if c3 == c1 {
		t.Fatal("different label value shared an instance")
	}
	// Label order must not matter for identity.
	g1 := r.Gauge("depth", "a", "1", "b", "2")
	g2 := r.Gauge("depth", "b", "2", "a", "1")
	if g1 != g2 {
		t.Fatal("label order changed identity")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge over counter name did not panic")
		}
	}()
	r.Gauge("x")
}

func TestRegistryHistogramBoundsConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", []float64{1, 2, 3})
	if h := r.Histogram("lat", []float64{1, 2, 3}); h == nil {
		t.Fatal("identical re-registration failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("different bounds did not panic")
		}
	}()
	r.Histogram("lat", []float64{1, 2, 4})
}

func TestRegistryOddLabelsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list did not panic")
		}
	}()
	r.Counter("x", "key-without-value")
}

func TestRegistrySnapshotAndFind(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(3)
	r.Gauge("a_gauge").Set(1.5)
	r.GaugeFunc("c_fn", func() float64 { return 42 })
	h := r.Histogram("d_lat", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)
	s := r.Sample("e_sample")
	s.Observe(2)
	s.Observe(4)

	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d metrics, want 5", len(snap))
	}
	// Sorted by name.
	for i := 1; i < len(snap); i++ {
		if snap[i].Name < snap[i-1].Name {
			t.Fatalf("snapshot unsorted: %s before %s", snap[i-1].Name, snap[i].Name)
		}
	}

	m, ok := r.Find("b_total")
	if !ok || m.Value != 3 {
		t.Fatalf("Find(b_total) = %+v, %v", m, ok)
	}
	m, ok = r.Find("c_fn")
	if !ok || m.Value != 42 {
		t.Fatalf("Find(c_fn) = %+v, %v", m, ok)
	}
	m, ok = r.Find("d_lat")
	if !ok || m.Count != 3 || len(m.Counts) != 3 {
		t.Fatalf("Find(d_lat) = %+v, %v", m, ok)
	}
	if q := m.Quantile(0.5); q <= 0 || q > 1 {
		t.Fatalf("histogram snapshot p50 = %v, want within (0, 1]", q)
	}
	m, ok = r.Find("e_sample")
	if !ok || m.Count != 2 || m.Sum != 6 {
		t.Fatalf("Find(e_sample) = %+v, %v", m, ok)
	}
	if _, ok := r.Find("missing"); ok {
		t.Fatal("Find(missing) succeeded")
	}
}

func TestRegistryGaugeFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("depth", func() float64 { return 1 })
	r.GaugeFunc("depth", func() float64 { return 2 })
	m, _ := r.Find("depth")
	if m.Value != 2 {
		t.Fatalf("GaugeFunc value = %v, want 2 (replacement)", m.Value)
	}
}

// TestRegistryConcurrent hammers registration, recording, and snapshots
// from many goroutines; it exists to fail under -race if the registry or
// its vended instruments are unsound.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	bounds := LatencyBounds()
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arch := "hybrid"
			if w%2 == 0 {
				arch = "vanilla"
			}
			for i := 0; i < 500; i++ {
				// Registration races on the same identities on purpose.
				r.Counter("conns_total", "arch", arch).Inc()
				r.Histogram("stage_seconds", bounds, "arch", arch, "stage", "dialog").Observe(float64(i) * 1e-4)
				r.Gauge("depth", "arch", arch).Add(1)
				r.Sample("lat", "arch", arch).Observe(float64(i))
				if i%50 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	m, ok := r.Find("conns_total", "arch", "hybrid")
	if !ok || m.Value != workers/2*500 {
		t.Fatalf("hybrid conns = %+v, want %d", m, workers/2*500)
	}
	m, _ = r.Find("stage_seconds", "arch", "vanilla", "stage", "dialog")
	if m.Count != workers/2*500 {
		t.Fatalf("vanilla dialog count = %d", m.Count)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("mails_total", "arch", "hybrid").Add(7)
	h := r.Histogram("stage_seconds", []float64{0.001, 0.01}, "stage", "dialog")
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	s := r.Sample("admit_seconds")
	s.Observe(0.25)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE mails_total counter",
		`mails_total{arch="hybrid"} 7`,
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="dialog",le="0.001"} 1`,
		`stage_seconds_bucket{stage="dialog",le="0.01"} 2`,
		`stage_seconds_bucket{stage="dialog",le="+Inf"} 3`,
		`stage_seconds_count{stage="dialog"} 3`,
		"# TYPE admit_seconds summary",
		`admit_seconds{quantile="0.5"} 0.25`,
		"admit_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPromNameSanitized(t *testing.T) {
	if got := promName("dnsbl.lookups/total"); got != "dnsbl_lookups_total" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("0abc"); got != "_abc" {
		t.Fatalf("promName leading digit = %q", got)
	}
}

func TestExpvarMap(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "zone", "bl.test").Add(2)
	r.Histogram("h", []float64{1}).Observe(0.5)
	m := r.ExpvarMap()
	if m["c{zone=bl.test}"] != 2.0 {
		t.Fatalf("expvar counter = %v", m["c{zone=bl.test}"])
	}
	hv, ok := m["h"].(map[string]interface{})
	if !ok || hv["count"] != int64(1) {
		t.Fatalf("expvar histogram = %#v", m["h"])
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, x := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 3, 8} {
		h.Observe(x)
	}
	if p0 := h.Quantile(0); p0 < 0 || p0 > 1 {
		t.Fatalf("p0 = %v", p0)
	}
	p50 := h.Quantile(0.5)
	if p50 < 2 || p50 > 4 {
		t.Fatalf("p50 = %v, want within bucket (2,4]", p50)
	}
	// +Inf bucket estimates clamp to the largest finite bound.
	if p100 := h.Quantile(1); p100 != 4 {
		t.Fatalf("p100 = %v, want clamp to 4", p100)
	}
	if q := NewHistogram([]float64{1}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestExponentialBounds(t *testing.T) {
	bs := ExponentialBounds(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if math.Abs(bs[i]-want[i]) > 1e-12 {
			t.Fatalf("bounds = %v", bs)
		}
	}
	if len(LatencyBounds()) != 22 {
		t.Fatal("LatencyBounds length changed without updating docs")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad ExponentialBounds args did not panic")
		}
	}()
	ExponentialBounds(0, 2, 3)
}

// BenchmarkRegistryCounterAdd pins the hot path at zero allocations: the
// counter is registered once and the pointer held, as servers do.
func BenchmarkRegistryCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("conns_total", "arch", "hybrid")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if allocs := testing.AllocsPerRun(1000, func() { c.Add(1) }); allocs != 0 {
		b.Fatalf("Counter.Add allocates %v times per op", allocs)
	}
}

// BenchmarkRegistryHistogramObserve pins Histogram.Observe at zero
// allocations under parallel recording.
func BenchmarkRegistryHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("stage_seconds", LatencyBounds(), "arch", "hybrid", "stage", "dialog")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		x := 1e-4
		for pb.Next() {
			h.Observe(x)
			x += 1e-6
		}
	})
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.012) }); allocs != 0 {
		b.Fatalf("Histogram.Observe allocates %v times per op", allocs)
	}
}

// BenchmarkRegistryLookup measures the registration fast path (map hit
// under RLock) for callers that cannot hold the pointer.
func BenchmarkRegistryLookup(b *testing.B) {
	r := NewRegistry()
	r.Counter("conns_total", "arch", "hybrid")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("conns_total", "arch", "hybrid").Inc()
	}
}

func TestLabelValueLimitClampsToOther(t *testing.T) {
	r := NewRegistry()
	r.SetLabelValueLimit(2)
	a := r.Counter("source_conns", "ip", "10.0.0.1")
	b := r.Counter("source_conns", "ip", "10.0.0.2")
	c := r.Counter("source_conns", "ip", "10.0.0.3")
	d := r.Counter("source_conns", "ip", "10.0.0.4")
	if a == b || a == c {
		t.Fatal("admitted series must stay distinct")
	}
	if c != d {
		t.Fatal("over-limit values must share the overflow series")
	}
	c.Add(3)
	m, ok := r.Find("source_conns", "ip", OverflowLabelValue)
	if !ok || m.Value != 3 {
		t.Fatalf("overflow series = %+v (ok=%v), want value 3", m, ok)
	}
	// The admitted values keep resolving to their own series.
	a.Inc()
	if m, _ := r.Find("source_conns", "ip", "10.0.0.1"); m.Value != 1 {
		t.Fatalf("admitted series = %+v", m)
	}
	// Raw lookup of a clamped value misses: the series was never created.
	if _, ok := r.Find("source_conns", "ip", "10.0.0.3"); ok {
		t.Fatal("clamped raw value must not be registered")
	}
}

func TestLabelValueLimitPerKeyAndFamily(t *testing.T) {
	r := NewRegistry()
	r.SetLabelValueLimit(1)
	r.Counter("fam_a", "ip", "10.0.0.1")
	r.Counter("fam_a", "zone", "bl.example") // different key: own budget
	r.Counter("fam_b", "ip", "10.9.9.9")     // different family: own budget
	over := r.Counter("fam_a", "ip", "10.0.0.2", "zone", "bl.example")
	over.Inc()
	if m, ok := r.Find("fam_a", "ip", OverflowLabelValue, "zone", "bl.example"); !ok || m.Value != 1 {
		t.Fatalf("mixed clamp = %+v (ok=%v)", m, ok)
	}
	if _, ok := r.Find("fam_b", "ip", "10.9.9.9"); !ok {
		t.Fatal("fam_b budget must be independent")
	}
}

func TestLabelValueLimitSeedsExisting(t *testing.T) {
	r := NewRegistry()
	r.Counter("source_conns", "ip", "10.0.0.1")
	r.Counter("source_conns", "ip", "10.0.0.2")
	r.SetLabelValueLimit(2) // both existing values count toward the cap
	c := r.Counter("source_conns", "ip", "10.0.0.3")
	c.Inc()
	if m, ok := r.Find("source_conns", "ip", OverflowLabelValue); !ok || m.Value != 1 {
		t.Fatalf("post-seed clamp = %+v (ok=%v)", m, ok)
	}
}

func TestLabelValueLimitGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.SetLabelValueLimit(1)
	r.GaugeFunc("source_rate", func() float64 { return 1 }, "ip", "10.0.0.1")
	r.GaugeFunc("source_rate", func() float64 { return 2 }, "ip", "10.0.0.2")
	r.GaugeFunc("source_rate", func() float64 { return 3 }, "ip", "10.0.0.3")
	if m, ok := r.Find("source_rate", "ip", "10.0.0.1"); !ok || m.Value != 1 {
		t.Fatalf("admitted gauge-func = %+v (ok=%v)", m, ok)
	}
	// Over-limit registrations collapse onto the overflow series; the
	// last fn wins (GaugeFunc re-registration semantics).
	if m, ok := r.Find("source_rate", "ip", OverflowLabelValue); !ok || m.Value != 3 {
		t.Fatalf("overflow gauge-func = %+v (ok=%v)", m, ok)
	}
	if len(r.Snapshot()) != 2 {
		t.Fatalf("snapshot = %+v, want 2 series", r.Snapshot())
	}
}

func TestLabelValueLimitOffByDefault(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		r.Counter("source_conns", "ip", strings.Repeat("x", i+1))
	}
	if got := len(r.Snapshot()); got != 100 {
		t.Fatalf("unguarded registry has %d series, want 100", got)
	}
}

func TestLabelValueLimitOtherNeverCounts(t *testing.T) {
	r := NewRegistry()
	r.SetLabelValueLimit(1)
	// Registering "other" explicitly must not consume the budget.
	r.Counter("source_conns", "ip", OverflowLabelValue)
	c := r.Counter("source_conns", "ip", "10.0.0.1")
	c.Inc()
	if m, ok := r.Find("source_conns", "ip", "10.0.0.1"); !ok || m.Value != 1 {
		t.Fatalf("first real value = %+v (ok=%v), want admitted", m, ok)
	}
}
