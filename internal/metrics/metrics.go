// Package metrics provides the measurement primitives used throughout the
// repository: counters, histograms with both fixed buckets and exact
// samples, CDF extraction, percentile queries, and throughput meters.
//
// The benchmark harness renders every table and figure of the paper from
// these types, so they favour determinism and exactness over constant
// memory: an exact-sample histogram retains every observation unless
// configured with a cap.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
// The zero value is ready to use. Counters sit on hot paths (every
// accepted connection and DNSBL lookup bumps several), so increments are
// lock-free.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative delta passed to Counter.Add")
	}
	c.n.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	return c.n.Load()
}

// Gauge is a settable instantaneous value safe for concurrent use.
// The zero value is ready to use.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set records the current value of the gauge.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the last value passed to Set, or 0.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Sample is an exact-sample reservoir of float64 observations. It retains
// every observation (no reservoir sampling) so quantiles and CDFs are
// exact; this is appropriate for the trace sizes used in the paper
// (≤ a few million points). The zero value is ready to use.
type Sample struct {
	mu     sync.Mutex
	xs     []float64
	sorted bool
	sum    float64
}

// NewSample returns a Sample with capacity hint n.
func NewSample(n int) *Sample {
	return &Sample{xs: make([]float64, 0, n)}
}

// Observe records a single observation.
func (s *Sample) Observe(x float64) {
	s.mu.Lock()
	s.xs = append(s.xs, x)
	s.sum += x
	s.sorted = false
	s.mu.Unlock()
}

// ObserveDuration records a duration observation in seconds.
func (s *Sample) ObserveDuration(d time.Duration) { s.Observe(d.Seconds()) }

// Count returns the number of observations.
func (s *Sample) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.xs)
}

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// ensureSorted must be called with s.mu held.
func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 { return s.Quantile(0) }

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 { return s.Quantile(1) }

// FractionBelow returns the fraction of observations strictly less than or
// equal to x, i.e. the empirical CDF evaluated at x.
func (s *Sample) FractionBelow(x float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	// Index of first element > x.
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.xs))
}

// CDFPoint is one (x, cumulative fraction) point of an empirical CDF.
type CDFPoint struct {
	X    float64
	Frac float64
}

// CDF returns the empirical CDF evaluated at n evenly spaced points
// spanning [min, max]. An empty sample yields nil.
func (s *Sample) CDF(n int) []CDFPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.xs) == 0 || n <= 0 {
		return nil
	}
	s.ensureSorted()
	lo, hi := s.xs[0], s.xs[len(s.xs)-1]
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		var x float64
		if n == 1 {
			x = hi
		} else {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		j := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
		pts = append(pts, CDFPoint{X: x, Frac: float64(j) / float64(len(s.xs))})
	}
	return pts
}

// CDFAt returns the empirical CDF evaluated at each x in xs.
func (s *Sample) CDFAt(xs []float64) []CDFPoint {
	pts := make([]CDFPoint, 0, len(xs))
	for _, x := range xs {
		pts = append(pts, CDFPoint{X: x, Frac: s.FractionBelow(x)})
	}
	return pts
}

// Histogram is a fixed-bucket histogram. Buckets are defined by their
// upper bounds; an implicit +Inf bucket catches the rest.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds
	counts []int64   // len(bounds)+1, last is +Inf bucket
	total  int64
	sum    float64
}

// NewHistogram returns a histogram with the given sorted upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must be sorted")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// LinearBounds returns n bucket bounds start, start+width, … suitable for
// NewHistogram.
func LinearBounds(start, width float64, n int) []float64 {
	bs := make([]float64, n)
	for i := range bs {
		bs[i] = start + width*float64(i)
	}
	return bs
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i]++
	h.total++
	h.sum += x
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the mean of all observations (exact, not bucketed).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Buckets returns (upper bound, count) pairs including the +Inf bucket.
func (h *Histogram) Buckets() ([]float64, []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bs := make([]float64, len(h.bounds)+1)
	copy(bs, h.bounds)
	bs[len(bs)-1] = math.Inf(1)
	cs := make([]int64, len(h.counts))
	copy(cs, h.counts)
	return bs, cs
}

// Throughput tracks a count of events over an explicitly managed window of
// (virtual or real) time and reports events/second. It is driven by the
// caller's clock so it works identically under simulation.
type Throughput struct {
	mu    sync.Mutex
	n     int64
	start time.Duration
	end   time.Duration
}

// NewThroughput returns a meter whose window starts at the given instant
// (expressed as an offset on the caller's clock).
func NewThroughput(start time.Duration) *Throughput {
	return &Throughput{start: start, end: start}
}

// Record adds n events observed at instant now.
func (t *Throughput) Record(now time.Duration, n int64) {
	t.mu.Lock()
	t.n += n
	if now > t.end {
		t.end = now
	}
	t.mu.Unlock()
}

// Count returns the number of recorded events.
func (t *Throughput) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// PerSecond returns events/second over [start, max(end, asOf)].
func (t *Throughput) PerSecond(asOf time.Duration) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if asOf > end {
		end = asOf
	}
	window := (end - t.start).Seconds()
	if window <= 0 {
		return 0
	}
	return float64(t.n) / window
}

// Table renders aligned text tables; the benchmark harness uses it to
// print paper-style rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: integers without a decimal point,
// otherwise three significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
