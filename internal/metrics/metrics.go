// Package metrics provides the measurement primitives used throughout the
// repository: counters, histograms with both fixed buckets and exact
// samples, CDF extraction, percentile queries, and throughput meters.
//
// The benchmark harness renders every table and figure of the paper from
// these types, so they favour determinism and exactness over constant
// memory: an exact-sample histogram retains every observation unless
// configured with a cap.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
// The zero value is ready to use. Counters sit on hot paths (every
// accepted connection and DNSBL lookup bumps several), so increments are
// lock-free.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative delta passed to Counter.Add")
	}
	c.n.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	return c.n.Load()
}

// Gauge is a settable instantaneous value safe for concurrent use.
// The zero value is ready to use. Like Counter it is lock-free: gauges
// sit next to counters on hot paths (queue depths, worker occupancy).
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value of the gauge.
func (g *Gauge) Set(v float64) {
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last value passed to Set, or 0.
func (g *Gauge) Value() float64 {
	return math.Float64frombits(g.bits.Load())
}

// Sample is an exact-sample reservoir of float64 observations. It retains
// every observation (no reservoir sampling) so quantiles and CDFs are
// exact; this is appropriate for the trace sizes used in the paper
// (≤ a few million points). The zero value is ready to use.
type Sample struct {
	mu     sync.Mutex
	xs     []float64
	sorted bool
	sum    float64
}

// NewSample returns a Sample with capacity hint n.
func NewSample(n int) *Sample {
	return &Sample{xs: make([]float64, 0, n)}
}

// Observe records a single observation.
func (s *Sample) Observe(x float64) {
	s.mu.Lock()
	s.xs = append(s.xs, x)
	s.sum += x
	s.sorted = false
	s.mu.Unlock()
}

// ObserveDuration records a duration observation in seconds.
func (s *Sample) ObserveDuration(d time.Duration) { s.Observe(d.Seconds()) }

// Count returns the number of observations.
func (s *Sample) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.xs)
}

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// ensureSorted must be called with s.mu held.
func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 { return s.Quantile(0) }

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 { return s.Quantile(1) }

// FractionBelow returns the fraction of observations strictly less than or
// equal to x, i.e. the empirical CDF evaluated at x.
func (s *Sample) FractionBelow(x float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	// Index of first element > x.
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.xs))
}

// CDFPoint is one (x, cumulative fraction) point of an empirical CDF.
type CDFPoint struct {
	X    float64
	Frac float64
}

// CDF returns the empirical CDF evaluated at n evenly spaced points
// spanning [min, max]. An empty sample yields nil.
func (s *Sample) CDF(n int) []CDFPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.xs) == 0 || n <= 0 {
		return nil
	}
	s.ensureSorted()
	lo, hi := s.xs[0], s.xs[len(s.xs)-1]
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		var x float64
		if n == 1 {
			x = hi
		} else {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		j := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
		pts = append(pts, CDFPoint{X: x, Frac: float64(j) / float64(len(s.xs))})
	}
	return pts
}

// CDFAt returns the empirical CDF evaluated at each x in xs.
func (s *Sample) CDFAt(xs []float64) []CDFPoint {
	pts := make([]CDFPoint, 0, len(xs))
	for _, x := range xs {
		pts = append(pts, CDFPoint{X: x, Frac: s.FractionBelow(x)})
	}
	return pts
}

// Histogram is a fixed-bucket histogram. Buckets are defined by their
// upper bounds (inclusive, Prometheus "le" semantics); an implicit +Inf
// bucket catches the rest. Observe is lock-free — the per-stage latency
// histograms the Registry vends sit on every connection's path — at the
// cost of snapshot reads (Buckets, Count, Mean) being only eventually
// consistent with each other under concurrent recording.
type Histogram struct {
	bounds []float64 // sorted strictly-increasing upper bounds
	counts []atomic.Int64
	total  atomic.Int64
	sum    atomicFloat
}

// atomicFloat is a float64 with lock-free add, stored as IEEE 754 bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(delta float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// NewHistogram returns a histogram with the given upper bounds, which
// must be sorted in strictly increasing order (duplicates included in
// the prohibition: a duplicate bound is a bucket that can never count).
// It panics otherwise — bucket layouts are static program configuration,
// so a bad one is a bug, not a runtime condition.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf(
				"metrics: histogram bounds must be sorted strictly increasing: bounds[%d]=%v is not greater than bounds[%d]=%v",
				i, bounds[i], i-1, bounds[i-1]))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// LinearBounds returns n bucket bounds start, start+width, … suitable for
// NewHistogram.
func LinearBounds(start, width float64, n int) []float64 {
	bs := make([]float64, n)
	for i := range bs {
		bs[i] = start + width*float64(i)
	}
	return bs
}

// ExponentialBounds returns n bucket bounds start, start·factor,
// start·factor², … suitable for NewHistogram. start must be positive and
// factor greater than 1.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 {
		panic("metrics: ExponentialBounds needs start > 0 and factor > 1")
	}
	bs := make([]float64, n)
	x := start
	for i := range bs {
		bs[i] = x
		x *= factor
	}
	return bs
}

// LatencyBounds are the default exponential bounds for the per-stage
// latency histograms: 50 µs to ≈105 s in ×2 steps, in seconds. Every
// stage timed through a Registry uses these unless it has reason not to,
// so stage histograms are directly comparable.
func LatencyBounds() []float64 { return ExponentialBounds(50e-6, 2, 22) }

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.Add(x)
}

// ObserveDuration records a duration observation in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observations (exact, not bucketed).
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Mean returns the mean of all observations (exact, not bucketed).
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / float64(n)
}

// Buckets returns (upper bound, count) pairs including the +Inf bucket.
func (h *Histogram) Buckets() ([]float64, []int64) {
	bs := make([]float64, len(h.bounds)+1)
	copy(bs, h.bounds)
	bs[len(bs)-1] = math.Inf(1)
	cs := make([]int64, len(h.counts))
	for i := range h.counts {
		cs[i] = h.counts[i].Load()
	}
	return bs, cs
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts,
// interpolating linearly within the bucket that contains the target
// rank. Estimates inside the +Inf bucket clamp to the largest finite
// bound. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	bs, cs := h.Buckets()
	return bucketQuantile(bs, cs, q)
}

// bucketQuantile implements Quantile over a bucket snapshot; it is
// shared with Metric snapshots taken from a Registry.
func bucketQuantile(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) >= rank {
			upper := bounds[i]
			if math.IsInf(upper, 1) {
				// No upper edge to interpolate toward; clamp to the
				// largest finite bound (or 0 when there are no finite
				// buckets at all).
				if len(bounds) > 1 {
					return bounds[len(bounds)-2]
				}
				return 0
			}
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			inBucket := float64(c)
			if inBucket == 0 {
				return upper
			}
			frac := (rank - float64(cum-c)) / inBucket
			return lower + (upper-lower)*frac
		}
	}
	return bounds[len(bounds)-1]
}

// Throughput tracks a count of events over an explicitly managed window of
// (virtual or real) time and reports events/second. It is driven by the
// caller's clock so it works identically under simulation.
type Throughput struct {
	mu    sync.Mutex
	n     int64
	start time.Duration
	end   time.Duration
}

// NewThroughput returns a meter whose window starts at the given instant
// (expressed as an offset on the caller's clock).
func NewThroughput(start time.Duration) *Throughput {
	return &Throughput{start: start, end: start}
}

// Record adds n events observed at instant now.
func (t *Throughput) Record(now time.Duration, n int64) {
	t.mu.Lock()
	t.n += n
	if now > t.end {
		t.end = now
	}
	t.mu.Unlock()
}

// Count returns the number of recorded events.
func (t *Throughput) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// PerSecond returns events/second over [start, max(end, asOf)].
func (t *Throughput) PerSecond(asOf time.Duration) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if asOf > end {
		end = asOf
	}
	window := (end - t.start).Seconds()
	if window <= 0 {
		return 0
	}
	return float64(t.n) / window
}

// Table renders aligned text tables; the benchmark harness uses it to
// print paper-style rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: integers without a decimal point,
// otherwise three significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
