package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestParsePrometheusRoundtrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mails_total", "arch", "hybrid").Add(42)
	reg.Counter("mails_total", "arch", "vanilla").Add(7)
	reg.Gauge("queue_depth").Set(3.5)
	h := reg.Histogram("stage_seconds", []float64{0.01, 0.1, 1}, "stage", "dialog")
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	s := reg.Sample("rtt_seconds")
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i) / 100)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	parsed, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}

	find := func(name string, labels ...Label) Metric {
		t.Helper()
		for _, m := range parsed {
			if m.Name != name || len(m.Labels) != len(labels) {
				continue
			}
			match := true
			for i := range labels {
				if m.Labels[i] != labels[i] {
					match = false
				}
			}
			if match {
				return m
			}
		}
		t.Fatalf("metric %s%v not parsed; have %+v", name, labels, parsed)
		return Metric{}
	}

	if m := find("mails_total", Label{"arch", "hybrid"}); m.Kind != KindCounter || m.Value != 42 {
		t.Fatalf("counter = %+v", m)
	}
	if m := find("queue_depth"); m.Kind != KindGauge || m.Value != 3.5 {
		t.Fatalf("gauge = %+v", m)
	}

	hm := find("stage_seconds", Label{"stage", "dialog"})
	if hm.Kind != KindHistogram || hm.Count != 5 {
		t.Fatalf("histogram = %+v", hm)
	}
	want := []int64{1, 2, 1, 1} // de-accumulated buckets incl. +Inf
	if len(hm.Counts) != len(want) {
		t.Fatalf("histogram counts = %v, want %v", hm.Counts, want)
	}
	for i := range want {
		if hm.Counts[i] != want[i] {
			t.Fatalf("histogram counts = %v, want %v", hm.Counts, want)
		}
	}
	if len(hm.Bounds) != 3 || hm.Bounds[2] != 1 {
		t.Fatalf("histogram bounds = %v", hm.Bounds)
	}
	if math.Abs(hm.Sum-2.605) > 1e-9 {
		t.Fatalf("histogram sum = %v", hm.Sum)
	}
	// The parsed snapshot must support the same quantile math callers use
	// on live snapshots (mailtop depends on this).
	if q := hm.Quantile(0.5); q < 0.01 || q > 0.1 {
		t.Fatalf("parsed p50 = %v, want in (0.01, 0.1]", q)
	}

	sm := find("rtt_seconds")
	if sm.Kind != KindSample || sm.Count != 100 {
		t.Fatalf("sample = %+v", sm)
	}
	if p50, ok := sm.Quantiles[0.5]; !ok || math.Abs(p50-0.5) > 0.02 {
		t.Fatalf("sample quantiles = %v", sm.Quantiles)
	}
}

func TestParsePrometheusEscapedLabels(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("weird_total", "reason", `listed by "zones" (score 2.0)\n`).Add(1)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	parsed, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(parsed) != 1 || parsed[0].Labels[0].Value != `listed by "zones" (score 2.0)\n` {
		t.Fatalf("parsed = %+v", parsed)
	}
}

func TestParsePrometheusUntypedAndTimestamps(t *testing.T) {
	in := "up 1 1700000000000\nsome_gauge{x=\"y\"} 2.5\n"
	parsed, err := ParsePrometheus(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(parsed) != 2 || parsed[0].Value != 1 || parsed[1].Value != 2.5 {
		t.Fatalf("parsed = %+v", parsed)
	}
	if parsed[0].Kind != KindGauge {
		t.Fatalf("untyped kind = %v, want gauge", parsed[0].Kind)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"novaluehere\n",
		"name{unterminated=\"x\n",
		"name{k=\"v\"} notanumber\n",
	} {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Fatalf("ParsePrometheus(%q) = nil error, want failure", in)
		}
	}
}
