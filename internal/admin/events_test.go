package admin

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/addr"
	"repro/internal/eventlog"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

func eventsHandler(t *testing.T) (*eventlog.Log, *telemetry.Tracker, *httptest.Server) {
	t.Helper()
	tr := telemetry.New()
	log := eventlog.New(eventlog.WithLevel(eventlog.LevelDebug), eventlog.WithObserver(tr))
	srv := httptest.NewServer(NewHandler(metrics.NewRegistry(), nil, WithEvents(log), WithWorkload(tr)))
	t.Cleanup(srv.Close)
	return log, tr, srv
}

func TestEventsEndpointFilters(t *testing.T) {
	log, _, srv := eventsHandler(t)
	log.Info("smtpd.conn", 1, eventlog.Str("outcome", "quit"))
	log.Debug("dnsbl.lookup", 1, eventlog.Bool("hit", true))
	log.Warn("dnsbl.stale", 2, eventlog.Str("zone", "bl.test"))

	code, body, ctype := get(t, srv, "/events")
	if code != 200 || !strings.Contains(ctype, "text/plain") {
		t.Fatalf("status = %d, ctype = %q", code, ctype)
	}
	if got := strings.Count(body, "evt "); got != 3 {
		t.Fatalf("unfiltered /events has %d events, want 3:\n%s", got, body)
	}
	// Each line must parse back into an event (the traceinfo contract).
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if _, err := eventlog.ParseEvent(line); err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
	}

	if _, body, _ := get(t, srv, "/events?level=warn"); strings.Count(body, "evt ") != 1 ||
		!strings.Contains(body, "dnsbl.stale") {
		t.Fatalf("level filter: %s", body)
	}
	if _, body, _ := get(t, srv, "/events?conn=1"); strings.Count(body, "evt ") != 2 {
		t.Fatalf("conn filter: %s", body)
	}
	if _, body, _ := get(t, srv, "/events?name=smtpd.conn"); strings.Count(body, "evt ") != 1 {
		t.Fatalf("name filter: %s", body)
	}
	if _, body, _ := get(t, srv, "/events?since=2"); strings.Count(body, "evt ") != 1 ||
		!strings.Contains(body, "seq=3") {
		t.Fatalf("since cursor: %s", body)
	}
	if _, body, _ := get(t, srv, "/events?max=1"); strings.Count(body, "evt ") != 1 {
		t.Fatalf("max: %s", body)
	}
	if code, _, _ := get(t, srv, "/events?level=nonsense"); code != 400 {
		t.Fatalf("bad level => %d, want 400", code)
	}
	if code, _, _ := get(t, srv, "/events?since=xyz"); code != 400 {
		t.Fatalf("bad cursor => %d, want 400", code)
	}
}

func TestWorkloadEndpoint(t *testing.T) {
	log, _, srv := eventsHandler(t)
	for i := 0; i < 4; i++ {
		log.Info("smtpd.conn", 0,
			eventlog.Str("ip", "10.0.0.9"),
			eventlog.Str("outcome", "dropped"),
			eventlog.Bool("bounce", true),
			eventlog.Bool("worker", false),
		)
	}
	log.Debug("dnsbl.lookup", 0, eventlog.IP("ip", addr.MustParseIPv4("10.0.0.9")), eventlog.Bool("hit", false))

	code, body, ctype := get(t, srv, "/workload")
	if code != 200 || !strings.Contains(ctype, "application/json") {
		t.Fatalf("status = %d, ctype = %q", code, ctype)
	}
	var s telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if s.Conns != 4 || s.Bounced != 4 || s.BounceRatio != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.DNSBL.Lookups != 1 || s.DNSBL.UniquePrefixes != 1 {
		t.Fatalf("dnsbl weather = %+v", s.DNSBL)
	}
	if len(s.TopTalkers) != 1 || s.TopTalkers[0].IP != "10.0.0.9" {
		t.Fatalf("top talkers = %+v", s.TopTalkers)
	}
}

// TestEventsWorkloadParallel hammers both handlers while writers emit —
// the CI -race job's coverage for the admin surface.
func TestEventsWorkloadParallel(t *testing.T) {
	log, tr, srv := eventsHandler(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				log.Info("smtpd.conn", uint64(w*1000+i),
					eventlog.Str("ip", fmt.Sprintf("10.0.%d.%d", w, i%8)),
					eventlog.Str("outcome", "quit"),
					eventlog.Bool("bounce", i%2 == 0),
					eventlog.Bool("worker", true),
				)
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if code, _, _ := get(t, srv, "/events?level=info"); code != 200 {
					t.Errorf("/events status %d", code)
					return
				}
				if code, body, _ := get(t, srv, "/workload"); code != 200 {
					t.Errorf("/workload status %d", code)
					return
				} else if !json.Valid([]byte(body)) {
					t.Errorf("/workload not JSON: %s", body)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s := tr.Snapshot(); s.Conns != 800 {
		t.Fatalf("tracker saw %d conns, want 800", s.Conns)
	}
}
