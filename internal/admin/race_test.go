package admin

import (
	"fmt"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/eventlog"
	"repro/internal/metrics"
	"repro/internal/smtp"
	"repro/internal/smtpserver"
	"repro/internal/trace"
)

// TestConcurrentScrapeDuringDialogs hammers every admin endpoint —
// /metrics, /events, /spans, /traces, and /trace/{id} — while live SMTP
// dialogs mutate the registries, the event ring, and both span
// recorders underneath. Run under -race this is the proof that the
// admin read side never data-races the hot path it observes.
func TestConcurrentScrapeDuringDialogs(t *testing.T) {
	reg := metrics.NewRegistry()
	spans := trace.NewSpanRecorder(1024)
	events := eventlog.New(eventlog.WithLevel(eventlog.LevelDebug))
	mtrace := trace.NewMessageRecorder("race-node", 1024, 1)

	srv, err := smtpserver.New(
		func(sender string, rcpts []string, data []byte) (string, error) { return "id", nil },
		smtpserver.WithHostname("race.test"),
		smtpserver.WithArchitecture(smtpserver.Hybrid),
		smtpserver.WithIdleTimeout(5*time.Second),
		smtpserver.WithRegistry(reg),
		smtpserver.WithSpans(spans),
		smtpserver.WithEventLog(events),
		smtpserver.WithMessageTracer(mtrace),
	)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // exits on close
	defer srv.Close()

	web := httptest.NewServer(NewHandler(reg, spans,
		WithEvents(events), WithTrace(mtrace)))
	defer web.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Dialog load: live transactions generating spans, events, and
	// metric mutations the whole time the scrapers read.
	const dialers = 4
	for d := 0; d < dialers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			body := []byte("Subject: race\r\n\r\npayload\r\n")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c, err := smtp.Dial(ln.Addr().String(), 2*time.Second,
					smtp.WithCommandTimeout(2*time.Second))
				if err != nil {
					continue // server mid-close
				}
				if err := c.Hello("client.test"); err != nil {
					c.Abort()
					continue
				}
				c.Send(fmt.Sprintf("s%d@a.test", d), []string{"u@race.test"}, body) //nolint:errcheck
				c.Quit()                                                            //nolint:errcheck
			}
		}(d)
	}

	// Scrape load: every endpoint, including /trace/{id} for whatever
	// ids the recorder currently retains.
	paths := []string{"/metrics", "/events", "/spans", "/traces"}
	for _, p := range paths {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := web.Client().Get(web.URL + p)
				if err == nil {
					resp.Body.Close()
				}
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, id := range mtrace.TraceIDs(4) {
				resp, err := web.Client().Get(web.URL + "/trace/" + id)
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Sanity: the load actually exercised the traced path.
	if len(mtrace.Spans()) == 0 {
		t.Fatal("no message spans recorded — the dialogs never ran traced")
	}
	code, body, _ := get(t, web, "/trace/"+mtrace.TraceIDs(1)[0])
	if code != 200 || body == "" {
		t.Fatalf("/trace/{id}: code=%d body=%q", code, body)
	}
}
