// Package admin serves the operational side channel of a running mail
// server: Prometheus-text metrics from a metrics.Registry, expvar-style
// JSON, pprof profiling, and the connection span stream. cmd/smtpd
// mounts it on the -admin address, away from the SMTP port, so scraping
// and profiling never compete with the accept path.
package admin

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"repro/internal/eventlog"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Handler routes the admin endpoints:
//
//	/metrics      Prometheus text exposition of the registry
//	/debug/vars   expvar JSON (process vars + the registry's map)
//	/debug/pprof  the net/http/pprof family
//	/spans        the span recorder's retained events as text lines
//	              (absent when no recorder is configured)
//	/events       the event log's ring tail as text lines
//	              (absent without WithEvents)
//	/workload     the telemetry tracker's spam-weather snapshot as JSON
//	              (absent without WithWorkload)
//	/traces       recent message-trace ids (absent without WithTrace)
//	/trace/{id}   one message trace's spans as mspan text lines
//	              (absent without WithTrace)
//
// Construct with NewHandler; the zero value is not usable.
type Handler struct {
	mux *http.ServeMux
}

// HandlerOption extends a Handler with optional endpoints (see
// NewHandler).
type HandlerOption func(*http.ServeMux)

// WithEvents mounts /events: the event log's retained ring as text
// lines, oldest first, filterable by query parameters:
//
//	level  minimum level (debug|info|warn|error)
//	conn   exact connection id
//	name   exact event name
//	since  only events with seq greater than this (a tail cursor —
//	       cmd/traceinfo -follow polls with the last seq it saw)
//	max    at most this many events (the most recent ones)
func WithEvents(log *eventlog.Log) HandlerOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
			f := eventlog.Filter{}
			q := r.URL.Query()
			if s := q.Get("level"); s != "" {
				lv, err := eventlog.ParseLevel(s)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				f.MinLevel = lv
			}
			if s := q.Get("conn"); s != "" {
				n, err := strconv.ParseUint(s, 10, 64)
				if err != nil {
					http.Error(w, "bad conn id", http.StatusBadRequest)
					return
				}
				f.Conn = n
			}
			f.Name = q.Get("name")
			if s := q.Get("since"); s != "" {
				n, err := strconv.ParseUint(s, 10, 64)
				if err != nil {
					http.Error(w, "bad since cursor", http.StatusBadRequest)
					return
				}
				f.AfterSeq = n
			}
			if s := q.Get("max"); s != "" {
				n, err := strconv.Atoi(s)
				if err != nil || n < 0 {
					http.Error(w, "bad max", http.StatusBadRequest)
					return
				}
				f.Max = n
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			var buf []byte
			for _, e := range log.Tail(f) {
				buf = e.AppendText(buf[:0])
				buf = append(buf, '\n')
				if _, err := w.Write(buf); err != nil {
					return // client gone mid-write
				}
			}
		})
	}
}

// WithTrace mounts the message-trace endpoints:
//
//	/traces       recent trace ids retained by the recorder, newest
//	              first, one 32-hex id per line (?max= caps the count)
//	/trace/{id}   every retained span of one trace as mspan text lines
//	              — the unit a cluster aggregator fetches from each
//	              node and stitches by trace id
func WithTrace(rec *trace.MessageRecorder) HandlerOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
			max := 0
			if s := r.URL.Query().Get("max"); s != "" {
				n, err := strconv.Atoi(s)
				if err != nil || n < 0 {
					http.Error(w, "bad max", http.StatusBadRequest)
					return
				}
				max = n
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, id := range rec.TraceIDs(max) {
				if _, err := fmt.Fprintln(w, id); err != nil {
					return // client gone mid-write
				}
			}
		})
		mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
			id := r.URL.Path[len("/trace/"):]
			hi, lo, ok := trace.ParseTraceID(id)
			if !ok {
				http.Error(w, "bad trace id (want 32 hex digits)", http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			rec.WriteTrace(w, hi, lo) //nolint:errcheck // client gone mid-write
		})
	}
}

// WithWorkload mounts /workload: the tracker's spam-weather snapshot
// (bounce ratios, handoff savings, DNSBL locality, top talkers) as a
// JSON document — the feed cmd/mailtop renders.
func WithWorkload(tr *telemetry.Tracker) HandlerOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/workload", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(tr.Snapshot()) //nolint:errcheck // client gone mid-write
		})
	}
}

// NewHandler returns a handler exposing reg and, when non-nil, spans,
// plus any optional endpoints.
func NewHandler(reg *metrics.Registry, spans *trace.SpanRecorder, opts ...HandlerOption) *Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client gone mid-write
	})
	// expvar.Handler() serves only the process-global expvar map; the
	// registry's values are merged in by hand so per-component registries
	// work and repeated NewHandler calls never hit expvar.Publish's
	// duplicate-name panic.
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",")
			}
			first = false
			fmt.Fprintf(w, "\n%q: %s", kv.Key, kv.Value)
		})
		vars := reg.ExpvarMap()
		keys := make([]string, 0, len(vars))
		for k := range vars {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !first {
				fmt.Fprintf(w, ",")
			}
			first = false
			// Histogram and sample entries are nested maps; json.Marshal
			// renders every kind correctly.
			b, err := json.Marshal(vars[k])
			if err != nil {
				b = []byte(`"unmarshalable"`)
			}
			fmt.Fprintf(w, "\n%q: %s", k, b)
		}
		fmt.Fprintf(w, "\n}\n")
	})
	// The pprof routes are registered explicitly rather than through the
	// package's init-time DefaultServeMux side effect, so the SMTP-facing
	// process never exposes them anywhere but here.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if spans != nil {
		mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			spans.WriteTo(w) //nolint:errcheck // client gone mid-write
		})
	}
	for _, o := range opts {
		o(mux)
	}
	return &Handler{mux: mux}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}
