// Package admin serves the operational side channel of a running mail
// server: Prometheus-text metrics from a metrics.Registry, expvar-style
// JSON, pprof profiling, and the connection span stream. cmd/smtpd
// mounts it on the -admin address, away from the SMTP port, so scraping
// and profiling never compete with the accept path.
package admin

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Handler routes the admin endpoints:
//
//	/metrics      Prometheus text exposition of the registry
//	/debug/vars   expvar JSON (process vars + the registry's map)
//	/debug/pprof  the net/http/pprof family
//	/spans        the span recorder's retained events as text lines
//	              (absent when no recorder is configured)
//
// Construct with NewHandler; the zero value is not usable.
type Handler struct {
	mux *http.ServeMux
}

// NewHandler returns a handler exposing reg and, when non-nil, spans.
func NewHandler(reg *metrics.Registry, spans *trace.SpanRecorder) *Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client gone mid-write
	})
	// expvar.Handler() serves only the process-global expvar map; the
	// registry's values are merged in by hand so per-component registries
	// work and repeated NewHandler calls never hit expvar.Publish's
	// duplicate-name panic.
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",")
			}
			first = false
			fmt.Fprintf(w, "\n%q: %s", kv.Key, kv.Value)
		})
		vars := reg.ExpvarMap()
		keys := make([]string, 0, len(vars))
		for k := range vars {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !first {
				fmt.Fprintf(w, ",")
			}
			first = false
			// Histogram and sample entries are nested maps; json.Marshal
			// renders every kind correctly.
			b, err := json.Marshal(vars[k])
			if err != nil {
				b = []byte(`"unmarshalable"`)
			}
			fmt.Fprintf(w, "\n%q: %s", k, b)
		}
		fmt.Fprintf(w, "\n}\n")
	})
	// The pprof routes are registered explicitly rather than through the
	// package's init-time DefaultServeMux side effect, so the SMTP-facing
	// process never exposes them anywhere but here.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if spans != nil {
		mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			spans.WriteTo(w) //nolint:errcheck // client gone mid-write
		})
	}
	return &Handler{mux: mux}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}
