package admin

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("admin_test_total", "arch", "hybrid").Add(3)
	reg.Histogram("admin_test_seconds", []float64{0.1, 1}).Observe(0.05)

	srv := httptest.NewServer(NewHandler(reg, nil))
	defer srv.Close()

	code, body, ctype := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "0.0.4") {
		t.Fatalf("content type = %q", ctype)
	}
	for _, want := range []string{
		`admin_test_total{arch="hybrid"} 3`,
		`admin_test_seconds_bucket{le="0.1"} 1`,
		"admin_test_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

func TestDebugVarsIsValidJSON(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("vars_test_total").Inc()
	reg.Gauge("vars_test_depth").Set(2.5)
	// Histograms and samples render as nested JSON objects, not Go maps.
	reg.Histogram("vars_test_seconds", []float64{0.1, 1}, "arch", "hybrid").Observe(0.05)
	reg.Sample("vars_test_sample").Observe(0.2)

	srv := httptest.NewServer(NewHandler(reg, nil))
	defer srv.Close()

	code, body, _ := get(t, srv, "/debug/vars")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var parsed map[string]interface{}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if parsed["vars_test_total"] != float64(1) {
		t.Fatalf("vars_test_total = %v", parsed["vars_test_total"])
	}
	if parsed["vars_test_depth"] != 2.5 {
		t.Fatalf("vars_test_depth = %v", parsed["vars_test_depth"])
	}
	// The process-global expvar vars (cmdline, memstats) ride along.
	if _, ok := parsed["memstats"]; !ok {
		t.Fatal("memstats missing from /debug/vars")
	}
	hist, ok := parsed[`vars_test_seconds{arch=hybrid}`].(map[string]interface{})
	if !ok {
		t.Fatalf("histogram entry = %v, want nested object", parsed[`vars_test_seconds{arch=hybrid}`])
	}
	if hist["count"] != float64(1) {
		t.Fatalf("histogram count = %v", hist["count"])
	}
}

// Two handlers over different registries must coexist — the expvar
// merge must not use expvar.Publish (which panics on duplicates).
func TestTwoHandlersCoexist(t *testing.T) {
	a := httptest.NewServer(NewHandler(metrics.NewRegistry(), nil))
	defer a.Close()
	b := httptest.NewServer(NewHandler(metrics.NewRegistry(), nil))
	defer b.Close()
	if code, _, _ := get(t, a, "/debug/vars"); code != 200 {
		t.Fatalf("first handler status = %d", code)
	}
	if code, _, _ := get(t, b, "/debug/vars"); code != 200 {
		t.Fatalf("second handler status = %d", code)
	}
}

func TestPprofIndex(t *testing.T) {
	srv := httptest.NewServer(NewHandler(metrics.NewRegistry(), nil))
	defer srv.Close()
	code, body, _ := get(t, srv, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d, body %.80s", code, body)
	}
}

func TestSpansEndpoint(t *testing.T) {
	rec := trace.NewSpanRecorder(16)
	id := rec.ConnID()
	rec.Record(trace.SpanEvent{Conn: id, Stage: "dialog", Start: time.Millisecond, End: 2 * time.Millisecond, Note: "quit"})

	srv := httptest.NewServer(NewHandler(metrics.NewRegistry(), rec))
	defer srv.Close()

	code, body, _ := get(t, srv, "/spans")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	events, err := trace.ParseSpans(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Conn != id || events[0].Note != "quit" {
		t.Fatalf("events = %+v", events)
	}
}

func TestSpansAbsentWithoutRecorder(t *testing.T) {
	srv := httptest.NewServer(NewHandler(metrics.NewRegistry(), nil))
	defer srv.Close()
	code, _, _ := get(t, srv, "/spans")
	if code != 404 {
		t.Fatalf("/spans without recorder: status = %d, want 404", code)
	}
}
