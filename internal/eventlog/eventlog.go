// Package eventlog is the repository's single structured logging path: a
// low-overhead, leveled event log every pipeline stage writes into. One
// Log instance per process (cmd/smtpd) or per experiment run carries:
//
//   - typed events: a dotted name ("smtpd.conn", "dnsbl.lookup"), a
//     level, a connection id correlating with trace.SpanRecorder span
//     streams, and up to MaxFields typed key/value fields — no format
//     strings, no interface boxing on the hot path;
//   - a lock-light ring buffer of the most recent events (per-slot
//     locks, writers claim slots with one atomic add), served by the
//     admin endpoint as /events and tailed by `traceinfo -follow`;
//   - pluggable sinks (text or JSON lines to an io.Writer) fed after the
//     level gate and sampling, so an operator can tee warnings to stderr
//     while the ring keeps the full recent stream;
//   - observers: taps that see every event *before* the level gate and
//     sampling — internal/telemetry computes live spam-weather from the
//     event stream this way, so turning the log level down never blinds
//     the workload statistics;
//   - per-name sampling for high-volume events (keep 1 in N), so a
//     per-lookup event family can stay enabled without growing the ring
//     write rate with the offered load.
//
// The disabled paths are allocation-free: a call below the level with no
// observers returns after one atomic load, and a sampled-out event takes
// one map read and one atomic add. CI pins both at zero allocations.
//
// A nil *Log is valid and drops everything, so components take a *Log
// without nil checks at every call site.
package eventlog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addr"
)

// Level classifies event severity. The zero value is Debug.
type Level int32

// The levels, in ascending severity. Off disables the ring and sinks
// entirely (observers still see events).
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

// String names the level for exposition.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return fmt.Sprintf("Level(%d)", int32(l))
	}
}

// ParseLevel inverts Level.String, for flags and query parameters.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off":
		return LevelOff, nil
	default:
		return 0, fmt.Errorf("eventlog: unknown level %q", s)
	}
}

// fieldKind discriminates the typed field payloads.
type fieldKind uint8

const (
	kindNone fieldKind = iota
	kindStr
	kindInt
	kindUint
	kindFloat
	kindBool
	kindDur
	kindIP
)

// Field is one typed key/value pair on an event. Construct with Str,
// Int, Uint, Float, Bool, Dur, or IP; the value lives in the field
// itself, so building fields never allocates.
type Field struct {
	Key  string
	kind fieldKind
	str  string
	num  int64
	flo  float64
}

// Str returns a string field.
func Str(key, value string) Field { return Field{Key: key, kind: kindStr, str: value} }

// Int returns an integer field.
func Int(key string, value int64) Field { return Field{Key: key, kind: kindInt, num: value} }

// Uint returns an unsigned integer field (connection counts, ids).
func Uint(key string, value uint64) Field {
	return Field{Key: key, kind: kindUint, num: int64(value)}
}

// Float returns a float field.
func Float(key string, value float64) Field { return Field{Key: key, kind: kindFloat, flo: value} }

// Bool returns a boolean field.
func Bool(key string, value bool) Field {
	n := int64(0)
	if value {
		n = 1
	}
	return Field{Key: key, kind: kindBool, num: n}
}

// Dur returns a duration field, rendered in time.Duration notation.
func Dur(key string, d time.Duration) Field { return Field{Key: key, kind: kindDur, num: int64(d)} }

// IP returns an IPv4 address field. The address is stored numerically —
// no String() call on the hot path — and rendered as a dotted quad only
// when a sink or the /events endpoint formats the event.
func IP(key string, ip addr.IPv4) Field { return Field{Key: key, kind: kindIP, num: int64(ip)} }

// Value returns the field's value as an interface for generic consumers
// (JSON sinks, tests). Hot-path consumers should use the typed getters.
func (f Field) Value() interface{} {
	switch f.kind {
	case kindStr:
		return f.str
	case kindInt:
		return f.num
	case kindUint:
		return uint64(f.num)
	case kindFloat:
		return f.flo
	case kindBool:
		return f.num != 0
	case kindDur:
		return time.Duration(f.num)
	case kindIP:
		return addr.IPv4(f.num)
	default:
		return nil
	}
}

// Str returns the field's string value ("" for non-string fields).
func (f Field) Str() string { return f.str }

// Int returns the field's integer payload (ints, uints, bools, durations
// and IPs share it; 0 otherwise).
func (f Field) Int() int64 { return f.num }

// Float returns the field's float payload (0 for non-float fields).
func (f Field) Float() float64 { return f.flo }

// IsBool reports whether the field carries a true boolean.
func (f Field) IsBool() bool { return f.kind == kindBool }

// appendValue renders the field value as a single token.
func (f Field) appendValue(b []byte) []byte {
	switch f.kind {
	case kindStr:
		return append(b, sanitizeToken(f.str)...)
	case kindInt:
		return strconv.AppendInt(b, f.num, 10)
	case kindUint:
		return strconv.AppendUint(b, uint64(f.num), 10)
	case kindFloat:
		return strconv.AppendFloat(b, f.flo, 'g', -1, 64)
	case kindBool:
		return strconv.AppendBool(b, f.num != 0)
	case kindDur:
		return append(b, time.Duration(f.num).String()...)
	case kindIP:
		return append(b, addr.IPv4(f.num).String()...)
	default:
		return b
	}
}

// sanitizeToken keeps string values single-token so event lines stay
// parseable, mirroring trace.SpanEvent notes.
func sanitizeToken(s string) string {
	if !strings.ContainsAny(s, " \t\n\r=") {
		return s
	}
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\n', '\r', '=':
			return '_'
		}
		return r
	}, s)
}

// MaxFields bounds the typed fields one event carries; extra fields are
// dropped silently (events are fixed-size so the ring never allocates).
const MaxFields = 8

// Event is one structured log record.
type Event struct {
	// Seq is the event's sequence number, unique and ascending per Log.
	// The /events endpoint exposes it so tailers can resume (`since=`).
	Seq uint64
	// Time is the offset from the log's epoch.
	Time time.Duration
	// Level is the event's severity.
	Level Level
	// Name is the dotted event name ("smtpd.conn"); the catalogue is
	// documented in DESIGN.md.
	Name string
	// Conn correlates the event with a connection: the same id the
	// trace.SpanRecorder span stream uses. 0 means no connection.
	Conn uint64
	// NFields is the number of valid entries in Fields.
	NFields int
	// Fields are the typed key/value pairs.
	Fields [MaxFields]Field
}

// Field returns the first field with the given key, and whether one
// exists.
func (e *Event) Field(key string) (Field, bool) {
	for i := 0; i < e.NFields; i++ {
		if e.Fields[i].Key == key {
			return e.Fields[i], true
		}
	}
	return Field{}, false
}

// AppendText renders the event as one parseable text line (no trailing
// newline): `evt seq=12 t=1.5ms level=info name=smtpd.conn conn=3 k=v …`.
func (e *Event) AppendText(b []byte) []byte {
	b = append(b, "evt seq="...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, " t="...)
	b = append(b, e.Time.String()...)
	b = append(b, " level="...)
	b = append(b, e.Level.String()...)
	b = append(b, " name="...)
	b = append(b, sanitizeToken(e.Name)...)
	if e.Conn != 0 {
		b = append(b, " conn="...)
		b = strconv.AppendUint(b, e.Conn, 10)
	}
	for i := 0; i < e.NFields; i++ {
		f := &e.Fields[i]
		b = append(b, ' ')
		b = append(b, sanitizeToken(f.Key)...)
		b = append(b, '=')
		b = f.appendValue(b)
	}
	return b
}

// String renders the event as its text line.
func (e *Event) String() string { return string(e.AppendText(nil)) }

// AppendJSON renders the event as one JSON object line (no trailing
// newline). Field values render with their natural JSON types.
func (e *Event) AppendJSON(b []byte) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"t":`...)
	b = strconv.AppendQuote(b, e.Time.String())
	b = append(b, `,"level":`...)
	b = strconv.AppendQuote(b, e.Level.String())
	b = append(b, `,"name":`...)
	b = strconv.AppendQuote(b, e.Name)
	if e.Conn != 0 {
		b = append(b, `,"conn":`...)
		b = strconv.AppendUint(b, e.Conn, 10)
	}
	for i := 0; i < e.NFields; i++ {
		f := &e.Fields[i]
		b = append(b, ',')
		b = strconv.AppendQuote(b, f.Key)
		b = append(b, ':')
		switch f.kind {
		case kindInt:
			b = strconv.AppendInt(b, f.num, 10)
		case kindUint:
			b = strconv.AppendUint(b, uint64(f.num), 10)
		case kindFloat:
			b = strconv.AppendFloat(b, f.flo, 'g', -1, 64)
		case kindBool:
			b = strconv.AppendBool(b, f.num != 0)
		case kindDur:
			b = strconv.AppendQuote(b, time.Duration(f.num).String())
		case kindIP:
			b = strconv.AppendQuote(b, addr.IPv4(f.num).String())
		default:
			b = strconv.AppendQuote(b, f.str)
		}
	}
	return append(b, '}')
}

// ParseEvent parses one line produced by AppendText. The typed payloads
// of custom fields are not recovered — every unrecognized key becomes a
// string field — which is all a tailer needs.
func ParseEvent(line string) (Event, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != "evt" {
		return Event{}, fmt.Errorf("eventlog: not an event line: %q", line)
	}
	var e Event
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Event{}, fmt.Errorf("eventlog: bad field %q in %q", f, line)
		}
		var err error
		switch k {
		case "seq":
			e.Seq, err = strconv.ParseUint(v, 10, 64)
		case "t":
			e.Time, err = time.ParseDuration(v)
		case "level":
			e.Level, err = ParseLevel(v)
		case "name":
			e.Name = v
		case "conn":
			e.Conn, err = strconv.ParseUint(v, 10, 64)
		default:
			if e.NFields < MaxFields {
				e.Fields[e.NFields] = Str(k, v)
				e.NFields++
			}
		}
		if err != nil {
			return Event{}, fmt.Errorf("eventlog: bad field %q in %q: %w", f, line, err)
		}
	}
	if e.Name == "" {
		return Event{}, fmt.Errorf("eventlog: event line missing name: %q", line)
	}
	return e, nil
}

// ParseEvents parses a stream of AppendText lines — an /events response
// body, a captured log file. Blank lines and lines that are not event
// lines (say, a stderr log interleaved with the stream) are skipped; a
// malformed event line is an error.
func ParseEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var events []Event
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || !strings.HasPrefix(line, "evt ") {
			continue
		}
		e, err := ParseEvent(line)
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Sink receives events that pass the level gate and sampling. Emit is
// called synchronously from the logging goroutine; implementations must
// be safe for concurrent use and should return quickly.
type Sink interface {
	Emit(e Event)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(e Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// sampler keeps 1 in n events of one name.
type sampler struct {
	n   uint64
	cnt atomic.Uint64
}

func (s *sampler) keep() bool { return (s.cnt.Add(1)-1)%s.n == 0 }

// slot is one ring position with its own lock, so concurrent writers
// contend only when they land on the same position capacity apart.
type slot struct {
	mu sync.Mutex
	ev Event
	ok bool
}

// Log is the event log. Construct with New; a nil *Log drops everything.
type Log struct {
	epoch     time.Time
	level     atomic.Int32
	seq       atomic.Uint64
	slots     []slot
	samplers  map[string]*sampler
	sinks     []Sink
	observers []Sink
	sampled   atomic.Uint64 // events dropped by sampling
}

// Option configures a Log (see New).
type Option func(*Log)

// WithLevel sets the minimum level retained by the ring and sinks
// (default LevelInfo). Observers see every event regardless.
func WithLevel(l Level) Option {
	return func(lg *Log) { lg.level.Store(int32(l)) }
}

// WithCapacity sets the ring capacity in events (default 4096).
func WithCapacity(n int) Option {
	return func(lg *Log) {
		if n > 0 {
			lg.slots = make([]slot, n)
		}
	}
}

// WithSampling keeps 1 in n events of the given name (n ≤ 1 disables).
// Sampling applies to the ring and sinks only — observers always see the
// full stream, so telemetry never computes on a sample.
func WithSampling(name string, n int) Option {
	return func(lg *Log) {
		if n > 1 {
			lg.samplers[name] = &sampler{n: uint64(n)}
		}
	}
}

// WithSink attaches a sink fed after the level gate and sampling.
func WithSink(s Sink) Option {
	return func(lg *Log) {
		if s != nil {
			lg.sinks = append(lg.sinks, s)
		}
	}
}

// WithObserver attaches a tap that sees every event before the level
// gate and sampling. Observers are how derived statistics (telemetry)
// ride the event stream without depending on the operator's log level.
func WithObserver(s Sink) Option {
	return func(lg *Log) {
		if s != nil {
			lg.observers = append(lg.observers, s)
		}
	}
}

// WithEpoch pins the log's epoch, aligning event time offsets with a
// span recorder's clock. Default is time.Now at construction.
func WithEpoch(t time.Time) Option {
	return func(lg *Log) { lg.epoch = t }
}

// New returns a Log with the given options.
func New(opts ...Option) *Log {
	lg := &Log{epoch: time.Now(), samplers: make(map[string]*sampler)}
	lg.level.Store(int32(LevelInfo))
	for _, o := range opts {
		o(lg)
	}
	if lg.slots == nil {
		lg.slots = make([]slot, 4096)
	}
	return lg
}

// Level returns the current minimum retained level.
func (l *Log) Level() Level {
	if l == nil {
		return LevelOff
	}
	return Level(l.level.Load())
}

// SetLevel changes the minimum retained level at runtime.
func (l *Log) SetLevel(lv Level) {
	if l != nil {
		l.level.Store(int32(lv))
	}
}

// Enabled reports whether events at lv currently reach the ring and
// sinks. Call sites with expensive field construction can gate on it;
// plain field lists don't need to (fields are allocation-free).
func (l *Log) Enabled(lv Level) bool {
	return l != nil && lv >= Level(l.level.Load())
}

// SampledOut returns how many events sampling dropped from the ring.
func (l *Log) SampledOut() uint64 {
	if l == nil {
		return 0
	}
	return l.sampled.Load()
}

// Seq returns the last assigned ring sequence number (0 = none yet).
func (l *Log) Seq() uint64 {
	if l == nil {
		return 0
	}
	return l.seq.Load()
}

// Log records one event. The fields slice is copied into the event and
// never retained, so variadic call sites stay on the caller's stack; the
// below-level path with no observers is one atomic load.
func (l *Log) Log(lv Level, name string, conn uint64, fields ...Field) {
	if l == nil {
		return
	}
	enabled := lv >= Level(l.level.Load()) && lv < LevelOff
	if !enabled && len(l.observers) == 0 {
		return
	}
	var e Event
	e.Time = time.Since(l.epoch)
	e.Level = lv
	e.Name = name
	e.Conn = conn
	n := len(fields)
	if n > MaxFields {
		n = MaxFields
	}
	for i := 0; i < n; i++ {
		e.Fields[i] = fields[i]
	}
	e.NFields = n
	for _, o := range l.observers {
		o.Emit(e)
	}
	if !enabled {
		return
	}
	if s := l.samplers[name]; s != nil && !s.keep() {
		l.sampled.Add(1)
		return
	}
	e.Seq = l.seq.Add(1)
	sl := &l.slots[(e.Seq-1)%uint64(len(l.slots))]
	sl.mu.Lock()
	sl.ev = e
	sl.ok = true
	sl.mu.Unlock()
	for _, s := range l.sinks {
		s.Emit(e)
	}
}

// Debug records a debug event.
func (l *Log) Debug(name string, conn uint64, fields ...Field) {
	l.Log(LevelDebug, name, conn, fields...)
}

// Info records an info event.
func (l *Log) Info(name string, conn uint64, fields ...Field) {
	l.Log(LevelInfo, name, conn, fields...)
}

// Warn records a warning event.
func (l *Log) Warn(name string, conn uint64, fields ...Field) {
	l.Log(LevelWarn, name, conn, fields...)
}

// Error records an error event.
func (l *Log) Error(name string, conn uint64, fields ...Field) {
	l.Log(LevelError, name, conn, fields...)
}

// Filter selects events from the ring (see Tail).
type Filter struct {
	// MinLevel drops events below this level.
	MinLevel Level
	// Conn, when non-zero, keeps only events of that connection.
	Conn uint64
	// Name, when non-empty, keeps only events with that name.
	Name string
	// AfterSeq keeps only events with Seq > AfterSeq (tail cursors).
	AfterSeq uint64
	// Max bounds the returned slice (≤ 0 means the ring capacity).
	Max int
}

// match reports whether e passes f.
func (f Filter) match(e *Event) bool {
	if e.Level < f.MinLevel {
		return false
	}
	if f.Conn != 0 && e.Conn != f.Conn {
		return false
	}
	if f.Name != "" && e.Name != f.Name {
		return false
	}
	return e.Seq > f.AfterSeq
}

// Tail returns the retained events passing f, in sequence order. When
// more than Max events match, the most recent Max are returned.
func (l *Log) Tail(f Filter) []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, 0, 64)
	for i := range l.slots {
		sl := &l.slots[i]
		sl.mu.Lock()
		if sl.ok && f.match(&sl.ev) {
			out = append(out, sl.ev)
		}
		sl.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if f.Max > 0 && len(out) > f.Max {
		out = out[len(out)-f.Max:]
	}
	return out
}
