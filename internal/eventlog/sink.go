package eventlog

import (
	"io"
	"sync"
)

// writerSink serializes events to an io.Writer one line at a time, with
// an internal lock and a reused buffer so concurrent emitters interleave
// whole lines and steady-state writes don't allocate.
type writerSink struct {
	mu     sync.Mutex
	w      io.Writer
	buf    []byte
	render func(e *Event, b []byte) []byte
	min    Level
}

// Emit implements Sink.
func (s *writerSink) Emit(e Event) {
	if e.Level < s.min {
		return
	}
	s.mu.Lock()
	s.buf = s.render(&e, s.buf[:0])
	s.buf = append(s.buf, '\n')
	s.w.Write(s.buf) //nolint:errcheck // a dead log writer must not kill the server
	s.mu.Unlock()
}

// NewTextSink returns a sink writing events as text lines to w, keeping
// only events at or above min (so a stderr sink can stay on warnings
// while the ring retains info).
func NewTextSink(w io.Writer, min Level) Sink {
	return &writerSink{w: w, min: min, render: func(e *Event, b []byte) []byte { return e.AppendText(b) }}
}

// NewJSONSink returns a sink writing events as JSON object lines to w,
// keeping only events at or above min.
func NewJSONSink(w io.Writer, min Level) Sink {
	return &writerSink{w: w, min: min, render: func(e *Event, b []byte) []byte { return e.AppendJSON(b) }}
}
