package eventlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
)

func TestLevels(t *testing.T) {
	for _, lv := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError, LevelOff} {
		parsed, err := ParseLevel(lv.String())
		if err != nil || parsed != lv {
			t.Errorf("ParseLevel(%q) = %v, %v", lv.String(), parsed, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestRingRetainsByLevel(t *testing.T) {
	l := New(WithCapacity(16), WithLevel(LevelInfo))
	l.Debug("dropped.event", 0)
	l.Info("kept.event", 7, Str("k", "v"))
	l.Warn("kept.warning", 7)
	evs := l.Tail(Filter{})
	if len(evs) != 2 {
		t.Fatalf("retained %d events, want 2: %v", len(evs), evs)
	}
	if evs[0].Name != "kept.event" || evs[0].Conn != 7 {
		t.Errorf("first event = %+v", evs[0])
	}
	if f, ok := evs[0].Field("k"); !ok || f.Str() != "v" {
		t.Errorf("field k missing or wrong: %v %v", f, ok)
	}
	if got := l.Tail(Filter{MinLevel: LevelWarn}); len(got) != 1 || got[0].Name != "kept.warning" {
		t.Errorf("MinLevel filter: %v", got)
	}
	if got := l.Tail(Filter{Conn: 9}); len(got) != 0 {
		t.Errorf("conn filter leaked: %v", got)
	}
	if got := l.Tail(Filter{Name: "kept.event"}); len(got) != 1 {
		t.Errorf("name filter: %v", got)
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Info("anything", 1, Str("k", "v"))
	if l.Enabled(LevelError) {
		t.Error("nil log claims enabled")
	}
	if got := l.Tail(Filter{}); got != nil {
		t.Errorf("nil Tail = %v", got)
	}
	if l.Level() != LevelOff {
		t.Errorf("nil Level = %v", l.Level())
	}
}

func TestSetLevel(t *testing.T) {
	l := New(WithCapacity(8))
	l.Debug("a", 0)
	l.SetLevel(LevelDebug)
	l.Debug("b", 0)
	evs := l.Tail(Filter{})
	if len(evs) != 1 || evs[0].Name != "b" {
		t.Fatalf("SetLevel not applied: %v", evs)
	}
}

func TestSampling(t *testing.T) {
	l := New(WithCapacity(64), WithSampling("hot.event", 4))
	for i := 0; i < 16; i++ {
		l.Info("hot.event", 0, Int("i", int64(i)))
	}
	evs := l.Tail(Filter{})
	if len(evs) != 4 {
		t.Fatalf("sampled ring holds %d events, want 4", len(evs))
	}
	if l.SampledOut() != 12 {
		t.Errorf("SampledOut = %d, want 12", l.SampledOut())
	}
	// The kept events are the 1st of each group of 4.
	if i, _ := evs[0].Field("i"); i.Int() != 0 {
		t.Errorf("first kept sample i=%d, want 0", i.Int())
	}
}

func TestObserverSeesEverything(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	obs := SinkFunc(func(e Event) {
		mu.Lock()
		seen = append(seen, e.Name)
		mu.Unlock()
	})
	l := New(WithCapacity(8), WithLevel(LevelError), WithSampling("sampled", 100), WithObserver(obs))
	l.Debug("below.level", 0)
	l.Info("sampled", 0)
	l.Info("sampled", 0)
	l.Error("kept", 0)
	if len(seen) != 4 {
		t.Fatalf("observer saw %d events, want 4: %v", len(seen), seen)
	}
	if evs := l.Tail(Filter{}); len(evs) != 1 || evs[0].Name != "kept" {
		t.Errorf("ring = %v", evs)
	}
}

func TestWraparound(t *testing.T) {
	const capacity = 8
	l := New(WithCapacity(capacity))
	for i := 0; i < 3*capacity; i++ {
		l.Info("wrap", 0, Int("i", int64(i)))
	}
	evs := l.Tail(Filter{})
	if len(evs) != capacity {
		t.Fatalf("ring holds %d, want %d", len(evs), capacity)
	}
	for k, e := range evs {
		want := int64(2*capacity + k)
		if f, _ := e.Field("i"); f.Int() != want {
			t.Errorf("event %d: i=%d, want %d (oldest-first order after wrap)", k, f.Int(), want)
		}
		if e.Seq != uint64(2*capacity+k+1) {
			t.Errorf("event %d: seq=%d, want %d", k, e.Seq, 2*capacity+k+1)
		}
	}
	// AfterSeq cursoring picks up only the tail.
	last := evs[len(evs)-3].Seq
	tail := l.Tail(Filter{AfterSeq: last})
	if len(tail) != 2 {
		t.Fatalf("AfterSeq=%d returned %d events, want 2", last, len(tail))
	}
	if got := l.Tail(Filter{Max: 3}); len(got) != 3 || got[2].Seq != uint64(3*capacity) {
		t.Errorf("Max filter should keep the most recent 3: %v", got)
	}
}

// TestConcurrentWriters drives many goroutines through a small ring (lots
// of wraparound) while readers tail it, and checks the retained window is
// exactly the highest-sequence events. Run under -race in CI.
func TestConcurrentWriters(t *testing.T) {
	const (
		capacity = 32
		writers  = 8
		each     = 500
	)
	l := New(WithCapacity(capacity))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers exercise Tail against in-flight writes.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					l.Tail(Filter{})
				}
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < each; i++ {
				l.Info("conc", uint64(w+1), Int("i", int64(i)), Str("writer", "w"))
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	evs := l.Tail(Filter{})
	if len(evs) != capacity {
		t.Fatalf("ring holds %d, want %d", len(evs), capacity)
	}
	total := uint64(writers * each)
	if l.Seq() != total {
		t.Fatalf("seq = %d, want %d", l.Seq(), total)
	}
	seen := make(map[uint64]bool, capacity)
	for _, e := range evs {
		if e.Seq <= total-capacity || e.Seq > total {
			t.Errorf("retained seq %d outside final window (%d, %d]", e.Seq, total-capacity, total)
		}
		if seen[e.Seq] {
			t.Errorf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestTextRoundtrip(t *testing.T) {
	l := New(WithCapacity(4), WithLevel(LevelDebug))
	l.Warn("smtpd.policy", 42,
		Str("verdict", "reject"),
		Str("reason", "listed by DNSBLs (score 2.0)"),
		IP("ip", addr.MustParseIPv4("192.0.2.17")),
		Dur("took", 1500*time.Microsecond),
		Bool("worker", false),
		Int("n", -3),
		Uint("u", 9),
		Float("score", 2.5),
	)
	line := l.Tail(Filter{})[0].String()
	e, err := ParseEvent(line)
	if err != nil {
		t.Fatalf("ParseEvent(%q): %v", line, err)
	}
	if e.Name != "smtpd.policy" || e.Conn != 42 || e.Level != LevelWarn || e.Seq != 1 {
		t.Errorf("parsed header wrong: %+v", e)
	}
	for key, want := range map[string]string{
		"verdict": "reject",
		"reason":  "listed_by_DNSBLs_(score_2.0)", // sanitized single token
		"ip":      "192.0.2.17",
		"took":    "1.5ms",
		"worker":  "false",
		"n":       "-3",
		"u":       "9",
		"score":   "2.5",
	} {
		if f, ok := e.Field(key); !ok || f.Str() != want {
			t.Errorf("field %s = %q (%v), want %q", key, f.Str(), ok, want)
		}
	}
	if _, err := ParseEvent("span conn=1 stage=accept"); err == nil {
		t.Error("ParseEvent accepted a span line")
	}
	if _, err := ParseEvent("evt seq=1 level=info"); err == nil {
		t.Error("ParseEvent accepted a nameless line")
	}
}

func TestJSONSink(t *testing.T) {
	var buf bytes.Buffer
	l := New(WithCapacity(4), WithSink(NewJSONSink(&buf, LevelInfo)))
	l.Info("dnsbl.lookup", 3, IP("ip", addr.MustParseIPv4("10.0.0.1")), Bool("hit", true), Float("score", 1.0))
	var m map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("sink wrote invalid JSON %q: %v", buf.String(), err)
	}
	if m["name"] != "dnsbl.lookup" || m["ip"] != "10.0.0.1" || m["hit"] != true {
		t.Errorf("JSON event = %v", m)
	}
}

func TestTextSinkLevelGate(t *testing.T) {
	var buf bytes.Buffer
	l := New(WithCapacity(4), WithSink(NewTextSink(&buf, LevelWarn)))
	l.Info("quiet", 0)
	l.Warn("loud", 0)
	out := buf.String()
	if strings.Contains(out, "quiet") || !strings.Contains(out, "loud") {
		t.Errorf("sink output = %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("sink lines must end in newline: %q", out)
	}
}

func TestFieldOverflowDropped(t *testing.T) {
	l := New(WithCapacity(4))
	fields := make([]Field, MaxFields+4)
	for i := range fields {
		fields[i] = Int(fmt.Sprintf("f%d", i), int64(i))
	}
	l.Info("wide", 0, fields...)
	e := l.Tail(Filter{})[0]
	if e.NFields != MaxFields {
		t.Fatalf("NFields = %d, want %d", e.NFields, MaxFields)
	}
}

// TestHotPathAllocFree pins the two cheap paths the CI bench smoke
// watches: an event below the retained level, and a sampled-out event.
func TestHotPathAllocFree(t *testing.T) {
	l := New(WithCapacity(64), WithLevel(LevelInfo), WithSampling("hot.sampled", 1<<30))
	l.Info("hot.sampled", 1) // consume the one kept sample
	ip := addr.MustParseIPv4("192.0.2.9")
	if allocs := testing.AllocsPerRun(1000, func() {
		l.Debug("below.level", 3, IP("ip", ip), Str("outcome", "bounced"), Dur("took", time.Millisecond))
	}); allocs != 0 {
		t.Errorf("disabled-level log allocates %v times per op", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		l.Info("hot.sampled", 3, IP("ip", ip), Str("outcome", "bounced"), Dur("took", time.Millisecond))
	}); allocs != 0 {
		t.Errorf("sampled-out log allocates %v times per op", allocs)
	}
}

// BenchmarkEventlogDisabled is the CI smoke for the disabled-level hot
// path: one atomic load, zero allocations.
func BenchmarkEventlogDisabled(b *testing.B) {
	l := New(WithCapacity(1024), WithLevel(LevelInfo))
	ip := addr.MustParseIPv4("192.0.2.9")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Debug("dnsbl.lookup", 3, IP("ip", ip), Bool("hit", true))
		}
	})
	if allocs := testing.AllocsPerRun(1000, func() {
		l.Debug("dnsbl.lookup", 3, IP("ip", ip), Bool("hit", true))
	}); allocs != 0 {
		b.Fatalf("disabled-level path allocates %v times per op", allocs)
	}
}

// BenchmarkEventlogSampled is the CI smoke for the sampled-out hot path.
func BenchmarkEventlogSampled(b *testing.B) {
	l := New(WithCapacity(1024), WithLevel(LevelInfo), WithSampling("dnsbl.lookup", 1<<30))
	ip := addr.MustParseIPv4("192.0.2.9")
	l.Info("dnsbl.lookup", 1, IP("ip", ip)) // consume the kept sample
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Info("dnsbl.lookup", 3, IP("ip", ip), Bool("hit", true))
		}
	})
	if allocs := testing.AllocsPerRun(1000, func() {
		l.Info("dnsbl.lookup", 3, IP("ip", ip), Bool("hit", true))
	}); allocs != 0 {
		b.Fatalf("sampled-out path allocates %v times per op", allocs)
	}
}

// BenchmarkEventlogRetained measures the full ring-write path.
func BenchmarkEventlogRetained(b *testing.B) {
	l := New(WithCapacity(4096))
	ip := addr.MustParseIPv4("192.0.2.9")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Info("smtpd.conn", 3, IP("ip", ip), Str("outcome", "served"), Bool("worker", true))
		}
	})
}
