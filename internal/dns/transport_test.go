package dns

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"
)

// echoHandler answers every A question with 127.0.0.2.
func echoHandler() Handler {
	return HandlerFunc(func(q Question) *Message {
		m := &Message{
			Questions: []Question{q},
			Answers:   []RR{ARecord(q.Name, 60, 127, 0, 0, 2)},
		}
		return m
	})
}

func TestUDPServerAndClient(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(pc, echoHandler())
	defer srv.Close()

	tr := &UDPTransport{Server: srv.Addr().String(), Timeout: 2 * time.Second}
	resp, err := tr.Query(context.Background(), NewQuery(0xbeef, "4.3.2.1.bl.example", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 0xbeef || !resp.Response {
		t.Fatalf("response header: %+v", resp)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].RData[3] != 2 {
		t.Fatalf("answer: %+v", resp.Answers)
	}
	if srv.Queries() != 1 {
		t.Fatalf("server queries = %d, want 1", srv.Queries())
	}
}

func TestUDPServerConcurrentClients(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(pc, echoHandler())
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(id uint16) {
			defer wg.Done()
			tr := &UDPTransport{Server: srv.Addr().String(), Timeout: 2 * time.Second}
			resp, err := tr.Query(context.Background(), NewQuery(id, "x.bl.example", TypeA))
			if err != nil {
				errs <- err
				return
			}
			if resp.ID != id {
				errs <- ErrCorrupt
			}
		}(uint16(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.Queries() != 20 {
		t.Fatalf("queries = %d, want 20", srv.Queries())
	}
}

func TestUDPServerServfailOnNilHandlerResponse(t *testing.T) {
	pc, _ := net.ListenPacket("udp", "127.0.0.1:0")
	srv := NewServer(pc, HandlerFunc(func(q Question) *Message { return nil }))
	defer srv.Close()
	tr := &UDPTransport{Server: srv.Addr().String(), Timeout: 2 * time.Second}
	resp, err := tr.Query(context.Background(), NewQuery(1, "x.example", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != RCodeServFail {
		t.Fatalf("rcode = %d, want SERVFAIL", resp.RCode)
	}
}

func TestUDPTransportTimeout(t *testing.T) {
	// A listener that never answers.
	pc, _ := net.ListenPacket("udp", "127.0.0.1:0")
	defer pc.Close()
	tr := &UDPTransport{Server: pc.LocalAddr().String(), Timeout: 50 * time.Millisecond}
	_, err := tr.Query(context.Background(), NewQuery(1, "x.example", TypeA))
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	pc, _ := net.ListenPacket("udp", "127.0.0.1:0")
	srv := NewServer(pc, echoHandler())
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestMemTransport(t *testing.T) {
	tr := &MemTransport{Handler: echoHandler()}
	resp, err := tr.Query(context.Background(), NewQuery(42, "q.example", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 42 || len(resp.Answers) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	if tr.Queries() != 1 {
		t.Fatalf("queries = %d", tr.Queries())
	}
	// Multiple questions rejected.
	bad := NewQuery(1, "a.example", TypeA)
	bad.Questions = append(bad.Questions, Question{Name: "b.example", Type: TypeA})
	if _, err := tr.Query(context.Background(), bad); err == nil {
		t.Fatal("multi-question query accepted")
	}
}

func TestMemTransportLatencyHook(t *testing.T) {
	called := false
	tr := &MemTransport{
		Handler: echoHandler(),
		Latency: func(q Question) time.Duration {
			called = true
			return 0
		},
	}
	tr.Query(context.Background(), NewQuery(1, "x.example", TypeA))
	if !called {
		t.Fatal("latency hook not invoked")
	}
}

func TestCacheHitMissExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := NewCache(clock)

	if _, ok := c.Get("x.example", TypeA); ok {
		t.Fatal("empty cache hit")
	}
	msg := &Message{ID: 1}
	c.Put("x.example", TypeA, msg, time.Hour)
	got, ok := c.Get("x.example", TypeA)
	if !ok || got != msg {
		t.Fatal("fresh entry missed")
	}
	// Different qtype is a different key.
	if _, ok := c.Get("x.example", TypeAAAA); ok {
		t.Fatal("qtype collision")
	}
	// Expiry.
	now = now.Add(2 * time.Hour)
	if _, ok := c.Get("x.example", TypeA); ok {
		t.Fatal("expired entry returned")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("stats = %d/%d, want 1/3", hits, misses)
	}
	if r := c.HitRatio(); r != 0.25 {
		t.Fatalf("hit ratio = %v, want 0.25", r)
	}
}

func TestCacheZeroTTLNotStored(t *testing.T) {
	c := NewCache(nil)
	c.Put("x", TypeA, &Message{}, 0)
	if c.Len() != 0 {
		t.Fatal("zero-TTL entry stored")
	}
}

func TestCacheDefaultClock(t *testing.T) {
	c := NewCache(nil)
	c.Put("x", TypeA, &Message{}, time.Hour)
	if _, ok := c.Get("x", TypeA); !ok {
		t.Fatal("real-clock cache lost a fresh entry")
	}
}

func TestCacheHitRatioEmpty(t *testing.T) {
	if NewCache(nil).HitRatio() != 0 {
		t.Fatal("empty cache hit ratio should be 0")
	}
}
