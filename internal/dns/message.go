// Package dns is a from-scratch implementation of the subset of RFC 1035
// the DNSBL subsystem needs: message encoding/decoding (with name
// compression on the decode path), a UDP server, a UDP client, an
// in-memory transport for deterministic tests, and a TTL cache.
//
// DNSBL answers are ordinary DNS: a classic blacklist check for IP
// x.y.z.w is an A query for w.z.y.x.<zone> answered with 127.0.0.x, and
// the paper's DNSBLv6 (§7.1) is an AAAA query whose 128-bit answer is the
// blacklist bitmap of the queried /25 prefix.
package dns

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Type is a DNS RR/QTYPE code.
type Type uint16

// Supported record types.
const (
	TypeA    Type = 1
	TypeNS   Type = 2
	TypePTR  Type = 12
	TypeMX   Type = 15
	TypeTXT  Type = 16
	TypeAAAA Type = 28
)

// String renders the type mnemonic.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class; only IN is used.
const ClassIN uint16 = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes used by the DNSBL servers.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// Header flag bits (within the 16-bit flags word).
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// Question is one query tuple.
type Question struct {
	Name  string
	Type  Type
	Class uint16
}

// RR is a resource record. RData holds the raw wire-format payload (a 4-
// or 16-byte address for A/AAAA, a length-prefixed string for TXT).
type RR struct {
	Name  string
	Type  Type
	Class uint16
	TTL   uint32
	RData []byte
}

// Message is a DNS message.
type Message struct {
	ID                 uint16
	Response           bool
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode

	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard recursive query for one question.
func NewQuery(id uint16, name string, qtype Type) *Message {
	return &Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// Reply builds a response skeleton mirroring the query's ID and question.
func (m *Message) Reply() *Message {
	r := &Message{
		ID:               m.ID,
		Response:         true,
		Authoritative:    true,
		RecursionDesired: m.RecursionDesired,
		Questions:        append([]Question(nil), m.Questions...),
	}
	return r
}

// MaxNameLen is the RFC 1035 limit on a domain name's wire length.
const MaxNameLen = 255

var (
	// ErrNameTooLong is returned for names exceeding MaxNameLen.
	ErrNameTooLong = errors.New("dns: name too long")
	// ErrCorrupt is returned for malformed wire data.
	ErrCorrupt = errors.New("dns: corrupt message")
)

// appendName encodes a dotted name as RFC 1035 labels (no compression —
// compression is optional for senders and our messages are small).
func appendName(buf []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		if len(name)+2 > MaxNameLen {
			return nil, fmt.Errorf("%w: %q", ErrNameTooLong, name)
		}
		for _, label := range strings.Split(name, ".") {
			if label == "" {
				return nil, fmt.Errorf("%w: empty label in %q", ErrCorrupt, name)
			}
			if len(label) > 63 {
				return nil, fmt.Errorf("%w: label %q over 63 bytes", ErrNameTooLong, label)
			}
			buf = append(buf, byte(len(label)))
			buf = append(buf, label...)
		}
	}
	return append(buf, 0), nil
}

// Encode serializes the message to wire format.
func (m *Message) Encode() ([]byte, error) {
	buf := make([]byte, 0, 128)
	buf = binary.BigEndian.AppendUint16(buf, m.ID)
	var flags uint16
	if m.Response {
		flags |= flagQR
	}
	if m.Authoritative {
		flags |= flagAA
	}
	if m.Truncated {
		flags |= flagTC
	}
	if m.RecursionDesired {
		flags |= flagRD
	}
	if m.RecursionAvailable {
		flags |= flagRA
	}
	flags |= uint16(m.RCode) & 0xf
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Questions)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answers)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Authority)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Additional)))
	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		class := q.Class
		if class == 0 {
			class = ClassIN
		}
		buf = binary.BigEndian.AppendUint16(buf, class)
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if buf, err = appendRR(buf, rr); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func appendRR(buf []byte, rr RR) ([]byte, error) {
	buf, err := appendName(buf, rr.Name)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type))
	class := rr.Class
	if class == 0 {
		class = ClassIN
	}
	buf = binary.BigEndian.AppendUint16(buf, class)
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	if len(rr.RData) > 0xffff {
		return nil, fmt.Errorf("%w: rdata too long", ErrCorrupt)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(rr.RData)))
	return append(buf, rr.RData...), nil
}

// decoder walks a wire-format message.
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) uint16() (uint16, error) {
	if d.pos+2 > len(d.data) {
		return 0, ErrCorrupt
	}
	v := binary.BigEndian.Uint16(d.data[d.pos:])
	d.pos += 2
	return v, nil
}

func (d *decoder) uint32() (uint32, error) {
	if d.pos+4 > len(d.data) {
		return 0, ErrCorrupt
	}
	v := binary.BigEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.data) {
		return nil, ErrCorrupt
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// name decodes a possibly-compressed domain name.
func (d *decoder) name() (string, error) {
	var labels []string
	pos := d.pos
	jumped := false
	hops := 0
	for {
		if pos >= len(d.data) {
			return "", ErrCorrupt
		}
		c := d.data[pos]
		switch {
		case c == 0:
			if !jumped {
				d.pos = pos + 1
			}
			return strings.Join(labels, "."), nil
		case c&0xc0 == 0xc0:
			if pos+1 >= len(d.data) {
				return "", ErrCorrupt
			}
			target := int(binary.BigEndian.Uint16(d.data[pos:]) & 0x3fff)
			if !jumped {
				d.pos = pos + 2
				jumped = true
			}
			if hops++; hops > 32 {
				return "", fmt.Errorf("%w: compression loop", ErrCorrupt)
			}
			if target >= pos {
				return "", fmt.Errorf("%w: forward compression pointer", ErrCorrupt)
			}
			pos = target
		case c&0xc0 != 0:
			return "", fmt.Errorf("%w: bad label type %#x", ErrCorrupt, c)
		default:
			end := pos + 1 + int(c)
			if end > len(d.data) {
				return "", ErrCorrupt
			}
			labels = append(labels, string(d.data[pos+1:end]))
			if len(labels) > 128 {
				return "", fmt.Errorf("%w: too many labels", ErrCorrupt)
			}
			pos = end
		}
	}
}

func (d *decoder) rr() (RR, error) {
	var rr RR
	var err error
	if rr.Name, err = d.name(); err != nil {
		return rr, err
	}
	t, err := d.uint16()
	if err != nil {
		return rr, err
	}
	rr.Type = Type(t)
	if rr.Class, err = d.uint16(); err != nil {
		return rr, err
	}
	if rr.TTL, err = d.uint32(); err != nil {
		return rr, err
	}
	n, err := d.uint16()
	if err != nil {
		return rr, err
	}
	rd, err := d.bytes(int(n))
	if err != nil {
		return rr, err
	}
	rr.RData = append([]byte(nil), rd...)
	return rr, nil
}

// Decode parses a wire-format message.
func Decode(data []byte) (*Message, error) {
	d := &decoder{data: data}
	m := &Message{}
	var err error
	if m.ID, err = d.uint16(); err != nil {
		return nil, err
	}
	flags, err := d.uint16()
	if err != nil {
		return nil, err
	}
	m.Response = flags&flagQR != 0
	m.Authoritative = flags&flagAA != 0
	m.Truncated = flags&flagTC != 0
	m.RecursionDesired = flags&flagRD != 0
	m.RecursionAvailable = flags&flagRA != 0
	m.RCode = RCode(flags & 0xf)
	counts := make([]uint16, 4)
	for i := range counts {
		if counts[i], err = d.uint16(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		var q Question
		if q.Name, err = d.name(); err != nil {
			return nil, err
		}
		t, err := d.uint16()
		if err != nil {
			return nil, err
		}
		q.Type = Type(t)
		if q.Class, err = d.uint16(); err != nil {
			return nil, err
		}
		m.Questions = append(m.Questions, q)
	}
	for sec, dst := range []*[]RR{&m.Answers, &m.Authority, &m.Additional} {
		for i := 0; i < int(counts[sec+1]); i++ {
			rr, err := d.rr()
			if err != nil {
				return nil, err
			}
			*dst = append(*dst, rr)
		}
	}
	return m, nil
}

// ARecord builds an A answer record.
func ARecord(name string, ttl uint32, a, b, c, d byte) RR {
	return RR{Name: name, Type: TypeA, Class: ClassIN, TTL: ttl, RData: []byte{a, b, c, d}}
}

// AAAARecord builds an AAAA answer record from 16 raw bytes.
func AAAARecord(name string, ttl uint32, addr [16]byte) RR {
	return RR{Name: name, Type: TypeAAAA, Class: ClassIN, TTL: ttl, RData: addr[:]}
}

// MXRecord builds an MX answer record: a 16-bit preference followed by
// the exchange host name in (uncompressed) label form, per RFC 1035
// §3.3.9. The outbound deliverer walks these candidates by preference.
func MXRecord(name string, ttl uint32, pref uint16, host string) RR {
	rd := binary.BigEndian.AppendUint16(make([]byte, 0, 2+len(host)+2), pref)
	rd, err := appendName(rd, host)
	if err != nil {
		// An invalid exchange name degrades to an empty RDATA the parser
		// rejects; MX hosts in this repo are short test names.
		rd = nil
	}
	return RR{Name: name, Type: TypeMX, Class: ClassIN, TTL: ttl, RData: rd}
}

// MX extracts the preference and exchange host of an MX record. The
// exchange name must be uncompressed (our encoder never compresses;
// records whose RDATA points back into the message are rejected).
func (rr RR) MX() (pref uint16, host string, err error) {
	if rr.Type != TypeMX || len(rr.RData) < 3 {
		return 0, "", fmt.Errorf("%w: not an MX record", ErrCorrupt)
	}
	pref = binary.BigEndian.Uint16(rr.RData)
	var labels []string
	pos := 2
	for {
		if pos >= len(rr.RData) {
			return 0, "", ErrCorrupt
		}
		c := int(rr.RData[pos])
		if c == 0 {
			break
		}
		if c&0xc0 != 0 {
			return 0, "", fmt.Errorf("%w: compressed MX exchange", ErrCorrupt)
		}
		end := pos + 1 + c
		if end > len(rr.RData) {
			return 0, "", ErrCorrupt
		}
		labels = append(labels, string(rr.RData[pos+1:end]))
		pos = end
	}
	return pref, strings.Join(labels, "."), nil
}

// TXTRecord builds a TXT answer record.
func TXTRecord(name string, ttl uint32, text string) RR {
	if len(text) > 255 {
		text = text[:255]
	}
	rd := append([]byte{byte(len(text))}, text...)
	return RR{Name: name, Type: TypeTXT, Class: ClassIN, TTL: ttl, RData: rd}
}

// TXT extracts the text of a TXT record.
func (rr RR) TXT() (string, error) {
	if rr.Type != TypeTXT || len(rr.RData) == 0 {
		return "", fmt.Errorf("%w: not a TXT record", ErrCorrupt)
	}
	n := int(rr.RData[0])
	if 1+n > len(rr.RData) {
		return "", ErrCorrupt
	}
	return string(rr.RData[1 : 1+n]), nil
}
