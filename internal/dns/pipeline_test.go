package dns

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// startEchoServer boots a UDP server whose listener is optionally wrapped
// in fault injection, answering every A question with 127.0.0.2.
func startEchoServer(t *testing.T, faults *FaultConfig) *Server {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if faults != nil {
		pc = NewFaultConn(pc, *faults)
	}
	srv := NewServer(pc, echoHandler())
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestPipelinedBasicQuery(t *testing.T) {
	srv := startEchoServer(t, nil)
	p, err := NewPipelined([]string{srv.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	resp, err := p.Query(context.Background(), NewQuery(7, "4.3.2.1.bl.example", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].RData[3] != 2 {
		t.Fatalf("answer = %+v", resp.Answers)
	}
	if p.Retries() != 0 || p.Hedges() != 0 {
		t.Fatalf("clean query needed %d retries, %d hedges", p.Retries(), p.Hedges())
	}
}

func TestPipelinedNeedsUpstream(t *testing.T) {
	if _, err := NewPipelined(nil); err == nil {
		t.Fatal("no-upstream transport constructed")
	}
}

func TestPipelinedQueryAfterClose(t *testing.T) {
	srv := startEchoServer(t, nil)
	p, err := NewPipelined([]string{srv.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	_, err = p.Query(context.Background(), NewQuery(1, "x.example", TypeA))
	if err == nil {
		t.Fatal("query on closed transport succeeded")
	}
}

// TestPipelinedSharedSocketDemux is the -race stress test: many
// goroutines issue concurrent queries over ONE shared socket, and each
// must get the answer to its own question back, demultiplexed by
// transaction ID.
func TestPipelinedSharedSocketDemux(t *testing.T) {
	// Answer every A question with the last label-decimal byte of the
	// query so responses are distinguishable per caller.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(pc, HandlerFunc(func(q Question) *Message {
		var tag byte
		fmt.Sscanf(q.Name, "h%d.", &tag)
		return &Message{
			Questions: []Question{q},
			Answers:   []RR{ARecord(q.Name, 60, 127, 0, 0, tag)},
		}
	}))
	defer srv.Close()

	p, err := NewPipelined([]string{srv.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const goroutines, perG = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tag := byte((g*perG + i) % 200)
				name := fmt.Sprintf("h%d.bl.example", tag)
				resp, err := p.Query(context.Background(), NewQuery(0, name, TypeA))
				if err != nil {
					errs <- err
					return
				}
				if len(resp.Answers) != 1 || resp.Answers[0].RData[3] != tag {
					errs <- fmt.Errorf("%s: got answer %v, want tag %d", name, resp.Answers, tag)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := srv.Queries(); got != goroutines*perG {
		t.Fatalf("server saw %d queries, want %d", got, goroutines*perG)
	}
}

// TestPipelinedRecoversFromFaults is the table test: heavy loss and
// heavy truncation must both be survived by retries, where the naive
// single-shot transport would time out or fail.
func TestPipelinedRecoversFromFaults(t *testing.T) {
	cases := []struct {
		name   string
		faults FaultConfig
	}{
		{"loss", FaultConfig{Loss: 0.4, Seed: 11}},
		{"truncation", FaultConfig{Truncate: 0.4, Seed: 12}},
		{"duplication", FaultConfig{Duplicate: 0.5, Seed: 13}},
		{"reordering", FaultConfig{Reorder: 0.3, Seed: 14}},
		{"everything", FaultConfig{Loss: 0.15, Duplicate: 0.2, Reorder: 0.15, Truncate: 0.15, Seed: 15}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := startEchoServer(t, &tc.faults)
			p, err := NewPipelined([]string{srv.Addr().String()},
				WithAttemptTimeout(40*time.Millisecond),
				WithBackoff(time.Millisecond),
				WithAttempts(8),
				WithQueryTimeout(10*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			for i := 0; i < 40; i++ {
				name := fmt.Sprintf("q%d.bl.example", i)
				resp, err := p.Query(context.Background(), NewQuery(0, name, TypeA))
				if err != nil {
					t.Fatalf("query %d under %s: %v", i, tc.name, err)
				}
				if len(resp.Answers) != 1 {
					t.Fatalf("query %d: answers = %+v", i, resp.Answers)
				}
			}
			if tc.faults.Loss > 0 || tc.faults.Truncate > 0 {
				if p.Retries() == 0 {
					t.Fatalf("%s: no retries recorded despite injected faults", tc.name)
				}
			}
		})
	}
}

// TestPipelinedHedgeRecoversFromBlackholePrimary points the primary
// upstream at a socket that never answers: only the hedged flight to the
// replica can succeed, and it must do so quickly.
func TestPipelinedHedgeRecoversFromBlackholePrimary(t *testing.T) {
	blackhole, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer blackhole.Close()
	srv := startEchoServer(t, nil)

	p, err := NewPipelined(
		[]string{blackhole.LocalAddr().String(), srv.Addr().String()},
		WithHedgeDelay(10*time.Millisecond),
		WithAttemptTimeout(50*time.Millisecond),
		WithQueryTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	start := time.Now()
	resp, err := p.Query(context.Background(), NewQuery(0, "x.bl.example", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %+v", resp.Answers)
	}
	// The win must come from the replica far sooner than the primary's
	// full retry schedule (3 × 50ms + backoff).
	if d := time.Since(start); d > 120*time.Millisecond {
		t.Fatalf("hedged answer took %v", d)
	}
	if p.Hedges() != 1 {
		t.Fatalf("hedges = %d, want 1", p.Hedges())
	}
}

// TestPipelinedHonoursContextDeadline: a blackholed upstream with no
// replicas must fail by the caller's deadline, not the full retry
// schedule.
func TestPipelinedHonoursContextDeadline(t *testing.T) {
	blackhole, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer blackhole.Close()
	p, err := NewPipelined([]string{blackhole.LocalAddr().String()},
		WithAttemptTimeout(time.Second), WithAttempts(10))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = p.Query(ctx, NewQuery(0, "x.example", TypeA))
	if err == nil {
		t.Fatal("blackholed query succeeded")
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("deadline ignored: query held the caller %v", d)
	}
}

// TestFaultTransportInjection drives the in-memory fault wrapper to both
// failure modes.
func TestFaultTransportInjection(t *testing.T) {
	inner := &MemTransport{Handler: echoHandler()}
	ft := &FaultTransport{Inner: inner, Cfg: FaultConfig{Loss: 1, Seed: 3}}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := ft.Query(ctx, NewQuery(1, "x.example", TypeA)); err != ErrTimeout {
		t.Fatalf("loss: err = %v, want ErrTimeout", err)
	}
	ft = &FaultTransport{Inner: inner, Cfg: FaultConfig{Truncate: 1, Seed: 3}}
	if _, err := ft.Query(context.Background(), NewQuery(1, "x.example", TypeA)); err != ErrTruncated {
		t.Fatalf("truncate: err = %v, want ErrTruncated", err)
	}
	st := ft.Stats()
	if st.Truncated != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFaultConnDeterministic: same seed, same fault sequence.
func TestFaultConnDeterministic(t *testing.T) {
	run := func() FaultStats {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fc := NewFaultConn(pc, FaultConfig{Loss: 0.3, Seed: 99})
		srv := NewServer(fc, echoHandler())
		defer srv.Close()
		p, err := NewPipelined([]string{srv.Addr().String()},
			WithAttemptTimeout(30*time.Millisecond), WithBackoff(time.Millisecond), WithAttempts(8))
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		for i := 0; i < 20; i++ {
			if _, err := p.Query(context.Background(), NewQuery(0, fmt.Sprintf("d%d.example", i), TypeA)); err != nil {
				t.Fatal(err)
			}
		}
		return fc.Stats()
	}
	a, b := run(), run()
	if a.Dropped == 0 {
		t.Fatal("no faults injected")
	}
	if a != b {
		t.Fatalf("fault sequences diverged: %+v vs %+v", a, b)
	}
}
