package dns

import (
	"context"
	"net"
	"sync"
)

// FaultConfig sets per-packet fault probabilities for the injection
// wrappers. Probabilities are independent and evaluated in the order
// loss, duplication, reordering, truncation.
type FaultConfig struct {
	// Loss drops the packet entirely.
	Loss float64
	// Duplicate sends the packet twice.
	Duplicate float64
	// Reorder holds the packet back and releases it after the next one.
	Reorder float64
	// Truncate delivers the message with the TC bit set and the answer
	// sections stripped, as a real resolver does when an answer exceeds
	// the transport size.
	Truncate float64
	// Seed drives the deterministic fault RNG (default 1).
	Seed uint64
}

// faultRNG is a tiny splitmix64 so the dns package stays dependency-free
// and fault sequences are reproducible across runs.
type faultRNG struct{ state uint64 }

func newFaultRNG(seed uint64) *faultRNG {
	if seed == 0 {
		seed = 1
	}
	return &faultRNG{state: seed}
}

func (r *faultRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance returns true with probability p.
func (r *faultRNG) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(r.next()>>11)/float64(1<<53) < p
}

// FaultStats counts injected faults.
type FaultStats struct {
	Dropped    int64
	Duplicated int64
	Reordered  int64
	Truncated  int64
}

// FaultConn wraps a net.PacketConn and injects faults into outgoing
// packets. Wrapping a DNS server's listener simulates a lossy path back
// to the client — the direction that turns into client-visible timeouts
// — without touching the client code under test.
type FaultConn struct {
	net.PacketConn
	cfg FaultConfig

	mu   sync.Mutex
	rng  *faultRNG
	held []heldPacket // packets delayed by reordering
	st   FaultStats
}

type heldPacket struct {
	data []byte
	to   net.Addr
}

// NewFaultConn wraps inner with the given fault configuration.
func NewFaultConn(inner net.PacketConn, cfg FaultConfig) *FaultConn {
	return &FaultConn{PacketConn: inner, cfg: cfg, rng: newFaultRNG(cfg.Seed)}
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultConn) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// WriteTo applies the configured faults and forwards surviving packets.
func (f *FaultConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	f.mu.Lock()
	var release []heldPacket
	var sendNow [][]byte
	switch {
	case f.rng.chance(f.cfg.Loss):
		f.st.Dropped++
		// Swallowed; report success like a network would.
	case f.rng.chance(f.cfg.Reorder):
		f.st.Reordered++
		f.held = append(f.held, heldPacket{data: truncateIf(f, p), to: addr})
	default:
		out := truncateIf(f, p)
		sendNow = append(sendNow, out)
		if f.rng.chance(f.cfg.Duplicate) {
			f.st.Duplicated++
			sendNow = append(sendNow, out)
		}
		release = f.held
		f.held = nil
	}
	f.mu.Unlock()

	for _, data := range sendNow {
		if _, err := f.PacketConn.WriteTo(data, addr); err != nil {
			return 0, err
		}
	}
	for _, h := range release {
		f.PacketConn.WriteTo(h.data, h.to) //nolint:errcheck // best-effort late delivery
	}
	return len(p), nil
}

// truncateIf applies truncation with the configured probability: the
// message is re-encoded with the TC bit and no answers. Undecodable
// payloads pass through unchanged. Caller holds f.mu.
func truncateIf(f *FaultConn, p []byte) []byte {
	if !f.rng.chance(f.cfg.Truncate) {
		return p
	}
	m, err := Decode(p)
	if err != nil {
		return p
	}
	m.Truncated = true
	m.Answers, m.Authority, m.Additional = nil, nil, nil
	out, err := m.Encode()
	if err != nil {
		return p
	}
	f.st.Truncated++
	return out
}

// FaultTransport wraps any Transport with query-level fault injection
// for fully in-memory tests: loss turns into a blocked wait until ctx
// expires (what a dropped packet looks like to the caller), truncation
// into a TC-bit response error.
type FaultTransport struct {
	Inner Transport
	Cfg   FaultConfig

	mu  sync.Mutex
	rng *faultRNG
	st  FaultStats
}

var _ Transport = (*FaultTransport)(nil)

// Stats returns a snapshot of the injected-fault counters.
func (t *FaultTransport) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.st
}

// Query implements Transport.
func (t *FaultTransport) Query(ctx context.Context, m *Message) (*Message, error) {
	t.mu.Lock()
	if t.rng == nil {
		t.rng = newFaultRNG(t.Cfg.Seed)
	}
	lost := t.rng.chance(t.Cfg.Loss)
	trunc := !lost && t.rng.chance(t.Cfg.Truncate)
	if lost {
		t.st.Dropped++
	}
	if trunc {
		t.st.Truncated++
	}
	t.mu.Unlock()
	if lost {
		<-ctx.Done()
		return nil, ErrTimeout
	}
	resp, err := t.Inner.Query(ctx, m)
	if err != nil {
		return nil, err
	}
	if trunc {
		return nil, ErrTruncated
	}
	return resp, nil
}
