package dns

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeQuery(t *testing.T) {
	q := NewQuery(0x1234, "4.3.2.1.bl.example.org", TypeA)
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.Response || !got.RecursionDesired {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	qq := got.Questions[0]
	if qq.Name != "4.3.2.1.bl.example.org" || qq.Type != TypeA || qq.Class != ClassIN {
		t.Fatalf("question = %+v", qq)
	}
}

func TestEncodeDecodeResponse(t *testing.T) {
	q := NewQuery(7, "name.example", TypeA)
	r := q.Reply()
	r.Answers = append(r.Answers, ARecord("name.example", 86400, 127, 0, 0, 2))
	r.RCode = RCodeNoError
	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || !got.Authoritative {
		t.Fatal("response flags lost")
	}
	if len(got.Answers) != 1 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	a := got.Answers[0]
	if a.Type != TypeA || a.TTL != 86400 || !bytes.Equal(a.RData, []byte{127, 0, 0, 2}) {
		t.Fatalf("answer = %+v", a)
	}
}

func TestEncodeDecodeAAAA(t *testing.T) {
	var bitmap [16]byte
	bitmap[0] = 0x80
	bitmap[15] = 0x01
	q := NewQuery(9, "0.3.2.1.bl6.example", TypeAAAA)
	r := q.Reply()
	r.Answers = append(r.Answers, AAAARecord("0.3.2.1.bl6.example", 3600, bitmap))
	wire, _ := r.Encode()
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 1 || got.Answers[0].Type != TypeAAAA {
		t.Fatal("AAAA answer lost")
	}
	if !bytes.Equal(got.Answers[0].RData, bitmap[:]) {
		t.Fatalf("bitmap = %x", got.Answers[0].RData)
	}
}

func TestTXTRecordRoundTrip(t *testing.T) {
	rr := TXTRecord("x.example", 60, "listed: spam source")
	txt, err := rr.TXT()
	if err != nil || txt != "listed: spam source" {
		t.Fatalf("TXT = %q, %v", txt, err)
	}
	if _, err := ARecord("x", 1, 1, 2, 3, 4).TXT(); err == nil {
		t.Fatal("TXT() on an A record should fail")
	}
	long := TXTRecord("x", 1, strings.Repeat("a", 300))
	txt, _ = long.TXT()
	if len(txt) != 255 {
		t.Fatalf("TXT should truncate to 255, got %d", len(txt))
	}
}

func TestEmptyAndRootName(t *testing.T) {
	for _, name := range []string{"", "."} {
		q := NewQuery(1, name, TypeA)
		wire, err := q.Encode()
		if err != nil {
			t.Fatalf("Encode(%q): %v", name, err)
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("Decode(%q): %v", name, err)
		}
		if got.Questions[0].Name != "" {
			t.Fatalf("root name decoded as %q", got.Questions[0].Name)
		}
	}
}

func TestRCodeRoundTrip(t *testing.T) {
	for _, rc := range []RCode{RCodeNoError, RCodeNXDomain, RCodeServFail, RCodeRefused} {
		m := NewQuery(3, "x.example", TypeA).Reply()
		m.RCode = rc
		wire, _ := m.Encode()
		got, err := Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		if got.RCode != rc {
			t.Fatalf("rcode = %d, want %d", got.RCode, rc)
		}
	}
}

func TestNameLimits(t *testing.T) {
	if _, err := NewQuery(1, strings.Repeat("a", 64)+".example", TypeA).Encode(); err == nil {
		t.Error("64-byte label accepted")
	}
	longName := strings.Repeat("abcdefg.", 40) // > 255 bytes
	if _, err := NewQuery(1, longName, TypeA).Encode(); err == nil {
		t.Error("over-long name accepted")
	}
	if _, err := NewQuery(1, "a..b", TypeA).Encode(); err == nil {
		t.Error("empty label accepted")
	}
}

func TestDecodeCompressedName(t *testing.T) {
	// Hand-built message: question "a.bc" then an answer whose name is a
	// compression pointer back to the question name at offset 12.
	var wire []byte
	wire = append(wire, 0x00, 0x07) // ID
	wire = append(wire, 0x80, 0x00) // QR=1
	wire = append(wire, 0, 1, 0, 1, 0, 0, 0, 0)
	wire = append(wire, 1, 'a', 2, 'b', 'c', 0) // a.bc at offset 12
	wire = append(wire, 0, 1, 0, 1)             // A IN
	wire = append(wire, 0xc0, 12)               // pointer to offset 12
	wire = append(wire, 0, 1, 0, 1)             // A IN
	wire = append(wire, 0, 0, 0, 60)            // TTL
	wire = append(wire, 0, 4, 127, 0, 0, 1)     // RDATA
	m, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].Name != "a.bc" {
		t.Fatalf("compressed name = %q, want a.bc", m.Answers[0].Name)
	}
}

func TestDecodeCompressionLoopRejected(t *testing.T) {
	var wire []byte
	wire = append(wire, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0)
	wire = append(wire, 0xc0, 12) // pointer to itself
	wire = append(wire, 0, 1, 0, 1)
	if _, err := Decode(wire); err == nil {
		t.Fatal("self-referential pointer accepted")
	}
}

func TestDecodeTruncatedInputs(t *testing.T) {
	q := NewQuery(5, "some.name.example", TypeA)
	r := q.Reply()
	r.Answers = append(r.Answers, ARecord("some.name.example", 1, 1, 2, 3, 4))
	wire, _ := r.Encode()
	// Every proper prefix must fail cleanly, never panic.
	for i := 0; i < len(wire); i++ {
		if _, err := Decode(wire[:i]); err == nil {
			t.Fatalf("truncated message of %d bytes decoded", i)
		}
	}
}

func TestDecodeFuzzProperty(t *testing.T) {
	// Property: Decode never panics on arbitrary bytes.
	f := func(data []byte) bool {
		Decode(data) //nolint:errcheck // only checking for panics
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	// Property: any well-formed message round-trips.
	f := func(id uint16, labelSeed uint8, ttl uint32, rdata []byte) bool {
		if len(rdata) > 512 {
			rdata = rdata[:512]
		}
		name := strings.Repeat("x", int(labelSeed%60)+1) + ".example"
		m := NewQuery(id, name, TypeTXT)
		r := m.Reply()
		r.Answers = append(r.Answers, RR{Name: name, Type: TypeTXT, Class: ClassIN, TTL: ttl, RData: rdata})
		wire, err := r.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return got.ID == id &&
			got.Questions[0].Name == name &&
			got.Answers[0].TTL == ttl &&
			bytes.Equal(got.Answers[0].RData, rdata)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeA: "A", TypeAAAA: "AAAA", TypeTXT: "TXT", TypePTR: "PTR",
		TypeNS: "NS", Type(99): "TYPE99",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestMXRecordRoundTrip(t *testing.T) {
	q := NewQuery(7, "remote.example", TypeMX)
	reply := q.Reply()
	reply.Answers = append(reply.Answers,
		MXRecord("remote.example", 300, 10, "mx1.remote.example"),
		MXRecord("remote.example", 300, 20, "mx2.remote.example"),
	)
	wire, err := reply.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	pref, host, err := got.Answers[0].MX()
	if err != nil || pref != 10 || host != "mx1.remote.example" {
		t.Fatalf("MX() = %d %q %v", pref, host, err)
	}
	pref, host, err = got.Answers[1].MX()
	if err != nil || pref != 20 || host != "mx2.remote.example" {
		t.Fatalf("MX() = %d %q %v", pref, host, err)
	}
}

func TestMXParseRejectsGarbage(t *testing.T) {
	if _, _, err := (RR{Type: TypeA, RData: []byte{1, 2, 3, 4}}).MX(); err == nil {
		t.Fatal("A record parsed as MX")
	}
	if _, _, err := (RR{Type: TypeMX, RData: []byte{0, 10}}).MX(); err == nil {
		t.Fatal("short RDATA accepted")
	}
	// Compression pointer in the exchange name must be rejected.
	if _, _, err := (RR{Type: TypeMX, RData: []byte{0, 10, 0xc0, 0x0c}}).MX(); err == nil {
		t.Fatal("compressed exchange accepted")
	}
	// Truncated label.
	if _, _, err := (RR{Type: TypeMX, RData: []byte{0, 10, 5, 'a', 'b'}}).MX(); err == nil {
		t.Fatal("truncated label accepted")
	}
}
