package dns

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Pipelined is the production client transport: one shared socket per
// upstream with concurrent in-flight queries demultiplexed by transaction
// ID, per-query deadlines, retry with exponential backoff, and optional
// hedging across replica upstreams.
//
// The seed UDPTransport dials a fresh socket per query and blocks the
// caller for the full timeout on loss; under a pre-trust accept path
// (§5) that stall is exactly what the paper says must not happen. The
// pipelined transport bounds tail latency instead: a lost packet costs
// one attempt timeout (default 2s becomes tens of milliseconds), a slow
// primary is raced by a hedged query to a replica, and the socket is
// shared so ten thousand concurrent lookups cost one file descriptor per
// upstream, not ten thousand.
type Pipelined struct {
	cfg       pipelineConfig
	upstreams []*upstream

	mu     sync.Mutex
	closed bool

	retries atomic.Int64 // re-sent attempts after a failed one
	hedges  atomic.Int64 // hedged duplicate queries launched
}

var _ Transport = (*Pipelined)(nil)

// pipelineConfig holds the tunables; see the With* options.
type pipelineConfig struct {
	attemptTimeout time.Duration
	queryTimeout   time.Duration
	attempts       int
	backoff        time.Duration
	hedgeDelay     time.Duration
}

// PipelinedOption configures a Pipelined transport.
type PipelinedOption func(*pipelineConfig)

// WithAttemptTimeout bounds each individual send-and-wait attempt
// (default 500ms). Loss is detected after this long, not after the whole
// query deadline.
func WithAttemptTimeout(d time.Duration) PipelinedOption {
	return func(c *pipelineConfig) { c.attemptTimeout = d }
}

// WithQueryTimeout is the overall per-query deadline applied when the
// caller's context has none (default 2s).
func WithQueryTimeout(d time.Duration) PipelinedOption {
	return func(c *pipelineConfig) { c.queryTimeout = d }
}

// WithAttempts sets how many times a flight sends the query before
// giving up (default 3: the original send plus two retries).
func WithAttempts(n int) PipelinedOption {
	return func(c *pipelineConfig) { c.attempts = n }
}

// WithBackoff sets the base delay between retries, doubled per attempt
// (default 10ms).
func WithBackoff(d time.Duration) PipelinedOption {
	return func(c *pipelineConfig) { c.backoff = d }
}

// WithHedgeDelay launches a duplicate query against the next upstream if
// the first has not answered within d. The first successful response
// wins. Zero (the default) disables hedging; it is a no-op with a single
// upstream.
func WithHedgeDelay(d time.Duration) PipelinedOption {
	return func(c *pipelineConfig) { c.hedgeDelay = d }
}

// upstream is one shared socket plus its transaction-ID demux table.
type upstream struct {
	addr string
	conn net.Conn

	mu       sync.Mutex
	inflight map[uint16]chan *Message
	nextID   uint16
	closed   bool
}

// NewPipelined dials every upstream and starts their read loops. At
// least one upstream address is required; later addresses are replicas
// used by hedging and by retries after primary failure.
func NewPipelined(upstreams []string, opts ...PipelinedOption) (*Pipelined, error) {
	if len(upstreams) == 0 {
		return nil, errors.New("dns: pipelined transport needs at least one upstream")
	}
	p := &Pipelined{cfg: pipelineConfig{
		attemptTimeout: 500 * time.Millisecond,
		queryTimeout:   2 * time.Second,
		attempts:       3,
		backoff:        10 * time.Millisecond,
	}}
	for _, o := range opts {
		o(&p.cfg)
	}
	if p.cfg.attempts < 1 {
		p.cfg.attempts = 1
	}
	for _, addr := range upstreams {
		conn, err := net.Dial("udp", addr)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("dns: dial %s: %w", addr, err)
		}
		u := &upstream{
			addr:     addr,
			conn:     conn,
			inflight: make(map[uint16]chan *Message),
			nextID:   uint16(rand.Uint32()),
		}
		p.upstreams = append(p.upstreams, u)
		go u.readLoop()
	}
	return p, nil
}

// Close shuts every socket; in-flight queries fail with ErrTimeout when
// their deadlines expire.
func (p *Pipelined) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	var err error
	for _, u := range p.upstreams {
		u.mu.Lock()
		u.closed = true
		u.mu.Unlock()
		if cerr := u.conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Retries returns the number of re-sent attempts (loss or truncation
// recovery).
func (p *Pipelined) Retries() int64 { return p.retries.Load() }

// Hedges returns the number of hedged duplicate queries launched.
func (p *Pipelined) Hedges() int64 { return p.hedges.Load() }

// Query implements Transport: it races up to two flights (primary, plus
// a hedged replica flight after the hedge delay) and returns the first
// successful response. Each flight retries with backoff on loss and
// truncation.
func (p *Pipelined) Query(ctx context.Context, m *Message) (*Message, error) {
	if _, ok := ctx.Deadline(); !ok && p.cfg.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.queryTimeout)
		defer cancel()
	}
	// One cancel scope for every flight: the first success cancels the
	// rest.
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type flightResult struct {
		resp *Message
		err  error
	}
	nFlights := 1
	hedging := p.cfg.hedgeDelay > 0 && len(p.upstreams) > 1
	if hedging {
		nFlights = 2
	}
	results := make(chan flightResult, nFlights)
	launch := func(idx int) {
		go func() {
			resp, err := p.flight(fctx, p.upstreams[idx%len(p.upstreams)], m)
			results <- flightResult{resp, err}
		}()
	}
	launch(0)
	var hedgeC <-chan time.Time
	if hedging {
		timer := time.NewTimer(p.cfg.hedgeDelay)
		defer timer.Stop()
		hedgeC = timer.C
	}
	launched, finished := 1, 0
	var lastErr error
	for {
		select {
		case r := <-results:
			finished++
			if r.err == nil {
				return r.resp, nil
			}
			lastErr = r.err
			if finished == launched {
				// Every launched flight failed; launch the hedge early if
				// it is still pending, otherwise report the failure.
				if launched < nFlights {
					p.hedges.Add(1)
					launch(1)
					launched++
					hedgeC = nil
					continue
				}
				return nil, lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			p.hedges.Add(1)
			launch(1)
			launched++
		case <-ctx.Done():
			return nil, ErrTimeout
		}
	}
}

// flight sends the query to one upstream up to cfg.attempts times,
// backing off between attempts, until an answer arrives or ctx expires.
func (p *Pipelined) flight(ctx context.Context, u *upstream, m *Message) (*Message, error) {
	var lastErr error = ErrTimeout
	backoff := p.cfg.backoff
	for attempt := 0; attempt < p.cfg.attempts; attempt++ {
		if attempt > 0 {
			p.retries.Add(1)
			if backoff > 0 {
				timer := time.NewTimer(backoff)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return nil, lastErr
				}
				backoff *= 2
			}
		}
		actx := ctx
		if p.cfg.attemptTimeout > 0 {
			var cancel context.CancelFunc
			actx, cancel = context.WithTimeout(ctx, p.cfg.attemptTimeout)
			resp, err := u.roundTrip(actx, m)
			cancel()
			if err == nil {
				return resp, nil
			}
			lastErr = err
		} else {
			resp, err := u.roundTrip(actx, m)
			if err == nil {
				return resp, nil
			}
			lastErr = err
		}
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// register allocates a free transaction ID and its response channel.
func (u *upstream) register() (uint16, chan *Message, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return 0, nil, fmt.Errorf("dns: upstream %s closed", u.addr)
	}
	if len(u.inflight) >= 1<<16-1 {
		return 0, nil, fmt.Errorf("dns: upstream %s: transaction IDs exhausted", u.addr)
	}
	for {
		u.nextID++
		if _, busy := u.inflight[u.nextID]; !busy {
			ch := make(chan *Message, 1)
			u.inflight[u.nextID] = ch
			return u.nextID, ch, nil
		}
	}
}

func (u *upstream) unregister(id uint16) {
	u.mu.Lock()
	delete(u.inflight, id)
	u.mu.Unlock()
}

// roundTrip sends one copy of the query (under a fresh transaction ID)
// and waits for its demultiplexed response or ctx expiry.
func (u *upstream) roundTrip(ctx context.Context, m *Message) (*Message, error) {
	id, ch, err := u.register()
	if err != nil {
		return nil, err
	}
	defer u.unregister(id)
	q := *m // shallow copy: the ID is per-attempt, the question shared
	q.ID = id
	out, err := q.Encode()
	if err != nil {
		return nil, err
	}
	if _, err := u.conn.Write(out); err != nil {
		return nil, fmt.Errorf("dns: send to %s: %w", u.addr, err)
	}
	select {
	case resp := <-ch:
		if resp.Truncated {
			return nil, ErrTruncated
		}
		return resp, nil
	case <-ctx.Done():
		return nil, ErrTimeout
	}
}

// readLoop drains the shared socket, routing each response to the
// attempt that owns its transaction ID. Stray packets — unknown or
// duplicate IDs, garbage, queries — are dropped, which also makes the
// demux robust to network duplication and reordering: a late duplicate
// finds its ID already retired.
func (u *upstream) readLoop() {
	buf := make([]byte, 4096)
	for {
		n, err := u.conn.Read(buf)
		if err != nil {
			return // closed
		}
		resp, err := Decode(buf[:n])
		if err != nil || !resp.Response {
			continue
		}
		u.mu.Lock()
		ch, ok := u.inflight[resp.ID]
		if ok {
			delete(u.inflight, resp.ID)
		}
		u.mu.Unlock()
		if ok {
			ch <- resp // buffered; never blocks
		}
	}
}
