package dns

import (
	"bytes"
	"testing"
)

// FuzzMessage throws arbitrary bytes at the wire decoder. The properties:
// Decode never panics, and any message it accepts must re-encode and
// re-decode to an equivalent header and question section (the parts the
// DNSBL path depends on).
func FuzzMessage(f *testing.F) {
	// Seed corpus: real encodings of the message shapes the servers and
	// clients exchange, plus a few adversarial fragments.
	q, _ := NewQuery(0xbeef, "4.3.2.1.bl.example", TypeA).Encode()
	f.Add(q)
	resp := &Message{
		ID: 7, Response: true,
		Questions: []Question{{Name: "x.bl6.example", Type: TypeAAAA, Class: ClassIN}},
		Answers:   []RR{ARecord("x.bl6.example", 60, 127, 0, 0, 2)},
	}
	if wire, err := resp.Encode(); err == nil {
		f.Add(wire)
	}
	trunc := &Message{ID: 9, Response: true, Truncated: true,
		Questions: []Question{{Name: "y.bl.example", Type: TypeA, Class: ClassIN}}}
	if wire, err := trunc.Encode(); err == nil {
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xc0}, 64)) // compression-pointer soup

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		wire, err := m.Encode()
		if err != nil {
			// Decode may accept names Encode refuses (e.g. empty labels
			// from compression edge cases); that asymmetry is harmless.
			return
		}
		m2, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v\noriginal: %x\nwire: %x", err, data, wire)
		}
		if m2.ID != m.ID || m2.Response != m.Response || m2.Truncated != m.Truncated ||
			m2.RCode != m.RCode || len(m2.Questions) != len(m.Questions) {
			t.Fatalf("round-trip drift:\n first = %+v\nsecond = %+v", m, m2)
		}
		for i := range m.Questions {
			if m2.Questions[i].Type != m.Questions[i].Type {
				t.Fatalf("question %d type drift: %v vs %v", i, m.Questions[i], m2.Questions[i])
			}
		}
	})
}
