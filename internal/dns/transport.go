package dns

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler answers DNS questions. Implementations must be safe for
// concurrent use; the UDP server calls Resolve from its read loop.
type Handler interface {
	// Resolve answers a single question. Returning a nil message means
	// SERVFAIL.
	Resolve(q Question) *Message
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(q Question) *Message

// Resolve implements Handler.
func (f HandlerFunc) Resolve(q Question) *Message { return f(q) }

// Transport issues one DNS query and returns the response, honouring
// cancellation and deadlines on ctx. Implementations must be safe for
// concurrent use. The implementations are Pipelined (shared-socket
// pipelined client with retry and hedging), UDPTransport (one socket per
// query, the naive baseline), MemTransport (direct handler invocation for
// deterministic tests), and FaultTransport (fault-injecting wrapper).
type Transport interface {
	Query(ctx context.Context, m *Message) (*Message, error)
}

// ErrTimeout is returned when a query receives no answer in time.
var ErrTimeout = errors.New("dns: query timed out")

// ErrTruncated is returned when the only answer received was truncated
// (TC bit set). Retrying is the caller's recourse; this package has no
// TCP fallback.
var ErrTruncated = errors.New("dns: response truncated")

// ---------------------------------------------------------------------------
// UDP server

// Server serves DNS over a net.PacketConn.
type Server struct {
	conn    net.PacketConn
	handler Handler

	mu     sync.Mutex
	closed bool
	done   chan struct{}

	// Queries counts requests served, for tests and reports.
	queries int64
}

// NewServer starts serving on conn; it owns conn and closes it on Close.
// The read loop runs until Close.
func NewServer(conn net.PacketConn, handler Handler) *Server {
	s := &Server{conn: conn, handler: handler, done: make(chan struct{})}
	go s.loop()
	return s
}

// Addr returns the server's listening address.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// Queries returns the number of queries served.
func (s *Server) Queries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// Close stops the server and waits for the read loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	<-s.done
	return err
}

func (s *Server) loop() {
	defer close(s.done)
	buf := make([]byte, 4096)
	for {
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		query, err := Decode(buf[:n])
		if err != nil || query.Response || len(query.Questions) != 1 {
			continue // drop garbage, as real servers do
		}
		s.mu.Lock()
		s.queries++
		s.mu.Unlock()
		resp := s.handler.Resolve(query.Questions[0])
		if resp == nil {
			resp = query.Reply()
			resp.RCode = RCodeServFail
		}
		resp.ID = query.ID
		resp.Response = true
		out, err := resp.Encode()
		if err != nil {
			continue
		}
		if _, err := s.conn.WriteTo(out, from); err != nil {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// UDP client transport

// UDPTransport queries a fixed server address over UDP with a timeout and
// ID validation. It dials a fresh socket per query and blocks until the
// answer or the deadline — the naive baseline the Pipelined transport
// replaces; it is kept for comparison experiments and simple tools.
type UDPTransport struct {
	// Server is the DNSBL server's address, e.g. "127.0.0.1:5353".
	Server string
	// Timeout bounds each query; zero means 2s. The effective deadline is
	// the earlier of this and ctx's deadline.
	Timeout time.Duration
}

var _ Transport = (*UDPTransport)(nil)

// Query implements Transport.
func (t *UDPTransport) Query(ctx context.Context, m *Message) (*Message, error) {
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.Dial("udp", t.Server)
	if err != nil {
		return nil, fmt.Errorf("dns: dial %s: %w", t.Server, err)
	}
	defer conn.Close()
	out, err := m.Encode()
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(out); err != nil {
		return nil, fmt.Errorf("dns: send: %w", err)
	}
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, ErrTimeout
			}
			return nil, fmt.Errorf("dns: recv: %w", err)
		}
		resp, err := Decode(buf[:n])
		if err != nil {
			continue
		}
		if resp.ID != m.ID || !resp.Response {
			continue // stray or spoof-candidate packet; keep waiting
		}
		return resp, nil
	}
}

// ---------------------------------------------------------------------------
// In-memory transport

// MemTransport invokes a Handler directly — no sockets, no goroutines —
// and optionally delays via a caller-supplied latency hook so tests can
// model slow blacklists deterministically.
type MemTransport struct {
	Handler Handler
	// Latency, if non-nil, is invoked per query with the question; the
	// transport sleeps for the returned duration (real time).
	Latency func(q Question) time.Duration

	mu      sync.Mutex
	queries int64
}

var _ Transport = (*MemTransport)(nil)

// Queries returns the number of queries issued through the transport.
func (t *MemTransport) Queries() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.queries
}

// Query implements Transport.
func (t *MemTransport) Query(ctx context.Context, m *Message) (*Message, error) {
	if len(m.Questions) != 1 {
		return nil, fmt.Errorf("dns: MemTransport requires exactly one question")
	}
	t.mu.Lock()
	t.queries++
	t.mu.Unlock()
	if t.Latency != nil {
		if d := t.Latency(m.Questions[0]); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return nil, ErrTimeout
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, ErrTimeout
	}
	resp := t.Handler.Resolve(m.Questions[0])
	if resp == nil {
		resp = m.Reply()
		resp.RCode = RCodeServFail
	}
	resp.ID = m.ID
	resp.Response = true
	return resp, nil
}

// ---------------------------------------------------------------------------
// TTL cache

// Cache is a TTL-bound answer cache keyed by (name, qtype). Time is
// injected so the simulator can drive it with virtual time and the paper's
// 24-hour DNSBL TTL (§7.2) costs nothing to test.
type Cache struct {
	mu      sync.Mutex
	now     func() time.Time
	entries map[cacheKey]cacheEntry

	hits   int64
	misses int64
}

type cacheKey struct {
	name  string
	qtype Type
}

type cacheEntry struct {
	msg     *Message
	expires time.Time
}

// NewCache returns a cache reading time from now (defaults to time.Now).
func NewCache(now func() time.Time) *Cache {
	if now == nil {
		now = time.Now
	}
	return &Cache{now: now, entries: make(map[cacheKey]cacheEntry)}
}

// Get returns the cached response for (name, qtype) if still fresh.
// Expired entries are kept (a miss, not an eviction) so Stale can serve
// them when the upstream is unreachable; Put overwrites them in place.
func (c *Cache) Get(name string, qtype Type) (*Message, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[cacheKey{name: name, qtype: qtype}]
	if !ok || c.now().After(e.expires) {
		c.misses++
		return nil, false
	}
	c.hits++
	return e.msg, true
}

// Stale returns the cached response for (name, qtype) regardless of
// freshness, along with how long past its expiry it is (0 when still
// fresh). It does not count as a hit or miss; callers use it to serve
// stale answers when the live source is unreachable.
func (c *Cache) Stale(name string, qtype Type) (*Message, time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[cacheKey{name: name, qtype: qtype}]
	if !ok {
		return nil, 0, false
	}
	age := c.now().Sub(e.expires)
	if age < 0 {
		age = 0
	}
	return e.msg, age, true
}

// Put stores a response under (name, qtype) for ttl.
func (c *Cache) Put(name string, qtype Type, msg *Message, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[cacheKey{name: name, qtype: qtype}] = cacheEntry{
		msg:     msg,
		expires: c.now().Add(ttl),
	}
}

// Len returns the number of cached entries, including expired ones not
// yet evicted.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// HitRatio returns hits/(hits+misses), or 0 with no traffic.
func (c *Cache) HitRatio() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
