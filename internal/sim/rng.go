package sim

import (
	"math"
	"math/rand/v2"
	"sort"
	"time"
)

// RNG is a seeded deterministic random stream with the distribution
// helpers the workload generators need. Two RNGs built from the same seed
// produce identical sequences on every platform (PCG is fully specified).
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic stream for the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent child stream. Each call advances the parent,
// so forks made in a fixed order are themselves deterministic.
func (g *RNG) Fork() *RNG {
	return &RNG{r: rand.New(rand.NewPCG(g.r.Uint64(), g.r.Uint64()))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.IntN(n) }

// IntBetween returns a uniform int in [lo, hi] inclusive.
func (g *RNG) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("sim: IntBetween with hi < lo")
	}
	return lo + g.r.IntN(hi-lo+1)
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Exp returns an exponentially distributed duration with the given mean;
// the interarrival law of a Poisson process, used by the open-system
// client (paper's Client Program 2).
func (g *RNG) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(g.r.ExpFloat64() * float64(mean))
}

// LogNormal returns a log-normally distributed value with the given
// parameters of the underlying normal. Mail sizes are classically
// log-normal, which the Univ-trace model relies on.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Pareto returns a Pareto(xm, alpha) variate — heavy-tailed counts such as
// blacklisted-IPs-per-/24 (Fig 12) are modelled with it.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Zipf returns a value in [1, n] following a Zipf-like law with exponent s.
func (g *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 1
	}
	// Inverse-CDF on the harmonic weights; n here is small (≤ a few
	// thousand), so the linear scan is fine and keeps the stream usage
	// to exactly one draw per call.
	u := g.r.Float64()
	var total float64
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
	}
	target := u * total
	var run float64
	for k := 1; k <= n; k++ {
		run += 1 / math.Pow(float64(k), s)
		if run >= target {
			return k
		}
	}
	return n
}

// WeightedChoice returns an index into weights drawn proportionally to the
// weights, which must be non-negative and not all zero.
func (g *RNG) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("sim: all weights zero")
	}
	target := g.r.Float64() * total
	var run float64
	for i, w := range weights {
		run += w
		if run > target {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the first n indices via swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// CDFSampler draws from an empirical distribution given as a piecewise
// linear CDF. It inverts the CDF: a uniform draw in [0, 1) is mapped to
// the x-axis by linear interpolation between the surrounding points.
// This is how the six DNSBLs' Fig 5 latency distributions are sampled.
type CDFSampler struct {
	xs    []float64
	fracs []float64
}

// NewCDFSampler builds a sampler from (x, cumulative fraction) points.
// Points must be sorted by fraction, start at fraction ≥ 0, and end at
// fraction 1. The x values must be non-decreasing.
func NewCDFSampler(points []struct{ X, Frac float64 }) *CDFSampler {
	if len(points) < 2 {
		panic("sim: CDF needs at least two points")
	}
	s := &CDFSampler{}
	for i, p := range points {
		if i > 0 {
			if p.Frac < s.fracs[i-1] || p.X < s.xs[i-1] {
				panic("sim: CDF points must be non-decreasing")
			}
		}
		s.xs = append(s.xs, p.X)
		s.fracs = append(s.fracs, p.Frac)
	}
	if s.fracs[len(s.fracs)-1] < 1 {
		panic("sim: CDF must reach 1")
	}
	return s
}

// Sample draws one value from the distribution.
func (s *CDFSampler) Sample(g *RNG) float64 {
	u := g.Float64()
	// First point with fracs[i] >= u.
	i := sort.SearchFloat64s(s.fracs, u)
	if i == 0 {
		return s.xs[0]
	}
	if i >= len(s.fracs) {
		return s.xs[len(s.xs)-1]
	}
	f0, f1 := s.fracs[i-1], s.fracs[i]
	if f1 == f0 {
		return s.xs[i]
	}
	t := (u - f0) / (f1 - f0)
	return s.xs[i-1] + t*(s.xs[i]-s.xs[i-1])
}

// Quantile returns the x value at cumulative fraction q without consuming
// randomness.
func (s *CDFSampler) Quantile(q float64) float64 {
	if q <= s.fracs[0] {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	i := sort.SearchFloat64s(s.fracs, q)
	if i >= len(s.fracs) {
		return s.xs[len(s.xs)-1]
	}
	f0, f1 := s.fracs[i-1], s.fracs[i]
	if f1 == f0 {
		return s.xs[i]
	}
	t := (q - f0) / (f1 - f0)
	return s.xs[i-1] + t*(s.xs[i]-s.xs[i-1])
}
