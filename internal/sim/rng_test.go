package sim

import (
	"math"
	"testing"
	"time"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFork(t *testing.T) {
	a, b := NewRNG(1), NewRNG(1)
	fa, fb := a.Fork(), b.Fork()
	for i := 0; i < 50; i++ {
		if fa.Float64() != fb.Float64() {
			t.Fatal("deterministic forks diverged")
		}
	}
	// A fork is independent of its parent's continued stream.
	ga := a.Fork()
	gb := b.Fork()
	for i := 0; i < 50; i++ {
		if ga.Float64() != gb.Float64() {
			t.Fatal("second forks diverged")
		}
	}
}

func TestIntBetween(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := g.IntBetween(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntBetween out of range: %d", v)
		}
	}
	if g.IntBetween(4, 4) != 4 {
		t.Fatal("degenerate range")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("IntBetween(5,4) did not panic")
		}
	}()
	g.IntBetween(5, 4)
}

func TestBool(t *testing.T) {
	g := NewRNG(9)
	n := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if g.Bool(0.25) {
			n++
		}
	}
	frac := float64(n) / trials
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("Bool(0.25) frequency = %v", frac)
	}
	if g.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(11)
	var sum time.Duration
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += g.Exp(100 * time.Millisecond)
	}
	mean := sum / trials
	if mean < 95*time.Millisecond || mean > 105*time.Millisecond {
		t.Fatalf("Exp mean = %v, want ≈100ms", mean)
	}
	if g.Exp(0) != 0 || g.Exp(-time.Second) != 0 {
		t.Fatal("Exp of non-positive mean should be 0")
	}
}

func TestLogNormal(t *testing.T) {
	g := NewRNG(13)
	const mu, sigma = 8.0, 1.0
	var sumLog float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		v := g.LogNormal(mu, sigma)
		if v <= 0 {
			t.Fatal("LogNormal produced non-positive value")
		}
		sumLog += math.Log(v)
	}
	if got := sumLog / trials; math.Abs(got-mu) > 0.05 {
		t.Fatalf("LogNormal log-mean = %v, want ≈%v", got, mu)
	}
}

func TestPareto(t *testing.T) {
	g := NewRNG(17)
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestZipf(t *testing.T) {
	g := NewRNG(19)
	counts := make([]int, 11)
	for i := 0; i < 20000; i++ {
		k := g.Zipf(10, 1.0)
		if k < 1 || k > 10 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[10] {
		t.Fatalf("Zipf not skewed: count[1]=%d count[10]=%d", counts[1], counts[10])
	}
	if g.Zipf(1, 1.0) != 1 || g.Zipf(0, 1.0) != 1 {
		t.Fatal("degenerate Zipf should return 1")
	}
}

func TestWeightedChoice(t *testing.T) {
	g := NewRNG(23)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[g.WeightedChoice([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("weights not respected: %v", counts)
	}
	frac := float64(counts[2]) / 30000
	if frac < 0.66 || frac > 0.74 {
		t.Fatalf("weight-7 frequency = %v, want ≈0.7", frac)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	g := NewRNG(1)
	for _, ws := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WeightedChoice(%v) did not panic", ws)
				}
			}()
			g.WeightedChoice(ws)
		}()
	}
}

func TestPerm(t *testing.T) {
	g := NewRNG(29)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func cdfPoints(pairs ...float64) []struct{ X, Frac float64 } {
	var pts []struct{ X, Frac float64 }
	for i := 0; i+1 < len(pairs); i += 2 {
		pts = append(pts, struct{ X, Frac float64 }{pairs[i], pairs[i+1]})
	}
	return pts
}

func TestCDFSamplerQuantile(t *testing.T) {
	s := NewCDFSampler(cdfPoints(0, 0, 10, 0.5, 100, 1.0))
	cases := []struct{ q, want float64 }{
		{0, 0}, {0.25, 5}, {0.5, 10}, {0.75, 55}, {1, 100},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestCDFSamplerSampleRange(t *testing.T) {
	s := NewCDFSampler(cdfPoints(5, 0, 20, 1.0))
	g := NewRNG(31)
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		v := s.Sample(g)
		if v < 5 || v > 20 {
			t.Fatalf("sample out of support: %v", v)
		}
		sum += v
	}
	// Uniform over [5, 20] has mean 12.5.
	if mean := sum / trials; mean < 12.2 || mean > 12.8 {
		t.Fatalf("sample mean = %v, want ≈12.5", mean)
	}
}

func TestCDFSamplerStepDistribution(t *testing.T) {
	// A CDF with a vertical jump at x=10 (atom of mass 0.6).
	s := NewCDFSampler(cdfPoints(10, 0.6, 10, 0.6, 50, 1.0))
	g := NewRNG(37)
	atoms := 0
	for i := 0; i < 10000; i++ {
		if s.Sample(g) == 10 {
			atoms++
		}
	}
	if frac := float64(atoms) / 10000; frac < 0.56 || frac > 0.64 {
		t.Fatalf("atom mass = %v, want ≈0.6", frac)
	}
}

func TestCDFSamplerValidation(t *testing.T) {
	for _, pts := range [][]struct{ X, Frac float64 }{
		cdfPoints(0, 0),            // too short
		cdfPoints(0, 0.5, 10, 0.2), // fraction decreasing
		cdfPoints(10, 0, 5, 1.0),   // x decreasing
		cdfPoints(0, 0, 10, 0.9),   // never reaches 1
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCDFSampler(%v) did not panic", pts)
				}
			}()
			NewCDFSampler(pts)
		}()
	}
}
