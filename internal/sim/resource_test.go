package sim

import (
	"testing"
	"time"
)

func TestResourceSerialService(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, 1)
	var done []time.Duration
	for i := 0; i < 3; i++ {
		r.Submit(time.Second, func() { done = append(done, eng.Now()) })
	}
	eng.RunUntilIdle()
	want := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("completion[%d] = %v, want %v", i, done[i], w)
		}
	}
	if r.Completed() != 3 {
		t.Fatalf("completed = %d, want 3", r.Completed())
	}
	if r.BusyTime() != 3*time.Second {
		t.Fatalf("busy = %v, want 3s", r.BusyTime())
	}
	// Second and third requests waited 1s and 2s respectively.
	if r.TotalWait() != 3*time.Second {
		t.Fatalf("wait = %v, want 3s", r.TotalWait())
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, 2)
	var last time.Duration
	for i := 0; i < 4; i++ {
		r.Submit(time.Second, func() { last = eng.Now() })
	}
	eng.RunUntilIdle()
	// Two waves of two: completes at 2s, not 4s.
	if last != 2*time.Second {
		t.Fatalf("last completion = %v, want 2s", last)
	}
	if r.MaxQueue() != 2 {
		t.Fatalf("max queue = %d, want 2", r.MaxQueue())
	}
}

func TestResourceUtilization(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, 1)
	r.Submit(time.Second, nil)
	eng.Run(2 * time.Second)
	if u := r.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	NewResource(NewEngine(), 0)
}

func TestResourceNegativeServiceClamped(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, 1)
	fired := false
	r.Submit(-time.Second, func() { fired = true })
	eng.RunUntilIdle()
	if !fired || eng.Now() != 0 {
		t.Fatal("negative service should complete immediately")
	}
}

func TestResourceNilDone(t *testing.T) {
	eng := NewEngine()
	r := NewResource(eng, 1)
	r.Submit(time.Second, nil)
	eng.RunUntilIdle()
	if r.Completed() != 1 {
		t.Fatal("nil done callback broke completion")
	}
}

func TestCPUContextSwitchAccounting(t *testing.T) {
	eng := NewEngine()
	cpu := NewCPU(eng, 10*time.Millisecond)
	var completions int
	// Owners 0,1,0,1 queued: batching dispatch groups the same-owner
	// bursts, so the schedule is 0,0,1,1 — two switches, not four.
	for i := 0; i < 4; i++ {
		cpu.Run(i%2, 100*time.Millisecond, func() { completions++ })
	}
	eng.RunUntilIdle()
	if completions != 4 {
		t.Fatalf("completions = %d, want 4", completions)
	}
	if cpu.Switches() != 2 {
		t.Fatalf("switches = %d, want 2", cpu.Switches())
	}
	// 4×100ms service + 2×10ms switches.
	if cpu.BusyTime() != 420*time.Millisecond {
		t.Fatalf("busy = %v, want 420ms", cpu.BusyTime())
	}
}

func TestCPUBatchingPrefersResidentOwner(t *testing.T) {
	eng := NewEngine()
	cpu := NewCPU(eng, time.Millisecond)
	var order []int
	run := func(owner int) {
		cpu.Run(owner, time.Millisecond, func() { order = append(order, owner) })
	}
	// Owner 7 starts; while it runs, 8, 7, 8 queue up.
	run(7)
	run(8)
	run(7)
	run(8)
	eng.RunUntilIdle()
	want := []int{7, 7, 8, 8}
	for i, o := range order {
		if o != want[i] {
			t.Fatalf("schedule = %v, want %v", order, want)
		}
	}
	if cpu.Switches() != 2 {
		t.Fatalf("switches = %d, want 2", cpu.Switches())
	}
}

func TestCPUSameOwnerNoSwitch(t *testing.T) {
	eng := NewEngine()
	cpu := NewCPU(eng, 10*time.Millisecond)
	for i := 0; i < 3; i++ {
		cpu.Run(7, 100*time.Millisecond, nil)
	}
	eng.RunUntilIdle()
	// Only the first dispatch switches (from the initial -1 owner).
	if cpu.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", cpu.Switches())
	}
	if cpu.BusyTime() != 310*time.Millisecond {
		t.Fatalf("busy = %v, want 310ms", cpu.BusyTime())
	}
}

func TestCPULoadDependentSwitchCost(t *testing.T) {
	eng := NewEngine()
	cpu := NewCPU(eng, 0)
	cpu.SwitchCost = func(runnable int) time.Duration {
		return time.Duration(runnable) * time.Millisecond
	}
	// Two owners runnable when the first item is dispatched.
	cpu.Run(1, 10*time.Millisecond, nil)
	cpu.Run(2, 10*time.Millisecond, nil)
	eng.RunUntilIdle()
	// First dispatch: only owner 1 was enqueued at Run time... dispatch
	// happens immediately inside Run(1), when runnable = {1}. Second
	// dispatch happens after first completes, runnable = {2}.
	// So each switch costs 1ms.
	if cpu.BusyTime() != 22*time.Millisecond {
		t.Fatalf("busy = %v, want 22ms", cpu.BusyTime())
	}
}

func TestCPUFIFO(t *testing.T) {
	eng := NewEngine()
	cpu := NewCPU(eng, 0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		cpu.Run(i, time.Millisecond, func() { order = append(order, i) })
	}
	eng.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
	if cpu.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestCPUUtilization(t *testing.T) {
	eng := NewEngine()
	cpu := NewCPU(eng, 0)
	cpu.Run(1, time.Second, nil)
	eng.Run(4 * time.Second)
	if u := cpu.Utilization(); u != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}
