// Package sim is a deterministic discrete-event simulation kernel.
//
// The paper's evaluation measures effects — fork overhead, context
// switching, journal commits, DNS round trips — that Go's runtime either
// hides (goroutines are three orders of magnitude cheaper than 2007
// processes) or that are unavailable offline (live DNSBLs, a 10K SCSI
// disk). The kernel makes those costs explicit: virtual time advances only
// through scheduled events, every random draw comes from a seeded PCG
// stream, and two runs with the same seed produce byte-identical results.
//
// The kernel is callback-based rather than goroutine-based: an event is a
// (time, sequence, func) triple in a binary heap. Sequence numbers break
// ties so simultaneous events fire in schedule order, which keeps the
// whole simulation reproducible without any synchronization.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. The zero Event is invalid.
type Event struct {
	at  time.Duration
	seq uint64
	fn  func()

	index     int // heap index, -1 once popped or cancelled
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x interface{}) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the simulation clock and scheduler. Create one with NewEngine;
// it is not safe for concurrent use (the simulation is single-threaded by
// design).
type Engine struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	running bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events executed so far, a cheap progress and
// determinism probe for tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// At schedules fn at absolute virtual time t, which must not be in the
// past.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event func")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn d from now; negative d is treated as zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Step fires the single earliest event, advancing the clock to it. It
// returns false if no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the clock passes until or the queue drains.
// Events scheduled exactly at until still fire. The clock finishes at
// min(until, last event time) — it does not jump past the final event.
func (e *Engine) Run(until time.Duration) {
	for len(e.events) > 0 {
		// Peek without popping so events after the horizon stay queued.
		next := e.events[0]
		if next.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > until {
			e.now = until
			return
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunUntilIdle fires every remaining event.
func (e *Engine) RunUntilIdle() {
	for e.Step() {
	}
}
