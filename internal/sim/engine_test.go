package sim

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.At(3*time.Second, func() { order = append(order, 3) })
	eng.At(1*time.Second, func() { order = append(order, 1) })
	eng.At(2*time.Second, func() { order = append(order, 2) })
	eng.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if eng.Now() != 3*time.Second {
		t.Fatalf("final clock = %v, want 3s", eng.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	eng := NewEngine()
	var order []string
	eng.At(time.Second, func() { order = append(order, "a") })
	eng.At(time.Second, func() { order = append(order, "b") })
	eng.At(time.Second, func() { order = append(order, "c") })
	eng.RunUntilIdle()
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("tie order = %q, want abc", got)
	}
}

func TestEngineAfter(t *testing.T) {
	eng := NewEngine()
	var at time.Duration
	eng.After(time.Second, func() {
		eng.After(2*time.Second, func() { at = eng.Now() })
	})
	eng.RunUntilIdle()
	if at != 3*time.Second {
		t.Fatalf("nested After fired at %v, want 3s", at)
	}
}

func TestEngineAfterNegativeClamped(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.After(-time.Second, func() { fired = true })
	eng.RunUntilIdle()
	if !fired || eng.Now() != 0 {
		t.Fatalf("negative After: fired=%v now=%v", fired, eng.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	eng := NewEngine()
	eng.At(2*time.Second, func() {})
	eng.RunUntilIdle()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	eng.At(time.Second, func() {})
}

func TestEngineNilFuncPanics(t *testing.T) {
	eng := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event func did not panic")
		}
	}()
	eng.At(0, nil)
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	ev := eng.At(time.Second, func() { fired = true })
	ev.Cancel()
	eng.RunUntilIdle()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if eng.Fired() != 0 {
		t.Fatalf("fired count = %d, want 0", eng.Fired())
	}
	// Double-cancel and nil-cancel are no-ops.
	ev.Cancel()
	(*Event)(nil).Cancel()
}

func TestEngineRunHorizon(t *testing.T) {
	eng := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d * time.Second
		eng.At(d, func() { fired = append(fired, d) })
	}
	eng.Run(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if eng.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", eng.Now())
	}
	if eng.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", eng.Pending())
	}
	eng.Run(10 * time.Second)
	if len(fired) != 4 {
		t.Fatalf("fired = %d after full run, want 4", len(fired))
	}
	if eng.Now() != 10*time.Second {
		t.Fatalf("clock advanced to %v, want 10s", eng.Now())
	}
}

func TestEngineRunEmptyAdvancesClock(t *testing.T) {
	eng := NewEngine()
	eng.Run(5 * time.Second)
	if eng.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", eng.Now())
	}
}

func TestEngineStepReturnsFalseWhenEmpty(t *testing.T) {
	eng := NewEngine()
	if eng.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []time.Duration {
		eng := NewEngine()
		g := NewRNG(7)
		var log []time.Duration
		var spawn func()
		n := 0
		spawn = func() {
			log = append(log, eng.Now())
			n++
			if n < 50 {
				eng.After(g.Exp(time.Second), spawn)
			}
		}
		eng.After(0, spawn)
		eng.RunUntilIdle()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
